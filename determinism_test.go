package ivmf_test

// Determinism tests for the shared worker pool (internal/parallel): every
// parallel kernel in the repository keeps each output element's
// floating-point accumulation order independent of the worker count, so a
// fixed-seed run must produce bitwise-identical results whether it runs
// serially (1 worker) or on every core. These tests pin that contract for
// the deepest pipelines: ISVD4 (Gram products, eigensolver sweeps,
// interval solves) and AI-PMF (run-scheduled SGD), plus the raw matrix
// products.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imatrix"
	"repro/internal/ipmf"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// withWorkers runs fn under a temporary package-level worker bound.
func withWorkers(n int, fn func()) {
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	fn()
}

func denseEqualBits(t *testing.T, label string, a, b *matrix.Dense) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: element %d differs bitwise: %v vs %v", label, i, a.Data[i], b.Data[i])
		}
	}
}

func imatrixEqualBits(t *testing.T, label string, a, b *imatrix.IMatrix) {
	t.Helper()
	denseEqualBits(t, label+".Lo", a.Lo, b.Lo)
	denseEqualBits(t, label+".Hi", a.Hi, b.Hi)
}

func TestMatMulBitwiseAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := matrix.New(137, 211)
	b := matrix.New(211, 93)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	var serialMul, serialMulT, serialTMul *matrix.Dense
	withWorkers(1, func() {
		serialMul = matrix.Mul(a, b)
		serialMulT = matrix.MulT(a, a)
		serialTMul = matrix.TMul(b, b)
	})
	for _, w := range []int{2, 3, 8} {
		withWorkers(w, func() {
			denseEqualBits(t, "Mul", serialMul, matrix.Mul(a, b))
			denseEqualBits(t, "MulT", serialMulT, matrix.MulT(a, a))
			denseEqualBits(t, "TMul", serialTMul, matrix.TMul(b, b))
		})
	}
}

// The 150x220 size is load-bearing: it gives a 220-dim Gram matrix, large
// enough that the tred2 sweeps exceed their grain cutoff (sharding starts
// at ~130 dims) and actually run multi-chunk — at smaller sizes every
// parallel.For falls back to the inline path and the test would only pin
// the serial code against itself.
func TestISVD4BitwiseAcrossWorkerCounts(t *testing.T) {
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 150, 220
	m := dataset.MustGenerateUniform(cfg, rand.New(rand.NewSource(7)))
	opts := core.Options{Rank: 15, Target: core.TargetB}

	var serial *core.Decomposition
	withWorkers(1, func() {
		var err error
		serial, err = core.Decompose(m, core.ISVD4, opts)
		if err != nil {
			t.Fatal(err)
		}
	})
	for _, w := range []int{2, 8} {
		withWorkers(w, func() {
			par, err := core.Decompose(m, core.ISVD4, opts)
			if err != nil {
				t.Fatal(err)
			}
			imatrixEqualBits(t, "U", serial.U, par.U)
			imatrixEqualBits(t, "Sigma", serial.Sigma, par.Sigma)
			imatrixEqualBits(t, "V", serial.V, par.V)
		})
	}

	// Options.Workers must bound the fan-out without changing results.
	opts.Workers = 2
	perCall, err := core.Decompose(m, core.ISVD4, opts)
	if err != nil {
		t.Fatal(err)
	}
	imatrixEqualBits(t, "U(opts.Workers)", serial.U, perCall.U)
}

// TestISVD1BitwiseAcrossWorkerCounts covers the Golub-Reinsch SVD path
// (eig/svd.go's sharded Householder sweeps), which ISVD4 never reaches —
// it eigen-decomposes the Gram matrix instead. 150x220 keeps the
// bidiagonalization sweeps above their grain cutoff.
func TestISVD1BitwiseAcrossWorkerCounts(t *testing.T) {
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 150, 220
	m := dataset.MustGenerateUniform(cfg, rand.New(rand.NewSource(8)))
	opts := core.Options{Rank: 15, Target: core.TargetB}

	var serial *core.Decomposition
	withWorkers(1, func() {
		var err error
		serial, err = core.Decompose(m, core.ISVD1, opts)
		if err != nil {
			t.Fatal(err)
		}
	})
	for _, w := range []int{2, 8} {
		withWorkers(w, func() {
			par, err := core.Decompose(m, core.ISVD1, opts)
			if err != nil {
				t.Fatal(err)
			}
			imatrixEqualBits(t, "U", serial.U, par.U)
			imatrixEqualBits(t, "Sigma", serial.Sigma, par.Sigma)
			imatrixEqualBits(t, "V", serial.V, par.V)
		})
	}
}

// Note: at this dataset scale the AI-PMF conflict-free runs are far
// shorter than the SGD grain, so this test pins the scheduler ordering
// rather than sharded updates; the sharded-SGD bitwise contract is pinned
// by TestRunShardedSGDBitwise in internal/ipmf, which shrinks the grain.
func TestAIPMFBitwiseAcrossWorkerCounts(t *testing.T) {
	rc := dataset.MovieLensLike().Scaled(0.04)
	data, err := dataset.GenerateRatings(rc, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	iv := data.CFIntervals()
	cfg := ipmf.Config{Rank: 8, Epochs: 12, LearningRate: 0.01}

	train := func(workers int) *ipmf.IntervalModel {
		var model *ipmf.IntervalModel
		withWorkers(workers, func() {
			var err error
			model, err = ipmf.TrainAIPMF(iv, cfg, rand.New(rand.NewSource(9)))
			if err != nil {
				t.Fatal(err)
			}
		})
		return model
	}
	serial := train(1)
	for _, w := range []int{2, 8} {
		par := train(w)
		denseEqualBits(t, "U", serial.U, par.U)
		denseEqualBits(t, "VLo", serial.VLo, par.VLo)
		denseEqualBits(t, "VHi", serial.VHi, par.VHi)
	}
}
