package ivmf_test

// Integration tests exercising multi-module pipelines end to end:
// data generation → decomposition → downstream task → metric.

import (
	"bytes"
	"math/rand"
	"testing"

	ivmf "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

func TestIntegrationFacePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fc := dataset.FaceConfig{Subjects: 8, ImagesPerSubject: 6, Res: 16, Radius: 1, Alpha: 1}
	fd, err := dataset.GenerateFaces(fc, rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ivmf.Decompose(fd.Interval, ivmf.ISVD2, ivmf.Options{Rank: 12, Target: ivmf.TargetB})
	if err != nil {
		t.Fatal(err)
	}
	u := d.U.Mid()
	feat := imatrix.FromEndpoints(matrix.Mul(u, d.Sigma.Lo), matrix.Mul(u, d.Sigma.Hi))
	feat.AverageReplace()

	trainIdx, testIdx := dataset.TrainTestSplit(fd.Labels, 0.5, rng)
	sub := func(idx []int) (*imatrix.IMatrix, []int) {
		s := imatrix.New(len(idx), feat.Cols())
		l := make([]int, len(idx))
		for p, i := range idx {
			copy(s.Lo.RowView(p), feat.Lo.RowView(i))
			copy(s.Hi.RowView(p), feat.Hi.RowView(i))
			l[p] = fd.Labels[i]
		}
		return s, l
	}
	trainF, trainL := sub(trainIdx)
	testF, testL := sub(testIdx)
	pred, err := cluster.Classify1NN(trainF, trainL, testF)
	if err != nil {
		t.Fatal(err)
	}
	if f1 := metrics.F1Macro(pred, testL); f1 < 0.3 {
		t.Fatalf("end-to-end face F1 = %.3f, far below chance-adjusted floor", f1)
	}
}

func TestIntegrationRatingsPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rc := dataset.RatingsConfig{Users: 50, Items: 80, Genres: 6, NumRatings: 900, LatentRank: 4, Alpha: 0.5}
	data, err := dataset.GenerateRatings(rc, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction path: user-genre interval matrix through ISVD4-b.
	ug := data.UserGenreIntervals()
	d, err := ivmf.Decompose(ug, ivmf.ISVD4, ivmf.Options{Rank: 3, Target: ivmf.TargetB})
	if err != nil {
		t.Fatal(err)
	}
	if h := d.Evaluate(ug).HMean; h < 0.2 {
		t.Fatalf("user-genre H-mean = %.3f", h)
	}
	// CF path: AI-PMF on the interval user-item matrix.
	train, test := data.SplitRatings(0.8, rng)
	trainData := *data
	trainData.Ratings = train
	model, err := ivmf.TrainAIPMF(trainData.CFIntervals(), ivmf.PMFConfig{Rank: 5, Epochs: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(test))
	truth := make([]float64, len(test))
	for i, r := range test {
		p := model.Predict(r.User, r.Item)
		if p < 1 {
			p = 1
		} else if p > 5 {
			p = 5
		}
		pred[i] = p
		truth[i] = r.Value
	}
	if rmse := metrics.RMSE(pred, truth); rmse > 2.0 {
		t.Fatalf("CF RMSE = %.3f, worse than predicting the midpoint blindly", rmse)
	}
}

func TestIntegrationAnonymizedPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := dataset.GenerateAnonymized(30, 40, dataset.HighAnonymity, rng)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := ivmf.Decompose(m, ivmf.ISVD0, ivmf.Options{Rank: 30})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := ivmf.Decompose(m, ivmf.ISVD4, ivmf.Options{Rank: 30, Target: ivmf.TargetB})
	if err != nil {
		t.Fatal(err)
	}
	hn := naive.Evaluate(m).HMean
	ha := aware.Evaluate(m).HMean
	// Paper Figure 7, high privacy, full rank: option-b clearly beats ISVD0.
	if ha < hn {
		t.Fatalf("ISVD4-b (%.3f) below ISVD0 (%.3f) on high-privacy data", ha, hn)
	}
}

func TestIntegrationExactAlgebraAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 25, 30
	m := dataset.MustGenerateUniform(cfg, rng)
	endpoint, err := core.Decompose(m, core.ISVD4, core.Options{Rank: 10, Target: core.TargetB})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := core.Decompose(m, core.ISVD4, core.Options{Rank: 10, Target: core.TargetB, ExactAlgebra: true})
	if err != nil {
		t.Fatal(err)
	}
	he := endpoint.Evaluate(m).HMean
	hx := exact.Evaluate(m).HMean
	// Exact interval algebra is sound but much looser: with the default
	// interval intensity it must not beat the endpoint semantics.
	if hx > he+1e-9 {
		t.Fatalf("exact algebra H-mean %.3f beats endpoint %.3f", hx, he)
	}
	if !exact.U.IsWellFormed() || !exact.Sigma.IsWellFormed() {
		t.Fatal("exact-algebra output misordered")
	}
}

func TestIntegrationCSVThroughDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 10, 8
	m := dataset.MustGenerateUniform(cfg, rng)
	// Round-trip through the CSV codec, then decompose the parsed copy.
	var buf bytes.Buffer
	if err := dataset.WriteIntervalCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadIntervalCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := ivmf.Decompose(m, ivmf.ISVD3, ivmf.Options{Rank: 4, Target: ivmf.TargetB})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ivmf.Decompose(back, ivmf.ISVD3, ivmf.Options{Rank: 4, Target: ivmf.TargetB})
	if err != nil {
		t.Fatal(err)
	}
	if h1, h2 := d1.Evaluate(m).HMean, d2.Evaluate(back).HMean; h1 != h2 {
		t.Fatalf("CSV round trip changed the decomposition: %.6f vs %.6f", h1, h2)
	}
}
