package ivmf_test

// Golden-file regression tests: fixed fixture matrices live under
// testdata/ together with the expected ISVD1/ISVD4 singular values and
// AI-PMF RMSE in golden.json, so numeric drift introduced by a refactor
// of any kernel in the pipeline is caught immediately. The tolerance is
// tight (1e-9 relative) but not bitwise: Go reserves the right to fuse
// multiply-adds on some architectures, so exact bit equality across
// platforms is not guaranteed — bitwise invariance across worker counts
// on one platform is pinned separately by determinism_test.go.
//
// After an *intended* numeric change, regenerate with:
//
//	go test -run TestGolden -update-golden .

import (
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ipmf"
	"repro/internal/metrics"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json with freshly computed values")

const goldenPath = "testdata/golden.json"

type goldenValues struct {
	ISVD1SigmaLo []float64 `json:"isvd1_sigma_lo"`
	ISVD1SigmaHi []float64 `json:"isvd1_sigma_hi"`
	ISVD4SigmaLo []float64 `json:"isvd4_sigma_lo"`
	ISVD4SigmaHi []float64 `json:"isvd4_sigma_hi"`
	AIPMFRMSE    float64   `json:"aipmf_rmse"`
}

// computeGolden produces every golden value from the committed fixtures.
func computeGolden(t *testing.T) goldenValues {
	t.Helper()
	uf, err := os.Open("testdata/golden_uniform.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer uf.Close()
	m, err := dataset.ReadIntervalCSV(uf)
	if err != nil {
		t.Fatal(err)
	}
	var g goldenValues
	opts := core.Options{Rank: 6, Target: core.TargetB}
	for _, run := range []struct {
		method core.Method
		lo, hi *[]float64
	}{
		{core.ISVD1, &g.ISVD1SigmaLo, &g.ISVD1SigmaHi},
		{core.ISVD4, &g.ISVD4SigmaLo, &g.ISVD4SigmaHi},
	} {
		d, err := core.Decompose(m, run.method, opts)
		if err != nil {
			t.Fatal(err)
		}
		*run.lo = d.Sigma.Lo.Diagonal()
		*run.hi = d.Sigma.Hi.Diagonal()
	}

	rf, err := os.Open("testdata/golden_ratings.coo.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	ratings, err := dataset.ReadIntervalCOO(rf)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ipmf.TrainAIPMFCSR(ratings, ipmf.Config{Rank: 4, Epochs: 40, LearningRate: 0.02}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	var pred, truth []float64
	ratings.ForEachRow(func(i int, cols []int, lo, hi []float64) {
		for p, j := range cols {
			pred = append(pred, model.Predict(i, j))
			truth = append(truth, (lo[p]+hi[p])/2)
		}
	})
	g.AIPMFRMSE = metrics.RMSE(pred, truth)
	return g
}

func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func compareSeries(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, golden has %d", label, len(got), len(want))
	}
	for i := range want {
		if !relClose(got[i], want[i], 1e-9) {
			t.Errorf("%s[%d] = %.15g, golden %.15g (drift %.2e)", label, i, got[i], want[i], got[i]-want[i])
		}
	}
}

func TestGoldenValues(t *testing.T) {
	got := computeGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	var want goldenValues
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	compareSeries(t, "ISVD1.Sigma.Lo", got.ISVD1SigmaLo, want.ISVD1SigmaLo)
	compareSeries(t, "ISVD1.Sigma.Hi", got.ISVD1SigmaHi, want.ISVD1SigmaHi)
	compareSeries(t, "ISVD4.Sigma.Lo", got.ISVD4SigmaLo, want.ISVD4SigmaLo)
	compareSeries(t, "ISVD4.Sigma.Hi", got.ISVD4SigmaHi, want.ISVD4SigmaHi)
	if !relClose(got.AIPMFRMSE, want.AIPMFRMSE, 1e-9) {
		t.Errorf("AI-PMF RMSE = %.15g, golden %.15g", got.AIPMFRMSE, want.AIPMFRMSE)
	}
	// Sanity: singular values are positive and descending at the
	// midpoint, so a truncated or permuted golden file cannot pass.
	for i := 1; i < len(got.ISVD4SigmaLo); i++ {
		prev := (got.ISVD4SigmaLo[i-1] + got.ISVD4SigmaHi[i-1]) / 2
		cur := (got.ISVD4SigmaLo[i] + got.ISVD4SigmaHi[i]) / 2
		if cur > prev+1e-9 {
			t.Errorf("ISVD4 midpoint singular values not descending at %d: %g > %g", i, cur, prev)
		}
	}
}
