package ivmf_test

// Allocation regression guards for the workspace-reuse PR: the NMF
// multiplicative-update loop and the ISVD4 pipeline must stay at least
// 50% below their pre-blocking allocation counts (nmf.Train: 1006
// objects/run at the seed for this shape, ISVD4: 2994). The savings
// come from the destination-passing kernels (internal/matrix), the
// fused endpoint products (internal/imatrix), and the hoisted sweep
// closures in internal/eig. Runs are pinned to one worker so counts
// are deterministic.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/nmf"
	"repro/internal/parallel"
	"repro/internal/recommend"
	"repro/internal/sparse"
)

func TestNMFTrainAllocationBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := matrix.New(60, 45)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := nmf.Train(m, nmf.Config{Rank: 6, Iterations: 50}, rand.New(rand.NewSource(2))); err != nil {
			t.Fatal(err)
		}
	})
	// Seed baseline: 1006. Workspace reuse leaves ~8 pool-closure
	// allocations per iteration plus setup.
	if allocs > 503 {
		t.Fatalf("nmf.Train allocated %.0f objects/run, want <= 503 (50%% of the 1006 pre-workspace baseline)", allocs)
	}
}

func TestISVD4AllocationBudget(t *testing.T) {
	m := dataset.MustGenerateUniform(dataset.DefaultSynthetic(), rand.New(rand.NewSource(4)))
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := core.Decompose(m, core.ISVD4, core.Options{Rank: 20, Target: core.TargetB}); err != nil {
			t.Fatal(err)
		}
	})
	// Seed baseline: 2994, dominated by per-iteration sweep closures in
	// the eigensolver plus the four endpoint-product temporaries.
	if allocs > 1497 {
		t.Fatalf("ISVD4 allocated %.0f objects/run, want <= 1497 (50%% of the 2994 pre-blocking baseline)", allocs)
	}
}

// TestTopNAllocationBudget guards the serving-path TopN rewrite: the
// size-n selection heap lives in preallocated Predictor scratch, so a
// warmed-up TopN call allocates only its result slice (the pre-heap
// implementation appended every unexcluded column into a fresh
// candidate slice — ~10 allocations per call at 200 columns, growing
// with the catalog).
func TestTopNAllocationBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := matrix.New(50, 4)
	y := matrix.New(4, 200)
	for i := range x.Data {
		x.Data[i] = math.Abs(rng.NormFloat64())
	}
	for i := range y.Data {
		y.Data[i] = math.Abs(rng.NormFloat64())
	}
	lo := matrix.Mul(x, y)
	ratings := sparse.FromIMatrix(imatrix.FromEndpoints(lo, lo.Scale(1.2)))
	p, err := recommend.BuildSparseISVD(ratings, core.ISVD2, core.Options{Rank: 4, Target: core.TargetB}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TopN(7, 10, nil); err != nil { // warm the scratch heap
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := p.TopN(7, 10, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("TopN allocated %.1f objects/call, want <= 2 (result slice only)", allocs)
	}
	// TopNSparse excludes the row's stored cells with an advancing
	// pointer over the sorted CSR columns — no exclusion map, so the
	// same budget holds.
	allocs = testing.AllocsPerRun(20, func() {
		if _, err := p.TopNSparse(7, 10, ratings); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("TopNSparse allocated %.1f objects/call, want <= 2 (result slice only)", allocs)
	}
}

// TestWideSVDAllocationBudget guards the wide-matrix branch of eig.SVD:
// the transpose is written once into a workspace that the tall-matrix
// core then consumes in place (TransposeInto + svdTallOwned), instead of
// allocating a transposed copy and cloning it again. For this 80×200
// input the decomposition allocates ~193 KB/run; reintroducing the extra
// m·n clone (+128 KB) trips the budget.
func TestWideSVDAllocationBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := matrix.New(80, 200)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	if _, err := eig.SVD(m); err != nil {
		t.Fatal(err)
	}
	const runs = 10
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if _, err := eig.SVD(m); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	bytesPerRun := float64(after.TotalAlloc-before.TotalAlloc) / runs
	if bytesPerRun > 250000 {
		t.Fatalf("wide SVD allocated %.0f bytes/run, want <= 250000 (one transpose workspace, no extra clone)", bytesPerRun)
	}
}
