// Top-N recommendation from interval ratings: build a reconstruction-
// based recommender (Section 6.5 of the paper) over a user-genre
// interval matrix and surface each user's best unrated genres together
// with calibrated prediction intervals.
//
// Run with: go run ./examples/topn
package main

import (
	"fmt"
	"log"
	"math/rand"

	ivmf "repro"
)

const (
	users  = 30
	genres = 8
)

var genreNames = [genres]string{
	"action", "comedy", "drama", "documentary",
	"horror", "romance", "sci-fi", "thriller",
}

func main() {
	rng := rand.New(rand.NewSource(42))

	// Users have two taste groups; each observed cell is the RANGE of
	// star ratings the user gave to movies of that genre.
	ratings := ivmf.NewIntervalMatrix(users, genres)
	rated := make([]map[int]bool, users)
	for u := 0; u < users; u++ {
		rated[u] = map[int]bool{}
		taste := u % 2
		for g := 0; g < genres; g++ {
			if rng.Float64() < 0.45 {
				continue // unrated genre — the recommender's job
			}
			base := 2.0
			if (taste == 0) == (g < genres/2) {
				base = 4.0 // favourite half of the genres
			}
			lo := clamp(base + rng.NormFloat64()*0.5 - 0.5)
			hi := clamp(lo + rng.Float64()*1.5)
			ratings.Set(u, g, ivmf.Interval{Lo: lo, Hi: hi})
			rated[u][g] = true
		}
	}

	// Low-rank reconstruction treats zeros as observations, so impute
	// unrated cells with the user's mean interval first (the standard
	// preprocessing for SVD-style recommenders).
	imputed := ratings.Clone()
	for u := 0; u < users; u++ {
		var sum, n float64
		for g := range rated[u] {
			sum += ratings.At(u, g).Mid()
			n++
		}
		mean := 3.0
		if n > 0 {
			mean = sum / n
		}
		for g := 0; g < genres; g++ {
			if !rated[u][g] {
				imputed.Set(u, g, ivmf.Interval{Lo: mean, Hi: mean})
			}
		}
	}

	rec, err := ivmf.NewRecommender(imputed, ivmf.ISVD4,
		ivmf.Options{Rank: 2, Target: ivmf.TargetB}, 1, 5)
	if err != nil {
		log.Fatal(err)
	}

	for _, u := range []int{0, 1, 2} {
		top, err := rec.TopN(u, 2, rated[u])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d — recommended unrated genres:\n", u)
		for _, g := range top {
			iv, _ := rec.PredictInterval(u, g)
			fmt.Printf("  %-12s predicted %.1f stars (range %.1f–%.1f)\n",
				genreNames[g], iv.Mid(), iv.Lo, iv.Hi)
		}
	}

	// Calibration: how often do the true ratings fall inside the
	// predicted intervals for cells we already know?
	var holdouts []ivmf.RecommendHoldout
	for u := 0; u < users; u++ {
		for g := range rated[u] {
			holdouts = append(holdouts, ivmf.RecommendHoldout{
				Row: u, Col: g, Value: ratings.At(u, g).Mid(),
			})
		}
	}
	rmse, err := rec.EvaluateRMSE(holdouts)
	if err != nil {
		log.Fatal(err)
	}
	cov, err := rec.CoverageRate(holdouts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfit on observed cells: RMSE %.2f stars, interval coverage %.0f%%\n", rmse, cov*100)
}

func clamp(v float64) float64 {
	if v < 1 {
		return 1
	}
	if v > 5 {
		return 5
	}
	return v
}
