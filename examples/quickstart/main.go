// Quickstart: decompose a small interval-valued matrix with ISVD4 and
// inspect the factors, reconstruction, and accuracy.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ivmf "repro"
)

func main() {
	// A 4x3 measurement matrix where some observations are imprecise:
	// e.g. sensor readings with known error bars. Scalar cells are
	// degenerate intervals.
	m := ivmf.NewIntervalMatrix(4, 3)
	cells := [][]ivmf.Interval{
		{{Lo: 1.0, Hi: 1.2}, {Lo: 2.0, Hi: 2.0}, {Lo: 0.5, Hi: 0.9}},
		{{Lo: 0.9, Hi: 1.1}, {Lo: 1.8, Hi: 2.2}, {Lo: 0.6, Hi: 0.8}},
		{{Lo: 2.0, Hi: 2.4}, {Lo: 4.1, Hi: 4.1}, {Lo: 1.2, Hi: 1.6}},
		{{Lo: 0.4, Hi: 0.6}, {Lo: 1.0, Hi: 1.0}, {Lo: 0.3, Hi: 0.3}},
	}
	for i, row := range cells {
		for j, iv := range row {
			m.Set(i, j, iv)
		}
	}

	// Decompose with the paper's best variant: ISVD4 with target-b
	// semantics (scalar factor matrices, interval-valued core).
	d, err := ivmf.Decompose(m, ivmf.ISVD4, ivmf.Options{Rank: 2, Target: ivmf.TargetB})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("U (scalar, unit columns):")
	fmt.Print(d.U.Mid())
	fmt.Println("Σ (interval-valued core):")
	for j := 0; j < d.Rank; j++ {
		fmt.Printf("  σ%d = [%.4f, %.4f]\n", j+1, d.Sigma.Lo.At(j, j), d.Sigma.Hi.At(j, j))
	}
	fmt.Println("V (scalar, unit columns):")
	fmt.Print(d.V.Mid())

	// Reconstruct and score against the input (Definition 5 of the paper).
	recon := d.Reconstruct()
	acc := ivmf.Accuracy(m, recon)
	fmt.Printf("\nreconstructed cell (0,0): %v (input %v)\n", recon.At(0, 0), m.At(0, 0))
	fmt.Printf("accuracy: Θ_lo=%.4f Θ_hi=%.4f H-mean=%.4f\n", acc.ThetaLo, acc.ThetaHi, acc.HMean)

	// Compare with the naive baseline that averages intervals first.
	naive, err := ivmf.Decompose(m, ivmf.ISVD0, ivmf.Options{Rank: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive ISVD0 H-mean: %.4f\n", naive.Evaluate(m).HMean)
}
