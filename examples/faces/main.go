// Faces: image analysis with interval-valued pixels (the paper's
// Section 6.4 scenario). Small alignment differences between photos of
// the same person are captured by widening each pixel into an interval
// spanning its local neighborhood variability; decomposing the interval
// matrix yields features that classify and cluster better than naive NMF
// baselines.
//
// The ORL dataset is not redistributable, so this example uses the
// repository's synthetic face simulator (repro/internal/dataset), which
// preserves the class-correlated low-rank structure of the original.
//
// Run with: go run ./examples/faces
package main

import (
	"fmt"
	"log"
	"math/rand"

	ivmf "repro"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	fc := dataset.FaceConfig{Subjects: 12, ImagesPerSubject: 10, Res: 16, Radius: 1, Alpha: 1}
	fd, err := dataset.GenerateFaces(fc, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d images of %d subjects at %dx%d px\n",
		fd.Scalar.Rows, fc.Subjects, fc.Res, fc.Res)

	const rank = 20
	// Interval-aware decomposition: ISVD2-b (best classifier per the paper).
	d, err := ivmf.Decompose(fd.Interval, ivmf.ISVD2, ivmf.Options{Rank: rank, Target: ivmf.TargetB})
	if err != nil {
		log.Fatal(err)
	}
	feat := features(d)

	// NMF baseline on the averaged pixels.
	nmfModel, err := ivmf.TrainNMF(fd.Interval.Mid(), ivmf.NMFConfig{Rank: rank, Iterations: 40}, rng)
	if err != nil {
		log.Fatal(err)
	}
	nmfFeat := imatrix.FromScalar(nmfModel.U)

	// 1-NN classification with a 50/50 stratified split.
	trainIdx, testIdx := dataset.TrainTestSplit(fd.Labels, 0.5, rng)
	fmt.Printf("\n1-NN classification F1 at rank %d:\n", rank)
	fmt.Printf("  ISVD2-b features: %.3f\n", classify(feat, fd.Labels, trainIdx, testIdx))
	fmt.Printf("  NMF features:     %.3f\n", classify(nmfFeat, fd.Labels, trainIdx, testIdx))

	// K-means clustering quality.
	km, err := cluster.KMeans(feat, fc.Subjects, 50, rand.New(rand.NewSource(9)))
	if err != nil {
		log.Fatal(err)
	}
	kmNMF, err := cluster.KMeans(nmfFeat, fc.Subjects, 50, rand.New(rand.NewSource(9)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nK-means clustering NMI at rank %d:\n", rank)
	fmt.Printf("  ISVD2-b features: %.3f\n", metrics.NMI(km.Assignments, fd.Labels))
	fmt.Printf("  NMF features:     %.3f\n", metrics.NMI(kmNMF.Assignments, fd.Labels))

	// Low-rank reconstruction error against the true pixels.
	recon := d.Reconstruct().Mid()
	fmt.Printf("\nreconstruction RMSE at rank %d: %.2f gray levels\n",
		rank, metrics.MatrixRMSE(recon.Data, fd.Scalar.Data))
}

// features extracts the paper's interval classification features
// [U·Σ*, U·Σ^*] from a target-b decomposition.
func features(d *ivmf.Decomposition) *imatrix.IMatrix {
	u := d.U.Mid()
	f := imatrix.FromEndpoints(matrix.Mul(u, d.Sigma.Lo), matrix.Mul(u, d.Sigma.Hi))
	f.AverageReplace()
	return f
}

func classify(feat *imatrix.IMatrix, labels []int, trainIdx, testIdx []int) float64 {
	pick := func(idx []int) (*imatrix.IMatrix, []int) {
		sub := imatrix.New(len(idx), feat.Cols())
		lab := make([]int, len(idx))
		for p, i := range idx {
			copy(sub.Lo.RowView(p), feat.Lo.RowView(i))
			copy(sub.Hi.RowView(p), feat.Hi.RowView(i))
			lab[p] = labels[i]
		}
		return sub, lab
	}
	trainF, trainL := pick(trainIdx)
	testF, testL := pick(testIdx)
	pred, err := cluster.Classify1NN(trainF, trainL, testF)
	if err != nil {
		log.Fatal(err)
	}
	return metrics.F1Macro(pred, testL)
}
