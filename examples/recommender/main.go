// Recommender: collaborative filtering when user ratings are ambiguous.
// A user who rates several movies of a genre between 2 and 5 stars is
// better modeled by the interval [2, 5] than by any single number. This
// example trains PMF (scalar), I-PMF, and the paper's AI-PMF on a
// synthetic ratings corpus and compares held-out RMSE — the Figure 10
// scenario.
//
// Run with: go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	ivmf "repro"
)

const (
	users   = 120
	items   = 200
	rank    = 8
	nRating = 3000
)

type rating struct {
	u, i int
	v    float64
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// Latent-factor ground truth discretized to 1..5 stars.
	p := randMat(rng, users, rank)
	q := randMat(rng, items, rank)
	var ratings []rating
	seen := map[[2]int]bool{}
	for len(ratings) < nRating {
		u, i := rng.Intn(users), rng.Intn(items)
		if seen[[2]int{u, i}] {
			continue
		}
		seen[[2]int{u, i}] = true
		var dot float64
		for t := 0; t < rank; t++ {
			dot += p[u][t] * q[i][t]
		}
		v := math.Round(3 + 1.2*dot + 0.4*rng.NormFloat64())
		ratings = append(ratings, rating{u, i, clamp(v)})
	}
	train, test := ratings[:nRating*4/5], ratings[nRating*4/5:]

	// Scalar matrix for PMF; interval matrix for I-PMF/AI-PMF. The
	// interval for each observed rating spans ±1 star of ambiguity
	// (clipped to the 1..5 scale), mimicking the paper's α·std rule.
	scalar := ivmf.NewMatrix(users, items)
	intervals := ivmf.NewIntervalMatrix(users, items)
	for _, r := range train {
		scalar.Set(r.u, r.i, r.v)
		intervals.Set(r.u, r.i, ivmf.Interval{Lo: clamp(r.v - 1), Hi: clamp(r.v + 1)})
	}

	cfg := ivmf.PMFConfig{Rank: rank, Epochs: 60, LearningRate: 0.01}
	pmf, err := ivmf.TrainPMF(scalar, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	ipmfModel, err := ivmf.TrainIPMF(intervals, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	aipmf, err := ivmf.TrainAIPMF(intervals, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("held-out RMSE over %d ratings:\n", len(test))
	fmt.Printf("  PMF    %.4f\n", rmse(test, pmf.Predict))
	fmt.Printf("  I-PMF  %.4f\n", rmse(test, ipmfModel.Predict))
	fmt.Printf("  AI-PMF %.4f\n", rmse(test, aipmf.Predict))

	// AI-PMF also yields interval predictions — useful for surfacing
	// uncertain recommendations.
	lo, hi := aipmf.PredictInterval(test[0].u, test[0].i)
	fmt.Printf("\nexample interval prediction for user %d, item %d: [%.2f, %.2f] (true %.0f)\n",
		test[0].u, test[0].i, lo, hi, test[0].v)
}

func rmse(test []rating, predict func(i, j int) float64) float64 {
	var se float64
	for _, r := range test {
		d := clamp(predict(r.u, r.i)) - r.v
		se += d * d
	}
	return math.Sqrt(se / float64(len(test)))
}

func clamp(v float64) float64 { return math.Min(math.Max(v, 1), 5) }

func randMat(rng *rand.Rand, n, k int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, k)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64() / math.Sqrt(float64(k))
		}
	}
	return out
}
