// Anonymized-data analysis: privacy-preserving publishing replaces
// precise values with generalization intervals (k-anonymity recoding).
// This example generalizes a numeric table at three privacy levels and
// shows that interval-aware decomposition (ISVD4-b) retains more of the
// data's structure than naively averaging the intervals (ISVD0) —
// the paper's Figure 7 scenario.
//
// Run with: go run ./examples/anonymized
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	ivmf "repro"
)

// generalize snaps v ∈ [0, 1) to a bucket of width 1/k, the recoding
// primitive of value-generalization anonymization.
func generalize(v float64, buckets int) ivmf.Interval {
	k := float64(buckets)
	b := math.Floor(v * k)
	if b >= k {
		b = k - 1
	}
	return ivmf.Interval{Lo: b / k, Hi: (b + 1) / k}
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// A low-rank "microdata" table: 60 individuals × 30 numeric
	// attributes driven by 4 latent traits, scaled to [0, 1).
	const n, mCols, rank = 60, 30, 4
	traits := make([][]float64, n)
	loadings := make([][]float64, mCols)
	for i := range traits {
		traits[i] = randVec(rng, rank)
	}
	for j := range loadings {
		loadings[j] = randVec(rng, rank)
	}
	value := func(i, j int) float64 {
		var s float64
		for t := 0; t < rank; t++ {
			s += traits[i][t] * loadings[j][t]
		}
		return 1 / (1 + math.Exp(-s)) // squash into (0, 1)
	}

	for _, level := range []struct {
		name    string
		buckets int
	}{
		{"low privacy (100 buckets)", 100},
		{"medium privacy (20 buckets)", 20},
		{"high privacy (5 buckets)", 5},
	} {
		published := ivmf.NewIntervalMatrix(n, mCols)
		for i := 0; i < n; i++ {
			for j := 0; j < mCols; j++ {
				published.Set(i, j, generalize(value(i, j), level.buckets))
			}
		}
		naive, err := ivmf.Decompose(published, ivmf.ISVD0, ivmf.Options{Rank: rank})
		if err != nil {
			log.Fatal(err)
		}
		aware, err := ivmf.Decompose(published, ivmf.ISVD4, ivmf.Options{Rank: rank, Target: ivmf.TargetB})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s ISVD0 H-mean = %.4f   ISVD4-b H-mean = %.4f\n",
			level.name, naive.Evaluate(published).HMean, aware.Evaluate(published).HMean)
	}
	fmt.Println("\nISVD4-b preserves more structure at every privacy level; the gap")
	fmt.Println("matters most when the published intervals are wide (high privacy).")
}

func randVec(rng *rand.Rand, k int) []float64 {
	v := make([]float64, k)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
