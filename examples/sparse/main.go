// Sparse collaborative filtering: real rating corpora are 1-6% dense,
// so storing them as dense matrices wastes two orders of magnitude of
// memory before training even starts. This example builds a sparse
// interval rating matrix from observed entries only, trains AI-PMF
// directly on it (per-epoch cost scales with the number of ratings, not
// users×items), and serves factor-backed top-N recommendations — no
// dense matrix is materialized at any point.
//
// Run with: go run ./examples/sparse
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	ivmf "repro"
)

const (
	users   = 400
	items   = 600
	rank    = 8
	nRating = 6000 // 2.5% of the 240 000 cells
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Latent-factor ground truth, observed at a sparse set of cells.
	// Each observed rating becomes the interval [v-1, v+1] clipped to
	// the star scale — the ambiguity band of a single noisy rating.
	p := randMat(rng, users, rank)
	q := randMat(rng, items, rank)
	var entries []ivmf.SparseEntry
	seen := map[[2]int]bool{}
	for len(entries) < nRating {
		u, i := rng.Intn(users), rng.Intn(items)
		if seen[[2]int{u, i}] {
			continue
		}
		seen[[2]int{u, i}] = true
		var dot float64
		for t := 0; t < rank; t++ {
			dot += p[u][t] * q[i][t]
		}
		v := clamp(math.Round(3 + 1.2*dot + 0.4*rng.NormFloat64()))
		entries = append(entries, ivmf.SparseEntry{
			Row: u, Col: i, Lo: clamp(v - 1), Hi: clamp(v + 1),
		})
	}

	ratings, err := ivmf.NewSparseIntervalMatrix(users, items, entries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ratings: %d users x %d items, %d observed cells (%.1f%% dense)\n",
		users, items, ratings.NNZ(), 100*float64(ratings.NNZ())/float64(users*items))

	cfg := ivmf.PMFConfig{Rank: rank, Epochs: 40, LearningRate: 0.01}
	rec, err := ivmf.NewSparseRecommender(ratings, cfg, rand.New(rand.NewSource(1)), 1, 5)
	if err != nil {
		log.Fatal(err)
	}

	for _, u := range []int{0, 1} {
		top, err := rec.TopNSparse(u, 3, ratings)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d — top unrated items:", u)
		for _, i := range top {
			iv, _ := rec.PredictInterval(u, i)
			fmt.Printf("  item %d %.1f★ [%.1f, %.1f]", i, iv.Mid(), iv.Lo, iv.Hi)
		}
		fmt.Println()
	}

	// Training fit on the observed cells (midpoint of each ambiguity band).
	var se float64
	n := 0
	ratings.ForEachRow(func(i int, cols []int, lo, hi []float64) {
		for p, j := range cols {
			v, err := rec.Predict(i, j)
			if err != nil {
				log.Fatal(err)
			}
			d := v - (lo[p]+hi[p])/2
			se += d * d
			n++
		}
	})
	fmt.Printf("fit on observed cells: RMSE %.2f stars over %d ratings\n",
		math.Sqrt(se/float64(n)), n)
}

func clamp(v float64) float64 { return math.Min(math.Max(v, 1), 5) }

func randMat(rng *rand.Rand, n, k int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, k)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64() / math.Sqrt(float64(k))
		}
	}
	return out
}
