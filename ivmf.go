// Package ivmf (interval-valued matrix factorization) is the public API
// of this repository: a Go implementation of "Matrix Factorization with
// Interval-Valued Data" (Li, Di Mauro, Candan, Sapino).
//
// The package decomposes matrices whose entries are intervals [lo, hi]
// rather than scalars — data arising from summarization, conflicting
// sources, anonymization, or measurement imprecision — using the paper's
// ISVD family (interval singular value decomposition, variants ISVD0-4
// with output targets a/b/c) and AI-PMF (aligned interval probabilistic
// matrix factorization), plus the NMF/I-NMF and LP-competitor baselines
// used in its evaluation.
//
// Quick start:
//
//	m := ivmf.NewIntervalMatrix(rows, cols)
//	m.Set(0, 0, ivmf.Interval{Lo: 0.8, Hi: 1.2})
//	...
//	d, err := ivmf.Decompose(m, ivmf.ISVD4, ivmf.Options{Rank: 10, Target: ivmf.TargetB})
//	acc := d.Evaluate(m) // Definition 5 accuracy (harmonic mean)
//
// See examples/ for runnable programs and cmd/experiments for the
// harness regenerating every table and figure of the paper.
package ivmf

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/ipca"
	"repro/internal/ipmf"
	"repro/internal/lp"
	"repro/internal/matrix"
	"repro/internal/nmf"
	"repro/internal/parallel"
	"repro/internal/recommend"
	"repro/internal/sparse"
)

// Interval is a closed interval [Lo, Hi]; Lo == Hi is a scalar.
type Interval = interval.Interval

// IntervalMatrix is a dense interval-valued matrix M† = [M*, M^*].
type IntervalMatrix = imatrix.IMatrix

// Matrix is a dense scalar matrix.
type Matrix = matrix.Dense

// NewIntervalMatrix allocates a zero interval matrix.
func NewIntervalMatrix(rows, cols int) *IntervalMatrix { return imatrix.New(rows, cols) }

// FromScalarMatrix lifts a scalar matrix to degenerate intervals.
func FromScalarMatrix(m *Matrix) *IntervalMatrix { return imatrix.FromScalar(m) }

// FromEndpoints wraps minimum and maximum endpoint matrices (no copy).
func FromEndpoints(lo, hi *Matrix) *IntervalMatrix { return imatrix.FromEndpoints(lo, hi) }

// NewMatrix allocates a zero scalar matrix.
func NewMatrix(rows, cols int) *Matrix { return matrix.New(rows, cols) }

// SparseIntervalMatrix is an interval matrix in compressed sparse row
// form: one index structure shared by the lo/hi value arrays, with
// unstored cells meaning "unobserved" (the zero-cell convention of the
// ratings paths). Storage is O(NNZ) instead of O(rows·cols).
type SparseIntervalMatrix = sparse.ICSR

// SparseEntry is one observed cell of a sparse interval matrix.
type SparseEntry = sparse.ITriplet

// NewSparseIntervalMatrix builds a sparse interval matrix from observed
// entries (any order; duplicates are errors).
func NewSparseIntervalMatrix(rows, cols int, entries []SparseEntry) (*SparseIntervalMatrix, error) {
	return sparse.FromICOO(rows, cols, entries)
}

// Compress converts a dense interval matrix to sparse form, storing
// every cell where either endpoint is non-zero.
func Compress(m *IntervalMatrix) *SparseIntervalMatrix { return sparse.FromIMatrix(m) }

// Decomposition methods (Section 4 of the paper).
const (
	ISVD0 = core.ISVD0 // average intervals, plain SVD (naive baseline)
	ISVD1 = core.ISVD1 // decompose endpoints independently, then align
	ISVD2 = core.ISVD2 // eigen-decompose interval Gram, solve U, align
	ISVD3 = core.ISVD3 // align first, solve U† with interval algebra
	ISVD4 = core.ISVD4 // ISVD3 plus V† recomputation (best accuracy)
)

// Decomposition output targets (Section 3.4).
const (
	TargetA = core.TargetA // interval U†, Σ†, V†
	TargetB = core.TargetB // scalar U, V; interval Σ† (best H-mean)
	TargetC = core.TargetC // all scalar
)

// Method selects an ISVD variant.
type Method = core.Method

// Target selects the output semantics.
type Target = core.Target

// Options configures Decompose.
type Options = core.Options

// Solver selects the eigen/SVD backend of a decomposition
// (Options.Solver): SolverAuto (the zero value) routes to the truncated
// rank-r subspace solver when Rank is small relative to the matrix and to
// the full O(n³) decomposition otherwise; the two agree to 1e-9 relative
// tolerance and are each bitwise reproducible for any worker count.
type Solver = eig.Solver

// Solver choices for Options.Solver.
const (
	SolverAuto      = eig.SolverAuto      // truncated when profitable (default)
	SolverFull      = eig.SolverFull      // always the full decomposition
	SolverTruncated = eig.SolverTruncated // always the truncated solver
)

// ParseSolver parses "auto", "full", or "truncated" (the CLIs' -solver
// flag values).
func ParseSolver(s string) (Solver, error) { return eig.ParseSolver(s) }

// SetWorkers bounds the goroutines of the shared worker pool every hot
// kernel (matrix products, eigensolvers, factorization epochs) runs on.
// n <= 0 resets to the default, GOMAXPROCS. Results are bitwise identical
// for any worker count; per-decomposition bounds go through
// Options.Workers instead.
func SetWorkers(n int) { parallel.SetWorkers(n) }

// Decomposition is the result of an interval-valued SVD; see
// (*Decomposition).Reconstruct and (*Decomposition).Evaluate.
type Decomposition = core.Decomposition

// AccuracyResult carries the Definition 5 accuracy measures.
type AccuracyResult = core.AccuracyResult

// Decompose runs the selected ISVD method on m.
func Decompose(m *IntervalMatrix, method Method, opts Options) (*Decomposition, error) {
	return core.Decompose(m, method, opts)
}

// DecomposeSparse runs the selected ISVD method directly on sparse
// interval storage: all products against the input run on CSR kernels,
// and with the default auto solver the endpoint Gram matrices are applied
// matrix-free and never materialized — transient memory is
// O(NNZ + (rows+cols)·rank) instead of O(cols²). The memory bound holds
// for spectra the truncated solver converges on (decay past rank); a
// flat spectrum or a full-solver routing falls back to materializing the
// dense Gram rather than failing — see core.DecomposeSparse.
func DecomposeSparse(m *SparseIntervalMatrix, method Method, opts Options) (*Decomposition, error) {
	return core.DecomposeSparse(m, method, opts)
}

// Delta is a batch modification to a decomposed matrix — appended rows,
// appended columns, a cell patch, and/or the decremental sliding-window
// operations (cell tombstones, row/column removal, forgetting factor) —
// consumed by Update.
type Delta = core.Delta

// Tombstone addresses one cell a Delta.Unpatch reverts to unobserved (a
// deletion has no value, only a position). The cell must currently be
// stored: a tombstone for a never-inserted cell is an error.
type Tombstone = sparse.Cell

// Health is the numerical-health report of an updatable decomposition's
// update chain (Decomposition.Health): residual budget use, factor
// orthogonality drift, spectrum condition, and the counts of guardrail
// escalations (warm refreshes, windowed full redecomposes) taken so
// far.
type Health = core.Health

// Refresh selects the incremental-update refresh policy
// (Options.Refresh): RefreshAuto (the zero value) re-solves with a
// warm-started truncated decomposition when the accumulated discarded
// singular mass trips Options.RefreshBudget; RefreshNever and
// RefreshAlways force a policy.
type Refresh = core.Refresh

// Refresh policies for Options.Refresh.
const (
	RefreshAuto   = core.RefreshAuto   // budgeted warm refreshes (default)
	RefreshNever  = core.RefreshNever  // additive updates only
	RefreshAlways = core.RefreshAlways // warm re-solve on every batch
)

// Update folds a batch delta into a decomposition produced with
// Options.Updatable and returns the refreshed decomposition: the
// endpoint factor states absorb the batch through a deterministic
// Brand-style low-rank update — O((rows+cols)·rank·batch + batch³) per
// batch instead of a full re-decomposition — and the method's
// align/solve/construct stages re-run from the factors. The input
// decomposition keeps serving unchanged. Updated results agree with a
// full recompute to 1e-6 for exact-rank deltas and are bitwise identical
// for any worker count; accumulated truncation error is tracked against
// opts.RefreshBudget and repaired by warm-started re-solves per
// opts.Refresh.
func Update(d *Decomposition, delta Delta, opts Options) (*Decomposition, error) {
	return core.UpdateSparse(d, delta, opts)
}

// Accuracy scores a reconstruction against the original interval matrix.
func Accuracy(orig, recon *IntervalMatrix) AccuracyResult { return core.Accuracy(orig, recon) }

// LPOptions configures the LP competitor decomposition.
type LPOptions = lp.Options

// DecomposeLP runs the Deif/Seif linear-programming competitor
// (Section 6.2 of the paper). It is orders of magnitude slower than ISVD
// and only accurate for very small intervals.
func DecomposeLP(m *IntervalMatrix, opts LPOptions) (*Decomposition, error) {
	return lp.Decompose(m, opts)
}

// PMFConfig holds the hyper-parameters of the probabilistic factorizers.
type PMFConfig = ipmf.Config

// PMFModel is a trained scalar PMF model.
type PMFModel = ipmf.Model

// IntervalPMFModel is a trained I-PMF/AI-PMF model.
type IntervalPMFModel = ipmf.IntervalModel

// TrainPMF fits scalar probabilistic matrix factorization on the
// non-zero cells of m.
func TrainPMF(m *Matrix, cfg PMFConfig, rng *rand.Rand) (*PMFModel, error) {
	return ipmf.TrainPMF(m, cfg, rng)
}

// TrainIPMF fits interval PMF (Shen et al.) without alignment.
func TrainIPMF(m *IntervalMatrix, cfg PMFConfig, rng *rand.Rand) (*IntervalPMFModel, error) {
	return ipmf.TrainIPMF(m, cfg, rng)
}

// TrainAIPMF fits the paper's aligned interval PMF.
func TrainAIPMF(m *IntervalMatrix, cfg PMFConfig, rng *rand.Rand) (*IntervalPMFModel, error) {
	return ipmf.TrainAIPMF(m, cfg, rng)
}

// TrainIPMFSparse fits I-PMF directly on sparse ratings: per-epoch cost
// and memory scale with the observed-cell count, and for a compressed
// dense matrix the result is bitwise identical to TrainIPMF.
func TrainIPMFSparse(m *SparseIntervalMatrix, cfg PMFConfig, rng *rand.Rand) (*IntervalPMFModel, error) {
	return ipmf.TrainIPMFCSR(m, cfg, rng)
}

// TrainAIPMFSparse fits AI-PMF directly on sparse ratings.
func TrainAIPMFSparse(m *SparseIntervalMatrix, cfg PMFConfig, rng *rand.Rand) (*IntervalPMFModel, error) {
	return ipmf.TrainAIPMFCSR(m, cfg, rng)
}

// NMFConfig holds NMF hyper-parameters.
type NMFConfig = nmf.Config

// NMFModel is a trained scalar NMF model.
type NMFModel = nmf.Model

// IntervalNMFModel is a trained I-NMF model.
type IntervalNMFModel = nmf.IntervalModel

// TrainNMF fits non-negative matrix factorization with Lee-Seung updates.
func TrainNMF(m *Matrix, cfg NMFConfig, rng *rand.Rand) (*NMFModel, error) {
	return nmf.Train(m, cfg, rng)
}

// TrainINMF fits the interval-valued NMF baseline of Shen et al.
func TrainINMF(m *IntervalMatrix, cfg NMFConfig, rng *rand.Rand) (*IntervalNMFModel, error) {
	return nmf.TrainInterval(m, cfg, rng)
}

// Methods lists the ISVD methods in order.
func Methods() []Method { return core.Methods() }

// Targets lists the decomposition targets in order.
func Targets() []Target { return core.Targets() }

// ParseMethod parses "ISVD0".."ISVD4" (any case, with or without the
// "ISVD" prefix) — the spelling of cmd flags and ivmfd job envelopes.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// ParseTarget parses "a", "b", or "c" (any case).
func ParseTarget(s string) (Target, error) { return core.ParseTarget(s) }

// ParseRefresh parses "auto", "never", or "always" (any case).
func ParseRefresh(s string) (Refresh, error) { return core.ParseRefresh(s) }

// ValidateInput checks that an interval matrix has finite, well-ordered
// endpoints (the precondition of Decompose).
func ValidateInput(m *IntervalMatrix) error { return core.ValidateInput(m) }

// PCAResult is the output of the interval PCA baselines.
type PCAResult = ipca.Result

// PCACenters runs the Centers interval PCA (PCA of the interval
// midpoints with exact interval projections of the data boxes) — the
// classical related-work baseline of Section 2.3 of the paper.
func PCACenters(m *IntervalMatrix, rank int) (*PCAResult, error) { return ipca.Centers(m, rank) }

// PCAVertices runs the Vertices interval PCA (moment-matching
// approximation accounting for the interval widths in the covariance).
func PCAVertices(m *IntervalMatrix, rank int) (*PCAResult, error) { return ipca.Vertices(m, rank) }

// Recommender predicts ratings from a low-rank interval reconstruction
// (the reconstruction-based prediction of Section 6.5 of the paper).
type Recommender = recommend.Predictor

// RecommendHoldout is a held-out observation for recommender evaluation.
type RecommendHoldout = recommend.Holdout

// NewRecommender decomposes the interval rating matrix and returns a
// predictor over its reconstruction, clamped to [minRating, maxRating].
func NewRecommender(ratings *IntervalMatrix, method Method, opts Options, minRating, maxRating float64) (*Recommender, error) {
	return recommend.Build(ratings, method, opts, minRating, maxRating)
}

// NewSparseRecommender trains AI-PMF on sparse ratings and returns a
// factor-backed predictor: predictions are computed on demand from
// U_i·V†_j, so memory stays O((rows+cols)·rank) — no dense rating or
// reconstruction matrix is ever materialized. Use
// (*Recommender).TopNSparse to recommend with the rated cells of the
// sparse matrix excluded.
func NewSparseRecommender(ratings *SparseIntervalMatrix, cfg PMFConfig, rng *rand.Rand, minRating, maxRating float64) (*Recommender, error) {
	return recommend.BuildSparse(ratings, cfg, rng, minRating, maxRating)
}

// NewSparseISVDRecommender decomposes sparse ratings with an ISVD method
// (DecomposeSparse) and returns a lazily-evaluating predictor over the
// factor reconstruction: with the default auto solver nothing dense of
// the matrix shape is ever built — not the ratings, not the Gram
// matrices, not the reconstruction.
func NewSparseISVDRecommender(ratings *SparseIntervalMatrix, method Method, opts Options, minRating, maxRating float64) (*Recommender, error) {
	return recommend.BuildSparseISVD(ratings, method, opts, minRating, maxRating)
}
