package ivmf_test

// Sliding-window benchmarks backing BENCH_window.json: the decremental
// half of the update engine (cell tombstones, row removal, forgetting)
// and the combined window-churn batch (arrivals + expiries) vs the full
// redecomposition of the slid window — the downdate-vs-redecompose
// crossover. Same matrix family as update_bench_test.go (n×n sparse
// non-negative interval matrices, ~40k stored cells, spectral decay).
//
// Every measured iteration must stay on the additive path: the benches
// b.Fatal if a guardrail escalation (warm refresh or redecompose)
// fires, so a numerical regression that silently reroutes the downdate
// through the refresh machinery fails loudly instead of reporting the
// refresh's cost as the downdate's.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sparse"
)

// tombstoneBatch collects the stored cells of whole rows from the top
// of the matrix totalling roughly frac of its NNZ — the expiring-ratings
// shape, matching rowBatch's arriving-ratings shape.
func tombstoneBatch(m *sparse.ICSR, frac float64) []sparse.Cell {
	target := int(float64(m.NNZ()) * frac)
	if target < 1 {
		target = 1
	}
	var cells []sparse.Cell
	for i := 0; i < m.Rows && len(cells) < target; i++ {
		cols, _, _ := m.RowView(i)
		for _, j := range cols {
			cells = append(cells, sparse.Cell{Row: i, Col: j})
		}
	}
	return cells
}

// mustStayAdditive fails the bench if the update left the additive path
// — the numbers would then measure the refresh machinery, not the
// downdate.
func mustStayAdditive(b *testing.B, d *core.Decomposition) {
	b.Helper()
	if h := d.Health(); h.LastEscalation != "" {
		b.Fatalf("benchmark update escalated (%s: %s); numbers would not measure the downdate",
			h.LastEscalation, h.LastEscalationReason)
	}
}

// BenchmarkDowndateUnpatch is the engine's tombstone path: Brand
// downdate of expired cells plus the factor-sized pipeline re-run.
func BenchmarkDowndateUnpatch(b *testing.B) {
	for _, n := range []int{512, 1024} {
		m := benchStreamMatrix(n, benchUpdateNNZ)
		d, err := core.DecomposeSparse(m, core.ISVD4, benchUpdateOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, frac := range []float64{0.001, 0.01, 0.10} {
			delta := core.Delta{Unpatch: tombstoneBatch(m, frac)}
			b.Run(fmt.Sprintf("n=%d/r=20/batch=%g%%", n, frac*100), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d2, err := d.Update(delta, core.Options{Refresh: core.RefreshNever})
					if err != nil {
						b.Fatal(err)
					}
					mustStayAdditive(b, d2)
				}
			})
		}
	}
}

// BenchmarkDowndateRemoveRows is the structural downdate: whole rows
// leave the window and the factors shrink with them.
func BenchmarkDowndateRemoveRows(b *testing.B) {
	for _, n := range []int{512, 1024} {
		m := benchStreamMatrix(n, benchUpdateNNZ)
		d, err := core.DecomposeSparse(m, core.ISVD4, benchUpdateOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range []int{1, 8} {
			rows := make([]int, k)
			for i := range rows {
				rows[i] = i
			}
			delta := core.Delta{RemoveRows: rows}
			b.Run(fmt.Sprintf("n=%d/r=20/rows=%d", n, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d2, err := d.Update(delta, core.Options{Refresh: core.RefreshNever})
					if err != nil {
						b.Fatal(err)
					}
					mustStayAdditive(b, d2)
				}
			})
		}
	}
}

// BenchmarkDowndateForget is the forgetting factor: a spectrum scale
// plus the factor-sized pipeline re-run — the cheapest update there is.
func BenchmarkDowndateForget(b *testing.B) {
	for _, n := range []int{512, 1024} {
		m := benchStreamMatrix(n, benchUpdateNNZ)
		d, err := core.DecomposeSparse(m, core.ISVD4, benchUpdateOpts())
		if err != nil {
			b.Fatal(err)
		}
		delta := core.Delta{Forget: 0.95}
		b.Run(fmt.Sprintf("n=%d/r=20", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d2, err := d.Update(delta, core.Options{Refresh: core.RefreshNever})
				if err != nil {
					b.Fatal(err)
				}
				mustStayAdditive(b, d2)
			}
		})
	}
}

// BenchmarkWindowReplay is one slide of a constant-size window: a batch
// of arriving cells (rowBatch from the bottom of the matrix) plus
// equally heavy expiries (tombstoneBatch from the top), folded in as
// one combined additive update. Against BenchmarkUpdateColdDecompose
// (the redecomposition of the slid window) this is the crossover
// BENCH_window.json pins.
func BenchmarkWindowReplay(b *testing.B) {
	for _, n := range []int{512, 1024} {
		m := benchStreamMatrix(n, benchUpdateNNZ)
		d, err := core.DecomposeSparse(m, core.ISVD4, benchUpdateOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, frac := range []float64{0.001, 0.01, 0.10} {
			// Arrivals scale stored cells of rows from the bottom;
			// expiries tombstone rows from the top — disjoint by
			// construction, together ~2·frac of NNZ churn.
			arrive := rowBatchFrom(m, m.Rows-1, -1, frac)
			expire := tombstoneBatch(m, frac)
			delta := core.Delta{Patch: arrive, Unpatch: expire}
			b.Run(fmt.Sprintf("n=%d/r=20/churn=%g%%", n, frac*100), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d2, err := d.Update(delta, core.Options{Refresh: core.RefreshNever})
					if err != nil {
						b.Fatal(err)
					}
					mustStayAdditive(b, d2)
				}
			})
		}
	}
}

// rowBatchFrom is rowBatch walking rows from a given start in a given
// direction, so arrivals and expiries can draw from disjoint row
// ranges.
func rowBatchFrom(m *sparse.ICSR, start, step int, frac float64) []sparse.ITriplet {
	target := int(float64(m.NNZ()) * frac)
	if target < 1 {
		target = 1
	}
	var patch []sparse.ITriplet
	for i := start; i >= 0 && i < m.Rows && len(patch) < target; i += step {
		cols, lo, hi := m.RowView(i)
		for p, j := range cols {
			patch = append(patch, sparse.ITriplet{Row: i, Col: j, Lo: lo[p] * 1.01, Hi: hi[p] * 1.01})
		}
	}
	return patch
}
