package parallel

import (
	"strings"
	"sync/atomic"
	"testing"
)

// coverage runs ForWith and returns a per-index visit count.
func coverage(t *testing.T, workers, n, grain int) []int32 {
	t.Helper()
	visits := make([]int32, n)
	ForWith(workers, n, grain, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("ForWith(%d, %d, %d): bad chunk [%d, %d)", workers, n, grain, lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
	})
	return visits
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{1, 2, 7, 100, 1001} {
			for _, grain := range []int{0, 1, 3, 100, 5000} {
				for i, c := range coverage(t, workers, n, grain) {
					if c != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, c)
					}
				}
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	For(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For called fn on an empty range")
	}
}

func TestForWorkersExceedingRange(t *testing.T) {
	// More workers than indices must not produce empty or duplicate chunks.
	for i, c := range coverage(t, 32, 5, 1) {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	var calls int
	ForWith(1, 100, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("single-worker chunk [%d, %d), want [0, 100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("single-worker For made %d calls, want 1", calls)
	}
}

func TestForGrainBoundsChunkCount(t *testing.T) {
	var chunks atomic.Int32
	ForWith(8, 100, 50, func(lo, hi int) {
		chunks.Add(1)
		if hi-lo < 50 {
			t.Errorf("chunk [%d, %d) narrower than grain 50", lo, hi)
		}
	})
	if got := chunks.Load(); got > 2 {
		t.Fatalf("grain 50 over n=100 produced %d chunks, want <= 2", got)
	}
}

// TestForGrainLowerBound pins the "at least grain indices" contract on
// parameters where the 4x oversplit would otherwise round the chunk size
// below grain (all chunks except the final remainder must honor it).
func TestForGrainLowerBound(t *testing.T) {
	for _, tc := range [][3]int{{8, 100, 30}, {3, 1000, 7}, {16, 129, 64}} {
		workers, n, grain := tc[0], tc[1], tc[2]
		var last atomic.Int32
		ForWith(workers, n, grain, func(lo, hi int) {
			if hi-lo < grain && hi != n {
				t.Errorf("workers=%d n=%d grain=%d: non-final chunk [%d, %d) narrower than grain", workers, n, grain, lo, hi)
			}
			if hi == n {
				last.Add(1)
			}
		})
		if last.Load() != 1 {
			t.Fatalf("workers=%d n=%d grain=%d: expected exactly one final chunk", workers, n, grain)
		}
	}
}

func TestDoRunsAllFunctions(t *testing.T) {
	var ran [10]atomic.Bool
	fns := make([]func(), len(ran))
	for i := range fns {
		i := i
		fns[i] = func() { ran[i].Store(true) }
	}
	Do(fns...)
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("Do skipped function %d", i)
		}
	}
	Do() // no-op, must not hang
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(-1) // resets to default
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d after reset, want >= 1", got)
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	ForWith(4, 1000, 1, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

// TestNestedForStaysBounded checks the global helper budget: nested
// For calls must still cover every index exactly once while the number
// of in-flight helper goroutines never exceeds Workers()-1.
func TestNestedForStaysBounded(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	outer := make([]int32, 48)
	ForWith(4, len(outer), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			inner := make([]int32, 100)
			ForWith(4, len(inner), 1, func(a, b int) {
				for j := a; j < b; j++ {
					inner[j]++
				}
				if h := helpers.Load(); h > 3 {
					t.Errorf("helper budget exceeded: %d in flight with Workers()=4", h)
				}
			})
			for j, c := range inner {
				if c != 1 {
					t.Errorf("nested index %d visited %d times", j, c)
				}
			}
			atomic.AddInt32(&outer[i], 1)
		}
	})
	for i, c := range outer {
		if c != 1 {
			t.Fatalf("outer index %d visited %d times", i, c)
		}
	}
}

// TestForConcurrentSum exercises the pool under the race detector with a
// shared output slice written at disjoint ranges.
func TestForConcurrentSum(t *testing.T) {
	n := 100000
	out := make([]int, n)
	For(n, 128, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * 2
		}
	})
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
