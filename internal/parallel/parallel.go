// Package parallel is the repository's shared data-parallel execution
// layer: a bounded worker pool that schedules contiguous index ranges
// across goroutines. Every hot kernel (dense and interval matrix
// products, the eigensolver sweeps, the NMF/PMF epoch updates) and every
// coarse fan-out (endpoint decompositions, the experiment method grid)
// routes through this package, so total concurrency is bounded in one
// place instead of by scattered ad-hoc sync.WaitGroup fan-outs.
//
// Determinism contract: For partitions [0, n) into contiguous chunks
// whose boundaries depend on the requested worker count, so a chunk body
// must not carry state across its own boundary (no chunk-level partial
// reductions combined afterwards). Kernels built on it write disjoint
// output ranges and keep each output ELEMENT's floating-point operation
// order fixed regardless of which chunk computes it; under that
// discipline results are bitwise identical for any worker count
// (including 1), and a fixed-seed run is exactly reproducible on any
// machine.
//
// Concurrency is bounded globally, not per call: helper goroutines are
// claimed from a shared budget of Workers()-1 slots, so nested For/Do
// calls (a decomposition fan-out whose kernels are themselves parallel)
// degrade to inline execution instead of multiplying goroutines.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// configured holds the package-level worker count; 0 means "use
// runtime.GOMAXPROCS(0)".
var configured atomic.Int64

// Workers returns the current package-level worker bound.
func Workers() int {
	if n := configured.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the package-level worker bound. n <= 0 resets to the
// default (GOMAXPROCS). It is safe for concurrent use; in-flight For/Do
// calls keep the bound they started with.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	configured.Store(int64(n))
}

// Grain returns the For grain for a loop whose per-index cost is roughly
// perItem flops: chunks of ~32k flops amortize goroutine scheduling, and
// loops cheaper than one chunk in total run inline on the caller. Every
// compute kernel in the repository derives its grain from this one
// constant so chunk sizing can be tuned in one place.
func Grain(perItem int) int {
	const chunkFlops = 32 * 1024
	if perItem <= 0 {
		return chunkFlops
	}
	g := chunkFlops / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// helpers counts pool helper goroutines currently in flight across all
// For/Do calls; it is capped at Workers()-1 so nesting cannot
// oversubscribe the machine.
var helpers atomic.Int64

func acquireHelper() bool {
	for {
		cur := helpers.Load()
		if cur >= int64(Workers()-1) {
			return false
		}
		if helpers.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func releaseHelper() { helpers.Add(-1) }

// For runs fn over the index range [0, n) split into contiguous chunks of
// at least grain indices, using up to Workers() goroutines (including the
// caller). grain is the scheduling granularity: pick it so one chunk does
// enough work (tens of microseconds) to amortize scheduling. When the
// range fits in a single chunk — or only one worker is available — fn is
// invoked inline as fn(0, n), so small problems pay no goroutine
// overhead and the serial fallback is the n == 1 worker case of the same
// code path.
func For(n, grain int, fn func(lo, hi int)) {
	ForWith(0, n, grain, fn)
}

// ForWith is For with an explicit worker bound; workers <= 0 means
// Workers(). It is the hook for per-call overrides such as
// core.Options.Workers.
func ForWith(workers, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if workers <= 0 {
		workers = Workers()
	}
	maxChunks := (n + grain - 1) / grain
	if workers > maxChunks {
		workers = maxChunks
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	// Oversplit by 4x for dynamic load balancing (chunks are claimed from
	// an atomic counter, so a slow chunk doesn't stall the rest), while
	// keeping every chunk at least grain wide.
	chunks := workers * 4
	if chunks > maxChunks {
		chunks = maxChunks
	}
	size := (n + chunks - 1) / chunks
	if size < grain {
		size = grain
	}
	chunks = (n + size - 1) / size

	var (
		next     atomic.Int64
		panicked atomic.Pointer[panicValue]
		wg       sync.WaitGroup
	)
	body := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicValue{r})
			}
		}()
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	// Helpers come from the global budget; when it is exhausted (e.g. a
	// nested call from inside another pool worker) the caller just works
	// through the chunks alone. Chunk boundaries were fixed above, so the
	// helper count never affects results.
	for w := 1; w < workers; w++ {
		if !acquireHelper() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer releaseHelper()
			body()
		}()
	}
	body()
	wg.Wait()
	if p := panicked.Load(); p != nil {
		// Re-panic with the original value so callers can still inspect
		// it; the worker's stack is lost, which is the price of not
		// crashing the whole process from a pool goroutine.
		panic(p.v)
	}
}

type panicValue struct{ v any }

// Do runs the given independent functions, at most Workers() at a time,
// and returns when all have completed. It replaces the hand-rolled
// two-goroutine sync.WaitGroup pattern for endpoint-pair work (e.g. the
// lo/hi SVDs of ISVD1).
func Do(fns ...func()) {
	DoWith(0, fns...)
}

// DoWith is Do with an explicit worker bound; workers <= 0 means
// Workers().
func DoWith(workers int, fns ...func()) {
	ForWith(workers, len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}
