package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("identical RMSE = %g", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %g", got)
	}
	if RMSE(nil, nil) != 0 {
		t.Fatal("empty RMSE != 0")
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestF1MacroPerfect(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2}
	if got := F1Macro(truth, truth); got != 1 {
		t.Fatalf("perfect F1 = %g", got)
	}
}

func TestF1MacroKnown(t *testing.T) {
	// Two classes; class 0: tp=1 fp=1 fn=1 → P=R=0.5 → F1=0.5.
	// Class 1: tp=1 fp=1 fn=1 → F1=0.5. Macro = 0.5.
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 1, 1, 0}
	if got := F1Macro(pred, truth); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("F1 = %g, want 0.5", got)
	}
}

func TestF1MacroAllWrong(t *testing.T) {
	truth := []int{0, 0, 0}
	pred := []int{1, 1, 1}
	if got := F1Macro(pred, truth); got != 0 {
		t.Fatalf("all-wrong F1 = %g", got)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %g", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy != 0")
	}
}

func TestNMIIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := NMI(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(a,a) = %g", got)
	}
	// Renamed labels still give 1.
	b := []int{5, 5, 9, 9, 7, 7}
	if got := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI renamed = %g", got)
	}
}

func TestNMIIndependent(t *testing.T) {
	// Perfectly balanced independent labelings → MI 0.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	if got := NMI(a, b); got > 1e-9 {
		t.Fatalf("independent NMI = %g", got)
	}
}

func TestNMIConstantLabelings(t *testing.T) {
	if got := NMI([]int{1, 1}, []int{2, 2}); got != 1 {
		t.Fatalf("both constant = %g", got)
	}
	if got := NMI([]int{1, 1}, []int{0, 1}); got != 0 {
		t.Fatalf("one constant = %g", got)
	}
}

// Property: NMI is symmetric and within [0, 1].
func TestPropNMI(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		x, y := NMI(a, b), NMI(b, a)
		return math.Abs(x-y) < 1e-9 && x >= 0 && x <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: F1Macro and Accuracy are 1 exactly on perfect predictions and
// bounded in [0, 1].
func TestPropF1Bounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		truth := make([]int, n)
		pred := make([]int, n)
		for i := range truth {
			truth[i] = rng.Intn(3)
			pred[i] = rng.Intn(3)
		}
		f1 := F1Macro(pred, truth)
		if f1 < 0 || f1 > 1 {
			return false
		}
		return F1Macro(truth, truth) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
