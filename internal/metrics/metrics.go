// Package metrics implements the evaluation measures used across the
// paper's experiments: root-mean-square error (reconstruction and rating
// prediction), macro-averaged F1 score (NN classification), and
// normalized mutual information (clustering quality, via Cover & Thomas).
//
// Every accumulation here iterates slices in index order — label sets
// are remapped to dense ids in first-appearance order (labelIDs) rather
// than ranged over as maps, so each metric value is bitwise reproducible
// run to run. Before that rewrite, F1Macro and NMI summed per-class
// terms in Go's randomized map iteration order, and floating-point
// addition is not associative: the reported scores wobbled in the last
// bits between runs (caught by ivmfcheck's detorder analyzer).
//
//ivmf:deterministic
package metrics

import (
	"fmt"
	"math"
)

// RMSE returns the root-mean-square error between two equal-length
// slices. It panics on length mismatch and returns 0 for empty input.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("metrics: RMSE: %d vs %d values", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MatrixRMSE returns the RMSE between two flat float64 slices interpreted
// as matrices (a convenience for dense reconstruction error).
func MatrixRMSE(a, b []float64) float64 { return RMSE(a, b) }

// F1Macro returns the macro-averaged F1 score of a multi-class
// prediction: per-class F1 (harmonic mean of precision and recall, 0 when
// undefined), averaged over the classes present in the ground truth.
func F1Macro(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("metrics: F1Macro: %d vs %d labels", len(pred), len(truth)))
	}
	if len(truth) == 0 {
		return 0
	}
	ids, k := labelIDs(truth, pred)
	tp := make([]int, k)
	fp := make([]int, k)
	fn := make([]int, k)
	inTruth := make([]bool, k)
	for _, c := range truth {
		inTruth[ids[c]] = true
	}
	for i := range truth {
		if pred[i] == truth[i] {
			tp[ids[truth[i]]]++
		} else {
			fp[ids[pred[i]]]++
			fn[ids[truth[i]]]++
		}
	}
	var sum float64
	classes := 0
	for id := 0; id < k; id++ {
		if !inTruth[id] {
			continue // predicted-only labels contribute no class term
		}
		classes++
		p := safeDiv(float64(tp[id]), float64(tp[id]+fp[id]))
		r := safeDiv(float64(tp[id]), float64(tp[id]+fn[id]))
		if p+r > 0 {
			sum += 2 * p * r / (p + r)
		}
	}
	return sum / float64(classes)
}

// Accuracy returns the fraction of matching labels.
func Accuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("metrics: Accuracy: length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	hit := 0
	for i := range truth {
		if pred[i] == truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// NMI returns the normalized mutual information between two labelings,
// I(A;B) / sqrt(H(A)·H(B)), in [0, 1]. Identical (up to renaming)
// labelings give 1; independent labelings give ≈0. If either labeling has
// zero entropy, NMI is 1 when both are constant and 0 otherwise.
func NMI(a, b []int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: NMI: %d vs %d labels", len(a), len(b)))
	}
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	ia, ka := labelIDs(a)
	ib, kb := labelIDs(b)
	ca := make([]float64, ka)
	cb := make([]float64, kb)
	joint := make([]float64, ka*kb)
	for i := range a {
		x, y := ia[a[i]], ib[b[i]]
		ca[x]++
		cb[y]++
		joint[x*kb+y]++
	}
	ha := entropy(ca, n)
	hb := entropy(cb, n)
	if ha == 0 || hb == 0 {
		if ha == 0 && hb == 0 {
			return 1
		}
		return 0
	}
	var mi float64
	for x := 0; x < ka; x++ {
		for y := 0; y < kb; y++ {
			nij := joint[x*kb+y]
			if nij == 0 {
				continue
			}
			pij := nij / n
			mi += pij * math.Log(pij*n*n/(ca[x]*cb[y]))
		}
	}
	nmi := mi / math.Sqrt(ha*hb)
	// Guard tiny floating point overshoot.
	if nmi > 1 {
		nmi = 1
	}
	if nmi < 0 {
		nmi = 0
	}
	return nmi
}

// labelIDs remaps arbitrary int labels to dense ids 0..k-1 in order of
// first appearance across the given slices, so downstream accumulations
// can iterate slices in a fixed order instead of ranging over maps.
func labelIDs(lists ...[]int) (map[int]int, int) {
	ids := map[int]int{}
	for _, xs := range lists {
		for _, x := range xs {
			if _, ok := ids[x]; !ok {
				ids[x] = len(ids)
			}
		}
	}
	return ids, len(ids)
}

// entropy computes -Σ p·log p over per-label counts. Ids built by
// labelIDs all appear at least once, so every count is positive.
func entropy(counts []float64, n float64) float64 {
	var h float64
	for _, c := range counts {
		p := c / n
		h -= p * math.Log(p)
	}
	return h
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
