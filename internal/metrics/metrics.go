// Package metrics implements the evaluation measures used across the
// paper's experiments: root-mean-square error (reconstruction and rating
// prediction), macro-averaged F1 score (NN classification), and
// normalized mutual information (clustering quality, via Cover & Thomas).
package metrics

import (
	"fmt"
	"math"
)

// RMSE returns the root-mean-square error between two equal-length
// slices. It panics on length mismatch and returns 0 for empty input.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("metrics: RMSE: %d vs %d values", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MatrixRMSE returns the RMSE between two flat float64 slices interpreted
// as matrices (a convenience for dense reconstruction error).
func MatrixRMSE(a, b []float64) float64 { return RMSE(a, b) }

// F1Macro returns the macro-averaged F1 score of a multi-class
// prediction: per-class F1 (harmonic mean of precision and recall, 0 when
// undefined), averaged over the classes present in the ground truth.
func F1Macro(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("metrics: F1Macro: %d vs %d labels", len(pred), len(truth)))
	}
	if len(truth) == 0 {
		return 0
	}
	classes := map[int]bool{}
	for _, c := range truth {
		classes[c] = true
	}
	tp := map[int]int{}
	fp := map[int]int{}
	fn := map[int]int{}
	for i := range truth {
		if pred[i] == truth[i] {
			tp[truth[i]]++
		} else {
			fp[pred[i]]++
			fn[truth[i]]++
		}
	}
	var sum float64
	for c := range classes {
		p := safeDiv(float64(tp[c]), float64(tp[c]+fp[c]))
		r := safeDiv(float64(tp[c]), float64(tp[c]+fn[c]))
		if p+r > 0 {
			sum += 2 * p * r / (p + r)
		}
	}
	return sum / float64(len(classes))
}

// Accuracy returns the fraction of matching labels.
func Accuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("metrics: Accuracy: length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	hit := 0
	for i := range truth {
		if pred[i] == truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// NMI returns the normalized mutual information between two labelings,
// I(A;B) / sqrt(H(A)·H(B)), in [0, 1]. Identical (up to renaming)
// labelings give 1; independent labelings give ≈0. If either labeling has
// zero entropy, NMI is 1 when both are constant and 0 otherwise.
func NMI(a, b []int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: NMI: %d vs %d labels", len(a), len(b)))
	}
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	ca := map[int]float64{}
	cb := map[int]float64{}
	joint := map[[2]int]float64{}
	for i := range a {
		ca[a[i]]++
		cb[b[i]]++
		joint[[2]int{a[i], b[i]}]++
	}
	ha := entropy(ca, n)
	hb := entropy(cb, n)
	if ha == 0 || hb == 0 {
		if ha == 0 && hb == 0 {
			return 1
		}
		return 0
	}
	var mi float64
	for k, nij := range joint {
		pij := nij / n
		mi += pij * math.Log(pij*n*n/(ca[k[0]]*cb[k[1]]))
	}
	nmi := mi / math.Sqrt(ha*hb)
	// Guard tiny floating point overshoot.
	if nmi > 1 {
		nmi = 1
	}
	if nmi < 0 {
		nmi = 0
	}
	return nmi
}

func entropy(counts map[int]float64, n float64) float64 {
	var h float64
	for _, c := range counts {
		p := c / n
		h -= p * math.Log(p)
	}
	return h
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
