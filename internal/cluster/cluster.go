// Package cluster implements the classification and clustering tasks of
// the paper's face experiments (Section 6.4): 1-nearest-neighbor
// classification and K-means clustering, both over interval-valued
// feature vectors using the interval Euclidean distance
//
//	dist(a, b) = sqrt( Σ (a*−b*)² + (a^*−b^*)² ).
//
// Scalar features are the degenerate case (Lo == Hi), for which the
// distance reduces to √2 times the ordinary Euclidean distance — a
// monotone transform that leaves neighbor ranking and cluster assignments
// unchanged.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/imatrix"
)

// rowDist2 returns the squared interval Euclidean distance between row i
// of a and row j of b.
func rowDist2(a *imatrix.IMatrix, i int, b *imatrix.IMatrix, j int) float64 {
	alo := a.Lo.RowView(i)
	ahi := a.Hi.RowView(i)
	blo := b.Lo.RowView(j)
	bhi := b.Hi.RowView(j)
	var s float64
	for k := range alo {
		dl := alo[k] - blo[k]
		dh := ahi[k] - bhi[k]
		s += dl*dl + dh*dh
	}
	return s
}

// Classify1NN labels every row of test with the label of its nearest
// train row under the interval Euclidean distance.
func Classify1NN(train *imatrix.IMatrix, trainLabels []int, test *imatrix.IMatrix) ([]int, error) {
	if train.Rows() != len(trainLabels) {
		return nil, fmt.Errorf("cluster: %d train rows but %d labels", train.Rows(), len(trainLabels))
	}
	if train.Cols() != test.Cols() {
		return nil, fmt.Errorf("cluster: feature width mismatch %d vs %d", train.Cols(), test.Cols())
	}
	out := make([]int, test.Rows())
	for i := 0; i < test.Rows(); i++ {
		best, bestD := -1, math.Inf(1)
		for t := 0; t < train.Rows(); t++ {
			if d := rowDist2(test, i, train, t); d < bestD {
				best, bestD = t, d
			}
		}
		out[i] = trainLabels[best]
	}
	return out, nil
}

// KMeansResult carries cluster assignments and the final centroids.
type KMeansResult struct {
	Assignments []int
	Centroids   *imatrix.IMatrix
	Iterations  int
}

// KMeans clusters the rows of data into k clusters using Lloyd's
// algorithm with k-means++ seeding, interval Euclidean distances, and
// per-endpoint mean centroids. maxIter bounds the Lloyd iterations
// (default 50 when <= 0).
func KMeans(data *imatrix.IMatrix, k, maxIter int, rng *rand.Rand) (*KMeansResult, error) {
	n := data.Rows()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("cluster: k = %d with %d rows", k, n)
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	centroids := seedPlusPlus(data, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := rowDist2(data, i, centroids, c); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		recomputeCentroids(data, assign, centroids, rng)
	}
	return &KMeansResult{Assignments: assign, Centroids: centroids, Iterations: iters}, nil
}

// seedPlusPlus picks k initial centroids with k-means++ sampling.
func seedPlusPlus(data *imatrix.IMatrix, k int, rng *rand.Rand) *imatrix.IMatrix {
	n := data.Rows()
	centroids := imatrix.New(k, data.Cols())
	first := rng.Intn(n)
	copyRow(centroids, 0, data, first)
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = rowDist2(data, i, centroids, 0)
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			u := rng.Float64() * total
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if u <= acc {
					pick = i
					break
				}
			}
		}
		copyRow(centroids, c, data, pick)
		for i := range d2 {
			if d := rowDist2(data, i, centroids, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// recomputeCentroids replaces each centroid with the per-endpoint mean of
// its members; empty clusters are re-seeded from a random row.
func recomputeCentroids(data *imatrix.IMatrix, assign []int, centroids *imatrix.IMatrix, rng *rand.Rand) {
	k := centroids.Rows()
	cols := data.Cols()
	counts := make([]int, k)
	for i := range centroids.Lo.Data {
		centroids.Lo.Data[i] = 0
		centroids.Hi.Data[i] = 0
	}
	for i, c := range assign {
		counts[c]++
		cl := centroids.Lo.RowView(c)
		ch := centroids.Hi.RowView(c)
		dl := data.Lo.RowView(i)
		dh := data.Hi.RowView(i)
		for j := 0; j < cols; j++ {
			cl[j] += dl[j]
			ch[j] += dh[j]
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			copyRow(centroids, c, data, rng.Intn(data.Rows()))
			continue
		}
		inv := 1 / float64(counts[c])
		cl := centroids.Lo.RowView(c)
		ch := centroids.Hi.RowView(c)
		for j := 0; j < cols; j++ {
			cl[j] *= inv
			ch[j] *= inv
		}
	}
}

func copyRow(dst *imatrix.IMatrix, di int, src *imatrix.IMatrix, si int) {
	copy(dst.Lo.RowView(di), src.Lo.RowView(si))
	copy(dst.Hi.RowView(di), src.Hi.RowView(si))
}
