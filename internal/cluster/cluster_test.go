package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/metrics"
)

// blobs builds k well-separated interval clusters of sz points each in
// dim dimensions; returns the data and true labels.
func blobs(rng *rand.Rand, k, sz, dim int, halfSpan float64) (*imatrix.IMatrix, []int) {
	n := k * sz
	data := imatrix.New(n, dim)
	labels := make([]int, n)
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for d := range center {
			center[d] = float64(c*20) + rng.Float64()
		}
		for p := 0; p < sz; p++ {
			row := c*sz + p
			labels[row] = c
			for d := 0; d < dim; d++ {
				v := center[d] + rng.NormFloat64()*0.5
				data.Set(row, d, interval.New(v-halfSpan, v+halfSpan))
			}
		}
	}
	return data, labels
}

func TestClassify1NNSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data, labels := blobs(rng, 3, 10, 4, 0.2)
	// Odd rows train, even rows test.
	train := imatrix.New(15, 4)
	test := imatrix.New(15, 4)
	var trainLabels, testLabels []int
	ti, si := 0, 0
	for i := 0; i < data.Rows(); i++ {
		if i%2 == 0 {
			copy(train.Lo.RowView(ti), data.Lo.RowView(i))
			copy(train.Hi.RowView(ti), data.Hi.RowView(i))
			trainLabels = append(trainLabels, labels[i])
			ti++
		} else {
			copy(test.Lo.RowView(si), data.Lo.RowView(i))
			copy(test.Hi.RowView(si), data.Hi.RowView(i))
			testLabels = append(testLabels, labels[i])
			si++
		}
	}
	pred, err := Classify1NN(train, trainLabels, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := metrics.Accuracy(pred, testLabels); acc != 1 {
		t.Fatalf("separated clusters 1-NN accuracy = %g", acc)
	}
}

func TestClassify1NNValidation(t *testing.T) {
	a := imatrix.New(2, 3)
	if _, err := Classify1NN(a, []int{1}, a); err == nil {
		t.Fatal("label mismatch accepted")
	}
	b := imatrix.New(2, 4)
	if _, err := Classify1NN(a, []int{1, 2}, b); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, labels := blobs(rng, 4, 12, 3, 0.3)
	res, err := KMeans(data, 4, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if nmi := metrics.NMI(res.Assignments, labels); nmi < 0.99 {
		t.Fatalf("K-means NMI = %g on separated blobs", nmi)
	}
	if res.Iterations <= 0 {
		t.Fatal("iterations not reported")
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := imatrix.New(3, 2)
	if _, err := KMeans(data, 0, 10, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(data, 5, 10, rng); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, _ := blobs(rng, 2, 3, 2, 0.1)
	res, err := KMeans(data, data.Rows(), 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With k == n each point can sit in its own cluster; assignments valid.
	for _, a := range res.Assignments {
		if a < 0 || a >= data.Rows() {
			t.Fatalf("bad assignment %d", a)
		}
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	data, _ := blobs(rand.New(rand.NewSource(5)), 3, 8, 3, 0.2)
	r1, err := KMeans(data, 3, 50, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(data, 3, 50, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assignments {
		if r1.Assignments[i] != r2.Assignments[i] {
			t.Fatal("same seed gave different clusterings")
		}
	}
}

func TestScalarDegenerateCase(t *testing.T) {
	// Scalar features (Lo == Hi) must work identically.
	rng := rand.New(rand.NewSource(6))
	data, labels := blobs(rng, 3, 10, 4, 0)
	if data.MaxSpan() != 0 {
		t.Fatal("expected degenerate data")
	}
	res, err := KMeans(data, 3, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if nmi := metrics.NMI(res.Assignments, labels); nmi < 0.99 {
		t.Fatalf("scalar K-means NMI = %g", nmi)
	}
}
