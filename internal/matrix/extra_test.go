package matrix

import (
	"strings"
	"testing"
)

func TestString(t *testing.T) {
	m := FromRows([][]float64{{1.5, 2}, {3, 4}})
	s := m.String()
	if !strings.Contains(s, "1.5") || strings.Count(s, "\n") != 2 {
		t.Fatalf("String = %q", s)
	}
}

func TestDiagonalRectangular(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	d := m.Diagonal()
	if len(d) != 2 || d[0] != 1 || d[1] != 5 {
		t.Fatalf("Diagonal = %v", d)
	}
}

func TestSetRowAndRowView(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 2) != 9 {
		t.Fatal("SetRow failed")
	}
	rv := m.RowView(1)
	rv[0] = 70
	if m.At(1, 0) != 70 {
		t.Fatal("RowView not aliasing")
	}
}

func TestPanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	m := New(2, 3)
	check("FromRows empty", func() { FromRows(nil) })
	check("FromRows ragged", func() { FromRows([][]float64{{1, 2}, {3}}) })
	check("Mul", func() { Mul(m, m) })
	check("MulT", func() { MulT(m, New(2, 4)) })
	check("TMul", func() { TMul(m, New(3, 2)) })
	check("Add", func() { Add(m, New(3, 2)) })
	check("Sub", func() { Sub(m, New(3, 2)) })
	check("Mean", func() { Mean(m, New(3, 2)) })
	check("SetCol", func() { m.SetCol(0, []float64{1}) })
	check("SetRow", func() { m.SetRow(0, []float64{1}) })
	check("SubMatrix", func() { m.SubMatrix(0, 3, 0, 1) })
}

func TestInverseNotSquare(t *testing.T) {
	if _, err := Inverse(New(2, 3)); err == nil {
		t.Fatal("non-square Inverse accepted")
	}
	if _, err := Solve(New(2, 3), New(2, 1)); err == nil {
		t.Fatal("non-square Solve accepted")
	}
	if _, err := Solve(New(2, 2), New(3, 1)); err == nil {
		t.Fatal("mismatched Solve accepted")
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, New(2, 1)); err == nil {
		t.Fatal("singular Solve accepted")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(New(2, 2), New(2, 3), 1) {
		t.Fatal("different shapes reported equal")
	}
}
