// Package matrix implements the dense, row-major scalar matrix substrate
// used by every factorization in this repository: construction,
// element access, arithmetic, transposition, norms, column operations,
// and Gauss-Jordan inversion. Higher-level numerics (eigen, SVD,
// pseudo-inverse) live in internal/eig; the only dependency here is the
// shared worker pool of internal/parallel, which the O(n³) products are
// sharded on (with a size cutoff so small matrices run serially).
//
//ivmf:deterministic
package matrix

import (
	"fmt"
	"math"
)

// Dense is an n×m dense matrix of float64 stored in row-major order.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[i*Cols+j] == element (i,j)
}

// New allocates a zeroed r×c matrix. It panics on non-positive dimensions.
func New(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("matrix: New(%d, %d): non-positive dimension", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: FromRows: empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			panic("matrix: FromRows: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square diagonal matrix with the given diagonal.
func Diag(d []float64) *Dense {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Data[i*len(d)+i] = v
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// RowView returns row i as a slice sharing m's backing storage.
func (m *Dense) RowView(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetCol overwrites column j with v.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic("matrix: SetCol: length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// SetRow overwrites row i with v.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic("matrix: SetRow: length mismatch")
	}
	copy(m.Data[i*m.Cols:(i+1)*m.Cols], v)
}

// Diagonal returns a copy of the main diagonal.
func (m *Dense) Diagonal() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = m.Data[i*m.Cols+i]
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	return TransposeInto(New(m.Cols, m.Rows), m)
}

// Mul returns the product a·b. It panics on incompatible shapes.
//
// The product runs on the cache-blocked kernel of MulInto: sharded over
// blocks of output rows on the shared worker pool, with each element's
// accumulation in fixed ascending k order within one goroutine, so the
// result is bitwise identical for any worker count and tile size. Zero
// left factors are NOT skipped: 0·NaN and 0·±Inf propagate as NaN.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul: %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	return MulInto(New(a.Rows, b.Cols), a, b)
}

// MulT returns a·bᵀ without materializing the transpose, on the blocked
// kernel of MulTInto (same determinism and NaN semantics as Mul).
func MulT(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulT: %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	return MulTInto(New(a.Rows, b.Rows), a, b)
}

// TMul returns aᵀ·b without materializing the transpose, on the blocked
// kernel of TMulInto (same determinism and NaN semantics as Mul).
func TMul(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("matrix: TMul: (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	return TMulInto(New(a.Cols, b.Cols), a, b)
}

// Add returns a + b elementwise.
func Add(a, b *Dense) *Dense {
	checkSameShape("Add", a, b)
	return AddInto(New(a.Rows, a.Cols), a, b)
}

// Sub returns a - b elementwise.
func Sub(a, b *Dense) *Dense {
	checkSameShape("Sub", a, b)
	return SubInto(New(a.Rows, a.Cols), a, b)
}

// Scale returns s·m as a new matrix.
func (m *Dense) Scale(s float64) *Dense {
	return ScaleInto(New(m.Rows, m.Cols), s, m)
}

// Mean returns the elementwise mean (a + b) / 2.
func Mean(a, b *Dense) *Dense {
	checkSameShape("Mean", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = (v + b.Data[i]) / 2
	}
	return out
}

// Frobenius returns the Frobenius norm ‖m‖_F.
func (m *Dense) Frobenius() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports elementwise equality within tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element is finite (no NaN or Inf).
func (m *Dense) IsFinite() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// ColNorm returns the Euclidean norm of column j.
func (m *Dense) ColNorm(j int) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		v := m.Data[i*m.Cols+j]
		s += v * v
	}
	return math.Sqrt(s)
}

// NormalizeColumns scales every column of m (in place) to unit Euclidean
// norm and returns the original column norms (Supplementary Algorithm 5).
// Zero columns are left untouched and report norm 0.
func (m *Dense) NormalizeColumns() []float64 {
	norms := make([]float64, m.Cols)
	for j := 0; j < m.Cols; j++ {
		n := m.ColNorm(j)
		norms[j] = n
		if n == 0 {
			continue
		}
		for i := 0; i < m.Rows; i++ {
			m.Data[i*m.Cols+j] /= n
		}
	}
	return norms
}

// SubMatrix returns the block m[r0:r1, c0:c1] as a new matrix.
func (m *Dense) SubMatrix(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 >= r1 || c0 >= c1 {
		panic("matrix: SubMatrix: bad bounds")
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Data[(i-r0)*out.Cols:(i-r0+1)*out.Cols], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// String renders the matrix with %.4g elements, one row per line.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

func checkSameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: %s: shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
