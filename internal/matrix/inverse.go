package matrix

import (
	"errors"
	"math"
)

// ErrSingular is returned by Inverse and Solve when the matrix is
// numerically singular.
var ErrSingular = errors.New("matrix: singular matrix")

// Inverse returns the inverse of the square matrix m computed by
// Gauss-Jordan elimination with partial pivoting. It returns
// ErrSingular when a pivot underflows.
func Inverse(m *Dense) (*Dense, error) {
	if m.Rows != m.Cols {
		return nil, errors.New("matrix: Inverse: not square")
	}
	n := m.Rows
	// Augmented [A | I] worked in place.
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[row][col]| for row >= col.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := a.At(col, col)
		scaleRow(a, col, 1/p)
		scaleRow(inv, col, 1/p)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(a, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return inv, nil
}

// Solve returns x solving a·x = b for square a (b may have multiple
// columns), via Gaussian elimination with partial pivoting.
func Solve(a, b *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("matrix: Solve: coefficient matrix not square")
	}
	if a.Rows != b.Rows {
		return nil, errors.New("matrix: Solve: dimension mismatch")
	}
	n := a.Rows
	lu := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(lu, pivot, col)
			swapRows(x, pivot, col)
		}
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / lu.At(col, col)
			if f == 0 {
				continue
			}
			axpyRow(lu, r, col, -f)
			axpyRow(x, r, col, -f)
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		p := lu.At(col, col)
		scaleRow(x, col, 1/p)
		scaleRow(lu, col, 1/p)
		for r := 0; r < col; r++ {
			f := lu.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(x, r, col, -f)
			axpyRow(lu, r, col, -f)
		}
	}
	return x, nil
}

func swapRows(m *Dense, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(m *Dense, i int, s float64) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	for k := range ri {
		ri[k] *= s
	}
}

// axpyRow adds s times row j to row i.
func axpyRow(m *Dense, i, j int, s float64) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k] += s * rj[k]
	}
}
