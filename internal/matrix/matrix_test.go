package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(r *rand.Rand, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) did not panic")
		}
	}()
	New(0, 3)
}

func TestFromRowsAndAccess(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("element access wrong")
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
	if r := m.Row(0); r[0] != 1 || r[1] != 2 {
		t.Fatal("Row wrong")
	}
	if c := m.Col(1); c[0] != 2 || c[1] != 9 {
		t.Fatal("Col wrong")
	}
}

func TestIdentityDiag(t *testing.T) {
	i3 := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if i3.At(r, c) != want {
				t.Fatalf("I[%d][%d] = %g", r, c, i3.At(r, c))
			}
		}
	}
	d := Diag([]float64{2, 5})
	if d.At(0, 0) != 2 || d.At(1, 1) != 5 || d.At(0, 1) != 0 {
		t.Fatal("Diag wrong")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 0) {
		t.Fatalf("Mul:\n%v", got)
	}
}

func TestMulTAndTMulAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randDense(r, 4, 6)
	b := randDense(r, 5, 6)
	if !Equal(MulT(a, b), Mul(a, b.T()), 1e-12) {
		t.Error("MulT != Mul(a, bᵀ)")
	}
	c := randDense(r, 4, 3)
	if !Equal(TMul(a, c), Mul(a.T(), c), 1e-12) {
		t.Error("TMul != Mul(aᵀ, c)")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randDense(r, 3, 7)
	if !Equal(a.T().T(), a, 0) {
		t.Error("(Aᵀ)ᵀ != A")
	}
}

func TestAddSubScaleMean(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 10}})
	if got := Add(a, b); got.At(0, 1) != 12 {
		t.Error("Add wrong")
	}
	if got := Sub(b, a); got.At(0, 0) != 2 {
		t.Error("Sub wrong")
	}
	if got := a.Scale(3); got.At(0, 1) != 6 {
		t.Error("Scale wrong")
	}
	if got := Mean(a, b); got.At(0, 0) != 2 || got.At(0, 1) != 6 {
		t.Error("Mean wrong")
	}
}

func TestFrobeniusAndMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, -4}})
	if m.Frobenius() != 5 {
		t.Errorf("Frobenius = %g", m.Frobenius())
	}
	if m.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %g", m.MaxAbs())
	}
}

func TestNormalizeColumns(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {4, 0}})
	norms := m.NormalizeColumns()
	if math.Abs(norms[0]-5) > 1e-12 || norms[1] != 0 {
		t.Fatalf("norms = %v", norms)
	}
	if math.Abs(m.ColNorm(0)-1) > 1e-12 {
		t.Error("column not unit after normalize")
	}
	if m.At(0, 1) != 0 {
		t.Error("zero column modified")
	}
}

func TestSubMatrix(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.SubMatrix(1, 3, 0, 2)
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !Equal(s, want, 0) {
		t.Fatalf("SubMatrix:\n%v", s)
	}
}

func TestInverseKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Mul(a, inv), Identity(2), 1e-12) {
		t.Fatalf("A·A⁻¹ != I:\n%v", Mul(a, inv))
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolve(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := FromRows([][]float64{{5}, {10}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Mul(a, x), b, 1e-12) {
		t.Fatalf("Solve residual: %v", Sub(Mul(a, x), b))
	}
}

func TestIsFinite(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	if !m.IsFinite() {
		t.Error("finite matrix reported non-finite")
	}
	m.Set(0, 0, math.NaN())
	if m.IsFinite() {
		t.Error("NaN matrix reported finite")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestPropTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randDense(r, 2+r.Intn(4), 2+r.Intn(4))
		b := randDense(r, a.Cols, 2+r.Intn(4))
		return Equal(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: random well-conditioned matrices invert to identity.
func TestPropInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		a := randDense(r, n, n)
		// Diagonal dominance guarantees invertibility.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return Equal(Mul(a, inv), Identity(n), 1e-8) && Equal(Mul(inv, a), Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Solve agrees with Inverse·b.
func TestPropSolveAgainstInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := randDense(r, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := randDense(r, n, 2)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return Equal(x, Mul(inv, b), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
