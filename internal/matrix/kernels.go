// Blocked, destination-passing compute kernels. Every O(n³) product in
// this file tiles its loops to L2-sized panels and unrolls rows into a
// register micro-kernel, while preserving the repository's determinism
// contract: each output ELEMENT accumulates its terms in ascending k
// order inside a single accumulator, exactly as the naive triple loop
// does, so results are bitwise identical to the unblocked kernels for
// any worker count and any tile size. Only the interleaving between
// elements changes — never the per-element floating-point operation
// order.
//
// The Into variants overwrite a caller-supplied destination instead of
// allocating, which lets iteration-heavy consumers (the NMF
// multiplicative updates, the eig pseudo-inverse, the ISVD solve steps)
// reuse workspaces across iterations. The allocating entry points in
// matrix.go (Mul, MulT, TMul, Add, Sub, Scale) are thin wrappers over
// these.
//
// NaN/±Inf semantics: the kernels never skip terms with a zero left
// factor, so 0·NaN = NaN and 0·±Inf = NaN propagate into the output per
// IEEE 754 (see TestMulPropagatesNaNInf). Zero-skipping survives only in
// internal/sparse, whose inputs are validated finite at the boundary.
// For finite operands, skipping a zero term adds exactly ±0 to an
// accumulator that is never −0, so the removal changed no finite result
// bitwise.
package matrix

import (
	"fmt"

	"repro/internal/parallel"
)

// Tile sizes of the blocked kernels. blockKC×blockJC (the right-operand
// panel held hot across a row sweep) is sized for L2: 128×256 float64 =
// 256 KiB. blockIC bounds the output/left panel a k sweep revisits.
// They are variables so the tile-boundary tests can pin correctness at
// several (including degenerate) tile shapes; correctness and bitwise
// output never depend on them.
var (
	blockIC = 64
	blockKC = 128
	blockJC = 256
)

// setBlockSizes overrides the tile sizes (test hook). Non-positive
// values panic: the kernels assume at least one index per tile.
func setBlockSizes(ic, kc, jc int) {
	if ic < 1 || kc < 1 || jc < 1 {
		panic("matrix: setBlockSizes: non-positive tile size")
	}
	blockIC, blockKC, blockJC = ic, kc, jc
}

func checkDst(op string, dst *Dense, rows, cols int, operands ...*Dense) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("matrix: %s: dst is %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
	for _, m := range operands {
		if &dst.Data[0] == &m.Data[0] {
			panic(fmt.Sprintf("matrix: %s: dst aliases an operand", op))
		}
	}
}

//ivmf:noalloc
func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// MulInto computes dst = a·b into the caller-supplied dst (overwriting
// it) and returns dst. dst must have shape a.Rows×b.Cols and must not
// alias a or b. The product is sharded over output rows on the shared
// worker pool and cache-blocked inside each shard; see the package
// comment in this file for the determinism contract.
//
//ivmf:noalloc
func MulInto(dst, a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: MulInto: %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("MulInto", dst, a.Rows, b.Cols, a, b)
	zeroFloats(dst.Data)
	parallel.For(a.Rows, parallel.Grain(2*a.Cols*b.Cols), func(lo, hi int) {
		mulRange(dst, a, b, lo, hi)
	})
	return dst
}

// mulRange accumulates dst[rlo:rhi] = a[rlo:rhi]·b with three-level
// blocking: j panels of blockJC (output/right-operand width), k panels
// of blockKC processed in ascending order (so per-element accumulation
// order is the full ascending k sweep), and rows in groups of four so
// each loaded b element feeds four outputs from registers.
//
//ivmf:noalloc
func mulRange(dst, a, b *Dense, rlo, rhi int) {
	kDim, n := a.Cols, b.Cols
	for jc := 0; jc < n; jc += blockJC {
		jEnd := min(jc+blockJC, n)
		for kc := 0; kc < kDim; kc += blockKC {
			kEnd := min(kc+blockKC, kDim)
			i := rlo
			for ; i+4 <= rhi; i += 4 {
				mulPanel4(dst, a, b, i, jc, jEnd, kc, kEnd)
			}
			for ; i < rhi; i++ {
				mulPanel1(dst, a, b, i, jc, jEnd, kc, kEnd)
			}
		}
	}
}

// mulPanel4 is the register micro-kernel: four output rows × one j
// panel × one k panel, with the k loop unrolled four-wide. Each output
// element loads once, receives its four k terms as SEPARATE rounded
// additions in ascending k order (preserving the naive per-element
// operation sequence bitwise), and stores once — quartering the
// destination read-modify-write traffic while every loaded b element
// feeds four rows.
//
//ivmf:noalloc
func mulPanel4(dst, a, b *Dense, i, j0, j1, k0, k1 int) {
	w := j1 - j0
	o0 := dst.Data[i*dst.Cols+j0 : i*dst.Cols+j1 : i*dst.Cols+j1]
	o1 := dst.Data[(i+1)*dst.Cols+j0 : (i+1)*dst.Cols+j1 : (i+1)*dst.Cols+j1]
	o2 := dst.Data[(i+2)*dst.Cols+j0 : (i+2)*dst.Cols+j1 : (i+2)*dst.Cols+j1]
	o3 := dst.Data[(i+3)*dst.Cols+j0 : (i+3)*dst.Cols+j1 : (i+3)*dst.Cols+j1]
	a0 := a.Data[i*a.Cols : (i+1)*a.Cols]
	a1 := a.Data[(i+1)*a.Cols : (i+2)*a.Cols]
	a2 := a.Data[(i+2)*a.Cols : (i+3)*a.Cols]
	a3 := a.Data[(i+3)*a.Cols : (i+4)*a.Cols]
	k := k0
	for ; k+4 <= k1; k += 4 {
		b0 := b.Data[k*b.Cols+j0 : k*b.Cols+j1]
		b1 := b.Data[(k+1)*b.Cols+j0 : (k+1)*b.Cols+j1]
		b2 := b.Data[(k+2)*b.Cols+j0 : (k+2)*b.Cols+j1]
		b3 := b.Data[(k+3)*b.Cols+j0 : (k+3)*b.Cols+j1]
		b0, b1, b2, b3 = b0[:w], b1[:w], b2[:w], b3[:w]
		a00, a01, a02, a03 := a0[k], a0[k+1], a0[k+2], a0[k+3]
		a10, a11, a12, a13 := a1[k], a1[k+1], a1[k+2], a1[k+3]
		a20, a21, a22, a23 := a2[k], a2[k+1], a2[k+2], a2[k+3]
		a30, a31, a32, a33 := a3[k], a3[k+1], a3[k+2], a3[k+3]
		for j, bv0 := range b0 {
			bv1, bv2, bv3 := b1[j], b2[j], b3[j]
			t := o0[j]
			t += a00 * bv0
			t += a01 * bv1
			t += a02 * bv2
			t += a03 * bv3
			o0[j] = t
			t = o1[j]
			t += a10 * bv0
			t += a11 * bv1
			t += a12 * bv2
			t += a13 * bv3
			o1[j] = t
			t = o2[j]
			t += a20 * bv0
			t += a21 * bv1
			t += a22 * bv2
			t += a23 * bv3
			o2[j] = t
			t = o3[j]
			t += a30 * bv0
			t += a31 * bv1
			t += a32 * bv2
			t += a33 * bv3
			o3[j] = t
		}
	}
	for ; k < k1; k++ {
		av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
		brow := b.Data[k*b.Cols+j0 : k*b.Cols+j1]
		brow = brow[:w]
		for j, bv := range brow {
			o0[j] += av0 * bv
			o1[j] += av1 * bv
			o2[j] += av2 * bv
			o3[j] += av3 * bv
		}
	}
}

// mulPanel1 handles the <4 row remainder of a shard.
//
//ivmf:noalloc
func mulPanel1(dst, a, b *Dense, i, j0, j1, k0, k1 int) {
	w := j1 - j0
	orow := dst.Data[i*dst.Cols+j0 : i*dst.Cols+j1 : i*dst.Cols+j1]
	arow := a.Data[i*a.Cols : (i+1)*a.Cols]
	for k := k0; k < k1; k++ {
		av := arow[k]
		brow := b.Data[k*b.Cols+j0 : k*b.Cols+j1]
		brow = brow[:w]
		for j, bv := range brow {
			orow[j] += av * bv
		}
	}
}

// MulTInto computes dst = a·bᵀ into dst (shape a.Rows×b.Rows) without
// materializing the transpose. Every output element is a dot product of
// two contiguous rows, accumulated in a single register over the full
// ascending k range — identical order to the unblocked MulT. Rows of a
// are tiled so the four-column group of b rows stays cache-resident
// across an a panel.
//
//ivmf:noalloc
func MulTInto(dst, a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulTInto: %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("MulTInto", dst, a.Rows, b.Rows, a, b)
	kDim := a.Cols
	parallel.For(a.Rows, parallel.Grain(2*a.Cols*b.Rows), func(rlo, rhi int) {
		for ib := rlo; ib < rhi; ib += blockIC {
			iEnd := min(ib+blockIC, rhi)
			j := 0
			for ; j+4 <= b.Rows; j += 4 {
				b0 := b.Data[j*b.Cols : j*b.Cols+kDim]
				b1 := b.Data[(j+1)*b.Cols : (j+1)*b.Cols+kDim]
				b2 := b.Data[(j+2)*b.Cols : (j+2)*b.Cols+kDim]
				b3 := b.Data[(j+3)*b.Cols : (j+3)*b.Cols+kDim]
				for i := ib; i < iEnd; i++ {
					arow := a.Data[i*a.Cols : i*a.Cols+kDim]
					var s0, s1, s2, s3 float64
					for k, av := range arow {
						s0 += av * b0[k]
						s1 += av * b1[k]
						s2 += av * b2[k]
						s3 += av * b3[k]
					}
					orow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
					orow[j] = s0
					orow[j+1] = s1
					orow[j+2] = s2
					orow[j+3] = s3
				}
			}
			for ; j < b.Rows; j++ {
				brow := b.Data[j*b.Cols : j*b.Cols+kDim]
				for i := ib; i < iEnd; i++ {
					arow := a.Data[i*a.Cols : i*a.Cols+kDim]
					var s float64
					for k, av := range arow {
						s += av * brow[k]
					}
					dst.Data[i*dst.Cols+j] = s
				}
			}
		}
	})
	return dst
}

// TMulInto computes dst = aᵀ·b into dst (shape a.Cols×b.Cols) without
// materializing the transpose. Output rows (columns of a) are sharded
// on the pool; inside a shard the output is tiled blockIC×blockJC so an
// output panel stays hot across its k sweep, with k panels ascending —
// per-element accumulation is the full ascending k order of the
// unblocked TMul.
//
//ivmf:noalloc
func TMulInto(dst, a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("matrix: TMulInto: (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("TMulInto", dst, a.Cols, b.Cols, a, b)
	zeroFloats(dst.Data)
	kDim, n := a.Rows, b.Cols
	parallel.For(a.Cols, parallel.Grain(2*a.Rows*b.Cols), func(rlo, rhi int) {
		for ib := rlo; ib < rhi; ib += blockIC {
			iEnd := min(ib+blockIC, rhi)
			for jc := 0; jc < n; jc += blockJC {
				jEnd := min(jc+blockJC, n)
				w := jEnd - jc
				for kc := 0; kc < kDim; kc += blockKC {
					kEnd := min(kc+blockKC, kDim)
					k := kc
					// Four k indices per pass: each output element is
					// loaded once, receives its four terms as separate
					// rounded additions in ascending k order, and is
					// stored once (same per-element sequence as the
					// one-k remainder loop below).
					for ; k+4 <= kEnd; k += 4 {
						a0 := a.Data[k*a.Cols+ib : k*a.Cols+iEnd]
						a1 := a.Data[(k+1)*a.Cols+ib : (k+1)*a.Cols+iEnd]
						a2 := a.Data[(k+2)*a.Cols+ib : (k+2)*a.Cols+iEnd]
						a3 := a.Data[(k+3)*a.Cols+ib : (k+3)*a.Cols+iEnd]
						b0 := b.Data[k*b.Cols+jc : k*b.Cols+jEnd]
						b1 := b.Data[(k+1)*b.Cols+jc : (k+1)*b.Cols+jEnd]
						b2 := b.Data[(k+2)*b.Cols+jc : (k+2)*b.Cols+jEnd]
						b3 := b.Data[(k+3)*b.Cols+jc : (k+3)*b.Cols+jEnd]
						b0, b1, b2, b3 = b0[:w], b1[:w], b2[:w], b3[:w]
						for ii, av0 := range a0 {
							av1, av2, av3 := a1[ii], a2[ii], a3[ii]
							orow := dst.Data[(ib+ii)*dst.Cols+jc : (ib+ii)*dst.Cols+jEnd]
							orow = orow[:w]
							for j, bv0 := range b0 {
								t := orow[j]
								t += av0 * bv0
								t += av1 * b1[j]
								t += av2 * b2[j]
								t += av3 * b3[j]
								orow[j] = t
							}
						}
					}
					for ; k < kEnd; k++ {
						arow := a.Data[k*a.Cols+ib : k*a.Cols+iEnd]
						brow := b.Data[k*b.Cols+jc : k*b.Cols+jEnd]
						brow = brow[:w]
						for ii, av := range arow {
							orow := dst.Data[(ib+ii)*dst.Cols+jc : (ib+ii)*dst.Cols+jEnd]
							orow = orow[:w]
							for j, bv := range brow {
								orow[j] += av * bv
							}
						}
					}
				}
			}
		}
	})
	return dst
}

// AddInto computes dst = a + b elementwise. dst may alias a or b.
//
//ivmf:noalloc
func AddInto(dst, a, b *Dense) *Dense {
	checkSameShape("AddInto", a, b)
	checkSameShape("AddInto", dst, a)
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	return dst
}

// SubInto computes dst = a - b elementwise. dst may alias a or b.
//
//ivmf:noalloc
func SubInto(dst, a, b *Dense) *Dense {
	checkSameShape("SubInto", a, b)
	checkSameShape("SubInto", dst, a)
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
	return dst
}

// ScaleInto computes dst = s·a elementwise. dst may alias a.
//
//ivmf:noalloc
func ScaleInto(dst *Dense, s float64, a *Dense) *Dense {
	checkSameShape("ScaleInto", dst, a)
	for i, v := range a.Data {
		dst.Data[i] = s * v
	}
	return dst
}

// TransposeInto computes dst = aᵀ into dst (shape a.Cols×a.Rows), in
// cache-friendly square tiles. dst must not alias a.
//
//ivmf:noalloc
func TransposeInto(dst, a *Dense) *Dense {
	checkDst("TransposeInto", dst, a.Cols, a.Rows, a)
	const tile = 32
	for i0 := 0; i0 < a.Rows; i0 += tile {
		i1 := min(i0+tile, a.Rows)
		for j0 := 0; j0 < a.Cols; j0 += tile {
			j1 := min(j0+tile, a.Cols)
			for i := i0; i < i1; i++ {
				arow := a.Data[i*a.Cols+j0 : i*a.Cols+j1]
				for jj, v := range arow {
					dst.Data[(j0+jj)*dst.Cols+i] = v
				}
			}
		}
	}
	return dst
}
