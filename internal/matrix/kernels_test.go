package matrix

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// naiveMul is the unblocked reference: per element, terms accumulate in
// ascending k order with no zero-skipping. The blocked kernels must be
// bitwise equal to this at every shape, worker count, and tile size.
func naiveMul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func naiveMulT(a, b *Dense) *Dense {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func naiveTMul(a, b *Dense) *Dense {
	out := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.Data {
		// Mix in exact zeros so the no-skip contract is exercised.
		if rng.Intn(5) == 0 {
			continue
		}
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func requireBitwiseEqual(t *testing.T, label string, want, got *Dense) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		// NaN-aware bitwise comparison.
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("%s: element %d differs bitwise: %v vs %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

// withTiles runs fn under temporary kernel tile sizes.
func withTiles(ic, kc, jc int, fn func()) {
	oi, ok, oj := blockIC, blockKC, blockJC
	defer func() { setBlockSizes(oi, ok, oj) }()
	setBlockSizes(ic, kc, jc)
	fn()
}

// TestBlockedKernelsExhaustiveShapes sweeps small shapes that straddle
// tile edges — 1×n, n×1, primes, exact multiples, multiples±1 — under
// deliberately tiny tile sizes so every edge path (remainder rows,
// partial j panels, partial k panels) runs within the sweep, and checks
// the blocked kernels bitwise against the naive reference.
func TestBlockedKernelsExhaustiveShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dims := []int{1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17}
	withTiles(4, 4, 4, func() {
		for _, m := range dims {
			for _, k := range dims {
				for _, n := range dims {
					a := randomDense(rng, m, k)
					b := randomDense(rng, k, n)
					requireBitwiseEqual(t, "Mul", naiveMul(a, b), Mul(a, b))
					bt := randomDense(rng, n, k)
					requireBitwiseEqual(t, "MulT", naiveMulT(a, bt), MulT(a, bt))
					c := randomDense(rng, m, n)
					requireBitwiseEqual(t, "TMul", naiveTMul(a, c), TMul(a, c))
				}
			}
		}
	})
}

// TestBlockedKernelsTileAndWorkerInvariance pins the determinism
// contract: the blocked kernels are bitwise identical to the naive
// reference for every worker count in {1, 3, 8} crossed with tile
// configurations from degenerate (1×1×1) through production defaults.
func TestBlockedKernelsTileAndWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// 67 and 131 are primes straddling the default 64/128 tile edges.
	a := randomDense(rng, 67, 131)
	b := randomDense(rng, 131, 67)
	c := randomDense(rng, 131, 59)
	wantMul := naiveMul(a, b)
	wantMulT := naiveMulT(a, a)
	wantTMul := naiveTMul(b, c)
	tiles := []struct{ ic, kc, jc int }{
		{1, 1, 1},
		{3, 5, 7},
		{64, 128, 256},
		{1024, 1024, 1024}, // one tile covers everything
	}
	for _, tc := range tiles {
		for _, workers := range []int{1, 3, 8} {
			withTiles(tc.ic, tc.kc, tc.jc, func() {
				parallel.SetWorkers(workers)
				defer parallel.SetWorkers(0)
				requireBitwiseEqual(t, "Mul", wantMul, Mul(a, b))
				requireBitwiseEqual(t, "MulT", wantMulT, MulT(a, a))
				requireBitwiseEqual(t, "TMul", wantTMul, TMul(b, c))
			})
		}
	}
}

// TestIntoKernelsOverwriteDst pins destination-passing semantics: the
// Into variants fully overwrite whatever dst held before.
func TestIntoKernelsOverwriteDst(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomDense(rng, 23, 31)
	b := randomDense(rng, 31, 19)
	poison := func(r, c int) *Dense {
		d := New(r, c)
		for i := range d.Data {
			d.Data[i] = math.NaN()
		}
		return d
	}
	requireBitwiseEqual(t, "MulInto", naiveMul(a, b), MulInto(poison(23, 19), a, b))
	requireBitwiseEqual(t, "MulTInto", naiveMulT(a, a), MulTInto(poison(23, 23), a, a))
	requireBitwiseEqual(t, "TMulInto", naiveTMul(a, a), TMulInto(poison(31, 31), a, a))
	requireBitwiseEqual(t, "AddInto", Add(a, a), AddInto(poison(23, 31), a, a))
	requireBitwiseEqual(t, "SubInto", Sub(a, a), SubInto(poison(23, 31), a, a))
	requireBitwiseEqual(t, "ScaleInto", a.Scale(2.5), ScaleInto(poison(23, 31), 2.5, a))
	requireBitwiseEqual(t, "TransposeInto", a.T(), TransposeInto(poison(31, 23), a))
}

// TestElementwiseIntoAliasing pins that the elementwise Into kernels
// accept dst aliasing an operand (the in-place accumulate pattern the
// NMF workspaces rely on).
func TestElementwiseIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randomDense(rng, 9, 11)
	b := randomDense(rng, 9, 11)
	want := Add(a, b)
	got := a.Clone()
	AddInto(got, got, b)
	requireBitwiseEqual(t, "AddInto-aliased", want, got)

	wantSub := Sub(a, b)
	got = a.Clone()
	SubInto(got, got, b)
	requireBitwiseEqual(t, "SubInto-aliased", wantSub, got)

	wantScale := a.Scale(-3)
	got = a.Clone()
	ScaleInto(got, -3, got)
	requireBitwiseEqual(t, "ScaleInto-aliased", wantScale, got)
}

// TestMulIntoPanics pins the shape and aliasing guards of the product
// Into kernels, which overwrite dst and therefore must not share it
// with an operand.
func TestMulIntoPanics(t *testing.T) {
	a := New(3, 4)
	b := New(4, 5)
	for name, fn := range map[string]func(){
		"shape":       func() { MulInto(New(3, 4), a, b) },
		"aliasA":      func() { MulInto(a, a, New(4, 4)) },
		"aliasB":      func() { MulInto(b, New(4, 4), b) },
		"mulTShape":   func() { MulTInto(New(5, 5), a, New(5, 4)) },
		"tMulShape":   func() { TMulInto(New(5, 5), a, New(3, 5)) },
		"transpose":   func() { TransposeInto(New(3, 4), a) },
		"badTile":     func() { setBlockSizes(0, 1, 1) },
		"incompatMul": func() { MulInto(New(3, 3), a, New(3, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestMulPropagatesNaNInf pins the satellite fix: a zero left factor no
// longer skips the term, so 0·NaN and 0·±Inf propagate as NaN per
// IEEE 754 instead of being silently dropped.
func TestMulPropagatesNaNInf(t *testing.T) {
	// Row of zeros times a column containing NaN / +Inf / -Inf.
	a := FromRows([][]float64{{0, 0, 0}})
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b := FromRows([][]float64{{1}, {v}, {2}})
		if got := Mul(a, b).At(0, 0); !math.IsNaN(got) {
			t.Errorf("Mul: 0·%v accumulated to %v, want NaN", v, got)
		}
		// TMul: zero column in a, NaN/Inf row in b.
		at := a.T() // 3x1 zero column
		if got := TMul(at, b).At(0, 0); !math.IsNaN(got) {
			t.Errorf("TMul: 0·%v accumulated to %v, want NaN", v, got)
		}
		// MulT: dot of zero row with NaN/Inf row.
		if got := MulT(a, b.T()).At(0, 0); !math.IsNaN(got) {
			t.Errorf("MulT: 0·%v accumulated to %v, want NaN", v, got)
		}
	}
	// Finite inputs with zeros are unaffected: the extra ±0 terms can
	// never move an accumulator that is never -0.
	rng := rand.New(rand.NewSource(45))
	x := randomDense(rng, 12, 17)
	y := randomDense(rng, 17, 9)
	requireBitwiseEqual(t, "finite", naiveMul(x, y), Mul(x, y))
}
