package assign

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randScore(r *rand.Rand, n int) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			s[i][j] = r.Float64()
		}
	}
	return s
}

func isPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestHungarianKnown(t *testing.T) {
	// Optimal assignment is the anti-diagonal (total 3.0).
	score := [][]float64{
		{0.1, 0.2, 1.0},
		{0.3, 1.0, 0.2},
		{1.0, 0.1, 0.3},
	}
	perm := SolveHungarian(score)
	want := []int{2, 1, 0}
	for j := range want {
		if perm[j] != want[j] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestHungarianIdentityOptimal(t *testing.T) {
	// Diagonal dominance: identity must be chosen.
	score := [][]float64{
		{10, 1, 1},
		{1, 10, 1},
		{1, 1, 10},
	}
	perm := SolveHungarian(score)
	for j, i := range perm {
		if i != j {
			t.Fatalf("perm = %v, want identity", perm)
		}
	}
}

func TestGreedyNoConflicts(t *testing.T) {
	score := [][]float64{
		{0.9, 0.1},
		{0.1, 0.9},
	}
	perm := SolveGreedy(score)
	if perm[0] != 0 || perm[1] != 1 {
		t.Fatalf("perm = %v", perm)
	}
}

func TestGreedyConflictResolution(t *testing.T) {
	// Both columns prefer row 0; column 0 has the stronger claim, so
	// column 1 falls back to row 1.
	score := [][]float64{
		{0.9, 0.8},
		{0.2, 0.3},
	}
	perm := SolveGreedy(score)
	if perm[0] != 0 || perm[1] != 1 {
		t.Fatalf("perm = %v, want [0 1]", perm)
	}
	if !isPermutation(perm) {
		t.Fatal("not a permutation")
	}
}

func TestStableMarriageKnown(t *testing.T) {
	score := [][]float64{
		{0.9, 0.5},
		{0.6, 0.8},
	}
	perm := SolveStable(score)
	if !isPermutation(perm) {
		t.Fatalf("not a permutation: %v", perm)
	}
	if !IsStable(score, perm) {
		t.Fatalf("unstable matching: %v", perm)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	for _, m := range []Method{Hungarian, Greedy, StableMarriage} {
		if got := Solve(nil, m); len(got) != 0 {
			t.Errorf("%v: empty input gave %v", m, got)
		}
		got := Solve([][]float64{{0.5}}, m)
		if len(got) != 1 || got[0] != 0 {
			t.Errorf("%v: single input gave %v", m, got)
		}
	}
}

func TestMethodString(t *testing.T) {
	if Hungarian.String() != "hungarian" || Greedy.String() != "greedy" ||
		StableMarriage.String() != "stable-marriage" {
		t.Fatal("Method String wrong")
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method should still render")
	}
}

// Property: all solvers produce valid permutations; Hungarian's total is
// never beaten by Greedy or StableMarriage or by random permutations.
func TestPropHungarianOptimalityBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		score := randScore(r, n)
		h := SolveHungarian(score)
		g := SolveGreedy(score)
		s := SolveStable(score)
		if !isPermutation(h) || !isPermutation(g) || !isPermutation(s) {
			return false
		}
		ht := TotalScore(score, h)
		if TotalScore(score, g) > ht+1e-9 || TotalScore(score, s) > ht+1e-9 {
			return false
		}
		// Check against a few random permutations too.
		perm := r.Perm(n)
		return TotalScore(score, perm) <= ht+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Hungarian matches brute force on small instances.
func TestPropHungarianBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		score := randScore(r, n)
		h := TotalScore(score, SolveHungarian(score))
		best := bruteForceBest(score)
		return h >= best-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func bruteForceBest(score [][]float64) float64 {
	n := len(score)
	perm := make([]int, n)
	used := make([]bool, n)
	best := -1.0
	var rec func(j int, acc float64)
	rec = func(j int, acc float64) {
		if j == n {
			if acc > best {
				best = acc
			}
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				perm[j] = i
				rec(j+1, acc+score[i][j])
				used[i] = false
			}
		}
	}
	rec(0, 0)
	return best
}

// Property: Gale–Shapley always yields a stable matching.
func TestPropStability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		score := randScore(r, n)
		return IsStable(score, SolveStable(score))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
