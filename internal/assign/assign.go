// Package assign provides the matching algorithms behind the paper's
// interval latent semantic alignment (ILSA):
//
//   - Hungarian: the O(r³) optimal linear-assignment solver the paper
//     recommends for Problem 2 (Optimal Min-Max Vector Alignment);
//   - Greedy: the conflict-resolving heuristic of Supplementary
//     Algorithm 6 (procedure MAPPING);
//   - StableMarriage: Gale–Shapley for Problem 1 (Stable Min-Max Vector
//     Alignment), the O(r²) stable-but-not-optimal alternative.
//
// All solvers MAXIMIZE the total score of a square score matrix
// score[i][j] (row i matched to column j) and return perm with
// perm[j] = i, i.e. the row assigned to each column.
package assign

import (
	"fmt"
	"math"
	"sort"
)

// Method selects an assignment algorithm.
type Method int

const (
	// Hungarian solves the assignment optimally in O(r³).
	Hungarian Method = iota
	// Greedy resolves column-wise argmax conflicts per Supplementary
	// Algorithm 6; not optimal but fast and faithful to the reference
	// implementation.
	Greedy
	// StableMarriage runs Gale–Shapley with rows proposing.
	StableMarriage
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Hungarian:
		return "hungarian"
	case Greedy:
		return "greedy"
	case StableMarriage:
		return "stable-marriage"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Solve dispatches to the selected method. score must be square.
func Solve(score [][]float64, m Method) []int {
	switch m {
	case Hungarian:
		return SolveHungarian(score)
	case Greedy:
		return SolveGreedy(score)
	case StableMarriage:
		return SolveStable(score)
	default:
		panic("assign: unknown method")
	}
}

// TotalScore sums score[perm[j]][j] over all columns.
func TotalScore(score [][]float64, perm []int) float64 {
	var s float64
	for j, i := range perm {
		s += score[i][j]
	}
	return s
}

func checkSquare(score [][]float64) int {
	n := len(score)
	for _, row := range score {
		if len(row) != n {
			panic("assign: score matrix not square")
		}
	}
	return n
}

// SolveHungarian returns the max-total-score assignment via the
// Kuhn–Munkres algorithm with potentials (O(n³)).
func SolveHungarian(score [][]float64) []int {
	n := checkSquare(score)
	if n == 0 {
		return nil
	}
	// Convert maximization to minimization.
	const inf = math.MaxFloat64
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = -score[i][j]
		}
	}
	// 1-indexed potentials formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j
	way := make([]int, n+1) // way[j] = previous column on alternating path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	perm := make([]int, n)
	for j := 1; j <= n; j++ {
		perm[j-1] = p[j] - 1
	}
	return perm
}

// SolveGreedy implements the MAPPING procedure of Supplementary
// Algorithm 6: each column first claims its argmax row; columns that lose
// a conflict (a row claimed by several columns keeps only its best
// claimant) are reassigned to the best still-unclaimed row, in descending
// order of their original similarity.
func SolveGreedy(score [][]float64) []int {
	n := checkSquare(score)
	perm := make([]int, n)
	for j := 0; j < n; j++ {
		best := 0
		for i := 1; i < n; i++ {
			if score[i][j] > score[best][j] {
				best = i
			}
		}
		perm[j] = best
	}
	claimed := make(map[int][]int) // row -> columns claiming it
	for j, i := range perm {
		claimed[i] = append(claimed[i], j)
	}
	var losers []int
	usedRow := make([]bool, n)
	for i, cols := range claimed {
		// Keep the claimant with the highest similarity.
		winner := cols[0]
		for _, j := range cols[1:] {
			if score[i][j] > score[i][winner] {
				winner = j
			}
		}
		usedRow[i] = true
		for _, j := range cols {
			if j != winner {
				losers = append(losers, j)
			}
		}
	}
	// Reassign losers (best-first) to their best spare row.
	sort.Slice(losers, func(a, b int) bool {
		ja, jb := losers[a], losers[b]
		if score[perm[ja]][ja] != score[perm[jb]][jb] {
			return score[perm[ja]][ja] > score[perm[jb]][jb]
		}
		return ja < jb
	})
	for _, j := range losers {
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if !usedRow[i] && score[i][j] > bestScore {
				best, bestScore = i, score[i][j]
			}
		}
		perm[j] = best
		usedRow[best] = true
	}
	return perm
}

// SolveStable runs Gale–Shapley with rows proposing to columns; both
// sides rank partners by score (ties broken by index). The result is
// stable: no row/column pair prefers each other over their matches.
func SolveStable(score [][]float64) []int {
	n := checkSquare(score)
	if n == 0 {
		return nil
	}
	// Row i's preference list over columns, best first.
	prefs := make([][]int, n)
	for i := 0; i < n; i++ {
		prefs[i] = make([]int, n)
		for j := range prefs[i] {
			prefs[i][j] = j
		}
		row := score[i]
		sort.SliceStable(prefs[i], func(a, b int) bool {
			return row[prefs[i][a]] > row[prefs[i][b]]
		})
	}
	next := make([]int, n)     // next column row i will propose to
	colMatch := make([]int, n) // colMatch[j] = row matched to column j
	for j := range colMatch {
		colMatch[j] = -1
	}
	free := make([]int, n)
	for i := range free {
		free[i] = i
	}
	for len(free) > 0 {
		i := free[len(free)-1]
		free = free[:len(free)-1]
		j := prefs[i][next[i]]
		next[i]++
		cur := colMatch[j]
		if cur == -1 {
			colMatch[j] = i
		} else if score[i][j] > score[cur][j] {
			colMatch[j] = i
			free = append(free, cur)
		} else {
			free = append(free, i)
		}
	}
	return colMatch
}

// IsStable reports whether perm (perm[j] = row of column j) is a stable
// matching under the given score matrix: there is no pair (i, j) where
// both i prefers j over its current column and j prefers i over its
// current row.
func IsStable(score [][]float64, perm []int) bool {
	n := len(perm)
	rowOf := make([]int, n) // column matched to each row
	for j, i := range perm {
		rowOf[i] = j
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if perm[j] == i {
				continue
			}
			curColScore := score[i][rowOf[i]]
			curRowScore := score[perm[j]][j]
			if score[i][j] > curColScore && score[i][j] > curRowScore {
				return false
			}
		}
	}
	return true
}
