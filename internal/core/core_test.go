package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/matrix"
)

func randScalarMatrix(r *rand.Rand, rows, cols int) *matrix.Dense {
	m := matrix.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func defaultInterval(t *testing.T, seed int64) *imatrix.IMatrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 20, 35 // scaled down for unit-test speed
	m, err := dataset.GenerateUniform(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStrings(t *testing.T) {
	if ISVD3.String() != "ISVD3" || TargetB.String() != "b" {
		t.Fatal("String() wrong")
	}
	if Method(9).String() == "" || Target(9).String() == "" {
		t.Fatal("out-of-range String empty")
	}
}

func TestMethodsTargetsEnumerations(t *testing.T) {
	if len(Methods()) != 5 || len(Targets()) != 3 {
		t.Fatal("enumeration sizes wrong")
	}
}

// Degenerate (scalar) input at full rank must reconstruct near-exactly
// for every method and target.
func TestScalarInputExactReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := randScalarMatrix(r, 12, 8)
	m := imatrix.FromScalar(s)
	for _, method := range Methods() {
		for _, target := range Targets() {
			d, err := Decompose(m, method, Options{Target: target})
			if err != nil {
				t.Fatalf("%v-%v: %v", method, target, err)
			}
			acc := d.Evaluate(m)
			if acc.HMean < 1-1e-6 {
				t.Errorf("%v-%v: scalar full-rank H-mean = %.9f, want ≈1", method, target, acc.HMean)
			}
		}
	}
}

func TestRankClampAndDefaults(t *testing.T) {
	m := defaultInterval(t, 1)
	d, err := Decompose(m, ISVD1, Options{Rank: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rank != 20 { // min(20, 35)
		t.Fatalf("rank = %d, want 20", d.Rank)
	}
	if d.U.Rows() != 20 || d.U.Cols() != 20 || d.V.Rows() != 35 || d.V.Cols() != 20 {
		t.Fatalf("factor shapes wrong: U %dx%d, V %dx%d", d.U.Rows(), d.U.Cols(), d.V.Rows(), d.V.Cols())
	}
	if d.Sigma.Rows() != 20 || d.Sigma.Cols() != 20 {
		t.Fatal("sigma shape wrong")
	}
}

func TestAllMethodsProduceWellFormedOutput(t *testing.T) {
	m := defaultInterval(t, 2)
	for _, method := range Methods() {
		for _, target := range Targets() {
			d, err := Decompose(m, method, Options{Rank: 8, Target: target})
			if err != nil {
				t.Fatalf("%v-%v: %v", method, target, err)
			}
			if !d.U.IsWellFormed() || !d.V.IsWellFormed() || !d.Sigma.IsWellFormed() {
				t.Errorf("%v-%v: misordered output intervals", method, target)
			}
			if !d.U.Lo.IsFinite() || !d.U.Hi.IsFinite() ||
				!d.V.Lo.IsFinite() || !d.V.Hi.IsFinite() ||
				!d.Sigma.Lo.IsFinite() || !d.Sigma.Hi.IsFinite() {
				t.Errorf("%v-%v: non-finite factors", method, target)
			}
			// Singular values non-negative.
			for j := 0; j < d.Rank; j++ {
				if d.Sigma.Lo.At(j, j) < -1e-9 {
					t.Errorf("%v-%v: negative σ_lo[%d] = %g", method, target, j, d.Sigma.Lo.At(j, j))
				}
			}
			acc := d.Evaluate(m)
			if acc.HMean < 0 || acc.HMean > 1 {
				t.Errorf("%v-%v: H-mean out of range: %g", method, target, acc.HMean)
			}
		}
	}
}

func TestScalarTargetsAreDegenerate(t *testing.T) {
	m := defaultInterval(t, 3)
	for _, method := range Methods() {
		db, err := Decompose(m, method, Options{Rank: 5, Target: TargetB})
		if err != nil {
			t.Fatal(err)
		}
		if db.U.MaxSpan() != 0 || db.V.MaxSpan() != 0 {
			t.Errorf("%v-b: factors not scalar", method)
		}
		dc, err := Decompose(m, method, Options{Rank: 5, Target: TargetC})
		if err != nil {
			t.Fatal(err)
		}
		if dc.U.MaxSpan() != 0 || dc.V.MaxSpan() != 0 || dc.Sigma.MaxSpan() != 0 {
			t.Errorf("%v-c: output not fully scalar", method)
		}
	}
}

func TestTargetBFactorsUnitColumns(t *testing.T) {
	m := defaultInterval(t, 4)
	for _, method := range []Method{ISVD1, ISVD2, ISVD3, ISVD4} {
		d, err := Decompose(m, method, Options{Rank: 6, Target: TargetB})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < d.Rank; j++ {
			if n := d.U.Mid().ColNorm(j); math.Abs(n-1) > 1e-9 && n != 0 {
				t.Errorf("%v: ‖U[:,%d]‖ = %g", method, j, n)
			}
			if n := d.V.Mid().ColNorm(j); math.Abs(n-1) > 1e-9 && n != 0 {
				t.Errorf("%v: ‖V[:,%d]‖ = %g", method, j, n)
			}
		}
	}
}

func TestAlignmentImprovesCosines(t *testing.T) {
	m := defaultInterval(t, 5)
	for _, method := range []Method{ISVD1, ISVD2, ISVD3, ISVD4} {
		d, err := Decompose(m, method, Options{Rank: 10, Target: TargetB})
		if err != nil {
			t.Fatal(err)
		}
		var before, after float64
		for j := range d.CosVAligned {
			before += d.CosVUnaligned[j]
			after += d.CosVAligned[j]
		}
		if after < before-1e-9 {
			t.Errorf("%v: ILSA decreased total alignment: %.4f -> %.4f", method, before, after)
		}
	}
}

func TestISVD4RecomputedCosines(t *testing.T) {
	// Figure 5: after the recomputation step the V-side min/max cosines
	// should be high (close to the U-side ones).
	m := defaultInterval(t, 6)
	d, err := Decompose(m, ISVD4, Options{Rank: 10, Target: TargetB})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.CosVRecomputed) != 10 || len(d.CosURecovered) != 10 {
		t.Fatal("diagnostics missing")
	}
	var rec, aligned float64
	for j := range d.CosVRecomputed {
		rec += d.CosVRecomputed[j]
		aligned += d.CosVAligned[j]
	}
	if rec/10 < 0.75 {
		t.Errorf("mean recomputed V cosine = %.3f, want high (≥0.75)", rec/10)
	}
	if rec < aligned-1e-6 {
		t.Errorf("recomputation lowered mean V alignment: %.4f -> %.4f", aligned/10, rec/10)
	}
}

func TestLowRankAccuracyOrdering(t *testing.T) {
	// Higher rank must not reduce accuracy (information monotonicity) for
	// the option-b pipeline on the default workload.
	m := defaultInterval(t, 7)
	prev := -1.0
	for _, rank := range []int{2, 5, 10, 20} {
		d, err := Decompose(m, ISVD4, Options{Rank: rank, Target: TargetB})
		if err != nil {
			t.Fatal(err)
		}
		h := d.Evaluate(m).HMean
		if h < prev-0.02 { // small tolerance: renormalization is not strictly monotone
			t.Errorf("rank %d H-mean %.4f dropped below previous %.4f", rank, h, prev)
		}
		prev = h
	}
}

func TestTimingsPopulated(t *testing.T) {
	m := defaultInterval(t, 8)
	d, err := Decompose(m, ISVD3, Options{Rank: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Timings.Total() <= 0 {
		t.Fatal("timings not collected")
	}
	if d.Timings.Preprocess <= 0 || d.Timings.Decompose <= 0 {
		t.Fatal("phase timings missing")
	}
}

func TestDecomposeUnknownMethod(t *testing.T) {
	m := defaultInterval(t, 9)
	if _, err := Decompose(m, Method(42), Options{}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestReconstructShapes(t *testing.T) {
	m := defaultInterval(t, 10)
	for _, target := range Targets() {
		d, err := Decompose(m, ISVD2, Options{Rank: 4, Target: target})
		if err != nil {
			t.Fatal(err)
		}
		rec := d.Reconstruct()
		if rec.Rows() != m.Rows() || rec.Cols() != m.Cols() {
			t.Fatalf("target %v: reconstruction shape %dx%d", target, rec.Rows(), rec.Cols())
		}
		if !rec.IsWellFormed() {
			t.Fatalf("target %v: reconstruction misordered", target)
		}
	}
}

func TestAccuracyMetric(t *testing.T) {
	a := imatrix.FromScalar(matrix.FromRows([][]float64{{3, 4}}))
	// Perfect reconstruction.
	res := Accuracy(a, a.Clone())
	if res.HMean != 1 || res.DeltaLo != 0 {
		t.Fatalf("perfect accuracy = %+v", res)
	}
	// Zero reconstruction: Δ = 1 → Θ = 0 → H-mean 0.
	zero := imatrix.New(1, 2)
	res = Accuracy(a, zero)
	if res.HMean != 0 || res.ThetaLo != 0 {
		t.Fatalf("zero accuracy = %+v", res)
	}
	// Overshoot beyond 2× norm clamps Θ at 0.
	big := imatrix.FromScalar(matrix.FromRows([][]float64{{300, 400}}))
	res = Accuracy(a, big)
	if res.ThetaLo != 0 || res.HMean != 0 {
		t.Fatalf("overshoot accuracy = %+v", res)
	}
}

func TestAccuracyZeroReference(t *testing.T) {
	zero := imatrix.New(2, 2)
	if res := Accuracy(zero, zero.Clone()); res.HMean != 1 {
		t.Fatalf("zero/zero should be perfect, got %+v", res)
	}
	nonzero := imatrix.New(2, 2)
	nonzero.Set(0, 0, interval.Scalar(1))
	if res := Accuracy(zero, nonzero); res.HMean != 0 {
		t.Fatalf("zero reference with error should be 0, got %+v", res)
	}
}

func TestHarmonicMean(t *testing.T) {
	if HarmonicMean(0, 0) != 0 {
		t.Fatal("HM(0,0) != 0")
	}
	if got := HarmonicMean(1, 1); got != 1 {
		t.Fatalf("HM(1,1) = %g", got)
	}
	if got := HarmonicMean(0.5, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("HM(0.5,1) = %g", got)
	}
}

// The headline comparison of Figure 6(a)/Table 2: with heavy intervals,
// the aligned option-b methods should beat the naive ISVD0 baseline, and
// ISVD3/4 should be at least as good as ISVD1/2.
func TestOptionBBeatsNaiveOnHeavyIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 40, 60
	var h [5]float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		m := dataset.MustGenerateUniform(cfg, rng)
		for _, method := range Methods() {
			d, err := Decompose(m, method, Options{Rank: 20, Target: TargetB})
			if err != nil {
				t.Fatal(err)
			}
			h[method] += d.Evaluate(m).HMean / trials
		}
	}
	if h[ISVD4] < h[ISVD0] {
		t.Errorf("ISVD4-b (%.4f) did not beat ISVD0 (%.4f)", h[ISVD4], h[ISVD0])
	}
	if h[ISVD3] < h[ISVD1]-0.01 {
		t.Errorf("ISVD3-b (%.4f) clearly below ISVD1-b (%.4f)", h[ISVD3], h[ISVD1])
	}
}
