package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// nonNegLowRank returns an exactly rank-rho interval matrix with
// non-negative endpoints (Hi = 1.2·Lo, same rank) — the regime where the
// additive factor update is exact and every method ISVD0-4 is updatable.
func nonNegLowRank(m, n, rho int, rng *rand.Rand) *imatrix.IMatrix {
	x := matrix.New(m, rho)
	y := matrix.New(rho, n)
	for i := range x.Data {
		x.Data[i] = math.Abs(rng.NormFloat64())
	}
	for i := range y.Data {
		y.Data[i] = math.Abs(rng.NormFloat64()) / float64(rho)
	}
	lo := matrix.Mul(x, y)
	hi := lo.Scale(1.2)
	return imatrix.FromEndpoints(lo, hi)
}

// checkDecompAgreement compares two decompositions by their
// rotation-invariant outputs: the core diagonals and the interval
// reconstruction, at relative tolerance tol.
func checkDecompAgreement(t *testing.T, got, want *Decomposition, tol float64) {
	t.Helper()
	if got.Rank != want.Rank {
		t.Fatalf("rank %d vs %d", got.Rank, want.Rank)
	}
	scale := math.Max(want.Sigma.Hi.At(0, 0), 1)
	for k := 0; k < got.Rank; k++ {
		if d := math.Abs(got.Sigma.Lo.At(k, k) - want.Sigma.Lo.At(k, k)); d > tol*scale {
			t.Fatalf("Sigma.Lo[%d]: %g vs %g", k, got.Sigma.Lo.At(k, k), want.Sigma.Lo.At(k, k))
		}
		if d := math.Abs(got.Sigma.Hi.At(k, k) - want.Sigma.Hi.At(k, k)); d > tol*scale {
			t.Fatalf("Sigma.Hi[%d]: %g vs %g", k, got.Sigma.Hi.At(k, k), want.Sigma.Hi.At(k, k))
		}
	}
	gr, wr := got.Reconstruct(), want.Reconstruct()
	var diff, norm float64
	for i := range gr.Lo.Data {
		d := gr.Lo.Data[i] - wr.Lo.Data[i]
		diff += d * d
		d = gr.Hi.Data[i] - wr.Hi.Data[i]
		diff += d * d
		norm += wr.Lo.Data[i]*wr.Lo.Data[i] + wr.Hi.Data[i]*wr.Hi.Data[i]
	}
	if math.Sqrt(diff) > tol*math.Max(1, math.Sqrt(norm)) {
		t.Fatalf("reconstruction differs: rel %g", math.Sqrt(diff)/math.Max(1, math.Sqrt(norm)))
	}
}

// streamPatch builds a non-negative patch batch over a few rows of m
// (set semantics, keeping lo <= hi), and the independently patched
// matrix for the full-recompute reference.
func streamPatch(m *sparse.ICSR, rows int, rng *rand.Rand) ([]sparse.ITriplet, *sparse.ICSR) {
	var patch []sparse.ITriplet
	for i := 0; i < rows; i++ {
		row := (i * 7) % m.Rows
		for j := 0; j < 3; j++ {
			col := (j*5 + i) % m.Cols
			old := m.At(row, col)
			d := math.Abs(rng.NormFloat64())
			patch = append(patch, sparse.ITriplet{Row: row, Col: col, Lo: old.Lo + d, Hi: old.Hi + 1.5*d})
		}
	}
	patched, err := m.ApplyPatch(patch)
	if err != nil {
		panic(err)
	}
	return patch, patched
}

func TestUpdateMatchesFullRecomputeAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	base := nonNegLowRank(42, 30, 4, rng)
	sp := sparse.FromIMatrix(base)
	opts := Options{Rank: 10, Target: TargetB, Updatable: true}
	for _, method := range Methods() {
		for _, kind := range []string{"cell-patch", "append-rows", "append-cols"} {
			t.Run(method.String()+"/"+kind, func(t *testing.T) {
				d, err := DecomposeSparse(sp, method, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !d.Updatable() {
					t.Fatal("decomposition did not retain update state")
				}
				var delta Delta
				var after *sparse.ICSR
				switch kind {
				case "cell-patch":
					delta.Patch, after = streamPatch(sp, 3, rand.New(rand.NewSource(52)))
				case "append-rows":
					b := sparse.FromIMatrix(nonNegLowRank(3, 30, 2, rand.New(rand.NewSource(53))))
					delta.AppendRows = b
					after, err = sparse.AppendRows(sp, b)
					if err != nil {
						t.Fatal(err)
					}
				case "append-cols":
					b := sparse.FromIMatrix(nonNegLowRank(42, 3, 2, rand.New(rand.NewSource(54))))
					delta.AppendCols = b
					after, err = sparse.AppendCols(sp, b)
					if err != nil {
						t.Fatal(err)
					}
				}
				d2, err := d.Update(delta, Options{Refresh: RefreshNever})
				if err != nil {
					t.Fatal(err)
				}
				ref, err := DecomposeSparse(after, method, opts)
				if err != nil {
					t.Fatal(err)
				}
				checkDecompAgreement(t, d2, ref, 1e-6)
				if !d2.Updatable() {
					t.Error("updated decomposition lost its update state")
				}
			})
		}
	}
}

// TestUpdateDense: the dense Decompose entry point with Updatable also
// carries the engine (mixed-sign data, ISVD1), and updates agree with a
// dense full recompute.
func TestUpdateDense(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	lo := matrix.New(24, 18)
	x := matrix.New(24, 4)
	y := matrix.New(4, 18)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	matrix.MulInto(lo, x, y)
	// Hi = Lo + w·zᵀ with non-negative rank-1 w·zᵀ, and the same
	// direction folded into Lo: both endpoints share one rank-5 column
	// space (the well-posed regime for update-vs-full agreement — a
	// direction present in only one endpoint would make ILSA's pairing
	// against the other side's null columns noise-driven in BOTH paths).
	w := matrix.New(24, 1)
	z := matrix.New(1, 18)
	for i := range w.Data {
		w.Data[i] = math.Abs(rng.NormFloat64())
	}
	for i := range z.Data {
		z.Data[i] = math.Abs(rng.NormFloat64())
	}
	shift := matrix.Mul(w, z)
	hi := lo.Clone()
	for i := range lo.Data {
		lo.Data[i] += shift.Data[i]
		hi.Data[i] += 2 * shift.Data[i]
	}
	m := imatrix.FromEndpoints(lo, hi)
	opts := Options{Rank: 8, Target: TargetB, Updatable: true}
	d, err := Decompose(m, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Patch two cells in one row (mixed signs allowed for ISVD1), with
	// correlated endpoint deltas — the realistic interval-delta shape,
	// and the regime where the lo/hi patch directions align stably.
	old0 := m.At(3, 5)
	old1 := m.At(3, 11)
	delta := Delta{Patch: []sparse.ITriplet{
		{Row: 3, Col: 5, Lo: old0.Lo + 0.5, Hi: old0.Hi + 0.75},
		{Row: 3, Col: 11, Lo: old1.Lo - 0.25, Hi: old1.Hi - 0.375},
	}}
	d2, err := UpdateSparse(d, delta, Options{Refresh: RefreshNever})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Clone()
	want.Set(3, 5, interval.Interval{Lo: delta.Patch[0].Lo, Hi: delta.Patch[0].Hi})
	want.Set(3, 11, interval.Interval{Lo: delta.Patch[1].Lo, Hi: delta.Patch[1].Hi})
	ref, err := Decompose(want, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDecompAgreement(t, d2, ref, 1e-6)
}

func TestUpdateDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(61))
	base := nonNegLowRank(64, 40, 5, rng)
	sp := sparse.FromIMatrix(base)
	opts := Options{Rank: 12, Target: TargetB, Updatable: true}
	patch, _ := streamPatch(sp, 3, rand.New(rand.NewSource(62)))
	b := sparse.FromIMatrix(nonNegLowRank(4, 40, 2, rand.New(rand.NewSource(63))))

	var ref *Decomposition
	for _, w := range []int{1, 3, 8} {
		parallel.SetWorkers(w)
		d, err := DecomposeSparse(sp, ISVD4, opts)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := d.Update(Delta{AppendRows: b, Patch: patch}, Options{Refresh: RefreshNever})
		if err != nil {
			t.Fatal(err)
		}
		if w == 1 {
			ref = d2
			continue
		}
		for name, pair := range map[string][2]*matrix.Dense{
			"U.Lo":     {ref.U.Lo, d2.U.Lo},
			"U.Hi":     {ref.U.Hi, d2.U.Hi},
			"V.Lo":     {ref.V.Lo, d2.V.Lo},
			"V.Hi":     {ref.V.Hi, d2.V.Hi},
			"Sigma.Lo": {ref.Sigma.Lo, d2.Sigma.Lo},
			"Sigma.Hi": {ref.Sigma.Hi, d2.Sigma.Hi},
		} {
			a, b := pair[0], pair[1]
			for i := range a.Data {
				if a.Data[i] != b.Data[i] {
					t.Fatalf("%s differs bitwise at %d workers", name, w)
				}
			}
		}
	}
}

// TestRefreshPolicies pins the residual-budget machinery: RefreshNever
// accumulates discarded mass on full-spectrum data, RefreshAlways (and a
// tripped RefreshAuto budget) resets it via the warm re-solve, and the
// refreshed decomposition agrees with a full recompute even where the
// additive path alone has drifted.
func TestRefreshPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	// Full-spectrum (not low-rank) data: every update discards mass.
	m := imatrix.New(30, 22)
	for i := range m.Lo.Data {
		v := math.Abs(rng.NormFloat64())
		m.Lo.Data[i] = v
		m.Hi.Data[i] = v + 0.1
	}
	sp := sparse.FromIMatrix(m)
	opts := Options{Rank: 5, Target: TargetB, Updatable: true}
	d, err := DecomposeSparse(sp, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}
	patch, after := streamPatch(sp, 4, rand.New(rand.NewSource(68)))

	never, err := d.Update(Delta{Patch: patch}, Options{Refresh: RefreshNever})
	if err != nil {
		t.Fatal(err)
	}
	if never.UpdateResidual() <= 0 {
		t.Fatalf("RefreshNever residual %g, want > 0 on full-spectrum data", never.UpdateResidual())
	}

	always, err := d.Update(Delta{Patch: patch}, Options{Refresh: RefreshAlways})
	if err != nil {
		t.Fatal(err)
	}
	if always.UpdateResidual() != 0 {
		t.Fatalf("RefreshAlways residual %g, want 0", always.UpdateResidual())
	}
	ref, err := DecomposeSparse(after, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDecompAgreement(t, always, ref, 1e-6)

	// Auto with a tiny budget must trip and reset; with a huge budget it
	// must not.
	auto, err := d.Update(Delta{Patch: patch}, Options{RefreshBudget: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if auto.UpdateResidual() != 0 {
		t.Fatalf("tripped RefreshAuto residual %g, want 0", auto.UpdateResidual())
	}
	checkDecompAgreement(t, auto, ref, 1e-6)
	lax, err := d.Update(Delta{Patch: patch}, Options{RefreshBudget: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if lax.UpdateResidual() <= 0 {
		t.Fatalf("lax RefreshAuto residual %g, want > 0", lax.UpdateResidual())
	}
}

func TestUpdateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	base := nonNegLowRank(20, 15, 3, rng)
	sp := sparse.FromIMatrix(base)
	opts := Options{Rank: 6, Target: TargetB}

	// Not updatable without the option.
	d, err := DecomposeSparse(sp, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Updatable() {
		t.Error("plain decomposition claims updatability")
	}
	if _, err := d.Update(Delta{Patch: []sparse.ITriplet{{Row: 0, Col: 0, Lo: 1, Hi: 1}}}, Options{}); err == nil {
		t.Error("Update on non-updatable decomposition accepted")
	}

	// ISVD2-4 + Updatable requires non-negative data.
	neg := base.Clone()
	neg.Lo.Set(0, 0, -1)
	if _, err := Decompose(neg, ISVD4, Options{Rank: 6, Updatable: true}); err == nil {
		t.Error("updatable ISVD4 accepted negative data")
	}
	if _, err := Decompose(neg, ISVD1, Options{Rank: 6, Updatable: true}); err != nil {
		t.Errorf("updatable ISVD1 rejected mixed-sign data: %v", err)
	}

	// Updatable + ExactAlgebra unsupported.
	if _, err := Decompose(base, ISVD4, Options{Rank: 6, Updatable: true, ExactAlgebra: true}); err == nil {
		t.Error("updatable ExactAlgebra accepted")
	}

	upd, err := DecomposeSparse(sp, ISVD4, Options{Rank: 6, Updatable: true})
	if err != nil {
		t.Fatal(err)
	}
	// Empty delta.
	if _, err := upd.Update(Delta{}, Options{}); err == nil {
		t.Error("empty delta accepted")
	}
	// Negative patch on ISVD4.
	if _, err := upd.Update(Delta{Patch: []sparse.ITriplet{{Row: 0, Col: 0, Lo: -1, Hi: 1}}}, Options{}); err == nil {
		t.Error("negative patch on updatable ISVD4 accepted")
	}
	// Misordered patch interval.
	if _, err := upd.Update(Delta{Patch: []sparse.ITriplet{{Row: 0, Col: 0, Lo: 2, Hi: 1}}}, Options{}); err == nil {
		t.Error("misordered patch accepted")
	}
	// Out-of-range patch.
	if _, err := upd.Update(Delta{Patch: []sparse.ITriplet{{Row: 99, Col: 0, Lo: 1, Hi: 1}}}, Options{}); err == nil {
		t.Error("out-of-range patch accepted")
	}
	// Shape-mismatched appends.
	if _, err := upd.Update(Delta{AppendRows: sparse.FromIMatrix(nonNegLowRank(2, 14, 1, rng))}, Options{}); err == nil {
		t.Error("mismatched AppendRows accepted")
	}
}

// TestUpdateChainWithGrowth streams several batches — appends and
// patches interleaved — and checks the final state against a full
// recompute of the final matrix.
func TestUpdateChainWithGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	base := nonNegLowRank(36, 24, 3, rng)
	sp := sparse.FromIMatrix(base)
	opts := Options{Rank: 12, Target: TargetB, Updatable: true}
	d, err := DecomposeSparse(sp, ISVD2, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur := sp
	for step := 0; step < 3; step++ {
		srng := rand.New(rand.NewSource(int64(80 + step)))
		var delta Delta
		if step%2 == 0 {
			b := sparse.FromIMatrix(nonNegLowRank(2, cur.Cols, 1, srng))
			delta.AppendRows = b
			cur, err = sparse.AppendRows(cur, b)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			delta.Patch, cur = streamPatch(cur, 2, srng)
		}
		d, err = d.Update(delta, Options{Refresh: RefreshNever})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	ref, err := DecomposeSparse(cur, ISVD2, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDecompAgreement(t, d, ref, 1e-6)
}

// TestUpdateWorkersOverrideNotSticky: a per-call Workers override
// applies to that update only; the chain keeps the decompose-time
// setting.
func TestUpdateWorkersOverrideNotSticky(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sp := sparse.FromIMatrix(nonNegLowRank(20, 14, 3, rng))
	d, err := DecomposeSparse(sp, ISVD1, Options{Rank: 6, Workers: 3, Updatable: true})
	if err != nil {
		t.Fatal(err)
	}
	patch, _ := streamPatch(sp, 1, rng)
	d2, err := d.Update(Delta{Patch: patch}, Options{Workers: 1, Refresh: RefreshNever})
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.state.opts.Workers; got != 3 {
		t.Fatalf("chain Workers = %d after a one-off override, want the decompose-time 3", got)
	}
}
