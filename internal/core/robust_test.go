package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/imatrix"
	"repro/internal/interval"
)

// Zero rows and columns must not break any variant (they produce zero
// singular directions, exercising the 1/σ = 0 guards).
func TestZeroRowsAndColumns(t *testing.T) {
	m := defaultInterval(t, 31)
	// Blank out a row and a column.
	for j := 0; j < m.Cols(); j++ {
		m.Set(3, j, interval.Scalar(0))
	}
	for i := 0; i < m.Rows(); i++ {
		m.Set(i, 5, interval.Scalar(0))
	}
	for _, method := range Methods() {
		for _, target := range Targets() {
			d, err := Decompose(m, method, Options{Rank: 10, Target: target})
			if err != nil {
				t.Fatalf("%v-%v: %v", method, target, err)
			}
			if !d.U.Lo.IsFinite() || !d.Sigma.Hi.IsFinite() || !d.V.Lo.IsFinite() {
				t.Fatalf("%v-%v: non-finite output", method, target)
			}
			rec := d.Reconstruct()
			if !rec.Lo.IsFinite() || !rec.Hi.IsFinite() {
				t.Fatalf("%v-%v: non-finite reconstruction", method, target)
			}
		}
	}
}

// Fully zero input: every factor and the reconstruction must be zero,
// and the accuracy convention reports a perfect score.
func TestAllZeroMatrix(t *testing.T) {
	m := imatrix.New(6, 5)
	for _, method := range Methods() {
		d, err := Decompose(m, method, Options{Rank: 3, Target: TargetB})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		rec := d.Reconstruct()
		if rec.Lo.MaxAbs() > 1e-12 || rec.Hi.MaxAbs() > 1e-12 {
			t.Fatalf("%v: zero matrix reconstructed non-zero", method)
		}
		if acc := Accuracy(m, rec); acc.HMean != 1 {
			t.Fatalf("%v: zero/zero accuracy = %v", method, acc.HMean)
		}
	}
}

// Rank exceeding the number of non-zero singular values: the surplus
// directions carry zero weight and reconstruction still works.
func TestRankBeyondNumericalRank(t *testing.T) {
	// Rank-2 data asked for rank 6.
	m := imatrix.New(8, 7)
	for i := 0; i < 8; i++ {
		for j := 0; j < 7; j++ {
			v := float64(i+1)*0.5 + float64(j+1)*float64(i%2)
			m.Set(i, j, interval.New(v, v+0.1))
		}
	}
	for _, method := range Methods() {
		d, err := Decompose(m, method, Options{Rank: 6, Target: TargetB})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if h := d.Evaluate(m).HMean; h < 0.95 {
			t.Errorf("%v: H-mean %.4f on exactly low-rank data", method, h)
		}
	}
}

// A single-column matrix degenerates every Gram matrix to 1×1; all
// variants must handle it.
func TestSingleColumn(t *testing.T) {
	m := imatrix.New(6, 1)
	for i := 0; i < 6; i++ {
		m.Set(i, 0, interval.New(float64(i), float64(i)+0.5))
	}
	for _, method := range Methods() {
		d, err := Decompose(m, method, Options{Rank: 1, Target: TargetB})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if h := d.Evaluate(m).HMean; h < 0.8 {
			t.Errorf("%v: single-column H-mean %.4f", method, h)
		}
	}
}

// Sparse matrices (90% zeros, Table 2c's extreme) through every method.
func TestVerySparse(t *testing.T) {
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 25, 30
	cfg.ZeroFrac = 0.9
	m := defaultSparse(t, cfg)
	for _, method := range Methods() {
		d, err := Decompose(m, method, Options{Rank: 8, Target: TargetB})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if !d.Sigma.Hi.IsFinite() {
			t.Fatalf("%v: non-finite sigma", method)
		}
	}
}

func defaultSparse(t *testing.T, cfg dataset.SyntheticConfig) *imatrix.IMatrix {
	t.Helper()
	m, err := dataset.GenerateUniform(cfg, randSource(17))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
