package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// sparseOperand plugs ICSR storage into the shared ISVD0-4 pipeline.
// Every product against the input runs on the CSR kernels (O(NNZ)-shaped),
// and on the truncated-solver path the endpoint Gram matrices are applied
// matrix-free — a sparse ISVD decomposition then never materializes a
// dense Gram matrix, so its transient memory is O(NNZ + (n+m)·r) instead
// of O(m²). Only the factor matrices (n×r, m×r) are dense.
type sparseOperand struct{ m *sparse.ICSR }

func (o sparseOperand) rows() int { return o.m.Rows }
func (o sparseOperand) cols() int { return o.m.Cols }

func (o sparseOperand) svdMid(opts Options) (*eig.SVDResult, time.Duration, time.Duration, error) {
	t0 := time.Now()
	mid := o.m.MidCSR()
	pre := time.Since(t0)
	t0 = time.Now()
	res, err := sparseSVD(mid, opts.Rank, opts.Solver)
	return res, pre, time.Since(t0), err
}

func (o sparseOperand) svdEndpoints(opts Options) (lo, hi *eig.SVDResult, err error) {
	var errLo, errHi error
	parallel.DoWith(opts.Workers,
		func() { lo, errLo = sparseSVD(o.m.LoCSR(), opts.Rank, opts.Solver) },
		func() { hi, errHi = sparseSVD(o.m.HiCSR(), opts.Rank, opts.Solver) },
	)
	if errLo != nil {
		return nil, nil, fmt.Errorf("min side: %w", errLo)
	}
	if errHi != nil {
		return nil, nil, fmt.Errorf("max side: %w", errHi)
	}
	return lo, hi, nil
}

func (o sparseOperand) gramEig(opts Options) (vLo, vHi *matrix.Dense, sLo, sHi []float64, pre, dec time.Duration, err error) {
	matrixFree := func() (eig.SymOp, eig.SymOp) {
		// For non-negative data (ratings, counts — the workloads sparse
		// storage serves) the Algorithm 1 endpoint Gram is exactly
		// [Loᵀ·Lo, Hiᵀ·Hi], so each side iterates on two CSR matvecs per
		// sweep: O(NNZ·(r+p)) per sweep, no m×m matrix.
		if !o.m.NonNegative() {
			return nil, nil
		}
		return eig.NewGramOp(sparse.NewOperator(o.m.LoCSR())),
			eig.NewGramOp(sparse.NewOperator(o.m.HiCSR()))
	}
	materialize := func() *imatrix.IMatrix {
		// Built from sparse storage: O(NNZ·m) work, dense m×m output.
		return sparse.GramEndpoints(o.m)
	}
	return gramEigRouted(opts, o.m.Cols, matrixFree, materialize)
}

func (o sparseOperand) mulEndpointsRight(s *matrix.Dense, opts Options) *imatrix.IMatrix {
	return sparse.MulEndpointsDense(o.m, s)
}

func (o sparseOperand) mulEndpointsLeft(s *matrix.Dense, opts Options) *imatrix.IMatrix {
	return sparse.MulDenseEndpoints(s, o.m)
}

func (o sparseOperand) applyLo(v *matrix.Dense) *matrix.Dense {
	return sparse.MulDense(o.m.LoCSR(), v)
}

func (o sparseOperand) applyHi(v *matrix.Dense) *matrix.Dense {
	return sparse.MulDense(o.m.HiCSR(), v)
}

func (o sparseOperand) toICSR() *sparse.ICSR { return o.m }

// sparseSVD decomposes one endpoint CSR at the given rank: through the
// matrix-free truncated solver when the routing selects it (O(NNZ·r) per
// sweep, never densified), through the full dense solver on a one-off
// dense expansion otherwise — a full-spectrum decomposition needs the
// dense matrix anyway, so SolverFull (or an auto routing at near-full
// rank) is only sensible for matrices that fit densely.
func sparseSVD(a *sparse.CSR, rank int, solver eig.Solver) (*eig.SVDResult, error) {
	minDim := a.Rows
	if a.Cols < minDim {
		minDim = a.Cols
	}
	if solver.UseTruncated(rank, minDim) {
		res, err := eig.TruncatedSVD(sparse.NewOperator(a), rank)
		if err == nil {
			return res, nil
		}
		if err != eig.ErrNoConvergence {
			return nil, err
		}
	}
	// Densifying fallback (eig.SVDWith with the solver forced full: the
	// matrix-free attempt above already failed or was not routed).
	return eig.SVDWith(a.ToDense(), rank, eig.SolverFull)
}

// ValidateSparseInput checks that a sparse interval matrix is a legal
// decomposition input: finite stored endpoints and Lo <= Hi everywhere.
func ValidateSparseInput(m *sparse.ICSR) error {
	for p, lo := range m.Lo {
		hi := m.Hi[p]
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
			return fmt.Errorf("core: sparse input contains NaN or Inf endpoints")
		}
		if lo > hi {
			return fmt.Errorf("core: sparse input contains misordered intervals (lo > hi)")
		}
	}
	return nil
}

// DecomposeSparse runs the selected ISVD method directly on sparse
// interval storage (unstored cells are scalar zero, the ratings/CF
// convention). The pipeline is the same as Decompose's — same align,
// solve, and construct steps on the dense factor matrices — but every
// product against the input runs on the CSR kernels, and with the
// truncated solver (the default routing whenever Rank is small relative
// to the matrix) the endpoint Gram matrices are applied matrix-free and
// never materialized, keeping transient memory at O(NNZ + (rows+cols)·
// rank). That memory bound is a property of spectra the truncated solver
// converges on (decay past Rank — pinned by the bytes-regression test):
// if the spectrum is too flat, or the solver routes to full, the
// pipeline falls back to materializing the dense cols×cols interval Gram
// (ISVD2-4) or densifying an endpoint (ISVD0/1) rather than failing.
// ExactAlgebra is not supported on sparse storage; call Decompose on
// m.ToIMatrix() for the exact interval product semantics.
func DecomposeSparse(m *sparse.ICSR, method Method, opts Options) (*Decomposition, error) {
	if err := ValidateSparseInput(m); err != nil {
		return nil, err
	}
	opts = opts.withDefaultsDims(m.Rows, m.Cols)
	if opts.ExactAlgebra {
		return nil, fmt.Errorf("core: DecomposeSparse: ExactAlgebra requires dense storage (use Decompose on m.ToIMatrix())")
	}
	if err := validateUpdatable(method, opts, m.NonNegative); err != nil {
		return nil, err
	}
	op := sparseOperand{m}
	switch method {
	case ISVD0:
		return decomposeISVD0(op, opts)
	case ISVD1:
		return decomposeISVD1(op, opts)
	case ISVD2:
		return decomposeISVD2(op, opts)
	case ISVD3:
		return decomposeISVD3(op, opts)
	case ISVD4:
		return decomposeISVD4(op, opts)
	default:
		return nil, fmt.Errorf("core: unknown method %v", method)
	}
}
