// Package core implements the paper's primary contribution: singular
// value decomposition of interval-valued matrices (ISVD0 through ISVD4,
// Section 4 and Figure 4), the three decomposition targets (a, b, c;
// Section 3.4), interval-valued reconstruction (Supplementary
// Algorithms 12-14), and the decomposition-accuracy metric of
// Definition 5.
package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/assign"
	"repro/internal/eig"
	"repro/internal/imatrix"
)

// Target selects the application semantics of the decomposition output
// (Section 3.4).
type Target int

const (
	// TargetA produces interval-valued U†, Σ†, and V†.
	TargetA Target = iota
	// TargetB produces scalar U and V with an interval-valued core Σ†.
	TargetB
	// TargetC produces scalar U, Σ, and V.
	TargetC
)

// String returns "a", "b", or "c".
func (t Target) String() string {
	switch t {
	case TargetA:
		return "a"
	case TargetB:
		return "b"
	case TargetC:
		return "c"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// Method selects one of the paper's decomposition strategies.
type Method int

const (
	// ISVD0 averages the intervals and runs plain SVD (Section 4.1).
	ISVD0 Method = iota
	// ISVD1 decomposes the endpoint matrices independently and aligns
	// the latent spaces afterwards (Section 4.2).
	ISVD1
	// ISVD2 eigen-decomposes the interval Gram matrix, solves for the
	// left factors per side, then aligns (Section 4.3).
	ISVD2
	// ISVD3 aligns right after the eigen-decomposition and solves for the
	// interval-valued U† with interval matrix algebra (Section 4.4).
	ISVD3
	// ISVD4 additionally recomputes V† from the solved U† to tighten the
	// factor intervals (Section 4.5).
	ISVD4
	// LP labels decompositions produced by the linear-programming
	// competitor pipeline (Deif/Seif interval eigenproblem; package
	// internal/lp). It is not dispatched by Decompose.
	LP
)

// String returns the canonical method name, e.g. "ISVD3".
func (m Method) String() string {
	if m == LP {
		return "LP"
	}
	if m < ISVD0 || m > ISVD4 {
		return fmt.Sprintf("Method(%d)", int(m))
	}
	return fmt.Sprintf("ISVD%d", int(m))
}

// Options configures a decomposition.
type Options struct {
	// Rank is the target rank r; it is clamped to min(n, m). Zero means
	// full rank.
	Rank int
	// Target selects the output semantics (default TargetA).
	Target Target
	// Assign selects the ILSA matching algorithm (default Hungarian,
	// the paper's Problem 2 formulation).
	Assign assign.Method
	// CondThreshold is the condition-number bound above which the
	// Moore-Penrose pseudo-inverse replaces plain inversion in ISVD3/4
	// (paper parameter condThr; default 1e8).
	CondThreshold float64
	// PinvCutoff is the singular-value cutoff of the pseudo-inverse
	// (paper: "replace singular values smaller than 0.1 with zero";
	// default 0.1).
	PinvCutoff float64
	// Workers bounds the goroutines this decomposition's own fan-outs
	// (e.g. the concurrent endpoint eigen-decompositions) may use. Zero
	// means the shared pool default (parallel.Workers(), settable globally
	// via parallel.SetWorkers or the CLIs' -workers flag). The deep matrix
	// kernels always use the shared pool; results are bitwise identical
	// for any worker count.
	Workers int
	// Solver routes the endpoint SVD / Gram eigen-decompositions:
	// eig.SolverAuto (the zero value) picks the truncated rank-r subspace
	// solver when Rank plus its oversampling is below a third of the
	// operator dimension and the full O(n³) solver otherwise;
	// eig.SolverFull and eig.SolverTruncated force a path. The truncated
	// solver matches the full one to 1e-9 relative tolerance and falls
	// back to it automatically when the spectrum is too flat to converge,
	// so auto never changes results beyond that tolerance. Either way the
	// output is bitwise identical for any worker count.
	Solver eig.Solver
	// Updatable retains the endpoint factor states and a sparse copy of
	// the input in the returned Decomposition so Update/UpdateSparse can
	// fold arriving batches (appended rows/cols, cell patches) into the
	// factors at delta cost instead of re-decomposing. Unsupported with
	// ExactAlgebra, and ISVD2-4 additionally require entrywise
	// non-negative endpoints (see core/update.go).
	Updatable bool
	// Refresh selects the incremental-update refresh policy (read by
	// Update, not Decompose): RefreshAuto (default) re-solves with a
	// warm-started truncated decomposition when the accumulated
	// discarded singular mass exceeds RefreshBudget; RefreshNever and
	// RefreshAlways force a policy.
	Refresh Refresh
	// RefreshBudget is the RefreshAuto threshold on the accumulated
	// relative discarded singular mass (0 = the 1% default).
	RefreshBudget float64
	// OrthoBudget is the numerical-health guardrail on the factor
	// states' orthogonality drift ‖QᵀQ−I‖∞, read by Update like Refresh
	// and RefreshBudget (0 = the 1e-8 default). An update whose additive
	// result drifts past it escalates to a full windowed redecompose,
	// regardless of the Refresh policy — see core/update.go.
	OrthoBudget float64
	// ExactAlgebra switches ISVD2-4 and TargetA reconstruction from the
	// paper's Algorithm 1 endpoint products (min/max over the endpoint
	// matrix products — the reference implementation's semantics, and the
	// default here) to exact inclusion-correct interval matrix products.
	// Exact algebra yields wider, sound intervals but much lower H-mean
	// accuracy when spans are large; see the AblationAlgebra benchmark.
	ExactAlgebra bool
}

func (o Options) withDefaults(m *imatrix.IMatrix) Options {
	return o.withDefaultsDims(m.Rows(), m.Cols())
}

func (o Options) withDefaultsDims(rows, cols int) Options {
	maxRank := rows
	if cols < maxRank {
		maxRank = cols
	}
	if o.Rank <= 0 || o.Rank > maxRank {
		o.Rank = maxRank
	}
	if o.CondThreshold == 0 {
		o.CondThreshold = 1e8
	}
	if o.PinvCutoff == 0 {
		o.PinvCutoff = 0.1
	}
	return o
}

// Timings records per-phase wall-clock durations of a decomposition,
// matching the phase breakdown of the paper's Figure 6(b).
type Timings struct {
	Preprocess time.Duration // interval Gram computation / averaging
	Decompose  time.Duration // SVD / eigen-decomposition of the endpoints
	Align      time.Duration // ILSA
	Solve      time.Duration // recovery of U† (and V† recomputation)
	Construct  time.Duration // target-specific assembly
}

// Total returns the sum of all phases.
func (t Timings) Total() time.Duration {
	return t.Preprocess + t.Decompose + t.Align + t.Solve + t.Construct
}

// Decomposition is the result of an interval-valued SVD. For TargetB the
// U and V matrices are degenerate (scalar) intervals; for TargetC the
// core Σ is degenerate too. Use Reconstruct to obtain M̃† and Accuracy to
// score it against the input.
type Decomposition struct {
	Method Method
	Target Target
	Rank   int

	// U is n×r, Sigma is r×r diagonal, V is m×r.
	U, Sigma, V *imatrix.IMatrix

	// ExactAlgebra records which interval-product semantics produced the
	// factors; Reconstruct uses the same semantics.
	ExactAlgebra bool

	// Diagnostics for the paper's Figures 3 and 5: |cos| between the
	// minimum- and maximum-side basis vectors per latent dimension.
	CosVUnaligned  []float64 // before ILSA (Figure 3a)
	CosVAligned    []float64 // after ILSA (Figure 3b)
	CosURecovered  []float64 // U side after solving (Figure 5a, ISVD2-4)
	CosVRecomputed []float64 // V side after ISVD4 recomputation (Figure 5b)

	Timings Timings

	// state retains the incremental-update engine state when the
	// decomposition was produced with Options.Updatable (see update.go).
	state *updState
}

// ValidateInput checks that an interval matrix is a legal decomposition
// input: finite endpoints and Lo <= Hi everywhere.
func ValidateInput(m *imatrix.IMatrix) error {
	if !m.Lo.IsFinite() || !m.Hi.IsFinite() {
		return fmt.Errorf("core: input contains NaN or Inf endpoints")
	}
	if !m.IsWellFormed() {
		return fmt.Errorf("core: input contains misordered intervals (lo > hi); repair with AverageReplace or FromUnordered")
	}
	return nil
}

// Decompose runs the selected ISVD method on the interval matrix m.
func Decompose(m *imatrix.IMatrix, method Method, opts Options) (*Decomposition, error) {
	if err := ValidateInput(m); err != nil {
		return nil, err
	}
	switch method {
	case ISVD0:
		return DecomposeISVD0(m, opts)
	case ISVD1:
		return DecomposeISVD1(m, opts)
	case ISVD2:
		return DecomposeISVD2(m, opts)
	case ISVD3:
		return DecomposeISVD3(m, opts)
	case ISVD4:
		return DecomposeISVD4(m, opts)
	default:
		return nil, fmt.Errorf("core: unknown method %v", method)
	}
}

// ParseMethod parses a method name as it appears in CLI flags and
// service requests: "ISVD0".."ISVD4" (any case) or the bare digit.
func ParseMethod(s string) (Method, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	t = strings.TrimPrefix(t, "ISVD")
	if len(t) == 1 && t[0] >= '0' && t[0] <= '4' {
		return Method(t[0] - '0'), nil
	}
	return 0, fmt.Errorf("core: unknown method %q (want ISVD0..ISVD4)", s)
}

// ParseTarget parses a decomposition target name: "a", "b", or "c"
// (any case).
func ParseTarget(s string) (Target, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "a":
		return TargetA, nil
	case "b":
		return TargetB, nil
	case "c":
		return TargetC, nil
	default:
		return 0, fmt.Errorf("core: unknown target %q (want a, b, or c)", s)
	}
}

// ParseRefresh parses a refresh policy name: "auto", "never", or
// "always" (any case).
func ParseRefresh(s string) (Refresh, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto":
		return RefreshAuto, nil
	case "never":
		return RefreshNever, nil
	case "always":
		return RefreshAlways, nil
	default:
		return 0, fmt.Errorf("core: unknown refresh policy %q (want auto, never, or always)", s)
	}
}

// Methods lists all decomposition methods in order.
func Methods() []Method { return []Method{ISVD0, ISVD1, ISVD2, ISVD3, ISVD4} }

// Targets lists all decomposition targets in order.
func Targets() []Target { return []Target{TargetA, TargetB, TargetC} }
