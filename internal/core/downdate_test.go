package core

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// checkDecompBitwise asserts two decompositions publish bit-identical
// factor outputs.
func checkDecompBitwise(t *testing.T, got, want *Decomposition, what string) {
	t.Helper()
	for name, pair := range map[string][2]*matrix.Dense{
		"U.Lo": {got.U.Lo, want.U.Lo}, "U.Hi": {got.U.Hi, want.U.Hi},
		"V.Lo": {got.V.Lo, want.V.Lo}, "V.Hi": {got.V.Hi, want.V.Hi},
		"Sigma.Lo": {got.Sigma.Lo, want.Sigma.Lo}, "Sigma.Hi": {got.Sigma.Hi, want.Sigma.Hi},
	} {
		a, b := pair[0], pair[1]
		if len(a.Data) != len(b.Data) {
			t.Fatalf("%s: %s shape differs", what, name)
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%s: %s differs bitwise at flat index %d", what, name, i)
			}
		}
	}
}

func TestDowndateMatchesFullRecomputeAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	base := nonNegLowRank(42, 30, 4, rng)
	sp := sparse.FromIMatrix(base)
	opts := Options{Rank: 10, Target: TargetB, Updatable: true}
	for _, method := range Methods() {
		for _, kind := range []string{"unpatch", "remove-rows", "remove-cols"} {
			t.Run(method.String()+"/"+kind, func(t *testing.T) {
				d, err := DecomposeSparse(sp, method, opts)
				if err != nil {
					t.Fatal(err)
				}
				var delta Delta
				var after *sparse.ICSR
				switch kind {
				case "unpatch":
					delta.Unpatch = []sparse.Cell{{Row: 1, Col: 2}, {Row: 1, Col: 5}, {Row: 8, Col: 3}}
					after, err = sp.ApplyUnpatch(delta.Unpatch)
				case "remove-rows":
					delta.RemoveRows = []int{41, 0, 7}
					after, err = sp.RemoveRows(delta.RemoveRows)
				case "remove-cols":
					delta.RemoveCols = []int{3, 29}
					after, err = sp.RemoveCols(delta.RemoveCols)
				}
				if err != nil {
					t.Fatal(err)
				}
				d2, err := d.Update(delta, Options{Refresh: RefreshNever})
				if err != nil {
					t.Fatal(err)
				}
				ref, err := DecomposeSparse(after, method, opts)
				if err != nil {
					t.Fatal(err)
				}
				checkDecompAgreement(t, d2, ref, 1e-6)
				if h := d2.Health(); !h.Updatable || h.Updates != 1 {
					t.Errorf("health after downdate: %+v", h)
				}
			})
		}
	}
}

// TestAppendThenDowndateRecovers is the sliding-window identity through
// the full engine: appending a slice of rows and then expiring exactly
// those rows must recover the never-appended decomposition to the
// engine's 1e-6 agreement contract, for every method and worker count.
func TestAppendThenDowndateRecovers(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(89))
	base := nonNegLowRank(36, 24, 4, rng)
	sp := sparse.FromIMatrix(base)
	slice := sparse.FromIMatrix(nonNegLowRank(3, 24, 2, rand.New(rand.NewSource(90))))
	opts := Options{Rank: 10, Target: TargetB, Updatable: true}
	for _, method := range Methods() {
		for _, w := range []int{1, 3, 8} {
			t.Run(method.String()+"/w"+string(rune('0'+w)), func(t *testing.T) {
				parallel.SetWorkers(w)
				d, err := DecomposeSparse(sp, method, opts)
				if err != nil {
					t.Fatal(err)
				}
				grown, err := d.Update(Delta{AppendRows: slice}, Options{Refresh: RefreshNever})
				if err != nil {
					t.Fatal(err)
				}
				back, err := grown.Update(Delta{RemoveRows: []int{36, 37, 38}}, Options{Refresh: RefreshNever})
				if err != nil {
					t.Fatal(err)
				}
				checkDecompAgreement(t, back, d, 1e-6)
				if h := back.Health(); h.Updates != 2 || h.UpdatesSinceRefresh != 2 {
					t.Errorf("health counters after chain: %+v", h)
				}
			})
		}
	}
}

func TestForgetUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	sp := sparse.FromIMatrix(nonNegLowRank(30, 22, 4, rng))
	opts := Options{Rank: 8, Target: TargetB, Updatable: true}
	d, err := DecomposeSparse(sp, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}

	// λ decays the decomposition exactly like decomposing the decayed
	// matrix: both the factors and the authoritative matrix scale.
	lam := 0.5
	decayed, err := d.Update(Delta{Forget: lam}, Options{Refresh: RefreshNever})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := sp.Scale(lam)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := DecomposeSparse(scaled, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDecompAgreement(t, decayed, ref, 1e-6)

	// λ = 1 is pinned as a bitwise no-op: an update carrying Forget = 1
	// publishes bit-identical factors to the same update without it.
	patch, _ := streamPatch(sp, 2, rand.New(rand.NewSource(94)))
	plain, err := d.Update(Delta{Patch: patch}, Options{Refresh: RefreshNever})
	if err != nil {
		t.Fatal(err)
	}
	noop, err := d.Update(Delta{Forget: 1, Patch: patch}, Options{Refresh: RefreshNever})
	if err != nil {
		t.Fatal(err)
	}
	checkDecompBitwise(t, noop, plain, "forget-1 no-op")

	// A forget-only delta with λ = 1 is still a legal (if trivial) update.
	if _, err := d.Update(Delta{Forget: 1}, Options{Refresh: RefreshNever}); err != nil {
		t.Errorf("forget-only λ=1 update rejected: %v", err)
	}

	for _, bad := range []float64{-0.5, 1.5, math.NaN()} {
		if _, err := d.Update(Delta{Forget: bad}, Options{}); err == nil {
			t.Errorf("forgetting factor %v accepted", bad)
		}
	}
}

// TestEscalationLadder drives each escalation trigger and checks the
// ladder acts in order, deterministically, with the health counters
// recording what happened.
func TestEscalationLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	// Full-spectrum data so additive updates discard mass.
	m := imatrix.New(30, 22)
	for i := range m.Lo.Data {
		v := math.Abs(rng.NormFloat64())
		m.Lo.Data[i] = v
		m.Hi.Data[i] = v + 0.1
	}
	sp := sparse.FromIMatrix(m)
	opts := Options{Rank: 5, Target: TargetB, Updatable: true}
	d, err := DecomposeSparse(sp, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}
	patch, after := streamPatch(sp, 4, rand.New(rand.NewSource(98)))

	// Level 1: a tripped residual budget warm-refreshes and records it.
	warm, err := d.Update(Delta{Patch: patch}, Options{RefreshBudget: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	h := warm.Health()
	if h.Refreshes != 1 || h.LastEscalation != "refresh" || h.UpdatesSinceRefresh != 0 {
		t.Fatalf("budget trip health: %+v", h)
	}
	if h.ResidualBudgetUsed != 0 {
		t.Fatalf("refresh did not reset the budget: %g", h.ResidualBudgetUsed)
	}
	if !strings.Contains(h.LastEscalationReason, "budget") {
		t.Errorf("refresh reason %q does not name the budget", h.LastEscalationReason)
	}

	// Level 2: orthogonality drift past OrthoBudget forces the full
	// windowed redecompose — bitwise identical to a cold decomposition of
	// the updated matrix.
	redec, err := d.Update(Delta{Patch: patch}, Options{Refresh: RefreshNever, OrthoBudget: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	h = redec.Health()
	if h.Redecomposes != 1 || h.LastEscalation != "redecompose" {
		t.Fatalf("ortho trip health: %+v", h)
	}
	ref, err := DecomposeSparse(after, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDecompBitwise(t, redec, ref, "ortho-budget redecompose")
}

// TestIllConditionedDowndateEscalates drives the window-churn regime
// the downdate guardrail exists for: a row carrying six orders of
// magnitude more mass than the rest arrives additively, then expires.
// Removing it cancels nearly the whole spectrum against the trailing
// directions, the factor downdate is ill-conditioned, and the engine
// must abandon the additive chain and redecompose the windowed matrix —
// even under RefreshNever, which disables budget refreshes but not the
// guardrails. The caller sees a successful update, never an error and
// never damaged factors.
func TestIllConditionedDowndateEscalates(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	m := imatrix.New(12, 8)
	for i := range m.Lo.Data {
		v := math.Abs(rng.NormFloat64())
		m.Lo.Data[i] = v
		m.Hi.Data[i] = v + 0.05
	}
	sp := sparse.FromIMatrix(m)
	opts := Options{Rank: 5, Target: TargetB, Updatable: true}
	d, err := DecomposeSparse(sp, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}
	row := imatrix.New(1, 8)
	for j := 0; j < 8; j++ {
		v := 1e6 * math.Abs(rng.NormFloat64())
		row.Lo.Set(0, j, v)
		row.Hi.Set(0, j, v*1.2)
	}
	// A lax OrthoBudget lets the violent append through additively (its
	// eigensolve noise alone would otherwise trip the drift guardrail,
	// which is the right call in production but not the path under test).
	grown, err := d.Update(Delta{AppendRows: sparse.FromIMatrix(row)},
		Options{Refresh: RefreshNever, OrthoBudget: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if h := grown.Health(); h.Redecomposes != 0 {
		t.Fatalf("append escalated early: %+v", h)
	}
	d2, err := grown.Update(Delta{RemoveRows: []int{12}}, Options{Refresh: RefreshNever})
	if err != nil {
		t.Fatalf("ill-conditioned downdate surfaced as an error instead of escalating: %v", err)
	}
	h := d2.Health()
	if h.Redecomposes != 1 || h.LastEscalation != "redecompose" {
		t.Fatalf("health after ill-conditioned downdate: %+v", h)
	}
	if !strings.Contains(h.LastEscalationReason, "ill-conditioned") {
		t.Errorf("escalation reason %q does not name the ill-conditioning", h.LastEscalationReason)
	}
	// Appending the row and expiring it leaves exactly the original
	// matrix, and the escalated redecompose is pinned bitwise to a cold
	// decomposition of it.
	ref, err := DecomposeSparse(sp, ISVD1, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDecompBitwise(t, d2, ref, "ill-conditioned redecompose")
}

// TestPoisonedStateNeverPublishes: a non-finite factor entry fails the
// update with ErrPoisoned instead of propagating into a published
// decomposition.
func TestPoisonedStateNeverPublishes(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	sp := sparse.FromIMatrix(nonNegLowRank(20, 14, 3, rng))
	d, err := DecomposeSparse(sp, ISVD1, Options{Rank: 6, Target: TargetB, Updatable: true})
	if err != nil {
		t.Fatal(err)
	}
	d.state.lo.U.Data[0] = math.NaN()
	// Forget touches only the spectrum, so the NaN survives to the
	// finiteness gate rather than failing some earlier product.
	_, err = d.Update(Delta{Forget: 0.5}, Options{Refresh: RefreshNever})
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("update on poisoned state: %v, want ErrPoisoned", err)
	}
}

// TestHealthReport pins the report itself: non-updatable decompositions
// are all-zero, fresh chains start at zero, and the measured fields are
// sane.
func TestHealthReport(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	sp := sparse.FromIMatrix(nonNegLowRank(20, 14, 3, rng))
	plain, err := DecomposeSparse(sp, ISVD1, Options{Rank: 6, Target: TargetB})
	if err != nil {
		t.Fatal(err)
	}
	if h := plain.Health(); h != (Health{}) {
		t.Errorf("non-updatable health not zero: %+v", h)
	}
	d, err := DecomposeSparse(sp, ISVD1, Options{Rank: 6, Target: TargetB, Updatable: true})
	if err != nil {
		t.Fatal(err)
	}
	h := d.Health()
	if !h.Updatable || h.Updates != 0 || h.Refreshes != 0 || h.LastEscalation != "" {
		t.Fatalf("fresh chain health: %+v", h)
	}
	if h.Cond < 1 {
		t.Errorf("condition estimate %g below 1", h.Cond)
	}
	if h.OrthoDrift < 0 || h.OrthoDrift > 1e-8 {
		t.Errorf("fresh factors report drift %g", h.OrthoDrift)
	}
}
