package core

import (
	"repro/internal/imatrix"
	"repro/internal/matrix"
)

// AccuracyResult carries the decomposition-accuracy measures of
// Definition 5 of the paper.
type AccuracyResult struct {
	// DeltaLo and DeltaHi are the relative Frobenius reconstruction
	// errors of the minimum and maximum endpoint matrices.
	DeltaLo, DeltaHi float64
	// ThetaLo and ThetaHi are the clamped accuracies max(0, 1-Δ).
	ThetaLo, ThetaHi float64
	// HMean is the harmonic mean of ThetaLo and ThetaHi — the headline
	// metric of the paper's Tables 2 and Figures 6, 7, and 9.
	HMean float64
}

// Accuracy scores a reconstruction against the original interval matrix
// per Definition 5: Δ(M, M̃) = ‖M − M̃‖_F / ‖M‖_F per endpoint,
// Θ = max(0, 1-Δ), combined by harmonic mean.
//
//ivmf:deterministic
func Accuracy(orig, recon *imatrix.IMatrix) AccuracyResult {
	dLo := relativeError(orig.Lo, recon.Lo)
	dHi := relativeError(orig.Hi, recon.Hi)
	tLo := clampAccuracy(dLo)
	tHi := clampAccuracy(dHi)
	return AccuracyResult{
		DeltaLo: dLo,
		DeltaHi: dHi,
		ThetaLo: tLo,
		ThetaHi: tHi,
		HMean:   HarmonicMean(tLo, tHi),
	}
}

// Evaluate is a convenience helper running Reconstruct and Accuracy.
//
//ivmf:deterministic
func (d *Decomposition) Evaluate(orig *imatrix.IMatrix) AccuracyResult {
	return Accuracy(orig, d.Reconstruct())
}

// relativeError returns ‖a − b‖_F / ‖a‖_F, with the conventions that a
// zero reference with zero error is perfect (0) and a zero reference with
// any error is total (1).
//
//ivmf:deterministic
func relativeError(a, b *matrix.Dense) float64 {
	ref := a.Frobenius()
	diff := matrix.Sub(a, b).Frobenius()
	if ref == 0 {
		if diff == 0 {
			return 0
		}
		return 1
	}
	return diff / ref
}

//ivmf:deterministic
func clampAccuracy(delta float64) float64 {
	if acc := 1 - delta; acc > 0 {
		return acc
	}
	return 0
}

// HarmonicMean returns 2ab/(a+b), or 0 when a+b is 0.
//
//ivmf:deterministic
func HarmonicMean(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}
