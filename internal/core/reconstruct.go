package core

import (
	"repro/internal/imatrix"
	"repro/internal/matrix"
)

// Reconstruct recombines the factors into M̃† = U† × Σ† × V†ᵀ using the
// reconstruction semantics matching the decomposition target
// (Supplementary Algorithms 12-14). The result is always an interval
// matrix; for TargetC it is degenerate (scalar).
//
//ivmf:deterministic
func (d *Decomposition) Reconstruct() *imatrix.IMatrix {
	switch d.Target {
	case TargetA:
		// Full interval algebra: M̃† = (U† × Σ†) × V†ᵀ, using the same
		// product semantics that produced the factors.
		if d.ExactAlgebra {
			return imatrix.Mul(imatrix.Mul(d.U, d.Sigma), d.V.T())
		}
		return imatrix.MulEndpoints(imatrix.MulEndpoints(d.U, d.Sigma), d.V.T())
	case TargetB:
		// Scalar factors, interval core: per-endpoint scalar products.
		u := d.U.Mid()
		vt := d.V.Mid().T()
		lo := matrix.Mul(matrix.Mul(u, d.Sigma.Lo), vt)
		hi := matrix.Mul(matrix.Mul(u, d.Sigma.Hi), vt)
		out := imatrix.FromEndpoints(lo, hi)
		out.AverageReplace()
		return out
	case TargetC:
		// All scalar.
		u := d.U.Mid()
		vt := d.V.Mid().T()
		return imatrix.FromScalar(matrix.Mul(matrix.Mul(u, d.Sigma.Mid()), vt))
	default:
		panic("core: Reconstruct: unknown target")
	}
}
