package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
	"repro/internal/update"
)

// Incremental factor updates: a decomposition produced with
// Options.Updatable retains the truncated endpoint factor states (the
// per-side U, Σ, V of the endpoint matrices) plus an authoritative
// sparse copy of the input, and Update folds an arriving batch — new
// rows, new columns, or a sparse cell patch — into those states with the
// Brand-style low-rank updates of internal/update, then re-runs the
// method's align/solve/construct stages from the factors. Per batch that
// costs O((n+m)·r·c + (r+c)³) for the factor fold plus the method's
// factor-sized downstream work (ISVD3/4 additionally pay one O(NNZ·r)
// interval product for the U† recovery), instead of a full
// re-decomposition's many O(NNZ·r) solver sweeps.
//
// Each additive update discards singular mass when the batch pushes
// content past the kept rank; the engine accumulates the discarded
// fraction and, under the default RefreshAuto policy, schedules a
// warm-started truncated re-solve (eig.TruncatedSVDOpts seeded with the
// current factors — one or two sweeps on drifted data) when the running
// total trips Options.RefreshBudget. The additive path, the refresh
// path, and the downstream stages all run on the deterministic kernels,
// so updated decompositions are bitwise identical for any worker count.

// Refresh selects the refresh policy of incremental updates
// (Options.Refresh).
type Refresh int

const (
	// RefreshAuto (the zero value) applies the additive factor update
	// and schedules a warm-started truncated re-solve when the
	// accumulated discarded singular mass exceeds Options.RefreshBudget.
	RefreshAuto Refresh = iota
	// RefreshNever always applies the additive update, letting the
	// caller manage accuracy (Decomposition.UpdateResidual exposes the
	// accumulated budget use).
	RefreshNever
	// RefreshAlways re-solves on every batch (warm-started, so still far
	// cheaper than a cold decomposition) — the most accurate and most
	// expensive policy.
	RefreshAlways
)

// String returns "auto", "never", or "always".
func (r Refresh) String() string {
	switch r {
	case RefreshAuto:
		return "auto"
	case RefreshNever:
		return "never"
	case RefreshAlways:
		return "always"
	default:
		return fmt.Sprintf("Refresh(%d)", int(r))
	}
}

// defaultRefreshBudget is the RefreshAuto threshold on the accumulated
// relative discarded singular mass: 1% of the spectrum's Frobenius norm
// keeps reconstruction drift well under typical evaluation tolerances
// while letting many small batches through between refreshes.
const defaultRefreshBudget = 0.01

// defaultOrthoBudget is the Options.OrthoBudget default: factor states
// whose ‖QᵀQ−I‖∞ drifts past it are rebuilt with a full windowed
// redecompose. It matches the update package's downdate tolerance — an
// order of magnitude above eigensolver rounding noise, two below the
// engine's 1e-6 agreement contract.
const defaultOrthoBudget = 1e-8

// ErrPoisoned marks an update whose factors came out non-finite
// (NaN/Inf). Update never returns such factors: the error leaves the
// previous functional decomposition serving, so a poisoned state is
// never published or persisted.
var ErrPoisoned = errors.New("core: update produced non-finite factors")

// Delta is a batch modification to a decomposed matrix. Any combination
// of the fields may be set; they apply in order Forget, AppendRows,
// AppendCols, Patch, Unpatch, RemoveRows, RemoveCols. Patch, Unpatch,
// and the removal index sets all address the post-append shape (and the
// removals run last, so their indices are stable against everything
// else in the same batch) — the natural sliding-window order: decay old
// evidence, admit the new slice, then expire the old one.
type Delta struct {
	// Forget, when in (0, 1), is the exponential forgetting factor λ:
	// the retained singular values and the stored matrix are scaled by
	// λ before the other stages, so older evidence decays by λ per
	// batch. Zero means no forgetting; λ = 1 is pinned as a bitwise
	// no-op (no multiply runs anywhere).
	Forget float64
	// AppendRows appends new rows at the bottom (c×cols).
	AppendRows *sparse.ICSR
	// AppendCols appends new columns at the right ((rows+appended)×c).
	AppendCols *sparse.ICSR
	// Patch sets cells to new interval values (absolute set semantics —
	// the engine derives the additive factor delta from the stored
	// values). Duplicate cells within one batch are an error.
	Patch []sparse.ITriplet
	// Unpatch reverts cells to unobserved zero (tombstones). Every cell
	// must currently be stored; a tombstone for a never-inserted cell
	// is an error. A cell may not appear in both Patch and Unpatch of
	// one batch.
	Unpatch []sparse.Cell
	// RemoveRows deletes rows (post-append indices, any order);
	// surviving rows shift up. Duplicates and removing every row are
	// errors.
	RemoveRows []int
	// RemoveCols deletes columns (post-append indices); surviving
	// columns shift left.
	RemoveCols []int
}

func (dl Delta) empty() bool {
	return dl.Forget == 0 && dl.AppendRows == nil && dl.AppendCols == nil &&
		len(dl.Patch) == 0 && len(dl.Unpatch) == 0 &&
		len(dl.RemoveRows) == 0 && len(dl.RemoveCols) == 0
}

// updState is the retained engine state of an updatable decomposition:
// the authoritative sparse matrix, the per-side truncated factor states,
// and the accumulated refresh-budget use. States are functional — every
// Update builds a new one — so an old Decomposition keeps serving while
// (or after) an updated one is built.
type updState struct {
	opts Options      // resolved decompose options (rank, target, solver…)
	m    *sparse.ICSR // current matrix
	// Endpoint factor states: mid for ISVD0, lo/hi for ISVD1-4.
	lo, hi, mid *eig.SVDResult
	// resAcc is the accumulated relative discarded singular mass since
	// the last refresh (the RefreshAuto budget variable).
	resAcc float64

	// Health counters (see Decomposition.Health). These are advisory
	// diagnostics: no escalation decision reads them — decisions depend
	// only on resAcc, the factors, the delta, and the per-call options,
	// all of which survive persistence — so WAL replay reproduces the
	// same refresh actions bitwise even though the counters restart at
	// zero on recovery.
	updates             int    // updates absorbed since decompose/import
	updatesSinceRefresh int    // updates since the last warm or full refresh
	refreshes           int    // warm-started truncated refreshes (ladder level 1)
	redecomposes        int    // full windowed redecomposes (ladder level 2)
	lastEscalation      string // "", "refresh", or "redecompose"
	lastReason          string // human-readable trigger of the last escalation
}

// Updatable reports whether this decomposition retains the incremental
// engine state (it was produced with Options.Updatable, or by Update).
func (d *Decomposition) Updatable() bool { return d.state != nil }

// UpdateResidual returns the accumulated relative discarded singular
// mass since the last full solve or refresh — the fraction of
// Options.RefreshBudget already spent. Zero for non-updatable
// decompositions.
func (d *Decomposition) UpdateResidual() float64 {
	if d.state == nil {
		return 0
	}
	return d.state.resAcc
}

// validateUpdatable rejects Updatable configurations the factor-state
// engine cannot serve: exact interval algebra (the state pipeline runs
// the endpoint min/max kernels), and ISVD2-4 on data with negative
// endpoints — the interval Gram then does not separate into the
// per-endpoint Grams the factor states represent.
// nonNegative is queried lazily, only for the configurations that need
// the O(m·n) endpoint scan (Updatable ISVD2-4).
func validateUpdatable(method Method, opts Options, nonNegative func() bool) error {
	if !opts.Updatable {
		return nil
	}
	if opts.ExactAlgebra {
		return fmt.Errorf("core: Updatable requires endpoint algebra (ExactAlgebra is unsupported)")
	}
	if method >= ISVD2 && method <= ISVD4 && !nonNegative() {
		return fmt.Errorf("core: Updatable %v requires entrywise non-negative endpoints (the interval Gram must separate per endpoint); use ISVD0/ISVD1 or drop Updatable", method)
	}
	return nil
}

// captureState records the incremental engine state on d. Factors are
// deep-cloned: the pipeline mutates the hi side in place during ILSA,
// and callers own the returned Decomposition.
func captureState(d *Decomposition, op operand, opts Options, lo, hi, mid *eig.SVDResult) {
	st := &updState{opts: opts, m: op.toICSR()}
	if mid != nil {
		st.mid = sanitizeState(cloneSVD(mid))
	}
	if lo != nil {
		st.lo = sanitizeState(cloneSVD(lo))
	}
	if hi != nil {
		st.hi = sanitizeState(cloneSVD(hi))
	}
	d.state = st
}

// stateSigmaTol clamps captured singular values below stateSigmaTol
// times the largest to zero: a rank-r truncation of lower-rank data
// leaves eigen-rounding noise in the trailing values — Gram eigenvalues
// carry ~eps·λ₁ absolute noise, so their square roots sit at ~√eps·σ₁ ≈
// 1.5e-8·σ₁ — and ISVD2-4's U recovery divides by them, producing
// garbage non-orthogonal factor columns. The update engine's invariant
// is "factor columns are orthonormal or exactly zero per zero singular
// value", so noise-level triples are zeroed on capture; the cut sits an
// order of magnitude above the noise floor and an order below the
// engine's 1e-6 agreement contract.
const stateSigmaTol = 1e-7

// sanitizeState enforces the update-engine factor invariant on a freshly
// captured state, in place: singular values at rounding-noise level
// become exactly zero along with their U and V columns.
//
//ivmf:deterministic
func sanitizeState(f *eig.SVDResult) *eig.SVDResult {
	var smax float64
	for _, s := range f.S {
		if s > smax {
			smax = s
		}
	}
	for j, s := range f.S {
		if s > stateSigmaTol*smax {
			continue
		}
		f.S[j] = 0
		for i := 0; i < f.U.Rows; i++ {
			f.U.Data[i*f.U.Cols+j] = 0
		}
		for i := 0; i < f.V.Rows; i++ {
			f.V.Data[i*f.V.Cols+j] = 0
		}
	}
	return f
}

// cloneSVD deep-copies a factor triple; Truncate at full rank is
// already documented as a fully independent copy.
func cloneSVD(f *eig.SVDResult) *eig.SVDResult { return f.Truncate(len(f.S)) }

// UpdateSparse folds a batch delta into an updatable decomposition and
// returns the refreshed decomposition; it is Decomposition.Update as a
// free function, mirroring DecomposeSparse.
//
//ivmf:deterministic
func UpdateSparse(d *Decomposition, delta Delta, opts Options) (*Decomposition, error) {
	return d.Update(delta, opts)
}

// Update folds a batch delta into this updatable decomposition: the
// sparse matrix copy absorbs the delta, the endpoint factor states take
// a Brand-style low-rank update (or a warm-started truncated re-solve,
// per opts.Refresh and the accumulated residual budget), and the
// method's align/solve/construct stages re-run from the factors. The
// receiver is not modified — it keeps serving — and the returned
// decomposition carries the advanced state for the next batch.
//
// opts controls the update step only: Refresh and RefreshBudget select
// the refresh policy, Workers bounds this update's fan-outs (zero
// falls back to the decompose-time setting). The structural options —
// Rank, Target, Assign, Solver, thresholds — are fixed at decompose
// time and ignored here.
//
//ivmf:deterministic
func (d *Decomposition) Update(delta Delta, opts Options) (*Decomposition, error) {
	st := d.state
	if st == nil {
		return nil, fmt.Errorf("core: Update: decomposition does not carry update state (decompose with Options.Updatable)")
	}
	base := st.opts
	workers := opts.Workers
	if workers == 0 {
		workers = base.Workers
	}
	budget := opts.RefreshBudget
	if budget == 0 {
		budget = defaultRefreshBudget
	}
	orthoBudget := opts.OrthoBudget
	if orthoBudget == 0 {
		orthoBudget = defaultOrthoBudget
	}
	if delta.empty() {
		return nil, fmt.Errorf("core: Update: empty delta")
	}
	if err := validateDelta(d.Method, delta); err != nil {
		return nil, fmt.Errorf("core: Update: %w", err)
	}
	if len(delta.Patch) > 0 && len(delta.Unpatch) > 0 {
		patched := make(map[[2]int]bool, len(delta.Patch))
		for _, t := range delta.Patch {
			patched[[2]int{t.Row, t.Col}] = true
		}
		for _, cl := range delta.Unpatch {
			if patched[[2]int{cl.Row, cl.Col}] {
				return nil, fmt.Errorf("core: Update: cell (%d, %d) appears in both Patch and Unpatch", cl.Row, cl.Col)
			}
		}
	}
	// The window must not shrink below the decompose-time rank: the
	// factor states keep up to Rank directions and every downstream
	// stage sizes against it.
	rows2, cols2 := d.state.m.Rows, d.state.m.Cols
	if delta.AppendRows != nil {
		rows2 += delta.AppendRows.Rows
	}
	if delta.AppendCols != nil {
		cols2 += delta.AppendCols.Cols
	}
	rows2 -= len(delta.RemoveRows)
	cols2 -= len(delta.RemoveCols)
	if rows2 < d.state.opts.Rank || cols2 < d.state.opts.Rank {
		return nil, fmt.Errorf("core: Update: delta shrinks the matrix to %dx%d, below rank %d", rows2, cols2, d.state.opts.Rank)
	}

	m2 := st.m
	lo, hi, mid := st.lo, st.hi, st.mid
	resAcc := st.resAcc
	rank := base.Rank

	// account folds one side's discarded mass into the running budget as
	// a fraction of that side's spectral Frobenius norm.
	account := func(f *eig.SVDResult, disc float64) {
		if disc == 0 {
			return
		}
		var norm float64
		for _, s := range f.S {
			norm += s * s
		}
		if norm == 0 {
			resAcc = math.Inf(1)
			return
		}
		resAcc += disc / math.Sqrt(norm)
	}

	// sideUpdate applies one batch stage to every maintained factor side
	// (lo/hi pair concurrently, or the single mid side for ISVD0).
	sideUpdate := func(stage func(f *eig.SVDResult, side int) (*eig.SVDResult, float64, error)) error {
		if mid != nil {
			nf, disc, err := stage(mid, sideMid)
			if err != nil {
				return err
			}
			account(nf, disc)
			mid = nf
			return nil
		}
		nlo, nhi, discLo, discHi, err := update.Pair(workers,
			func() (*eig.SVDResult, float64, error) { return stage(lo, sideLo) },
			func() (*eig.SVDResult, float64, error) { return stage(hi, sideHi) },
		)
		if err != nil {
			return err
		}
		account(nlo, discLo)
		account(nhi, discHi)
		lo, hi = nlo, nhi
		return nil
	}

	if lam := delta.Forget; lam != 0 {
		if math.IsNaN(lam) || lam <= 0 || lam > 1 {
			return nil, fmt.Errorf("core: Update: forgetting factor %v outside (0, 1]", lam)
		}
		// λ = 1 is pinned as a bitwise no-op: no multiply runs against
		// either the matrix or the factors.
		if lam != 1 {
			next, err := m2.Scale(lam)
			if err != nil {
				return nil, fmt.Errorf("core: Update: %w", err)
			}
			if err := sideUpdate(func(f *eig.SVDResult, side int) (*eig.SVDResult, float64, error) {
				nf, err := update.Forget(f, lam)
				return nf, 0, err
			}); err != nil {
				return nil, fmt.Errorf("core: Update: forget: %w", err)
			}
			m2 = next
		}
	}
	if delta.AppendRows != nil {
		b := delta.AppendRows
		if err := ValidateSparseInput(b); err != nil {
			return nil, fmt.Errorf("core: Update: appended rows: %w", err)
		}
		next, err := sparse.AppendRows(m2, b)
		if err != nil {
			return nil, fmt.Errorf("core: Update: %w", err)
		}
		if err := sideUpdate(func(f *eig.SVDResult, side int) (*eig.SVDResult, float64, error) {
			return update.AppendRows(f, sideDense(b, side), rank)
		}); err != nil {
			return nil, fmt.Errorf("core: Update: append rows: %w", err)
		}
		m2 = next
	}
	if delta.AppendCols != nil {
		b := delta.AppendCols
		if err := ValidateSparseInput(b); err != nil {
			return nil, fmt.Errorf("core: Update: appended cols: %w", err)
		}
		next, err := sparse.AppendCols(m2, b)
		if err != nil {
			return nil, fmt.Errorf("core: Update: %w", err)
		}
		if err := sideUpdate(func(f *eig.SVDResult, side int) (*eig.SVDResult, float64, error) {
			return update.AppendCols(f, sideDense(b, side), rank)
		}); err != nil {
			return nil, fmt.Errorf("core: Update: append cols: %w", err)
		}
		m2 = next
	}
	if len(delta.Patch) > 0 {
		// Derive the additive per-side deltas from the currently stored
		// values (set semantics in, additive factor update out), then
		// apply the patch to the matrix.
		next, err := m2.ApplyPatch(delta.Patch)
		if err != nil {
			return nil, fmt.Errorf("core: Update: %w", err)
		}
		adds := make([][]sparse.Triplet, 3)
		for _, t := range delta.Patch {
			if math.IsNaN(t.Lo) || math.IsInf(t.Lo, 0) || math.IsNaN(t.Hi) || math.IsInf(t.Hi, 0) {
				return nil, fmt.Errorf("core: Update: patch cell (%d, %d) has NaN or Inf endpoints", t.Row, t.Col)
			}
			if t.Lo > t.Hi {
				return nil, fmt.Errorf("core: Update: patch cell (%d, %d) is misordered (lo > hi)", t.Row, t.Col)
			}
			old := m2.At(t.Row, t.Col)
			for side, dv := range [3]float64{
				sideLo:  t.Lo - old.Lo,
				sideHi:  t.Hi - old.Hi,
				sideMid: (t.Lo+t.Hi)/2 - (old.Lo+old.Hi)/2,
			} {
				if dv != 0 {
					adds[side] = append(adds[side], sparse.Triplet{Row: t.Row, Col: t.Col, Val: dv})
				}
			}
		}
		if err := sideUpdate(func(f *eig.SVDResult, side int) (*eig.SVDResult, float64, error) {
			return update.CellPatch(f, adds[side], rank)
		}); err != nil {
			return nil, fmt.Errorf("core: Update: patch: %w", err)
		}
		m2 = next
	}

	// Downdate stages. An ill-conditioned removal damages the factor
	// states but not the data, so instead of failing the update the
	// additive chain is abandoned (dead): the remaining stages apply to
	// the matrix only and the update escalates straight to a full
	// windowed redecompose from the final matrix. This is the
	// "route through the refresh machinery instead of returning
	// garbage" guarantee, and it holds even under RefreshNever — the
	// policy disables budget-driven refreshes, not the guardrails.
	dead := false
	deadReason := ""
	downdate := func(what string, apply func() error) error {
		if dead {
			return nil
		}
		err := apply()
		if err == nil {
			return nil
		}
		if errors.Is(err, update.ErrIllConditioned) {
			dead = true
			deadReason = fmt.Sprintf("%s: %v", what, err)
			return nil
		}
		return fmt.Errorf("core: Update: %s: %w", what, err)
	}
	if len(delta.Unpatch) > 0 {
		// Per-side current values first: the factor unpatch subtracts
		// exactly what the matrix stores (validated by ApplyUnpatch).
		next, err := m2.ApplyUnpatch(delta.Unpatch)
		if err != nil {
			return nil, fmt.Errorf("core: Update: %w", err)
		}
		cells := make([][]sparse.Triplet, 3)
		for _, cl := range delta.Unpatch {
			old := m2.At(cl.Row, cl.Col)
			for side, v := range [3]float64{
				sideLo:  old.Lo,
				sideHi:  old.Hi,
				sideMid: (old.Lo + old.Hi) / 2,
			} {
				if v != 0 {
					cells[side] = append(cells[side], sparse.Triplet{Row: cl.Row, Col: cl.Col, Val: v})
				}
			}
		}
		if err := downdate("unpatch", func() error {
			return sideUpdate(func(f *eig.SVDResult, side int) (*eig.SVDResult, float64, error) {
				return update.CellUnpatch(f, cells[side], rank)
			})
		}); err != nil {
			return nil, err
		}
		m2 = next
	}
	if len(delta.RemoveRows) > 0 {
		next, err := m2.RemoveRows(delta.RemoveRows)
		if err != nil {
			return nil, fmt.Errorf("core: Update: %w", err)
		}
		if err := downdate("remove rows", func() error {
			return sideUpdate(func(f *eig.SVDResult, side int) (*eig.SVDResult, float64, error) {
				return update.RemoveRows(f, delta.RemoveRows, rank)
			})
		}); err != nil {
			return nil, err
		}
		m2 = next
	}
	if len(delta.RemoveCols) > 0 {
		next, err := m2.RemoveCols(delta.RemoveCols)
		if err != nil {
			return nil, fmt.Errorf("core: Update: %w", err)
		}
		if err := downdate("remove cols", func() error {
			return sideUpdate(func(f *eig.SVDResult, side int) (*eig.SVDResult, float64, error) {
				return update.RemoveCols(f, delta.RemoveCols, rank)
			})
		}); err != nil {
			return nil, err
		}
		m2 = next
	}

	// Numerical-health gate on the additive result: a non-finite factor
	// must never be published — the typed ErrPoisoned leaves the
	// previous functional decomposition serving — and the orthogonality
	// drift feeds the escalation decision below.
	drift := 0.0
	if !dead {
		for _, sd := range [...]struct {
			name string
			f    *eig.SVDResult
		}{{"mid", mid}, {"min", lo}, {"max", hi}} {
			if sd.f == nil {
				continue
			}
			if err := update.CheckFinite(sd.f); err != nil {
				return nil, fmt.Errorf("core: Update: %s side: %w: %v", sd.name, ErrPoisoned, err)
			}
			drift = math.Max(drift, math.Max(
				update.OrthoResidual(sd.f.U, sd.f.S),
				update.OrthoResidual(sd.f.V, sd.f.S)))
		}
	}

	// Escalation ladder: additive (level 0) → warm-started truncated
	// refresh (level 1) → full windowed redecompose (level 2). The
	// triggers are monotone in severity — the budget policy requests
	// level 1; hard numerical damage (ill-conditioned downdate,
	// orthogonality drift past OrthoBudget, an unhealthy warm result)
	// requests level 2 — and deterministic: they read only resAcc, the
	// factor states, the delta, and the per-call options, all of which
	// survive persistence, so WAL replay re-derives identical
	// escalations.
	level, reason := 0, ""
	switch {
	case dead:
		level, reason = 2, deadReason
	case drift > orthoBudget:
		level, reason = 2, fmt.Sprintf("orthogonality drift %.3g exceeds budget %.3g", drift, orthoBudget)
	case opts.Refresh == RefreshAlways:
		level, reason = 1, "refresh-always policy"
	case opts.Refresh == RefreshNever:
	case resAcc > budget:
		level, reason = 1, fmt.Sprintf("accumulated discarded mass %.3g exceeds budget %.3g", resAcc, budget)
	}
	warmed := false
	if level == 1 {
		var warmErr error
		if mid != nil {
			var nf *eig.SVDResult
			if nf, warmErr = warmSolve(m2.MidCSR(), mid, rank, base.Solver); warmErr == nil {
				mid = nf
			}
		} else {
			var nlo, nhi *eig.SVDResult
			var errLo, errHi error
			parallel.DoWith(workers,
				func() { nlo, errLo = warmSolve(m2.LoCSR(), lo, rank, base.Solver) },
				func() { nhi, errHi = warmSolve(m2.HiCSR(), hi, rank, base.Solver) },
			)
			if warmErr = errLo; warmErr == nil {
				warmErr = errHi
			}
			if warmErr == nil {
				lo, hi = nlo, nhi
			}
		}
		if warmErr != nil {
			level, reason = 2, fmt.Sprintf("warm refresh failed: %v", warmErr)
		} else {
			warmed = true
			resAcc = 0
			// Verify the warm result; an unhealthy refresh escalates to
			// the full redecompose instead of being published.
			wdrift := 0.0
			for _, f := range [...]*eig.SVDResult{mid, lo, hi} {
				if f == nil {
					continue
				}
				if err := update.CheckFinite(f); err != nil {
					level, reason = 2, fmt.Sprintf("warm refresh unhealthy: %v", err)
					break
				}
				wdrift = math.Max(wdrift, math.Max(
					update.OrthoResidual(f.U, f.S),
					update.OrthoResidual(f.V, f.S)))
			}
			if level == 1 && wdrift > orthoBudget {
				level, reason = 2, fmt.Sprintf("warm refresh drift %.3g exceeds budget %.3g", wdrift, orthoBudget)
			}
		}
	}

	// advanceHealth carries the chain's health counters onto the
	// updated decomposition (d2's freshly captured state starts at
	// zero). Counters are advisory; no decision above read them.
	advanceHealth := func(d2 *Decomposition) {
		s2 := d2.state
		s2.updates = st.updates + 1
		if level > 0 {
			s2.updatesSinceRefresh = 0
		} else {
			s2.updatesSinceRefresh = st.updatesSinceRefresh + 1
		}
		s2.refreshes = st.refreshes
		s2.redecomposes = st.redecomposes
		s2.lastEscalation, s2.lastReason = st.lastEscalation, st.lastReason
		if warmed {
			s2.refreshes++
			s2.lastEscalation, s2.lastReason = "refresh", reason
		}
		if level == 2 {
			s2.redecomposes++
			s2.lastEscalation, s2.lastReason = "redecompose", reason
		}
	}

	if level == 2 {
		// Full windowed redecompose: a cold decomposition of the current
		// (windowed) matrix — no warm start, the complete pipeline —
		// bitwise identical to DecomposeSparse on the same matrix, which
		// is exactly the offline baseline the chaos harness compares
		// against.
		reopts := base
		reopts.Workers = workers
		d2, err := DecomposeSparse(m2, d.Method, reopts)
		if err != nil {
			return nil, fmt.Errorf("core: Update: redecompose: %w", err)
		}
		for _, sd := range [...]struct {
			name string
			f    *eig.SVDResult
		}{{"mid", d2.state.mid}, {"min", d2.state.lo}, {"max", d2.state.hi}} {
			if sd.f == nil {
				continue
			}
			if err := update.CheckFinite(sd.f); err != nil {
				return nil, fmt.Errorf("core: Update: redecompose %s side: %w: %v", sd.name, ErrPoisoned, err)
			}
		}
		d2.state.resAcc = 0
		d2.state.opts.Workers = base.Workers
		advanceHealth(d2)
		return d2, nil
	}

	// Re-run the method's pipeline from the updated factor states; the
	// operand answers the decomposition steps from the factors and the
	// solve-step products from the updated matrix. The per-call Workers
	// override applies to this re-run but must not stick to the chain:
	// the captured state's options are restored below.
	reopts := base
	reopts.Workers = workers
	op := updateOperand{m: m2, lo: lo, hi: hi, mid: mid}
	var d2 *Decomposition
	var err error
	switch d.Method {
	case ISVD0:
		d2, err = decomposeISVD0(op, reopts)
	case ISVD1:
		d2, err = decomposeISVD1(op, reopts)
	case ISVD2:
		d2, err = decomposeISVD2(op, reopts)
	case ISVD3:
		d2, err = decomposeISVD3(op, reopts)
	case ISVD4:
		d2, err = decomposeISVD4(op, reopts)
	default:
		return nil, fmt.Errorf("core: Update: unsupported method %v", d.Method)
	}
	if err != nil {
		return nil, err
	}
	d2.state.resAcc = resAcc
	d2.state.opts.Workers = base.Workers
	advanceHealth(d2)
	return d2, nil
}

// validateDelta rejects deltas the maintained factor states cannot
// absorb: for ISVD2-4 the data must stay entrywise non-negative (see
// validateUpdatable).
//
//ivmf:deterministic
func validateDelta(method Method, delta Delta) error {
	if method < ISVD2 || method > ISVD4 {
		return nil
	}
	check := func(m *sparse.ICSR, what string) error {
		if m != nil && !m.NonNegative() {
			return fmt.Errorf("%s introduce negative endpoints; updatable %v requires non-negative data", what, method)
		}
		return nil
	}
	if err := check(delta.AppendRows, "appended rows"); err != nil {
		return err
	}
	if err := check(delta.AppendCols, "appended cols"); err != nil {
		return err
	}
	for _, t := range delta.Patch {
		if t.Lo < 0 {
			return fmt.Errorf("patch cell (%d, %d) introduces a negative endpoint; updatable %v requires non-negative data", t.Row, t.Col, method)
		}
	}
	return nil
}

// Factor sides of the update engine.
const (
	sideLo = iota
	sideHi
	sideMid
)

// sideDense densifies one endpoint (or the midpoint) of a sparse batch
// block — batches are small, so the dense block the factor update needs
// is c×n (or m×c) transient.
func sideDense(b *sparse.ICSR, side int) *matrix.Dense {
	switch side {
	case sideLo:
		return b.LoCSR().ToDense()
	case sideHi:
		return b.HiCSR().ToDense()
	default:
		return b.MidCSR().ToDense()
	}
}

// updateOperand plugs the maintained factor states into the shared
// ISVD0-4 pipeline: the decomposition steps (svdMid, svdEndpoints,
// gramEig) are answered from the factors without any iteration — that
// is the entire point of the incremental engine — while the solve-step
// products (the ISVD2 U recovery and the ISVD3/4 interval algebra) run
// against the updated sparse matrix on the CSR kernels, exactly like
// sparseOperand. Align, solve, and construct therefore re-run unchanged
// on updated inputs, so an updated decomposition agrees with a full
// re-decomposition to the accuracy of the factor states themselves.
type updateOperand struct {
	m           *sparse.ICSR
	lo, hi, mid *eig.SVDResult
}

func (o updateOperand) rows() int            { return o.m.Rows }
func (o updateOperand) cols() int            { return o.m.Cols }
func (o updateOperand) toICSR() *sparse.ICSR { return o.m }

func (o updateOperand) svdMid(opts Options) (*eig.SVDResult, time.Duration, time.Duration, error) {
	return cloneSVD(o.mid), 0, 0, nil
}

func (o updateOperand) svdEndpoints(opts Options) (*eig.SVDResult, *eig.SVDResult, error) {
	// Clones: the pipeline's ILSA step mutates the hi side in place.
	return cloneSVD(o.lo), cloneSVD(o.hi), nil
}

func (o updateOperand) gramEig(opts Options) (vLo, vHi *matrix.Dense, sLo, sHi []float64, pre, dec time.Duration, err error) {
	return o.lo.V.Clone(), o.hi.V.Clone(),
		append([]float64(nil), o.lo.S...), append([]float64(nil), o.hi.S...),
		0, 0, nil
}

func (o updateOperand) mulEndpointsRight(s *matrix.Dense, opts Options) *imatrix.IMatrix {
	return sparse.MulEndpointsDense(o.m, s)
}

func (o updateOperand) mulEndpointsLeft(s *matrix.Dense, opts Options) *imatrix.IMatrix {
	return sparse.MulDenseEndpoints(s, o.m)
}

func (o updateOperand) applyLo(v *matrix.Dense) *matrix.Dense {
	return sparse.MulDense(o.m.LoCSR(), v)
}

func (o updateOperand) applyHi(v *matrix.Dense) *matrix.Dense {
	return sparse.MulDense(o.m.HiCSR(), v)
}

// warmSolve re-decomposes one factor side from the updated matrix,
// seeded with the current factors: on drifted data the warm-started
// truncated solver converges in a sweep or two. Falls back to the cold
// routed solver (and ultimately the dense full solver) when the
// truncated iteration is not profitable or does not converge.
func warmSolve(csr *sparse.CSR, prev *eig.SVDResult, rank int, solver eig.Solver) (*eig.SVDResult, error) {
	minDim := csr.Rows
	if csr.Cols < minDim {
		minDim = csr.Cols
	}
	if rank > minDim {
		rank = minDim
	}
	if solver.UseTruncated(rank, minDim) {
		res, err := eig.TruncatedSVDOpts(sparse.NewOperator(csr), rank,
			eig.Options{StartU: prev.U, StartV: prev.V})
		if err == nil {
			return res, nil
		}
		if err != eig.ErrNoConvergence {
			return nil, err
		}
	}
	return sparseSVD(csr, rank, eig.SolverFull)
}
