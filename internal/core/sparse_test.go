package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// sparseDecayICSR builds a non-negative sparse interval matrix with
// geometrically decaying singular spectrum: a sum of scaled rank-1
// patches on random supports (values |N(0,1)|, spans 10%), the regime the
// truncated Gram-free path serves. Duplicate cells accumulate.
func sparseDecayICSR(rng *rand.Rand, rows, cols int, density float64) *sparse.ICSR {
	type cell struct{ r, c int }
	acc := map[cell]float64{}
	k := rows
	if cols < k {
		k = cols
	}
	sr := int(density * float64(rows))
	sc := int(density * float64(cols))
	if sr < 1 {
		sr = 1
	}
	if sc < 1 {
		sc = 1
	}
	scale := 1.0
	for j := 0; j < k; j++ {
		ris := rng.Perm(rows)[:sr]
		cis := rng.Perm(cols)[:sc]
		uv := make([]float64, sr)
		vv := make([]float64, sc)
		for i := range uv {
			uv[i] = math.Abs(rng.NormFloat64())
		}
		for i := range vv {
			vv[i] = math.Abs(rng.NormFloat64())
		}
		for x, ri := range ris {
			for y, ci := range cis {
				acc[cell{ri, ci}] += scale * uv[x] * vv[y]
			}
		}
		scale *= 0.7
		if scale < 1e-4 {
			scale = 1e-4
		}
	}
	ts := make([]sparse.ITriplet, 0, len(acc))
	for c, v := range acc {
		ts = append(ts, sparse.ITriplet{Row: c.r, Col: c.c, Lo: v, Hi: v * 1.1})
	}
	m, err := sparse.FromICOO(rows, cols, ts)
	if err != nil {
		panic(err)
	}
	return m
}

// TestDecomposeSparseMatchesDense pins the storage-equivalence contract:
// for every method and both routed solvers, DecomposeSparse on an ICSR
// agrees with Decompose on its dense expansion. On the truncated path the
// CSR operator kernels accumulate in the dense kernels' exact term order,
// so factors match to near machine precision.
func TestDecomposeSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sm := sparseDecayICSR(rng, 50, 120, 0.05)
	dm := sm.ToIMatrix()
	for _, solver := range []eig.Solver{eig.SolverTruncated, eig.SolverFull} {
		for _, method := range Methods() {
			opts := Options{Rank: 6, Target: TargetB, Solver: solver}
			ds, err := DecomposeSparse(sm, method, opts)
			if err != nil {
				t.Fatalf("%v/%v sparse: %v", method, solver, err)
			}
			dd, err := Decompose(dm, method, opts)
			if err != nil {
				t.Fatalf("%v/%v dense: %v", method, solver, err)
			}
			sigS := ds.Sigma.Lo.Diagonal()
			sigD := dd.Sigma.Lo.Diagonal()
			scale := math.Max(sigD[0], 1e-300)
			for i := range sigS {
				if math.Abs(sigS[i]-sigD[i]) > 1e-9*scale {
					t.Errorf("%v/%v: σ_lo[%d] sparse %.15g vs dense %.15g", method, solver, i, sigS[i], sigD[i])
				}
			}
			for i, v := range ds.U.Lo.Data {
				if d := math.Abs(v - dd.U.Lo.Data[i]); d > 1e-8 {
					t.Fatalf("%v/%v: U.Lo[%d] sparse %g vs dense %g", method, solver, i, v, dd.U.Lo.Data[i])
				}
			}
			for i, v := range ds.V.Hi.Data {
				if d := math.Abs(v - dd.V.Hi.Data[i]); d > 1e-8 {
					t.Fatalf("%v/%v: V.Hi[%d] sparse %g vs dense %g", method, solver, i, v, dd.V.Hi.Data[i])
				}
			}
		}
	}
}

// TestSolverAgreementDense pins the full-vs-truncated contract end to
// end on the dense pipeline: singular values at 1e-9 relative, factors at
// 1e-6 (eigenvector accuracy degrades with the local spectral gap).
func TestSolverAgreementDense(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	sm := sparseDecayICSR(rng, 40, 150, 0.3)
	m := sm.ToIMatrix()
	for _, method := range []Method{ISVD2, ISVD3, ISVD4} {
		full, err := Decompose(m, method, Options{Rank: 8, Target: TargetB, Solver: eig.SolverFull})
		if err != nil {
			t.Fatal(err)
		}
		trunc, err := Decompose(m, method, Options{Rank: 8, Target: TargetB, Solver: eig.SolverTruncated})
		if err != nil {
			t.Fatal(err)
		}
		fs, ts := full.Sigma.Lo.Diagonal(), trunc.Sigma.Lo.Diagonal()
		for i := range fs {
			if math.Abs(fs[i]-ts[i]) > 1e-9*fs[0] {
				t.Errorf("%v: σ[%d] full %.15g vs truncated %.15g", method, i, fs[i], ts[i])
			}
		}
		for i, v := range full.U.Lo.Data {
			if math.Abs(v-trunc.U.Lo.Data[i]) > 1e-6 {
				t.Fatalf("%v: U[%d] full %g vs truncated %g", method, i, v, trunc.U.Lo.Data[i])
			}
		}
	}
}

// TestSolverAgreementMixedSign covers the indefinite-Gram route: with
// intervals straddling zero the min/max-combined endpoint Grams are
// indefinite, so the truncated path must either converge to the correct
// signed-top pairs (certificate) or fall back to the full solver —
// silent divergence beyond 1e-9 would mean the certificate failed.
func TestSolverAgreementMixedSign(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	m := imatrix.New(40, 160)
	base := sparseDecayICSR(rng, 40, 160, 0.4).ToIMatrix()
	for i, lo := range base.Lo.Data {
		// Center the decayed data so entries straddle zero and widen.
		v := lo - 0.4
		m.Lo.Data[i] = v - 0.15
		m.Hi.Data[i] = v + 0.15
	}
	for _, method := range []Method{ISVD2, ISVD4} {
		full, err := Decompose(m, method, Options{Rank: 8, Target: TargetB, Solver: eig.SolverFull})
		if err != nil {
			t.Fatal(err)
		}
		trunc, err := Decompose(m, method, Options{Rank: 8, Target: TargetB, Solver: eig.SolverTruncated})
		if err != nil {
			t.Fatal(err)
		}
		fs, ts := full.Sigma.Hi.Diagonal(), trunc.Sigma.Hi.Diagonal()
		for i := range fs {
			if math.Abs(fs[i]-ts[i]) > 1e-9*math.Max(fs[0], 1) {
				t.Errorf("%v: σ_hi[%d] full %.15g vs truncated %.15g", method, i, fs[i], ts[i])
			}
		}
	}
}

// TestDecomposeSparseNeverMaterializesGram is the allocs/bytes regression
// guard of the tentpole: an end-to-end sparse ISVD4 at truncated-solver
// rank must allocate far less than one endpoint Gram matrix would take
// (cols² float64s), proving the Gram matrices are applied matrix-free.
// A regression to the materialized path (including a silent truncated-
// solver fallback) blows the budget by an order of magnitude.
func TestDecomposeSparseNeverMaterializesGram(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const rows, cols = 60, 800
	sm := sparseDecayICSR(rng, rows, cols, 0.02)
	opts := Options{Rank: 6, Target: TargetB} // Solver zero value: auto
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)

	// Warm up (and fail early on errors) outside the measurement.
	if _, err := DecomposeSparse(sm, ISVD4, opts); err != nil {
		t.Fatal(err)
	}
	const runs = 5
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if _, err := DecomposeSparse(sm, ISVD4, opts); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	bytesPerRun := float64(after.TotalAlloc-before.TotalAlloc) / runs

	gramBytes := float64(cols * cols * 8) // one endpoint Gram matrix
	if bytesPerRun > gramBytes/2 {
		t.Fatalf("sparse ISVD4 allocated %.0f bytes/run, want well below one %dx%d Gram matrix (%.0f bytes) — the Gram-free path regressed",
			bytesPerRun, cols, cols, gramBytes)
	}
}

// TestDecomposeSparseValidation covers the sparse input checks.
func TestDecomposeSparseValidation(t *testing.T) {
	bad, err := sparse.FromICOO(3, 3, []sparse.ITriplet{{Row: 0, Col: 0, Lo: 2, Hi: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecomposeSparse(bad, ISVD4, Options{Rank: 1}); err == nil {
		t.Error("misordered interval accepted")
	}
	nan, err := sparse.FromICOO(3, 3, []sparse.ITriplet{{Row: 1, Col: 1, Lo: math.NaN(), Hi: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecomposeSparse(nan, ISVD4, Options{Rank: 1}); err == nil {
		t.Error("NaN endpoint accepted")
	}
	ok, err := sparse.FromICOO(3, 3, []sparse.ITriplet{{Row: 0, Col: 0, Lo: 1, Hi: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecomposeSparse(ok, ISVD4, Options{Rank: 1, ExactAlgebra: true}); err == nil {
		t.Error("ExactAlgebra accepted on sparse storage")
	}
	if _, err := DecomposeSparse(ok, Method(9), Options{Rank: 1}); err == nil {
		t.Error("unknown method accepted")
	}
}

// TestDecomposeSparseBitwiseAcrossWorkerCounts extends the repository's
// determinism contract to the sparse truncated pipeline.
func TestDecomposeSparseBitwiseAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	sm := sparseDecayICSR(rng, 60, 200, 0.05)
	opts := Options{Rank: 7, Target: TargetB, Solver: eig.SolverTruncated}

	var serial *Decomposition
	parallel.SetWorkers(1)
	var err error
	serial, err = DecomposeSparse(sm, ISVD4, opts)
	parallel.SetWorkers(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{3, 8} {
		parallel.SetWorkers(w)
		par, err := DecomposeSparse(sm, ISVD4, opts)
		parallel.SetWorkers(0)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range serial.U.Lo.Data {
			if par.U.Lo.Data[i] != v {
				t.Fatalf("workers=%d: U.Lo[%d] differs bitwise", w, i)
			}
		}
		for i, v := range serial.Sigma.Hi.Data {
			if par.Sigma.Hi.Data[i] != v {
				t.Fatalf("workers=%d: Sigma.Hi[%d] differs bitwise", w, i)
			}
		}
		for i, v := range serial.V.Lo.Data {
			if par.V.Lo.Data[i] != v {
				t.Fatalf("workers=%d: V.Lo[%d] differs bitwise", w, i)
			}
		}
	}
}
