package core

import (
	"fmt"

	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// Persistence support for the crash-safe model store (internal/store):
// an updatable decomposition is a pure function of its retained engine
// state — the resolved options, the authoritative sparse matrix, the
// per-side factor triples, and the accumulated residual budget — so
// exporting exactly those fields (plus the published factors) and
// re-importing them yields a decomposition that serves bitwise-identical
// predictions and, crucially, absorbs future Update calls
// bitwise-identically to the original chain. That equivalence is what
// lets a restarted server recover by snapshot-load + write-ahead-log
// replay instead of redecomposing.

// PersistentState is the complete serializable image of an updatable
// decomposition. Every field is required except the factor-state sides,
// where exactly one of Mid (ISVD0) or the Lo/Hi pair (ISVD1-4) is set,
// and the diagnostics slices, which may be nil. The fields share storage
// with the decomposition they were exported from; treat them as
// read-only. Timings are not persisted — they are wall-clock
// diagnostics, zero on import.
type PersistentState struct {
	Method Method
	// Opts is the resolved decompose-time option set (rank clamped,
	// thresholds defaulted) that Update uses as its base configuration.
	Opts Options

	// Published interval factors: U is n×r, Sigma r×r, V m×r.
	U, Sigma, V *imatrix.IMatrix

	// Alignment diagnostics (Figures 3 and 5); nil slices allowed.
	CosVUnaligned  []float64
	CosVAligned    []float64
	CosURecovered  []float64
	CosVRecomputed []float64

	// Update-engine state: the authoritative sparse matrix, the per-side
	// endpoint factor states, and the accumulated relative discarded
	// singular mass since the last refresh.
	M           *sparse.ICSR
	Lo, Hi, Mid *eig.SVDResult
	ResAcc      float64
}

// ExportState returns the serializable image of an updatable
// decomposition. The returned struct shares storage with d (no copies);
// callers must treat it as read-only. Decompositions produced without
// Options.Updatable carry no engine state and cannot be exported.
func (d *Decomposition) ExportState() (*PersistentState, error) {
	if d.state == nil {
		return nil, fmt.Errorf("core: ExportState: decomposition carries no update state (decompose with Options.Updatable)")
	}
	return &PersistentState{
		Method:         d.Method,
		Opts:           d.state.opts,
		U:              d.U,
		Sigma:          d.Sigma,
		V:              d.V,
		CosVUnaligned:  d.CosVUnaligned,
		CosVAligned:    d.CosVAligned,
		CosURecovered:  d.CosURecovered,
		CosVRecomputed: d.CosVRecomputed,
		M:              d.state.m,
		Lo:             d.state.lo,
		Hi:             d.state.hi,
		Mid:            d.state.mid,
		ResAcc:         d.state.resAcc,
	}, nil
}

// ImportState rebuilds an updatable decomposition from its exported
// image, validating every structural invariant the engine depends on so
// a corrupted or adversarial image is rejected with an error instead of
// corrupting later updates. The imported decomposition takes ownership
// of the state's storage (which may be read-only memory, e.g. a
// memory-mapped snapshot: neither serving nor Update ever writes to the
// imported planes).
func ImportState(ps *PersistentState) (*Decomposition, error) {
	if ps == nil {
		return nil, fmt.Errorf("core: ImportState: nil state")
	}
	if ps.Method < ISVD0 || ps.Method > ISVD4 {
		return nil, fmt.Errorf("core: ImportState: unknown method %v", ps.Method)
	}
	if ps.M == nil {
		return nil, fmt.Errorf("core: ImportState: missing sparse matrix")
	}
	if err := ps.M.CheckStructure(); err != nil {
		return nil, fmt.Errorf("core: ImportState: matrix: %w", err)
	}
	if err := ValidateSparseInput(ps.M); err != nil {
		return nil, fmt.Errorf("core: ImportState: matrix: %w", err)
	}
	n, m := ps.M.Rows, ps.M.Cols
	r := ps.Opts.Rank
	maxRank := n
	if m < maxRank {
		maxRank = m
	}
	if r < 1 || r > maxRank {
		return nil, fmt.Errorf("core: ImportState: rank %d outside 1..%d", r, maxRank)
	}
	if ps.Opts.Target < TargetA || ps.Opts.Target > TargetC {
		return nil, fmt.Errorf("core: ImportState: unknown target %v", ps.Opts.Target)
	}
	if !ps.Opts.Updatable {
		return nil, fmt.Errorf("core: ImportState: options lost the Updatable flag")
	}
	if err := checkIMatrixShape("U", ps.U, n, r); err != nil {
		return nil, err
	}
	if err := checkIMatrixShape("Sigma", ps.Sigma, r, r); err != nil {
		return nil, err
	}
	if err := checkIMatrixShape("V", ps.V, m, r); err != nil {
		return nil, err
	}
	if ps.Method == ISVD0 {
		if ps.Mid == nil || ps.Lo != nil || ps.Hi != nil {
			return nil, fmt.Errorf("core: ImportState: ISVD0 wants exactly the mid factor state")
		}
		if err := checkFactorState("mid", ps.Mid, n, m); err != nil {
			return nil, err
		}
	} else {
		if ps.Mid != nil || ps.Lo == nil || ps.Hi == nil {
			return nil, fmt.Errorf("core: ImportState: %v wants exactly the lo/hi factor states", ps.Method)
		}
		if err := checkFactorState("lo", ps.Lo, n, m); err != nil {
			return nil, err
		}
		if err := checkFactorState("hi", ps.Hi, n, m); err != nil {
			return nil, err
		}
	}
	for _, diag := range []struct {
		name string
		s    []float64
	}{
		{"CosVUnaligned", ps.CosVUnaligned},
		{"CosVAligned", ps.CosVAligned},
		{"CosURecovered", ps.CosURecovered},
		{"CosVRecomputed", ps.CosVRecomputed},
	} {
		if len(diag.s) > maxRank {
			return nil, fmt.Errorf("core: ImportState: %s has %d entries, rank is %d", diag.name, len(diag.s), r)
		}
	}
	return &Decomposition{
		Method:         ps.Method,
		Target:         ps.Opts.Target,
		Rank:           r,
		U:              ps.U,
		Sigma:          ps.Sigma,
		V:              ps.V,
		ExactAlgebra:   ps.Opts.ExactAlgebra,
		CosVUnaligned:  ps.CosVUnaligned,
		CosVAligned:    ps.CosVAligned,
		CosURecovered:  ps.CosURecovered,
		CosVRecomputed: ps.CosVRecomputed,
		state: &updState{
			opts:   ps.Opts,
			m:      ps.M,
			lo:     ps.Lo,
			hi:     ps.Hi,
			mid:    ps.Mid,
			resAcc: ps.ResAcc,
		},
	}, nil
}

// checkIMatrixShape validates one published interval factor.
func checkIMatrixShape(name string, im *imatrix.IMatrix, rows, cols int) error {
	if im == nil || im.Lo == nil || im.Hi == nil {
		return fmt.Errorf("core: ImportState: missing factor %s", name)
	}
	check := func(side string, d *matrix.Dense) error {
		if d.Rows != rows || d.Cols != cols {
			return fmt.Errorf("core: ImportState: factor %s.%s is %dx%d, want %dx%d", name, side, d.Rows, d.Cols, rows, cols)
		}
		if len(d.Data) != rows*cols {
			return fmt.Errorf("core: ImportState: factor %s.%s carries %d values, want %d", name, side, len(d.Data), rows*cols)
		}
		return nil
	}
	if err := check("lo", im.Lo); err != nil {
		return err
	}
	return check("hi", im.Hi)
}

// checkFactorState validates one endpoint factor triple of the update
// engine: U n×k and V m×k with k = len(S), k at least 1 and at most
// min(n, m).
func checkFactorState(name string, f *eig.SVDResult, n, m int) error {
	if f.U == nil || f.V == nil {
		return fmt.Errorf("core: ImportState: factor state %s is missing U or V", name)
	}
	k := len(f.S)
	minDim := n
	if m < minDim {
		minDim = m
	}
	if k < 1 || k > minDim {
		return fmt.Errorf("core: ImportState: factor state %s keeps %d singular values, want 1..%d", name, k, minDim)
	}
	if f.U.Rows != n || f.U.Cols != k || len(f.U.Data) != n*k {
		return fmt.Errorf("core: ImportState: factor state %s.U is %dx%d (%d values), want %dx%d", name, f.U.Rows, f.U.Cols, len(f.U.Data), n, k)
	}
	if f.V.Rows != m || f.V.Cols != k || len(f.V.Data) != m*k {
		return fmt.Errorf("core: ImportState: factor state %s.V is %dx%d (%d values), want %dx%d", name, f.V.Rows, f.V.Cols, len(f.V.Data), m, k)
	}
	return nil
}
