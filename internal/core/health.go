package core

import (
	"math"

	"repro/internal/eig"
	"repro/internal/update"
)

// Health is the numerical-health report of an updatable decomposition:
// how much incremental damage the factor states have absorbed since the
// last refresh, and what the escalation ladder has done about it. The
// measured fields (drift, condition) are recomputed from the immutable
// factor states on every call, so Health is safe to call concurrently
// with serving; the counters advance along the update chain and reset
// to zero when a chain is recovered from the store (they are advisory —
// no escalation decision reads them, see updState).
type Health struct {
	// Updatable is false for decompositions without engine state; all
	// other fields are then zero.
	Updatable bool

	// ResidualBudgetUsed is the accumulated relative discarded singular
	// mass since the last refresh — the fraction of
	// Options.RefreshBudget already spent (same value as
	// UpdateResidual).
	ResidualBudgetUsed float64
	// OrthoDrift is the worst ‖QᵀQ−I‖∞ over the maintained factor
	// sides: zero for perfectly orthonormal-or-zero factors, escalation
	// territory past Options.OrthoBudget.
	OrthoDrift float64
	// Cond estimates the factor-state conditioning as σ₁/σ_min over the
	// non-zero retained singular values, worst side; 0 when the
	// spectrum is empty.
	Cond float64

	// Updates counts the deltas absorbed since decompose or import;
	// UpdatesSinceRefresh counts those since the last warm refresh or
	// full redecompose.
	Updates             int
	UpdatesSinceRefresh int
	// Refreshes counts warm-started truncated refreshes (escalation
	// level 1); Redecomposes counts full windowed redecomposes (level
	// 2). One update may increment both: a warm refresh whose result
	// failed verification escalates in order.
	Refreshes    int
	Redecomposes int
	// LastEscalation is "", "refresh", or "redecompose";
	// LastEscalationReason is the trigger that forced it, for logs.
	LastEscalation       string
	LastEscalationReason string
}

// Health reports the numerical health of this decomposition's update
// chain. Non-updatable decompositions return the zero report.
//
//ivmf:deterministic
func (d *Decomposition) Health() Health {
	st := d.state
	if st == nil {
		return Health{}
	}
	h := Health{
		Updatable:            true,
		ResidualBudgetUsed:   st.resAcc,
		Updates:              st.updates,
		UpdatesSinceRefresh:  st.updatesSinceRefresh,
		Refreshes:            st.refreshes,
		Redecomposes:         st.redecomposes,
		LastEscalation:       st.lastEscalation,
		LastEscalationReason: st.lastReason,
	}
	for _, f := range [...]*eig.SVDResult{st.mid, st.lo, st.hi} {
		if f == nil {
			continue
		}
		h.OrthoDrift = math.Max(h.OrthoDrift, math.Max(
			update.OrthoResidual(f.U, f.S),
			update.OrthoResidual(f.V, f.S)))
		if len(f.S) > 0 && f.S[0] > 0 {
			smin := 0.0
			for i := len(f.S) - 1; i >= 0; i-- {
				if f.S[i] > 0 {
					smin = f.S[i]
					break
				}
			}
			if smin > 0 {
				h.Cond = math.Max(h.Cond, f.S[0]/smin)
			}
		}
	}
	return h
}
