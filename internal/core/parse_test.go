package core

import "testing"

func TestParseMethod(t *testing.T) {
	good := map[string]Method{
		"ISVD0": ISVD0, "isvd4": ISVD4, "IsVd2": ISVD2,
		"3": ISVD3, " ISVD1 ": ISVD1,
	}
	for in, want := range good {
		got, err := ParseMethod(in)
		if err != nil || got != want {
			t.Fatalf("ParseMethod(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "ISVD5", "LP", "isvd", "5", "-1", "ISVD44"} {
		if _, err := ParseMethod(in); err == nil {
			t.Fatalf("ParseMethod(%q) accepted", in)
		}
	}
}

func TestParseTarget(t *testing.T) {
	good := map[string]Target{"a": TargetA, "B": TargetB, " c ": TargetC}
	for in, want := range good {
		got, err := ParseTarget(in)
		if err != nil || got != want {
			t.Fatalf("ParseTarget(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "d", "ab"} {
		if _, err := ParseTarget(in); err == nil {
			t.Fatalf("ParseTarget(%q) accepted", in)
		}
	}
}

func TestParseRefresh(t *testing.T) {
	good := map[string]Refresh{"auto": RefreshAuto, "NEVER": RefreshNever, " always ": RefreshAlways}
	for in, want := range good {
		got, err := ParseRefresh(in)
		if err != nil || got != want {
			t.Fatalf("ParseRefresh(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "sometimes"} {
		if _, err := ParseRefresh(in); err == nil {
			t.Fatalf("ParseRefresh(%q) accepted", in)
		}
	}
}

// Round trip: every canonical String() parses back to itself.
func TestParseRoundTrip(t *testing.T) {
	for _, m := range Methods() {
		if got, err := ParseMethod(m.String()); err != nil || got != m {
			t.Fatalf("method %v round trip: %v, %v", m, got, err)
		}
	}
	for _, tg := range Targets() {
		if got, err := ParseTarget(tg.String()); err != nil || got != tg {
			t.Fatalf("target %v round trip: %v, %v", tg, got, err)
		}
	}
	for _, r := range []Refresh{RefreshAuto, RefreshNever, RefreshAlways} {
		if got, err := ParseRefresh(r.String()); err != nil || got != r {
			t.Fatalf("refresh %v round trip: %v, %v", r, got, err)
		}
	}
}
