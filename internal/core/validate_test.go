package core

import (
	"math"
	"testing"

	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/matrix"
)

func TestValidateInputRejectsNaN(t *testing.T) {
	m := imatrix.New(2, 2)
	m.Lo.Set(0, 0, math.NaN())
	m.Hi.Set(0, 0, math.NaN())
	if err := ValidateInput(m); err == nil {
		t.Fatal("NaN input accepted")
	}
	for _, method := range Methods() {
		if _, err := Decompose(m, method, Options{}); err == nil {
			t.Fatalf("%v: decomposed NaN input", method)
		}
	}
}

func TestValidateInputRejectsInf(t *testing.T) {
	m := imatrix.New(2, 2)
	m.Set(1, 1, interval.Interval{Lo: 0, Hi: math.Inf(1)})
	if err := ValidateInput(m); err == nil {
		t.Fatal("Inf input accepted")
	}
}

func TestValidateInputRejectsMisordered(t *testing.T) {
	m := imatrix.New(2, 2)
	m.Lo.Set(0, 1, 5)
	m.Hi.Set(0, 1, 2)
	if err := ValidateInput(m); err == nil {
		t.Fatal("misordered input accepted")
	}
	// After repair it is accepted.
	m.AverageReplace()
	if err := ValidateInput(m); err != nil {
		t.Fatal(err)
	}
}

func TestValidateInputAcceptsScalar(t *testing.T) {
	if err := ValidateInput(imatrix.FromScalar(matrix.Identity(3))); err != nil {
		t.Fatal(err)
	}
}

// Decomposition determinism: the whole pipeline is deterministic given
// identical input (no hidden randomness in any ISVD variant).
func TestDecomposeDeterministic(t *testing.T) {
	m := defaultInterval(t, 77)
	for _, method := range Methods() {
		d1, err := Decompose(m, method, Options{Rank: 6, Target: TargetB})
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Decompose(m, method, Options{Rank: 6, Target: TargetB})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(d1.U.Lo, d2.U.Lo, 0) || !matrix.Equal(d1.Sigma.Hi, d2.Sigma.Hi, 0) ||
			!matrix.Equal(d1.V.Lo, d2.V.Lo, 0) {
			t.Fatalf("%v: non-deterministic output", method)
		}
	}
}

// A matrix of all-identical rows is exactly rank 1: a rank-1 option-b
// decomposition must reconstruct it nearly perfectly.
func TestRankOneStructure(t *testing.T) {
	m := imatrix.New(8, 5)
	for i := 0; i < 8; i++ {
		for j := 0; j < 5; j++ {
			v := float64(j + 1)
			m.Set(i, j, interval.New(v, v+0.2))
		}
	}
	for _, method := range []Method{ISVD1, ISVD2, ISVD3, ISVD4} {
		d, err := Decompose(m, method, Options{Rank: 1, Target: TargetB})
		if err != nil {
			t.Fatal(err)
		}
		if h := d.Evaluate(m).HMean; h < 0.97 {
			t.Errorf("%v: rank-1 structure H-mean = %.4f", method, h)
		}
	}
}

// Scaling invariance: scaling the input by a positive constant scales
// the singular values and leaves the H-mean unchanged.
func TestScaleInvariance(t *testing.T) {
	m := defaultInterval(t, 13)
	scaled := imatrix.FromEndpoints(m.Lo.Scale(100), m.Hi.Scale(100))
	d1, err := Decompose(m, ISVD4, Options{Rank: 5, Target: TargetB})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decompose(scaled, ISVD4, Options{Rank: 5, Target: TargetB})
	if err != nil {
		t.Fatal(err)
	}
	h1 := d1.Evaluate(m).HMean
	h2 := d2.Evaluate(scaled).HMean
	if math.Abs(h1-h2) > 1e-6 {
		t.Fatalf("H-mean not scale invariant: %.6f vs %.6f", h1, h2)
	}
	for j := 0; j < 5; j++ {
		ratio := d2.Sigma.Lo.At(j, j) / d1.Sigma.Lo.At(j, j)
		if math.Abs(ratio-100) > 1e-6*100 {
			t.Fatalf("σ[%d] ratio = %g, want 100", j, ratio)
		}
	}
}

// Tall and wide orientations of the same data must give the same
// accuracy (the decomposition is transpose-symmetric up to U/V swap).
func TestTransposeSymmetryOfAccuracy(t *testing.T) {
	m := defaultInterval(t, 21)
	mt := m.T()
	for _, method := range []Method{ISVD0, ISVD1} {
		d1, err := Decompose(m, method, Options{Rank: 8, Target: TargetB})
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Decompose(mt, method, Options{Rank: 8, Target: TargetB})
		if err != nil {
			t.Fatal(err)
		}
		h1 := d1.Evaluate(m).HMean
		h2 := d2.Evaluate(mt).HMean
		if math.Abs(h1-h2) > 0.02 {
			t.Errorf("%v: transpose changed H-mean %.4f -> %.4f", method, h1, h2)
		}
	}
}
