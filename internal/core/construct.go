package core

import (
	"repro/internal/imatrix"
	"repro/internal/matrix"
)

// construct assembles the final U†, Σ†, V† matrices from the aligned
// endpoint parts according to the decomposition target (Section 3.4 and
// the "Renormalization" / "Restoring Intervals" rows of Figure 4).
//
//ivmf:deterministic
func construct(d *Decomposition, p parts) {
	switch d.Target {
	case TargetA:
		constructA(d, p)
	case TargetB:
		constructB(d, p)
	case TargetC:
		constructC(d, p)
	default:
		panic("core: construct: unknown target")
	}
}

// AssembleDecomposition builds a Decomposition from endpoint factor
// matrices and singular-value diagonals that were produced outside the
// ISVD pipelines (e.g. by the LP competitor in internal/lp), applying the
// same target-specific construction rules of Section 3.4.
//
//ivmf:deterministic
func AssembleDecomposition(method Method, target Target, u, v *imatrix.IMatrix, sLo, sHi []float64) *Decomposition {
	d := &Decomposition{Method: method, Target: target, Rank: len(sLo)}
	construct(d, parts{U: u, V: v, SLo: sLo, SHi: sHi})
	return d
}

// constructA keeps everything interval-valued (Section 3.4.1): endpoint
// pairs become intervals, and misordered pairs are replaced by their
// average.
//
//ivmf:deterministic
func constructA(d *Decomposition, p parts) {
	u := p.U.Clone()
	v := p.V.Clone()
	u.AverageReplace()
	v.AverageReplace()
	sigma := imatrix.DiagFromEndpoints(p.SLo, p.SHi)
	sigma.AverageReplace()
	d.U, d.V, d.Sigma = u, v, sigma
}

// renormalizedFactors averages the endpoint factors and renormalizes
// their columns to unit length, returning the scalar factors and the
// per-column rescale coefficients ρ_j = colNormU[j] · colNormV[j]
// (Section 3.4.2 / Supplementary Algorithm 5).
//
//ivmf:deterministic
func renormalizedFactors(p parts) (uAvg, vAvg *matrix.Dense, rho []float64) {
	uAvg = p.U.Mid()
	vAvg = p.V.Mid()
	normU := uAvg.NormalizeColumns()
	normV := vAvg.NormalizeColumns()
	rho = make([]float64, len(normU))
	for j := range rho {
		rho[j] = normU[j] * normV[j]
	}
	return uAvg, vAvg, rho
}

// constructB produces scalar factors and an interval core (Section
// 3.4.2): U and V are the renormalized averaged factors and the core
// endpoints are rescaled by ρ_j to absorb the renormalization.
//
//ivmf:deterministic
func constructB(d *Decomposition, p parts) {
	uAvg, vAvg, rho := renormalizedFactors(p)
	sLo := make([]float64, len(p.SLo))
	sHi := make([]float64, len(p.SHi))
	for j := range sLo {
		sLo[j] = rho[j] * p.SLo[j]
		sHi[j] = rho[j] * p.SHi[j]
	}
	sigma := imatrix.DiagFromEndpoints(sLo, sHi)
	sigma.AverageReplace()
	d.U = imatrix.FromScalar(uAvg)
	d.V = imatrix.FromScalar(vAvg)
	d.Sigma = sigma
}

// constructC produces scalar factors and a scalar core (Section 3.4.3):
// like TargetB but with each core interval replaced by its mean.
//
//ivmf:deterministic
func constructC(d *Decomposition, p parts) {
	uAvg, vAvg, rho := renormalizedFactors(p)
	s := make([]float64, len(p.SLo))
	for j := range s {
		s[j] = rho[j] * (p.SLo[j] + p.SHi[j]) / 2
	}
	d.U = imatrix.FromScalar(uAvg)
	d.V = imatrix.FromScalar(vAvg)
	d.Sigma = imatrix.DiagFromValues(s)
}
