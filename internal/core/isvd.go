package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/align"
	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// parts is the shared intermediate state of ISVD1-4 right before the
// target-specific construction step: endpoint factor matrices (possibly
// min-max misordered, which is legitimate at this stage per
// Section 4.2.1) and the two singular-value diagonals.
type parts struct {
	U, V     *imatrix.IMatrix
	SLo, SHi []float64
}

// DecomposeISVD0 implements the naive average-and-decompose strategy
// (Section 4.1): plain SVD of the interval midpoint matrix. The result is
// scalar-valued and therefore only compatible with TargetC semantics, but
// it is returned under whatever target was requested, with degenerate
// intervals.
func DecomposeISVD0(m *imatrix.IMatrix, opts Options) (*Decomposition, error) {
	opts = opts.withDefaults(m)
	var tm Timings
	t0 := time.Now()
	avg := m.Mid()
	tm.Preprocess = time.Since(t0)

	t0 = time.Now()
	res, err := eig.SVD(avg)
	if err != nil {
		return nil, fmt.Errorf("core: ISVD0: %w", err)
	}
	res = res.Truncate(opts.Rank)
	tm.Decompose = time.Since(t0)

	t0 = time.Now()
	d := &Decomposition{
		Method:       ISVD0,
		Target:       opts.Target,
		Rank:         opts.Rank,
		ExactAlgebra: opts.ExactAlgebra,
		U:            imatrix.FromScalar(res.U),
		Sigma:        imatrix.DiagFromValues(res.S),
		V:            imatrix.FromScalar(res.V),
	}
	tm.Construct = time.Since(t0)
	d.Timings = tm
	return d, nil
}

// DecomposeISVD1 implements decompose-and-align (Section 4.2): the
// endpoint matrices M* and M^* are SVD-decomposed independently, then the
// maximum-side factors are permuted and sign-flipped by ILSA to align
// with the minimum side.
func DecomposeISVD1(m *imatrix.IMatrix, opts Options) (*Decomposition, error) {
	opts = opts.withDefaults(m)
	var tm Timings

	// The two endpoint SVDs are independent; run them concurrently on the
	// shared pool, bounded by opts.Workers when set.
	t0 := time.Now()
	var svdLo, svdHi *eig.SVDResult
	var errLo, errHi error
	parallel.DoWith(opts.Workers,
		func() { svdLo, errLo = eig.SVD(m.Lo) },
		func() { svdHi, errHi = eig.SVD(m.Hi) },
	)
	if errLo != nil {
		return nil, fmt.Errorf("core: ISVD1: min side: %w", errLo)
	}
	if errHi != nil {
		return nil, fmt.Errorf("core: ISVD1: max side: %w", errHi)
	}
	svdLo = svdLo.Truncate(opts.Rank)
	svdHi = svdHi.Truncate(opts.Rank)
	tm.Decompose = time.Since(t0)

	d := &Decomposition{Method: ISVD1, Target: opts.Target, Rank: opts.Rank, ExactAlgebra: opts.ExactAlgebra}

	t0 = time.Now()
	uHi := svdHi.U.Clone()
	vHi := svdHi.V.Clone()
	d.CosVUnaligned = align.ColumnCosines(svdLo.V, vHi)
	res := align.ILSA(svdLo.V, vHi, opts.Assign)
	res.Apply(uHi, vHi, nil)
	sHi := res.ApplyToDiag(svdHi.S)
	d.CosVAligned = res.Cos
	tm.Align = time.Since(t0)

	p := parts{
		U:   imatrix.FromEndpoints(svdLo.U.Clone(), uHi),
		V:   imatrix.FromEndpoints(svdLo.V.Clone(), vHi),
		SLo: append([]float64(nil), svdLo.S...),
		SHi: sHi,
	}
	t0 = time.Now()
	construct(d, p)
	tm.Construct = time.Since(t0)
	d.Timings = tm
	return d, nil
}

// gramEig computes the truncated eigen-decomposition of both endpoint
// Gram matrices A† = M†ᵀ × M† (interval matrix multiplication), returning
// per-side right singular vectors and singular values (sqrt of clamped
// eigenvalues).
func gramEig(m *imatrix.IMatrix, opts Options) (vLo, vHi *matrix.Dense, sLo, sHi []float64, pre, dec time.Duration, err error) {
	rank := opts.Rank
	t0 := time.Now()
	var a *imatrix.IMatrix
	if opts.ExactAlgebra {
		a = imatrix.Mul(m.T(), m)
	} else {
		// Fused endpoint Gram kernel: no transposed endpoint copies, no
		// four dense temporaries — bitwise identical to
		// imatrix.MulEndpoints(m.T(), m).
		a = imatrix.GramEndpoints(m)
	}
	pre = time.Since(t0)

	// The two endpoint eigen-decompositions are independent; run them
	// concurrently on the shared pool, bounded by opts.Workers when set
	// (they dominate the decomposition cost, Figure 6b).
	t0 = time.Now()
	var valsLo, valsHi []float64
	var vecsLo, vecsHi *matrix.Dense
	var errLo, errHi error
	parallel.DoWith(opts.Workers,
		func() { valsLo, vecsLo, errLo = eig.SymEig(a.Lo) },
		func() { valsHi, vecsHi, errHi = eig.SymEig(a.Hi) },
	)
	if errLo != nil {
		return nil, nil, nil, nil, 0, 0, fmt.Errorf("eig of A*: %w", errLo)
	}
	if errHi != nil {
		return nil, nil, nil, nil, 0, 0, fmt.Errorf("eig of A^*: %w", errHi)
	}
	dec = time.Since(t0)

	vLo = vecsLo.SubMatrix(0, vecsLo.Rows, 0, rank)
	vHi = vecsHi.SubMatrix(0, vecsHi.Rows, 0, rank)
	sLo = sqrtClamped(valsLo[:rank])
	sHi = sqrtClamped(valsHi[:rank])
	return vLo, vHi, sLo, sHi, pre, dec, nil
}

func sqrtClamped(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		if v > 0 {
			out[i] = math.Sqrt(v)
		}
	}
	return out
}

// recoverU computes U = M · V · diag(1/s) for one endpoint side. For the
// orthonormal V returned by the symmetric eigensolver this equals the
// paper's U = M·(Vᵀ)⁻¹·Σ⁻¹ (the pseudo-inverse of the transpose of an
// orthonormal-column matrix is the matrix itself). Zero singular values
// yield zero columns.
func recoverU(m, v *matrix.Dense, s []float64) *matrix.Dense {
	mv := matrix.Mul(m, v)
	for j, sv := range s {
		invS := 0.0
		if sv != 0 {
			invS = 1 / sv
		}
		for i := 0; i < mv.Rows; i++ {
			mv.Set(i, j, mv.At(i, j)*invS)
		}
	}
	return mv
}

// DecomposeISVD2 implements decompose-solve-align (Section 4.3): the
// interval Gram matrix is eigen-decomposed per side, the left factors are
// recovered per side from the SVD identity, and only then are the latent
// spaces aligned.
func DecomposeISVD2(m *imatrix.IMatrix, opts Options) (*Decomposition, error) {
	opts = opts.withDefaults(m)
	var tm Timings

	vLo, vHi, sLo, sHi, pre, dec, err := gramEig(m, opts)
	if err != nil {
		return nil, fmt.Errorf("core: ISVD2: %w", err)
	}
	tm.Preprocess, tm.Decompose = pre, dec

	t0 := time.Now()
	uLo := recoverU(m.Lo, vLo, sLo)
	uHi := recoverU(m.Hi, vHi, sHi)
	tm.Solve = time.Since(t0)

	d := &Decomposition{Method: ISVD2, Target: opts.Target, Rank: opts.Rank, ExactAlgebra: opts.ExactAlgebra}

	t0 = time.Now()
	d.CosVUnaligned = align.ColumnCosines(vLo, vHi)
	res := align.ILSA(vLo, vHi, opts.Assign)
	res.Apply(uHi, vHi, nil)
	sHi = res.ApplyToDiag(sHi)
	d.CosVAligned = res.Cos
	d.CosURecovered = align.ColumnCosines(uLo, uHi)
	tm.Align = time.Since(t0)

	p := parts{
		U:   imatrix.FromEndpoints(uLo, uHi),
		V:   imatrix.FromEndpoints(vLo, vHi),
		SLo: sLo,
		SHi: sHi,
	}
	t0 = time.Now()
	construct(d, p)
	tm.Construct = time.Since(t0)
	d.Timings = tm
	return d, nil
}

// invertAveraged inverts the midpoint of an interval factor matrix,
// falling back to the Moore-Penrose pseudo-inverse when the matrix is
// rectangular or ill-conditioned (Section 4.4.2.2).
func invertAveraged(avg *matrix.Dense, opts Options) (*matrix.Dense, error) {
	if avg.Rows == avg.Cols && eig.Cond2(avg) <= opts.CondThreshold {
		inv, err := matrix.Inverse(avg)
		if err == nil {
			return inv, nil
		}
		// Singular despite the condition estimate: fall through to pinv.
	}
	return eig.PInv(avg, opts.PinvCutoff)
}

// isvd34Common runs the shared ISVD3/ISVD4 pipeline through the solve
// step: interval Gram eigen-decomposition, early ILSA, and interval
// recovery of U† = M† × ((V†)ᵀ)⁻¹ × (Σ†)⁻¹.
func isvd34Common(m *imatrix.IMatrix, opts Options, d *Decomposition, tm *Timings) (p parts, sigmaInv *matrix.Dense, err error) {
	vLo, vHi, sLo, sHi, pre, dec, err := gramEig(m, opts)
	if err != nil {
		return parts{}, nil, err
	}
	tm.Preprocess, tm.Decompose = pre, dec

	t0 := time.Now()
	d.CosVUnaligned = align.ColumnCosines(vLo, vHi)
	res := align.ILSA(vLo, vHi, opts.Assign)
	res.Apply(nil, vHi, nil)
	sHi = res.ApplyToDiag(sHi)
	d.CosVAligned = res.Cos
	tm.Align = time.Since(t0)

	t0 = time.Now()
	v := imatrix.FromEndpoints(vLo, vHi)
	vInv, err := invertAveraged(v.Mid(), opts) // r×m
	if err != nil {
		return parts{}, nil, fmt.Errorf("inverting V: %w", err)
	}
	sigma := imatrix.DiagFromEndpoints(sLo, sHi)
	sigmaInv = imatrix.InverseDiag(sigma) // r×r scalar (Algorithm 4)
	// U† = M† × ((V†)ᵀ)⁻¹ × (Σ†)⁻¹ with scalar right operand.
	right := matrix.Mul(vInv.T(), sigmaInv)
	var u *imatrix.IMatrix
	if opts.ExactAlgebra {
		u = imatrix.MulScalarRight(m, right)
	} else {
		u = imatrix.MulEndpointsScalarRight(m, right)
	}
	d.CosURecovered = align.ColumnCosines(u.Lo, u.Hi)
	tm.Solve = time.Since(t0)

	return parts{U: u, V: v, SLo: sLo, SHi: sHi}, sigmaInv, nil
}

// DecomposeISVD3 implements decompose-align-solve (Section 4.4).
func DecomposeISVD3(m *imatrix.IMatrix, opts Options) (*Decomposition, error) {
	opts = opts.withDefaults(m)
	d := &Decomposition{Method: ISVD3, Target: opts.Target, Rank: opts.Rank, ExactAlgebra: opts.ExactAlgebra}
	var tm Timings
	p, _, err := isvd34Common(m, opts, d, &tm)
	if err != nil {
		return nil, fmt.Errorf("core: ISVD3: %w", err)
	}
	t0 := time.Now()
	construct(d, p)
	tm.Construct = time.Since(t0)
	d.Timings = tm
	return d, nil
}

// DecomposeISVD4 implements decompose-align-solve-recompute
// (Section 4.5): after recovering U† as in ISVD3, the right factor is
// recomputed as V† = [(Σ†)⁻¹ × (U†)⁻¹ × M†]ᵀ, which tightens the V
// intervals by propagating the alignment benefits of the U side.
func DecomposeISVD4(m *imatrix.IMatrix, opts Options) (*Decomposition, error) {
	opts = opts.withDefaults(m)
	d := &Decomposition{Method: ISVD4, Target: opts.Target, Rank: opts.Rank, ExactAlgebra: opts.ExactAlgebra}
	var tm Timings
	p, sigmaInv, err := isvd34Common(m, opts, d, &tm)
	if err != nil {
		return nil, fmt.Errorf("core: ISVD4: %w", err)
	}

	t0 := time.Now()
	uInv, err := invertAveraged(p.U.Mid(), opts) // r×n
	if err != nil {
		return nil, fmt.Errorf("core: ISVD4: inverting U: %w", err)
	}
	left := matrix.Mul(sigmaInv, uInv)
	var vT *imatrix.IMatrix // r×m
	if opts.ExactAlgebra {
		vT = imatrix.MulScalarLeft(left, m)
	} else {
		vT = imatrix.MulEndpointsScalarLeft(left, m)
	}
	p.V = vT.T()
	d.CosVRecomputed = align.ColumnCosines(p.V.Lo, p.V.Hi)
	tm.Solve += time.Since(t0)

	t0 = time.Now()
	construct(d, p)
	tm.Construct = time.Since(t0)
	d.Timings = tm
	return d, nil
}
