package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/align"
	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// parts is the shared intermediate state of ISVD1-4 right before the
// target-specific construction step: endpoint factor matrices (possibly
// min-max misordered, which is legitimate at this stage per
// Section 4.2.1) and the two singular-value diagonals.
type parts struct {
	U, V     *imatrix.IMatrix
	SLo, SHi []float64
}

// operand abstracts the input storage of the ISVD pipelines — dense
// (imatrix.IMatrix) or sparse CSR (sparse.ICSR, see sparse.go) — behind
// the handful of products the algorithms apply to the input matrix
// itself. Everything downstream of these calls operates on n×r / m×r
// factor matrices, so one pipeline serves both storages; the sparse
// implementation keeps every operation O(NNZ)-shaped and never
// materializes a dense Gram matrix on the truncated path.
type operand interface {
	rows() int
	cols() int
	// svdMid decomposes the interval midpoint matrix at opts.Rank under
	// the routed solver (ISVD0).
	svdMid(opts Options) (res *eig.SVDResult, pre, dec time.Duration, err error)
	// svdEndpoints decomposes both endpoint matrices concurrently at
	// opts.Rank under the routed solver (ISVD1). The results are fully
	// owned by the caller (no aliasing of solver internals).
	svdEndpoints(opts Options) (lo, hi *eig.SVDResult, err error)
	// gramEig eigen-decomposes both endpoint Gram matrices A† = M†ᵀ×M†
	// under the routed solver (ISVD2-4).
	gramEig(opts Options) (vLo, vHi *matrix.Dense, sLo, sHi []float64, pre, dec time.Duration, err error)
	// mulEndpointsRight returns the interval product M† × s for a scalar
	// right operand, with the algebra selected by opts.ExactAlgebra.
	mulEndpointsRight(s *matrix.Dense, opts Options) *imatrix.IMatrix
	// mulEndpointsLeft returns s × M† for a scalar left operand.
	mulEndpointsLeft(s *matrix.Dense, opts Options) *imatrix.IMatrix
	// applyLo / applyHi return M_side · v (ISVD2 U recovery).
	applyLo(v *matrix.Dense) *matrix.Dense
	applyHi(v *matrix.Dense) *matrix.Dense
	// toICSR returns the input as sparse interval storage — the
	// authoritative matrix copy the incremental-update engine retains
	// (Options.Updatable, update.go).
	toICSR() *sparse.ICSR
}

// denseOperand is the dense-storage operand; its methods reproduce the
// pre-abstraction pipeline kernel for kernel.
type denseOperand struct{ m *imatrix.IMatrix }

func (o denseOperand) rows() int { return o.m.Rows() }
func (o denseOperand) cols() int { return o.m.Cols() }

func (o denseOperand) svdMid(opts Options) (*eig.SVDResult, time.Duration, time.Duration, error) {
	t0 := time.Now()
	avg := o.m.Mid()
	pre := time.Since(t0)
	t0 = time.Now()
	res, err := solverSVD(avg, opts.Rank, opts.Solver)
	return res, pre, time.Since(t0), err
}

func (o denseOperand) svdEndpoints(opts Options) (lo, hi *eig.SVDResult, err error) {
	// The two endpoint SVDs are independent; run them concurrently on the
	// shared pool, bounded by opts.Workers when set.
	var errLo, errHi error
	parallel.DoWith(opts.Workers,
		func() { lo, errLo = solverSVD(o.m.Lo, opts.Rank, opts.Solver) },
		func() { hi, errHi = solverSVD(o.m.Hi, opts.Rank, opts.Solver) },
	)
	if errLo != nil {
		return nil, nil, fmt.Errorf("min side: %w", errLo)
	}
	if errHi != nil {
		return nil, nil, fmt.Errorf("max side: %w", errHi)
	}
	return lo, hi, nil
}

func (o denseOperand) gramEig(opts Options) (*matrix.Dense, *matrix.Dense, []float64, []float64, time.Duration, time.Duration, error) {
	return gramEig(o.m, opts)
}

func (o denseOperand) mulEndpointsRight(s *matrix.Dense, opts Options) *imatrix.IMatrix {
	if opts.ExactAlgebra {
		return imatrix.MulScalarRight(o.m, s)
	}
	return imatrix.MulEndpointsScalarRight(o.m, s)
}

func (o denseOperand) mulEndpointsLeft(s *matrix.Dense, opts Options) *imatrix.IMatrix {
	if opts.ExactAlgebra {
		return imatrix.MulScalarLeft(s, o.m)
	}
	return imatrix.MulEndpointsScalarLeft(s, o.m)
}

func (o denseOperand) applyLo(v *matrix.Dense) *matrix.Dense { return matrix.Mul(o.m.Lo, v) }
func (o denseOperand) applyHi(v *matrix.Dense) *matrix.Dense { return matrix.Mul(o.m.Hi, v) }
func (o denseOperand) toICSR() *sparse.ICSR                  { return sparse.FromIMatrix(o.m) }

// solverSVD runs one endpoint SVD under the routed solver, truncated to
// rank (eig.SVDWith: truncated subspace solver when the routing selects
// it, full decomposition otherwise or on non-convergence fallback).
func solverSVD(a *matrix.Dense, rank int, solver eig.Solver) (*eig.SVDResult, error) {
	return eig.SVDWith(a, rank, solver)
}

// truncatedGramPair runs the truncated symmetric eigensolver on the two
// endpoint Gram operators concurrently (bounded by workers) and converts
// eigenvalues to singular values. A non-convergence on either side fails
// the pair as a whole so both endpoints stay on the same solver.
func truncatedGramPair(opLo, opHi eig.SymOp, rank, workers int) (vLo, vHi *matrix.Dense, sLo, sHi []float64, err error) {
	var valsLo, valsHi []float64
	var errLo, errHi error
	parallel.DoWith(workers,
		func() { valsLo, vLo, errLo = eig.TruncatedSymEig(opLo, rank) },
		func() { valsHi, vHi, errHi = eig.TruncatedSymEig(opHi, rank) },
	)
	if errLo != nil {
		return nil, nil, nil, nil, errLo
	}
	if errHi != nil {
		return nil, nil, nil, nil, errHi
	}
	return vLo, vHi, sqrtClamped(valsLo), sqrtClamped(valsHi), nil
}

// nonNegativeDense reports whether every element of d is >= 0.
func nonNegativeDense(d *matrix.Dense) bool {
	for _, v := range d.Data {
		if v < 0 {
			return false
		}
	}
	return true
}

// DecomposeISVD0 implements the naive average-and-decompose strategy
// (Section 4.1): plain SVD of the interval midpoint matrix. The result is
// scalar-valued and therefore only compatible with TargetC semantics, but
// it is returned under whatever target was requested, with degenerate
// intervals.
func DecomposeISVD0(m *imatrix.IMatrix, opts Options) (*Decomposition, error) {
	if err := validateUpdatable(ISVD0, opts, func() bool { return nonNegativeDense(m.Lo) }); err != nil {
		return nil, err
	}
	return decomposeISVD0(denseOperand{m}, opts.withDefaults(m))
}

func decomposeISVD0(op operand, opts Options) (*Decomposition, error) {
	var tm Timings
	res, pre, dec, err := op.svdMid(opts)
	if err != nil {
		return nil, fmt.Errorf("core: ISVD0: %w", err)
	}
	tm.Preprocess, tm.Decompose = pre, dec

	t0 := time.Now()
	d := &Decomposition{
		Method:       ISVD0,
		Target:       opts.Target,
		Rank:         opts.Rank,
		ExactAlgebra: opts.ExactAlgebra,
		U:            imatrix.FromScalar(res.U),
		Sigma:        imatrix.DiagFromValues(res.S),
		V:            imatrix.FromScalar(res.V),
	}
	if opts.Updatable {
		captureState(d, op, opts, nil, nil, res)
	}
	tm.Construct = time.Since(t0)
	d.Timings = tm
	return d, nil
}

// DecomposeISVD1 implements decompose-and-align (Section 4.2): the
// endpoint matrices M* and M^* are SVD-decomposed independently, then the
// maximum-side factors are permuted and sign-flipped by ILSA to align
// with the minimum side.
func DecomposeISVD1(m *imatrix.IMatrix, opts Options) (*Decomposition, error) {
	if err := validateUpdatable(ISVD1, opts, func() bool { return nonNegativeDense(m.Lo) }); err != nil {
		return nil, err
	}
	return decomposeISVD1(denseOperand{m}, opts.withDefaults(m))
}

func decomposeISVD1(op operand, opts Options) (*Decomposition, error) {
	var tm Timings
	t0 := time.Now()
	svdLo, svdHi, err := op.svdEndpoints(opts)
	if err != nil {
		return nil, fmt.Errorf("core: ISVD1: %w", err)
	}
	tm.Decompose = time.Since(t0)

	d := &Decomposition{Method: ISVD1, Target: opts.Target, Rank: opts.Rank, ExactAlgebra: opts.ExactAlgebra}
	if opts.Updatable {
		// Captured before ILSA: the update engine maintains true (not
		// yet permuted) endpoint SVDs, and ILSA mutates the hi side next.
		captureState(d, op, opts, svdLo, svdHi, nil)
	}

	// The SVD results are fully owned (Truncate and the truncated solver
	// both return fresh storage), so ILSA may mutate them in place.
	t0 = time.Now()
	uHi := svdHi.U
	vHi := svdHi.V
	d.CosVUnaligned = align.ColumnCosines(svdLo.V, vHi)
	res := align.ILSA(svdLo.V, vHi, opts.Assign)
	res.Apply(uHi, vHi, nil)
	sHi := res.ApplyToDiag(svdHi.S)
	d.CosVAligned = res.Cos
	tm.Align = time.Since(t0)

	p := parts{
		U:   imatrix.FromEndpoints(svdLo.U, uHi),
		V:   imatrix.FromEndpoints(svdLo.V, vHi),
		SLo: svdLo.S,
		SHi: sHi,
	}
	t0 = time.Now()
	construct(d, p)
	tm.Construct = time.Since(t0)
	d.Timings = tm
	return d, nil
}

// gramEig computes the truncated eigen-decomposition of both endpoint
// Gram matrices A† = M†ᵀ × M† (interval matrix multiplication), returning
// per-side right singular vectors and singular values (sqrt of clamped
// eigenvalues). Solver routing: when Options.Solver selects the truncated
// path and the data is entrywise non-negative (so the Algorithm 1 endpoint
// Gram collapses to [Loᵀ·Lo, Hiᵀ·Hi]), the Gram matrices are never
// materialized — each side runs matrix-free on a Gram operator at
// O(n·m·r) total. Otherwise the interval Gram is built as before and the
// truncated solver (or, for the full path and on non-convergence
// fallback, the full SymEig) runs on its endpoints.
func gramEig(m *imatrix.IMatrix, opts Options) (vLo, vHi *matrix.Dense, sLo, sHi []float64, pre, dec time.Duration, err error) {
	matrixFree := func() (eig.SymOp, eig.SymOp) {
		if opts.ExactAlgebra || !nonNegativeDense(m.Lo) {
			return nil, nil
		}
		return eig.NewGramOp(eig.NewDenseOp(m.Lo)), eig.NewGramOp(eig.NewDenseOp(m.Hi))
	}
	materialize := func() *imatrix.IMatrix {
		if opts.ExactAlgebra {
			return imatrix.Mul(m.T(), m)
		}
		// Fused endpoint Gram kernel: no transposed endpoint copies, no
		// four dense temporaries — bitwise identical to
		// imatrix.MulEndpoints(m.T(), m).
		return imatrix.GramEndpoints(m)
	}
	return gramEigRouted(opts, m.Cols(), matrixFree, materialize)
}

// gramEigRouted is the solver-routing pipeline shared by the dense and
// sparse operands' gramEig: an optional matrix-free truncated attempt on
// the endpoint Gram operators (matrixFree returns nils when the data
// does not qualify — mixed signs, where the min/max-combined Gram is not
// [LoᵀLo, HiᵀHi], or exact algebra), then the materialized interval Gram
// under the routed solver. After a matrix-free non-convergence the
// materialized attempt skips straight to the full solver: for qualifying
// data its endpoints are exactly the operators that just failed, so a
// truncated retry would only burn a second iteration budget on the same
// spectrum. On the materialized mixed-sign path SymEigWith's signed-top
// certificate guards indefiniteness, falling back to the full solver
// whenever the negative spectrum would make truncation unsound.
func gramEigRouted(opts Options, n int, matrixFree func() (eig.SymOp, eig.SymOp), materialize func() *imatrix.IMatrix) (vLo, vHi *matrix.Dense, sLo, sHi []float64, pre, dec time.Duration, err error) {
	rank := opts.Rank
	useTrunc := opts.Solver.UseTruncated(rank, n)

	if useTrunc {
		if opLo, opHi := matrixFree(); opLo != nil {
			t0 := time.Now()
			vLo, vHi, sLo, sHi, err = truncatedGramPair(opLo, opHi, rank, opts.Workers)
			if err == nil {
				return vLo, vHi, sLo, sHi, 0, time.Since(t0), nil
			}
			if err != eig.ErrNoConvergence {
				return nil, nil, nil, nil, 0, 0, fmt.Errorf("truncated eig of A†: %w", err)
			}
			useTrunc = false
		}
	}

	t0 := time.Now()
	a := materialize()
	pre = time.Since(t0)

	solver := opts.Solver
	if !useTrunc {
		solver = eig.SolverFull
	}
	// The two endpoint eigen-decompositions are independent; run them
	// concurrently on the shared pool, bounded by opts.Workers when set
	// (they dominate the decomposition cost, Figure 6b).
	t0 = time.Now()
	var valsLo, valsHi []float64
	var vecsLo, vecsHi *matrix.Dense
	var errLo, errHi error
	parallel.DoWith(opts.Workers,
		func() { valsLo, vecsLo, errLo = eig.SymEigWith(a.Lo, rank, solver) },
		func() { valsHi, vecsHi, errHi = eig.SymEigWith(a.Hi, rank, solver) },
	)
	if errLo != nil {
		return nil, nil, nil, nil, 0, 0, fmt.Errorf("eig of A*: %w", errLo)
	}
	if errHi != nil {
		return nil, nil, nil, nil, 0, 0, fmt.Errorf("eig of A^*: %w", errHi)
	}
	dec = time.Since(t0)

	sLo = sqrtClamped(valsLo)
	sHi = sqrtClamped(valsHi)
	return vecsLo, vecsHi, sLo, sHi, pre, dec, nil
}

func sqrtClamped(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		if v > 0 {
			out[i] = math.Sqrt(v)
		}
	}
	return out
}

// recoverUFrom turns mv = M · V into U = M · V · diag(1/s) for one
// endpoint side, scaling mv's columns in place. For the orthonormal V
// returned by the symmetric eigensolver this equals the paper's
// U = M·(Vᵀ)⁻¹·Σ⁻¹ (the pseudo-inverse of the transpose of an
// orthonormal-column matrix is the matrix itself). Zero singular values
// yield zero columns.
func recoverUFrom(mv *matrix.Dense, s []float64) *matrix.Dense {
	for j, sv := range s {
		invS := 0.0
		if sv != 0 {
			invS = 1 / sv
		}
		for i := 0; i < mv.Rows; i++ {
			mv.Set(i, j, mv.At(i, j)*invS)
		}
	}
	return mv
}

// DecomposeISVD2 implements decompose-solve-align (Section 4.3): the
// interval Gram matrix is eigen-decomposed per side, the left factors are
// recovered per side from the SVD identity, and only then are the latent
// spaces aligned.
func DecomposeISVD2(m *imatrix.IMatrix, opts Options) (*Decomposition, error) {
	if err := validateUpdatable(ISVD2, opts, func() bool { return nonNegativeDense(m.Lo) }); err != nil {
		return nil, err
	}
	return decomposeISVD2(denseOperand{m}, opts.withDefaults(m))
}

func decomposeISVD2(op operand, opts Options) (*Decomposition, error) {
	var tm Timings

	vLo, vHi, sLo, sHi, pre, dec, err := op.gramEig(opts)
	if err != nil {
		return nil, fmt.Errorf("core: ISVD2: %w", err)
	}
	tm.Preprocess, tm.Decompose = pre, dec

	t0 := time.Now()
	uLo := recoverUFrom(op.applyLo(vLo), sLo)
	uHi := recoverUFrom(op.applyHi(vHi), sHi)
	tm.Solve = time.Since(t0)

	d := &Decomposition{Method: ISVD2, Target: opts.Target, Rank: opts.Rank, ExactAlgebra: opts.ExactAlgebra}
	if opts.Updatable {
		// uLo/uHi are the endpoint SVDs' left factors (M·V·Σ⁻¹), so the
		// pre-align triples are exactly the per-side factor states.
		captureState(d, op, opts,
			&eig.SVDResult{U: uLo, S: sLo, V: vLo},
			&eig.SVDResult{U: uHi, S: sHi, V: vHi}, nil)
	}

	t0 = time.Now()
	d.CosVUnaligned = align.ColumnCosines(vLo, vHi)
	res := align.ILSA(vLo, vHi, opts.Assign)
	res.Apply(uHi, vHi, nil)
	sHi = res.ApplyToDiag(sHi)
	d.CosVAligned = res.Cos
	d.CosURecovered = align.ColumnCosines(uLo, uHi)
	tm.Align = time.Since(t0)

	p := parts{
		U:   imatrix.FromEndpoints(uLo, uHi),
		V:   imatrix.FromEndpoints(vLo, vHi),
		SLo: sLo,
		SHi: sHi,
	}
	t0 = time.Now()
	construct(d, p)
	tm.Construct = time.Since(t0)
	d.Timings = tm
	return d, nil
}

// invertAveraged inverts the midpoint of an interval factor matrix,
// falling back to the Moore-Penrose pseudo-inverse when the matrix is
// rectangular or ill-conditioned (Section 4.4.2.2). The pseudo-inverse
// runs under the routed solver, bounded at opts.Rank triplets on the
// truncated path (the inverted factors have rank at most opts.Rank by
// construction).
func invertAveraged(avg *matrix.Dense, opts Options) (*matrix.Dense, error) {
	if avg.Rows == avg.Cols && eig.Cond2(avg) <= opts.CondThreshold {
		inv, err := matrix.Inverse(avg)
		if err == nil {
			return inv, nil
		}
		// Singular despite the condition estimate: fall through to pinv.
	}
	return eig.PInvWith(avg, opts.PinvCutoff, opts.Solver, opts.Rank)
}

// isvd34Common runs the shared ISVD3/ISVD4 pipeline through the solve
// step: interval Gram eigen-decomposition, early ILSA, and interval
// recovery of U† = M† × ((V†)ᵀ)⁻¹ × (Σ†)⁻¹.
func isvd34Common(op operand, opts Options, d *Decomposition, tm *Timings) (p parts, sigmaInv *matrix.Dense, err error) {
	vLo, vHi, sLo, sHi, pre, dec, err := op.gramEig(opts)
	if err != nil {
		return parts{}, nil, err
	}
	tm.Preprocess, tm.Decompose = pre, dec

	if opts.Updatable {
		// ISVD3/4 never form the per-side left factors; recover them here
		// (one endpoint product per side) so the update engine holds full
		// endpoint SVD triples. Captured before ILSA mutates the hi side.
		uLo := recoverUFrom(op.applyLo(vLo), sLo)
		uHi := recoverUFrom(op.applyHi(vHi), sHi)
		captureState(d, op, opts,
			&eig.SVDResult{U: uLo, S: sLo, V: vLo},
			&eig.SVDResult{U: uHi, S: sHi, V: vHi}, nil)
	}

	t0 := time.Now()
	d.CosVUnaligned = align.ColumnCosines(vLo, vHi)
	res := align.ILSA(vLo, vHi, opts.Assign)
	res.Apply(nil, vHi, nil)
	sHi = res.ApplyToDiag(sHi)
	d.CosVAligned = res.Cos
	tm.Align = time.Since(t0)

	t0 = time.Now()
	v := imatrix.FromEndpoints(vLo, vHi)
	vInv, err := invertAveraged(v.Mid(), opts) // r×m
	if err != nil {
		return parts{}, nil, fmt.Errorf("inverting V: %w", err)
	}
	sigma := imatrix.DiagFromEndpoints(sLo, sHi)
	sigmaInv = imatrix.InverseDiag(sigma) // r×r scalar (Algorithm 4)
	// U† = M† × ((V†)ᵀ)⁻¹ × (Σ†)⁻¹ with scalar right operand.
	right := matrix.Mul(vInv.T(), sigmaInv)
	u := op.mulEndpointsRight(right, opts)
	d.CosURecovered = align.ColumnCosines(u.Lo, u.Hi)
	tm.Solve = time.Since(t0)

	return parts{U: u, V: v, SLo: sLo, SHi: sHi}, sigmaInv, nil
}

// DecomposeISVD3 implements decompose-align-solve (Section 4.4).
func DecomposeISVD3(m *imatrix.IMatrix, opts Options) (*Decomposition, error) {
	if err := validateUpdatable(ISVD3, opts, func() bool { return nonNegativeDense(m.Lo) }); err != nil {
		return nil, err
	}
	return decomposeISVD3(denseOperand{m}, opts.withDefaults(m))
}

func decomposeISVD3(op operand, opts Options) (*Decomposition, error) {
	d := &Decomposition{Method: ISVD3, Target: opts.Target, Rank: opts.Rank, ExactAlgebra: opts.ExactAlgebra}
	var tm Timings
	p, _, err := isvd34Common(op, opts, d, &tm)
	if err != nil {
		return nil, fmt.Errorf("core: ISVD3: %w", err)
	}
	t0 := time.Now()
	construct(d, p)
	tm.Construct = time.Since(t0)
	d.Timings = tm
	return d, nil
}

// DecomposeISVD4 implements decompose-align-solve-recompute
// (Section 4.5): after recovering U† as in ISVD3, the right factor is
// recomputed as V† = [(Σ†)⁻¹ × (U†)⁻¹ × M†]ᵀ, which tightens the V
// intervals by propagating the alignment benefits of the U side.
func DecomposeISVD4(m *imatrix.IMatrix, opts Options) (*Decomposition, error) {
	if err := validateUpdatable(ISVD4, opts, func() bool { return nonNegativeDense(m.Lo) }); err != nil {
		return nil, err
	}
	return decomposeISVD4(denseOperand{m}, opts.withDefaults(m))
}

func decomposeISVD4(op operand, opts Options) (*Decomposition, error) {
	d := &Decomposition{Method: ISVD4, Target: opts.Target, Rank: opts.Rank, ExactAlgebra: opts.ExactAlgebra}
	var tm Timings
	p, sigmaInv, err := isvd34Common(op, opts, d, &tm)
	if err != nil {
		return nil, fmt.Errorf("core: ISVD4: %w", err)
	}

	t0 := time.Now()
	uInv, err := invertAveraged(p.U.Mid(), opts) // r×n
	if err != nil {
		return nil, fmt.Errorf("core: ISVD4: inverting U: %w", err)
	}
	left := matrix.Mul(sigmaInv, uInv)
	vT := op.mulEndpointsLeft(left, opts) // r×m
	p.V = vT.T()
	d.CosVRecomputed = align.ColumnCosines(p.V.Lo, p.V.Hi)
	tm.Solve += time.Since(t0)

	t0 = time.Now()
	construct(d, p)
	tm.Construct = time.Since(t0)
	d.Timings = tm
	return d, nil
}
