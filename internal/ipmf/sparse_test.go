package ipmf

// Dense-vs-sparse training equivalence: the CSR entry points must produce
// bitwise-identical models to the dense ones for the same seed, because
// CSR compression preserves the row-major observation order and the cells
// carry the exact stored values.

import (
	"math/rand"
	"testing"

	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

func sparseScalarFixture(rng *rand.Rand, rows, cols int, density float64) *matrix.Dense {
	m := matrix.New(rows, cols)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = float64(rng.Intn(5) + 1)
		}
	}
	return m
}

func sparseIntervalFixture(rng *rand.Rand, rows, cols int, density float64) *imatrix.IMatrix {
	m := imatrix.New(rows, cols)
	for i := range m.Lo.Data {
		if rng.Float64() < density {
			v := float64(rng.Intn(5) + 1)
			m.Lo.Data[i] = v - rng.Float64()
			m.Hi.Data[i] = v + rng.Float64()
		}
	}
	return m
}

func equalDense(t *testing.T, label string, a, b *matrix.Dense) {
	t.Helper()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: element %d differs bitwise: %v vs %v", label, i, a.Data[i], b.Data[i])
		}
	}
}

func TestTrainPMFCSRBitwiseEqualsDense(t *testing.T) {
	m := sparseScalarFixture(rand.New(rand.NewSource(21)), 40, 55, 0.05)
	cfg := Config{Rank: 5, Epochs: 6, LearningRate: 0.01}
	dense, err := TrainPMF(m, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := TrainPMFCSR(sparse.FromDense(m), cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	equalDense(t, "U", dense.U, sp.U)
	equalDense(t, "V", dense.V, sp.V)
}

func TestTrainIntervalCSRBitwiseEqualsDense(t *testing.T) {
	m := sparseIntervalFixture(rand.New(rand.NewSource(22)), 35, 48, 0.05)
	cfg := Config{Rank: 5, Epochs: 6, LearningRate: 0.01}
	csr := sparse.FromIMatrix(m)

	for _, tc := range []struct {
		name   string
		dense  func() (*IntervalModel, error)
		sparse func() (*IntervalModel, error)
	}{
		{"IPMF",
			func() (*IntervalModel, error) { return TrainIPMF(m, cfg, rand.New(rand.NewSource(8))) },
			func() (*IntervalModel, error) { return TrainIPMFCSR(csr, cfg, rand.New(rand.NewSource(8))) }},
		{"AIPMF",
			func() (*IntervalModel, error) { return TrainAIPMF(m, cfg, rand.New(rand.NewSource(8))) },
			func() (*IntervalModel, error) { return TrainAIPMFCSR(csr, cfg, rand.New(rand.NewSource(8))) }},
	} {
		d, err := tc.dense()
		if err != nil {
			t.Fatal(err)
		}
		s, err := tc.sparse()
		if err != nil {
			t.Fatal(err)
		}
		equalDense(t, tc.name+".U", d.U, s.U)
		equalDense(t, tc.name+".VLo", d.VLo, s.VLo)
		equalDense(t, tc.name+".VHi", d.VHi, s.VHi)
	}
}

// TestStoredZerosAreUnobserved pins the zero-cell contract on sparse
// storage: an explicitly stored zero entry (legal in a hand-built CSR)
// must not train as an observed rating of 0 — the model must match
// training on the same matrix with the zero entries absent.
func TestStoredZerosAreUnobserved(t *testing.T) {
	withZero, err := sparse.FromICOO(4, 4, []sparse.ITriplet{
		{Row: 0, Col: 1, Lo: 2, Hi: 3},
		{Row: 1, Col: 0, Lo: 0, Hi: 0}, // stored but unobserved
		{Row: 2, Col: 3, Lo: 4, Hi: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	without, err := sparse.FromICOO(4, 4, []sparse.ITriplet{
		{Row: 0, Col: 1, Lo: 2, Hi: 3},
		{Row: 2, Col: 3, Lo: 4, Hi: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rank: 2, Epochs: 5, LearningRate: 0.01}
	a, err := TrainAIPMFCSR(withZero, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainAIPMFCSR(without, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	equalDense(t, "U", a.U, b.U)
	equalDense(t, "VLo", a.VLo, b.VLo)
	equalDense(t, "VHi", a.VHi, b.VHi)

	scalarWithZero, err := sparse.NewCSR(2, 2, []int{0, 2, 2}, []int{0, 1}, []float64{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if obs := observedCSR(scalarWithZero); len(obs) != 1 || obs[0] != (cell{i: 0, j: 0, lo: 3}) {
		t.Fatalf("stored zero treated as observation: %v", obs)
	}
}

// TestObservedOrderMatchesCSRStructure pins that the observation list is
// exactly the CSR row scan — the property the run scheduler and the
// bitwise dense/sparse equivalence both rest on.
func TestObservedOrderMatchesCSRStructure(t *testing.T) {
	m := sparseScalarFixture(rand.New(rand.NewSource(23)), 12, 18, 0.2)
	obs := observedScalar(m)
	csr := sparse.FromDense(m)
	if len(obs) != csr.NNZ() {
		t.Fatalf("len(obs) = %d, NNZ = %d", len(obs), csr.NNZ())
	}
	k := 0
	csr.ForEachRow(func(i int, cols []int, vals []float64) {
		for p, j := range cols {
			c := obs[k]
			if c.i != i || c.j != j || c.lo != vals[p] {
				t.Fatalf("obs[%d] = %+v, want (%d, %d, %g)", k, c, i, j, vals[p])
			}
			k++
		}
	})
}
