package ipmf

// Pins the bitwise-determinism contract of the run-scheduled SGD's
// *sharded* path. At realistic dataset shapes conflict-free runs are far
// shorter than the production grain, so the top-level determinism tests
// only reach the inline path; here the grain is shrunk to 1 so every
// multi-cell run actually splits across pool workers.

import (
	"math/rand"
	"testing"

	"repro/internal/imatrix"
	"repro/internal/parallel"
)

func TestRunShardedSGDBitwise(t *testing.T) {
	oldGrain := sgdGrain
	sgdGrain = func(int) int { return 1 }
	defer func() { sgdGrain = oldGrain }()

	rng := rand.New(rand.NewSource(3))
	m := imatrix.New(60, 90)
	for i := range m.Lo.Data {
		v := rng.Float64()*4 + 1
		m.Lo.Data[i] = v
		m.Hi.Data[i] = v + rng.Float64()
	}
	cfg := Config{Rank: 6, Epochs: 8, LearningRate: 0.01}

	train := func(workers int) *IntervalModel {
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(0)
		model, err := TrainAIPMF(m, cfg, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		return model
	}
	serial := train(1)
	for _, w := range []int{2, 8} {
		par := train(w)
		for _, pair := range []struct {
			name string
			a, b []float64
		}{
			{"U", serial.U.Data, par.U.Data},
			{"VLo", serial.VLo.Data, par.VLo.Data},
			{"VHi", serial.VHi.Data, par.VHi.Data},
		} {
			for i := range pair.a {
				if pair.a[i] != pair.b[i] {
					t.Fatalf("workers=%d: %s[%d] differs bitwise: %v vs %v", w, pair.name, i, pair.a[i], pair.b[i])
				}
			}
		}
	}
}
