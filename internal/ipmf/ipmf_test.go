package ipmf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/matrix"
)

// lowRankScalar builds a noiseless rank-k rating-like matrix with a
// sparse observation mask.
func lowRankScalar(rng *rand.Rand, n, m, k int, density float64) *matrix.Dense {
	p := matrix.New(n, k)
	q := matrix.New(m, k)
	for i := range p.Data {
		p.Data[i] = rng.NormFloat64()
	}
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	full := matrix.MulT(p, q)
	out := matrix.New(n, m)
	for i := range full.Data {
		if rng.Float64() < density {
			out.Data[i] = full.Data[i] + 3 // shift away from 0 so cells count as observed
		}
	}
	return out
}

func TestPMFFitsLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := lowRankScalar(rng, 30, 25, 3, 0.6)
	model, err := TrainPMF(m, Config{Rank: 5, Epochs: 150, LearningRate: 0.01}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Training error on observed cells should be small.
	var se, n float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != 0 {
				d := model.Predict(i, j) - m.At(i, j)
				se += d * d
				n++
			}
		}
	}
	rmse := math.Sqrt(se / n)
	if rmse > 0.25 {
		t.Fatalf("PMF training RMSE = %.3f, want < 0.25", rmse)
	}
}

func TestPMFValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := matrix.New(4, 4)
	if _, err := TrainPMF(m, Config{Rank: 0}, rng); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

func intervalLowRank(rng *rand.Rand, n, m, k int, density, halfSpan float64) *imatrix.IMatrix {
	base := lowRankScalar(rng, n, m, k, density)
	out := imatrix.New(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if v := base.At(i, j); v != 0 {
				out.Set(i, j, interval.New(v-halfSpan, v+halfSpan))
			}
		}
	}
	return out
}

func TestIPMFFitsIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := intervalLowRank(rng, 30, 25, 3, 0.6, 0.3)
	model, err := TrainIPMF(m, Config{Rank: 5, Epochs: 150, LearningRate: 0.01}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var se, n float64
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			iv := m.At(i, j)
			if iv.Lo == 0 && iv.Hi == 0 {
				continue
			}
			d := model.Predict(i, j) - iv.Mid()
			se += d * d
			n++
		}
	}
	rmse := math.Sqrt(se / n)
	if rmse > 0.3 {
		t.Fatalf("I-PMF midpoint RMSE = %.3f", rmse)
	}
}

func TestAIPMFNotWorseThanIPMF(t *testing.T) {
	// The paper's core claim for Section 5: alignment does not hurt, and
	// with interval data it helps. Compare held-out midpoint RMSE.
	rng := rand.New(rand.NewSource(4))
	m := intervalLowRank(rng, 40, 30, 3, 0.5, 0.4)
	// Hold out 20% of observed cells.
	type c struct{ i, j int }
	var obs []c
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			iv := m.At(i, j)
			if iv.Lo != 0 || iv.Hi != 0 {
				obs = append(obs, c{i, j})
			}
		}
	}
	rng.Shuffle(len(obs), func(a, b int) { obs[a], obs[b] = obs[b], obs[a] })
	cut := len(obs) / 5
	held := obs[:cut]
	train := m.Clone()
	for _, cc := range held {
		train.Set(cc.i, cc.j, interval.Scalar(0))
	}
	cfg := Config{Rank: 5, Epochs: 120, LearningRate: 0.01}
	evalModel := func(model *IntervalModel) float64 {
		var se float64
		for _, cc := range held {
			d := model.Predict(cc.i, cc.j) - m.At(cc.i, cc.j).Mid()
			se += d * d
		}
		return math.Sqrt(se / float64(len(held)))
	}
	ipmf, err := TrainIPMF(train, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	aipmf, err := TrainAIPMF(train, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ri, ra := evalModel(ipmf), evalModel(aipmf)
	if ra > ri*1.15 {
		t.Fatalf("AI-PMF RMSE %.4f clearly worse than I-PMF %.4f", ra, ri)
	}
}

func TestPredictInterval(t *testing.T) {
	model := &IntervalModel{
		U:   matrix.FromRows([][]float64{{1, 2}}),
		VLo: matrix.FromRows([][]float64{{1, 0}}),
		VHi: matrix.FromRows([][]float64{{2, 1}}),
	}
	lo, hi := model.PredictInterval(0, 0)
	if lo != 1 || hi != 4 {
		t.Fatalf("PredictInterval = [%g, %g], want [1, 4]", lo, hi)
	}
	if mid := model.Predict(0, 0); mid != 2.5 {
		t.Fatalf("Predict = %g, want 2.5", mid)
	}
	// Swapped endpoints are reordered.
	model.VLo, model.VHi = model.VHi, model.VLo
	lo, hi = model.PredictInterval(0, 0)
	if lo != 1 || hi != 4 {
		t.Fatalf("swapped PredictInterval = [%g, %g]", lo, hi)
	}
}

func TestObservedMasks(t *testing.T) {
	m := matrix.New(2, 2)
	m.Set(0, 1, 5)
	if got := observedScalar(m); len(got) != 1 || got[0] != (cell{i: 0, j: 1, lo: 5}) {
		t.Fatalf("observedScalar = %v", got)
	}
	im := imatrix.New(2, 2)
	im.Set(1, 0, interval.New(0, 2)) // Lo 0, Hi non-zero → observed
	if got := observedInterval(im); len(got) != 1 || got[0] != (cell{i: 1, j: 0, lo: 0, hi: 2}) {
		t.Fatalf("observedInterval = %v", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (Config{Rank: 3}).withDefaults()
	if c.LearningRate != 0.005 || c.LambdaU != 0.05 || c.Epochs != 60 || c.AlignEvery != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}
