// Package ipmf implements probabilistic matrix factorization for scalar
// and interval-valued matrices: PMF (Salakhutdinov & Mnih, Section 2.2.3
// of the paper), I-PMF (Shen et al., Section 5), and the paper's proposed
// AI-PMF, which adds interval latent semantic alignment (ILSA) to the
// I-PMF gradient-descent loop.
//
// All variants treat zero cells as unobserved (the indicator I_ij of the
// PMF likelihood) and train with stochastic gradient descent over the
// observed cells. The observation list is built from CSR row structure
// (internal/sparse) and carries the observed values, so the epochs never
// scan or index dense storage: the TrainXxxCSR entry points train
// directly on sparse ratings with O(NNZ) memory and per-epoch cost, and
// the dense entry points compress first, producing bitwise-identical
// models.
//
//ivmf:deterministic
package ipmf

import (
	"fmt"
	"math/rand"

	"repro/internal/align"
	"repro/internal/assign"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// Config holds the hyper-parameters shared by PMF, I-PMF, and AI-PMF.
type Config struct {
	// Rank is the latent dimensionality r.
	Rank int
	// LearningRate of the SGD updates (default 0.005).
	LearningRate float64
	// LambdaU and LambdaV are the ridge penalties λ_U and λ_V
	// (default 0.05).
	LambdaU, LambdaV float64
	// Epochs is the number of full passes over the observed cells
	// (default 60).
	Epochs int
	// AlignEvery applies ILSA to (V*, V^*) every k epochs in AI-PMF
	// (default 1, i.e. every epoch). Ignored by PMF and I-PMF.
	AlignEvery int
	// AlignBurnIn is the fraction of epochs to run before the first
	// alignment (default 0.25). Aligning a still-forming latent space
	// permutes essentially random columns and hurts convergence; after
	// burn-in, ILSA only repairs genuinely mismatched or sign-flipped
	// dimensions.
	AlignBurnIn float64
	// Assign selects the ILSA matching algorithm (default Hungarian).
	Assign assign.Method
}

func (c Config) withDefaults() Config {
	if c.LearningRate == 0 {
		c.LearningRate = 0.005
	}
	if c.LambdaU == 0 {
		c.LambdaU = 0.05
	}
	if c.LambdaV == 0 {
		c.LambdaV = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.AlignEvery == 0 {
		c.AlignEvery = 1
	}
	if c.AlignBurnIn == 0 {
		c.AlignBurnIn = 0.25
	}
	return c
}

func (c Config) validate(rank int) error {
	if c.Rank <= 0 {
		return fmt.Errorf("ipmf: non-positive rank %d", c.Rank)
	}
	_ = rank
	return nil
}

// Model is a trained scalar PMF model.
type Model struct {
	U, V *matrix.Dense // n×r and m×r
}

// Predict returns the model's estimate for cell (i, j).
func (m *Model) Predict(i, j int) float64 {
	var s float64
	ui := m.U.RowView(i)
	vj := m.V.RowView(j)
	for t := range ui {
		s += ui[t] * vj[t]
	}
	return s
}

// IntervalModel is a trained interval PMF model (I-PMF or AI-PMF):
// a shared scalar U with interval-valued V† = [V*, V^*].
type IntervalModel struct {
	U        *matrix.Dense
	VLo, VHi *matrix.Dense
}

// Predict returns the midpoint estimate U_i · mid(V†)_j for cell (i, j).
func (m *IntervalModel) Predict(i, j int) float64 {
	var s float64
	ui := m.U.RowView(i)
	lo := m.VLo.RowView(j)
	hi := m.VHi.RowView(j)
	for t := range ui {
		s += ui[t] * (lo[t] + hi[t]) / 2
	}
	return s
}

// PredictInterval returns the interval estimate [U_i·V*_j, U_i·V^*_j]
// (endpoints swapped into order if needed).
func (m *IntervalModel) PredictInterval(i, j int) (lo, hi float64) {
	var a, b float64
	ui := m.U.RowView(i)
	vl := m.VLo.RowView(j)
	vh := m.VHi.RowView(j)
	for t := range ui {
		a += ui[t] * vl[t]
		b += ui[t] * vh[t]
	}
	if a > b {
		a, b = b, a
	}
	return a, b
}

// cell is one observed training entry carrying its value(s), so the SGD
// epochs read the observation list directly — a contiguous, cache-
// friendly scan — instead of indexing back into matrix storage. Scalar
// training uses lo only; interval training uses both endpoints.
type cell struct {
	i, j   int
	lo, hi float64
}

// runScheduler splits a shuffled cell sequence into maximal contiguous
// runs in which no row or column repeats. Cells of one run touch disjoint
// factor rows, so the run's SGD updates are order-independent and can be
// sharded onto the worker pool with bitwise-identical results; executing
// the runs in order visits cells in exactly the shuffled sequence order,
// so training output is byte-for-byte the same as the serial loop for a
// fixed seed and any worker count.
type runScheduler struct {
	rowMark, colMark []int
	stamp            int
}

func newRunScheduler(rows, cols int) *runScheduler {
	return &runScheduler{rowMark: make([]int, rows), colMark: make([]int, cols)}
}

// forEachRun invokes fn on each conflict-free run of obs, in order.
func (s *runScheduler) forEachRun(obs []cell, fn func(run []cell)) {
	start := 0
	s.stamp++
	for idx, c := range obs {
		if s.rowMark[c.i] == s.stamp || s.colMark[c.j] == s.stamp {
			fn(obs[start:idx])
			start = idx
			s.stamp++
		}
		s.rowMark[c.i] = s.stamp
		s.colMark[c.j] = s.stamp
	}
	if start < len(obs) {
		fn(obs[start:])
	}
}

// sgdGrain returns the pool grain for an SGD run whose per-cell cost is
// ~8 flops times rank. Conflict-free runs end after roughly
// sqrt(min(rows, cols)) cells (birthday collision on a row or column), so
// at typical CF dataset shapes every run is far below one chunk and the
// epochs execute inline — the scheduler then buys bounded, deterministic
// ordering rather than speedup; only very wide matrices yield runs long
// enough to shard. It is a variable so tests can shrink the grain to
// exercise the sharded path (see determinism_test.go in this package).
var sgdGrain = func(rank int) int { return parallel.Grain(8 * rank) }

// observedScalar lists the non-zero cells of a dense scalar matrix in
// row-major order — the same sequence observedCSR produces for the
// compressed matrix, so dense and sparse training see identical
// observation lists (pinned by TestTrainPMFCSRBitwiseEqualsDense).
func observedScalar(m *matrix.Dense) []cell {
	var out []cell
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.RowView(i) {
			if v != 0 {
				out = append(out, cell{i: i, j: j, lo: v})
			}
		}
	}
	return out
}

// observedCSR lists a sparse scalar matrix's stored cells in CSR row
// order. Explicitly stored zeros are skipped: zero means unobserved (the
// indicator I_ij) regardless of storage, so a hand-built CSR with zero
// entries trains identically to its dense expansion.
func observedCSR(m *sparse.CSR) []cell {
	out := make([]cell, 0, m.NNZ())
	m.ForEachRow(func(i int, cols []int, vals []float64) {
		for p, j := range cols {
			if vals[p] == 0 {
				continue
			}
			out = append(out, cell{i: i, j: j, lo: vals[p]})
		}
	})
	return out
}

// observedInterval lists the cells of a dense interval matrix where
// either endpoint is non-zero, in the same row-major order as
// observedICSR on the compressed matrix.
func observedInterval(m *imatrix.IMatrix) []cell {
	var out []cell
	for i := 0; i < m.Rows(); i++ {
		lo := m.Lo.RowView(i)
		hi := m.Hi.RowView(i)
		for j := range lo {
			if lo[j] != 0 || hi[j] != 0 {
				out = append(out, cell{i: i, j: j, lo: lo[j], hi: hi[j]})
			}
		}
	}
	return out
}

// observedICSR lists a sparse interval matrix's stored cells in CSR row
// order, skipping entries where both endpoints are zero (unobserved,
// matching the observedInterval predicate on dense storage).
func observedICSR(m *sparse.ICSR) []cell {
	out := make([]cell, 0, m.NNZ())
	m.ForEachRow(func(i int, cols []int, lo, hi []float64) {
		for p, j := range cols {
			if lo[p] == 0 && hi[p] == 0 {
				continue
			}
			out = append(out, cell{i: i, j: j, lo: lo[p], hi: hi[p]})
		}
	})
	return out
}

func randFactor(rows, cols int, rng *rand.Rand) *matrix.Dense {
	m := matrix.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * 0.1
	}
	return m
}

// TrainPMF fits the scalar PMF baseline on the non-zero cells of m.
func TrainPMF(m *matrix.Dense, cfg Config, rng *rand.Rand) (*Model, error) {
	return trainScalar(m.Rows, m.Cols, observedScalar(m), cfg, rng)
}

// TrainPMFCSR fits the scalar PMF baseline on a sparse ratings matrix.
// For a CSR compressed from a dense matrix the result is bitwise
// identical to TrainPMF on that matrix: the observation sequence, the
// shuffles, and every floating-point update coincide.
func TrainPMFCSR(m *sparse.CSR, cfg Config, rng *rand.Rand) (*Model, error) {
	return trainScalar(m.Rows, m.Cols, observedCSR(m), cfg, rng)
}

// trainScalar is the shared scalar SGD loop: the epochs iterate the
// observation list (built from CSR row structure) and never touch matrix
// storage, so the cost per epoch scales with NNZ, not rows·cols.
func trainScalar(rows, cols int, obs []cell, cfg Config, rng *rand.Rand) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(cfg.Rank); err != nil {
		return nil, err
	}
	r := cfg.Rank
	u := randFactor(rows, r, rng)
	v := randFactor(cols, r, rng)
	lr := cfg.LearningRate
	sched := newRunScheduler(rows, cols)
	grain := sgdGrain(r)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(obs), func(a, b int) { obs[a], obs[b] = obs[b], obs[a] })
		sched.forEachRun(obs, func(run []cell) {
			parallel.For(len(run), grain, func(lo, hi int) {
				for _, c := range run[lo:hi] {
					ui := u.RowView(c.i)
					vj := v.RowView(c.j)
					var pred float64
					for t := 0; t < r; t++ {
						pred += ui[t] * vj[t]
					}
					e := pred - c.lo
					for t := 0; t < r; t++ {
						gu := e*vj[t] + cfg.LambdaU*ui[t]
						gv := e*ui[t] + cfg.LambdaV*vj[t]
						ui[t] -= lr * gu
						vj[t] -= lr * gv
					}
				}
			})
		})
	}
	return &Model{U: u, V: v}, nil
}

// trainInterval is the shared I-PMF/AI-PMF loop (Section 5; Supplementary
// Algorithm 15). When alignEvery > 0 the V† sides are re-aligned by ILSA,
// making it AI-PMF. Like trainScalar, the epochs iterate the observation
// list directly; matrix storage is only read once to build it.
func trainInterval(rows, cols int, obs []cell, cfg Config, rng *rand.Rand, alignEach bool) (*IntervalModel, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(cfg.Rank); err != nil {
		return nil, err
	}
	r := cfg.Rank
	u := randFactor(rows, r, rng)
	vLo := randFactor(cols, r, rng)
	vHi := randFactor(cols, r, rng)
	lr := cfg.LearningRate
	sched := newRunScheduler(rows, cols)
	grain := sgdGrain(r)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(obs), func(a, b int) { obs[a], obs[b] = obs[b], obs[a] })
		sched.forEachRun(obs, func(run []cell) {
			parallel.For(len(run), grain, func(rlo, rhi int) {
				for _, c := range run[rlo:rhi] {
					ui := u.RowView(c.i)
					lo := vLo.RowView(c.j)
					hi := vHi.RowView(c.j)
					var pLo, pHi float64
					for t := 0; t < r; t++ {
						pLo += ui[t] * lo[t]
						pHi += ui[t] * hi[t]
					}
					eLo := pLo - c.lo
					eHi := pHi - c.hi
					for t := 0; t < r; t++ {
						gu := eLo*lo[t] + eHi*hi[t] + cfg.LambdaU*ui[t]
						gLo := eLo*ui[t] + cfg.LambdaV*lo[t]
						gHi := eHi*ui[t] + cfg.LambdaV*hi[t]
						ui[t] -= lr * gu
						lo[t] -= lr * gLo
						hi[t] -= lr * gHi
					}
				}
			})
		})
		// AI-PMF: re-align the V sides between epochs ("in each gradient
		// descent iteration", Section 5). The alignment permutes/flips V*
		// columns to match V^*; subsequent epochs let U co-adapt, pulling
		// the two sides toward a shared latent space. No alignment runs
		// after the final epoch, so the returned factors are always
		// SGD-consistent with U.
		burnIn := int(cfg.AlignBurnIn * float64(cfg.Epochs))
		if alignEach && epoch >= burnIn && epoch < cfg.Epochs-1 && (epoch+1)%cfg.AlignEvery == 0 {
			realign(vLo, vHi, cfg.Assign)
		}
	}
	return &IntervalModel{U: u, VLo: vLo, VHi: vHi}, nil
}

// realign applies ILSA between the V sides: the minimum-side columns are
// permuted and sign-flipped to match the maximum side (Algorithm 15 lines
// 19-26 permute V*; here the matched Vlo column replaces column j). The
// alignment is applied only when it strictly improves the summed |cos|
// over the current identity pairing, so a converged, already-aligned
// model is never perturbed.
func realign(vLo, vHi *matrix.Dense, method assign.Method) {
	res := align.ILSA(vHi, vLo, method) // align vLo's columns to vHi's
	var matched, identity float64
	idCos := align.ColumnCosines(vHi, vLo)
	for j := range res.Cos {
		matched += res.Cos[j]
		identity += idCos[j]
	}
	if matched > identity+1e-9 {
		res.Apply(nil, vLo, nil)
	}
}

// TrainIPMF fits I-PMF (no alignment).
func TrainIPMF(m *imatrix.IMatrix, cfg Config, rng *rand.Rand) (*IntervalModel, error) {
	return trainInterval(m.Rows(), m.Cols(), observedInterval(m), cfg, rng, false)
}

// TrainAIPMF fits the paper's aligned interval PMF.
func TrainAIPMF(m *imatrix.IMatrix, cfg Config, rng *rand.Rand) (*IntervalModel, error) {
	return trainInterval(m.Rows(), m.Cols(), observedInterval(m), cfg, rng, true)
}

// TrainIPMFCSR fits I-PMF on sparse interval ratings. For an ICSR
// compressed from a dense interval matrix the result is bitwise identical
// to TrainIPMF on that matrix.
func TrainIPMFCSR(m *sparse.ICSR, cfg Config, rng *rand.Rand) (*IntervalModel, error) {
	return trainInterval(m.Rows, m.Cols, observedICSR(m), cfg, rng, false)
}

// TrainAIPMFCSR fits AI-PMF on sparse interval ratings, bitwise identical
// to TrainAIPMF on the dense expansion.
func TrainAIPMFCSR(m *sparse.ICSR, cfg Config, rng *rand.Rand) (*IntervalModel, error) {
	return trainInterval(m.Rows, m.Cols, observedICSR(m), cfg, rng, true)
}
