package service

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/service/sched"
)

func TestDecodeRequestValid(t *testing.T) {
	jr, err := decodeRequest([]byte(
		`{"tenant":"ml-1","kind":"decompose","coo":"2,2\n0,0,1\n1,1,2..3\n"}`), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if jr.kind != sched.Decompose || jr.tenant != "ml-1" {
		t.Fatalf("decoded %+v", jr)
	}
	if jr.method != core.ISVD4 {
		t.Errorf("default method = %v, want ISVD4", jr.method)
	}
	if jr.base == nil || jr.base.NNZ() != 2 || jr.base.Rows != 2 || jr.base.Cols != 2 {
		t.Errorf("base payload parsed wrong: %+v", jr.base)
	}

	jr, err = decodeRequest([]byte(
		`{"tenant":"ml-1","kind":"update","refresh":"always","workers":2,"delta":"4,3\n0,1,4\n3,2,1..2\n"}`), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if jr.kind != sched.Update || len(jr.patch) != 2 {
		t.Fatalf("decoded %+v", jr)
	}
	if jr.patchRows != 4 || jr.patchCols != 3 {
		t.Errorf("delta header = %dx%d, want 4x3", jr.patchRows, jr.patchCols)
	}
	if jr.refresh != core.RefreshAlways || jr.workers != 2 {
		t.Errorf("knobs: refresh=%v workers=%d", jr.refresh, jr.workers)
	}
	p := jr.patch[0]
	if p.Row != 0 || p.Col != 1 || p.Lo != 4 || p.Hi != 4 {
		t.Errorf("patch[0] = %+v", p)
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"bad json", `{`, "bad request envelope"},
		{"unknown field", `{"tenant":"t","kind":"decompose","bogus":1}`, "bad request envelope"},
		{"trailing data", `{"tenant":"t","kind":"decompose","coo":"1,1\n0,0,1\n"} x`, "trailing data"},
		{"empty tenant", `{"tenant":"","kind":"decompose"}`, "bad tenant"},
		{"tenant with space", `{"tenant":"a b","kind":"decompose"}`, "bad tenant"},
		{"tenant with slash", `{"tenant":"a/b","kind":"decompose"}`, "bad tenant"},
		{"tenant too long", `{"tenant":"` + strings.Repeat("a", 65) + `","kind":"decompose"}`, "bad tenant"},
		{"tenant dot", `{"tenant":".","kind":"decompose","coo":"1,1\n0,0,1\n"}`, "bad tenant"},
		{"tenant dotdot", `{"tenant":"..","kind":"decompose","coo":"1,1\n0,0,1\n"}`, "bad tenant"},
		{"bad kind", `{"tenant":"t","kind":"retrain"}`, "unknown job kind"},
		{"missing kind", `{"tenant":"t"}`, "unknown job kind"},
		{"decompose with delta", `{"tenant":"t","kind":"decompose","coo":"1,1\n0,0,1\n","delta":"1,1\n0,0,1\n"}`, "carries a delta"},
		{"bad method", `{"tenant":"t","kind":"decompose","method":"SVD9","coo":"1,1\n0,0,1\n"}`, "unknown method"},
		{"bad target", `{"tenant":"t","kind":"decompose","target":"z","coo":"1,1\n0,0,1\n"}`, "unknown target"},
		{"bad solver", `{"tenant":"t","kind":"decompose","solver":"magic","coo":"1,1\n0,0,1\n"}`, "solver"},
		{"negative rank", `{"tenant":"t","kind":"decompose","rank":-1,"coo":"1,1\n0,0,1\n"}`, "negative rank"},
		{"negative workers", `{"tenant":"t","kind":"decompose","workers":-2,"coo":"1,1\n0,0,1\n"}`, "negative workers"},
		{"negative refresh budget", `{"tenant":"t","kind":"update","refreshBudget":-1,"delta":"1,1\n0,0,1\n"}`, "refreshBudget"},
		{"bad refresh", `{"tenant":"t","kind":"update","refresh":"sometimes","delta":"1,1\n0,0,1\n"}`, "refresh"},
		{"empty coo", `{"tenant":"t","kind":"decompose","coo":""}`, "decompose payload"},
		{"coo without cells", `{"tenant":"t","kind":"decompose","coo":"2,2\n"}`, "no observed cells"},
		{"coo out of range", `{"tenant":"t","kind":"decompose","coo":"2,2\n5,0,1\n"}`, "decompose payload"},
		{"update with coo", `{"tenant":"t","kind":"update","coo":"1,1\n0,0,1\n","delta":"1,1\n0,0,1\n"}`, "decompose-only"},
		{"update with method", `{"tenant":"t","kind":"update","method":"ISVD2","delta":"1,1\n0,0,1\n"}`, "decompose-only"},
		{"update with rank", `{"tenant":"t","kind":"update","rank":3,"delta":"1,1\n0,0,1\n"}`, "decompose-only"},
		{"empty delta", `{"tenant":"t","kind":"update","delta":"2,2\n"}`, "no cells"},
		{"misordered interval", `{"tenant":"t","kind":"decompose","coo":"1,1\n0,0,5..1\n"}`, "decompose payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeRequest([]byte(tc.body), 1<<16)
			if err == nil {
				t.Fatalf("accepted %s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeRequestSizeLimit(t *testing.T) {
	body := []byte(`{"tenant":"t","kind":"decompose","coo":"1,1\n0,0,1\n"}`)
	if _, err := decodeRequest(body, int64(len(body))); err != nil {
		t.Fatalf("exact-size body rejected: %v", err)
	}
	_, err := decodeRequest(body, int64(len(body))-1)
	if !errors.Is(err, errTooLarge) {
		t.Fatalf("oversized body: err = %v, want errTooLarge", err)
	}
}

func TestValidateRequestNonFinite(t *testing.T) {
	base := Request{Tenant: "t", Kind: "decompose", COO: "1,1\n0,0,1\n"}
	for _, bad := range []Request{
		func() Request { r := base; r.Min = math.NaN(); return r }(),
		func() Request { r := base; r.Max = math.Inf(1); return r }(),
		func() Request { r := base; r.RefreshBudget = math.NaN(); return r }(),
		func() Request { r := base; r.RefreshBudget = math.Inf(1); return r }(),
	} {
		if _, err := validateRequest(&bad); err == nil {
			t.Errorf("accepted non-finite knobs: %+v", bad)
		}
	}
	if _, err := validateRequest(&base); err != nil {
		t.Fatalf("baseline request rejected: %v", err)
	}
}
