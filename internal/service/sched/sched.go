// Package sched is the pure scheduling core of the batched
// decomposition service: given a snapshot of the pending jobs and a
// work budget, Schedule assembles the next execution batch. It is a
// plain function of its inputs — no goroutines, no channels, no clock
// reads (jobs carry their admission stamp; the service injects the
// clock at admission time) — so every batching, priority, fairness,
// and coalescing decision is exhaustively table-testable.
//
// The scheduling contract, in order of precedence:
//
//  1. Per-tenant FIFO: a tenant's jobs execute in admission order, and
//     the scheduler never skips ahead past a job that does not fit —
//     once a tenant's head job is deferred, the tenant contributes
//     nothing more to this batch.
//  2. No starvation: the first unit of every batch is chosen by
//     fairness alone, and if that unit's head job exceeds the whole
//     budget it is scheduled by itself. A job too large to ever share
//     a batch therefore runs as soon as it becomes the oldest pending
//     work, instead of being bypassed forever by smaller jobs.
//  3. Fairness: units are drawn round-robin across tenants — the next
//     unit comes from the tenant with the fewest units already in the
//     batch, ties broken by the oldest pending job (smallest Seq).
//  4. Budget: the batch's total admission-priced cost (NNZ×rank for
//     decompositions, delta-NNZ×rank for updates) stays within the
//     budget, except for the oversized-first-unit rule above. A
//     non-positive budget degenerates to one job per batch.
//  5. Coalescing: a run of consecutive coalescable jobs (cell-patch
//     updates against the same tenant's model) collapses into one
//     unit while the cumulative cost fits, so a burst of small deltas
//     costs one pipeline re-run and one snapshot swap instead of many.
//
//ivmf:deterministic
package sched

import (
	"sort"
	"time"
)

// Kind classifies a job.
type Kind int

const (
	// Decompose builds a tenant's model from a full COO payload.
	Decompose Kind = iota
	// Update folds a delta batch into the tenant's current model.
	Update
)

// String returns "decompose" or "update".
func (k Kind) String() string {
	if k == Update {
		return "update"
	}
	return "decompose"
}

// Job is one admitted unit of work as the scheduler sees it: identity,
// ordering, and admission-priced cost. Payloads stay with the service —
// the scheduler never needs them.
type Job struct {
	// ID is the service-assigned job identifier.
	ID uint64
	// Seq is the global admission sequence number; it totally orders
	// jobs and is the scheduler's only notion of time.
	Seq uint64
	// Tenant names the model the job targets.
	Tenant string
	// Kind is the job class (Decompose or Update).
	Kind Kind
	// Cost is the admission-priced work estimate: NNZ×rank for a
	// decomposition, delta-NNZ×rank for an update, clamped to at
	// least 1 by the service.
	Cost int64
	// Coalescable marks jobs that may merge with adjacent coalescable
	// jobs of the same tenant into one execution unit (cell-patch
	// updates; appends and decompositions are never coalesced).
	Coalescable bool
	// Submitted is the admission stamp from the service's injected
	// clock; the scheduler itself never reads it (Seq orders jobs),
	// but it rides along for latency accounting.
	Submitted time.Time
}

// Unit is one execution slot of a batch: a single job, or a coalesced
// run of cell-patch updates against the same tenant's model.
type Unit struct {
	Tenant string
	// Jobs holds the unit's jobs in admission order; len > 1 only for
	// coalesced patch updates.
	Jobs []Job
	// Cost is the summed cost of Jobs.
	Cost int64
}

// Batch is the scheduler's output: execution units in order, plus the
// total admitted cost.
type Batch struct {
	Units []Unit
	Cost  int64
}

// Jobs returns the batch's job count across all units.
func (b Batch) Jobs() int {
	n := 0
	for _, u := range b.Units {
		n += len(u.Jobs)
	}
	return n
}

// tenantState tracks one tenant's progress during batch assembly.
type tenantState struct {
	jobs    []Job // pending, Seq order
	head    int   // next job index
	taken   int   // units already in the batch
	blocked bool  // head did not fit; FIFO forbids skipping past it
}

// Schedule assembles the next execution batch from the pending jobs
// under the given cost budget, per the package contract. The pending
// slice is not modified; the same inputs always produce the same batch.
func Schedule(pending []Job, budget int64) Batch {
	if len(pending) == 0 {
		return Batch{}
	}
	// Order jobs globally by admission and group per tenant,
	// first-appearance order (deterministic: appearance follows Seq).
	sorted := make([]Job, len(pending))
	copy(sorted, pending)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	index := make(map[string]int)
	states := make([]*tenantState, 0, 4)
	for _, j := range sorted {
		ti, ok := index[j.Tenant]
		if !ok {
			ti = len(states)
			index[j.Tenant] = ti
			states = append(states, &tenantState{})
		}
		states[ti].jobs = append(states[ti].jobs, j)
	}

	var batch Batch
	remaining := budget
	for {
		best := -1
		for ti, st := range states {
			if st.blocked || st.head >= len(st.jobs) {
				continue
			}
			if best == -1 {
				best = ti
				continue
			}
			bs := states[best]
			if st.taken < bs.taken ||
				(st.taken == bs.taken && st.jobs[st.head].Seq < bs.jobs[bs.head].Seq) {
				best = ti
			}
		}
		if best == -1 {
			return batch
		}
		st := states[best]
		head := st.jobs[st.head]
		if head.Cost > remaining {
			if len(batch.Units) == 0 {
				// Oversized first unit: no budget will ever fit it, so
				// it runs alone now that fairness picked it first.
				return Batch{
					Units: []Unit{{Tenant: head.Tenant, Jobs: []Job{head}, Cost: head.Cost}},
					Cost:  head.Cost,
				}
			}
			st.blocked = true
			continue
		}
		unit := Unit{Tenant: head.Tenant, Jobs: []Job{head}, Cost: head.Cost}
		remaining -= head.Cost
		st.head++
		for head.Coalescable && st.head < len(st.jobs) {
			next := st.jobs[st.head]
			if !next.Coalescable || next.Cost > remaining {
				break
			}
			unit.Jobs = append(unit.Jobs, next)
			unit.Cost += next.Cost
			remaining -= next.Cost
			st.head++
		}
		st.taken++
		batch.Units = append(batch.Units, unit)
		batch.Cost += unit.Cost
	}
}
