package sched

import (
	"reflect"
	"testing"
	"time"
)

// j builds a test job; Seq doubles as ID so expected batches read as
// admission order.
func j(seq uint64, tenant string, cost int64) Job {
	return Job{ID: seq, Seq: seq, Tenant: tenant, Cost: cost,
		Submitted: time.Unix(int64(seq), 0)} // injected stamps, no clock reads
}

// patch marks a job coalescable (a cell-patch update).
func patch(seq uint64, tenant string, cost int64) Job {
	job := j(seq, tenant, cost)
	job.Kind = Update
	job.Coalescable = true
	return job
}

// ids flattens a batch into per-unit job ID lists for exact assertions.
func ids(b Batch) [][]uint64 {
	out := make([][]uint64, 0, len(b.Units))
	for _, u := range b.Units {
		unit := make([]uint64, 0, len(u.Jobs))
		for _, job := range u.Jobs {
			unit = append(unit, job.ID)
		}
		out = append(out, unit)
	}
	return out
}

func TestSchedule(t *testing.T) {
	cases := []struct {
		name    string
		pending []Job
		budget  int64
		want    [][]uint64 // exact batch: one ID list per unit, in order
		cost    int64
	}{
		{
			name:    "empty queue",
			pending: nil,
			budget:  100,
			want:    [][]uint64{},
			cost:    0,
		},
		{
			name:    "single job fits",
			pending: []Job{j(1, "a", 40)},
			budget:  100,
			want:    [][]uint64{{1}},
			cost:    40,
		},
		{
			name:    "one oversized job is scheduled alone",
			pending: []Job{j(1, "a", 500)},
			budget:  100,
			want:    [][]uint64{{1}},
			cost:    500,
		},
		{
			name: "oversized first pick excludes everything else",
			// The oversized job is oldest, so fairness picks it first and
			// it takes the whole round even though b's job would fit.
			pending: []Job{j(1, "a", 500), j(2, "b", 10)},
			budget:  100,
			want:    [][]uint64{{1}},
			cost:    500,
		},
		{
			name:    "budget exactly met",
			pending: []Job{j(1, "a", 60), j(2, "a", 40)},
			budget:  100,
			want:    [][]uint64{{1}, {2}},
			cost:    100,
		},
		{
			name:    "budget exceeded by one unit stops before it",
			pending: []Job{j(1, "a", 60), j(2, "a", 41)},
			budget:  100,
			want:    [][]uint64{{1}},
			cost:    60,
		},
		{
			name: "per-tenant FIFO never skips past a deferred head",
			// a's head (70) does not fit after a1; a's cheap third job
			// (cost 5) must NOT jump the queue.
			pending: []Job{j(1, "a", 60), j(2, "a", 70), j(3, "a", 5)},
			budget:  100,
			want:    [][]uint64{{1}},
			cost:    60,
		},
		{
			name: "per-tenant fairness round-robins across tenants",
			pending: []Job{
				j(1, "a", 10), j(2, "b", 10), j(3, "a", 10),
				j(4, "b", 10), j(5, "a", 10), j(6, "b", 10),
			},
			budget: 40,
			want:   [][]uint64{{1}, {2}, {3}, {4}},
			cost:   40,
		},
		{
			name: "fairness ties break by oldest pending job",
			// Both tenants at zero units taken: b's head is older.
			pending: []Job{j(2, "a", 10), j(1, "b", 10)},
			budget:  100,
			want:    [][]uint64{{1}, {2}},
			cost:    20,
		},
		{
			name: "large job behind small ones defers but does not starve (round 1)",
			pending: []Job{
				j(1, "b", 10), j(2, "a", 80),
				j(3, "b", 10), j(4, "b", 10), j(5, "b", 10),
			},
			budget: 40,
			// b1 first (oldest); a's 80 no longer fits and blocks; b
			// fills the rest. The large job waits, it is not bypassed
			// within its own tenant.
			want: [][]uint64{{1}, {3}, {4}, {5}},
			cost: 40,
		},
		{
			name: "large job behind small ones runs next round (round 2)",
			// Round 2 of the case above: the large job is now oldest, so
			// fairness picks it first and it fits a fresh budget.
			pending: []Job{j(2, "a", 80), j(6, "b", 10), j(7, "b", 10)},
			budget:  80,
			want:    [][]uint64{{2}},
			cost:    80,
		},
		{
			name: "delta coalescing merges a patch run into one unit",
			pending: []Job{
				patch(1, "a", 10), patch(2, "a", 10), patch(3, "a", 10),
			},
			budget: 100,
			want:   [][]uint64{{1, 2, 3}},
			cost:   30,
		},
		{
			name: "coalescing stops at a non-coalescable job",
			pending: []Job{
				patch(1, "a", 10), patch(2, "a", 10),
				j(3, "a", 10), patch(4, "a", 10),
			},
			budget: 100,
			// The decompose at seq 3 breaks the run (it rebuilds the
			// model, so the patches around it must not merge across it).
			want: [][]uint64{{1, 2}, {3}, {4}},
			cost: 40,
		},
		{
			name: "coalescing is budget-bounded",
			pending: []Job{
				patch(1, "a", 40), patch(2, "a", 40), patch(3, "a", 40),
			},
			budget: 100,
			want:   [][]uint64{{1, 2}},
			cost:   80,
		},
		{
			name: "coalescing never merges across tenants",
			pending: []Job{
				patch(1, "a", 10), patch(2, "b", 10), patch(3, "a", 10),
			},
			budget: 100,
			// a's run is 1 then 3 (consecutive in a's own queue), b
			// keeps its own unit.
			want: [][]uint64{{1, 3}, {2}},
			cost: 30,
		},
		{
			name: "non-positive budget degenerates to one job per batch",
			pending: []Job{
				j(1, "a", 10), j(2, "b", 10),
			},
			budget: 0,
			want:   [][]uint64{{1}},
			cost:   10,
		},
		{
			name: "unsorted input is ordered by Seq, not slice position",
			pending: []Job{
				j(3, "a", 10), j(1, "b", 10), j(2, "a", 10),
			},
			budget: 100,
			want:   [][]uint64{{1}, {2}, {3}},
			cost:   30,
		},
		{
			name: "three tenants interleave by units taken then age",
			pending: []Job{
				j(1, "a", 10), j(2, "b", 10), j(3, "c", 10),
				j(4, "a", 10), j(5, "c", 10),
			},
			budget: 50,
			want:   [][]uint64{{1}, {2}, {3}, {4}, {5}},
			cost:   50,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := make([]Job, len(tc.pending))
			copy(before, tc.pending)
			got := Schedule(tc.pending, tc.budget)
			if gotIDs := ids(got); !reflect.DeepEqual(gotIDs, tc.want) {
				t.Fatalf("batch units = %v, want %v", gotIDs, tc.want)
			}
			if got.Cost != tc.cost {
				t.Fatalf("batch cost = %d, want %d", got.Cost, tc.cost)
			}
			if len(before) > 0 && !reflect.DeepEqual(tc.pending, before) {
				t.Fatalf("Schedule mutated its input")
			}
			// Unit invariants: cost sums, tenant homogeneity, admission
			// order inside units.
			var total int64
			for _, u := range got.Units {
				var uc int64
				for k, job := range u.Jobs {
					uc += job.Cost
					if job.Tenant != u.Tenant {
						t.Fatalf("unit tenant %q holds job of tenant %q", u.Tenant, job.Tenant)
					}
					if k > 0 && u.Jobs[k-1].Seq >= job.Seq {
						t.Fatalf("unit jobs out of admission order")
					}
				}
				if uc != u.Cost {
					t.Fatalf("unit cost %d, want sum %d", u.Cost, uc)
				}
				total += uc
			}
			if total != got.Cost {
				t.Fatalf("batch cost %d, want sum of units %d", got.Cost, total)
			}
		})
	}
}

// TestScheduleDeterministic pins that repeated calls over the same
// pending snapshot emit the identical batch (the scheduler is a pure
// function: no maps are ranged, no clocks read).
func TestScheduleDeterministic(t *testing.T) {
	pending := []Job{
		patch(5, "c", 7), j(1, "a", 10), patch(4, "c", 7),
		j(2, "b", 12), j(3, "a", 9), patch(6, "c", 7),
	}
	first := Schedule(pending, 30)
	for run := 0; run < 50; run++ {
		if got := Schedule(pending, 30); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: batch differs from first run", run)
		}
	}
}

func TestBatchJobs(t *testing.T) {
	b := Schedule([]Job{patch(1, "a", 1), patch(2, "a", 1), j(3, "b", 1)}, 10)
	if b.Jobs() != 3 {
		t.Fatalf("Jobs() = %d, want 3", b.Jobs())
	}
}

func TestKindString(t *testing.T) {
	if Decompose.String() != "decompose" || Update.String() != "update" {
		t.Fatalf("Kind strings: %q, %q", Decompose.String(), Update.String())
	}
}
