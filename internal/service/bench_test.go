package service

// Service-path benchmarks: job admission-to-completion through the real
// executor, and the serving path through the real HTTP handler. CI runs
// these with -benchtime 1x as a smoke test; cmd/ivmfload measures the
// closed-loop numbers committed in BENCH_service.json.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sparse"
)

func benchService(b *testing.B) (*Service, *sparse.ICSR) {
	const rows, cols = 120, 80
	m := testMatrix(b, 97, rows, cols, 0.15)
	s := New(Config{})
	s.Start()
	b.Cleanup(func() { s.Drain(context.Background()) })
	return s, m
}

func BenchmarkServiceDecompose(b *testing.B) {
	s, m := benchService(b)
	coo := cooText(b, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info := mustSubmit(b, s, Request{Tenant: "bench", Kind: "decompose",
			Rank: 8, Target: "b", Min: 1, Max: 5, COO: coo})
		waitJob(b, s, info.ID)
	}
}

func BenchmarkServiceUpdate(b *testing.B) {
	s, m := benchService(b)
	info := mustSubmit(b, s, Request{Tenant: "bench", Kind: "decompose",
		Rank: 8, Target: "b", Min: 1, Max: 5, COO: cooText(b, m)})
	waitJob(b, s, info.ID)
	patch := []sparse.ITriplet{
		{Row: 3, Col: 4, Lo: 2, Hi: 2.5},
		{Row: 50, Col: 60, Lo: 4, Hi: 4.5},
	}
	delta := deltaText(b, m.Rows, m.Cols, patch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info := mustSubmit(b, s, Request{Tenant: "bench", Kind: "update", Delta: delta})
		waitJob(b, s, info.ID)
	}
}

func BenchmarkServicePredict(b *testing.B) {
	s, m := benchService(b)
	info := mustSubmit(b, s, Request{Tenant: "bench", Kind: "decompose",
		Rank: 8, Target: "b", Min: 1, Max: 5, COO: cooText(b, m)})
	waitJob(b, s, info.ID)
	handler := s.Handler()
	body := `{"tenant":"bench","cells":[[0,0],[1,5],[20,30],[119,79]]}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
		}
	}
}
