package service

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/sparse"
	"repro/internal/store"
)

// persistMatrix is the base model shape shared by the persistence
// tests: small enough to decompose in milliseconds, dense enough that
// rank-3 factors are well-conditioned.
const persistRows, persistCols = 12, 9

func persistService(t *testing.T, fs *store.MemFS, cfg Config) *Service {
	t.Helper()
	cfg.DataDir = "data"
	cfg.StoreFS = fs
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// decomposeTenant runs one decompose job to completion and returns the
// base matrix.
func decomposeTenant(t *testing.T, s *Service, tenant string) *sparse.ICSR {
	t.Helper()
	m := testMatrix(t, 7, persistRows, persistCols, 0.4)
	info := mustSubmit(t, s, Request{
		Tenant: tenant, Kind: "decompose", Rank: 3, Target: "b", Min: 1, Max: 5,
		COO: cooText(t, m),
	})
	waitJob(t, s, info.ID)
	return m
}

// persistPatch builds the k-th deterministic update patch.
func persistPatch(k int) []sparse.ITriplet {
	return []sparse.ITriplet{
		{Row: k % persistRows, Col: (2 * k) % persistCols, Lo: 1.5 + 0.25*float64(k), Hi: 2.0 + 0.25*float64(k)},
		{Row: (k + 5) % persistRows, Col: (k + 3) % persistCols, Lo: 3.0, Hi: 3.5},
	}
}

func submitPatch(t *testing.T, s *Service, tenant string, k int) JobInfo {
	t.Helper()
	return mustSubmit(t, s, Request{
		Tenant: tenant, Kind: "update", Refresh: "never",
		Delta: deltaText(t, persistRows, persistCols, persistPatch(k)),
	})
}

func drain(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// samePredictions pins two snapshots to bitwise-identical served
// intervals over the whole matrix.
func samePredictions(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Version != want.Version || got.JobID != want.JobID {
		t.Fatalf("snapshot identity (version %d, job %d), want (version %d, job %d)",
			got.Version, got.JobID, want.Version, want.JobID)
	}
	for i := 0; i < persistRows; i++ {
		for j := 0; j < persistCols; j++ {
			a, err := want.Pred.PredictInterval(i, j)
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.Pred.PredictInterval(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(a.Lo) != math.Float64bits(b.Lo) || math.Float64bits(a.Hi) != math.Float64bits(b.Hi) {
				t.Fatalf("cell (%d,%d): recovered [%v,%v], want bitwise [%v,%v]", i, j, b.Lo, b.Hi, a.Lo, a.Hi)
			}
		}
	}
}

// TestRestartServesAckedStateBitwise is the durable-ack property end to
// end at the service layer: after every job has been acknowledged, a
// crash (everything not fsynced is lost) and reboot serve exactly the
// acknowledged predictions, and the restarted server resumes version
// and job-ID numbering.
func TestRestartServesAckedStateBitwise(t *testing.T) {
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{})
	s.Start()
	decomposeTenant(t, s, "t")
	var lastJob uint64
	for k := 1; k <= 3; k++ {
		info := submitPatch(t, s, "t", k)
		waitJob(t, s, info.ID)
		lastJob = info.ID
	}
	want := s.Snapshot("t")
	if want == nil || want.Version != 4 {
		t.Fatalf("pre-crash snapshot %+v", want)
	}
	drain(t, s)

	// Losing every unsynced byte must not lose acknowledged state.
	fs.Crash()
	s2 := persistService(t, fs, Config{})
	got := s2.Snapshot("t")
	if got == nil {
		t.Fatal("tenant not recovered")
	}
	samePredictions(t, got, want)
	if got.Pred.Min != 1 || got.Pred.Max != 5 {
		t.Fatalf("rating clamp [%g,%g] not restored", got.Pred.Min, got.Pred.Max)
	}
	if n := s2.metrics.snapshotCounter(mStoreRecovered, label("outcome", "ok")); n != 1 {
		t.Fatalf("recovered outcome=ok counter = %v", n)
	}

	// The rebooted server keeps working: updates admit against the
	// recovered shape, versions continue, and job IDs stay unique.
	s2.Start()
	info := submitPatch(t, s2, "t", 4)
	if info.ID <= lastJob {
		t.Fatalf("restarted job ID %d not above persisted %d", info.ID, lastJob)
	}
	if done := waitJob(t, s2, info.ID); done.Version != 5 {
		t.Fatalf("post-restart update published version %d, want 5", done.Version)
	}
	drain(t, s2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSecondRestartIsStable reboots twice with no writes in between:
// recovery must be idempotent (replay does not mutate durable state
// into something that replays differently).
func TestSecondRestartIsStable(t *testing.T) {
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{})
	s.Start()
	decomposeTenant(t, s, "t")
	info := submitPatch(t, s, "t", 1)
	waitJob(t, s, info.ID)
	drain(t, s)

	fs.Crash()
	s2 := persistService(t, fs, Config{})
	first := s2.Snapshot("t")
	fs.Crash()
	s3 := persistService(t, fs, Config{})
	samePredictions(t, s3.Snapshot("t"), first)
}

// TestPersistFailureFailsJobWithoutPublishing pins persist-before-ack:
// when the store cannot make an update durable, the job fails, no
// snapshot is published, and the tenant keeps serving the previous
// version; the same update resubmitted afterwards succeeds (the store
// repairs its log before reuse).
func TestPersistFailureFailsJobWithoutPublishing(t *testing.T) {
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{PersistRetries: -1}) // no retries
	s.Start()
	defer func() { drain(t, s) }()
	decomposeTenant(t, s, "t")

	fs.FailNext("sync", errors.New("injected EIO"))
	info := submitPatch(t, s, "t", 1)
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := s.Job(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == JobFailed {
			break
		}
		if st.State == JobDone {
			t.Fatal("job acknowledged despite persistence failure")
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not terminate")
		}
		time.Sleep(time.Millisecond)
	}
	if snap := s.Snapshot("t"); snap.Version != 1 {
		t.Fatalf("failed job published version %d", snap.Version)
	}

	retry := submitPatch(t, s, "t", 1)
	if done := waitJob(t, s, retry.ID); done.Version != 2 {
		t.Fatalf("resubmitted update published version %d, want 2", done.Version)
	}
}

// TestTransientPersistFailureIsRetried exercises the bounded
// retry/backoff: a one-shot write failure is absorbed without failing
// the job.
func TestTransientPersistFailureIsRetried(t *testing.T) {
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{PersistBackoff: time.Millisecond})
	s.Start()
	defer func() { drain(t, s) }()
	decomposeTenant(t, s, "t")

	fs.FailNext("sync", errors.New("injected EIO"))
	info := submitPatch(t, s, "t", 1)
	if done := waitJob(t, s, info.ID); done.Version != 2 {
		t.Fatalf("update published version %d, want 2", done.Version)
	}
	if n := s.metrics.snapshotCounter(mStoreRetries, label("op", "delta")); n != 1 {
		t.Fatalf("retry counter = %v, want 1", n)
	}
}

// TestCompactionBoundsTheLog: with CompactEvery=2, four updates must
// fold the log twice, so a reboot replays zero records.
func TestCompactionBoundsTheLog(t *testing.T) {
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{CompactEvery: 2})
	s.Start()
	decomposeTenant(t, s, "t")
	for k := 1; k <= 4; k++ {
		info := submitPatch(t, s, "t", k)
		waitJob(t, s, info.ID)
	}
	drain(t, s)
	// One decompose snapshot plus one compaction per two updates.
	if n := s.metrics.snapshotCounter(mStorePersist, label("op", "snapshot")); n != 3 {
		t.Fatalf("snapshot writes = %v, want 3", n)
	}

	fs.Crash()
	st, err := store.Open("data", store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.Recover("t")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 5 || rec.Replayed != 0 {
		t.Fatalf("recovered seq %d with %d replayed records, want 5 and 0", rec.Seq, rec.Replayed)
	}
}
