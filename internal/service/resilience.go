package service

import "time"

// Resilience state machines: the per-tenant poison-job quarantine and
// the store circuit breaker. Both are plain data guarded by Service.mu
// and advance only on explicit events with an injected clock — no
// goroutines, no timers — so every transition is a pure function of
// (state, event, now) and pins down in table tests. Cooldowns double on
// repeated trips up to a fixed cap, so a persistently failing tenant or
// disk backs off instead of oscillating.

// Resilience defaults.
const (
	// DefaultQuarantineAfter quarantines a tenant after this many
	// consecutive failed execution units; DefaultQuarantineCooldown is
	// the first quarantine period.
	DefaultQuarantineAfter    = 3
	DefaultQuarantineCooldown = 30 * time.Second
	// DefaultBreakerThreshold trips the store circuit breaker after this
	// many consecutive exhausted persist operations;
	// DefaultBreakerCooldown is the first open period.
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 15 * time.Second
	// cooldownGrowthCap bounds the exponential cooldown at cap × base.
	cooldownGrowthCap = 8
)

// growCooldown doubles a cooldown up to cap times its base.
//
//ivmf:deterministic
func growCooldown(cur, base time.Duration) time.Duration {
	next := cur * 2
	if limit := base * cooldownGrowthCap; next > limit {
		next = limit
	}
	return next
}

// breakerState is the circuit breaker's phase, ordered so the metric
// gauge reads 0 = closed, 1 = half-open, 2 = open.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "open"
	}
}

// breaker is the store circuit breaker. Closed counts consecutive
// persist failures; at threshold it opens, failing mutations fast while
// predictions keep serving from snapshots. After the cooldown the next
// execution transitions it half-open: that unit's persist is the probe,
// closing the breaker on success and re-opening it (with a doubled
// cooldown) on failure.
type breaker struct {
	threshold int
	base      time.Duration

	state    breakerState
	failures int
	cooldown time.Duration // next open period
	until    time.Time     // open expiry, valid while state == breakerOpen
}

func newBreaker(threshold int, base time.Duration) *breaker {
	return &breaker{threshold: threshold, base: base, cooldown: base}
}

// onFailure records one exhausted persist operation; it reports whether
// the breaker transitioned to open.
//
//ivmf:deterministic
func (b *breaker) onFailure(now time.Time) bool {
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures < b.threshold {
			return false
		}
	case breakerHalfOpen:
		// The probe failed.
	case breakerOpen:
		// A unit that began before the trip finished failing; extend.
	}
	b.state = breakerOpen
	b.until = now.Add(b.cooldown)
	b.cooldown = growCooldown(b.cooldown, b.base)
	return true
}

// onSuccess records one successful persist; it reports whether the
// breaker transitioned to closed.
//
//ivmf:deterministic
func (b *breaker) onSuccess() bool {
	changed := b.state != breakerClosed
	b.state = breakerClosed
	b.failures = 0
	b.cooldown = b.base
	return changed
}

// allowExec gates one execution unit's persist path. While open and
// unexpired it denies (the unit fails fast); once the cooldown expires
// it transitions half-open and admits the unit as the probe.
//
//ivmf:deterministic
func (b *breaker) allowExec(now time.Time) bool {
	if b.state != breakerOpen {
		return true
	}
	if now.Before(b.until) {
		return false
	}
	b.state = breakerHalfOpen
	return true
}

// allowAdmit gates mutation admission without mutating state: only an
// unexpired open breaker rejects, with the remaining cooldown as the
// retry hint. Half-open admits — queued work behind the probe either
// rides a re-closed breaker or fails fast if the probe fails.
//
//ivmf:deterministic
func (b *breaker) allowAdmit(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.state == breakerOpen && now.Before(b.until) {
		return false, b.until.Sub(now)
	}
	return true, 0
}

// quarantine is the per-tenant poison-job guard. Consecutive failed
// execution units count toward threshold; at threshold the tenant is
// quarantined: admission rejects its submissions while the existing
// snapshot keeps serving. After the cooldown exactly one probe job is
// admitted; its success clears the quarantine, its failure re-trips
// with a doubled cooldown.
type quarantine struct {
	threshold int
	base      time.Duration

	failures int
	active   bool
	probing  bool          // a probe job was admitted and has not finished
	cooldown time.Duration // next quarantine period
	until    time.Time     // quarantine expiry, valid while active
}

func newQuarantine(threshold int, base time.Duration) quarantine {
	return quarantine{threshold: threshold, base: base, cooldown: base}
}

// onFailure records one failed execution unit; it reports whether the
// tenant transitioned into quarantine (including a failed probe
// re-tripping it).
//
//ivmf:deterministic
func (q *quarantine) onFailure(now time.Time) bool {
	q.probing = false
	if !q.active {
		q.failures++
		if q.failures < q.threshold {
			return false
		}
	}
	q.active = true
	q.until = now.Add(q.cooldown)
	q.cooldown = growCooldown(q.cooldown, q.base)
	return true
}

// onSuccess records one successful execution unit; it reports whether
// an active quarantine was cleared.
//
//ivmf:deterministic
func (q *quarantine) onSuccess() bool {
	cleared := q.active
	q.failures = 0
	q.active = false
	q.probing = false
	q.cooldown = q.base
	return cleared
}

// check gates admission without mutating state: an active quarantine
// rejects until its cooldown expires, and keeps rejecting while the
// single probe slot is taken.
//
//ivmf:deterministic
func (q *quarantine) check(now time.Time) (ok bool, retryAfter time.Duration) {
	if !q.active {
		return true, 0
	}
	if now.Before(q.until) {
		return false, q.until.Sub(now)
	}
	if q.probing {
		return false, q.cooldown
	}
	return true, 0
}

// claimProbe marks the job being admitted as the quarantine probe. Call
// it only after every other admission check has passed, so a rejected
// submission can never consume the probe slot.
//
//ivmf:deterministic
func (q *quarantine) claimProbe(now time.Time) bool {
	if !q.active || now.Before(q.until) || q.probing {
		return false
	}
	q.probing = true
	return true
}

// unitDeadline computes a unit's execution deadline: base plus perCost
// per admission cost unit, capped at max. Overflow saturates at max.
//
//ivmf:deterministic
func unitDeadline(base, perCost time.Duration, cost int64, max time.Duration) time.Duration {
	if base <= 0 {
		return 0 // deadlines disabled
	}
	d := base
	if perCost > 0 && cost > 0 {
		extra := time.Duration(cost) * perCost
		if extra/perCost != time.Duration(cost) || extra < 0 {
			return max
		}
		d += extra
		if d < 0 {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}
