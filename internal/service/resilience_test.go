package service

import (
	"sync"
	"testing"
	"time"
)

// Deterministic table tests over the resilience state machines. Both
// machines advance only on explicit events with an injected clock, so
// every transition here is exact — no sleeps, no races.

// fakeClock is a hand-advanced time source for Config.Clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBreakerStateMachine(t *testing.T) {
	t0 := time.Unix(0, 0)
	at := func(d time.Duration) time.Time { return t0.Add(d) }
	b := newBreaker(3, 10*time.Second)

	// Failures below threshold stay closed.
	if b.onFailure(at(0)) || b.onFailure(at(1*time.Second)) {
		t.Fatal("breaker tripped below threshold")
	}
	if ok, _ := b.allowAdmit(at(1 * time.Second)); !ok {
		t.Fatal("closed breaker rejected admission")
	}
	// Third consecutive failure opens.
	if !b.onFailure(at(2 * time.Second)) {
		t.Fatal("breaker did not trip at threshold")
	}
	if b.state != breakerOpen {
		t.Fatalf("state %v, want open", b.state)
	}
	// Open and unexpired: admission rejected with the remaining
	// cooldown, execution denied.
	ok, after := b.allowAdmit(at(5 * time.Second))
	if ok || after != 7*time.Second {
		t.Fatalf("open admit = (%v, %v), want (false, 7s)", ok, after)
	}
	if b.allowExec(at(5 * time.Second)) {
		t.Fatal("open breaker allowed execution before cooldown")
	}
	// Cooldown expiry: the next execution is the half-open probe.
	if !b.allowExec(at(12 * time.Second)) {
		t.Fatal("expired breaker denied the probe")
	}
	if b.state != breakerHalfOpen {
		t.Fatalf("state %v, want half_open", b.state)
	}
	if ok, _ := b.allowAdmit(at(12 * time.Second)); !ok {
		t.Fatal("half-open breaker rejected admission")
	}
	// Failed probe re-opens with a doubled cooldown.
	if !b.onFailure(at(13 * time.Second)) {
		t.Fatal("failed probe did not re-open")
	}
	if ok, after := b.allowAdmit(at(13 * time.Second)); ok || after != 20*time.Second {
		t.Fatalf("re-opened admit = (%v, %v), want (false, 20s)", ok, after)
	}
	// Successful probe closes and resets the cooldown.
	if !b.allowExec(at(40 * time.Second)) {
		t.Fatal("expired breaker denied the second probe")
	}
	if !b.onSuccess() {
		t.Fatal("probe success did not report the close")
	}
	if b.state != breakerClosed || b.failures != 0 || b.cooldown != 10*time.Second {
		t.Fatalf("after close: %+v", b)
	}
	// Cooldown growth saturates at 8× base: trip repeatedly and check
	// the open window never exceeds 80s.
	now := at(100 * time.Second)
	for i := 0; i < 10; i++ {
		b.onFailure(now)
		b.onFailure(now)
		b.onFailure(now)
		if b.state != breakerOpen {
			t.Fatalf("trip %d: state %v", i, b.state)
		}
		if window := b.until.Sub(now); window > 80*time.Second {
			t.Fatalf("trip %d: open window %v exceeds 8x base", i, window)
		}
		now = b.until
		if !b.allowExec(now) {
			t.Fatalf("trip %d: probe denied", i)
		}
	}
}

func TestQuarantineStateMachine(t *testing.T) {
	t0 := time.Unix(0, 0)
	at := func(d time.Duration) time.Time { return t0.Add(d) }
	q := newQuarantine(2, 10*time.Second)

	if q.onFailure(at(0)) {
		t.Fatal("quarantine tripped below threshold")
	}
	if ok, _ := q.check(at(0)); !ok {
		t.Fatal("inactive quarantine rejected")
	}
	if !q.onFailure(at(time.Second)) {
		t.Fatal("quarantine did not trip at threshold")
	}
	// Active and unexpired: rejected with the remaining cooldown, no
	// probe slot.
	if ok, after := q.check(at(3 * time.Second)); ok || after != 8*time.Second {
		t.Fatalf("active check = (%v, %v), want (false, 8s)", ok, after)
	}
	if q.claimProbe(at(3 * time.Second)) {
		t.Fatal("probe claimed before cooldown expiry")
	}
	// Expiry opens exactly one probe slot.
	if ok, _ := q.check(at(11 * time.Second)); !ok {
		t.Fatal("expired quarantine still rejecting")
	}
	if !q.claimProbe(at(11 * time.Second)) {
		t.Fatal("probe not claimable after expiry")
	}
	if q.claimProbe(at(11 * time.Second)) {
		t.Fatal("second probe claimed while the first is in flight")
	}
	if ok, after := q.check(at(11 * time.Second)); ok || after != 20*time.Second {
		t.Fatalf("probing check = (%v, %v), want (false, 20s hint)", ok, after)
	}
	// Failed probe re-trips with the doubled cooldown.
	if !q.onFailure(at(12 * time.Second)) {
		t.Fatal("failed probe did not re-trip")
	}
	if ok, after := q.check(at(12 * time.Second)); ok || after != 20*time.Second {
		t.Fatalf("re-tripped check = (%v, %v), want (false, 20s)", ok, after)
	}
	// Successful probe clears everything.
	if !q.claimProbe(at(40 * time.Second)) {
		t.Fatal("probe not claimable after second expiry")
	}
	if !q.onSuccess() {
		t.Fatal("probe success did not report the clear")
	}
	if q.active || q.probing || q.failures != 0 || q.cooldown != 10*time.Second {
		t.Fatalf("after clear: %+v", q)
	}
	// A cleared tenant needs the full threshold again.
	if q.onFailure(at(50 * time.Second)) {
		t.Fatal("cleared quarantine tripped on one failure")
	}
	if !q.onFailure(at(51 * time.Second)) {
		t.Fatal("cleared quarantine did not re-trip at threshold")
	}
	if window := q.until.Sub(at(51 * time.Second)); window != 10*time.Second {
		t.Fatalf("cooldown after clear %v, want reset to base", window)
	}
}

func TestGrowCooldownCaps(t *testing.T) {
	base := 10 * time.Second
	cur := base
	for i := 0; i < 20; i++ {
		cur = growCooldown(cur, base)
		if cur > 8*base {
			t.Fatalf("step %d: cooldown %v exceeds 8x base", i, cur)
		}
	}
	if cur != 8*base {
		t.Fatalf("cooldown saturated at %v, want %v", cur, 8*base)
	}
}

func TestUnitDeadline(t *testing.T) {
	const maxD = 15 * time.Minute
	cases := []struct {
		name    string
		base    time.Duration
		perCost time.Duration
		cost    int64
		want    time.Duration
	}{
		{"disabled-zero", 0, time.Microsecond, 100, 0},
		{"disabled-negative", -1, time.Microsecond, 100, 0},
		{"base-only", time.Minute, 0, 100, time.Minute},
		{"proportional", time.Minute, time.Microsecond, 1000, time.Minute + time.Millisecond},
		{"capped", time.Minute, time.Second, 1 << 20, maxD},
		{"overflow-saturates", time.Minute, time.Second, int64(1) << 62, maxD},
		{"zero-cost", time.Minute, time.Microsecond, 0, time.Minute},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := unitDeadline(tc.base, tc.perCost, tc.cost, maxD); got != tc.want {
				t.Fatalf("unitDeadline(%v, %v, %d, %v) = %v, want %v",
					tc.base, tc.perCost, tc.cost, maxD, got, tc.want)
			}
		})
	}
}
