package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A tiny Prometheus-text-format metrics registry: counters, gauges, and
// fixed-bucket histograms with at most one label per series. Hand-rolled
// on the stdlib because the container carries no client library — the
// exposition format is the stable contract, not the client API. Output
// is rendered with sorted metric and label keys, so /metrics is
// byte-deterministic for a given state (scrape diffs are meaningful).

// latencyBuckets are the job/predict latency histogram upper bounds in
// seconds; +Inf is implicit.
var latencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is one labeled histogram series.
type histogram struct {
	counts []uint64 // per bucket, cumulative rendering happens at write
	sum    float64
	total  uint64
}

// metricMeta describes one metric family for the HELP/TYPE header.
type metricMeta struct {
	help string
	typ  string // "counter", "gauge", "histogram"
}

// registry holds every service metric. All methods are safe for
// concurrent use.
type registry struct {
	mu       sync.Mutex
	meta     map[string]metricMeta
	families []string                      // registration order; rendering sorts a copy
	counters map[string]map[string]float64 // family -> label series -> value
	gauges   map[string]map[string]float64
	hists    map[string]map[string]*histogram
}

func newRegistry() *registry {
	return &registry{
		meta:     make(map[string]metricMeta),
		counters: make(map[string]map[string]float64),
		gauges:   make(map[string]map[string]float64),
		hists:    make(map[string]map[string]*histogram),
	}
}

// describe registers a metric family once; re-describing is a no-op.
func (r *registry) describe(name, typ, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.meta[name]; ok {
		return
	}
	r.meta[name] = metricMeta{help: help, typ: typ}
	r.families = append(r.families, name)
	switch typ {
	case "counter":
		r.counters[name] = make(map[string]float64)
	case "gauge":
		r.gauges[name] = make(map[string]float64)
	case "histogram":
		r.hists[name] = make(map[string]*histogram)
	default:
		panic("service: unknown metric type " + typ)
	}
}

// label renders a single key="value" label set; empty key means no
// labels. Values are restricted by the admission tenant grammar, so no
// escaping is needed; the panic guards the invariant.
func label(k, v string) string {
	if k == "" {
		return ""
	}
	if strings.ContainsAny(v, "\"\\\n") {
		panic("service: metric label value needs escaping: " + v)
	}
	return k + `="` + v + `"`
}

func (r *registry) addCounter(name, labels string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name][labels] += v
}

func (r *registry) setGauge(name, labels string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name][labels] = v
}

func (r *registry) observe(name, labels string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name][labels]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(latencyBuckets))}
		r.hists[name][labels] = h
	}
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.total++
}

// snapshotCounter reads one counter series (tests and SLO checks).
func (r *registry) snapshotCounter(name, labels string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name][labels]
}

// write renders the registry in the Prometheus text exposition format.
func (r *registry) write(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]string, len(r.families))
	copy(fams, r.families)
	sort.Strings(fams)
	for _, name := range fams {
		m := r.meta[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, m.help, name, m.typ); err != nil {
			return err
		}
		switch m.typ {
		case "counter", "gauge":
			series := r.counters[name]
			if m.typ == "gauge" {
				series = r.gauges[name]
			}
			for _, lbl := range sortedKeys(series) {
				if err := writeSeries(w, name, lbl, series[lbl]); err != nil {
					return err
				}
			}
		case "histogram":
			for _, lbl := range sortedKeysH(r.hists[name]) {
				h := r.hists[name][lbl]
				var cum uint64
				for i, ub := range latencyBuckets {
					cum += h.counts[i]
					le := label("le", strconv.FormatFloat(ub, 'g', -1, 64))
					if err := writeSeries(w, name+"_bucket", joinLabels(lbl, le), float64(cum)); err != nil {
						return err
					}
				}
				if err := writeSeries(w, name+"_bucket", joinLabels(lbl, `le="+Inf"`), float64(h.total)); err != nil {
					return err
				}
				if err := writeSeries(w, name+"_sum", lbl, h.sum); err != nil {
					return err
				}
				if err := writeSeries(w, name+"_count", lbl, float64(h.total)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name, labels string, v float64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
	return err
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysH(m map[string]*histogram) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Service metric families.
const (
	mAdmitted   = "ivmfd_jobs_admitted_total"
	mRejected   = "ivmfd_jobs_rejected_total"
	mCompleted  = "ivmfd_jobs_completed_total"
	mFailed     = "ivmfd_jobs_failed_total"
	mCoalesced  = "ivmfd_jobs_coalesced_total"
	mBatches    = "ivmfd_batches_scheduled_total"
	mQueueDepth = "ivmfd_queue_depth"
	mJobLatency = "ivmfd_job_latency_seconds"
	mPredicts   = "ivmfd_predict_requests_total"
	mPredCells  = "ivmfd_predict_cells_total"
	mSnapVer    = "ivmfd_snapshot_version"

	// Durable-store families (all zero unless the service runs with a
	// data directory).
	mStorePersist   = "ivmfd_store_persist_total"
	mStoreRetries   = "ivmfd_store_persist_retries_total"
	mStoreEvents    = "ivmfd_store_events_total"
	mStoreRecovered = "ivmfd_store_recovered_tenants_total"

	// Resilience families: fault isolation, quarantine, circuit
	// breaker, idempotent admission.
	mResPanics       = "ivmfd_resilience_panics_total"
	mResDeadline     = "ivmfd_resilience_deadline_exceeded_total"
	mResQuarantined  = "ivmfd_resilience_quarantined_tenants"
	mResQuarTrans    = "ivmfd_resilience_quarantine_transitions_total"
	mResBreaker      = "ivmfd_resilience_breaker_state"
	mResBreakerTrans = "ivmfd_resilience_breaker_transitions_total"
	mResIdemReplays  = "ivmfd_resilience_idempotent_replays_total"

	// Model-health families: the numerical-health report of each
	// tenant's update chain (core.Decomposition.Health), refreshed on
	// every snapshot swap.
	mHealthResidual     = "ivmfd_model_health_residual_budget_used"
	mHealthOrtho        = "ivmfd_model_health_ortho_drift"
	mHealthCond         = "ivmfd_model_health_condition"
	mHealthSinceRefresh = "ivmfd_model_health_updates_since_refresh"
	mHealthEscalations  = "ivmfd_model_health_escalations_total"
)

// newServiceRegistry describes the full ivmfd metric set.
func newServiceRegistry() *registry {
	r := newRegistry()
	r.describe(mAdmitted, "counter", "Jobs admitted into the queues, by kind.")
	r.describe(mRejected, "counter", "Jobs rejected at admission, by reason.")
	r.describe(mCompleted, "counter", "Jobs completed successfully, by kind.")
	r.describe(mFailed, "counter", "Jobs that failed during execution, by kind.")
	r.describe(mCoalesced, "counter", "Update jobs merged into a shared execution unit.")
	r.describe(mBatches, "counter", "Scheduling rounds that emitted a non-empty batch.")
	r.describe(mQueueDepth, "gauge", "Pending jobs per tenant.")
	r.describe(mJobLatency, "histogram", "Admission-to-completion job latency in seconds, by kind.")
	r.describe(mPredicts, "counter", "Prediction requests served.")
	r.describe(mPredCells, "counter", "Prediction cells computed.")
	r.describe(mSnapVer, "gauge", "Current snapshot version per tenant.")
	r.describe(mStorePersist, "counter", "Durable store writes acknowledged, by op (snapshot, delta).")
	r.describe(mStoreRetries, "counter", "Transient store-write failures retried, by op.")
	r.describe(mStoreEvents, "counter", "Store degradation events (corruption quarantined, torn tails, deferred compactions), by kind.")
	r.describe(mStoreRecovered, "counter", "Tenants recovered at boot, by outcome (ok, degraded, none).")
	r.describe(mResPanics, "counter", "Job panics contained by the executor's recover guard, by tenant.")
	r.describe(mResDeadline, "counter", "Execution units abandoned at their deadline, by tenant.")
	r.describe(mResQuarantined, "gauge", "Tenants currently quarantined.")
	r.describe(mResQuarTrans, "counter", "Quarantine transitions, by event (tripped, probe, cleared).")
	r.describe(mResBreaker, "gauge", "Store circuit breaker state (0 closed, 1 half-open, 2 open).")
	r.describe(mResBreakerTrans, "counter", "Store circuit breaker transitions, by destination state.")
	r.describe(mResIdemReplays, "counter", "Submissions answered from the idempotency ledger without a new job.")
	r.describe(mHealthResidual, "gauge", "Accumulated relative discarded singular mass since the last refresh, per tenant.")
	r.describe(mHealthOrtho, "gauge", "Worst factor orthogonality drift (max-norm of QtQ-I), per tenant.")
	r.describe(mHealthCond, "gauge", "Estimated factor-state condition number, per tenant.")
	r.describe(mHealthSinceRefresh, "gauge", "Updates absorbed since the last refresh or redecompose, per tenant.")
	r.describe(mHealthEscalations, "counter", "Health-guardrail escalations, by level (refresh, redecompose).")
	return r
}
