package service

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/recommend"
	"repro/internal/sparse"
	"repro/internal/store"
)

// deltaBatchText renders a patch + tombstone batch as the delta-COO
// payload of an update request.
func deltaBatchText(tb testing.TB, rows, cols int, batch dataset.DeltaBatch) string {
	tb.Helper()
	var sb strings.Builder
	if err := dataset.WriteDeltaBatchCOO(&sb, rows, cols, batch); err != nil {
		tb.Fatal(err)
	}
	return sb.String()
}

// TestWindowUpdateEndToEnd drives a sliding-window update — cell
// patches, tombstones, and a forgetting factor in one request — through
// the service, pins the served predictions bitwise to the offline
// engine replay of the same delta, and then crashes and recovers the
// store to prove the WAL carries the full window delta (tombstones, λ,
// ortho budget) bit-exactly across a restart.
func TestWindowUpdateEndToEnd(t *testing.T) {
	defer leakCheck(t)()
	const rows, cols = 12, 9
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{})
	s.Start()
	m := testMatrix(t, 7, rows, cols, 0.5)
	info := mustSubmit(t, s, Request{
		Tenant: "w", Kind: "decompose", Rank: 3, Target: "b", Min: 1, Max: 5,
		COO: cooText(t, m),
	})
	waitJob(t, s, info.ID)

	// Tombstone two stored cells, patch two others, decay by λ = 0.9.
	var tombs []sparse.Cell
	for _, i := range []int{2, 8} {
		cols, _, _ := m.RowView(i)
		if len(cols) == 0 {
			t.Fatalf("seed row %d empty", i)
		}
		tombs = append(tombs, sparse.Cell{Row: i, Col: cols[0]})
	}
	batch := dataset.DeltaBatch{
		Patch: []sparse.ITriplet{
			{Row: 0, Col: 4, Lo: 2.5, Hi: 3},
			{Row: 5, Col: 1, Lo: 1, Hi: 1.25},
		},
		Tombstones: tombs,
	}
	text := deltaBatchText(t, rows, cols, batch)
	info = mustSubmit(t, s, Request{
		Tenant: "w", Kind: "update", Delta: text, Forget: 0.9, Refresh: "never",
	})
	waitJob(t, s, info.ID)
	snap := s.Snapshot("w")
	if snap == nil || snap.Version != 2 {
		t.Fatalf("snapshot after window update: %+v", snap)
	}

	// Offline replay: ReadDeltaCOO yields the exact (row,col)-sorted
	// delta the service derives, so the chains are comparable bitwise.
	parsed, err := dataset.ReadDeltaCOO(strings.NewReader(text), m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.DecomposeSparse(m, core.ISVD4, core.Options{Rank: 3, Target: core.TargetB, Updatable: true})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := d.Update(core.Delta{Forget: 0.9, Patch: parsed.Patch, Unpatch: parsed.Tombstones},
		core.Options{Refresh: core.RefreshNever})
	if err != nil {
		t.Fatal(err)
	}
	offline := reconstructPredictions(t, d2, 1, 5, rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			iv, err := snap.Pred.PredictInterval(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(iv.Lo) != math.Float64bits(offline[i][j].Lo) ||
				math.Float64bits(iv.Hi) != math.Float64bits(offline[i][j].Hi) {
				t.Fatalf("cell (%d,%d): served %+v, offline %+v", i, j, iv, offline[i][j])
			}
		}
	}

	// The health gauges exist for the tenant, and /readyz carries the
	// per-tenant health detail.
	var metrics strings.Builder
	if err := s.metrics.write(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{mHealthResidual, mHealthOrtho, mHealthCond, mHealthSinceRefresh} {
		if !strings.Contains(metrics.String(), fam+`{tenant="w"}`) {
			t.Errorf("metrics missing %s for tenant w", fam)
		}
	}
	srv := httptest.NewServer(s.Handler())
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready readyBody
	if err := decodeBody(resp, &ready); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	th, ok := ready.Health["w"]
	if !ok {
		t.Fatalf("/readyz health missing tenant w: %+v", ready)
	}
	if th.Cond < 1 || th.UpdatesSinceRefresh != 1 {
		t.Errorf("/readyz health for w: %+v", th)
	}

	// Crash-and-recover: the WAL record carrying tombstones + λ replays
	// to bitwise the acknowledged predictions.
	want := s.Snapshot("w")
	drain(t, s)
	fs.Crash()
	s2 := persistService(t, fs, Config{})
	got := s2.Snapshot("w")
	if got == nil {
		t.Fatal("tenant not recovered")
	}
	if got.Version != want.Version || got.JobID != want.JobID {
		t.Fatalf("recovered identity (v%d, job %d), want (v%d, job %d)",
			got.Version, got.JobID, want.Version, want.JobID)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a, err := want.Pred.PredictInterval(i, j)
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.Pred.PredictInterval(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(a.Lo) != math.Float64bits(b.Lo) || math.Float64bits(a.Hi) != math.Float64bits(b.Hi) {
				t.Fatalf("cell (%d,%d) after crash: [%v,%v], want bitwise [%v,%v]", i, j, b.Lo, b.Hi, a.Lo, a.Hi)
			}
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// reconstructPredictions reads the full prediction grid off a
// decomposition through the same recommend path the service uses.
func reconstructPredictions(tb testing.TB, d *core.Decomposition, min, max float64, rows, cols int) [][]struct{ Lo, Hi float64 } {
	tb.Helper()
	pred, err := recommend.FromSparseDecomposition(d, min, max)
	if err != nil {
		tb.Fatal(err)
	}
	out := make([][]struct{ Lo, Hi float64 }, rows)
	for i := range out {
		out[i] = make([]struct{ Lo, Hi float64 }, cols)
		for j := 0; j < cols; j++ {
			iv, err := pred.PredictInterval(i, j)
			if err != nil {
				tb.Fatal(err)
			}
			out[i][j] = struct{ Lo, Hi float64 }{iv.Lo, iv.Hi}
		}
	}
	return out
}

// TestHealthEscalationMetrics walks the escalation ladder through the
// service under a fake clock and checks the exact
// ivmfd_model_health_escalations_total counts at each rung: a tripped
// refresh budget warm-refreshes, a violent cell arriving and expiring
// forces the ill-conditioned-downdate redecompose, and the health
// gauges track the chain. Leak-checked; no sleeps, no real time.
func TestHealthEscalationMetrics(t *testing.T) {
	defer leakCheck(t)()
	const rows, cols = 12, 9
	clock := newFakeClock()
	s := New(Config{Clock: clock.Now})
	s.Start()
	m := testMatrix(t, 7, rows, cols, 0.5)
	info := mustSubmit(t, s, Request{
		Tenant: "h", Kind: "decompose", Rank: 3, Target: "b", Min: 1, Max: 5,
		COO: cooText(t, m),
	})
	waitJob(t, s, info.ID)
	refreshC := func() float64 { return s.metrics.snapshotCounter(mHealthEscalations, label("level", "refresh")) }
	redecC := func() float64 { return s.metrics.snapshotCounter(mHealthEscalations, label("level", "redecompose")) }
	if refreshC() != 0 || redecC() != 0 {
		t.Fatalf("escalation counters after decompose: refresh=%g redecompose=%g", refreshC(), redecC())
	}

	// Rung 1: full-spectrum data at rank 3 discards mass on any patch, so
	// a vanishing refresh budget trips the warm refresh.
	info = mustSubmit(t, s, Request{
		Tenant: "h", Kind: "update", RefreshBudget: 1e-12,
		Delta: deltaText(t, rows, cols, []sparse.ITriplet{{Row: 1, Col: 3, Lo: 2, Hi: 2.5}}),
	})
	waitJob(t, s, info.ID)
	if refreshC() != 1 || redecC() != 0 {
		t.Fatalf("after budget trip: refresh=%g redecompose=%g, want 1, 0", refreshC(), redecC())
	}

	// Rung 2: a cell five orders of magnitude above the spectrum arrives
	// (the lax ortho budget lets the violent append through additively)…
	info = mustSubmit(t, s, Request{
		Tenant: "h", Kind: "update", Refresh: "never", OrthoBudget: 1e6,
		Delta: deltaText(t, rows, cols, []sparse.ITriplet{{Row: 0, Col: 1, Lo: 5e5, Hi: 6e5}}),
	})
	waitJob(t, s, info.ID)
	if refreshC() != 1 || redecC() != 0 {
		t.Fatalf("after violent patch: refresh=%g redecompose=%g, want 1, 0", refreshC(), redecC())
	}

	// …and expires. The downdate cancels nearly the whole spectrum: the
	// guardrail abandons the damaged additive chain and redecomposes,
	// even though the policy is refresh-never.
	info = mustSubmit(t, s, Request{
		Tenant: "h", Kind: "update", Refresh: "never",
		Delta: deltaBatchText(t, rows, cols, dataset.DeltaBatch{
			Tombstones: []sparse.Cell{{Row: 0, Col: 1}},
		}),
	})
	waitJob(t, s, info.ID)
	if refreshC() != 1 || redecC() != 1 {
		t.Fatalf("after expiry: refresh=%g redecompose=%g, want 1, 1", refreshC(), redecC())
	}
	snap := s.Snapshot("h")
	if snap == nil || snap.Version != 4 {
		t.Fatalf("snapshot after ladder: %+v", snap)
	}
	h := snap.Decomp.Health()
	if h.LastEscalation != "redecompose" || h.UpdatesSinceRefresh != 0 {
		t.Fatalf("chain health after ladder: %+v", h)
	}
	lbl := label("tenant", "h")
	s.metrics.mu.Lock()
	sinceRefresh := s.metrics.gauges[mHealthSinceRefresh][lbl]
	residual := s.metrics.gauges[mHealthResidual][lbl]
	s.metrics.mu.Unlock()
	if sinceRefresh != 0 {
		t.Errorf("updates_since_refresh gauge %g after escalation, want 0", sinceRefresh)
	}
	if residual != 0 {
		t.Errorf("residual gauge %g after redecompose, want 0", residual)
	}
	drain(t, s)
}
