package service

// Failure-injection tests over the executor's fault-isolation
// machinery: recover guards, deadlines, quarantine, the store circuit
// breaker, and drain under pressure. The governing invariant is the
// isolation contract — a poisoned tenant, a hung unit, or a dying disk
// may fail its own jobs, but every other tenant's served predictions
// stay bitwise equal to the offline chain of its acknowledged jobs, and
// the daemon itself never wedges or leaks.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/recommend"
	"repro/internal/store"
)

// TestPanicIsolation poisons one tenant's executor with panics while a
// healthy neighbor streams updates: the victim's jobs fail cleanly
// (ledger terminal, old snapshot keeps serving), the neighbor's served
// chain stays bitwise correct, and nothing leaks.
func TestPanicIsolation(t *testing.T) {
	defer leakCheck(t)()
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{})
	s.Start()

	decomposeTenant(t, s, "victim")
	mHealthy := decomposeTenant(t, s, "healthy")
	victimSnap := s.Snapshot("victim")

	release := s.ArmFailpoint(FailExec, FailpointSpec{Tenant: "victim", Mode: FailPanic, Count: 2})
	defer release()

	// Interleave: victim updates panic, healthy updates succeed.
	var healthyAcked []int
	for k := 1; k <= 2; k++ {
		vinfo := submitPatch(t, s, "victim", k)
		hinfo := submitPatch(t, s, "healthy", k)
		healthyAcked = append(healthyAcked, k)
		vdone := waitTerminal(t, s, vinfo.ID)
		if vdone.State != JobFailed || !strings.Contains(vdone.Error, "panicked") {
			t.Fatalf("victim job %d = %+v, want failed with panic", k, vdone)
		}
		waitJob(t, s, hinfo.ID)
	}

	// The victim's pre-poison snapshot is untouched.
	if got := s.Snapshot("victim"); got.Version != victimSnap.Version {
		t.Fatalf("victim snapshot moved to version %d under panics", got.Version)
	}
	// The healthy tenant's served state equals the offline chain of its
	// acknowledged updates, bitwise.
	assertServedEqualsChain(t, s, "healthy", mHealthy.Rows, mHealthy.Cols, healthyAcked)

	// The victim recovers: the failpoint is exhausted, so the next
	// update succeeds against the old snapshot.
	info := submitPatch(t, s, "victim", 9)
	waitJob(t, s, info.ID)
	if got := s.Snapshot("victim"); got.Version != victimSnap.Version+1 {
		t.Fatalf("victim did not resume publishing: version %d", got.Version)
	}
	if n := s.metrics.snapshotCounter(mResPanics, label("tenant", "victim")); n != 2 {
		t.Fatalf("panic counter = %v, want 2", n)
	}
	drain(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// assertServedEqualsChain pins a tenant's served predictions, bitwise
// over every cell, to the offline DecomposeSparse+Update chain of
// exactly the acked patches.
func assertServedEqualsChain(t *testing.T, s *Service, tenant string, rows, cols int, ackedPatches []int) {
	t.Helper()
	var probes [][2]int
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			probes = append(probes, [2]int{i, j})
		}
	}
	// Replay the exact recipe decomposeTenant/submitPatch request:
	// rank-3 TargetB decompose, then Refresh-never updates.
	m := testMatrix(t, 7, persistRows, persistCols, 0.4)
	d, err := core.DecomposeSparse(m, core.ISVD4,
		core.Options{Rank: 3, Target: core.TargetB, Updatable: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ackedPatches {
		d, err = d.Update(core.Delta{Patch: persistPatch(k)},
			core.Options{Refresh: core.RefreshNever})
		if err != nil {
			t.Fatal(err)
		}
	}
	pred, err := recommend.FromSparseDecomposition(d, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]interval.Interval, len(probes))
	for ci, c := range probes {
		if want[ci], err = pred.PredictInterval(c[0], c[1]); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot(tenant)
	if snap == nil {
		t.Fatalf("tenant %q has no snapshot", tenant)
	}
	for ci, c := range probes {
		got, err := snap.Pred.PredictInterval(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Lo) != math.Float64bits(want[ci].Lo) ||
			math.Float64bits(got.Hi) != math.Float64bits(want[ci].Hi) {
			t.Fatalf("tenant %q cell (%d,%d): served [%v,%v], offline [%v,%v]",
				tenant, c[0], c[1], got.Lo, got.Hi, want[ci].Lo, want[ci].Hi)
		}
	}
}

// waitTerminal polls a job until done or failed (unlike waitJob it
// tolerates failure — fault tests assert on it).
func waitTerminal(tb testing.TB, s *Service, id uint64) JobInfo {
	tb.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		info, err := s.Job(id)
		if err != nil {
			tb.Fatal(err)
		}
		if info.State == JobDone || info.State == JobFailed {
			return info
		}
		time.Sleep(time.Millisecond)
	}
	tb.Fatalf("job %d did not reach a terminal state", id)
	return JobInfo{}
}

// TestDeadlineAbandonsHungUnit hangs one unit at the executor failpoint
// and fires the injected deadline timer: the job fails with the typed
// deadline error, the hung goroutine's eventual result is discarded
// (never published, never persisted), and the tenant's chain continues
// from the pre-hang state.
func TestDeadlineAbandonsHungUnit(t *testing.T) {
	defer leakCheck(t)()
	timerCh := make(chan time.Time)
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{
		After: func(time.Duration) <-chan time.Time { return timerCh },
	})
	s.Start()

	decomposeTenant(t, s, "h")
	base := s.Snapshot("h")

	release := s.ArmFailpoint(FailExec, FailpointSpec{Tenant: "h", Mode: FailHang, Count: 1})
	info := submitPatch(t, s, "h", 1)
	// The unit is hung at the failpoint; fire its deadline.
	timerCh <- time.Now()
	done := waitTerminal(t, s, info.ID)
	if done.State != JobFailed || !strings.Contains(done.Error, "deadline exceeded") {
		t.Fatalf("hung job = %+v, want deadline failure", done)
	}
	// Release the hung goroutine: it finishes computing but lost the
	// publication claim, so nothing may change.
	release()
	if got := s.Snapshot("h"); got.Version != base.Version {
		t.Fatalf("abandoned unit published version %d", got.Version)
	}

	// The chain resumes from the pre-hang state: the abandoned delta is
	// NOT part of it — ledger and durable chain agree it never happened.
	info = submitPatch(t, s, "h", 2)
	waitJob(t, s, info.ID)
	assertServedEqualsChain(t, s, "h", persistRows, persistCols, []int{2})
	if n := s.metrics.snapshotCounter(mResDeadline, label("tenant", "h")); n != 1 {
		t.Fatalf("deadline counter = %v, want 1", n)
	}
	drain(t, s)

	// Crash and reboot: the durable chain must match the ledger — no
	// trace of the abandoned unit.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	s2 := persistService(t, fs, Config{})
	defer func() {
		drain(t, s2)
		_ = s2.Close()
	}()
	s2.Start()
	assertServedEqualsChain(t, s2, "h", persistRows, persistCols, []int{2})
}

// TestQuarantineLifecycle drives a tenant through trip → reject →
// cooldown → probe → clear under an injected clock, pinning every
// admission decision and metric transition.
func TestQuarantineLifecycle(t *testing.T) {
	defer leakCheck(t)()
	clk := newFakeClock()
	s := New(Config{
		Clock:              clk.Now,
		QuarantineAfter:    2,
		QuarantineCooldown: 10 * time.Second,
	})
	s.Start()
	defer drain(t, s)

	decomposeTenant(t, s, "q")
	snap := s.Snapshot("q")

	release := s.ArmFailpoint(FailExec, FailpointSpec{Tenant: "q", Mode: FailError, Count: 2})
	defer release()
	for k := 1; k <= 2; k++ {
		info := submitPatch(t, s, "q", k)
		if got := waitTerminal(t, s, info.ID); got.State != JobFailed {
			t.Fatalf("poisoned job %d = %+v", k, got)
		}
	}

	// Quarantined: admission rejects with the typed error and a
	// Retry-After hint; the old snapshot keeps serving.
	_, err := submitEnvelope(s, Request{
		Tenant: "q", Kind: "update", Refresh: "never",
		Delta: deltaText(t, persistRows, persistCols, persistPatch(3)),
	})
	if !errors.Is(err, errQuarantined) {
		t.Fatalf("quarantined submit error = %v, want errQuarantined", err)
	}
	var ra *retryAfterError
	if !errors.As(err, &ra) || ra.after <= 0 {
		t.Fatalf("quarantine rejection carries no Retry-After: %v", err)
	}
	if got := s.Snapshot("q"); got.Version != snap.Version {
		t.Fatalf("quarantined tenant's snapshot moved to %d", got.Version)
	}

	// Cooldown expiry admits exactly one probe; its success clears.
	clk.Advance(11 * time.Second)
	info := submitPatch(t, s, "q", 3)
	waitJob(t, s, info.ID)
	info = submitPatch(t, s, "q", 4)
	waitJob(t, s, info.ID)

	for _, c := range []struct {
		event string
		want  float64
	}{{"tripped", 1}, {"probe", 1}, {"cleared", 1}} {
		if n := s.metrics.snapshotCounter(mResQuarTrans, label("event", c.event)); n != c.want {
			t.Fatalf("quarantine transition %q = %v, want %v", c.event, n, c.want)
		}
	}
}

// TestBreakerLifecycle trips the store circuit breaker with exhausted
// persist operations, verifies mutations are rejected (and predictions
// keep serving) while open, and walks it through half-open recovery
// under the injected clock. Store failures must never quarantine the
// tenant — the disk's fault is not the tenant's.
func TestBreakerLifecycle(t *testing.T) {
	defer leakCheck(t)()
	clk := newFakeClock()
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{
		Clock:            clk.Now,
		PersistRetries:   -1, // no retries: one failpoint hit = one exhausted op
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
		Sleep:            func(time.Duration) {},
	})
	s.Start()

	decomposeTenant(t, s, "b")
	snap := s.Snapshot("b")

	release := s.ArmFailpoint(FailPersist, FailpointSpec{Mode: FailError, Count: 2})
	defer release()
	for k := 1; k <= 2; k++ {
		info := submitPatch(t, s, "b", k)
		got := waitTerminal(t, s, info.ID)
		if got.State != JobFailed || !strings.Contains(got.Error, "store unavailable") {
			t.Fatalf("persist-failed job %d = %+v", k, got)
		}
	}

	// Open: mutations rejected with the typed error + Retry-After.
	_, err := submitEnvelope(s, Request{
		Tenant: "b", Kind: "update", Refresh: "never",
		Delta: deltaText(t, persistRows, persistCols, persistPatch(3)),
	})
	if !errors.Is(err, errStoreUnavailable) {
		t.Fatalf("open-breaker submit error = %v, want errStoreUnavailable", err)
	}
	var ra *retryAfterError
	if !errors.As(err, &ra) || ra.after <= 0 {
		t.Fatalf("breaker rejection carries no Retry-After: %v", err)
	}
	// Reads still serve, and the store's failures did not quarantine
	// the tenant.
	if got := s.Snapshot("b"); got == nil || got.Version != snap.Version {
		t.Fatalf("serving snapshot lost under open breaker: %+v", got)
	}
	if n := s.metrics.snapshotCounter(mResQuarTrans, label("event", "tripped")); n != 0 {
		t.Fatal("store outage tripped the tenant quarantine")
	}

	// Cooldown expiry: the next unit is the half-open probe; the
	// failpoint is exhausted, so it persists and closes the breaker.
	clk.Advance(11 * time.Second)
	info := submitPatch(t, s, "b", 3)
	waitJob(t, s, info.ID)
	for _, c := range []struct {
		to   string
		want float64
	}{{"open", 1}, {"half_open", 1}, {"closed", 1}} {
		if n := s.metrics.snapshotCounter(mResBreakerTrans, label("to", c.to)); n != c.want {
			t.Fatalf("breaker transition to %q = %v, want %v", c.to, n, c.want)
		}
	}
	drain(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainDuringPersistBackoff drains the service while a unit is
// mid-backoff between persist retries: the drain must wait for the
// retry to succeed (no lost acknowledgement) and return without
// hanging.
func TestDrainDuringPersistBackoff(t *testing.T) {
	defer leakCheck(t)()
	fs := store.NewMemFS()
	backingOff := make(chan struct{}, 4)
	s := persistService(t, fs, Config{
		PersistBackoff: time.Millisecond,
		Sleep: func(d time.Duration) {
			select {
			case backingOff <- struct{}{}:
			default:
			}
			time.Sleep(d)
		},
	})
	s.Start()
	decomposeTenant(t, s, "d")

	release := s.ArmFailpoint(FailPersist, FailpointSpec{Mode: FailError, Count: 2})
	defer release()
	info := submitPatch(t, s, "d", 1)
	<-backingOff // the unit is between persist attempts right now

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain during persist backoff: %v", err)
	}
	// The job completed durably despite draining mid-retry.
	if got := waitTerminal(t, s, info.ID); got.State != JobDone {
		t.Fatalf("job after drain = %+v, want done", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	s2 := persistService(t, fs, Config{})
	defer func() { _ = s2.Close() }()
	if got := s2.Snapshot("d"); got == nil || got.Version != 2 {
		t.Fatalf("acked update lost across crash: %+v", got)
	}
}

// TestDrainWithBreakerOpen drains while the breaker is open with work
// still queued: queued units fail fast instead of wedging behind a dead
// disk, every job reaches a terminal state, and drain returns.
func TestDrainWithBreakerOpen(t *testing.T) {
	defer leakCheck(t)()
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{
		PersistRetries:   -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Sleep:            func(time.Duration) {},
	})
	s.Start()
	decomposeTenant(t, s, "t1")
	decomposeTenant(t, s, "t2")

	// Everything the disk is asked to do now fails.
	release := s.ArmFailpoint(FailPersist, FailpointSpec{Mode: FailError})
	defer release()
	i1 := submitPatch(t, s, "t1", 1)
	i2 := submitPatch(t, s, "t2", 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with open breaker: %v", err)
	}
	// All admitted jobs are terminal; the one behind the trip failed
	// fast on the open circuit.
	g1, g2 := waitTerminal(t, s, i1.ID), waitTerminal(t, s, i2.ID)
	if g1.State != JobFailed || g2.State != JobFailed {
		t.Fatalf("jobs not terminal-failed: %+v / %+v", g1, g2)
	}
	if !strings.Contains(g2.Error, "circuit open") && !strings.Contains(g1.Error, "circuit open") {
		t.Fatalf("no job failed fast on the open circuit: %q / %q", g1.Error, g2.Error)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIdempotentSubmit pins the dedupe contract at the service layer:
// a repeated key replays the original acknowledgement (same job ID,
// Deduped set, no second admission), distinct keys admit normally, and
// replays keep working while draining.
func TestIdempotentSubmit(t *testing.T) {
	defer leakCheck(t)()
	s := New(Config{})
	s.Start()

	m := testMatrix(t, 7, persistRows, persistCols, 0.4)
	req := Request{Tenant: "i", Kind: "decompose", Rank: 3, Target: "b",
		Min: 1, Max: 5, COO: cooText(t, m)}
	first, err := submitEnvelopeIdem(s, req, "boot:1")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, first.ID)

	replay, err := submitEnvelopeIdem(s, req, "boot:1")
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Deduped || replay.ID != first.ID || replay.State != JobDone {
		t.Fatalf("replay = %+v, want deduped ack of job %d", replay, first.ID)
	}
	if n := s.metrics.snapshotCounter(mAdmitted, label("kind", "decompose")); n != 1 {
		t.Fatalf("admitted = %v after replay, want 1", n)
	}
	if n := s.metrics.snapshotCounter(mResIdemReplays, ""); n != 1 {
		t.Fatalf("replay counter = %v, want 1", n)
	}

	// A fresh key is new work; the same key on another tenant is too
	// (keys are tenant-scoped).
	upd := Request{Tenant: "i", Kind: "update", Refresh: "never",
		Delta: deltaText(t, persistRows, persistCols, persistPatch(1))}
	u1, err := submitEnvelopeIdem(s, upd, "u:1")
	if err != nil || u1.Deduped {
		t.Fatalf("fresh key: %+v, %v", u1, err)
	}
	waitJob(t, s, u1.ID)

	drain(t, s)
	// Draining: replays still converge, new work is rejected.
	replay, err = submitEnvelopeIdem(s, req, "boot:1")
	if err != nil || !replay.Deduped || replay.ID != first.ID {
		t.Fatalf("replay while draining = %+v, %v", replay, err)
	}
	if _, err := submitEnvelopeIdem(s, upd, "u:2"); !errors.Is(err, errDraining) {
		t.Fatalf("new work while draining: %v, want errDraining", err)
	}
}

// TestIdempotencyAcrossRestart is the exactly-once contract the WAL and
// snapshot meta exist for: acknowledged keys survive a crash, so a
// client retrying across the restart gets the original acknowledgement
// instead of a duplicate execution.
func TestIdempotencyAcrossRestart(t *testing.T) {
	defer leakCheck(t)()
	fs := store.NewMemFS()
	s := persistService(t, fs, Config{})
	s.Start()

	m := testMatrix(t, 7, persistRows, persistCols, 0.4)
	dreq := Request{Tenant: "r", Kind: "decompose", Rank: 3, Target: "b",
		Min: 1, Max: 5, COO: cooText(t, m)}
	dinfo, err := submitEnvelopeIdem(s, dreq, "boot:1")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, dinfo.ID)
	upd := func(k int) Request {
		return Request{Tenant: "r", Kind: "update", Refresh: "never",
			Delta: deltaText(t, persistRows, persistCols, persistPatch(k))}
	}
	var uinfo [3]JobInfo
	for k := 1; k <= 2; k++ {
		info, err := submitEnvelopeIdem(s, upd(k), "u:"+string(rune('0'+k)))
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, s, info.ID)
		uinfo[k] = info
	}
	wantVersion := s.Snapshot("r").Version
	drain(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	fs.Crash()
	s2 := persistService(t, fs, Config{})
	s2.Start()
	defer func() {
		drain(t, s2)
		_ = s2.Close()
	}()

	// Every acknowledged key replays with its original job ID.
	for _, c := range []struct {
		req Request
		key string
		id  uint64
	}{
		{dreq, "boot:1", dinfo.ID},
		{upd(1), "u:1", uinfo[1].ID},
		{upd(2), "u:2", uinfo[2].ID},
	} {
		info, err := submitEnvelopeIdem(s2, c.req, c.key)
		if err != nil {
			t.Fatalf("key %q after restart: %v", c.key, err)
		}
		if !info.Deduped || info.ID != c.id || info.State != JobDone {
			t.Fatalf("key %q after restart = %+v, want deduped ack of job %d", c.key, info, c.id)
		}
	}
	// No duplicate execution: the served version is the acknowledged
	// one, and a genuinely new key still admits fresh work.
	if got := s2.Snapshot("r").Version; got != wantVersion {
		t.Fatalf("version %d after replays, want %d", got, wantVersion)
	}
	info, err := submitEnvelopeIdem(s2, upd(3), "u:3")
	if err != nil || info.Deduped {
		t.Fatalf("fresh key after restart: %+v, %v", info, err)
	}
	waitJob(t, s2, info.ID)
}

// TestHTTPResilienceSurface pins the wire-level resilience contract:
// /readyz reflects drain state, queue-full backpressure answers 429
// with a Retry-After header, and the Idempotency-Key header dedupes
// (200 + Idempotency-Replayed) with invalid keys rejected up front.
func TestHTTPResilienceSurface(t *testing.T) {
	defer leakCheck(t)()
	// MaxQueue counts running + queued: the hung unit holds one slot,
	// one update queues behind it, the next bounces.
	s := New(Config{MaxQueue: 2, RetryAfterHint: 2 * time.Second})
	s.Start()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	post := func(req Request, key string) *http.Response {
		t.Helper()
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		if key != "" {
			hr.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Fully up: ready.
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Keyed decompose admits once (202), then replays (200 + header).
	m := testMatrix(t, 7, persistRows, persistCols, 0.4)
	dreq := Request{Tenant: "h", Kind: "decompose", Rank: 3, Target: "b",
		Min: 1, Max: 5, COO: cooText(t, m)}
	var first JobInfo
	resp := post(dreq, "boot:1")
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("Idempotency-Replayed") != "" {
		t.Fatalf("first keyed submit: %d, replayed=%q", resp.StatusCode, resp.Header.Get("Idempotency-Replayed"))
	}
	if err := decodeBody(resp, &first); err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, first.ID)
	var replay JobInfo
	resp = post(dreq, "boot:1")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("replayed submit: %d, replayed=%q", resp.StatusCode, resp.Header.Get("Idempotency-Replayed"))
	}
	if err := decodeBody(resp, &replay); err != nil {
		t.Fatal(err)
	}
	if !replay.Deduped || replay.ID != first.ID {
		t.Fatalf("replay body = %+v, want dedupe of job %d", replay, first.ID)
	}

	// Malformed keys never reach admission.
	resp = post(dreq, "bad key")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid key = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Backpressure: hang the executor on the next update, fill the
	// queue behind it, and the next submit bounces with the configured
	// Retry-After.
	release := s.ArmFailpoint(FailExec, FailpointSpec{Tenant: "h", Mode: FailHang, Count: 1})
	upd := func(k int) Request {
		return Request{Tenant: "h", Kind: "update", Refresh: "never",
			Delta: deltaText(t, persistRows, persistCols, persistPatch(k))}
	}
	resp = post(upd(1), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("hung update = %d, want 202", resp.StatusCode)
	}
	var hung JobInfo
	if err := decodeBody(resp, &hung); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		info, err := s.Job(hung.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d never started running", hung.ID)
		}
		time.Sleep(time.Millisecond)
	}
	resp = post(upd(2), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued update = %d, want 202", resp.StatusCode)
	}
	var queued JobInfo
	if err := decodeBody(resp, &queued); err != nil {
		t.Fatal(err)
	}
	resp = post(upd(3), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue update = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	resp.Body.Close()

	release()
	waitJob(t, s, hung.ID)
	waitJob(t, s, queued.ID)

	// Draining flips readiness while replays keep converging.
	drain(t, s)
	resp = get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	var rb struct {
		Status string `json:"status"`
	}
	if err := decodeBody(resp, &rb); err != nil {
		t.Fatal(err)
	}
	if rb.Status != "draining" {
		t.Fatalf("readyz status = %q, want draining", rb.Status)
	}
	resp = post(dreq, "boot:1")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("replay while draining = %d", resp.StatusCode)
	}
	resp.Body.Close()
}
