package service

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/recommend"
)

// Snapshot is one immutable serving state of a tenant's model: the
// factor-backed predictor, the updatable decomposition it was derived
// from, and the version stamp. Snapshots are never mutated after
// publication — the job executor builds a complete replacement off to
// the side (core's update states are functional, so the old
// decomposition keeps serving while the new one is built) and swaps the
// pointer in one atomic store. Readers that load a snapshot once and
// answer entirely from it are therefore always internally consistent
// with exactly one version, with zero locking on the serving path.
type Snapshot struct {
	// Version counts published states per tenant, starting at 1 for the
	// first completed decomposition.
	Version uint64
	// JobID identifies the job whose completion published this state.
	JobID uint64
	// Pred serves /predict and /topn; safe for concurrent use.
	Pred *recommend.Predictor
	// Decomp is the updatable decomposition behind Pred; the executor
	// folds the next delta into it.
	Decomp *core.Decomposition
	// Rows, Cols is the model shape; deltas must match it.
	Rows, Cols int
	// Rank is the decompose-time rank (update cost pricing).
	Rank int
}

// snapStore publishes a tenant's current Snapshot. The zero value is an
// empty store (no model yet).
type snapStore struct {
	p atomic.Pointer[Snapshot]
}

// load returns the current snapshot, or nil when no decomposition has
// completed yet. The returned snapshot is immutable; answer whole
// requests from one load.
//
//ivmf:deterministic
func (s *snapStore) load() *Snapshot {
	return s.p.Load()
}

// swap publishes next as the current snapshot. Only the job executor
// calls it, and next must never be modified after the call.
//
//ivmf:deterministic
func (s *snapStore) swap(next *Snapshot) {
	s.p.Store(next)
}
