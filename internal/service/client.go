package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is a small typed client for the ivmfd HTTP API, shared by the
// load generator (cmd/ivmfload), the end-to-end tests, and external
// callers.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one JSON request and decodes the response into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return &APIError{Status: resp.StatusCode, Message: eb.Error}
		}
		return &APIError{Status: resp.StatusCode, Message: string(data)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// APIError is a non-2xx server response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Message)
}

// Submit posts a job envelope and returns the queued job's info.
func (c *Client) Submit(ctx context.Context, req Request) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &info)
	return info, err
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id uint64) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", id), nil, &info)
	return info, err
}

// WaitJob polls a job until it reaches a terminal state (done or
// failed) or ctx expires. A failed job is returned with a nil error —
// inspect info.State.
func (c *Client) WaitJob(ctx context.Context, id uint64, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.State == JobDone || info.State == JobFailed {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Predict posts a batch prediction request; all returned cells are
// consistent with the single snapshot version in the response.
func (c *Client) Predict(ctx context.Context, tenant string, cells [][2]int) (*PredictResponse, error) {
	var resp PredictResponse
	err := c.do(ctx, http.MethodPost, "/v1/predict", PredictRequest{Tenant: tenant, Cells: cells}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// TopN fetches the top-n columns for a row.
func (c *Client) TopN(ctx context.Context, tenant string, row, n int) (*TopNResponse, error) {
	var resp TopNResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/topn?tenant=%s&row=%d&n=%d", tenant, row, n), nil, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes /healthz; a draining or down server returns an error.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: string(data)}
	}
	return string(data), nil
}
