package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a small typed client for the ivmfd HTTP API, shared by the
// load generator (cmd/ivmfload), the end-to-end tests, and external
// callers. With Retry set it transparently retries transient failures —
// connection errors, 429 backpressure, 503 degradation — with bounded,
// jittered exponential backoff, honoring the server's Retry-After.
// Mutations are retried only when the submission carries an
// Idempotency-Key (SubmitIdem): the server's dedupe ledger makes the
// retry exactly-once, which is what makes retrying safe at all.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Retry enables transparent retries; nil disables them.
	Retry *RetryPolicy

	mu      sync.Mutex
	rng     *rand.Rand
	retries atomic.Int64
}

// RetryPolicy bounds the client's backoff schedule.
type RetryPolicy struct {
	// MaxAttempts caps total tries per call (first attempt included);
	// <= 1 means no retries.
	MaxAttempts int
	// BaseBackoff is the first retry delay, doubling per attempt up to
	// MaxBackoff. Zero values mean the defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter deterministic; 0 means a fixed default (the
	// client is a test/load tool — reproducibility beats entropy).
	Seed int64
}

// Client retry defaults.
const (
	DefaultRetryAttempts = 4
	DefaultRetryBase     = 50 * time.Millisecond
	DefaultRetryMax      = 2 * time.Second
)

func (p *RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return DefaultRetryAttempts
	}
	return p.MaxAttempts
}

func (p *RetryPolicy) base() time.Duration {
	if p.BaseBackoff <= 0 {
		return DefaultRetryBase
	}
	return p.BaseBackoff
}

func (p *RetryPolicy) max() time.Duration {
	if p.MaxBackoff <= 0 {
		return DefaultRetryMax
	}
	return p.MaxBackoff
}

// Retries reports how many retry attempts the client has issued (load
// accounting).
func (c *Client) Retries() int64 { return c.retries.Load() }

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// jitter01 draws one uniform [0,1) variate from the policy's seeded
// source.
func (c *Client) jitter01() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		seed := int64(1)
		if c.Retry != nil && c.Retry.Seed != 0 {
			seed = c.Retry.Seed
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	return c.rng.Float64()
}

// retryDelay computes the attempt'th backoff: exponential doubling from
// base capped at max, equal-jittered into [d/2, d], then raised to the
// server's Retry-After when that is longer. attempt counts completed
// tries (1 for the first retry).
//
//ivmf:deterministic
func retryDelay(attempt int, base, max, retryAfter time.Duration, jitter01 float64) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max || d <= 0 {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	d = d/2 + time.Duration(jitter01*float64(d/2))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// retryableStatus reports whether a response status is worth retrying.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// parseRetryAfter reads a Retry-After header in whole seconds (the only
// form the server emits); 0 means absent or unparsable.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.ParseInt(h, 10, 32)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// do issues one JSON request and decodes the response into out,
// retrying per the policy when the call is idempotent: every GET, the
// predict POST (read-only), and any submission carrying an
// Idempotency-Key.
func (c *Client) do(ctx context.Context, method, path, idemKey string, body, out any) error {
	var payload []byte
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = data
	}
	idempotent := method == http.MethodGet || path == "/v1/predict" || idemKey != ""
	attempts := 1
	if c.Retry != nil && idempotent {
		attempts = c.Retry.attempts()
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		err, retryAfter, retryable := c.doOnce(ctx, method, path, idemKey, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt >= attempts {
			return lastErr
		}
		c.retries.Add(1)
		delay := retryDelay(attempt, c.Retry.base(), c.Retry.max(), retryAfter, c.jitter01())
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}

// doOnce issues one attempt. retryable reports whether the failure is
// transient (transport error or retryable status).
func (c *Client) doOnce(ctx context.Context, method, path, idemKey string, payload []byte, out any) (err error, retryAfter time.Duration, retryable bool) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err, 0, false
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err(), 0, false
		}
		return err, 0, true // connection-level failure
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err(), 0, false
		}
		return err, 0, true
	}
	if resp.StatusCode >= 300 {
		retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		apiErr := &APIError{Status: resp.StatusCode, Message: string(data)}
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			apiErr.Message = eb.Error
		}
		return apiErr, retryAfter, retryableStatus(resp.StatusCode)
	}
	if out == nil {
		return nil, 0, false
	}
	if err := json.Unmarshal(data, out); err != nil {
		return err, 0, false
	}
	return nil, 0, false
}

// APIError is a non-2xx server response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Message)
}

// Submit posts a job envelope and returns the queued job's info. It is
// never retried (a duplicate admission would not be detectable); use
// SubmitIdem for retry-safe submission.
func (c *Client) Submit(ctx context.Context, req Request) (JobInfo, error) {
	return c.SubmitIdem(ctx, req, "")
}

// SubmitIdem posts a job envelope under an idempotency key. With a
// non-empty key and a retry policy, transient failures are retried
// safely: a retry that lands after the original was admitted replays
// the original acknowledgement (info.Deduped set) instead of enqueueing
// a duplicate.
func (c *Client) SubmitIdem(ctx context.Context, req Request, key string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", key, req, &info)
	return info, err
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id uint64) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", id), "", nil, &info)
	return info, err
}

// WaitJob polls a job until it reaches a terminal state (done or
// failed) or ctx expires. A failed job is returned with a nil error —
// inspect info.State.
func (c *Client) WaitJob(ctx context.Context, id uint64, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.State == JobDone || info.State == JobFailed {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Predict posts a batch prediction request; all returned cells are
// consistent with the single snapshot version in the response.
func (c *Client) Predict(ctx context.Context, tenant string, cells [][2]int) (*PredictResponse, error) {
	var resp PredictResponse
	err := c.do(ctx, http.MethodPost, "/v1/predict", "", PredictRequest{Tenant: tenant, Cells: cells}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// TopN fetches the top-n columns for a row.
func (c *Client) TopN(ctx context.Context, tenant string, row, n int) (*TopNResponse, error) {
	var resp TopNResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/topn?tenant=%s&row=%d&n=%d", tenant, row, n), "", nil, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes /healthz; a draining or down server returns an error.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", "", nil, nil)
}

// Ready probes /readyz; a draining, breaker-open, or down server
// returns an error.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", "", nil, nil)
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: string(data)}
	}
	return string(data), nil
}
