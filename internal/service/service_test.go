package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/interval"
	"repro/internal/recommend"
	"repro/internal/service/sched"
	"repro/internal/sparse"
)

// offlineChain replays the service's exact execution recipe outside the
// service: one updatable decomposition, then one functional Update per
// delta, with the same options the executor resolves. It returns the
// probe-cell predictions after the decomposition (index 0) and after
// each delta.
func offlineChain(tb testing.TB, base *sparse.ICSR, deltas [][]sparse.ITriplet,
	opts core.Options, min, max float64, probes [][2]int) [][]interval.Interval {
	tb.Helper()
	opts.Updatable = true
	d, err := core.DecomposeSparse(base, core.ISVD4, opts)
	if err != nil {
		tb.Fatal(err)
	}
	read := func(d *core.Decomposition) []interval.Interval {
		pred, err := recommend.FromSparseDecomposition(d, min, max)
		if err != nil {
			tb.Fatal(err)
		}
		out := make([]interval.Interval, len(probes))
		for ci, c := range probes {
			iv, err := pred.PredictInterval(c[0], c[1])
			if err != nil {
				tb.Fatal(err)
			}
			out[ci] = iv
		}
		return out
	}
	states := [][]interval.Interval{read(d)}
	for _, patch := range deltas {
		d, err = d.Update(core.Delta{Patch: patch}, core.Options{})
		if err != nil {
			tb.Fatal(err)
		}
		states = append(states, read(d))
	}
	return states
}

// probeCells picks a deterministic scatter of in-shape cells.
func probeCells(rows, cols, n int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	cells := make([][2]int, n)
	for i := range cells {
		cells[i] = [2]int{rng.Intn(rows), rng.Intn(cols)}
	}
	return cells
}

// TestSnapshotSwapConsistency hammers the serving path from several
// goroutines while the executor swaps snapshots underneath them, and
// checks every read against the offline chain: whatever version a
// reader observes, all its cell reads must match that version exactly
// (single-version consistency, no torn reads). Run with -race.
func TestSnapshotSwapConsistency(t *testing.T) {
	const (
		rows, cols = 30, 20
		rank       = 6
		nDeltas    = 4
		readers    = 8
	)
	m := testMatrix(t, 11, rows, cols, 0.35)
	base, deltas, err := dataset.StreamSplit(m, 0.3, nDeltas, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	baseCSR, err := sparse.FromICOO(rows, cols, base)
	if err != nil {
		t.Fatal(err)
	}
	probes := probeCells(rows, cols, 16, 17)
	want := offlineChain(t, baseCSR, deltas,
		core.Options{Rank: rank, Target: core.TargetB}, 1, 5, probes)

	s := New(Config{})
	s.Start()
	defer s.Drain(context.Background())

	const tenant = "swap-test"
	info := mustSubmit(t, s, Request{
		Tenant: tenant, Kind: "decompose", Method: "ISVD4",
		Rank: rank, Target: "b", Min: 1, Max: 5, COO: cooText(t, baseCSR),
	})
	waitJob(t, s, info.ID)

	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot(tenant)
				if snap == nil {
					continue
				}
				if snap.Version < lastVersion {
					errs <- fmt.Errorf("version went backwards: %d after %d", snap.Version, lastVersion)
					return
				}
				lastVersion = snap.Version
				exp := want[snap.Version-1]
				for ci, c := range probes {
					iv, err := snap.Pred.PredictInterval(c[0], c[1])
					if err != nil {
						errs <- err
						return
					}
					if iv != exp[ci] {
						errs <- fmt.Errorf("version %d cell %v: got %+v, want %+v (torn read?)",
							snap.Version, c, iv, exp[ci])
						return
					}
				}
			}
		}()
	}

	// Apply the deltas one at a time, waiting for each, so versions step
	// 2, 3, ... with no coalescing — exactly the offline chain.
	for _, patch := range deltas {
		info := mustSubmit(t, s, Request{
			Tenant: tenant, Kind: "update", Delta: deltaText(t, rows, cols, patch),
		})
		waitJob(t, s, info.ID)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if snap := s.Snapshot(tenant); snap == nil || snap.Version != uint64(1+nDeltas) {
		t.Fatalf("final snapshot %+v, want version %d", snap, 1+nDeltas)
	}
}

func TestGracefulDrain(t *testing.T) {
	const rows, cols = 20, 12
	m := testMatrix(t, 3, rows, cols, 0.4)
	s := New(Config{})
	s.Start()

	ids := []uint64{
		mustSubmit(t, s, Request{Tenant: "d", Kind: "decompose", Rank: 4, Target: "b",
			Min: 1, Max: 5, COO: cooText(t, m)}).ID,
	}
	for k := 0; k < 3; k++ {
		patch := []sparse.ITriplet{{Row: k, Col: k + 1, Lo: 2, Hi: 3}}
		ids = append(ids, mustSubmit(t, s, Request{
			Tenant: "d", Kind: "update", Delta: deltaText(t, rows, cols, patch),
		}).ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Every admitted job ran to completion; none were dropped.
	for _, id := range ids {
		info, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != JobDone {
			t.Errorf("job %d state %q after drain: %s", id, info.State, info.Error)
		}
	}
	// New admissions are refused.
	_, err := submitEnvelope(s, Request{Tenant: "d", Kind: "decompose", COO: cooText(t, m)})
	if !errors.Is(err, errDraining) {
		t.Fatalf("post-drain submit err = %v, want errDraining", err)
	}
	if !s.Draining() {
		t.Error("Draining() = false after Drain")
	}
}

// TestCoalescedUpdates drives the executor by hand (the service is
// never started) so the scheduler provably sees all three updates at
// once: they must collapse into one unit, apply as a single last-wins
// merged patch, and publish exactly one new snapshot whose predictions
// match the equivalent offline single Update.
func TestCoalescedUpdates(t *testing.T) {
	const rows, cols = 20, 12
	m := testMatrix(t, 7, rows, cols, 0.4)
	s := New(Config{})

	dec := mustSubmit(t, s, Request{Tenant: "c", Kind: "decompose", Rank: 5, Target: "b",
		Min: 1, Max: 5, COO: cooText(t, m)})
	patches := [][]sparse.ITriplet{
		{{Row: 1, Col: 2, Lo: 2, Hi: 3}, {Row: 4, Col: 5, Lo: 1, Hi: 1.5}},
		{{Row: 1, Col: 2, Lo: 4, Hi: 4.5}}, // overwrites the first patch's cell
		{{Row: 6, Col: 0, Lo: 3, Hi: 3}},
	}
	var upd []JobInfo
	for _, p := range patches {
		upd = append(upd, mustSubmit(t, s, Request{
			Tenant: "c", Kind: "update", Delta: deltaText(t, rows, cols, p),
		}))
	}

	batch := sched.Schedule(s.pending, s.cfg.Budget)
	if len(batch.Units) != 2 {
		t.Fatalf("batch has %d units, want decompose + coalesced updates", len(batch.Units))
	}
	if got := len(batch.Units[1].Jobs); got != 3 {
		t.Fatalf("update unit coalesced %d jobs, want 3", got)
	}
	for _, u := range batch.Units {
		s.execUnit(u)
	}

	if got := s.metrics.snapshotCounter(mCoalesced, ""); got != 2 {
		t.Errorf("coalesced counter = %g, want 2", got)
	}
	if info := waitJob(t, s, dec.ID); info.Version != 1 {
		t.Errorf("decompose published version %d, want 1", info.Version)
	}
	for _, u := range upd {
		info := waitJob(t, s, u.ID)
		if info.Version != 2 {
			t.Errorf("update %d published version %d, want 2 (one shared swap)", u.ID, info.Version)
		}
	}
	snap := s.Snapshot("c")
	if snap == nil || snap.Version != 2 {
		t.Fatalf("snapshot after coalesced update: %+v", snap)
	}

	// Offline equivalent: one Update with the last-wins merged patch in
	// admission order, first-touch cell order.
	merged := []sparse.ITriplet{
		{Row: 1, Col: 2, Lo: 4, Hi: 4.5},
		{Row: 4, Col: 5, Lo: 1, Hi: 1.5},
		{Row: 6, Col: 0, Lo: 3, Hi: 3},
	}
	probes := probeCells(rows, cols, 12, 23)
	want := offlineChain(t, m, [][]sparse.ITriplet{merged},
		core.Options{Rank: 5, Target: core.TargetB}, 1, 5, probes)[1]
	for ci, c := range probes {
		iv, err := snap.Pred.PredictInterval(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		if iv != want[ci] {
			t.Errorf("cell %v: coalesced %+v, offline merged %+v", c, iv, want[ci])
		}
	}
}

func TestSubmitRejections(t *testing.T) {
	const rows, cols = 8, 6
	m := testMatrix(t, 1, rows, cols, 0.5)
	delta := deltaText(t, rows, cols, []sparse.ITriplet{{Row: 0, Col: 1, Lo: 2, Hi: 2}})

	t.Run("update before decompose", func(t *testing.T) {
		s := New(Config{})
		_, err := submitEnvelope(s, Request{Tenant: "t", Kind: "update", Delta: delta})
		if !errors.Is(err, errNoModel) {
			t.Fatalf("err = %v, want errNoModel", err)
		}
	})
	t.Run("shape mismatch", func(t *testing.T) {
		s := New(Config{})
		mustSubmit(t, s, Request{Tenant: "t", Kind: "decompose", COO: cooText(t, m)})
		bad := deltaText(t, rows+1, cols, []sparse.ITriplet{{Row: 0, Col: 0, Lo: 1, Hi: 1}})
		_, err := submitEnvelope(s, Request{Tenant: "t", Kind: "update", Delta: bad})
		if err == nil || errors.Is(err, errNoModel) {
			t.Fatalf("err = %v, want shape mismatch", err)
		}
	})
	t.Run("queue full", func(t *testing.T) {
		s := New(Config{MaxQueue: 1})
		mustSubmit(t, s, Request{Tenant: "t", Kind: "decompose", COO: cooText(t, m)})
		_, err := submitEnvelope(s, Request{Tenant: "t", Kind: "update", Delta: delta})
		if !errors.Is(err, errQueueFull) {
			t.Fatalf("err = %v, want errQueueFull", err)
		}
		// Other tenants are unaffected by a full neighbor.
		mustSubmit(t, s, Request{Tenant: "u", Kind: "decompose", COO: cooText(t, m)})
	})
	t.Run("job not found", func(t *testing.T) {
		s := New(Config{})
		if _, err := s.Job(42); !errors.Is(err, errNotFound) {
			t.Fatalf("err = %v, want errNotFound", err)
		}
	})
	t.Run("start twice panics", func(t *testing.T) {
		s := New(Config{})
		s.Start()
		defer s.Drain(context.Background())
		defer func() {
			if recover() == nil {
				t.Error("second Start did not panic")
			}
		}()
		s.Start()
	})
}
