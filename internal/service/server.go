package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// HTTP API of the batched decomposition service (cmd/ivmfd):
//
//	POST /v1/jobs              submit a job (Request envelope) → 202 JobInfo
//	GET  /v1/jobs/{id}         job status → JobInfo
//	POST /v1/predict           batch predictions from one snapshot → PredictResponse
//	GET  /v1/predict           single-cell variant (?tenant=&row=&col=)
//	GET  /v1/topn              top-N columns for a row (?tenant=&row=&n=&exclude=1,2)
//	GET  /metrics              Prometheus text exposition
//	GET  /healthz              200 process alive / 503 draining
//	GET  /readyz               200 accepting mutations / 503 degraded
//
// Every prediction response is computed from exactly one atomically
// loaded snapshot and reports its version, so concurrent model swaps
// never produce torn reads.
//
// Backpressure contract: queue- and byte-budget rejections answer 429,
// quarantine and breaker rejections 503, both with a Retry-After header
// in whole seconds. POST /v1/jobs accepts an Idempotency-Key header
// ([A-Za-z0-9._:-]{1,64}); retrying a key whose submission was already
// acknowledged replays the original JobInfo (200, Idempotency-Replayed:
// true) instead of admitting a duplicate — including across a restart,
// because acknowledged keys persist in the store's WAL/snapshot meta.

// PredictRequest is the POST /v1/predict body.
type PredictRequest struct {
	Tenant string   `json:"tenant"`
	Cells  [][2]int `json:"cells"` // [row, col] pairs
}

// Prediction is one predicted cell.
type Prediction struct {
	Row int     `json:"row"`
	Col int     `json:"col"`
	Lo  float64 `json:"lo"`
	Hi  float64 `json:"hi"`
	Mid float64 `json:"mid"`
}

// PredictResponse answers /v1/predict; all cells come from the single
// snapshot identified by Version.
type PredictResponse struct {
	Tenant      string       `json:"tenant"`
	Version     uint64       `json:"version"`
	Predictions []Prediction `json:"predictions"`
}

// TopNResponse answers /v1/topn.
type TopNResponse struct {
	Tenant  string `json:"tenant"`
	Version uint64 `json:"version"`
	Row     int    `json:"row"`
	Items   []int  `json:"items"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// maxPredictCells caps one predict request's cell list.
const maxPredictCells = 4096

// Handler returns the service's HTTP routes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/predict", s.handlePredictGet)
	mux.HandleFunc("GET /v1/topn", s.handleTopN)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps service errors onto HTTP statuses; rejections that
// carry a retry hint gain a Retry-After header (whole seconds, rounded
// up, at least 1).
func writeError(w http.ResponseWriter, err error) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		secs := int64((ra.after + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, errTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, errDraining), errors.Is(err, errQuarantined), errors.Is(err, errStoreUnavailable):
		status = http.StatusServiceUnavailable
	case errors.Is(err, errQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, errNoModel):
		status = http.StatusConflict
	case errors.Is(err, errNotFound):
		status = http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader stops a hostile stream at the transport;
	// decodeRequest re-checks the decoded length so direct callers get
	// the same boundary.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errTooLarge, err))
		return
	}
	req, err := decodeRequest(body, s.cfg.MaxBodyBytes)
	if err != nil {
		s.metrics.addCounter(mRejected, label("reason", reasonInvalid), 1)
		writeError(w, err)
		return
	}
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		if !validIdemKey(key) {
			s.metrics.addCounter(mRejected, label("reason", reasonInvalid), 1)
			writeError(w, fmt.Errorf("service: bad Idempotency-Key (want 1-64 chars of [A-Za-z0-9._:-])"))
			return
		}
		req.idemKey = key
	}
	info, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	if info.Deduped {
		w.Header().Set("Idempotency-Replayed", "true")
		writeJSON(w, http.StatusOK, info)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, fmt.Errorf("service: bad job id %q", r.PathValue("id")))
		return
	}
	info, err := s.Job(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// snapshotFor loads the serving snapshot for a tenant or reports the
// request error.
func (s *Service) snapshotFor(tenant string) (*Snapshot, error) {
	if !validTenant(tenant) {
		return nil, fmt.Errorf("service: bad tenant %q", tenant)
	}
	snap := s.Snapshot(tenant)
	if snap == nil {
		return nil, fmt.Errorf("%w: tenant %q has no serving model", errNotFound, tenant)
	}
	return snap, nil
}

// requestContext applies the configured per-request deadline to a
// serving request's context.
func (s *Service) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// predictCells answers a cell list from one snapshot, checking the
// request deadline periodically so a slow batch cannot outlive its
// context.
func (s *Service) predictCells(ctx context.Context, snap *Snapshot, tenant string, cells [][2]int) (*PredictResponse, error) {
	resp := &PredictResponse{
		Tenant:      tenant,
		Version:     snap.Version,
		Predictions: make([]Prediction, 0, len(cells)),
	}
	for i, c := range cells {
		if i%128 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("service: predict: %w", err)
			}
		}
		iv, err := snap.Pred.PredictInterval(c[0], c[1])
		if err != nil {
			return nil, err
		}
		resp.Predictions = append(resp.Predictions, Prediction{
			Row: c[0], Col: c[1], Lo: iv.Lo, Hi: iv.Hi, Mid: iv.Mid(),
		})
	}
	s.metrics.addCounter(mPredicts, "", 1)
	s.metrics.addCounter(mPredCells, "", float64(len(cells)))
	return resp, nil
}

func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errTooLarge, err))
		return
	}
	var req PredictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, fmt.Errorf("service: bad predict request: %w", err))
		return
	}
	if len(req.Cells) == 0 || len(req.Cells) > maxPredictCells {
		writeError(w, fmt.Errorf("service: predict wants 1..%d cells, got %d", maxPredictCells, len(req.Cells)))
		return
	}
	snap, err := s.snapshotFor(req.Tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, err := s.predictCells(ctx, snap, req.Tenant, req.Cells)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// intParam parses one required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("service: bad %s %q", name, v)
	}
	return n, nil
}

func (s *Service) handlePredictGet(w http.ResponseWriter, r *http.Request) {
	row, err := intParam(r, "row")
	if err != nil {
		writeError(w, err)
		return
	}
	col, err := intParam(r, "col")
	if err != nil {
		writeError(w, err)
		return
	}
	tenant := r.URL.Query().Get("tenant")
	snap, err := s.snapshotFor(tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, err := s.predictCells(ctx, snap, tenant, [][2]int{{row, col}})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleTopN(w http.ResponseWriter, r *http.Request) {
	row, err := intParam(r, "row")
	if err != nil {
		writeError(w, err)
		return
	}
	n, err := intParam(r, "n")
	if err != nil {
		writeError(w, err)
		return
	}
	if n < 0 || n > maxPredictCells {
		writeError(w, fmt.Errorf("service: topn wants 0..%d items, got %d", maxPredictCells, n))
		return
	}
	exclude := map[int]bool{}
	if raw := r.URL.Query().Get("exclude"); raw != "" {
		for _, f := range strings.Split(raw, ",") {
			j, err := strconv.Atoi(f)
			if err != nil {
				writeError(w, fmt.Errorf("service: bad exclude entry %q", f))
				return
			}
			exclude[j] = true
		}
	}
	tenant := r.URL.Query().Get("tenant")
	snap, err := s.snapshotFor(tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	if err := ctx.Err(); err != nil {
		writeError(w, fmt.Errorf("service: topn: %w", err))
		return
	}
	items, err := snap.Pred.TopN(row, n, exclude)
	if err != nil {
		writeError(w, err)
		return
	}
	s.metrics.addCounter(mPredicts, "", 1)
	writeJSON(w, http.StatusOK, TopNResponse{
		Tenant: tenant, Version: snap.Version, Row: row, Items: items,
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.metrics.write(w)
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// readyBody answers /readyz: distinct from /healthz, it reports whether
// the server is accepting mutations at full capability — not draining,
// store breaker not open, which tenants are quarantined, and each
// serving model's numerical health.
type readyBody struct {
	Status      string                  `json:"status"`
	Breaker     string                  `json:"breaker,omitempty"`
	Quarantined []string                `json:"quarantined,omitempty"`
	Health      map[string]tenantHealth `json:"health,omitempty"`
}

// tenantHealth is the /readyz rendering of core.Health for one tenant's
// serving snapshot.
type tenantHealth struct {
	ResidualBudgetUsed  float64 `json:"residualBudgetUsed"`
	OrthoDrift          float64 `json:"orthoDrift"`
	Cond                float64 `json:"cond"`
	UpdatesSinceRefresh int     `json:"updatesSinceRefresh"`
	Refreshes           int     `json:"refreshes,omitempty"`
	Redecomposes        int     `json:"redecomposes,omitempty"`
	LastEscalation      string  `json:"lastEscalation,omitempty"`
}

func (s *Service) handleReady(w http.ResponseWriter, _ *http.Request) {
	now := s.cfg.Clock()
	s.mu.Lock()
	draining := s.draining
	storeOK := true
	body := readyBody{}
	if s.store != nil && s.brk != nil {
		storeOK, _ = s.brk.allowAdmit(now)
		body.Breaker = s.brk.state.String()
	}
	snaps := make(map[string]*Snapshot)
	for name, meta := range s.tenants {
		if ok, _ := meta.quar.check(now); !ok {
			body.Quarantined = append(body.Quarantined, name)
		}
		if snap := meta.store.load(); snap != nil {
			snaps[name] = snap
		}
	}
	s.mu.Unlock()
	for name, snap := range snaps {
		h := snap.Decomp.Health()
		if !h.Updatable {
			continue
		}
		if body.Health == nil {
			body.Health = make(map[string]tenantHealth, len(snaps))
		}
		body.Health[name] = tenantHealth{
			ResidualBudgetUsed:  h.ResidualBudgetUsed,
			OrthoDrift:          h.OrthoDrift,
			Cond:                h.Cond,
			UpdatesSinceRefresh: h.UpdatesSinceRefresh,
			Refreshes:           h.Refreshes,
			Redecomposes:        h.Redecomposes,
			LastEscalation:      h.LastEscalation,
		}
	}
	sort.Strings(body.Quarantined)
	status := http.StatusOK
	body.Status = "ready"
	switch {
	case draining:
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	case !storeOK:
		body.Status = "store_open"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}
