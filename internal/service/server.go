package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// HTTP API of the batched decomposition service (cmd/ivmfd):
//
//	POST /v1/jobs              submit a job (Request envelope) → 202 JobInfo
//	GET  /v1/jobs/{id}         job status → JobInfo
//	POST /v1/predict           batch predictions from one snapshot → PredictResponse
//	GET  /v1/predict           single-cell variant (?tenant=&row=&col=)
//	GET  /v1/topn              top-N columns for a row (?tenant=&row=&n=&exclude=1,2)
//	GET  /metrics              Prometheus text exposition
//	GET  /healthz              200 serving / 503 draining
//
// Every prediction response is computed from exactly one atomically
// loaded snapshot and reports its version, so concurrent model swaps
// never produce torn reads.

// PredictRequest is the POST /v1/predict body.
type PredictRequest struct {
	Tenant string   `json:"tenant"`
	Cells  [][2]int `json:"cells"` // [row, col] pairs
}

// Prediction is one predicted cell.
type Prediction struct {
	Row int     `json:"row"`
	Col int     `json:"col"`
	Lo  float64 `json:"lo"`
	Hi  float64 `json:"hi"`
	Mid float64 `json:"mid"`
}

// PredictResponse answers /v1/predict; all cells come from the single
// snapshot identified by Version.
type PredictResponse struct {
	Tenant      string       `json:"tenant"`
	Version     uint64       `json:"version"`
	Predictions []Prediction `json:"predictions"`
}

// TopNResponse answers /v1/topn.
type TopNResponse struct {
	Tenant  string `json:"tenant"`
	Version uint64 `json:"version"`
	Row     int    `json:"row"`
	Items   []int  `json:"items"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// maxPredictCells caps one predict request's cell list.
const maxPredictCells = 4096

// Handler returns the service's HTTP routes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/predict", s.handlePredictGet)
	mux.HandleFunc("GET /v1/topn", s.handleTopN)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps service errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, errTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, errDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, errQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, errNoModel):
		status = http.StatusConflict
	case errors.Is(err, errNotFound):
		status = http.StatusNotFound
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader stops a hostile stream at the transport;
	// decodeRequest re-checks the decoded length so direct callers get
	// the same boundary.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errTooLarge, err))
		return
	}
	req, err := decodeRequest(body, s.cfg.MaxBodyBytes)
	if err != nil {
		s.metrics.addCounter(mRejected, label("reason", reasonInvalid), 1)
		writeError(w, err)
		return
	}
	info, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, fmt.Errorf("service: bad job id %q", r.PathValue("id")))
		return
	}
	info, err := s.Job(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// snapshotFor loads the serving snapshot for a tenant or reports the
// request error.
func (s *Service) snapshotFor(tenant string) (*Snapshot, error) {
	if !validTenant(tenant) {
		return nil, fmt.Errorf("service: bad tenant %q", tenant)
	}
	snap := s.Snapshot(tenant)
	if snap == nil {
		return nil, fmt.Errorf("%w: tenant %q has no serving model", errNotFound, tenant)
	}
	return snap, nil
}

// predictCells answers a cell list from one snapshot.
func (s *Service) predictCells(snap *Snapshot, tenant string, cells [][2]int) (*PredictResponse, error) {
	resp := &PredictResponse{
		Tenant:      tenant,
		Version:     snap.Version,
		Predictions: make([]Prediction, 0, len(cells)),
	}
	for _, c := range cells {
		iv, err := snap.Pred.PredictInterval(c[0], c[1])
		if err != nil {
			return nil, err
		}
		resp.Predictions = append(resp.Predictions, Prediction{
			Row: c[0], Col: c[1], Lo: iv.Lo, Hi: iv.Hi, Mid: iv.Mid(),
		})
	}
	s.metrics.addCounter(mPredicts, "", 1)
	s.metrics.addCounter(mPredCells, "", float64(len(cells)))
	return resp, nil
}

func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errTooLarge, err))
		return
	}
	var req PredictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, fmt.Errorf("service: bad predict request: %w", err))
		return
	}
	if len(req.Cells) == 0 || len(req.Cells) > maxPredictCells {
		writeError(w, fmt.Errorf("service: predict wants 1..%d cells, got %d", maxPredictCells, len(req.Cells)))
		return
	}
	snap, err := s.snapshotFor(req.Tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.predictCells(snap, req.Tenant, req.Cells)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// intParam parses one required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("service: bad %s %q", name, v)
	}
	return n, nil
}

func (s *Service) handlePredictGet(w http.ResponseWriter, r *http.Request) {
	row, err := intParam(r, "row")
	if err != nil {
		writeError(w, err)
		return
	}
	col, err := intParam(r, "col")
	if err != nil {
		writeError(w, err)
		return
	}
	tenant := r.URL.Query().Get("tenant")
	snap, err := s.snapshotFor(tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.predictCells(snap, tenant, [][2]int{{row, col}})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleTopN(w http.ResponseWriter, r *http.Request) {
	row, err := intParam(r, "row")
	if err != nil {
		writeError(w, err)
		return
	}
	n, err := intParam(r, "n")
	if err != nil {
		writeError(w, err)
		return
	}
	if n < 0 || n > maxPredictCells {
		writeError(w, fmt.Errorf("service: topn wants 0..%d items, got %d", maxPredictCells, n))
		return
	}
	exclude := map[int]bool{}
	if raw := r.URL.Query().Get("exclude"); raw != "" {
		for _, f := range strings.Split(raw, ",") {
			j, err := strconv.Atoi(f)
			if err != nil {
				writeError(w, fmt.Errorf("service: bad exclude entry %q", f))
				return
			}
			exclude[j] = true
		}
	}
	tenant := r.URL.Query().Get("tenant")
	snap, err := s.snapshotFor(tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	items, err := snap.Pred.TopN(row, n, exclude)
	if err != nil {
		writeError(w, err)
		return
	}
	s.metrics.addCounter(mPredicts, "", 1)
	writeJSON(w, http.StatusOK, TopNResponse{
		Tenant: tenant, Version: snap.Version, Row: row, Items: items,
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.metrics.write(w)
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}
