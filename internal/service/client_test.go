package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryDelay pins the backoff schedule: exponential doubling from
// base, equal-jitter, capped at max, and never below a server-sent
// Retry-After hint.
func TestRetryDelay(t *testing.T) {
	const (
		base = 50 * time.Millisecond
		max  = 2 * time.Second
	)
	cases := []struct {
		name       string
		attempt    int
		retryAfter time.Duration
		jitter     float64
		want       time.Duration
	}{
		{"first-no-jitter", 1, 0, 0, 25 * time.Millisecond},
		{"first-mid-jitter", 1, 0, 0.5, 37500 * time.Microsecond},
		{"first-full-jitter", 1, 0, 1, 50 * time.Millisecond},
		{"second-doubles", 2, 0, 0, 50 * time.Millisecond},
		{"third-doubles-again", 3, 0, 1, 200 * time.Millisecond},
		{"capped-at-max", 10, 0, 1, max},
		{"retry-after-wins", 1, 5 * time.Second, 0, 5 * time.Second},
		{"retry-after-below-backoff", 3, 10 * time.Millisecond, 1, 200 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := retryDelay(tc.attempt, base, max, tc.retryAfter, tc.jitter)
			if got != tc.want {
				t.Fatalf("retryDelay(%d, ra=%v, j=%v) = %v, want %v",
					tc.attempt, tc.retryAfter, tc.jitter, got, tc.want)
			}
		})
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0}, {"abc", 0}, {"-1", 0}, {"1.5", 0},
		{"0", 0}, {"3", 3 * time.Second}, {"120", 2 * time.Minute},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.header); got != tc.want {
			t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// flakyHandler fails the first n requests with status, then succeeds.
type flakyHandler struct {
	fails      atomic.Int64
	n          int64
	status     int
	retryAfter string
	keys       chan string
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.keys != nil {
		select {
		case h.keys <- r.Header.Get("Idempotency-Key"):
		default:
		}
	}
	if h.fails.Add(1) <= h.n {
		if h.retryAfter != "" {
			w.Header().Set("Retry-After", h.retryAfter)
		}
		http.Error(w, `{"error":"busy"}`, h.status)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	w.Write([]byte(`{"id":7,"state":"pending"}`))
}

func fastRetryClient(base string, attempts int) *Client {
	return &Client{Base: base, Retry: &RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        1,
	}}
}

// TestClientRetriesKeyedSubmit: a submit carrying an Idempotency-Key is
// safe to retry — the client must absorb 429/503 responses, resend the
// same key every attempt, and count the retries.
func TestClientRetriesKeyedSubmit(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		h := &flakyHandler{n: 2, status: status, keys: make(chan string, 8)}
		srv := httptest.NewServer(h)
		c := fastRetryClient(srv.URL, 5)
		info, err := c.SubmitIdem(context.Background(), Request{Tenant: "t", Kind: "update"}, "job:1")
		srv.Close()
		if err != nil {
			t.Fatalf("status %d: SubmitIdem: %v", status, err)
		}
		if info.ID != 7 {
			t.Fatalf("status %d: info = %+v", status, info)
		}
		if got := c.Retries(); got != 2 {
			t.Fatalf("status %d: Retries() = %d, want 2", status, got)
		}
		close(h.keys)
		var sent int
		for k := range h.keys {
			sent++
			if k != "job:1" {
				t.Fatalf("attempt %d sent Idempotency-Key %q", sent, k)
			}
		}
		if sent != 3 {
			t.Fatalf("server saw %d attempts, want 3", sent)
		}
	}
}

// TestClientDoesNotRetryUnkeyedSubmit: without an Idempotency-Key a
// POST /v1/jobs is not known to be idempotent, so a 503 must surface
// immediately rather than risk duplicate execution.
func TestClientDoesNotRetryUnkeyedSubmit(t *testing.T) {
	h := &flakyHandler{n: 1 << 30, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := fastRetryClient(srv.URL, 5)
	if _, err := c.Submit(context.Background(), Request{Tenant: "t", Kind: "update"}); err == nil {
		t.Fatal("unkeyed Submit swallowed a 503")
	}
	if got := h.fails.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want exactly 1", got)
	}
	if got := c.Retries(); got != 0 {
		t.Fatalf("Retries() = %d, want 0", got)
	}
}

// TestClientRetriesReads: GETs are always idempotent and retried.
func TestClientRetriesReads(t *testing.T) {
	mux := http.NewServeMux()
	var polls atomic.Int64
	mux.HandleFunc("/v1/jobs/7", func(w http.ResponseWriter, r *http.Request) {
		if polls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"id":7,"state":"done"}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := fastRetryClient(srv.URL, 5)
	info, err := c.Job(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != JobDone || polls.Load() != 2 {
		t.Fatalf("info %+v after %d polls", info, polls.Load())
	}
}

// TestClientHonorsContext: cancellation interrupts the backoff wait
// instead of sleeping it out.
func TestClientHonorsContext(t *testing.T) {
	h := &flakyHandler{n: 1 << 30, status: http.StatusServiceUnavailable, retryAfter: "3600"}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := fastRetryClient(srv.URL, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.SubmitIdem(ctx, Request{Tenant: "t", Kind: "update"}, "k")
	if err == nil {
		t.Fatal("cancelled submit succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("client slept %v through a cancelled context", elapsed)
	}
}
