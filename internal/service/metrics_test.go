package service

import (
	"strings"
	"testing"
)

func TestRegistryWriteDeterministic(t *testing.T) {
	r := newServiceRegistry()
	r.addCounter(mAdmitted, label("kind", "decompose"), 1)
	r.addCounter(mAdmitted, label("kind", "update"), 3)
	r.setGauge(mQueueDepth, label("tenant", "t1"), 2)
	r.observe(mJobLatency, label("kind", "update"), 0.25)
	r.observe(mJobLatency, label("kind", "update"), 0.5)
	r.observe(mJobLatency, label("kind", "update"), 99) // beyond all buckets

	var a, b strings.Builder
	if err := r.write(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.write(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of the same state differ")
	}

	out := a.String()
	for _, want := range []string{
		"# HELP ivmfd_jobs_admitted_total Jobs admitted into the queues, by kind.",
		"# TYPE ivmfd_jobs_admitted_total counter",
		`ivmfd_jobs_admitted_total{kind="decompose"} 1`,
		`ivmfd_jobs_admitted_total{kind="update"} 3`,
		`ivmfd_queue_depth{tenant="t1"} 2`,
		"# TYPE ivmfd_job_latency_seconds histogram",
		// Buckets render cumulatively: 0.25 lands in le=0.25, 0.5 in
		// le=0.5, and 99 only in +Inf.
		`ivmfd_job_latency_seconds_bucket{kind="update",le="0.1"} 0`,
		`ivmfd_job_latency_seconds_bucket{kind="update",le="0.25"} 1`,
		`ivmfd_job_latency_seconds_bucket{kind="update",le="0.5"} 2`,
		`ivmfd_job_latency_seconds_bucket{kind="update",le="10"} 2`,
		`ivmfd_job_latency_seconds_bucket{kind="update",le="+Inf"} 3`,
		`ivmfd_job_latency_seconds_sum{kind="update"} 99.75`,
		`ivmfd_job_latency_seconds_count{kind="update"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition is missing %q\n%s", want, out)
		}
	}

	// Families render in sorted order regardless of registration order.
	if strings.Index(out, "ivmfd_batches_scheduled_total") > strings.Index(out, "ivmfd_queue_depth") {
		t.Error("metric families are not sorted")
	}

	if got := r.snapshotCounter(mAdmitted, label("kind", "update")); got != 3 {
		t.Errorf("snapshotCounter = %g, want 3", got)
	}
}

func TestRegistryDescribeIdempotent(t *testing.T) {
	r := newRegistry()
	r.describe("x_total", "counter", "first")
	r.describe("x_total", "counter", "second") // no-op
	r.addCounter("x_total", "", 1)
	var sb strings.Builder
	if err := r.write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# HELP x_total first\n") {
		t.Errorf("re-describe overwrote metadata:\n%s", sb.String())
	}
	if strings.Count(sb.String(), "# HELP x_total") != 1 {
		t.Errorf("family rendered more than once:\n%s", sb.String())
	}
}

func TestRegistryUnknownTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("describe accepted an unknown metric type")
		}
	}()
	newRegistry().describe("x", "summary", "unsupported")
}

func TestLabel(t *testing.T) {
	if got := label("", "ignored"); got != "" {
		t.Errorf("empty key: %q", got)
	}
	if got := label("kind", "update"); got != `kind="update"` {
		t.Errorf("label = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("label accepted a value that needs escaping")
		}
	}()
	label("k", `a"b`)
}
