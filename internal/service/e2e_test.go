package service

// End-to-end test over a real HTTP round trip: an in-process ivmfd
// serves a base decomposition plus a three-delta stream, and every
// served prediction must match the offline DecomposeSparse + Update
// chain bitwise — the service is a transport around the library, never
// a different numerical path.

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sparse"
)

func TestServiceEndToEnd(t *testing.T) {
	const (
		rows, cols = 40, 25
		rank       = 8
		nDeltas    = 3
		tenant     = "ml-e2e"
	)
	m := testMatrix(t, 29, rows, cols, 0.3)
	base, deltas, err := dataset.StreamSplit(m, 0.25, nDeltas, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	baseCSR, err := sparse.FromICOO(rows, cols, base)
	if err != nil {
		t.Fatal(err)
	}
	probes := probeCells(rows, cols, 10, 31)
	want := offlineChain(t, baseCSR, deltas,
		core.Options{Rank: rank, Target: core.TargetB}, 1, 5, probes)

	s := New(Config{})
	s.Start()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Drain(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := &Client{Base: srv.URL}

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	// checkState compares served predictions against one offline state.
	checkState := func(stage int, wantVersion uint64) {
		t.Helper()
		resp, err := c.Predict(ctx, tenant, probes)
		if err != nil {
			t.Fatalf("stage %d predict: %v", stage, err)
		}
		if resp.Version != wantVersion {
			t.Fatalf("stage %d served version %d, want %d", stage, resp.Version, wantVersion)
		}
		for ci, p := range resp.Predictions {
			exp := want[stage][ci]
			if p.Row != probes[ci][0] || p.Col != probes[ci][1] {
				t.Fatalf("stage %d cell %d echoed (%d,%d), want %v", stage, ci, p.Row, p.Col, probes[ci])
			}
			if p.Lo != exp.Lo || p.Hi != exp.Hi || p.Mid != exp.Mid() {
				t.Errorf("stage %d cell %v: served [%v,%v] mid %v, offline [%v,%v] mid %v",
					stage, probes[ci], p.Lo, p.Hi, p.Mid, exp.Lo, exp.Hi, exp.Mid())
			}
		}
	}

	// Base decomposition.
	info, err := c.Submit(ctx, Request{
		Tenant: tenant, Kind: "decompose", Method: "ISVD4",
		Rank: rank, Target: "b", Min: 1, Max: 5, COO: cooText(t, baseCSR),
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != JobQueued || info.ID == 0 {
		t.Fatalf("submit returned %+v", info)
	}
	if info, err = c.WaitJob(ctx, info.ID, time.Millisecond); err != nil || info.State != JobDone {
		t.Fatalf("decompose job ended %+v (err %v)", info, err)
	}
	checkState(0, 1)

	// Delta stream, one at a time so the versions step with the offline
	// chain (waiting between submissions also means no coalescing).
	for k, patch := range deltas {
		info, err := c.Submit(ctx, Request{
			Tenant: tenant, Kind: "update", Delta: deltaText(t, rows, cols, patch),
		})
		if err != nil {
			t.Fatalf("delta %d: %v", k, err)
		}
		if info, err = c.WaitJob(ctx, info.ID, time.Millisecond); err != nil || info.State != JobDone {
			t.Fatalf("delta %d job ended %+v (err %v)", k, info, err)
		}
		checkState(k+1, uint64(k+2))
	}

	// TopN rides the same snapshot machinery.
	topn, err := c.TopN(ctx, tenant, probes[0][0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if topn.Version != uint64(1+nDeltas) || len(topn.Items) != 5 {
		t.Fatalf("topn = %+v", topn)
	}
	snap := s.Snapshot(tenant)
	wantTop, err := snap.Pred.TopN(probes[0][0], 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantTop {
		if topn.Items[i] != wantTop[i] {
			t.Fatalf("topn items %v, want %v", topn.Items, wantTop)
		}
	}

	// Metrics expose the lifecycle counters.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`ivmfd_jobs_admitted_total{kind="decompose"} 1`,
		`ivmfd_jobs_admitted_total{kind="update"} 3`,
		`ivmfd_jobs_completed_total{kind="update"} 3`,
		`ivmfd_snapshot_version{tenant="ml-e2e"} 4`,
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServerErrorMapping(t *testing.T) {
	s := New(Config{MaxBodyBytes: 1 << 16})
	s.Start()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Drain(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := &Client{Base: srv.URL}

	wantStatus := func(err error, status int) {
		t.Helper()
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != status {
			t.Fatalf("err = %v, want HTTP %d", err, status)
		}
	}

	// Unknown tenant and unknown job are 404s.
	_, err := c.Predict(ctx, "ghost", [][2]int{{0, 0}})
	wantStatus(err, http.StatusNotFound)
	_, err = c.Job(ctx, 999)
	wantStatus(err, http.StatusNotFound)

	// Malformed envelope is a 400.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"tenant":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit: HTTP %d, want 400", resp.StatusCode)
	}

	// A body past MaxBodyBytes is a 413.
	huge := `{"tenant":"t","kind":"decompose","coo":"` + strings.Repeat("0", 1<<17) + `"}`
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("huge submit: HTTP %d, want 413", resp.StatusCode)
	}

	// Updates without a model are 409s.
	_, err = c.Submit(ctx, Request{Tenant: "ghost", Kind: "update", Delta: "1,1\n0,0,1\n"})
	wantStatus(err, http.StatusConflict)

	// Predict cell-count bounds.
	_, err = c.Predict(ctx, "ghost", nil)
	wantStatus(err, http.StatusBadRequest)
	_, err = c.Predict(ctx, "ghost", make([][2]int, maxPredictCells+1))
	wantStatus(err, http.StatusBadRequest)

	// Bad query parameters on the GET endpoints.
	for _, path := range []string{
		"/v1/predict?tenant=t&row=x&col=0",
		"/v1/topn?tenant=t&row=0&n=-1",
		"/v1/topn?tenant=t&row=0&n=3&exclude=1,zap",
		"/v1/jobs/notanumber",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", path, resp.StatusCode)
		}
	}

	// Drain flips /healthz to 503 and submissions to 503.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	wantStatus(c.Health(ctx), http.StatusServiceUnavailable)
	_, err = c.Submit(ctx, Request{Tenant: "t", Kind: "decompose", COO: "1,1\n0,0,1\n"})
	wantStatus(err, http.StatusServiceUnavailable)
}

func TestServePredictGet(t *testing.T) {
	const rows, cols = 10, 8
	m := testMatrix(t, 13, rows, cols, 0.5)
	s := New(Config{})
	s.Start()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Drain(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := &Client{Base: srv.URL}
	info, err := c.Submit(ctx, Request{Tenant: "g", Kind: "decompose", Rank: 3, Target: "b",
		Min: 1, Max: 5, COO: cooText(t, m)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, info.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// GET single-cell predict agrees with the POST batch endpoint.
	resp, err := http.Get(srv.URL + "/v1/predict?tenant=g&row=2&col=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET predict: HTTP %d", resp.StatusCode)
	}
	batch, err := c.Predict(ctx, "g", [][2]int{{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var single PredictResponse
	if err := decodeBody(resp, &single); err != nil {
		t.Fatal(err)
	}
	if len(single.Predictions) != 1 || single.Predictions[0] != batch.Predictions[0] {
		t.Fatalf("GET predict %+v, POST predict %+v", single.Predictions, batch.Predictions)
	}
}
