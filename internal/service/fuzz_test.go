package service

// Fuzz coverage for the job-envelope decoder: JSON envelope plus the
// embedded COO/delta payloads. Properties checked: decodeRequest never
// panics, hostile sizes are rejected before any payload parsing, and
// anything accepted satisfies the admission invariants the rest of the
// service relies on.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/service/sched"
	"repro/internal/sparse"
	"repro/internal/store"
)

func FuzzServiceRequest(f *testing.F) {
	seeds := []string{
		// Well-formed decompose and update envelopes.
		`{"tenant":"ml-1","kind":"decompose","coo":"2,2\n0,0,1\n1,1,2..3\n"}`,
		`{"tenant":"ml-1","kind":"decompose","method":"ISVD2","rank":2,"target":"b","solver":"truncated","min":1,"max":5,"coo":"3,3\n0,0,1\n1,1,2\n2,2,3\n"}`,
		`{"tenant":"t.x-9_","kind":"update","refresh":"always","refreshBudget":0.5,"workers":2,"delta":"4,3\n0,1,4\n3,2,1..2\n"}`,
		// Structural breakage.
		``, `{`, `[]`, `null`, `0`, `"x"`,
		`{"tenant":"t","kind":"decompose","coo":"1,1\n0,0,1\n"} {"again":1}`,
		`{"tenant":"t","kind":"decompose","unknown":true}`,
		// Boundary abuse: huge declared dimensions in a tiny body, junk
		// payload text, out-of-range records, misordered intervals.
		`{"tenant":"t","kind":"decompose","coo":"999999999,999999999\n0,0,1\n"}`,
		`{"tenant":"t","kind":"update","delta":"-3,2\n0,0,1\n"}`,
		`{"tenant":"t","kind":"decompose","coo":"2,2\n7,7,1\n"}`,
		`{"tenant":"t","kind":"decompose","coo":"2,2\n0,0,5..1\n"}`,
		`{"tenant":"t","kind":"decompose","coo":"not a matrix"}`,
		// Knob abuse.
		`{"tenant":"t","kind":"decompose","rank":-5,"coo":"1,1\n0,0,1\n"}`,
		`{"tenant":"t","kind":"decompose","method":"ISVD7","coo":"1,1\n0,0,1\n"}`,
		`{"tenant":"../etc","kind":"decompose","coo":"1,1\n0,0,1\n"}`,
		`{"tenant":"` + strings.Repeat("a", 80) + `","kind":"decompose","coo":"1,1\n0,0,1\n"}`,
		`{"tenant":"t","kind":"update","refresh":"maybe","delta":"1,1\n0,0,1\n"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		const maxBytes = 1 << 16
		jr, err := decodeRequest([]byte(in), maxBytes)
		if len(in) > maxBytes {
			if !errors.Is(err, errTooLarge) {
				t.Fatalf("oversized body (%d bytes) not rejected with errTooLarge: %v", len(in), err)
			}
			return
		}
		if err != nil {
			return
		}
		// Accepted envelope: every admission invariant holds.
		if !validTenant(jr.tenant) {
			t.Fatalf("accepted tenant %q outside the grammar", jr.tenant)
		}
		switch jr.kind {
		case sched.Decompose:
			if jr.base == nil || jr.base.NNZ() == 0 {
				t.Fatal("accepted decompose without payload cells")
			}
			if jr.base.Rows <= 0 || jr.base.Cols <= 0 {
				t.Fatalf("accepted decompose with shape %dx%d", jr.base.Rows, jr.base.Cols)
			}
			if len(jr.patch) != 0 {
				t.Fatal("decompose request carries a patch")
			}
		case sched.Update:
			if len(jr.patch) == 0 {
				t.Fatal("accepted update without patch cells")
			}
			if jr.patchRows <= 0 || jr.patchCols <= 0 {
				t.Fatalf("accepted update with shape %dx%d", jr.patchRows, jr.patchCols)
			}
			for _, p := range jr.patch {
				if p.Row < 0 || p.Row >= jr.patchRows || p.Col < 0 || p.Col >= jr.patchCols {
					t.Fatalf("accepted out-of-range patch cell (%d,%d) in %dx%d", p.Row, p.Col, jr.patchRows, jr.patchCols)
				}
				if p.Lo > p.Hi {
					t.Fatalf("accepted misordered patch interval [%g,%g]", p.Lo, p.Hi)
				}
			}
		default:
			t.Fatalf("accepted unknown kind %v", jr.kind)
		}
		if jr.workers < 0 || jr.refreshBudget < 0 {
			t.Fatalf("accepted negative knobs: workers=%d refreshBudget=%g", jr.workers, jr.refreshBudget)
		}
	})
}

// FuzzIdempotencyKey fuzzes the Idempotency-Key admission rule against
// the store's persistence bound: any key the server accepts must fit
// the on-disk formats and round-trip bit-exactly through a WAL record,
// and the grammar must hold exactly (no control bytes, no spaces, no
// over-length keys slip through).
func FuzzIdempotencyKey(f *testing.F) {
	f.Add("a")
	f.Add("tenant:job:1")
	f.Add("boot.2026-08-07_00")
	f.Add(strings.Repeat("k", store.MaxIdemKeyLen))
	f.Add(strings.Repeat("k", store.MaxIdemKeyLen+1))
	f.Add("")
	f.Add("bad key")
	f.Add("ключ")
	f.Add("nul\x00byte")
	f.Add("newline\nkey")
	f.Fuzz(func(t *testing.T, key string) {
		ok := validIdemKey(key)
		if !ok {
			return
		}
		if len(key) < 1 || len(key) > store.MaxIdemKeyLen {
			t.Fatalf("accepted key of length %d", len(key))
		}
		for i := 0; i < len(key); i++ {
			c := key[i]
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
				c == '.', c == '_', c == ':', c == '-':
			default:
				t.Fatalf("accepted key with byte %q", c)
			}
		}
		// Every accepted key must persist: encode a WAL record that acks
		// it and decode it back unchanged.
		rec := &store.WALRecord{
			Seq: 1, JobID: 2,
			Acked: []store.IdemAck{{JobID: 2, Key: key}},
			Delta: core.Delta{Patch: []sparse.ITriplet{{Row: 0, Col: 0, Lo: 1, Hi: 2}}},
		}
		data, err := store.EncodeWALRecord(rec)
		if err != nil {
			t.Fatalf("accepted key %q does not encode: %v", key, err)
		}
		got, err := store.DecodeWALRecord(data)
		if err != nil {
			t.Fatalf("key %q: decode: %v", key, err)
		}
		if len(got.Acked) != 1 || got.Acked[0] != rec.Acked[0] {
			t.Fatalf("key %q round-tripped as %+v", key, got.Acked)
		}
	})
}
