package service

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/sparse"
)

// leakCheck snapshots the goroutine count; the returned func fails the
// test if, after a grace period for asynchronous teardown, more
// goroutines are alive than before — with full stack dumps so the
// leaker is identifiable. Use as the FIRST defer so it runs after every
// other cleanup:
//
//	defer leakCheck(t)()
//	... Start / Drain / Shutdown / Close ...
func leakCheck(tb testing.TB) func() {
	before := runtime.NumGoroutine()
	return func() {
		if tb.Failed() {
			return // don't pile a leak report on top of the real failure
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				sz := runtime.Stack(buf, true)
				tb.Fatalf("goroutine leak: %d before, %d after\n%s", before, n, buf[:sz])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// decodeBody drains one JSON response body.
func decodeBody(resp *http.Response, out any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// testMatrix builds a small deterministic interval ratings matrix with
// strictly positive endpoints (so every ISVD method admits updates) and
// at least one observation in every row and column.
func testMatrix(tb testing.TB, seed int64, rows, cols int, density float64) *sparse.ICSR {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	var ts []sparse.ITriplet
	seen := make(map[[2]int]bool)
	add := func(i, j int) {
		if seen[[2]int{i, j}] {
			return
		}
		seen[[2]int{i, j}] = true
		mid := 1 + 4*rng.Float64()
		w := 0.3 * rng.Float64()
		ts = append(ts, sparse.ITriplet{Row: i, Col: j, Lo: mid - w, Hi: mid + w})
	}
	for i := 0; i < rows; i++ {
		add(i, i%cols)
	}
	for j := 0; j < cols; j++ {
		add(j%rows, j)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				add(i, j)
			}
		}
	}
	m, err := sparse.FromICOO(rows, cols, ts)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// cooText renders a matrix as the interval-COO payload of a decompose
// request.
func cooText(tb testing.TB, m *sparse.ICSR) string {
	tb.Helper()
	var sb strings.Builder
	if err := dataset.WriteIntervalCOO(&sb, m); err != nil {
		tb.Fatal(err)
	}
	return sb.String()
}

// deltaText renders a cell patch as the delta-COO payload of an update
// request.
func deltaText(tb testing.TB, rows, cols int, ts []sparse.ITriplet) string {
	tb.Helper()
	var sb strings.Builder
	if err := dataset.WriteDeltaCOO(&sb, rows, cols, ts); err != nil {
		tb.Fatal(err)
	}
	return sb.String()
}

// submitEnvelope pushes a Request through the same decode path the HTTP
// handler uses, then into Submit.
func submitEnvelope(s *Service, req Request) (JobInfo, error) {
	return submitEnvelopeIdem(s, req, "")
}

// submitEnvelopeIdem is submitEnvelope carrying an Idempotency-Key, the
// way the HTTP handler attaches it after validation.
func submitEnvelopeIdem(s *Service, req Request, key string) (JobInfo, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return JobInfo{}, err
	}
	jr, err := decodeRequest(data, s.cfg.MaxBodyBytes)
	if err != nil {
		return JobInfo{}, err
	}
	jr.idemKey = key
	return s.Submit(jr)
}

func mustSubmit(tb testing.TB, s *Service, req Request) JobInfo {
	tb.Helper()
	info, err := submitEnvelope(s, req)
	if err != nil {
		tb.Fatal(err)
	}
	return info
}

// waitJob polls a job until it terminates, failing the test on a
// JobFailed outcome.
func waitJob(tb testing.TB, s *Service, id uint64) JobInfo {
	tb.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		info, err := s.Job(id)
		if err != nil {
			tb.Fatal(err)
		}
		switch info.State {
		case JobDone:
			return info
		case JobFailed:
			tb.Fatalf("job %d failed: %s", id, info.Error)
		}
		time.Sleep(time.Millisecond)
	}
	tb.Fatalf("job %d did not finish", id)
	return JobInfo{}
}
