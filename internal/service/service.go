// Package service is the batched decomposition serving tier: a
// long-running server that admits decomposition and update jobs into
// per-tenant queues (payloads resident as O(NNZ) sparse matrices, never
// dense), schedules them across the shared worker pool in cost-budgeted
// batches (internal/service/sched — admission prices decompositions at
// NNZ×rank and updates at delta-NNZ×rank), and serves predictions from
// immutable factor-backed snapshots that swap atomically on job
// completion. The update path rides core's incremental factor engine,
// so arriving deltas cost O(delta), and because update states are
// functional the previous snapshot keeps serving — without locks —
// while its successor is being built: zero-downtime model refresh.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/recommend"
	"repro/internal/service/sched"
	"repro/internal/sparse"
	"repro/internal/store"
)

// Config tunes a Service. The zero value serves with the documented
// defaults.
type Config struct {
	// Budget is the scheduler's per-round cost budget in admission
	// units (NNZ×rank). 0 means DefaultBudget; negative degenerates to
	// one job per round.
	Budget int64
	// MaxBodyBytes caps request bodies; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxQueue caps pending jobs per tenant; 0 means DefaultMaxQueue.
	MaxQueue int
	// Workers is the default per-job pool bound when a request does not
	// set its own (0 = the shared pool default).
	Workers int
	// Clock is the injected time source (admission stamps, latency
	// accounting); nil means time.Now. The scheduler itself never reads
	// it — batches are a pure function of the queue snapshot.
	Clock func() time.Time

	// DataDir roots the crash-safe model store. When set (via Open),
	// every job's result is made durable — snapshot for a decompose,
	// fsynced write-ahead record for an update — before the job is
	// acknowledged, and boot recovers all tenants from disk. Empty
	// disables persistence.
	DataDir string
	// CompactEvery bounds a tenant's write-ahead log: at this many
	// records the executor folds the log into a fresh snapshot
	// generation. 0 means DefaultCompactEvery; negative disables
	// compaction.
	CompactEvery int
	// PersistRetries is how many times a failed store write is retried
	// before the job fails; PersistBackoff is the initial retry delay,
	// doubling per attempt. Zero values mean the defaults.
	PersistRetries int
	PersistBackoff time.Duration
	// StoreFS overrides the store's filesystem (fault-injection tests);
	// nil means the real OS filesystem.
	StoreFS store.FS

	// Resilience knobs. Zero values mean the documented defaults;
	// negative values disable the mechanism.

	// DeadlineBase, DeadlinePerCost, and DeadlineMax bound a unit's
	// execution time at base + perCost×cost, capped at max, under the
	// injected clock/timer. A unit past its deadline fails (the tenant's
	// previous snapshot keeps serving); DeadlineBase < 0 disables
	// deadlines.
	DeadlineBase    time.Duration
	DeadlinePerCost time.Duration
	DeadlineMax     time.Duration
	// QuarantineAfter quarantines a tenant after this many consecutive
	// failed execution units; QuarantineCooldown is the first rejection
	// period (doubling per re-trip, capped). QuarantineAfter < 0
	// disables quarantine.
	QuarantineAfter    int
	QuarantineCooldown time.Duration
	// BreakerThreshold trips the store circuit breaker after this many
	// consecutive exhausted persist operations; BreakerCooldown is the
	// first open period. BreakerThreshold < 0 disables the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxPendingBytes caps the estimated resident payload bytes across
	// all queued jobs; admission past it rejects with 429/Retry-After.
	// < 0 disables the budget.
	MaxPendingBytes int64
	// RetryAfterHint is the Retry-After value attached to queue- and
	// byte-budget rejections (quarantine/breaker rejections report their
	// actual remaining cooldown).
	RetryAfterHint time.Duration
	// RequestTimeout bounds predict/topn request handling; < 0 disables
	// the per-request deadline.
	RequestTimeout time.Duration
	// After is the injected deadline timer (nil = time.After); Sleep is
	// the injected persist-backoff sleeper (nil = time.Sleep). Tests
	// inject both to make timing paths deterministic.
	After func(time.Duration) <-chan time.Time
	Sleep func(time.Duration)
}

// Service defaults.
const (
	DefaultBudget       = int64(1) << 22 // ~4M cost units per round
	DefaultMaxBodyBytes = int64(16) << 20
	DefaultMaxQueue     = 64

	// DefaultDeadlineBase/PerCost/Max bound unit execution time.
	DefaultDeadlineBase    = 2 * time.Minute
	DefaultDeadlinePerCost = 2 * time.Microsecond
	DefaultDeadlineMax     = 15 * time.Minute
	// DefaultMaxPendingBytes caps resident queued payloads.
	DefaultMaxPendingBytes = int64(256) << 20
	// DefaultRetryAfterHint is the backpressure retry hint.
	DefaultRetryAfterHint = time.Second
	// DefaultRequestTimeout bounds predict/topn handling.
	DefaultRequestTimeout = 30 * time.Second
)

func (c Config) withDefaults() Config {
	if c.Budget == 0 {
		c.Budget = DefaultBudget
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = DefaultCompactEvery
	}
	if c.PersistRetries == 0 {
		c.PersistRetries = DefaultPersistRetries
	}
	if c.PersistRetries < 0 {
		c.PersistRetries = 0
	}
	if c.PersistBackoff <= 0 {
		c.PersistBackoff = DefaultPersistBackoff
	}
	if c.DeadlineBase == 0 {
		c.DeadlineBase = DefaultDeadlineBase
	}
	if c.DeadlinePerCost == 0 {
		c.DeadlinePerCost = DefaultDeadlinePerCost
	}
	if c.DeadlineMax <= 0 {
		c.DeadlineMax = DefaultDeadlineMax
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = DefaultQuarantineAfter
	}
	if c.QuarantineCooldown <= 0 {
		c.QuarantineCooldown = DefaultQuarantineCooldown
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.MaxPendingBytes == 0 {
		c.MaxPendingBytes = DefaultMaxPendingBytes
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = DefaultRetryAfterHint
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.After == nil {
		c.After = time.After
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobInfo is the externally visible job status.
type JobInfo struct {
	ID      uint64   `json:"id"`
	Tenant  string   `json:"tenant"`
	Kind    string   `json:"kind"`
	State   JobState `json:"state"`
	Cost    int64    `json:"cost"`
	Error   string   `json:"error,omitempty"`
	Version uint64   `json:"version,omitempty"` // snapshot the job published
	// LatencyMs is admission→completion wall time, set on done/failed.
	LatencyMs float64 `json:"latencyMs,omitempty"`
	// Deduped reports that this response replays an earlier admission
	// acknowledged under the same Idempotency-Key — no new job was
	// created.
	Deduped bool `json:"deduped,omitempty"`
}

// jobRecord is the service-side job ledger entry: scheduling identity,
// payload, and status.
type jobRecord struct {
	job   sched.Job
	req   *jobRequest
	bytes int64 // payload estimate charged against MaxPendingBytes
	info  JobInfo
}

// tenantMeta is what admission remembers about a tenant's model before
// the decomposition has even run: the declared shape and rank admit and
// price subsequent updates without waiting for the model.
type tenantMeta struct {
	rows, cols int
	rank       int
	store      *snapStore
	quar       quarantine
}

// Service is the batched decomposition service. Create with New, start
// the executor with Start, stop with Drain.
type Service struct {
	cfg     Config
	metrics *registry
	store   *store.Store // nil unless built by Open with a DataDir

	mu       sync.Mutex
	pending  []sched.Job
	jobs     map[uint64]*jobRecord
	tenants  map[string]*tenantMeta
	seq      uint64
	draining bool
	// pendingBytes is the estimated resident payload total of queued
	// jobs; idem maps tenant\x00key to the acknowledged job ID; brk is
	// the store circuit breaker (nil when disabled or storeless);
	// quarCount tracks the quarantined-tenants gauge.
	pendingBytes int64
	idem         map[string]uint64
	brk          *breaker
	quarCount    int

	fpMu       sync.Mutex
	failpoints map[string][]*armedFailpoint

	wake     chan struct{}
	loopDone chan struct{}
	started  bool
}

// New builds a Service with the given configuration.
func New(cfg Config) *Service {
	s := &Service{
		cfg:      cfg.withDefaults(),
		metrics:  newServiceRegistry(),
		jobs:     make(map[uint64]*jobRecord),
		tenants:  make(map[string]*tenantMeta),
		idem:     make(map[string]uint64),
		wake:     make(chan struct{}, 1),
		loopDone: make(chan struct{}),
	}
	if s.cfg.BreakerThreshold > 0 {
		s.brk = newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown)
	}
	return s
}

// Start launches the executor loop. It must be called exactly once.
func (s *Service) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("service: Start called twice")
	}
	s.started = true
	s.mu.Unlock()
	go s.loop()
}

// Drain stops admission (new submissions fail with errDraining / HTTP
// 503), lets every already-admitted job run to completion, and returns
// when the executor has exited or ctx is done. No admitted job is ever
// dropped.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	started := s.started
	s.mu.Unlock()
	s.signalWake()
	if !started {
		return nil
	}
	select {
	case <-s.loopDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether the service has begun shutting down.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Service) signalWake() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// rejection reasons for the rejected-jobs counter.
const (
	reasonDraining    = "draining"
	reasonQueueFull   = "queue_full"
	reasonByteBudget  = "byte_budget"
	reasonQuarantined = "quarantined"
	reasonStoreOpen   = "store_open"
	reasonNoModel     = "no_model"
	reasonShape       = "shape_mismatch"
	reasonInvalid     = "invalid"
)

// newTenantMeta builds a tenant's admission record with its quarantine
// initialized from the service configuration.
func (s *Service) newTenantMeta() *tenantMeta {
	return &tenantMeta{
		store: &snapStore{},
		quar:  newQuarantine(s.cfg.QuarantineAfter, s.cfg.QuarantineCooldown),
	}
}

// idemMapKey scopes an idempotency key to its tenant; NUL cannot appear
// in either per the admission grammars.
func idemMapKey(tenant, key string) string { return tenant + "\x00" + key }

func (s *Service) reject(reason string, err error) (JobInfo, error) {
	s.metrics.addCounter(mRejected, label("reason", reason), 1)
	return JobInfo{}, err
}

// Submit admits a decoded job request: prices it, appends it to the
// tenant's queue, and wakes the executor. It returns the queued job's
// info or the admission error. A request whose idempotency key matches
// an already-acknowledged admission replays that job's info (Deduped
// set) instead of creating a new job — even while draining or
// quarantined, so client retries converge.
func (s *Service) Submit(req *jobRequest) (JobInfo, error) {
	now := s.cfg.Clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.idemKey != "" {
		if id, ok := s.idem[idemMapKey(req.tenant, req.idemKey)]; ok {
			if rec := s.jobs[id]; rec != nil {
				info := rec.info
				info.Deduped = true
				s.metrics.addCounter(mResIdemReplays, "", 1)
				return info, nil
			}
		}
	}
	if s.draining {
		return s.reject(reasonDraining, errDraining)
	}
	meta := s.tenants[req.tenant]
	if meta != nil && s.cfg.QuarantineAfter > 0 {
		if ok, after := meta.quar.check(now); !ok {
			return s.reject(reasonQuarantined, withRetryAfter(
				fmt.Errorf("%w: tenant %q is failing jobs", errQuarantined, req.tenant), after))
		}
	}
	if s.store != nil && s.brk != nil {
		if ok, after := s.brk.allowAdmit(now); !ok {
			return s.reject(reasonStoreOpen, withRetryAfter(
				fmt.Errorf("%w: circuit open after consecutive persist failures", errStoreUnavailable), after))
		}
	}
	depth := 0
	for _, j := range s.pending {
		if j.Tenant == req.tenant {
			depth++
		}
	}
	if depth >= s.cfg.MaxQueue {
		return s.reject(reasonQueueFull, withRetryAfter(
			fmt.Errorf("%w: %d pending jobs for %q", errQueueFull, depth, req.tenant), s.cfg.RetryAfterHint))
	}
	if s.cfg.MaxPendingBytes > 0 && s.pendingBytes > 0 && s.pendingBytes+req.bytes > s.cfg.MaxPendingBytes {
		return s.reject(reasonByteBudget, withRetryAfter(
			fmt.Errorf("%w: %d resident payload bytes", errQueueFull, s.pendingBytes), s.cfg.RetryAfterHint))
	}

	var cost int64
	switch req.kind {
	case sched.Decompose:
		rank := req.opts.Rank
		if maxRank := min(req.base.Rows, req.base.Cols); rank <= 0 || rank > maxRank {
			rank = maxRank
		}
		cost = int64(req.base.NNZ()) * int64(rank)
		if meta == nil {
			meta = s.newTenantMeta()
			s.tenants[req.tenant] = meta
		}
		// Updates admitted after this job are judged against the new
		// declared shape, whether or not the decomposition has run yet.
		meta.rows, meta.cols, meta.rank = req.base.Rows, req.base.Cols, rank
	case sched.Update:
		if meta == nil {
			return s.reject(reasonNoModel, fmt.Errorf("%w: %q (submit a decompose job first)", errNoModel, req.tenant))
		}
		if req.patchRows != meta.rows || req.patchCols != meta.cols {
			return s.reject(reasonShape, fmt.Errorf("service: delta header %dx%d does not match model %dx%d",
				req.patchRows, req.patchCols, meta.rows, meta.cols))
		}
		cost = int64(len(req.patch)+len(req.unpatch)) * int64(meta.rank)
		if cost < 1 {
			// A forget-only update still decays every retained cell.
			cost = int64(meta.rank)
		}
	}
	if cost < 1 {
		cost = 1
	}
	if s.cfg.QuarantineAfter > 0 && meta.quar.claimProbe(now) {
		// This admission is the quarantined tenant's single probe job.
		s.metrics.addCounter(mResQuarTrans, label("event", "probe"), 1)
	}

	s.seq++
	job := sched.Job{
		ID:     s.seq,
		Seq:    s.seq,
		Tenant: req.tenant,
		Kind:   req.kind,
		Cost:   cost,
		// Forget-carrying updates never coalesce: λ-decay does not
		// commute with the last-wins cell merge (a cell patched before
		// the decay and one patched after end up at different values), so
		// such a job runs as its own unit, in admission order.
		Coalescable: req.kind == sched.Update && req.forget == 0,
		Submitted:   now,
	}
	rec := &jobRecord{job: job, req: req, bytes: req.bytes, info: JobInfo{
		ID: job.ID, Tenant: job.Tenant, Kind: job.Kind.String(),
		State: JobQueued, Cost: cost,
	}}
	s.jobs[job.ID] = rec
	s.pending = append(s.pending, job)
	s.pendingBytes += req.bytes
	if req.idemKey != "" {
		s.idem[idemMapKey(req.tenant, req.idemKey)] = job.ID
	}
	s.metrics.addCounter(mAdmitted, label("kind", job.Kind.String()), 1)
	s.metrics.setGauge(mQueueDepth, label("tenant", job.Tenant), float64(depth+1))
	info := rec.info
	s.signalWake()
	return info, nil
}

// Job returns the status of a job by ID.
func (s *Service) Job(id uint64) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("%w: job %d", errNotFound, id)
	}
	return rec.info, nil
}

// Snapshot returns the tenant's current serving snapshot, or nil when
// the tenant has no completed model.
func (s *Service) Snapshot(tenant string) *Snapshot {
	s.mu.Lock()
	meta := s.tenants[tenant]
	s.mu.Unlock()
	if meta == nil {
		return nil
	}
	return meta.store.load()
}

// loop is the executor: it snapshots the queue, schedules one batch,
// executes its units in order, and repeats; on drain it exits once the
// queue is empty. Jobs execute one unit at a time — each decomposition
// or update is internally parallel on the shared pool — so per-tenant
// ordering is trivially preserved.
func (s *Service) loop() {
	defer close(s.loopDone)
	for {
		s.mu.Lock()
		pending := make([]sched.Job, len(s.pending))
		copy(pending, s.pending)
		draining := s.draining
		s.mu.Unlock()

		if len(pending) == 0 {
			if draining {
				return
			}
			<-s.wake
			continue
		}
		batch := sched.Schedule(pending, s.cfg.Budget)
		s.metrics.addCounter(mBatches, "", 1)
		for _, unit := range batch.Units {
			s.execUnit(unit)
		}
	}
}

// finish records a unit's outcome for all its jobs and removes them
// from the queue. Outcomes feed the tenant's quarantine: any failure
// except a store outage (the breaker's domain, not the tenant's fault)
// counts toward tripping it, and a success clears it.
func (s *Service) finish(unit sched.Unit, version uint64, err error) {
	now := s.cfg.Clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	done := make(map[uint64]bool, len(unit.Jobs))
	for _, j := range unit.Jobs {
		done[j.ID] = true
		rec := s.jobs[j.ID]
		rec.info.LatencyMs = now.Sub(j.Submitted).Seconds() * 1e3
		kind := label("kind", j.Kind.String())
		if err != nil {
			rec.info.State = JobFailed
			rec.info.Error = err.Error()
			s.metrics.addCounter(mFailed, kind, 1)
		} else {
			rec.info.State = JobDone
			rec.info.Version = version
			s.metrics.addCounter(mCompleted, kind, 1)
		}
		s.pendingBytes -= rec.bytes
		rec.bytes = 0
		rec.req = nil // payload is no longer needed; release the memory
		s.metrics.observe(mJobLatency, kind, now.Sub(j.Submitted).Seconds())
	}
	kept := s.pending[:0]
	depth := 0
	for _, j := range s.pending {
		if !done[j.ID] {
			kept = append(kept, j)
			if j.Tenant == unit.Tenant {
				depth++
			}
		}
	}
	s.pending = kept
	s.metrics.setGauge(mQueueDepth, label("tenant", unit.Tenant), float64(depth))
	if err == nil {
		s.metrics.setGauge(mSnapVer, label("tenant", unit.Tenant), float64(version))
	}
	if meta := s.tenants[unit.Tenant]; meta != nil && s.cfg.QuarantineAfter > 0 {
		switch {
		case err == nil:
			if meta.quar.onSuccess() {
				s.quarCount--
				s.metrics.addCounter(mResQuarTrans, label("event", "cleared"), 1)
			}
		case errors.Is(err, errStoreUnavailable):
			// A store outage is not the tenant's fault; the probe slot
			// reopens without re-tripping.
			meta.quar.probing = false
		default:
			wasActive := meta.quar.active
			if meta.quar.onFailure(now) {
				if !wasActive {
					s.quarCount++
				}
				s.metrics.addCounter(mResQuarTrans, label("event", "tripped"), 1)
			}
		}
		s.metrics.setGauge(mResQuarantined, "", float64(s.quarCount))
	}
}

// execUnit runs one scheduled unit to completion and publishes the
// resulting snapshot. The unit runs under a recover guard and a
// cost-proportional deadline; with the store breaker open it fails
// fast instead of queueing behind a dead disk.
func (s *Service) execUnit(unit sched.Unit) {
	now := s.cfg.Clock()
	s.mu.Lock()
	reqs := make([]*jobRequest, len(unit.Jobs))
	for i, j := range unit.Jobs {
		rec := s.jobs[j.ID]
		rec.info.State = JobRunning
		reqs[i] = rec.req
	}
	meta := s.tenants[unit.Tenant]
	brkOK := true
	if s.store != nil && s.brk != nil {
		prev := s.brk.state
		brkOK = s.brk.allowExec(now)
		s.noteBreakerState(prev)
	}
	s.mu.Unlock()
	if !brkOK {
		s.finish(unit, 0, fmt.Errorf("%w: circuit open, failing fast", errStoreUnavailable))
		return
	}
	if len(unit.Jobs) > 1 {
		s.metrics.addCounter(mCoalesced, "", float64(len(unit.Jobs)-1))
	}

	version, err := s.runGuarded(unit, reqs, meta)
	s.finish(unit, version, err)
}

// noteBreakerState emits breaker metrics after a possible transition;
// the caller holds s.mu and passes the state before the mutation.
func (s *Service) noteBreakerState(prev breakerState) {
	if s.brk.state != prev {
		s.metrics.addCounter(mResBreakerTrans, label("to", s.brk.state.String()), 1)
	}
	s.metrics.setGauge(mResBreaker, "", float64(s.brk.state))
}

// noteStoreOutcome feeds one finished persist operation (after retries)
// into the circuit breaker.
func (s *Service) noteStoreOutcome(failed bool) {
	if s.brk == nil {
		return
	}
	now := s.cfg.Clock()
	s.mu.Lock()
	prev := s.brk.state
	if failed {
		s.brk.onFailure(now)
	} else {
		s.brk.onSuccess()
	}
	s.noteBreakerState(prev)
	s.mu.Unlock()
}

// unitResult carries a guarded unit's outcome across the goroutine
// boundary.
type unitResult struct {
	version uint64
	err     error
}

// runGuarded executes the unit in its own goroutine with a recover
// guard and a cost-proportional deadline. A panic fails only this unit;
// a deadline overrun abandons it — the claimed flag guarantees an
// abandoned unit can never persist or publish, so the ledger and the
// durable chain never diverge. If publication already began when the
// timer fires, the guard waits for it instead: a result that may reach
// disk must also reach the ledger.
func (s *Service) runGuarded(unit sched.Unit, reqs []*jobRequest, meta *tenantMeta) (uint64, error) {
	claimed := new(atomic.Bool)
	done := make(chan unitResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.metrics.addCounter(mResPanics, label("tenant", unit.Tenant), 1)
				done <- unitResult{err: fmt.Errorf("%w: %v", errPanic, r)}
			}
		}()
		if err := s.failpoint(FailExec, unit.Tenant); err != nil {
			done <- unitResult{err: err}
			return
		}
		v, err := s.runUnit(unit, reqs, meta, claimed)
		done <- unitResult{version: v, err: err}
	}()
	limit := unitDeadline(s.cfg.DeadlineBase, s.cfg.DeadlinePerCost, unit.Cost, s.cfg.DeadlineMax)
	var timeout <-chan time.Time
	if limit > 0 {
		timeout = s.cfg.After(limit)
	}
	select {
	case res := <-done:
		return res.version, res.err
	case <-timeout:
		if claimed.CompareAndSwap(false, true) {
			// The unit never reached its publication point; abandon it.
			// The goroutine may keep computing but can never persist a
			// record or swap a snapshot.
			s.metrics.addCounter(mResDeadline, label("tenant", unit.Tenant), 1)
			return 0, fmt.Errorf("%w: %s unit over %v", errDeadline, unit.Tenant, limit)
		}
		res := <-done
		return res.version, res.err
	}
}

// runUnit executes the unit's work: a decomposition, or a (possibly
// coalesced) update run against the tenant's current snapshot. The
// claimed flag is the publication gate shared with the deadline guard:
// runUnit must win the claim before anything persists or publishes, so
// an abandoned unit leaves no durable or served trace.
func (s *Service) runUnit(unit sched.Unit, reqs []*jobRequest, meta *tenantMeta, claimed *atomic.Bool) (uint64, error) {
	prev := meta.store.load()
	var prevVersion uint64
	if prev != nil {
		prevVersion = prev.Version
	}

	switch unit.Jobs[0].Kind {
	case sched.Decompose:
		req := reqs[0]
		opts := req.opts
		opts.Updatable = true
		if opts.Workers == 0 {
			opts.Workers = s.cfg.Workers
		}
		d, err := core.DecomposeSparse(req.base, req.method, opts)
		if err != nil {
			return 0, err
		}
		pred, err := recommend.FromSparseDecomposition(d, req.min, req.max)
		if err != nil {
			return 0, err
		}
		next := &Snapshot{
			Version: prevVersion + 1,
			JobID:   unit.Jobs[0].ID,
			Pred:    pred,
			Decomp:  d,
			Rows:    req.base.Rows,
			Cols:    req.base.Cols,
			Rank:    d.Rank,
		}
		if !claimed.CompareAndSwap(false, true) {
			return 0, fmt.Errorf("%w: result discarded", errDeadline)
		}
		if s.store != nil {
			// Durability before acknowledgement: the snapshot reaches
			// disk (fsync + atomic rename) before the job can report
			// done or the model serve. On failure nothing is published.
			err := s.persistSnapshot(unit.Tenant, d, store.SnapshotMeta{
				Seq: next.Version, JobID: next.JobID,
				MinRating: req.min, MaxRating: req.max,
				IdemKey: req.idemKey,
			})
			if err != nil {
				return 0, err
			}
		}
		meta.store.swap(next)
		s.publishHealth(unit.Tenant, core.Health{}, d.Health())
		return next.Version, nil

	case sched.Update:
		if prev == nil {
			return 0, fmt.Errorf("service: tenant %q has no completed model to update", unit.Tenant)
		}
		// Coalesced jobs merge into one batch with last-wins set
		// semantics per cell — a later job's patch overwrites an earlier
		// patch or tombstone of the same cell, and a later tombstone
		// overwrites an earlier patch. The merge is deterministic: jobs
		// in admission order, first-touch cell order. Forget-carrying
		// jobs are never coalesced (see Submit), so λ belongs to the
		// unit's single job when set.
		last := reqs[len(reqs)-1]
		type cellOp struct {
			t    sparse.ITriplet
			tomb bool
		}
		ops := make([]cellOp, 0, len(reqs[0].patch)+len(reqs[0].unpatch))
		at := make(map[[2]int]int)
		place := func(key [2]int, op cellOp) {
			if i, ok := at[key]; ok {
				ops[i] = op
				return
			}
			at[key] = len(ops)
			ops = append(ops, op)
		}
		for _, req := range reqs {
			for _, t := range req.patch {
				place([2]int{t.Row, t.Col}, cellOp{t: t})
			}
			for _, c := range req.unpatch {
				place([2]int{c.Row, c.Col}, cellOp{t: sparse.ITriplet{Row: c.Row, Col: c.Col}, tomb: true})
			}
		}
		delta := core.Delta{Forget: last.forget}
		for _, op := range ops {
			if op.tomb {
				delta.Unpatch = append(delta.Unpatch, sparse.Cell{Row: op.t.Row, Col: op.t.Col})
			} else {
				delta.Patch = append(delta.Patch, op.t)
			}
		}
		opts := core.Options{
			Refresh:       last.refresh,
			RefreshBudget: last.refreshBudget,
			OrthoBudget:   last.orthoBudget,
			Workers:       last.workers,
		}
		if opts.Workers == 0 {
			opts.Workers = s.cfg.Workers
		}
		prevHealth := prev.Decomp.Health()
		d2, err := prev.Decomp.Update(delta, opts)
		if err != nil {
			return 0, err
		}
		pred, err := recommend.FromSparseDecomposition(d2, prev.Pred.Min, prev.Pred.Max)
		if err != nil {
			return 0, err
		}
		next := &Snapshot{
			Version: prevVersion + 1,
			JobID:   unit.Jobs[len(unit.Jobs)-1].ID,
			Pred:    pred,
			Decomp:  d2,
			Rows:    prev.Rows,
			Cols:    prev.Cols,
			Rank:    prev.Rank,
		}
		if !claimed.CompareAndSwap(false, true) {
			return 0, fmt.Errorf("%w: result discarded", errDeadline)
		}
		if s.store != nil {
			// The merged delta and the policies that shaped d2 go to the
			// write-ahead log (fsynced) before the job can be
			// acknowledged; replay re-derives d2 bitwise from them —
			// including any guardrail escalation, which reads only the
			// persisted inputs. The record also carries every coalesced
			// job's idempotency key, so a restarted server still dedupes
			// their retries.
			var acked []store.IdemAck
			for i, req := range reqs {
				if req.idemKey != "" {
					acked = append(acked, store.IdemAck{JobID: unit.Jobs[i].ID, Key: req.idemKey})
				}
			}
			err := s.persistUpdate(unit.Tenant, next, &store.WALRecord{
				Seq: next.Version, JobID: next.JobID,
				Refresh: opts.Refresh, RefreshBudget: opts.RefreshBudget,
				OrthoBudget: opts.OrthoBudget,
				Acked:       acked,
				Delta:       delta,
			})
			if err != nil {
				return 0, err
			}
		}
		meta.store.swap(next)
		s.publishHealth(unit.Tenant, prevHealth, d2.Health())
		return next.Version, nil
	}
	return 0, fmt.Errorf("service: unknown job kind")
}

// publishHealth exports one tenant's model-health report after a
// snapshot swap: the measured gauges verbatim, and the escalation
// counters as deltas against the pre-update report (the chain's
// counters are cumulative; the metric families count escalations
// observed by this process).
func (s *Service) publishHealth(tenant string, prev, cur core.Health) {
	lbl := label("tenant", tenant)
	s.metrics.setGauge(mHealthResidual, lbl, cur.ResidualBudgetUsed)
	s.metrics.setGauge(mHealthOrtho, lbl, cur.OrthoDrift)
	s.metrics.setGauge(mHealthCond, lbl, cur.Cond)
	s.metrics.setGauge(mHealthSinceRefresh, lbl, float64(cur.UpdatesSinceRefresh))
	if n := cur.Refreshes - prev.Refreshes; n > 0 {
		s.metrics.addCounter(mHealthEscalations, label("level", "refresh"), float64(n))
	}
	if n := cur.Redecomposes - prev.Redecomposes; n > 0 {
		s.metrics.addCounter(mHealthEscalations, label("level", "redecompose"), float64(n))
	}
}
