package service

import (
	"errors"
	"fmt"
	"sync"
)

// Failpoints are injectable fault sites in the executor and persist
// paths — the service-layer counterpart of the store's fault-injection
// filesystem. Tests and the chaos harness (cmd/ivmfload -chaos) arm
// them to force errors, panics, or hangs at exact points; production
// code never arms any, and an unarmed site is a single mutex-guarded
// map lookup.

// Failpoint sites.
const (
	// FailExec fires in the executor goroutine before a unit runs.
	FailExec = "exec.unit"
	// FailPersist fires inside the persist retry loop before each write
	// attempt.
	FailPersist = "persist.write"
)

// FailMode is what an armed failpoint does when hit.
type FailMode int

const (
	// FailError returns an error from the site.
	FailError FailMode = iota
	// FailPanic panics at the site (exercises the recover guard).
	FailPanic
	// FailHang blocks at the site until the failpoint is released
	// (exercises deadlines and drain timeouts).
	FailHang
)

// errInjected is the default FailError error.
var errInjected = errors.New("service: injected fault")

// FailpointSpec configures one armed failpoint.
type FailpointSpec struct {
	// Tenant limits the failpoint to one tenant's jobs; empty matches
	// every tenant.
	Tenant string
	// Mode selects the fault.
	Mode FailMode
	// Count is how many hits trigger before the failpoint exhausts;
	// <= 0 means unlimited.
	Count int
	// Err overrides the FailError error.
	Err error
}

// armedFailpoint is one live failpoint.
type armedFailpoint struct {
	spec    FailpointSpec
	left    int // remaining triggers; -1 = unlimited
	release chan struct{}
}

// ArmFailpoint arms a fault at a site. The returned release function
// unblocks any goroutine hung at the failpoint and disarms it; it is
// safe to call more than once.
func (s *Service) ArmFailpoint(site string, spec FailpointSpec) (release func()) {
	fp := &armedFailpoint{spec: spec, left: spec.Count, release: make(chan struct{})}
	if spec.Count <= 0 {
		fp.left = -1
	}
	s.fpMu.Lock()
	if s.failpoints == nil {
		s.failpoints = make(map[string][]*armedFailpoint)
	}
	s.failpoints[site] = append(s.failpoints[site], fp)
	s.fpMu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() { close(fp.release) })
		s.fpMu.Lock()
		live := s.failpoints[site][:0]
		for _, f := range s.failpoints[site] {
			if f != fp {
				live = append(live, f)
			}
		}
		s.failpoints[site] = live
		s.fpMu.Unlock()
	}
}

// DisarmFailpoints releases and removes every armed failpoint.
func (s *Service) DisarmFailpoints() {
	s.fpMu.Lock()
	for _, fps := range s.failpoints {
		for _, fp := range fps {
			select {
			case <-fp.release:
			default:
				close(fp.release)
			}
		}
	}
	s.failpoints = nil
	s.fpMu.Unlock()
}

// failpoint is the site hook: it returns nil when nothing matching is
// armed, returns an error in FailError mode, panics in FailPanic mode,
// and blocks until release in FailHang mode.
func (s *Service) failpoint(site, tenant string) error {
	s.fpMu.Lock()
	var hit *armedFailpoint
	for _, fp := range s.failpoints[site] {
		if fp.spec.Tenant != "" && fp.spec.Tenant != tenant {
			continue
		}
		if fp.left == 0 {
			continue
		}
		if fp.left > 0 {
			fp.left--
		}
		hit = fp
		break
	}
	s.fpMu.Unlock()
	if hit == nil {
		return nil
	}
	switch hit.spec.Mode {
	case FailPanic:
		panic(fmt.Sprintf("failpoint %s (tenant %s)", site, tenant))
	case FailHang:
		<-hit.release
		return nil
	default:
		if hit.spec.Err != nil {
			return hit.spec.Err
		}
		return fmt.Errorf("%w at %s", errInjected, site)
	}
}
