package service

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/recommend"
	"repro/internal/store"
)

// Durability wiring: with Config.DataDir set, every published model
// state is made durable before its job is acknowledged — a decompose
// writes a full snapshot generation (atomic temp+rename), an update
// appends one fsynced record to the tenant's write-ahead log — and Open
// recovers all tenants from disk before the server starts admitting.
// The persisted chain replays bitwise-identically (core.Update is a
// pure function of persisted state, delta, and the refresh policy the
// record carries; kernel results are worker-count invariant), so a
// rebooted server serves exactly the predictions the crashed one
// acknowledged.

// Persistence defaults.
const (
	// DefaultCompactEvery folds the write-ahead log into a fresh
	// snapshot once it reaches this many records. BENCH_store.json puts
	// the replay-vs-cold crossover near 25 records in the reference
	// regime; compacting well before that keeps recovery strictly
	// cheaper than a cold boot.
	DefaultCompactEvery = 8
	// DefaultPersistRetries and DefaultPersistBackoff bound the retry
	// loop around transient store failures before a job is failed.
	DefaultPersistRetries = 3
	DefaultPersistBackoff = 25 * time.Millisecond
)

// Open builds a Service like New and, when cfg.DataDir is set, attaches
// the crash-safe model store rooted there: every persisted tenant is
// recovered (newest durable snapshot plus write-ahead log replay) into
// serving state before Open returns, and subsequent jobs are made
// durable before they are acknowledged. Call Close after draining and
// after the last prediction has been served — recovered snapshots may
// serve zero-copy from mappings Close tears down.
func Open(cfg Config) (*Service, error) {
	s := New(cfg)
	if s.cfg.DataDir == "" {
		return s, nil
	}
	st, err := store.Open(s.cfg.DataDir, store.Options{FS: s.cfg.StoreFS, OnEvent: s.storeEvent})
	if err != nil {
		return nil, err
	}
	s.store = st
	tenants, err := st.Tenants()
	if err != nil {
		_ = st.Close()
		return nil, err
	}
	for _, tenant := range tenants {
		if err := s.recoverTenant(tenant); err != nil {
			_ = st.Close()
			return nil, fmt.Errorf("service: recover %q: %w", tenant, err)
		}
	}
	return s, nil
}

// recoverTenant boots one tenant from the store. A tenant whose durable
// state is entirely unusable (all generations quarantined) boots cold:
// it must be re-decomposed, but the server still starts — corruption
// degrades, it never takes the whole tier down.
func (s *Service) recoverTenant(tenant string) error {
	rec, err := s.store.Recover(tenant)
	if errors.Is(err, store.ErrNoState) {
		s.metrics.addCounter(mStoreRecovered, label("outcome", "none"), 1)
		return nil
	}
	if err != nil {
		return err
	}
	pred, err := recommend.FromSparseDecomposition(rec.Decomp, rec.MinRating, rec.MaxRating)
	if err != nil {
		return err
	}
	rows, cols := rec.Decomp.U.Lo.Rows, rec.Decomp.V.Lo.Rows
	meta := s.newTenantMeta()
	meta.rows, meta.cols, meta.rank = rows, cols, rec.Decomp.Rank
	meta.store.swap(&Snapshot{
		Version: rec.Seq,
		JobID:   rec.JobID,
		Pred:    pred,
		Decomp:  rec.Decomp,
		Rows:    rows,
		Cols:    cols,
		Rank:    rec.Decomp.Rank,
	})
	outcome := "ok"
	if rec.Degraded {
		outcome = "degraded"
	}
	s.mu.Lock()
	s.tenants[tenant] = meta
	if rec.JobID > s.seq {
		// Job IDs appear in durable records; resuming past the highest
		// persisted one keeps (tenant, seq) -> job attribution unique
		// across restarts.
		s.seq = rec.JobID
	}
	for _, a := range rec.Acked {
		// Re-register durably acknowledged idempotency keys so a client
		// retrying across the restart replays the original ack instead
		// of re-running the job. The synthesized ledger entry answers
		// GET /v1/jobs/{id} for it; the dedupe window is bounded by
		// compaction (keys retired with an old generation are new work
		// again).
		if a.JobID > s.seq {
			s.seq = a.JobID
		}
		if _, ok := s.jobs[a.JobID]; !ok {
			s.jobs[a.JobID] = &jobRecord{info: JobInfo{
				ID: a.JobID, Tenant: tenant, Kind: "recovered", State: JobDone,
			}}
		}
		s.idem[idemMapKey(tenant, a.Key)] = a.JobID
	}
	s.mu.Unlock()
	s.metrics.addCounter(mStoreRecovered, label("outcome", outcome), 1)
	s.metrics.setGauge(mSnapVer, label("tenant", tenant), float64(rec.Seq))
	// Health counters reset with recovery (they are advisory, per-chain);
	// the measured gauges reflect the recovered factors immediately.
	s.publishHealth(tenant, core.Health{}, rec.Decomp.Health())
	return nil
}

// Close releases the model store (open log handles and snapshot
// mappings). Call it only after Drain has returned and the last
// prediction response has been written: tenants recovered zero-copy
// serve factor planes that alias mappings Close unmaps. It is safe
// without a store and safe to call twice.
func (s *Service) Close() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// storeEvent surfaces one store degradation event as a metric.
func (s *Service) storeEvent(ev store.Event) {
	s.metrics.addCounter(mStoreEvents, label("kind", ev.Kind), 1)
}

// persist runs one store write with bounded retry and exponential
// backoff: transient filesystem failures (the store repairs its log
// before reusing it) should not fail a job that can succeed a moment
// later, but retry is bounded so a dead disk fails jobs instead of
// wedging the executor. The operation's final outcome — not each
// attempt — feeds the circuit breaker, and an exhausted retry loop is
// classified errStoreUnavailable so the failure never counts against
// the tenant's quarantine.
func (s *Service) persist(op, tenant string, write func() error) error {
	backoff := s.cfg.PersistBackoff
	var err error
	for attempt := 0; ; attempt++ {
		if err = s.failpoint(FailPersist, tenant); err == nil {
			err = write()
		}
		if err == nil {
			s.metrics.addCounter(mStorePersist, label("op", op), 1)
			s.noteStoreOutcome(false)
			return nil
		}
		if attempt >= s.cfg.PersistRetries {
			s.noteStoreOutcome(true)
			return fmt.Errorf("%w: persist %s: %v", errStoreUnavailable, op, err)
		}
		s.metrics.addCounter(mStoreRetries, label("op", op), 1)
		s.cfg.Sleep(backoff)
		backoff *= 2
	}
}

// persistSnapshot durably writes a full snapshot generation for a
// freshly published state.
func (s *Service) persistSnapshot(tenant string, d *core.Decomposition, meta store.SnapshotMeta) error {
	ps, err := d.ExportState()
	if err != nil {
		return err
	}
	return s.persist("snapshot", tenant, func() error {
		return s.store.SaveSnapshot(tenant, ps, meta)
	})
}

// persistUpdate appends the update's merged delta to the tenant's
// write-ahead log (fsynced before return, so acknowledging the job
// afterwards is safe) and folds the log into a fresh snapshot once it
// reaches the compaction bound. Compaction failure is deliberately
// non-fatal: the record is already durable, so the job is acknowledged
// and compaction retries on a later update.
func (s *Service) persistUpdate(tenant string, next *Snapshot, rec *store.WALRecord) error {
	var records int
	err := s.persist("delta", tenant, func() error {
		n, err := s.store.AppendDelta(tenant, rec)
		records = n
		return err
	})
	if err != nil {
		return err
	}
	if s.cfg.CompactEvery > 0 && records >= s.cfg.CompactEvery {
		meta := store.SnapshotMeta{
			Seq: next.Version, JobID: next.JobID,
			MinRating: next.Pred.Min, MaxRating: next.Pred.Max,
		}
		// The compacted snapshot carries its publishing job's key so the
		// dedupe window survives the log it retires.
		for _, a := range rec.Acked {
			if a.JobID == next.JobID {
				meta.IdemKey = a.Key
			}
		}
		if err := s.persistSnapshot(tenant, next.Decomp, meta); err != nil {
			s.metrics.addCounter(mStoreEvents, label("kind", "compaction_deferred"), 1)
		}
	}
	return nil
}
