package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eig"
	"repro/internal/service/sched"
	"repro/internal/sparse"
	"repro/internal/store"
)

// Request is the JSON job envelope of POST /v1/jobs. The matrix payload
// rides embedded as interval-COO text (decompositions) or delta-COO
// text (updates) — the same formats cmd/datagen writes and
// dataset.ReadIntervalCOO/ReadDeltaCOO parse, so a recorded stream
// replays against the service byte-for-byte.
type Request struct {
	// Tenant names the model; [A-Za-z0-9._-], at most 64 chars,
	// excluding "." and "..".
	Tenant string `json:"tenant"`
	// Kind is "decompose" or "update".
	Kind string `json:"kind"`

	// Decompose-only knobs. Method is "ISVD0".."ISVD4"; Rank 0 means
	// full rank; Target is "a"/"b"/"c"; Solver is "auto"/"full"/
	// "truncated"; Min/Max clamp served predictions (Max <= Min
	// disables clamping).
	Method string  `json:"method,omitempty"`
	Rank   int     `json:"rank,omitempty"`
	Target string  `json:"target,omitempty"`
	Solver string  `json:"solver,omitempty"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`

	// Per-request execution knobs, valid for both kinds. Workers bounds
	// the job's pool fan-outs (0 = server default); Refresh/
	// RefreshBudget select the incremental refresh policy for updates;
	// OrthoBudget sets the orthogonality-drift guardrail (0 = engine
	// default).
	Workers       int     `json:"workers,omitempty"`
	Refresh       string  `json:"refresh,omitempty"`
	RefreshBudget float64 `json:"refreshBudget,omitempty"`
	OrthoBudget   float64 `json:"orthoBudget,omitempty"`

	// Forget is the update's sliding-window forgetting factor λ ∈
	// (0, 1]: retained history is decayed by λ before the delta's cells
	// apply. 0 (absent) and 1 both mean no decay; 1 is pinned as a
	// bitwise no-op.
	Forget float64 `json:"forget,omitempty"`

	// COO is the decompose payload: interval COO text
	// ("rows,cols" header, then "row,col,value" records).
	COO string `json:"coo,omitempty"`
	// Delta is the update payload: delta COO text in the same layout,
	// plus tombstone records ("row,col,x") that expire cells; its header
	// must match the tenant's model shape, value records are applied as
	// a cell patch (set semantics), and tombstones revert cells to
	// unobserved.
	Delta string `json:"delta,omitempty"`
}

// jobRequest is a decoded, validated envelope: payloads parsed into
// O(NNZ) sparse storage (the text is dropped), knobs resolved to their
// internal types. This is what queues reside as.
type jobRequest struct {
	tenant string
	kind   sched.Kind

	// Decompose.
	method   core.Method
	opts     core.Options // rank/target/solver/workers; Updatable set at exec
	min, max float64
	base     *sparse.ICSR

	// Update. patchRows/patchCols is the delta header shape, checked
	// against the tenant's model at admission; unpatch lists tombstoned
	// cells (their storedness is checked at execution, against the model
	// the update actually runs on).
	patch                []sparse.ITriplet
	unpatch              []sparse.Cell
	patchRows, patchCols int

	// Shared update policy.
	refresh       core.Refresh
	refreshBudget float64
	orthoBudget   float64
	forget        float64
	workers       int

	// idemKey is the submission's Idempotency-Key (empty = none);
	// bytes estimates the payload's resident size for the admission
	// byte budget.
	idemKey string
	bytes   int64
}

// Boundary errors the HTTP layer maps to status codes.
var (
	errTooLarge    = errors.New("service: request body exceeds the size limit")
	errDraining    = errors.New("service: draining, not admitting jobs")
	errQueueFull   = errors.New("service: tenant queue is full")
	errNoModel     = errors.New("service: tenant has no model")
	errNotFound    = errors.New("service: not found")
	errQuarantined = errors.New("service: tenant quarantined after consecutive job failures")
	// errStoreUnavailable classifies store-outage failures: the circuit
	// breaker's domain, never the tenant's fault.
	errStoreUnavailable = errors.New("service: model store unavailable")
	errPanic            = errors.New("service: job panicked")
	errDeadline         = errors.New("service: job deadline exceeded")
)

// retryAfterError attaches a client retry hint to a rejection; the HTTP
// layer renders it as a Retry-After header.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

func withRetryAfter(err error, after time.Duration) error {
	return &retryAfterError{err: err, after: after}
}

// tenantRE is the tenant-name grammar. Restricting names to this set
// keeps them safe as metric label values and log tokens with no
// escaping anywhere downstream.
var tenantRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// validTenant is the admission rule for tenant names: the grammar minus
// the path-traversal names "." and "..", matching store.checkTenant —
// rejecting them here keeps a decomposition for an unpersistable tenant
// from running to completion only to fail at snapshot time.
func validTenant(name string) bool {
	return name != "." && name != ".." && tenantRE.MatchString(name)
}

// idemKeyRE is the Idempotency-Key grammar: the tenant character set
// plus ':' (clients commonly build keys like "tenant:job:17"), bounded
// at store.MaxIdemKeyLen so every accepted key persists losslessly in
// the WAL/snapshot meta.
var idemKeyRE = regexp.MustCompile(`^[A-Za-z0-9._:-]{1,64}$`)

// validIdemKey is the admission rule for idempotency keys.
func validIdemKey(key string) bool {
	return len(key) <= store.MaxIdemKeyLen && idemKeyRE.MatchString(key)
}

// decodeRequest parses and validates a job envelope. maxBytes caps the
// raw body before any decoding, so a hostile size is rejected before
// allocation; the embedded COO parsers additionally cap declared matrix
// dimensions, so a small body cannot demand a huge allocation either.
// The returned jobRequest carries payloads in sparse form only.
func decodeRequest(data []byte, maxBytes int64) (*jobRequest, error) {
	if int64(len(data)) > maxBytes {
		return nil, fmt.Errorf("%w: %d bytes > %d", errTooLarge, len(data), maxBytes)
	}
	var req Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("service: bad request envelope: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("service: bad request envelope: trailing data")
	}
	return validateRequest(&req)
}

// validateRequest resolves an envelope into a jobRequest.
func validateRequest(req *Request) (*jobRequest, error) {
	if !validTenant(req.Tenant) {
		return nil, fmt.Errorf("service: bad tenant %q (want 1-64 chars of [A-Za-z0-9._-], not . or ..)", req.Tenant)
	}
	jr := &jobRequest{tenant: req.Tenant, workers: req.Workers}
	if req.Workers < 0 {
		return nil, fmt.Errorf("service: negative workers %d", req.Workers)
	}
	if req.RefreshBudget < 0 || math.IsNaN(req.RefreshBudget) || math.IsInf(req.RefreshBudget, 0) {
		return nil, fmt.Errorf("service: bad refreshBudget %g", req.RefreshBudget)
	}
	jr.refreshBudget = req.RefreshBudget
	if req.OrthoBudget < 0 || math.IsNaN(req.OrthoBudget) || math.IsInf(req.OrthoBudget, 0) {
		return nil, fmt.Errorf("service: bad orthoBudget %g", req.OrthoBudget)
	}
	jr.orthoBudget = req.OrthoBudget
	if req.Forget != 0 && !(req.Forget > 0 && req.Forget <= 1) || math.IsNaN(req.Forget) {
		return nil, fmt.Errorf("service: bad forget %g (want 0 < λ <= 1)", req.Forget)
	}
	jr.forget = req.Forget
	if req.Refresh != "" {
		r, err := core.ParseRefresh(req.Refresh)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		jr.refresh = r
	}

	switch req.Kind {
	case "decompose":
		jr.kind = sched.Decompose
		if req.Delta != "" {
			return nil, fmt.Errorf("service: decompose request carries a delta payload")
		}
		if req.Forget != 0 {
			return nil, fmt.Errorf("service: decompose request carries an update-only forget factor")
		}
		method := req.Method
		if method == "" {
			method = "ISVD4"
		}
		m, err := core.ParseMethod(method)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		jr.method = m
		if req.Rank < 0 {
			return nil, fmt.Errorf("service: negative rank %d", req.Rank)
		}
		jr.opts = core.Options{Rank: req.Rank, Workers: req.Workers}
		if req.Target != "" {
			tg, err := core.ParseTarget(req.Target)
			if err != nil {
				return nil, fmt.Errorf("service: %w", err)
			}
			jr.opts.Target = tg
		}
		if req.Solver != "" {
			sv, err := eig.ParseSolver(req.Solver)
			if err != nil {
				return nil, fmt.Errorf("service: %w", err)
			}
			jr.opts.Solver = sv
		}
		if math.IsNaN(req.Min) || math.IsInf(req.Min, 0) || math.IsNaN(req.Max) || math.IsInf(req.Max, 0) {
			return nil, fmt.Errorf("service: non-finite rating clamp [%g, %g]", req.Min, req.Max)
		}
		jr.min, jr.max = req.Min, req.Max
		base, err := dataset.ReadIntervalCOO(strings.NewReader(req.COO))
		if err != nil {
			return nil, fmt.Errorf("service: decompose payload: %w", err)
		}
		if base.NNZ() == 0 {
			return nil, fmt.Errorf("service: decompose payload has no observed cells")
		}
		jr.base = base
		// Resident estimate: per-cell CSR storage (colind + two interval
		// planes + triplet slack) plus the row pointer array.
		jr.bytes = int64(base.NNZ())*40 + int64(base.Rows+1)*8
		return jr, nil

	case "update":
		jr.kind = sched.Update
		if req.COO != "" || req.Method != "" || req.Target != "" || req.Solver != "" || req.Rank != 0 {
			return nil, fmt.Errorf("service: update request carries decompose-only fields")
		}
		// The delta parses as a free-standing batch here (its own header
		// bounds the indices, tombstone records become unpatch cells);
		// admission pins the header to the tenant's model shape, and the
		// engine itself rejects tombstones for never-inserted cells when
		// the update runs, exactly like dataset.ReadDeltaCOO.
		rows, cols, batch, err := dataset.ParseDeltaCOO(strings.NewReader(req.Delta))
		if err != nil {
			return nil, fmt.Errorf("service: update payload: %w", err)
		}
		if len(batch.Patch)+len(batch.Tombstones) == 0 && jr.forget == 0 {
			return nil, fmt.Errorf("service: update payload has no cells")
		}
		jr.patchRows, jr.patchCols = rows, cols
		// Sort exactly like dataset.ReadDeltaCOO so the served update
		// chain stays bitwise-comparable to an offline replay of the same
		// delta files.
		sort.Slice(batch.Patch, func(a, b int) bool {
			if batch.Patch[a].Row != batch.Patch[b].Row {
				return batch.Patch[a].Row < batch.Patch[b].Row
			}
			return batch.Patch[a].Col < batch.Patch[b].Col
		})
		sort.Slice(batch.Tombstones, func(a, b int) bool {
			if batch.Tombstones[a].Row != batch.Tombstones[b].Row {
				return batch.Tombstones[a].Row < batch.Tombstones[b].Row
			}
			return batch.Tombstones[a].Col < batch.Tombstones[b].Col
		})
		jr.patch = batch.Patch
		jr.unpatch = batch.Tombstones
		jr.bytes = int64(len(jr.patch))*40 + int64(len(jr.unpatch))*16
		return jr, nil

	default:
		return nil, fmt.Errorf("service: unknown job kind %q (want decompose or update)", req.Kind)
	}
}
