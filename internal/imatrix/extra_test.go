package imatrix

import (
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/matrix"
)

func TestString(t *testing.T) {
	m := New(1, 2)
	m.Set(0, 0, interval.New(1, 2))
	m.Set(0, 1, interval.Scalar(3))
	s := m.String()
	if !strings.Contains(s, "[1, 2]") || !strings.Contains(s, "3") {
		t.Fatalf("String = %q", s)
	}
}

func TestDiagConstructors(t *testing.T) {
	d := DiagFromValues([]float64{1, 2})
	if !d.At(0, 0).Equal(interval.Scalar(1)) || !d.At(1, 1).Equal(interval.Scalar(2)) {
		t.Fatal("DiagFromValues wrong")
	}
	if !d.At(0, 1).Equal(interval.Scalar(0)) {
		t.Fatal("off-diagonal not zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DiagFromEndpoints length mismatch did not panic")
		}
	}()
	DiagFromEndpoints([]float64{1}, []float64{1, 2})
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	check("FromEndpoints", func() { FromEndpoints(matrix.New(2, 2), matrix.New(2, 3)) })
	check("Mul", func() { Mul(New(2, 3), New(2, 3)) })
	check("MulEndpoints", func() { MulEndpoints(New(2, 3), New(2, 3)) })
	check("MulScalarRight", func() { MulScalarRight(New(2, 3), matrix.New(2, 2)) })
	check("MulScalarLeft", func() { MulScalarLeft(matrix.New(2, 2), New(3, 2)) })
	check("Hull", func() { Hull(New(2, 2), New(2, 3)) })
	check("InverseDiag", func() { InverseDiag(New(2, 3)) })
}

func TestContainsScalarShapeMismatch(t *testing.T) {
	if New(2, 2).ContainsScalar(matrix.New(2, 3), 0) {
		t.Fatal("shape mismatch reported as contained")
	}
}
