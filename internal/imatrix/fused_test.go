package imatrix

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// unfusedMulEndpoints is the pre-fusion reference implementation: four
// full scalar endpoint products followed by an elementwise combine. The
// fused kernels must match it bitwise at every shape, worker count, and
// tile size.
func unfusedMulEndpoints(a, b *IMatrix) *IMatrix {
	t1 := matrix.Mul(a.Lo, b.Lo)
	t2 := matrix.Mul(a.Lo, b.Hi)
	t3 := matrix.Mul(a.Hi, b.Lo)
	t4 := matrix.Mul(a.Hi, b.Hi)
	return MinMaxCombine4(t1, t2, t3, t4)
}

func unfusedScalarRight(a *IMatrix, s *matrix.Dense) *IMatrix {
	return MinMaxCombine(matrix.Mul(a.Lo, s), matrix.Mul(a.Hi, s))
}

func unfusedScalarLeft(s *matrix.Dense, a *IMatrix) *IMatrix {
	return MinMaxCombine(matrix.Mul(s, a.Lo), matrix.Mul(s, a.Hi))
}

func randomIMatrix(rng *rand.Rand, r, c int) *IMatrix {
	m := New(r, c)
	for i := range m.Lo.Data {
		if rng.Intn(6) == 0 {
			continue // keep exact zero intervals in the mix
		}
		v := rng.NormFloat64()
		m.Lo.Data[i] = v
		m.Hi.Data[i] = v + rng.Float64()
	}
	return m
}

func requireIMatrixBits(t *testing.T, label string, want, got *IMatrix) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := range want.Lo.Data {
		if math.Float64bits(want.Lo.Data[i]) != math.Float64bits(got.Lo.Data[i]) ||
			math.Float64bits(want.Hi.Data[i]) != math.Float64bits(got.Hi.Data[i]) {
			t.Fatalf("%s: element %d differs bitwise: [%v, %v] vs [%v, %v]", label, i,
				got.Lo.Data[i], got.Hi.Data[i], want.Lo.Data[i], want.Hi.Data[i])
		}
	}
}

// withFusedTiles runs fn under temporary fused-kernel tile sizes.
func withFusedTiles(ic, kc, jc int, fn func()) {
	oi, ok, oj := fusedIC, fusedKC, fusedJC
	defer func() { setFusedTiles(oi, ok, oj) }()
	setFusedTiles(ic, kc, jc)
	fn()
}

// TestFusedEndpointsBitwiseAcrossTilesAndWorkers pins the acceptance
// criterion: the fused endpoint kernels are bitwise identical to the
// unfused four-product formulation across worker counts {1, 3, 8} and
// several tile configurations, at shapes straddling the tile edges.
func TestFusedEndpointsBitwiseAcrossTilesAndWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := randomIMatrix(rng, 65, 67)
	b := randomIMatrix(rng, 67, 61)
	s := matrix.New(67, 23)
	for i := range s.Data {
		s.Data[i] = rng.NormFloat64()
	}
	sl := matrix.New(31, 65)
	for i := range sl.Data {
		sl.Data[i] = rng.NormFloat64()
	}
	wantMul := unfusedMulEndpoints(a, b)
	wantGram := unfusedMulEndpoints(a.T(), a)
	wantRight := unfusedScalarRight(a, s)
	wantLeft := unfusedScalarLeft(sl, a)
	tiles := []struct{ ic, kc, jc int }{
		{1, 1, 1},
		{3, 5, 7},
		{64, 64, 256},
	}
	for _, tc := range tiles {
		for _, workers := range []int{1, 3, 8} {
			withFusedTiles(tc.ic, tc.kc, tc.jc, func() {
				parallel.SetWorkers(workers)
				defer parallel.SetWorkers(0)
				requireIMatrixBits(t, "MulEndpoints", wantMul, MulEndpoints(a, b))
				requireIMatrixBits(t, "GramEndpoints", wantGram, GramEndpoints(a))
				requireIMatrixBits(t, "ScalarRight", wantRight, MulEndpointsScalarRight(a, s))
				requireIMatrixBits(t, "ScalarLeft", wantLeft, MulEndpointsScalarLeft(sl, a))
			})
		}
	}
}

// TestFusedEndpointsSmallShapes sweeps edge shapes (1×n, n×1, primes)
// under tiny tiles so partial panels in every dimension are exercised.
func TestFusedEndpointsSmallShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	dims := []int{1, 2, 3, 5, 8, 13}
	withFusedTiles(4, 4, 4, func() {
		for _, m := range dims {
			for _, k := range dims {
				for _, n := range dims {
					a := randomIMatrix(rng, m, k)
					b := randomIMatrix(rng, k, n)
					requireIMatrixBits(t, "MulEndpoints", unfusedMulEndpoints(a, b), MulEndpoints(a, b))
					requireIMatrixBits(t, "GramEndpoints", unfusedMulEndpoints(a.T(), a), GramEndpoints(a))
				}
			}
		}
	})
}

// TestGramEndpointsMatchesTransposedMul pins that GramEndpoints is an
// exact drop-in for the MulEndpoints(m.T(), m) call it replaced in the
// ISVD and LP pipelines.
func TestGramEndpointsMatchesTransposedMul(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := randomIMatrix(rng, 150, 73)
	requireIMatrixBits(t, "Gram", MulEndpoints(m.T(), m), GramEndpoints(m))
}

// TestMulEndpointsIntoOverwritesDst pins destination-passing semantics.
func TestMulEndpointsIntoOverwritesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	a := randomIMatrix(rng, 19, 23)
	b := randomIMatrix(rng, 23, 17)
	dst := New(19, 17)
	for i := range dst.Lo.Data {
		dst.Lo.Data[i] = math.NaN()
		dst.Hi.Data[i] = math.Inf(1)
	}
	requireIMatrixBits(t, "Into", unfusedMulEndpoints(a, b), MulEndpointsInto(dst, a, b))

	gdst := New(23, 23)
	for i := range gdst.Lo.Data {
		gdst.Lo.Data[i] = math.Inf(-1)
	}
	requireIMatrixBits(t, "GramInto", unfusedMulEndpoints(a.T(), a), GramEndpointsInto(gdst, a))
}

// TestFusedEndpointsAllocations pins the tentpole's allocation claim:
// MulEndpointsInto into a reused destination performs O(1) small
// allocations (per-shard tile scratch), never four matrix-sized
// temporaries. Run serially so the count is deterministic.
func TestFusedEndpointsAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := randomIMatrix(rng, 96, 96)
	b := randomIMatrix(rng, 96, 96)
	dst := New(96, 96)
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	allocs := testing.AllocsPerRun(10, func() {
		MulEndpointsInto(dst, a, b)
	})
	// One tile-scratch allocation per pool chunk (serial: one chunk),
	// plus closure bookkeeping. The unfused version allocated 4 full
	// matrices + 2 outputs + combine slices (10+).
	if allocs > 4 {
		t.Fatalf("MulEndpointsInto allocated %.0f objects per run, want <= 4", allocs)
	}
	gram := New(96, 96)
	allocs = testing.AllocsPerRun(10, func() {
		GramEndpointsInto(gram, a)
	})
	if allocs > 4 {
		t.Fatalf("GramEndpointsInto allocated %.0f objects per run, want <= 4", allocs)
	}
	sdst := New(96, 96)
	s := matrix.New(96, 96)
	allocs = testing.AllocsPerRun(10, func() {
		MulEndpointsScalarRightInto(sdst, a, s)
	})
	// Pool-closure bookkeeping only — no matrix-sized temporaries.
	if allocs > 4 {
		t.Fatalf("MulEndpointsScalarRightInto allocated %.0f objects per run, want <= 4", allocs)
	}
}

// TestFusedEndpointsPanics pins the shape/alias guards.
func TestFusedEndpointsPanics(t *testing.T) {
	a := New(3, 4)
	b := New(4, 5)
	for name, fn := range map[string]func(){
		"shape":     func() { MulEndpointsInto(New(3, 4), a, b) },
		"incompat":  func() { MulEndpointsInto(New(3, 3), a, New(3, 3)) },
		"aliasA":    func() { MulEndpointsInto(a, a, New(4, 3)) },
		"gramShape": func() { GramEndpointsInto(New(3, 3), a) },
		"badTile":   func() { setFusedTiles(1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
