// Package imatrix implements interval-valued matrices M† = [M*, M^*] and
// the interval matrix algebra the paper's ISVD algorithms are built on:
// interval matrix multiplication (Supplementary Algorithm 1), average
// replacement of misordered entries (Algorithms 2-3), the inverse of a
// non-negative interval-valued diagonal core matrix (Algorithm 4), and
// assorted helpers (hulls, spans, midpoint extraction).
//
//ivmf:deterministic
package imatrix

import (
	"fmt"
	"math"

	"repro/internal/interval"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// combineGrain is the elementwise grain of the parallel min/max combine
// loops: combines are memory-bound, so chunks are kept at twice the
// compute-kernel baseline (derived from parallel.Grain so retuning the
// shared chunk size propagates here).
var combineGrain = 2 * parallel.Grain(1)

// IMatrix is an n×m interval-valued matrix stored as two parallel dense
// matrices of the minimum (Lo) and maximum (Hi) endpoints.
type IMatrix struct {
	Lo, Hi *matrix.Dense
}

// New allocates a zero interval matrix of the given shape.
func New(rows, cols int) *IMatrix {
	return &IMatrix{Lo: matrix.New(rows, cols), Hi: matrix.New(rows, cols)}
}

// FromEndpoints wraps existing Lo and Hi matrices (no copy). It panics on
// shape mismatch. Lo entries are not required to be <= Hi entries: several
// intermediate ISVD states are legitimately misordered (Section 4.2.1) and
// are repaired later by AverageReplace.
func FromEndpoints(lo, hi *matrix.Dense) *IMatrix {
	if lo.Rows != hi.Rows || lo.Cols != hi.Cols {
		panic(fmt.Sprintf("imatrix: FromEndpoints: %dx%d vs %dx%d", lo.Rows, lo.Cols, hi.Rows, hi.Cols))
	}
	return &IMatrix{Lo: lo, Hi: hi}
}

// FromScalar lifts a scalar matrix to the degenerate interval matrix
// [M, M] (endpoints are copies).
func FromScalar(m *matrix.Dense) *IMatrix {
	return &IMatrix{Lo: m.Clone(), Hi: m.Clone()}
}

// Rows returns the number of rows.
func (m *IMatrix) Rows() int { return m.Lo.Rows }

// Cols returns the number of columns.
func (m *IMatrix) Cols() int { return m.Lo.Cols }

// At returns element (i, j) as an Interval.
func (m *IMatrix) At(i, j int) interval.Interval {
	return interval.Interval{Lo: m.Lo.At(i, j), Hi: m.Hi.At(i, j)}
}

// Set stores iv at element (i, j).
func (m *IMatrix) Set(i, j int, iv interval.Interval) {
	m.Lo.Set(i, j, iv.Lo)
	m.Hi.Set(i, j, iv.Hi)
}

// Clone returns a deep copy.
func (m *IMatrix) Clone() *IMatrix {
	return &IMatrix{Lo: m.Lo.Clone(), Hi: m.Hi.Clone()}
}

// T returns the transpose.
func (m *IMatrix) T() *IMatrix {
	return &IMatrix{Lo: m.Lo.T(), Hi: m.Hi.T()}
}

// Mid returns the scalar midpoint matrix (M* + M^*) / 2, the "average
// matrix" used by ISVD0 and by the interval-matrix inversion fallbacks.
func (m *IMatrix) Mid() *matrix.Dense { return matrix.Mean(m.Lo, m.Hi) }

// Row returns row i as an interval vector (copies).
func (m *IMatrix) Row(i int) interval.Vector {
	return interval.Vector{Lo: m.Lo.Row(i), Hi: m.Hi.Row(i)}
}

// Col returns column j as an interval vector (copies).
func (m *IMatrix) Col(j int) interval.Vector {
	return interval.Vector{Lo: m.Lo.Col(j), Hi: m.Hi.Col(j)}
}

// IsWellFormed reports whether every entry satisfies Lo <= Hi.
func (m *IMatrix) IsWellFormed() bool {
	for i, lo := range m.Lo.Data {
		if lo > m.Hi.Data[i] {
			return false
		}
	}
	return true
}

// MaxSpan returns the largest interval span in the matrix.
func (m *IMatrix) MaxSpan() float64 {
	mx := 0.0
	for i, lo := range m.Lo.Data {
		if s := m.Hi.Data[i] - lo; s > mx {
			mx = s
		}
	}
	return mx
}

// TotalSpan returns the sum of all interval spans — a global imprecision
// measure used by tests and ablation benchmarks.
func (m *IMatrix) TotalSpan() float64 {
	var s float64
	for i, lo := range m.Lo.Data {
		s += m.Hi.Data[i] - lo
	}
	return s
}

// AverageReplace repairs misordered entries in place: any (i, j) with
// Lo > Hi is replaced by the scalar mean of the two endpoints
// (Supplementary Algorithm 3).
func (m *IMatrix) AverageReplace() {
	for i, lo := range m.Lo.Data {
		if hi := m.Hi.Data[i]; lo > hi {
			mean := (lo + hi) / 2
			m.Lo.Data[i], m.Hi.Data[i] = mean, mean
		}
	}
}

// Mul returns the exact interval matrix product a × b defined by
// Section 2.1 of the paper: every element is the interval dot product of
// a row of a with a column of b, computed with interval addition and
// multiplication. The result is inclusion-correct: for any member scalar
// matrices A ∈ a and B ∈ b, A·B ∈ Mul(a, b).
func Mul(a, b *IMatrix) *IMatrix {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("imatrix: Mul: %dx%d · %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	n, k, m := a.Rows(), a.Cols(), b.Cols()
	out := New(n, m)
	// Row-sharded on the shared pool: ~8 flops per inner element. Each
	// output element accumulates in fixed t order within one goroutine,
	// keeping results bitwise identical for any worker count.
	parallel.For(n, parallel.Grain(8*k*m), func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			aLo := a.Lo.RowView(i)
			aHi := a.Hi.RowView(i)
			oLo := out.Lo.RowView(i)
			oHi := out.Hi.RowView(i)
			for t := 0; t < k; t++ {
				al, ah := aLo[t], aHi[t]
				bLo := b.Lo.RowView(t)
				bHi := b.Hi.RowView(t)
				for j := 0; j < m; j++ {
					bl, bh := bLo[j], bHi[j]
					p1 := al * bl
					p2 := al * bh
					p3 := ah * bl
					p4 := ah * bh
					lo := math.Min(math.Min(p1, p2), math.Min(p3, p4))
					hi := math.Max(math.Max(p1, p2), math.Max(p3, p4))
					oLo[j] += lo
					oHi[j] += hi
				}
			}
		}
	})
	return out
}

// MulEndpoints returns the approximate interval matrix product of
// Supplementary Algorithm 1: four scalar products of the endpoint
// matrices, combined elementwise by min and max. It is cheaper than Mul
// and exact when both operands are entrywise non-negative (as with the
// Gram matrices of non-negative data), but for mixed-sign operands it may
// underestimate the true product range: its result is always contained in
// Mul(a, b).
func MulEndpoints(a, b *IMatrix) *IMatrix {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("imatrix: MulEndpoints: %dx%d · %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	// Fused kernel (fused.go): the four endpoint products are computed
	// tile-by-tile and min/max-combined in place, with O(tile) scratch
	// instead of four matrix-sized temporaries plus a combine pass.
	return MulEndpointsInto(New(a.Rows(), b.Cols()), a, b)
}

// MulScalarRight returns the exact interval product a × s for a scalar
// right operand s: each term a[i,t]×s[t,j] is the interval scaled by the
// scalar, so the endpoint roles swap only where s is negative.
func MulScalarRight(a *IMatrix, s *matrix.Dense) *IMatrix {
	if a.Cols() != s.Rows {
		panic(fmt.Sprintf("imatrix: MulScalarRight: %dx%d · %dx%d", a.Rows(), a.Cols(), s.Rows, s.Cols))
	}
	// Split s into positive and negative parts: a×s = [aLo·s⁺ + aHi·s⁻,
	// aHi·s⁺ + aLo·s⁻] where s⁺ has the non-negative entries and s⁻ the
	// negative ones.
	sp, sn := splitSigns(s)
	lo := matrix.Add(matrix.Mul(a.Lo, sp), matrix.Mul(a.Hi, sn))
	hi := matrix.Add(matrix.Mul(a.Hi, sp), matrix.Mul(a.Lo, sn))
	return &IMatrix{Lo: lo, Hi: hi}
}

// MulScalarLeft returns the exact interval product s × a for a scalar
// left operand s.
func MulScalarLeft(s *matrix.Dense, a *IMatrix) *IMatrix {
	if s.Cols != a.Rows() {
		panic(fmt.Sprintf("imatrix: MulScalarLeft: %dx%d · %dx%d", s.Rows, s.Cols, a.Rows(), a.Cols()))
	}
	sp, sn := splitSigns(s)
	lo := matrix.Add(matrix.Mul(sp, a.Lo), matrix.Mul(sn, a.Hi))
	hi := matrix.Add(matrix.Mul(sp, a.Hi), matrix.Mul(sn, a.Lo))
	return &IMatrix{Lo: lo, Hi: hi}
}

// MulEndpointsScalarRight is the Algorithm 1 (endpoint) counterpart of
// MulScalarRight: with a scalar right operand the four endpoint products
// collapse to two, a.Lo·s and a.Hi·s, combined elementwise by min/max.
// This is the semantics the paper's reference implementation uses inside
// ISVD3/ISVD4, and it produces much tighter (though not inclusion-
// complete) intervals than the exact product when spans are large.
func MulEndpointsScalarRight(a *IMatrix, s *matrix.Dense) *IMatrix {
	return MulEndpointsScalarRightInto(New(a.Rows(), s.Cols), a, s)
}

// MulEndpointsScalarLeft is the endpoint counterpart of MulScalarLeft.
func MulEndpointsScalarLeft(s *matrix.Dense, a *IMatrix) *IMatrix {
	return MulEndpointsScalarLeftInto(New(s.Rows, a.Cols()), s, a)
}

// MinMaxCombine returns the elementwise interval [min(t1, t2),
// max(t1, t2)] of two equal-shape matrices — the endpoint combine of
// Supplementary Algorithm 1, shared by every endpoint product here and
// by the sparse kernels of internal/sparse.
func MinMaxCombine(t1, t2 *matrix.Dense) *IMatrix {
	if t1.Rows != t2.Rows || t1.Cols != t2.Cols {
		panic(fmt.Sprintf("imatrix: MinMaxCombine: %dx%d vs %dx%d", t1.Rows, t1.Cols, t2.Rows, t2.Cols))
	}
	lo := matrix.New(t1.Rows, t1.Cols)
	hi := matrix.New(t1.Rows, t1.Cols)
	parallel.For(len(lo.Data), combineGrain, func(flo, fhi int) {
		for i := flo; i < fhi; i++ {
			lo.Data[i] = math.Min(t1.Data[i], t2.Data[i])
			hi.Data[i] = math.Max(t1.Data[i], t2.Data[i])
		}
	})
	return &IMatrix{Lo: lo, Hi: hi}
}

// MinMaxCombine4 is MinMaxCombine over four operands.
func MinMaxCombine4(t1, t2, t3, t4 *matrix.Dense) *IMatrix {
	for _, t := range []*matrix.Dense{t2, t3, t4} {
		if t1.Rows != t.Rows || t1.Cols != t.Cols {
			panic(fmt.Sprintf("imatrix: MinMaxCombine4: %dx%d vs %dx%d", t1.Rows, t1.Cols, t.Rows, t.Cols))
		}
	}
	lo := matrix.New(t1.Rows, t1.Cols)
	hi := matrix.New(t1.Rows, t1.Cols)
	parallel.For(len(lo.Data), combineGrain, func(flo, fhi int) {
		for i := flo; i < fhi; i++ {
			lo.Data[i] = math.Min(math.Min(t1.Data[i], t2.Data[i]), math.Min(t3.Data[i], t4.Data[i]))
			hi.Data[i] = math.Max(math.Max(t1.Data[i], t2.Data[i]), math.Max(t3.Data[i], t4.Data[i]))
		}
	})
	return &IMatrix{Lo: lo, Hi: hi}
}

// splitSigns returns the non-negative and negative parts of s,
// with s = sp + sn.
func splitSigns(s *matrix.Dense) (sp, sn *matrix.Dense) {
	sp = matrix.New(s.Rows, s.Cols)
	sn = matrix.New(s.Rows, s.Cols)
	for i, v := range s.Data {
		if v >= 0 {
			sp.Data[i] = v
		} else {
			sn.Data[i] = v
		}
	}
	return sp, sn
}

// Hull returns the elementwise interval hull of a and b.
func Hull(a, b *IMatrix) *IMatrix {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		panic("imatrix: Hull: shape mismatch")
	}
	out := New(a.Rows(), a.Cols())
	for i := range out.Lo.Data {
		out.Lo.Data[i] = math.Min(a.Lo.Data[i], b.Lo.Data[i])
		out.Hi.Data[i] = math.Max(a.Hi.Data[i], b.Hi.Data[i])
	}
	return out
}

// InverseDiag returns the scalar inverse of a non-negative interval-valued
// diagonal core matrix Σ† per Supplementary Algorithm 4 and
// Section 4.4.2.1: the optimal inverse entry is the scalar
// 2 / (σ_lo + σ_hi); zero diagonals invert to zero.
func InverseDiag(sigma *IMatrix) *matrix.Dense {
	if sigma.Rows() != sigma.Cols() {
		panic("imatrix: InverseDiag: not square")
	}
	r := sigma.Rows()
	out := matrix.New(r, r)
	for i := 0; i < r; i++ {
		lo, hi := sigma.Lo.At(i, i), sigma.Hi.At(i, i)
		switch {
		case lo == 0 && hi == 0:
			out.Set(i, i, 0)
		case lo == 0:
			out.Set(i, i, 2/hi)
		case hi == 0:
			out.Set(i, i, 2/lo)
		default:
			out.Set(i, i, 2/(lo+hi))
		}
	}
	return out
}

// DiagFromValues builds a degenerate (scalar) interval diagonal matrix.
func DiagFromValues(d []float64) *IMatrix {
	return FromScalar(matrix.Diag(d))
}

// DiagFromEndpoints builds an interval diagonal matrix from two diagonals.
func DiagFromEndpoints(lo, hi []float64) *IMatrix {
	if len(lo) != len(hi) {
		panic("imatrix: DiagFromEndpoints: length mismatch")
	}
	return &IMatrix{Lo: matrix.Diag(lo), Hi: matrix.Diag(hi)}
}

// ContainsScalar reports whether the scalar matrix s lies elementwise
// inside m (within tol slack at the endpoints).
func (m *IMatrix) ContainsScalar(s *matrix.Dense, tol float64) bool {
	if s.Rows != m.Rows() || s.Cols != m.Cols() {
		return false
	}
	for i, v := range s.Data {
		if v < m.Lo.Data[i]-tol || v > m.Hi.Data[i]+tol {
			return false
		}
	}
	return true
}

// String renders the interval matrix row by row.
func (m *IMatrix) String() string {
	s := ""
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if j > 0 {
				s += " "
			}
			s += m.At(i, j).String()
		}
		s += "\n"
	}
	return s
}
