package imatrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interval"
	"repro/internal/matrix"
)

func randIMatrix(r *rand.Rand, rows, cols int) *IMatrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a := r.NormFloat64()
			b := a + r.Float64()
			m.Set(i, j, interval.New(a, b))
		}
	}
	return m
}

func TestAccessorsAndClone(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, interval.New(-1, 4))
	if got := m.At(1, 2); !got.Equal(interval.New(-1, 4)) {
		t.Fatalf("At = %v", got)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("shape wrong")
	}
	c := m.Clone()
	c.Set(1, 2, interval.Scalar(0))
	if !m.At(1, 2).Equal(interval.New(-1, 4)) {
		t.Fatal("Clone aliases")
	}
}

func TestFromScalarAndMid(t *testing.T) {
	s := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	m := FromScalar(s)
	if !m.IsWellFormed() || m.MaxSpan() != 0 {
		t.Fatal("FromScalar should be degenerate")
	}
	m.Set(0, 0, interval.New(0, 2))
	if mid := m.Mid(); mid.At(0, 0) != 1 || mid.At(1, 1) != 4 {
		t.Fatalf("Mid wrong:\n%v", mid)
	}
}

func TestTranspose(t *testing.T) {
	m := New(2, 3)
	m.Set(0, 2, interval.New(1, 5))
	mt := m.T()
	if !mt.At(2, 0).Equal(interval.New(1, 5)) {
		t.Fatal("transpose lost entry")
	}
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatal("transpose shape wrong")
	}
}

func TestMulDegenerateMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := matrix.New(3, 4)
	b := matrix.New(4, 2)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	got := Mul(FromScalar(a), FromScalar(b))
	want := matrix.Mul(a, b)
	if !matrix.Equal(got.Lo, want, 1e-12) || !matrix.Equal(got.Hi, want, 1e-12) {
		t.Fatal("degenerate interval product disagrees with scalar product")
	}
}

func TestMulKnownInterval(t *testing.T) {
	// [1,2] × [3,4] + [0,1] × [-1,1] = [3,8] + [-1,1] = [2,9]
	a := New(1, 2)
	a.Set(0, 0, interval.New(1, 2))
	a.Set(0, 1, interval.New(0, 1))
	b := New(2, 1)
	b.Set(0, 0, interval.New(3, 4))
	b.Set(1, 0, interval.New(-1, 1))
	got := Mul(a, b).At(0, 0)
	if !got.ApproxEqual(interval.New(2, 9), 1e-12) {
		t.Fatalf("Mul = %v, want [2, 9]", got)
	}
}

func TestMulEndpointsContainedInMul(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		a := randIMatrix(r, 1+r.Intn(4), 1+r.Intn(4))
		b := randIMatrix(r, a.Cols(), 1+r.Intn(4))
		exact := Mul(a, b)
		approx := MulEndpoints(a, b)
		for i := range exact.Lo.Data {
			if approx.Lo.Data[i] < exact.Lo.Data[i]-1e-9 ||
				approx.Hi.Data[i] > exact.Hi.Data[i]+1e-9 {
				t.Fatalf("trial %d: MulEndpoints not contained in Mul", trial)
			}
		}
	}
}

func TestMulEndpointsExactForNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	a := New(3, 4)
	b := New(4, 2)
	for _, m := range []*IMatrix{a, b} {
		for i := range m.Lo.Data {
			lo := r.Float64()
			m.Lo.Data[i] = lo
			m.Hi.Data[i] = lo + r.Float64()
		}
	}
	exact := Mul(a, b)
	approx := MulEndpoints(a, b)
	if !matrix.Equal(exact.Lo, approx.Lo, 1e-12) || !matrix.Equal(exact.Hi, approx.Hi, 1e-12) {
		t.Fatal("MulEndpoints should be exact for non-negative operands")
	}
}

func TestMulScalarSides(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randIMatrix(r, 3, 4)
	s := matrix.New(4, 2)
	for i := range s.Data {
		s.Data[i] = r.NormFloat64()
	}
	right := MulScalarRight(a, s)
	full := Mul(a, FromScalar(s))
	if !matrix.Equal(right.Lo, full.Lo, 1e-12) || !matrix.Equal(right.Hi, full.Hi, 1e-12) {
		t.Fatal("MulScalarRight disagrees with Mul")
	}
	s2 := matrix.New(2, 3)
	for i := range s2.Data {
		s2.Data[i] = r.NormFloat64()
	}
	left := MulScalarLeft(s2, a)
	full2 := Mul(FromScalar(s2), a)
	if !matrix.Equal(left.Lo, full2.Lo, 1e-12) || !matrix.Equal(left.Hi, full2.Hi, 1e-12) {
		t.Fatal("MulScalarLeft disagrees with Mul")
	}
}

func TestAverageReplace(t *testing.T) {
	m := New(1, 2)
	m.Lo.Set(0, 0, 5)
	m.Hi.Set(0, 0, 1) // misordered
	m.Set(0, 1, interval.New(1, 2))
	if m.IsWellFormed() {
		t.Fatal("should be misordered")
	}
	m.AverageReplace()
	if !m.IsWellFormed() {
		t.Fatal("AverageReplace did not repair")
	}
	if got := m.At(0, 0); !got.Equal(interval.Scalar(3)) {
		t.Fatalf("averaged to %v", got)
	}
	if got := m.At(0, 1); !got.Equal(interval.New(1, 2)) {
		t.Fatal("well-formed entry disturbed")
	}
}

func TestInverseDiag(t *testing.T) {
	s := DiagFromEndpoints([]float64{2, 0, 4}, []float64{4, 0, 4})
	inv := InverseDiag(s)
	// 2/(2+4) = 1/3 for the interval entry; 0 for zero; 2/(4+4)=0.25 scalar.
	if math.Abs(inv.At(0, 0)-1.0/3) > 1e-12 {
		t.Errorf("inv[0][0] = %g", inv.At(0, 0))
	}
	if inv.At(1, 1) != 0 {
		t.Errorf("zero diagonal inverted to %g", inv.At(1, 1))
	}
	if math.Abs(inv.At(2, 2)-0.25) > 1e-12 {
		t.Errorf("inv[2][2] = %g", inv.At(2, 2))
	}
}

func TestInverseDiagEpsilonOptimality(t *testing.T) {
	// Section 4.4.2.1: σ = 2/(lo+hi) minimizes ε with σ·lo = 1-ε, σ·hi = 1+ε.
	lo, hi := 3.0, 5.0
	s := DiagFromEndpoints([]float64{lo}, []float64{hi})
	sigma := InverseDiag(s).At(0, 0)
	eps := 1 - sigma*lo
	if math.Abs((sigma*hi)-(1+eps)) > 1e-12 {
		t.Fatalf("ε asymmetric: lo gives %g, hi gives %g", 1-sigma*lo, sigma*hi-1)
	}
	want := (hi - lo) / (hi + lo)
	if math.Abs(eps-want) > 1e-12 {
		t.Fatalf("ε = %g, want %g", eps, want)
	}
}

func TestHullAndContains(t *testing.T) {
	a := New(1, 1)
	a.Set(0, 0, interval.New(0, 2))
	b := New(1, 1)
	b.Set(0, 0, interval.New(1, 5))
	h := Hull(a, b)
	if !h.At(0, 0).Equal(interval.New(0, 5)) {
		t.Fatalf("Hull = %v", h.At(0, 0))
	}
	s := matrix.FromRows([][]float64{{3}})
	if !h.ContainsScalar(s, 0) {
		t.Fatal("ContainsScalar false negative")
	}
	s.Set(0, 0, 6)
	if h.ContainsScalar(s, 0) {
		t.Fatal("ContainsScalar false positive")
	}
}

func TestRowColVectors(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, interval.New(1, 2))
	row := m.Row(0)
	if !row.At(1).Equal(interval.New(1, 2)) {
		t.Fatal("Row wrong")
	}
	col := m.Col(1)
	if !col.At(0).Equal(interval.New(1, 2)) {
		t.Fatal("Col wrong")
	}
}

func TestSpanMeasures(t *testing.T) {
	m := New(1, 3)
	m.Set(0, 0, interval.New(0, 1))
	m.Set(0, 1, interval.New(0, 3))
	if m.MaxSpan() != 3 || m.TotalSpan() != 4 {
		t.Fatalf("MaxSpan=%g TotalSpan=%g", m.MaxSpan(), m.TotalSpan())
	}
}

// Property: interval matrix multiplication is inclusion-correct — for any
// member scalar matrices A ∈ A†, B ∈ B†, A·B ∈ A†×B†.
func TestPropMulInclusion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, m := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a := randIMatrix(r, n, k)
		b := randIMatrix(r, k, m)
		prod := Mul(a, b)
		for trial := 0; trial < 5; trial++ {
			// Sample member matrices at the endpoints (the extreme points,
			// where violations would appear first).
			sa := matrix.New(n, k)
			for i := range sa.Data {
				if r.Intn(2) == 0 {
					sa.Data[i] = a.Lo.Data[i]
				} else {
					sa.Data[i] = a.Hi.Data[i]
				}
			}
			sb := matrix.New(k, m)
			for i := range sb.Data {
				if r.Intn(2) == 0 {
					sb.Data[i] = b.Lo.Data[i]
				} else {
					sb.Data[i] = b.Hi.Data[i]
				}
			}
			if !prod.ContainsScalar(matrix.Mul(sa, sb), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: AverageReplace is idempotent and never widens spans.
func TestPropAverageReplace(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New(3, 3)
		for i := range m.Lo.Data {
			m.Lo.Data[i] = r.NormFloat64()
			m.Hi.Data[i] = r.NormFloat64() // possibly misordered
		}
		before := m.Clone()
		m.AverageReplace()
		if !m.IsWellFormed() {
			return false
		}
		once := m.Clone()
		m.AverageReplace()
		if !matrix.Equal(m.Lo, once.Lo, 0) || !matrix.Equal(m.Hi, once.Hi, 0) {
			return false
		}
		// Spans never exceed |before| spans.
		for i := range m.Lo.Data {
			bs := math.Abs(before.Hi.Data[i] - before.Lo.Data[i])
			if (m.Hi.Data[i] - m.Lo.Data[i]) > bs+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
