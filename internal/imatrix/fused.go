// Fused endpoint-product kernels (Supplementary Algorithm 1). The
// classical formulation materializes four full-size scalar products of
// the endpoint matrices and then makes a fifth pass combining them with
// min/max. The kernels here compute the four candidate products
// tile-by-tile and combine them in place: two of the four accumulator
// panels live directly in the destination's Lo/Hi storage and the other
// two in an O(tile) scratch buffer, so the only full-size writes are
// the one min and one max per output element — no matrix-sized
// temporaries, no separate combine pass.
//
// Determinism/bitwise contract: each of the four per-element sums
// accumulates in ascending k order across ascending k tiles — exactly
// the order of matrix.Mul — and the final combine evaluates the same
// min/max expression as MinMaxCombine4 with the operands in the same
// positions. The fused results are therefore bitwise identical to the
// unfused four-product implementations for any worker count and any
// tile size.
package imatrix

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// Tile sizes of the fused endpoint kernels: fusedKC×fusedJC bounds the
// two right-operand panels held hot across a row sweep, fusedIC×fusedJC
// the four accumulator panels (two in dst, two in scratch). Variables
// so the fused tests can pin correctness at several tile shapes.
var (
	fusedIC = 64
	fusedKC = 64
	fusedJC = 256
)

// setFusedTiles overrides the fused tile sizes (test hook).
func setFusedTiles(ic, kc, jc int) {
	if ic < 1 || kc < 1 || jc < 1 {
		panic("imatrix: setFusedTiles: non-positive tile size")
	}
	fusedIC, fusedKC, fusedJC = ic, kc, jc
}

func checkDstIMatrix(op string, dst *IMatrix, rows, cols int, operands ...*IMatrix) {
	if dst.Rows() != rows || dst.Cols() != cols {
		panic(fmt.Sprintf("imatrix: %s: dst is %dx%d, want %dx%d", op, dst.Rows(), dst.Cols(), rows, cols))
	}
	for _, m := range operands {
		if &dst.Lo.Data[0] == &m.Lo.Data[0] || &dst.Hi.Data[0] == &m.Hi.Data[0] {
			panic(fmt.Sprintf("imatrix: %s: dst aliases an operand", op))
		}
	}
}

//ivmf:noalloc
func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// MulEndpointsInto computes the Algorithm 1 endpoint product a × b into
// dst (overwriting it) and returns dst. It is bitwise identical to
// MulEndpoints for any worker count and tile size, with O(tile) scratch
// instead of four matrix-sized temporaries. dst must not alias a or b.
func MulEndpointsInto(dst, a, b *IMatrix) *IMatrix {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("imatrix: MulEndpointsInto: %dx%d · %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	checkDstIMatrix("MulEndpointsInto", dst, a.Rows(), b.Cols(), a, b)
	kDim, n := a.Cols(), b.Cols()
	zeroFloats(dst.Lo.Data)
	zeroFloats(dst.Hi.Data)
	parallel.For(a.Rows(), parallel.Grain(8*kDim*n), func(rlo, rhi int) {
		// Per-shard scratch for the aLo·bHi and aHi·bLo accumulator
		// panels; aLo·bLo and aHi·bHi accumulate directly in dst.
		scratch := make([]float64, 2*fusedIC*fusedJC)
		for it := rlo; it < rhi; it += fusedIC {
			iEnd := min(it+fusedIC, rhi)
			for jc := 0; jc < n; jc += fusedJC {
				jEnd := min(jc+fusedJC, n)
				fusedPanelMul(dst, a, b, scratch, it, iEnd, jc, jEnd, kDim)
			}
		}
	})
	return dst
}

// fusedPanelMul accumulates the four endpoint products for output rows
// [it, iEnd) × columns [jc, jEnd) over the full ascending k range, then
// min/max-combines them in place.
//
//ivmf:noalloc
func fusedPanelMul(dst, a, b *IMatrix, scratch []float64, it, iEnd, jc, jEnd, kDim int) {
	w := jEnd - jc
	rows := iEnd - it
	t2 := scratch[:rows*w]
	t3 := scratch[len(scratch)/2 : len(scratch)/2+rows*w]
	zeroFloats(t2)
	zeroFloats(t3)
	aCols, bCols := a.Cols(), b.Cols()
	for kc := 0; kc < kDim; kc += fusedKC {
		kEnd := min(kc+fusedKC, kDim)
		for i := it; i < iEnd; i++ {
			alRow := a.Lo.Data[i*aCols : (i+1)*aCols]
			ahRow := a.Hi.Data[i*aCols : (i+1)*aCols]
			t1row := dst.Lo.Data[i*bCols+jc : i*bCols+jEnd]
			t4row := dst.Hi.Data[i*bCols+jc : i*bCols+jEnd]
			t2row := t2[(i-it)*w : (i-it+1)*w]
			t3row := t3[(i-it)*w : (i-it+1)*w]
			t1row, t4row = t1row[:w], t4row[:w]
			for k := kc; k < kEnd; k++ {
				al, ah := alRow[k], ahRow[k]
				blRow := b.Lo.Data[k*bCols+jc : k*bCols+jEnd]
				bhRow := b.Hi.Data[k*bCols+jc : k*bCols+jEnd]
				blRow, bhRow = blRow[:w], bhRow[:w]
				for j, bl := range blRow {
					bh := bhRow[j]
					t1row[j] += al * bl
					t2row[j] += al * bh
					t3row[j] += ah * bl
					t4row[j] += ah * bh
				}
			}
		}
	}
	combinePanel4(dst, t2, t3, it, iEnd, jc, jEnd)
}

// combinePanel4 replaces the (t1, t4) accumulators stored in dst.Lo and
// dst.Hi with the elementwise min/max over all four candidate products,
// evaluating exactly the MinMaxCombine4 expression.
//
//ivmf:noalloc
func combinePanel4(dst *IMatrix, t2, t3 []float64, it, iEnd, jc, jEnd int) {
	w := jEnd - jc
	cols := dst.Cols()
	for i := it; i < iEnd; i++ {
		loRow := dst.Lo.Data[i*cols+jc : i*cols+jEnd]
		hiRow := dst.Hi.Data[i*cols+jc : i*cols+jEnd]
		t2row := t2[(i-it)*w : (i-it+1)*w]
		t3row := t3[(i-it)*w : (i-it+1)*w]
		loRow, hiRow, t3row = loRow[:w], hiRow[:w], t3row[:w]
		for j, p2 := range t2row {
			p1, p3, p4 := loRow[j], t3row[j], hiRow[j]
			loRow[j] = math.Min(math.Min(p1, p2), math.Min(p3, p4))
			hiRow[j] = math.Max(math.Max(p1, p2), math.Max(p3, p4))
		}
	}
}

// GramEndpoints returns the endpoint Gram product m.T() × m of
// Supplementary Algorithm 1 — the Gram step of the ISVD2-4 pipelines —
// without materializing the transposed endpoint matrices. It is bitwise
// identical to MulEndpoints(m.T(), m).
func GramEndpoints(m *IMatrix) *IMatrix {
	return GramEndpointsInto(New(m.Cols(), m.Cols()), m)
}

// GramEndpointsInto is GramEndpoints into a caller-supplied dst (shape
// m.Cols()×m.Cols(), not aliasing m). The four products are TMul-shaped
// — out[i][j] = Σ_k m[k][i]·m[k][j] with the k loop outermost ascending,
// the same per-element order as Mul against the materialized transpose —
// fused tile-by-tile exactly like MulEndpointsInto.
func GramEndpointsInto(dst, m *IMatrix) *IMatrix {
	checkDstIMatrix("GramEndpointsInto", dst, m.Cols(), m.Cols(), m)
	kDim, n := m.Rows(), m.Cols()
	zeroFloats(dst.Lo.Data)
	zeroFloats(dst.Hi.Data)
	parallel.For(n, parallel.Grain(8*kDim*n), func(rlo, rhi int) {
		scratch := make([]float64, 2*fusedIC*fusedJC)
		for it := rlo; it < rhi; it += fusedIC {
			iEnd := min(it+fusedIC, rhi)
			for jc := 0; jc < n; jc += fusedJC {
				jEnd := min(jc+fusedJC, n)
				fusedPanelGram(dst, m, scratch, it, iEnd, jc, jEnd, kDim)
			}
		}
	})
	return dst
}

// fusedPanelGram accumulates the four endpoint Gram products for output
// rows [it, iEnd) × columns [jc, jEnd): the left operand is the
// transpose of m read column-wise as contiguous row segments.
//
//ivmf:noalloc
func fusedPanelGram(dst, m *IMatrix, scratch []float64, it, iEnd, jc, jEnd, kDim int) {
	w := jEnd - jc
	rows := iEnd - it
	t2 := scratch[:rows*w]
	t3 := scratch[len(scratch)/2 : len(scratch)/2+rows*w]
	zeroFloats(t2)
	zeroFloats(t3)
	cols := m.Cols()
	for kc := 0; kc < kDim; kc += fusedKC {
		kEnd := min(kc+fusedKC, kDim)
		for k := kc; k < kEnd; k++ {
			// Row k of m sliced at the output-row range (left operand
			// values, contiguous) and at the j panel (right operand).
			alSeg := m.Lo.Data[k*cols+it : k*cols+iEnd]
			ahSeg := m.Hi.Data[k*cols+it : k*cols+iEnd]
			blRow := m.Lo.Data[k*cols+jc : k*cols+jEnd]
			bhRow := m.Hi.Data[k*cols+jc : k*cols+jEnd]
			blRow, bhRow = blRow[:w], bhRow[:w]
			for ii, al := range alSeg {
				ah := ahSeg[ii]
				i := it + ii
				t1row := dst.Lo.Data[i*cols+jc : i*cols+jEnd]
				t4row := dst.Hi.Data[i*cols+jc : i*cols+jEnd]
				t2row := t2[ii*w : (ii+1)*w]
				t3row := t3[ii*w : (ii+1)*w]
				t1row, t4row = t1row[:w], t4row[:w]
				for j, bl := range blRow {
					bh := bhRow[j]
					t1row[j] += al * bl
					t2row[j] += al * bh
					t3row[j] += ah * bl
					t4row[j] += ah * bh
				}
			}
		}
	}
	combinePanel4(dst, t2, t3, it, iEnd, jc, jEnd)
}

// MulEndpointsScalarRightInto is the fused MulEndpointsScalarRight: the
// two endpoint products a.Lo·s and a.Hi·s accumulate directly into
// dst.Lo and dst.Hi and are min/max-swapped in place — no temporaries
// and one combine per element. Bitwise identical to
// MulEndpointsScalarRight for any worker count and tile size.
func MulEndpointsScalarRightInto(dst *IMatrix, a *IMatrix, s *matrix.Dense) *IMatrix {
	if a.Cols() != s.Rows {
		panic(fmt.Sprintf("imatrix: MulEndpointsScalarRightInto: %dx%d · %dx%d", a.Rows(), a.Cols(), s.Rows, s.Cols))
	}
	checkDstIMatrix("MulEndpointsScalarRightInto", dst, a.Rows(), s.Cols, a)
	matrix.MulInto(dst.Lo, a.Lo, s)
	matrix.MulInto(dst.Hi, a.Hi, s)
	minMaxInPlace(dst)
	return dst
}

// MulEndpointsScalarLeftInto is the fused MulEndpointsScalarLeft.
func MulEndpointsScalarLeftInto(dst *IMatrix, s *matrix.Dense, a *IMatrix) *IMatrix {
	if s.Cols != a.Rows() {
		panic(fmt.Sprintf("imatrix: MulEndpointsScalarLeftInto: %dx%d · %dx%d", s.Rows, s.Cols, a.Rows(), a.Cols()))
	}
	checkDstIMatrix("MulEndpointsScalarLeftInto", dst, s.Rows, a.Cols(), a)
	matrix.MulInto(dst.Lo, s, a.Lo)
	matrix.MulInto(dst.Hi, s, a.Hi)
	minMaxInPlace(dst)
	return dst
}

// minMaxInPlace sorts every (Lo, Hi) entry pair with the exact
// math.Min/math.Max expressions of MinMaxCombine, sharded like the
// combine loops.
//
//ivmf:noalloc
func minMaxInPlace(dst *IMatrix) {
	lo, hi := dst.Lo.Data, dst.Hi.Data
	parallel.For(len(lo), combineGrain, func(flo, fhi int) {
		for i := flo; i < fhi; i++ {
			a, b := lo[i], hi[i]
			lo[i] = math.Min(a, b)
			hi[i] = math.Max(a, b)
		}
	})
}
