// Package nmf implements non-negative matrix factorization with
// Lee-Seung multiplicative updates (Section 2.2.2 of the paper) and the
// interval-valued extension I-NMF of Shen et al. (used as baselines in
// the paper's face-analysis experiments). I-NMF factorizes an interval
// matrix M† into a shared non-negative U and an interval-valued
// V† = [V*, V^*] minimizing
//
//	‖M* − U·V*ᵀ‖²_F + ‖M^* − U·V^*ᵀ‖²_F.
//
//ivmf:deterministic
package nmf

import (
	"fmt"
	"math/rand"

	"repro/internal/align"
	"repro/internal/assign"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// eps keeps the multiplicative-update denominators away from zero.
const eps = 1e-12

// Config holds NMF hyper-parameters.
type Config struct {
	// Rank is the factorization rank r.
	Rank int
	// Iterations of multiplicative updates (default 100).
	Iterations int
}

func (c Config) withDefaults() (Config, error) {
	if c.Rank <= 0 {
		return c, fmt.Errorf("nmf: non-positive rank %d", c.Rank)
	}
	if c.Iterations == 0 {
		c.Iterations = 100
	}
	return c, nil
}

func randNonNegative(rows, cols int, rng *rand.Rand) *matrix.Dense {
	m := matrix.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64() + 0.01
	}
	return m
}

// Model is a trained scalar NMF: M ≈ U·Vᵀ with U, V ≥ 0.
type Model struct {
	U, V *matrix.Dense // n×r and m×r
}

// Reconstruct returns U·Vᵀ.
func (m *Model) Reconstruct() *matrix.Dense { return matrix.MulT(m.U, m.V) }

// Loss returns ‖M − U·Vᵀ‖²_F.
func (m *Model) Loss(target *matrix.Dense) float64 {
	d := matrix.Sub(target, m.Reconstruct()).Frobenius()
	return d * d
}

// Train fits NMF to the non-negative matrix m with Lee-Seung updates:
//
//	U ← U ∘ (M·V) / (U·Vᵀ·V),  Vᵀ ← Vᵀ ∘ (Uᵀ·M) / (Uᵀ·U·Vᵀ).
func Train(m *matrix.Dense, cfg Config, rng *rand.Rand) (*Model, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	for _, v := range m.Data {
		if v < 0 {
			return nil, fmt.Errorf("nmf: negative input entry %g", v)
		}
	}
	u := randNonNegative(m.Rows, cfg.Rank, rng)
	v := randNonNegative(m.Cols, cfg.Rank, rng)
	// Workspaces reused across every multiplicative update: the blocked
	// Into kernels overwrite them, so the iteration loop allocates
	// nothing (same arithmetic, same bitwise results as the allocating
	// kernels).
	r := cfg.Rank
	mv := matrix.New(m.Rows, r)
	uvv := matrix.New(m.Rows, r)
	mtu := matrix.New(m.Cols, r)
	vuu := matrix.New(m.Cols, r)
	gram := matrix.New(r, r)
	for it := 0; it < cfg.Iterations; it++ {
		// U update.
		matrix.MulInto(mv, m, v)
		matrix.MulInto(uvv, u, matrix.TMulInto(gram, v, v))
		hadamardQuotient(u, mv, uvv)
		// V update.
		matrix.TMulInto(mtu, m, u)
		matrix.MulInto(vuu, v, matrix.TMulInto(gram, u, u))
		hadamardQuotient(v, mtu, vuu)
	}
	return &Model{U: u, V: v}, nil
}

// IntervalModel is a trained I-NMF: scalar non-negative U with interval
// V† = [V*, V^*].
type IntervalModel struct {
	U        *matrix.Dense
	VLo, VHi *matrix.Dense
}

// Reconstruct returns the interval reconstruction
// [U·V*ᵀ, U·V^*ᵀ] with misordered entries averaged.
func (m *IntervalModel) Reconstruct() *imatrix.IMatrix {
	out := imatrix.FromEndpoints(matrix.MulT(m.U, m.VLo), matrix.MulT(m.U, m.VHi))
	out.AverageReplace()
	return out
}

// TrainInterval fits I-NMF to the non-negative interval matrix m with the
// coupled multiplicative updates of Shen et al.:
//
//	U   ← U ∘ (M*·V* + M^*·V^*) / (U·(V*ᵀ·V* + V^*ᵀ·V^*))
//	V*  ← V* ∘ (M*ᵀ·U) / (V*·Uᵀ·U),   V^* analogously.
func TrainInterval(m *imatrix.IMatrix, cfg Config, rng *rand.Rand) (*IntervalModel, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	for i := range m.Lo.Data {
		if m.Lo.Data[i] < 0 || m.Hi.Data[i] < 0 {
			return nil, fmt.Errorf("nmf: negative interval endpoint at flat index %d", i)
		}
	}
	u := randNonNegative(m.Rows(), cfg.Rank, rng)
	vLo := randNonNegative(m.Cols(), cfg.Rank, rng)
	vHi := randNonNegative(m.Cols(), cfg.Rank, rng)
	ws := newIntervalWorkspace(m.Rows(), m.Cols(), cfg.Rank)
	for it := 0; it < cfg.Iterations; it++ {
		ws.update(m, u, vLo, vHi)
	}
	return &IntervalModel{U: u, VLo: vLo, VHi: vHi}, nil
}

// intervalWorkspace holds the reusable buffers of one coupled I-NMF
// multiplicative update, so the iteration loop is allocation-free.
type intervalWorkspace struct {
	num, num2 *matrix.Dense // n×r numerator terms
	den       *matrix.Dense // n×r denominator
	gram      *matrix.Dense // r×r V Gram accumulators
	gram2     *matrix.Dense // r×r second Gram term / UᵀU
	mtv       *matrix.Dense // m×r per-side numerators
	vg        *matrix.Dense // m×r per-side denominators
}

func newIntervalWorkspace(n, m, r int) *intervalWorkspace {
	return &intervalWorkspace{
		num:   matrix.New(n, r),
		num2:  matrix.New(n, r),
		den:   matrix.New(n, r),
		gram:  matrix.New(r, r),
		gram2: matrix.New(r, r),
		mtv:   matrix.New(m, r),
		vg:    matrix.New(m, r),
	}
}

// update performs one coupled multiplicative update in place — the same
// arithmetic (and bitwise results) as the allocating formulation
//
//	U   ← U ∘ (M*·V* + M^*·V^*) / (U·(V*ᵀ·V* + V^*ᵀ·V^*))
//	V*  ← V* ∘ (M*ᵀ·U) / (V*·Uᵀ·U),   V^* analogously,
//
// with every product routed through the blocked Into kernels.
func (ws *intervalWorkspace) update(m *imatrix.IMatrix, u, vLo, vHi *matrix.Dense) {
	// U update couples both sides.
	matrix.MulInto(ws.num, m.Lo, vLo)
	matrix.MulInto(ws.num2, m.Hi, vHi)
	matrix.AddInto(ws.num, ws.num, ws.num2)
	matrix.TMulInto(ws.gram, vLo, vLo)
	matrix.TMulInto(ws.gram2, vHi, vHi)
	matrix.AddInto(ws.gram, ws.gram, ws.gram2)
	matrix.MulInto(ws.den, u, ws.gram)
	hadamardQuotient(u, ws.num, ws.den)
	// Per-side V updates.
	matrix.TMulInto(ws.gram, u, u)
	matrix.TMulInto(ws.mtv, m.Lo, u)
	matrix.MulInto(ws.vg, vLo, ws.gram)
	hadamardQuotient(vLo, ws.mtv, ws.vg)
	matrix.TMulInto(ws.mtv, m.Hi, u)
	matrix.MulInto(ws.vg, vHi, ws.gram)
	hadamardQuotient(vHi, ws.mtv, ws.vg)
}

// hadamardQuotient performs x ← x ∘ num / den elementwise in place,
// sharded on the shared pool (the matrix products feeding it already run
// there; this keeps the whole Lee-Seung update parallel end to end).
func hadamardQuotient(x, num, den *matrix.Dense) {
	parallel.For(len(x.Data), parallel.Grain(1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x.Data[i] *= num.Data[i] / (den.Data[i] + eps)
		}
	})
}

// TrainIntervalAligned fits AI-NMF: I-NMF with interval latent semantic
// alignment applied between multiplicative updates, the NMF counterpart
// of the paper's AI-PMF (Section 3.3 argues ILSA "can be integrated in
// common matrix factorization approaches"; this is that integration for
// the non-negative case). Because all factors are non-negative, column
// cosines are non-negative and alignment reduces to a pure permutation
// of V* columns towards their best V^* partners; it is applied only when
// it strictly improves the total alignment, and never after the final
// update, so the returned factors remain consistent with U.
func TrainIntervalAligned(m *imatrix.IMatrix, cfg Config, method assign.Method, rng *rand.Rand) (*IntervalModel, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	for i := range m.Lo.Data {
		if m.Lo.Data[i] < 0 || m.Hi.Data[i] < 0 {
			return nil, fmt.Errorf("nmf: negative interval endpoint at flat index %d", i)
		}
	}
	u := randNonNegative(m.Rows(), cfg.Rank, rng)
	vLo := randNonNegative(m.Cols(), cfg.Rank, rng)
	vHi := randNonNegative(m.Cols(), cfg.Rank, rng)
	alignEvery := cfg.Iterations / 10
	if alignEvery < 1 {
		alignEvery = 1
	}
	ws := newIntervalWorkspace(m.Rows(), m.Cols(), cfg.Rank)
	for it := 0; it < cfg.Iterations; it++ {
		ws.update(m, u, vLo, vHi)
		if it >= cfg.Iterations/4 && it < cfg.Iterations-1 && (it+1)%alignEvery == 0 {
			res := align.ILSA(vHi, vLo, method)
			var matched, identity float64
			idCos := align.ColumnCosines(vHi, vLo)
			for j := range res.Cos {
				matched += res.Cos[j]
				identity += idCos[j]
			}
			if matched > identity+1e-9 {
				res.Apply(nil, vLo, nil)
			}
		}
	}
	return &IntervalModel{U: u, VLo: vLo, VHi: vHi}, nil
}
