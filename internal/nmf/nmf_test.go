package nmf

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/assign"
	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/matrix"
)

func nonNegLowRank(rng *rand.Rand, n, m, k int) *matrix.Dense {
	u := matrix.New(n, k)
	v := matrix.New(m, k)
	for i := range u.Data {
		u.Data[i] = rng.Float64()
	}
	for i := range v.Data {
		v.Data[i] = rng.Float64()
	}
	return matrix.MulT(u, v)
}

func TestNMFFitsLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := nonNegLowRank(rng, 20, 15, 3)
	model, err := Train(m, Config{Rank: 3, Iterations: 400}, rng)
	if err != nil {
		t.Fatal(err)
	}
	rel := matrix.Sub(m, model.Reconstruct()).Frobenius() / m.Frobenius()
	if rel > 0.02 {
		t.Fatalf("relative reconstruction error %.4f, want < 0.02", rel)
	}
}

func TestNMFNonNegativityPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := nonNegLowRank(rng, 10, 8, 4)
	model, err := Train(m, Config{Rank: 4, Iterations: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range model.U.Data {
		if v < 0 {
			t.Fatal("negative U entry")
		}
	}
	for _, v := range model.V.Data {
		if v < 0 {
			t.Fatal("negative V entry")
		}
	}
}

func TestNMFMonotoneLoss(t *testing.T) {
	// Lee-Seung updates are non-increasing in the L2 loss; check loss
	// after more iterations is not (significantly) larger.
	rng := rand.New(rand.NewSource(3))
	m := nonNegLowRank(rng, 15, 12, 3)
	short, err := Train(m, Config{Rank: 3, Iterations: 10}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	long, err := Train(m, Config{Rank: 3, Iterations: 200}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if long.Loss(m) > short.Loss(m)*1.0001 {
		t.Fatalf("loss increased with iterations: %g -> %g", short.Loss(m), long.Loss(m))
	}
}

func TestNMFRejectsNegativeInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := matrix.FromRows([][]float64{{1, -1}})
	if _, err := Train(m, Config{Rank: 1}, rng); err == nil {
		t.Fatal("negative input accepted")
	}
	if _, err := Train(m, Config{Rank: 0}, rng); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

func intervalNonNeg(rng *rand.Rand, n, m, k int, halfSpan float64) *imatrix.IMatrix {
	base := nonNegLowRank(rng, n, m, k)
	out := imatrix.New(n, m)
	for i := range base.Data {
		v := base.Data[i]
		lo := v - halfSpan
		if lo < 0 {
			lo = 0
		}
		out.Lo.Data[i] = lo
		out.Hi.Data[i] = v + halfSpan
	}
	return out
}

func TestINMFFitsIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := intervalNonNeg(rng, 20, 15, 3, 0.05)
	model, err := TrainInterval(m, Config{Rank: 4, Iterations: 400}, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := model.Reconstruct()
	if !rec.IsWellFormed() {
		t.Fatal("reconstruction misordered")
	}
	relLo := matrix.Sub(m.Lo, rec.Lo).Frobenius() / m.Lo.Frobenius()
	relHi := matrix.Sub(m.Hi, rec.Hi).Frobenius() / m.Hi.Frobenius()
	if relLo > 0.05 || relHi > 0.05 {
		t.Fatalf("interval reconstruction errors %.4f / %.4f", relLo, relHi)
	}
	// All factors non-negative.
	for _, v := range model.U.Data {
		if v < 0 {
			t.Fatal("negative U")
		}
	}
}

func TestINMFRejectsNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := imatrix.New(2, 2)
	m.Set(0, 0, interval.New(-1, 1))
	if _, err := TrainInterval(m, Config{Rank: 1}, rng); err == nil {
		t.Fatal("negative interval accepted")
	}
}

func TestAINMFFitsAndAligns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := intervalNonNeg(rng, 20, 15, 3, 0.05)
	model, err := TrainIntervalAligned(m, Config{Rank: 4, Iterations: 200}, assign.Hungarian, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := model.Reconstruct()
	relLo := matrix.Sub(m.Lo, rec.Lo).Frobenius() / m.Lo.Frobenius()
	if relLo > 0.1 {
		t.Fatalf("AI-NMF reconstruction error %.4f", relLo)
	}
	// Factors stay non-negative despite the alignment step.
	for _, v := range model.VLo.Data {
		if v < 0 {
			t.Fatal("alignment broke non-negativity")
		}
	}
	// Aligned V sides should be at least as mutually consistent as
	// plain I-NMF's on the same data and seed.
	plain, err := TrainInterval(m, Config{Rank: 4, Iterations: 200}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	cosSum := func(im *IntervalModel) float64 {
		var s float64
		for _, c := range align.ColumnCosines(im.VLo, im.VHi) {
			s += c
		}
		return s
	}
	if cosSum(model) < cosSum(plain)-1e-6 {
		t.Fatalf("AI-NMF less aligned than I-NMF: %.4f vs %.4f", cosSum(model), cosSum(plain))
	}
}

func TestAINMFRejectsNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := imatrix.New(2, 2)
	m.Set(0, 0, interval.New(-1, 1))
	if _, err := TrainIntervalAligned(m, Config{Rank: 1}, assign.Hungarian, rng); err == nil {
		t.Fatal("negative interval accepted")
	}
}
