package eig

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func randSym(r *rand.Rand, n int) *matrix.Dense {
	a := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func randDense(r *rand.Rand, rows, cols int) *matrix.Dense {
	m := matrix.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestSymEigKnown2x2(t *testing.T) {
	a := matrix.FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Reconstruct: V diag(vals) Vᵀ == A.
	recon := matrix.Mul(matrix.Mul(vecs, matrix.Diag(vals)), vecs.T())
	if !matrix.Equal(recon, a, 1e-10) {
		t.Fatalf("reconstruction failed:\n%v", recon)
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := matrix.Diag([]float64{5, -1, 3})
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, -1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
}

func TestSymEigNotSquare(t *testing.T) {
	if _, _, err := SymEig(matrix.New(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSymEigProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 10, 25, 60} {
		a := randSym(r, n)
		vals, vecs, err := SymEig(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("n=%d: eigenvalues not descending: %v", n, vals)
			}
		}
		// Orthonormality: VᵀV = I.
		if !matrix.Equal(matrix.TMul(vecs, vecs), matrix.Identity(n), 1e-9) {
			t.Fatalf("n=%d: eigenvectors not orthonormal", n)
		}
		// Reconstruction.
		recon := matrix.Mul(matrix.Mul(vecs, matrix.Diag(vals)), vecs.T())
		if !matrix.Equal(recon, a, 1e-8*float64(n)) {
			t.Fatalf("n=%d: reconstruction error %g", n, matrix.Sub(recon, a).MaxAbs())
		}
	}
}

func TestSVDKnown(t *testing.T) {
	// Rank-1 matrix: singular values are [sqrt(30), 0].
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}, {1, 2}})
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.S[0]-math.Sqrt(30)) > 1e-10 {
		t.Fatalf("σ₁ = %g, want %g", res.S[0], math.Sqrt(30))
	}
	if res.S[1] > 1e-10 {
		t.Fatalf("σ₂ = %g, want 0", res.S[1])
	}
}

func checkSVD(t *testing.T, a *matrix.Dense, res *SVDResult, tag string) {
	t.Helper()
	k := len(res.S)
	// Descending non-negative.
	for i := 0; i < k; i++ {
		if res.S[i] < 0 {
			t.Fatalf("%s: negative singular value %g", tag, res.S[i])
		}
		if i > 0 && res.S[i] > res.S[i-1]+1e-12 {
			t.Fatalf("%s: singular values not sorted: %v", tag, res.S)
		}
	}
	// Orthonormal columns.
	if !matrix.Equal(matrix.TMul(res.U, res.U), matrix.Identity(k), 1e-9) {
		t.Fatalf("%s: U columns not orthonormal", tag)
	}
	if !matrix.Equal(matrix.TMul(res.V, res.V), matrix.Identity(k), 1e-9) {
		t.Fatalf("%s: V columns not orthonormal", tag)
	}
	// Reconstruction.
	recon := matrix.Mul(matrix.Mul(res.U, matrix.Diag(res.S)), res.V.T())
	scale := a.Frobenius()
	if scale == 0 {
		scale = 1
	}
	if matrix.Sub(recon, a).Frobenius()/scale > 1e-9 {
		t.Fatalf("%s: reconstruction relative error %g", tag,
			matrix.Sub(recon, a).Frobenius()/scale)
	}
}

func TestSVDShapes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	shapes := [][2]int{{1, 1}, {2, 2}, {5, 3}, {3, 5}, {10, 10}, {40, 25}, {25, 40}, {60, 8}}
	for _, sh := range shapes {
		a := randDense(r, sh[0], sh[1])
		res, err := SVD(a)
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		checkSVD(t, a, res, "shape")
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := matrix.New(4, 3)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.S {
		if s != 0 {
			t.Fatalf("zero matrix has σ = %v", res.S)
		}
	}
}

func TestSVDTruncate(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randDense(r, 8, 6)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Truncate(2)
	if tr.U.Cols != 2 || tr.V.Cols != 2 || len(tr.S) != 2 {
		t.Fatal("Truncate dimensions wrong")
	}
	// Truncating to more than available clamps to a full (independent) copy.
	if full := res.Truncate(100); len(full.S) != len(res.S) || full.U.Cols != res.U.Cols {
		t.Fatal("over-truncate should return a full-rank copy")
	}
	// Eckart–Young sanity: rank-2 approximation error equals sqrt(Σ_{i>2} σ²).
	recon := matrix.Mul(matrix.Mul(tr.U, matrix.Diag(tr.S)), tr.V.T())
	var tail float64
	for _, s := range res.S[2:] {
		tail += s * s
	}
	got := matrix.Sub(a, recon).Frobenius()
	if math.Abs(got-math.Sqrt(tail)) > 1e-9 {
		t.Fatalf("Eckart–Young violated: err %g vs %g", got, math.Sqrt(tail))
	}
}

// TestSVDTruncateOwnership pins the uniform ownership contract of
// Truncate: the truncation never shares backing storage with the
// receiver, for any rank — including the over-truncate clamp, which used
// to return the receiver itself while smaller ranks returned copies that
// still aliased S.
func TestSVDTruncateOwnership(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	a := randDense(r, 9, 5)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{1, 3, 5, 100} {
		tr := res.Truncate(rank)
		origS := append([]float64(nil), res.S...)
		origU := res.U.Clone()
		origV := res.V.Clone()
		// Mutating the truncation must not touch the original...
		for i := range tr.S {
			tr.S[i] = -1
		}
		for i := range tr.U.Data {
			tr.U.Data[i] = -7
		}
		for i := range tr.V.Data {
			tr.V.Data[i] = -7
		}
		for i, v := range res.S {
			if v != origS[i] {
				t.Fatalf("rank %d: mutating truncated S corrupted the original", rank)
			}
		}
		if !matrix.Equal(res.U, origU, 0) || !matrix.Equal(res.V, origV, 0) {
			t.Fatalf("rank %d: mutating truncated U/V corrupted the original", rank)
		}
		// ...and mutating the original must not touch a fresh truncation.
		tr2 := res.Truncate(rank)
		want := append([]float64(nil), tr2.S...)
		res.S[0] = 1e300
		res.U.Data[0] = 1e300
		if tr2.S[0] != want[0] || tr2.U.Data[0] == 1e300 {
			t.Fatalf("rank %d: mutating the original corrupted the truncation", rank)
		}
		res.S[0] = origS[0]
		res.U.Data[0] = origU.Data[0]
	}
}

func TestSVDAgreesWithSymEig(t *testing.T) {
	// Singular values of A equal sqrt of eigenvalues of AᵀA.
	r := rand.New(rand.NewSource(5))
	a := randDense(r, 12, 7)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := SymEig(matrix.TMul(a, a))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.S {
		want := math.Sqrt(math.Max(vals[i], 0))
		if math.Abs(res.S[i]-want) > 1e-9 {
			t.Fatalf("σ[%d] = %g, eig sqrt = %g", i, res.S[i], want)
		}
	}
}

func TestPInv(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randDense(r, 6, 4)
	p, err := PInv(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Moore-Penrose conditions: A·A⁺·A = A and A⁺·A·A⁺ = A⁺.
	if !matrix.Equal(matrix.Mul(matrix.Mul(a, p), a), a, 1e-9) {
		t.Error("A·A⁺·A != A")
	}
	if !matrix.Equal(matrix.Mul(matrix.Mul(p, a), p), p, 1e-9) {
		t.Error("A⁺·A·A⁺ != A⁺")
	}
	// Symmetry of projectors.
	ap := matrix.Mul(a, p)
	if !matrix.Equal(ap, ap.T(), 1e-9) {
		t.Error("A·A⁺ not symmetric")
	}
}

func TestPInvSquareInvertible(t *testing.T) {
	a := matrix.FromRows([][]float64{{4, 7}, {2, 6}})
	p, err := PInv(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	inv, _ := matrix.Inverse(a)
	if !matrix.Equal(p, inv, 1e-10) {
		t.Fatal("PInv != Inverse for invertible matrix")
	}
}

func TestPInvCutoff(t *testing.T) {
	// Diagonal [10, 0.05]: with cutoff 0.1 the small value is dropped.
	a := matrix.Diag([]float64{10, 0.05})
	p, err := PInv(a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.At(0, 0)-0.1) > 1e-12 {
		t.Errorf("p[0][0] = %g", p.At(0, 0))
	}
	if p.At(1, 1) != 0 {
		t.Errorf("small singular value not zeroed: %g", p.At(1, 1))
	}
}

func TestCond2(t *testing.T) {
	a := matrix.Diag([]float64{100, 1})
	if c := Cond2(a); math.Abs(c-100) > 1e-9 {
		t.Errorf("Cond2 = %g, want 100", c)
	}
	sing := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if c := Cond2(sing); c < 1e15 {
		t.Errorf("singular matrix cond = %g, want huge", c)
	}
}

// Property: SVD of random matrices reconstructs and stays orthonormal.
func TestPropSVD(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(12), 1+r.Intn(12)
		a := randDense(r, rows, cols)
		res, err := SVD(a)
		if err != nil {
			return false
		}
		k := len(res.S)
		recon := matrix.Mul(matrix.Mul(res.U, matrix.Diag(res.S)), res.V.T())
		ortho := matrix.Equal(matrix.TMul(res.U, res.U), matrix.Identity(k), 1e-8) &&
			matrix.Equal(matrix.TMul(res.V, res.V), matrix.Identity(k), 1e-8)
		return ortho && matrix.Equal(recon, a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvalues of AᵀA are non-negative up to rounding.
func TestPropGramEigNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randDense(r, 2+r.Intn(8), 2+r.Intn(8))
		vals, _, err := SymEig(matrix.TMul(a, a))
		if err != nil {
			return false
		}
		for _, v := range vals {
			if v < -1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
