// Truncated rank-r eigen/singular solvers: deterministic blocked subspace
// iteration with Rayleigh-Ritz projection. The full Golub-Reinsch SVD and
// EISPACK SymEig in this package cost O(n³) no matter how few triplets the
// caller keeps; every ISVD0-4 decomposition needs only the top Rank of
// them, so for the paper's typical r ≪ min(m, n) regimes the solvers here
// bring the endpoint decompositions to O(n²·r) dense — and, because they
// touch the matrix only through block matvecs, to O(NNZ·r) through a
// sparse operator (internal/sparse.Operator) without ever densifying.
//
// Determinism contract: the starting block comes from a fixed seeded
// generator filled in serial index order, every product runs on the
// deterministic blocked kernels of internal/matrix, and the
// re-orthogonalization sweeps are in-order (column by column, serial
// accumulation), so the output is bitwise identical for any worker count.
// Accuracy: Ritz pairs are iterated until their residuals fall below
// truncTol·‖A‖₂, which puts eigenvalues within 1e-11·‖A‖₂ of the full
// solver's (Bauer-Fike); the property tests in truncated_test.go pin
// agreement with the full solvers at 1e-9 relative tolerance.
//
// Convergence is linear with ratio λ_{b+1}/λ_r per iteration (b = r +
// oversampling), so the solver shines on spectra with decay past rank r
// (Gram matrices of low intrinsic rank, covariance matrices, rating
// factors) and gives up early — returning ErrNoConvergence for the caller
// to fall back on the full solver — when the spectrum is flat and the
// iteration budget (bounded by a small multiple of the full solver's
// flops) runs out.
package eig

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// Solver selects between the full O(n³) decompositions and the truncated
// rank-r subspace solvers; the zero value is SolverAuto.
type Solver int

const (
	// SolverAuto picks the truncated solver when the requested rank plus
	// oversampling is well below the operator dimension (see UseTruncated)
	// and silently falls back to the full solver when the truncated
	// iteration does not converge.
	SolverAuto Solver = iota
	// SolverFull always runs the full decomposition.
	SolverFull
	// SolverTruncated always runs the truncated solver (with the same
	// full-solver fallback on non-convergence).
	SolverTruncated
)

// String returns "auto", "full", or "truncated".
func (s Solver) String() string {
	switch s {
	case SolverAuto:
		return "auto"
	case SolverFull:
		return "full"
	case SolverTruncated:
		return "truncated"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// ParseSolver parses "auto", "full", or "truncated".
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "auto", "":
		return SolverAuto, nil
	case "full":
		return SolverFull, nil
	case "truncated":
		return SolverTruncated, nil
	default:
		return SolverAuto, fmt.Errorf("eig: unknown solver %q (want auto, full, or truncated)", s)
	}
}

// Oversample returns the subspace oversampling p used for target rank r:
// the iteration block holds r + p vectors so convergence is governed by
// λ_{r+p+1}/λ_r rather than the much tighter λ_{r+1}/λ_r.
func Oversample(r int) int {
	p := r
	if p < 8 {
		p = 8
	}
	if p > 32 {
		p = 32
	}
	return p
}

// UseTruncated reports whether this solver choice routes a rank-r
// decomposition of an operator with smaller dimension minDim to the
// truncated path. SolverAuto requires r + Oversample(r) < minDim/3, the
// regime where the subspace iteration's O(n²·(r+p)) per-sweep cost beats
// the full solver with iterations to spare.
func (s Solver) UseTruncated(r, minDim int) bool {
	switch s {
	case SolverFull:
		return false
	case SolverTruncated:
		return true
	default:
		return r > 0 && r+Oversample(r) < minDim/3
	}
}

// Op is a matrix-free linear operator: anything that can apply itself and
// its transpose to a block of column vectors. Implementations must be
// deterministic (bitwise-identical output for any worker count), which
// the blocked kernels of internal/matrix and the CSR kernels of
// internal/sparse guarantee.
type Op interface {
	// Dims returns the operator shape (rows × cols).
	Dims() (rows, cols int)
	// Apply computes dst = A·x for x of shape cols×k and dst rows×k.
	Apply(dst, x *matrix.Dense)
	// ApplyT computes dst = Aᵀ·x for x of shape rows×k and dst cols×k.
	ApplyT(dst, x *matrix.Dense)
}

// SymOp is a symmetric (A = Aᵀ) matrix-free operator.
type SymOp interface {
	// Dim returns the operator dimension n (the operator is n×n).
	Dim() int
	// ApplySym computes dst = A·x for x and dst of shape n×k.
	ApplySym(dst, x *matrix.Dense)
}

// denseOp wraps a dense matrix as an Op on the blocked kernels.
type denseOp struct{ a *matrix.Dense }

// NewDenseOp wraps a dense matrix as a matrix-free operator; Apply and
// ApplyT run on the cache-blocked MulInto/TMulInto kernels.
func NewDenseOp(a *matrix.Dense) Op { return denseOp{a} }

func (d denseOp) Dims() (int, int)            { return d.a.Rows, d.a.Cols }
func (d denseOp) Apply(dst, x *matrix.Dense)  { matrix.MulInto(dst, d.a, x) }
func (d denseOp) ApplyT(dst, x *matrix.Dense) { matrix.TMulInto(dst, d.a, x) }

// denseSymOp wraps a symmetric dense matrix as a SymOp.
type denseSymOp struct{ a *matrix.Dense }

// NewDenseSymOp wraps a symmetric dense matrix as a symmetric operator.
// It panics if the matrix is not square; symmetry itself is assumed, not
// checked (the callers pass Gram and covariance matrices).
func NewDenseSymOp(a *matrix.Dense) SymOp {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("eig: NewDenseSymOp: %dx%d not square", a.Rows, a.Cols))
	}
	return denseSymOp{a}
}

func (d denseSymOp) Dim() int                      { return d.a.Rows }
func (d denseSymOp) ApplySym(dst, x *matrix.Dense) { matrix.MulInto(dst, d.a, x) }

// gramOp applies AᵀA as two operator applications without materializing
// the Gram matrix: O(cost(A)·k) per block apply instead of an O(rows·
// cols²) construction. This kills the explicit Gram matrix in the ISVD
// Gram step whenever the endpoint Gram reduces to a plain AᵀA (entrywise
// non-negative data, see core.gramEig).
type gramOp struct {
	op   Op
	work *matrix.Dense // rows×k intermediate, sized lazily
}

// NewGramOp returns the symmetric operator AᵀA of op (dimension cols).
func NewGramOp(op Op) SymOp { return &gramOp{op: op} }

func (g *gramOp) Dim() int {
	_, c := g.op.Dims()
	return c
}

func (g *gramOp) ApplySym(dst, x *matrix.Dense) {
	r, _ := g.op.Dims()
	if g.work == nil || g.work.Rows != r || g.work.Cols != x.Cols {
		g.work = matrix.New(r, x.Cols)
	}
	g.op.Apply(g.work, x)
	g.op.ApplyT(dst, g.work)
}

// coGramOp applies A·Aᵀ (dimension rows); the wide-matrix counterpart of
// gramOp.
type coGramOp struct {
	op   Op
	work *matrix.Dense // cols×k intermediate
}

// NewCoGramOp returns the symmetric operator A·Aᵀ of op (dimension rows).
func NewCoGramOp(op Op) SymOp { return &coGramOp{op: op} }

func (g *coGramOp) Dim() int {
	r, _ := g.op.Dims()
	return r
}

func (g *coGramOp) ApplySym(dst, x *matrix.Dense) {
	_, c := g.op.Dims()
	if g.work == nil || g.work.Rows != c || g.work.Cols != x.Cols {
		g.work = matrix.New(c, x.Cols)
	}
	g.op.ApplyT(g.work, x)
	g.op.Apply(dst, g.work)
}

// Options configures the truncated solvers beyond the target rank; the
// zero value reproduces the cold-start behavior of TruncatedSymEig and
// TruncatedSVD exactly.
type Options struct {
	// Start seeds TruncatedSymEigOpts' subspace iteration with an initial
	// block of column vectors (dim×k, k ≥ 1) instead of the fixed random
	// start — typically the eigenvector block of a previous decomposition
	// of a drifted operator, which converges in one or two sweeps instead
	// of from scratch. Columns beyond the iteration block size are
	// ignored; when k is below the block size the remaining directions
	// are filled from the fixed seeded generator, so the iteration always
	// carries the full oversampled block. The result is bitwise
	// deterministic given the same Start for any worker count.
	Start *matrix.Dense
	// StartU (rows×k) and StartV (cols×k) seed TruncatedSVDOpts from a
	// previous decomposition's singular factors. The solver iterates on
	// the Gram operator of the smaller side, so it uses StartV when
	// rows ≥ cols and StartU otherwise; the unused side may be nil.
	StartU, StartV *matrix.Dense
	// Sweeps, when non-nil, receives the number of subspace sweeps the
	// iteration ran (diagnostics: the warm-start win is exactly the
	// sweeps it saves).
	Sweeps *int
}

const (
	// truncSeed seeds the starting block. It is a fixed constant — the
	// deterministic-replay contract of this repository forbids
	// run-dependent randomness in any kernel.
	truncSeed = 0x7ca1ced
	// truncTol is the relative Ritz-residual convergence threshold:
	// iteration stops when every kept pair satisfies ‖A·v − θ·v‖ ≤
	// truncTol·‖A‖₂ (with ‖A‖₂ estimated by the largest |Ritz value|),
	// which bounds the eigenvalue error by the same quantity.
	truncTol = 1e-11
)

// truncMaxIter bounds the subspace sweeps so a non-converging run (flat
// spectrum) costs at most a small multiple of the full solver before
// ErrNoConvergence hands control back: each sweep is ~4·n²·b flops
// against the full solver's ~3·n³, so n/b sweeps ≈ one full solve.
func truncMaxIter(n, b int) int {
	it := 16 + 3*n/b
	if it > 300 {
		it = 300
	}
	return it
}

// TruncatedSymEig computes the rank leading (algebraically largest)
// eigenpairs of the symmetric operator op by deterministic blocked
// subspace iteration: a seeded random start block of rank+Oversample
// vectors, in-order Gram-Schmidt re-orthogonalization between sweeps, and
// Rayleigh-Ritz projection solved by the full dense SymEig on the small
// projected matrix. Eigenvalues are returned descending with their
// eigenvectors in the columns of vecs (n×rank, orthonormal,
// sign-canonicalized like SymEig's).
//
// The iteration tracks the dominant-magnitude subspace, so the result is
// the algebraically-largest pairs provided no more than Oversample(rank)
// negative eigenvalues exceed the rank-th positive one in magnitude —
// true for the Gram-type (near-PSD) operators this solver serves. On
// spectra too flat to converge within the iteration budget it returns
// ErrNoConvergence; callers fall back to the full solver.
func TruncatedSymEig(op SymOp, rank int) (vals []float64, vecs *matrix.Dense, err error) {
	return TruncatedSymEigOpts(op, rank, Options{})
}

// TruncatedSymEigOpts is TruncatedSymEig with solver options: with a warm
// Start block (the eigenvectors of a previous decomposition of a drifted
// operator) the iteration begins inside — or near — the invariant
// subspace it is chasing and typically converges in one or two sweeps,
// which is the refresh path of the incremental-update engine
// (internal/update, core.UpdateSparse).
func TruncatedSymEigOpts(op SymOp, rank int, o Options) (vals []float64, vecs *matrix.Dense, err error) {
	n := op.Dim()
	if rank <= 0 || rank > n {
		return nil, nil, fmt.Errorf("eig: TruncatedSymEig: rank %d out of range for dimension %d", rank, n)
	}
	if o.Start != nil && o.Start.Rows != n {
		return nil, nil, fmt.Errorf("eig: TruncatedSymEig: start block has %d rows, want %d", o.Start.Rows, n)
	}
	b := rank + Oversample(rank)
	if b > n {
		b = n
	}

	q := matrix.New(n, b)  // current orthonormal block
	qt := matrix.New(b, n) // row-major transpose workspace for the in-order MGS
	z := matrix.New(n, b)  // A·Q
	v := matrix.New(n, b)  // Ritz vectors Q·W
	av := matrix.New(n, b) // their images A·V = Z·W
	t := matrix.New(b, b)  // projected operator QᵀAQ

	// Deterministic start: warm-start columns first (in order), then the
	// fixed-seed serial fill for the remaining block directions. The rng
	// stream depends only on how many rows it fills, so the start block
	// is a pure function of (op dims, rank, o.Start).
	warm := 0
	if o.Start != nil {
		warm = o.Start.Cols
		if warm > b {
			warm = b
		}
		for j := 0; j < warm; j++ {
			row := qt.RowView(j)
			for i := 0; i < n; i++ {
				row[i] = o.Start.Data[i*o.Start.Cols+j]
			}
		}
	}
	rng := rand.New(rand.NewSource(truncSeed))
	for i := warm * n; i < len(qt.Data); i++ {
		qt.Data[i] = rng.NormFloat64()
	}
	orthonormalizeRows(qt)
	matrix.TransposeInto(q, qt)

	maxIter := truncMaxIter(n, b)
	prevRes := math.Inf(1)
	stalled := 0
	for iter := 0; iter < maxIter; iter++ {
		if o.Sweeps != nil {
			*o.Sweeps = iter + 1
		}
		op.ApplySym(z, q)
		matrix.TMulInto(t, q, z)
		symmetrizeInPlace(t)
		tVals, tVecs, err := SymEig(t)
		if err != nil {
			return nil, nil, err
		}
		matrix.MulInto(v, q, tVecs)
		matrix.MulInto(av, z, tVecs)

		scale := math.Max(math.Abs(tVals[0]), math.Abs(tVals[b-1]))
		res := maxRitzResidual(av, v, tVals, rank)
		if scale == 0 || res <= truncTol*scale || b == n {
			// Signed-top certificate (skipped when b == n: the projection
			// is then exact and everything is captured). The iteration
			// converged to the dominant-MAGNITUDE invariant subspace;
			// every eigenvalue outside it has magnitude at most
			// m* = min_j |θ_j|, so the algebraically-largest rank pairs
			// are provably inside iff m* ≤ θ_rank. Always true for PSD
			// operators (θ_b ≤ θ_rank and θ_b ≥ 0 up to rounding); an
			// indefinite matrix whose negative spectrum crowds out the
			// certificate — where the top signed pairs may genuinely live
			// outside the captured subspace — fails over to the full
			// solver instead of returning silently wrong pairs.
			if b < n && scale != 0 {
				minAbs := math.Inf(1)
				for _, th := range tVals {
					if a := math.Abs(th); a < minAbs {
						minAbs = a
					}
				}
				if minAbs > tVals[rank-1]+1e-9*scale {
					return nil, nil, ErrNoConvergence
				}
			}
			vals = append([]float64(nil), tVals[:rank]...)
			vecs = v.SubMatrix(0, n, 0, rank)
			canonicalizeColumnSigns(vecs)
			return vals, vecs, nil
		}
		// Flat-spectrum bail-out. Past the starting transient the
		// per-sweep residual contraction settles to λ_{b+1}/λ_r; once the
		// sweeps still needed at the observed ratio exceed twice the
		// remaining budget, convergence is out of reach — give up now
		// (the caller falls back to the full solver) instead of burning
		// the rest of the budget first. Residuals that stop shrinking
		// altogether (ratio ~1, oscillation) get two strikes.
		if iter >= 6 {
			ratio := res / prevRes
			switch {
			case ratio >= 0.999:
				stalled++
				if stalled >= 2 {
					return nil, nil, ErrNoConvergence
				}
			case ratio > 0.3:
				stalled = 0
				projected := math.Log(truncTol*scale/res) / math.Log(ratio)
				if projected > 2*float64(maxIter-iter) {
					return nil, nil, ErrNoConvergence
				}
			default:
				stalled = 0
			}
		}
		prevRes = res

		// Next subspace: orthonormalize the Ritz images (subspace
		// iteration with the Rayleigh-Ritz rotation folded in).
		matrix.TransposeInto(qt, av)
		orthonormalizeRows(qt)
		matrix.TransposeInto(q, qt)
	}
	return nil, nil, ErrNoConvergence
}

// TruncatedSVD computes the rank leading singular triplets of op via
// TruncatedSymEig on the Gram operator of the smaller side (AᵀA when
// rows ≥ cols, A·Aᵀ otherwise) and recovers the other factor with one
// block apply — U = A·V·Σ⁻¹ or V = Aᵀ·U·Σ⁻¹. Sign canonicalization
// matches SVD's (tall: by V, wide: by U), so where the solvers' vectors
// agree they agree in orientation too. Zero singular values yield zero
// columns in the recovered factor. Returns ErrNoConvergence like
// TruncatedSymEig.
func TruncatedSVD(op Op, rank int) (*SVDResult, error) {
	return TruncatedSVDOpts(op, rank, Options{})
}

// TruncatedSVDOpts is TruncatedSVD with solver options: Options.StartU /
// StartV seed the internal Gram-operator subspace iteration from a
// previous decomposition's factors (the solver picks StartV when
// rows ≥ cols, StartU otherwise), so a re-solve of a drifted matrix — the
// warm-refresh path of the incremental-update engine — converges in a
// sweep or two instead of from scratch.
func TruncatedSVDOpts(op Op, rank int, o Options) (*SVDResult, error) {
	m, n := op.Dims()
	minDim := m
	if n < minDim {
		minDim = n
	}
	if rank <= 0 || rank > minDim {
		return nil, fmt.Errorf("eig: TruncatedSVD: rank %d out of range for %dx%d", rank, m, n)
	}
	if m >= n {
		vals, v, err := TruncatedSymEigOpts(NewGramOp(op), rank, Options{Start: o.StartV, Sweeps: o.Sweeps})
		if err != nil {
			return nil, err
		}
		s := sqrtClampedVals(vals)
		u := matrix.New(m, rank)
		op.Apply(u, v)
		scaleColumnsByInv(u, s)
		canonicalizeSVDSigns(u, v)
		return &SVDResult{U: u, S: s, V: v}, nil
	}
	vals, u, err := TruncatedSymEigOpts(NewCoGramOp(op), rank, Options{Start: o.StartU, Sweeps: o.Sweeps})
	if err != nil {
		return nil, err
	}
	s := sqrtClampedVals(vals)
	v := matrix.New(n, rank)
	op.ApplyT(v, u)
	scaleColumnsByInv(v, s)
	canonicalizeSVDSigns(v, u) // wide convention: orient by U, like SVD's transposed path
	return &SVDResult{U: u, S: s, V: v}, nil
}

// orthonormalizeRows runs in-order modified Gram-Schmidt (with one
// re-orthogonalization pass, enough for the well-scaled blocks the
// iteration produces) over the rows of qt. Rows that collapse to zero —
// rank-deficient images, e.g. an operator of rank below the block size —
// are deterministically replaced by the first coordinate basis vector
// that keeps the block full-rank. Entirely serial: every dot product
// accumulates in index order, so the result is bitwise identical
// regardless of the worker count of the surrounding kernels.
func orthonormalizeRows(qt *matrix.Dense) {
	b, n := qt.Rows, qt.Cols
	for i := 0; i < b; i++ {
		ri := qt.RowView(i)
		orig := vecNorm(ri)
		projectAgainstPrev(qt, ri, i)
		norm := vecNorm(ri)
		// A row reduced to (near-)nothing no longer carries subspace
		// information; swap in basis vectors until one survives.
		for e := 0; norm <= orig*1e-13 || norm == 0; e++ {
			if e >= n {
				// Cannot happen for i < b <= n (the previous rows span
				// i < n dimensions), but stay safe.
				break
			}
			for k := range ri {
				ri[k] = 0
			}
			ri[(i+e)%n] = 1
			orig = 1
			projectAgainstPrev(qt, ri, i)
			norm = vecNorm(ri)
		}
		if norm != 0 {
			inv := 1 / norm
			for k := range ri {
				ri[k] *= inv
			}
		}
	}
}

// projectAgainstPrev removes from ri its components along the first i
// (already orthonormal) rows of qt, twice — the in-order MGS sweep with
// one re-orthogonalization pass. The serial index-order accumulation here
// is load-bearing for the bitwise-determinism contract.
func projectAgainstPrev(qt *matrix.Dense, ri []float64, i int) {
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < i; j++ {
			rj := qt.RowView(j)
			var d float64
			for k, vk := range ri {
				d += vk * rj[k]
			}
			for k := range ri {
				ri[k] -= d * rj[k]
			}
		}
	}
}

func vecNorm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// symmetrizeInPlace replaces t with (t + tᵀ)/2; the projected matrix is
// symmetric up to rounding and SymEig assumes exact symmetry.
func symmetrizeInPlace(t *matrix.Dense) {
	n := t.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := (t.Data[i*n+j] + t.Data[j*n+i]) / 2
			t.Data[i*n+j] = m
			t.Data[j*n+i] = m
		}
	}
}

// maxRitzResidual returns max_j ‖av_j − θ_j·v_j‖₂ over the first rank
// Ritz pairs (columns of av and v).
func maxRitzResidual(av, v *matrix.Dense, vals []float64, rank int) float64 {
	n := av.Rows
	worst := 0.0
	for j := 0; j < rank; j++ {
		var s float64
		th := vals[j]
		for i := 0; i < n; i++ {
			d := av.Data[i*av.Cols+j] - th*v.Data[i*v.Cols+j]
			s += d * d
		}
		if r := math.Sqrt(s); r > worst {
			worst = r
		}
	}
	return worst
}

func sqrtClampedVals(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		if v > 0 {
			out[i] = math.Sqrt(v)
		}
	}
	return out
}

// SVDWith is the solver-routed thin SVD of a dense matrix, truncated to
// rank: the truncated subspace solver when the routing selects it, the
// full Golub-Reinsch decomposition otherwise, and a silent full-solver
// fallback when the truncated iteration reports ErrNoConvergence (flat
// spectrum, or the signed-top certificate failed on an indefinite
// operator). The result always has exactly rank columns and is fully
// owned by the caller. This is the single place the
// try-truncated-fall-back-to-full policy lives for dense SVDs; SymEigWith
// is its symmetric counterpart.
func SVDWith(a *matrix.Dense, rank int, solver Solver) (*SVDResult, error) {
	minDim := a.Rows
	if a.Cols < minDim {
		minDim = a.Cols
	}
	if rank <= 0 || rank > minDim {
		rank = minDim
	}
	if solver.UseTruncated(rank, minDim) {
		res, err := TruncatedSVD(NewDenseOp(a), rank)
		if err == nil {
			return res, nil
		}
		if err != ErrNoConvergence {
			return nil, err
		}
	}
	res, err := SVD(a)
	if err != nil {
		return nil, err
	}
	return res.Truncate(rank), nil
}

// SymEigWith is the solver-routed symmetric eigen-decomposition of a
// dense matrix, truncated to the rank leading (algebraically largest)
// pairs, with the same fallback policy as SVDWith.
func SymEigWith(a *matrix.Dense, rank int, solver Solver) (vals []float64, vecs *matrix.Dense, err error) {
	if rank <= 0 || rank > a.Rows {
		rank = a.Rows
	}
	if solver.UseTruncated(rank, a.Rows) {
		vals, vecs, err = TruncatedSymEig(NewDenseSymOp(a), rank)
		if err == nil {
			return vals, vecs, nil
		}
		if err != ErrNoConvergence {
			return nil, nil, err
		}
	}
	vals, vecs, err = SymEig(a)
	if err != nil {
		return nil, nil, err
	}
	return vals[:rank], vecs.SubMatrix(0, vecs.Rows, 0, rank), nil
}

// scaleColumnsByInv scales column j of m by 1/s[j]; zero singular values
// leave a zero column (the recoverU convention of core).
func scaleColumnsByInv(m *matrix.Dense, s []float64) {
	for j, sv := range s {
		inv := 0.0
		if sv != 0 {
			inv = 1 / sv
		}
		for i := 0; i < m.Rows; i++ {
			m.Data[i*m.Cols+j] *= inv
		}
	}
}
