package eig

import (
	"math"

	"repro/internal/matrix"
)

// PInv returns the Moore-Penrose pseudo-inverse of a, computed from the
// SVD. Singular values below cutoff are treated as zero, mirroring the
// paper's Section 4.4.2.2 ("replace singular values smaller than 0.1 with
// zero") — pass 0.1 for paper-faithful behaviour, or a relative threshold
// of your own. A cutoff <= 0 selects the conventional machine-precision
// threshold max(m,n)·σ₁·1e-15.
func PInv(a *matrix.Dense, cutoff float64) (*matrix.Dense, error) {
	return PInvWith(a, cutoff, SolverFull, 0)
}

// PInvWith is PInv with an explicit solver choice. rank bounds the
// truncated decomposition (0 or anything at or above min(m, n) means the
// full minimum dimension); when the truncated path is taken, singular
// triplets beyond rank are treated as zero — callers that know their
// matrix has at most rank meaningful singular values (the ISVD factor
// inversions) lose nothing. SolverAuto only routes to the truncated
// solver when rank is well below min(m, n) (see Solver.UseTruncated), and
// any truncated non-convergence falls back to the full decomposition, so
// PInvWith never fails where PInv would succeed.
func PInvWith(a *matrix.Dense, cutoff float64, solver Solver, rank int) (*matrix.Dense, error) {
	res, err := SVDWith(a, rank, solver)
	if err != nil {
		return nil, err
	}
	if cutoff <= 0 {
		dim := a.Rows
		if a.Cols > dim {
			dim = a.Cols
		}
		if len(res.S) > 0 {
			cutoff = float64(dim) * res.S[0] * 1e-15
		}
	}
	// pinv = V · diag(1/s) · Uᵀ for s > cutoff: scale V's columns by the
	// inverted singular values, then run the blocked MulT kernel —
	// out[i][j] = Σ_t (V[i][t]·inv[t]) · U[j][t] in the same ascending t
	// order as the former triple loop (bitwise identical for the finite
	// factors an SVD produces), but cache-blocked and pool-sharded.
	k := len(res.S)
	inv := make([]float64, k)
	for i, s := range res.S {
		if s > cutoff {
			inv[i] = 1 / s
		}
	}
	vs := matrix.New(a.Cols, k)
	for i := 0; i < a.Cols; i++ {
		row := res.V.RowView(i)
		out := vs.RowView(i)
		for t, v := range row[:k] {
			out[t] = v * inv[t]
		}
	}
	return matrix.MulTInto(matrix.New(a.Cols, a.Rows), vs, res.U), nil
}

// Cond2 returns the 2-norm condition number σ_max/σ_min of a.
// A singular matrix reports +Inf (as does an SVD failure).
func Cond2(a *matrix.Dense) float64 {
	res, err := SVD(a)
	if err != nil || len(res.S) == 0 {
		return inf()
	}
	smin := res.S[len(res.S)-1]
	if smin == 0 {
		return inf()
	}
	return res.S[0] / smin
}

func inf() float64 { return math.Inf(1) }
