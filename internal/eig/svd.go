package eig

import (
	"math"
	"sort"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

const maxSVDIterations = 75

// SVDResult holds a thin singular value decomposition A ≈ U·diag(S)·Vᵀ
// with k = min(rows, cols) columns in U and V and S sorted descending.
type SVDResult struct {
	U *matrix.Dense // rows × k, orthonormal columns
	S []float64     // k singular values, descending, non-negative
	V *matrix.Dense // cols × k, orthonormal columns
}

// SVD computes the thin singular value decomposition of a by the
// Golub-Reinsch algorithm (Householder bidiagonalization followed by
// implicit-shift QR on the bidiagonal). The input is not modified.
func SVD(a *matrix.Dense) (*SVDResult, error) {
	if a.Rows >= a.Cols {
		return svdTallOwned(a.Clone())
	}
	// Wide matrix: decompose the transpose and swap factors. The
	// transpose is written once into a fresh workspace that svdTallOwned
	// then consumes in place (it becomes U) — the former a.T() followed
	// by an internal Clone allocated and copied the m·n buffer twice.
	at := matrix.TransposeInto(matrix.New(a.Cols, a.Rows), a)
	res, err := svdTallOwned(at)
	if err != nil {
		return nil, err
	}
	return &SVDResult{U: res.V, S: res.S, V: res.U}, nil
}

// Truncate returns the rank-r truncation of the decomposition as a fully
// independent copy: U, V, and S never alias the receiver's storage, for
// any rank (a rank at or above len(S) returns a full copy). Mutating the
// truncation therefore never corrupts the original, and vice versa —
// pinned by TestSVDTruncateOwnership.
func (r *SVDResult) Truncate(rank int) *SVDResult {
	if rank > len(r.S) {
		rank = len(r.S)
	}
	return &SVDResult{
		U: r.U.SubMatrix(0, r.U.Rows, 0, rank),
		S: append([]float64(nil), r.S[:rank]...),
		V: r.V.SubMatrix(0, r.V.Rows, 0, rank),
	}
}

// svdTallOwned computes the SVD of a matrix with Rows >= Cols, consuming
// its argument: a is overwritten in place and becomes U in the result.
// Callers that need their matrix afterwards pass a.Clone().
func svdTallOwned(a *matrix.Dense) (*SVDResult, error) {
	m, n := a.Rows, a.Cols
	v := matrix.New(n, n)
	w := make([]float64, n)
	rv1 := make([]float64, n)

	var c, f, h, s, x, y, z float64
	var anorm, g, scale float64
	var l int

	// Pool sweep bodies, hoisted out of the iteration loops and reused
	// via the sv* variables so each sweep costs one closure allocation
	// per SVD instead of one per iteration (each parallel.For returns
	// before the variables are rewritten, so sharing is race-free).
	var (
		svI, svL int
		svF      float64
	)
	// Each column j > svI is reflected against the fixed Householder
	// vector in column svI, so the columns shard independently onto the
	// pool (dot product and update keep their serial k order per column).
	colReflect := func(jlo, jhi int) {
		for j := svL + jlo; j < svL+jhi; j++ {
			sj := 0.0
			for k := svI; k < m; k++ {
				sj += a.At(k, svI) * a.At(k, j)
			}
			fj := sj / svF
			for k := svI; k < m; k++ {
				a.Set(k, j, a.At(k, j)+fj*a.At(k, svI))
			}
		}
	}
	// Rows j > svI are reflected against the fixed row svI; independent
	// across j, sharded on the pool.
	rowReflect := func(jlo, jhi int) {
		for j := svL + jlo; j < svL+jhi; j++ {
			sj := 0.0
			for k := svL; k < n; k++ {
				sj += a.At(j, k) * a.At(svI, k)
			}
			for k := svL; k < n; k++ {
				a.Set(j, k, a.At(j, k)+sj*rv1[k])
			}
		}
	}
	// Columns j > svI of V transform independently against the (already
	// written) column svI; sharded on the pool.
	vAccumulate := func(jlo, jhi int) {
		for j := svL + jlo; j < svL+jhi; j++ {
			sj := 0.0
			for k := svL; k < n; k++ {
				sj += a.At(svI, k) * v.At(k, j)
			}
			for k := svL; k < n; k++ {
				v.Set(k, j, v.At(k, j)+sj*v.At(k, svI))
			}
		}
	}
	// Columns j > svI transform independently against column svI;
	// sharded on the pool.
	uAccumulate := func(jlo, jhi int) {
		for j := svL + jlo; j < svL+jhi; j++ {
			sj := 0.0
			for k := svL; k < m; k++ {
				sj += a.At(k, svI) * a.At(k, j)
			}
			fj := (sj / a.At(svI, svI)) * svF
			for k := svI; k < m; k++ {
				a.Set(k, j, a.At(k, j)+fj*a.At(k, svI))
			}
		}
	}

	// Householder reduction to bidiagonal form.
	for i := 0; i < n; i++ {
		l = i + 1
		rv1[i] = scale * g
		g, s, scale = 0, 0, 0
		if i < m {
			for k := i; k < m; k++ {
				scale += math.Abs(a.At(k, i))
			}
			if scale != 0 {
				for k := i; k < m; k++ {
					a.Set(k, i, a.At(k, i)/scale)
					s += a.At(k, i) * a.At(k, i)
				}
				f = a.At(i, i)
				g = -math.Copysign(math.Sqrt(s), f)
				h = f*g - s
				a.Set(i, i, f-g)
				if i != n-1 {
					svI, svL, svF = i, l, h
					parallel.For(n-l, parallel.Grain(4*(m-i)), colReflect)
				}
				for k := i; k < m; k++ {
					a.Set(k, i, a.At(k, i)*scale)
				}
			}
		}
		w[i] = scale * g

		g, s, scale = 0, 0, 0
		if i < m && i != n-1 {
			for k := l; k < n; k++ {
				scale += math.Abs(a.At(i, k))
			}
			if scale != 0 {
				for k := l; k < n; k++ {
					a.Set(i, k, a.At(i, k)/scale)
					s += a.At(i, k) * a.At(i, k)
				}
				f = a.At(i, l)
				g = -math.Copysign(math.Sqrt(s), f)
				h = f*g - s
				a.Set(i, l, f-g)
				for k := l; k < n; k++ {
					rv1[k] = a.At(i, k) / h
				}
				if i != m-1 {
					svI, svL = i, l
					parallel.For(m-l, parallel.Grain(4*(n-l)), rowReflect)
				}
				for k := l; k < n; k++ {
					a.Set(i, k, a.At(i, k)*scale)
				}
			}
		}
		anorm = math.Max(anorm, math.Abs(w[i])+math.Abs(rv1[i]))
	}

	// Accumulate right-hand transformations.
	for i := n - 1; i >= 0; i-- {
		if i < n-1 {
			if g != 0 {
				for j := l; j < n; j++ {
					v.Set(j, i, (a.At(i, j)/a.At(i, l))/g)
				}
				svI, svL = i, l
				parallel.For(n-l, parallel.Grain(4*(n-l)), vAccumulate)
			}
			for j := l; j < n; j++ {
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		}
		v.Set(i, i, 1)
		g = rv1[i]
		l = i
	}

	// Accumulate left-hand transformations.
	for i := n - 1; i >= 0; i-- {
		l = i + 1
		g = w[i]
		if i < n-1 {
			for j := l; j < n; j++ {
				a.Set(i, j, 0)
			}
		}
		if g != 0 {
			g = 1 / g
			if i != n-1 {
				svI, svL, svF = i, l, g
				parallel.For(n-l, parallel.Grain(4*(m-l)), uAccumulate)
			}
			for j := i; j < m; j++ {
				a.Set(j, i, a.At(j, i)*g)
			}
		} else {
			for j := i; j < m; j++ {
				a.Set(j, i, 0)
			}
		}
		a.Set(i, i, a.At(i, i)+1)
	}

	// Diagonalize the bidiagonal form.
	for k := n - 1; k >= 0; k-- {
		for its := 0; ; its++ {
			if its >= maxSVDIterations {
				return nil, ErrNoConvergence
			}
			flag := true
			var nm int
			for l = k; l >= 0; l-- {
				nm = l - 1
				if math.Abs(rv1[l])+anorm == anorm {
					flag = false
					break
				}
				if math.Abs(w[nm])+anorm == anorm {
					break
				}
			}
			if flag {
				// Cancellation of rv1[l] when w[nm] is negligible.
				c, s = 0, 1
				for i := l; i <= k; i++ {
					f = s * rv1[i]
					rv1[i] = c * rv1[i]
					if math.Abs(f)+anorm == anorm {
						break
					}
					g = w[i]
					h = math.Hypot(f, g)
					w[i] = h
					h = 1 / h
					c = g * h
					s = -f * h
					for j := 0; j < m; j++ {
						y = a.At(j, nm)
						z = a.At(j, i)
						a.Set(j, nm, y*c+z*s)
						a.Set(j, i, z*c-y*s)
					}
				}
			}
			z = w[k]
			if l == k {
				// Converged; enforce non-negative singular value.
				if z < 0 {
					w[k] = -z
					for j := 0; j < n; j++ {
						v.Set(j, k, -v.At(j, k))
					}
				}
				break
			}
			// Shift from bottom 2×2 minor.
			x = w[l]
			nm = k - 1
			y = w[nm]
			g = rv1[nm]
			h = rv1[k]
			f = ((y-z)*(y+z) + (g-h)*(g+h)) / (2 * h * y)
			g = math.Hypot(f, 1)
			f = ((x-z)*(x+z) + h*((y/(f+math.Copysign(g, f)))-h)) / x

			// Next QR transformation.
			c, s = 1, 1
			for j := l; j <= nm; j++ {
				i := j + 1
				g = rv1[i]
				y = w[i]
				h = s * g
				g = c * g
				z = math.Hypot(f, h)
				rv1[j] = z
				c = f / z
				s = h / z
				f = x*c + g*s
				g = g*c - x*s
				h = y * s
				y = y * c
				for jj := 0; jj < n; jj++ {
					x = v.At(jj, j)
					z = v.At(jj, i)
					v.Set(jj, j, x*c+z*s)
					v.Set(jj, i, z*c-x*s)
				}
				z = math.Hypot(f, h)
				w[j] = z
				if z != 0 {
					z = 1 / z
					c = f * z
					s = h * z
				}
				f = c*g + s*y
				x = c*y - s*g
				for jj := 0; jj < m; jj++ {
					y = a.At(jj, j)
					z = a.At(jj, i)
					a.Set(jj, j, y*c+z*s)
					a.Set(jj, i, z*c-y*s)
				}
			}
			rv1[l] = 0
			rv1[k] = f
			w[k] = x
		}
	}

	sortSVD(a, w, v)
	canonicalizeSVDSigns(a, v)
	return &SVDResult{U: a, S: w, V: v}, nil
}

// sortSVD permutes the decomposition so singular values descend. The
// permutation is applied in place by walking its cycles with a single
// column buffer (pure data movement — no matrix-sized temporaries and
// no arithmetic, so results are unchanged bitwise).
func sortSVD(u *matrix.Dense, w []float64, v *matrix.Dense) {
	n := len(w)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
	buf := make([]float64, u.Rows+v.Rows+1)
	// Walk the cycles of newJ -> idx[newJ]: save the cycle head, shift
	// each (w, u-col, v-col) triple from its source slot, restore the
	// head at the cycle's end. idx entries are marked done with -1.
	saveCol := func(j int) {
		buf[0] = w[j]
		for i := 0; i < u.Rows; i++ {
			buf[1+i] = u.Data[i*u.Cols+j]
		}
		for i := 0; i < v.Rows; i++ {
			buf[1+u.Rows+i] = v.Data[i*v.Cols+j]
		}
	}
	moveCol := func(dst, src int) {
		w[dst] = w[src]
		for i := 0; i < u.Rows; i++ {
			u.Data[i*u.Cols+dst] = u.Data[i*u.Cols+src]
		}
		for i := 0; i < v.Rows; i++ {
			v.Data[i*v.Cols+dst] = v.Data[i*v.Cols+src]
		}
	}
	restoreCol := func(j int) {
		w[j] = buf[0]
		for i := 0; i < u.Rows; i++ {
			u.Data[i*u.Cols+j] = buf[1+i]
		}
		for i := 0; i < v.Rows; i++ {
			v.Data[i*v.Cols+j] = buf[1+u.Rows+i]
		}
	}
	for start := 0; start < n; start++ {
		if idx[start] < 0 || idx[start] == start {
			continue
		}
		saveCol(start)
		j := start
		for idx[j] != start {
			src := idx[j]
			moveCol(j, src)
			idx[j] = -1
			j = src
		}
		restoreCol(j)
		idx[j] = -1
	}
}

// canonicalizeSVDSigns orients each (u_j, v_j) pair so the
// largest-magnitude entry of v_j is non-negative, for determinism.
func canonicalizeSVDSigns(u, v *matrix.Dense) {
	for j := 0; j < v.Cols; j++ {
		best, bestAbs := 0.0, 0.0
		for i := 0; i < v.Rows; i++ {
			if a := math.Abs(v.At(i, j)); a > bestAbs {
				bestAbs, best = a, v.At(i, j)
			}
		}
		if best < 0 {
			for i := 0; i < v.Rows; i++ {
				v.Set(i, j, -v.At(i, j))
			}
			for i := 0; i < u.Rows; i++ {
				u.Set(i, j, -u.At(i, j))
			}
		}
	}
}
