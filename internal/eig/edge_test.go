package eig

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestSymEig1x1(t *testing.T) {
	vals, vecs, err := SymEig(matrix.FromRows([][]float64{{7}}))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 7 || math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-12 {
		t.Fatalf("vals=%v vecs=%v", vals, vecs)
	}
}

func TestSymEigRepeatedEigenvalues(t *testing.T) {
	// 3·I has a triple eigenvalue; eigenvectors must still be orthonormal.
	a := matrix.Identity(4).Scale(3)
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if math.Abs(v-3) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
	if !matrix.Equal(matrix.TMul(vecs, vecs), matrix.Identity(4), 1e-10) {
		t.Fatal("eigenvectors not orthonormal under degeneracy")
	}
}

func TestSymEigExtremeScales(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, scale := range []float64{1e-12, 1e-6, 1e6, 1e12} {
		n := 8
		a := matrix.New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64() * scale
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEig(a)
		if err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		recon := matrix.Mul(matrix.Mul(vecs, matrix.Diag(vals)), vecs.T())
		if matrix.Sub(recon, a).Frobenius()/a.Frobenius() > 1e-9 {
			t.Fatalf("scale %g: relative error %g", scale,
				matrix.Sub(recon, a).Frobenius()/a.Frobenius())
		}
	}
}

func TestSymEigZeroMatrix(t *testing.T) {
	vals, vecs, err := SymEig(matrix.New(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v != 0 {
			t.Fatalf("vals = %v", vals)
		}
	}
	if !matrix.Equal(matrix.TMul(vecs, vecs), matrix.Identity(3), 1e-12) {
		t.Fatal("zero matrix eigenvectors not orthonormal")
	}
}

func TestSVDSingleRowAndColumn(t *testing.T) {
	row := matrix.FromRows([][]float64{{3, 4}})
	res, err := SVD(row)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.S[0]-5) > 1e-12 {
		t.Fatalf("row σ = %v", res.S)
	}
	col := matrix.FromRows([][]float64{{3}, {4}})
	res, err = SVD(col)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.S[0]-5) > 1e-12 {
		t.Fatalf("col σ = %v", res.S)
	}
}

func TestSVDIllConditioned(t *testing.T) {
	// Hilbert-like matrix: notoriously ill-conditioned, still must
	// reconstruct to near machine precision.
	n := 8
	a := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1/float64(i+j+1))
		}
	}
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := matrix.Mul(matrix.Mul(res.U, matrix.Diag(res.S)), res.V.T())
	if matrix.Sub(recon, a).Frobenius()/a.Frobenius() > 1e-10 {
		t.Fatal("Hilbert reconstruction failed")
	}
	// Singular values strictly descending, positive, spanning many orders.
	if res.S[0]/res.S[n-1] < 1e8 {
		t.Fatalf("Hilbert condition suspiciously small: %g", res.S[0]/res.S[n-1])
	}
}

func TestSVDDuplicateSingularValues(t *testing.T) {
	// Orthogonal matrix: all singular values 1.
	a := matrix.FromRows([][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{1, 0, 0},
	})
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.S {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("σ = %v", res.S)
		}
	}
}

func TestPInvZeroMatrix(t *testing.T) {
	p, err := PInv(matrix.New(3, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p.Data {
		if v != 0 {
			t.Fatal("pinv of zero matrix not zero")
		}
	}
}
