package eig

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// decayMatrix builds a rows×cols matrix with geometrically decaying
// singular spectrum (ratio ~0.7 per index, floored at 1e-5 of the top) at
// roughly the given density of non-zero entries — the r ≪ min(m,n) regime
// with spectral decay the truncated solver targets. Construction: a sum
// of min(rows, cols) scaled rank-1 patches, each supported on a random
// row/column subset of ~density fraction, so the decay survives at any
// sparsity (naively zeroing entries of a dense low-rank matrix would bury
// the tail under a flat noise bulk — the regime where the solver
// correctly refuses to converge).
func decayMatrix(rng *rand.Rand, rows, cols int, density float64) *matrix.Dense {
	k := rows
	if cols < k {
		k = cols
	}
	a := matrix.New(rows, cols)
	sr := int(density * float64(rows))
	sc := int(density * float64(cols))
	if sr < 1 {
		sr = 1
	}
	if sc < 1 {
		sc = 1
	}
	scale := 1.0
	for j := 0; j < k; j++ {
		ris := rng.Perm(rows)[:sr]
		cis := rng.Perm(cols)[:sc]
		uv := make([]float64, sr)
		vv := make([]float64, sc)
		for i := range uv {
			uv[i] = rng.NormFloat64()
		}
		for i := range vv {
			vv[i] = rng.NormFloat64()
		}
		for x, ri := range ris {
			for y, ci := range cis {
				a.Data[ri*cols+ci] += scale * uv[x] * vv[y]
			}
		}
		scale *= 0.7
		if scale < 1e-5 {
			scale = 1e-5
		}
	}
	return a
}

func maxAbs(vals []float64) float64 {
	m := 0.0
	for _, v := range vals {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// TestTruncatedSymEigAgreesWithFull compares the truncated solver against
// the full SymEig on Gram matrices across densities and ranks: values to
// 1e-9 relative to the spectral radius, vectors (up to sign) wherever the
// eigenvalue gap supports a stable comparison.
func TestTruncatedSymEigAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, density := range []float64{0.01, 0.3, 1.0} {
		for _, shape := range [][2]int{{40, 90}, {90, 40}, {70, 70}} {
			data := decayMatrix(rng, shape[0], shape[1], density)
			gram := matrix.TMul(data, data) // cols×cols PSD
			n := gram.Rows
			fullVals, fullVecs, err := SymEig(gram)
			if err != nil {
				t.Fatal(err)
			}
			for _, rank := range []int{1, 7, n} {
				vals, vecs, err := TruncatedSymEig(NewDenseSymOp(gram), rank)
				if err != nil {
					t.Fatalf("density %g shape %v rank %d: %v", density, shape, rank, err)
				}
				if len(vals) != rank || vecs.Rows != n || vecs.Cols != rank {
					t.Fatalf("rank %d: got %d values, %dx%d vectors", rank, len(vals), vecs.Rows, vecs.Cols)
				}
				scale := math.Max(maxAbs(fullVals), 1e-300)
				for j := 0; j < rank; j++ {
					if math.Abs(vals[j]-fullVals[j]) > 1e-9*scale {
						t.Errorf("density %g shape %v rank %d: λ[%d] = %.15g, full %.15g",
							density, shape, rank, j, vals[j], fullVals[j])
					}
				}
				// Vector agreement (up to sign) where the relative gap to
				// the neighbours is wide enough for the comparison to be
				// well-posed.
				for j := 0; j < rank; j++ {
					gap := math.Inf(1)
					if j > 0 {
						gap = math.Min(gap, fullVals[j-1]-fullVals[j])
					}
					if j < n-1 {
						gap = math.Min(gap, fullVals[j]-fullVals[j+1])
					}
					if gap < 1e-3*scale {
						continue
					}
					var dot float64
					for i := 0; i < n; i++ {
						dot += vecs.At(i, j) * fullVecs.At(i, j)
					}
					if math.Abs(math.Abs(dot)-1) > 1e-7 {
						t.Errorf("density %g shape %v rank %d: |cos| of eigenvector %d = %.12g",
							density, shape, rank, j, math.Abs(dot))
					}
				}
			}
		}
	}
}

// TestTruncatedSVDAgreesWithFull covers the SVD wrapper across tall,
// wide, and square shapes at the issue's rank/density grid.
func TestTruncatedSVDAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, density := range []float64{0.01, 0.3, 1.0} {
		for _, shape := range [][2]int{{90, 40}, {40, 90}, {60, 60}} {
			a := decayMatrix(rng, shape[0], shape[1], density)
			full, err := SVD(a)
			if err != nil {
				t.Fatal(err)
			}
			minDim := shape[0]
			if shape[1] < minDim {
				minDim = shape[1]
			}
			for _, rank := range []int{1, 7, minDim} {
				res, err := TruncatedSVD(NewDenseOp(a), rank)
				if err != nil {
					t.Fatalf("density %g shape %v rank %d: %v", density, shape, rank, err)
				}
				if len(res.S) != rank || res.U.Cols != rank || res.V.Cols != rank {
					t.Fatalf("rank %d: wrong output shape", rank)
				}
				s1 := math.Max(full.S[0], 1e-300)
				for j := 0; j < rank; j++ {
					// Singular values below ~√eps·σ₁ are numerically zero
					// through a Gram operator (squaring halves the digits);
					// when both solvers agree the value is in that noise
					// floor, their exact readings are not comparable.
					if res.S[j] < 1e-6*s1 && full.S[j] < 1e-6*s1 {
						continue
					}
					if math.Abs(res.S[j]-full.S[j]) > 1e-9*s1 {
						t.Errorf("density %g shape %v rank %d: σ[%d] = %.15g, full %.15g",
							density, shape, rank, j, res.S[j], full.S[j])
					}
				}
				// Reconstruction sanity on the kept triplets: A·v_j ≈ σ_j·u_j.
				for j := 0; j < rank; j++ {
					if full.S[j] < 1e-6*s1 {
						continue
					}
					var resid float64
					for i := 0; i < a.Rows; i++ {
						var av float64
						arow := a.RowView(i)
						for k := 0; k < a.Cols; k++ {
							av += arow[k] * res.V.At(k, j)
						}
						d := av - res.S[j]*res.U.At(i, j)
						resid += d * d
					}
					if math.Sqrt(resid) > 1e-8*s1 {
						t.Errorf("density %g shape %v rank %d: triplet %d residual %g",
							density, shape, rank, j, math.Sqrt(resid))
					}
				}
			}
		}
	}
}

// TestTruncatedBitwiseAcrossWorkerCounts pins the determinism contract:
// the truncated solvers produce bit-for-bit identical output whether the
// underlying kernels run serially or on 3 or 8 workers.
func TestTruncatedBitwiseAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := decayMatrix(rng, 150, 220, 0.4)
	gram := matrix.TMul(a, a)

	withWorkers := func(n int, fn func()) {
		parallel.SetWorkers(n)
		defer parallel.SetWorkers(0)
		fn()
	}

	var serialVals []float64
	var serialVecs *matrix.Dense
	var serialSVD *SVDResult
	withWorkers(1, func() {
		var err error
		serialVals, serialVecs, err = TruncatedSymEig(NewDenseSymOp(gram), 12)
		if err != nil {
			t.Fatal(err)
		}
		serialSVD, err = TruncatedSVD(NewDenseOp(a), 12)
		if err != nil {
			t.Fatal(err)
		}
	})
	for _, w := range []int{3, 8} {
		withWorkers(w, func() {
			vals, vecs, err := TruncatedSymEig(NewDenseSymOp(gram), 12)
			if err != nil {
				t.Fatal(err)
			}
			for i := range serialVals {
				if vals[i] != serialVals[i] {
					t.Fatalf("workers=%d: eigenvalue %d differs bitwise: %v vs %v", w, i, vals[i], serialVals[i])
				}
			}
			for i := range serialVecs.Data {
				if vecs.Data[i] != serialVecs.Data[i] {
					t.Fatalf("workers=%d: eigenvector element %d differs bitwise", w, i)
				}
			}
			res, err := TruncatedSVD(NewDenseOp(a), 12)
			if err != nil {
				t.Fatal(err)
			}
			for i := range serialSVD.S {
				if res.S[i] != serialSVD.S[i] {
					t.Fatalf("workers=%d: σ[%d] differs bitwise", w, i)
				}
			}
			for i := range serialSVD.U.Data {
				if res.U.Data[i] != serialSVD.U.Data[i] {
					t.Fatalf("workers=%d: U element %d differs bitwise", w, i)
				}
			}
			for i := range serialSVD.V.Data {
				if res.V.Data[i] != serialSVD.V.Data[i] {
					t.Fatalf("workers=%d: V element %d differs bitwise", w, i)
				}
			}
		})
	}
}

// TestGramOpMatchesMaterializedGram checks that the matrix-free Gram
// operator applies the same linear map as the materialized AᵀA.
func TestGramOpMatchesMaterializedGram(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := decayMatrix(rng, 30, 20, 1.0)
	gram := matrix.TMul(a, a)
	x := matrix.New(20, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := matrix.Mul(gram, x)
	got := matrix.New(20, 5)
	NewGramOp(NewDenseOp(a)).ApplySym(got, x)
	if !matrix.Equal(want, got, 1e-10*gram.MaxAbs()) {
		t.Fatal("GramOp disagrees with the materialized Gram matrix")
	}
	// Co-Gram: A·Aᵀ.
	cog := matrix.MulT(a, a)
	y := matrix.New(30, 5)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	wantC := matrix.Mul(cog, y)
	gotC := matrix.New(30, 5)
	NewCoGramOp(NewDenseOp(a)).ApplySym(gotC, y)
	if !matrix.Equal(wantC, gotC, 1e-10*cog.MaxAbs()) {
		t.Fatal("CoGramOp disagrees with the materialized A·Aᵀ")
	}
}

// TestTruncatedSymEigRankDeficient exercises the deterministic
// basis-vector fallback of the re-orthogonalization: an operator of rank
// far below the block size must still return orthonormal vectors and the
// right leading eigenvalues (including the zero matrix).
func TestTruncatedSymEigRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	// Rank-2 PSD matrix of dimension 60; block size will be 1+8 > 2.
	u := matrix.New(60, 2)
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64()
	}
	low := matrix.MulT(u, u)
	fullVals, _, err := SymEig(low)
	if err != nil {
		t.Fatal(err)
	}
	vals, vecs, err := TruncatedSymEig(NewDenseSymOp(low), 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		if math.Abs(vals[j]-fullVals[j]) > 1e-9*fullVals[0] {
			t.Errorf("rank-deficient λ[%d] = %g, full %g", j, vals[j], fullVals[j])
		}
	}
	if !matrix.Equal(matrix.TMul(vecs, vecs), matrix.Identity(5), 1e-9) {
		t.Error("rank-deficient eigenvectors not orthonormal")
	}

	zero := matrix.New(40, 40)
	vals, vecs, err = TruncatedSymEig(NewDenseSymOp(zero), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v != 0 {
			t.Fatalf("zero matrix eigenvalues = %v", vals)
		}
	}
	if !matrix.Equal(matrix.TMul(vecs, vecs), matrix.Identity(3), 1e-9) {
		t.Error("zero-matrix eigenvectors not orthonormal")
	}
}

// TestTruncatedSymEigIndefiniteCertificate pins the signed-top
// certificate: on an indefinite matrix whose negative eigenvalues
// dominate in magnitude, the dominant-magnitude iteration cannot certify
// the algebraically-largest pairs and must refuse (ErrNoConvergence →
// callers fall back to the full solver) rather than return pairs from
// the wrong end of the spectrum. With rank 2 here, the whole captured
// block is filled with large-magnitude negatives, so a silent success
// would report eigenvalues near -60 instead of +3.
func TestTruncatedSymEigIndefiniteCertificate(t *testing.T) {
	n := 120
	d := make([]float64, n)
	// A few modest positives on top, a long tail of huge negatives.
	d[0], d[1], d[2] = 3, 2.5, 2
	for i := 3; i < n; i++ {
		d[i] = -60 - float64(i)
	}
	a := matrix.Diag(d)
	vals, _, err := TruncatedSymEig(NewDenseSymOp(a), 2)
	if err == nil {
		// A success is only acceptable if it found the true top pairs.
		if math.Abs(vals[0]-3) > 1e-9 || math.Abs(vals[1]-2.5) > 1e-9 {
			t.Fatalf("indefinite spectrum returned wrong pairs without error: %v", vals)
		}
	} else if err != ErrNoConvergence {
		t.Fatalf("unexpected error: %v", err)
	}
	// The solver-routed wrapper must deliver the right answer either way.
	wVals, _, err := SymEigWith(a, 2, SolverTruncated)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wVals[0]-3) > 1e-9 || math.Abs(wVals[1]-2.5) > 1e-9 {
		t.Fatalf("SymEigWith returned wrong top pairs on indefinite spectrum: %v", wVals)
	}
}

// TestTruncatedSymEigBadRank covers the argument validation.
func TestTruncatedSymEigBadRank(t *testing.T) {
	a := matrix.Identity(5)
	if _, _, err := TruncatedSymEig(NewDenseSymOp(a), 0); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, _, err := TruncatedSymEig(NewDenseSymOp(a), 6); err == nil {
		t.Error("rank > n accepted")
	}
	if _, err := TruncatedSVD(NewDenseOp(a), -1); err == nil {
		t.Error("negative rank accepted")
	}
}

// TestSolverParse covers the Solver knob surface shared by the CLIs.
func TestSolverParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Solver
	}{{"auto", SolverAuto}, {"", SolverAuto}, {"full", SolverFull}, {"truncated", SolverTruncated}} {
		got, err := ParseSolver(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSolver(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSolver("bogus"); err == nil {
		t.Error("bogus solver accepted")
	}
	if SolverAuto.String() != "auto" || SolverFull.String() != "full" || SolverTruncated.String() != "truncated" {
		t.Error("Solver.String broken")
	}
	// Auto routing: truncated only well below the dimension.
	if !SolverAuto.UseTruncated(10, 1000) {
		t.Error("auto should truncate rank 10 of 1000")
	}
	if SolverAuto.UseTruncated(100, 320) {
		t.Error("auto should not truncate rank 100 of 320")
	}
	if SolverFull.UseTruncated(1, 1000000) {
		t.Error("full must never truncate")
	}
	if !SolverTruncated.UseTruncated(100, 101) {
		t.Error("truncated must always truncate")
	}
}

// TestPInvWithTruncated checks the solver-routed pseudo-inverse against
// the full one on a low-rank matrix where the rank bound captures the
// whole spectrum.
func TestPInvWithTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	u := matrix.New(80, 6)
	v := matrix.New(50, 6)
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64()
	}
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	a := matrix.MulT(u, v) // rank 6, 80×50
	full, err := PInv(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := PInvWith(a, 0, SolverTruncated, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(full, trunc, 1e-8*full.MaxAbs()) {
		t.Error("truncated pseudo-inverse disagrees with the full one")
	}
	// Moore-Penrose conditions hold for the truncated result directly.
	if !matrix.Equal(matrix.Mul(matrix.Mul(a, trunc), a), a, 1e-7*a.MaxAbs()) {
		t.Error("A·A⁺·A != A for the truncated pseudo-inverse")
	}
}
