package eig

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// decayingSym returns an n×n symmetric matrix with geometric spectral
// decay (the regime the truncated solver serves).
func decayingSym(n int, rng *rand.Rand) *matrix.Dense {
	q := matrix.New(n, n)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	// Orthogonalize-ish via one Gram step is unnecessary; build A = B·D·Bᵀ
	// with random B and decaying D, which has decaying spectrum too.
	d := matrix.New(n, n)
	for i := 0; i < n; i++ {
		d.Data[i*n+i] = math.Pow(0.6, float64(i))
	}
	return matrix.Mul(matrix.Mul(q, d), q.T())
}

// TestWarmStartFewerSweeps pins the warm-start win: re-solving a
// slightly drifted operator seeded with the previous eigenvectors must
// converge in strictly fewer sweeps than the cold solve, and agree with
// the cold solution to solver tolerance.
func TestWarmStartFewerSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, rank := 120, 6
	a := decayingSym(n, rng)
	op := NewDenseSymOp(a)

	var coldSweeps int
	vals, vecs, err := TruncatedSymEigOpts(op, rank, Options{Sweeps: &coldSweeps})
	if err != nil {
		t.Fatal(err)
	}

	// Drift the operator: small symmetric perturbation.
	drift := a.Clone()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			d := 1e-4 * rng.NormFloat64()
			drift.Data[i*n+j] += d
			if i != j {
				drift.Data[j*n+i] += d
			}
		}
	}
	dop := NewDenseSymOp(drift)

	var coldDriftSweeps, warmSweeps int
	coldVals, _, err := TruncatedSymEigOpts(dop, rank, Options{Sweeps: &coldDriftSweeps})
	if err != nil {
		t.Fatal(err)
	}
	warmVals, _, err := TruncatedSymEigOpts(dop, rank, Options{Start: vecs, Sweeps: &warmSweeps})
	if err != nil {
		t.Fatal(err)
	}
	if warmSweeps >= coldDriftSweeps {
		t.Fatalf("warm start took %d sweeps, cold %d — no win", warmSweeps, coldDriftSweeps)
	}
	for i := range warmVals {
		if d := math.Abs(warmVals[i] - coldVals[i]); d > 1e-8*math.Abs(coldVals[0]) {
			t.Fatalf("warm eigenvalue %d: %g vs cold %g", i, warmVals[i], coldVals[i])
		}
	}
	_ = vals
}

// TestWarmStartSVD seeds TruncatedSVDOpts from a previous decomposition
// of a drifted matrix, for both orientations (tall routes through StartV,
// wide through StartU).
func TestWarmStartSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sh := range []struct{ m, n int }{{150, 90}, {90, 150}} {
		// Full geometrically-decaying spectrum: X·D·Y with Gaussian X, Y
		// and D_ii = 0.9^i, so the cold solve needs several sweeps and a
		// warm start has sweeps to save.
		k := sh.m
		if sh.n < k {
			k = sh.n
		}
		x := matrix.New(sh.m, k)
		y := matrix.New(k, sh.n)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		for i := range y.Data {
			y.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < k; i++ {
			scale := math.Pow(0.9, float64(i))
			row := y.RowView(i)
			for j := range row {
				row[j] *= scale
			}
		}
		a := matrix.Mul(x, y)
		rank := 5
		prev, err := TruncatedSVD(NewDenseOp(a), rank)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data {
			a.Data[i] += 1e-5 * rng.NormFloat64()
		}
		var coldSweeps, warmSweeps int
		cold, err := TruncatedSVDOpts(NewDenseOp(a), rank, Options{Sweeps: &coldSweeps})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := TruncatedSVDOpts(NewDenseOp(a), rank, Options{StartU: prev.U, StartV: prev.V, Sweeps: &warmSweeps})
		if err != nil {
			t.Fatal(err)
		}
		if warmSweeps >= coldSweeps {
			t.Fatalf("%dx%d: warm %d sweeps vs cold %d — no win", sh.m, sh.n, warmSweeps, coldSweeps)
		}
		for i := range warm.S {
			if d := math.Abs(warm.S[i] - cold.S[i]); d > 1e-8*cold.S[0] {
				t.Fatalf("%dx%d: warm σ_%d %g vs cold %g", sh.m, sh.n, i, warm.S[i], cold.S[i])
			}
		}
	}
}

// TestWarmStartDeterministic: a warm-started solve is bitwise identical
// across worker counts, like the cold one.
func TestWarmStartDeterministic(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(29))
	n, rank := 96, 5
	a := decayingSym(n, rng)
	start := matrix.New(n, rank)
	for i := range start.Data {
		start.Data[i] = rng.NormFloat64()
	}
	var refVals []float64
	var refVecs *matrix.Dense
	for _, w := range []int{1, 3, 8} {
		parallel.SetWorkers(w)
		vals, vecs, err := TruncatedSymEigOpts(NewDenseSymOp(a), rank, Options{Start: start})
		if err != nil {
			t.Fatal(err)
		}
		if w == 1 {
			refVals, refVecs = vals, vecs
			continue
		}
		for i := range vals {
			if vals[i] != refVals[i] {
				t.Fatalf("eigenvalue %d differs at %d workers", i, w)
			}
		}
		for i := range vecs.Data {
			if vecs.Data[i] != refVecs.Data[i] {
				t.Fatalf("eigenvector data differs at %d workers", w)
			}
		}
	}
}

// TestWarmStartBadDims: a start block with the wrong row count is an
// error, not a silent fallback.
func TestWarmStartBadDims(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := decayingSym(40, rng)
	if _, _, err := TruncatedSymEigOpts(NewDenseSymOp(a), 4, Options{Start: matrix.New(39, 4)}); err == nil {
		t.Error("mismatched start block accepted")
	}
}

// TestWarmStartExtraColumns: a start block wider than the iteration
// block is truncated, not an error (a caller may pass rank+p factors
// from a previous run at a larger rank).
func TestWarmStartExtraColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n, rank := 80, 3
	a := decayingSym(n, rng)
	wide := matrix.New(n, rank+Oversample(rank)+7)
	for i := range wide.Data {
		wide.Data[i] = rng.NormFloat64()
	}
	vals, _, err := TruncatedSymEigOpts(NewDenseSymOp(a), rank, Options{Start: wide})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := TruncatedSymEig(NewDenseSymOp(a), rank)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if d := math.Abs(vals[i] - ref[i]); d > 1e-8*math.Abs(ref[0]) {
			t.Fatalf("eigenvalue %d: %g vs %g", i, vals[i], ref[i])
		}
	}
}
