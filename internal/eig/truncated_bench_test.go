package eig

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/sparse"
)

// benchGram builds an n×n PSD matrix as the Gram of a 64×n data block
// with geometrically scaled rows — the ISVD workload shape (Gram of a
// wide data matrix with spectral decay, intrinsic rank 64).
func benchGram(n int) *matrix.Dense {
	rng := rand.New(rand.NewSource(91))
	w := matrix.New(64, n)
	scale := 1.0
	for i := 0; i < 64; i++ {
		row := w.RowView(i)
		for j := range row {
			row[j] = scale * rng.NormFloat64()
		}
		scale *= 0.9
	}
	return matrix.TMul(w, w)
}

// BenchmarkEigFullSymEig is the full-solver baseline of BENCH_eig.json
// (seed column: the solver every consumer ran before the truncated path).
func BenchmarkEigFullSymEig(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		a := benchGram(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := SymEig(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTruncatedSymEig(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		a := benchGram(n)
		op := NewDenseSymOp(a)
		b.Run(fmt.Sprintf("n=%d/r=20", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := TruncatedSymEig(op, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchWide(n int) *matrix.Dense {
	rng := rand.New(rand.NewSource(93))
	w := matrix.New(64, n)
	scale := 1.0
	for i := 0; i < 64; i++ {
		row := w.RowView(i)
		for j := range row {
			row[j] = scale * rng.NormFloat64()
		}
		scale *= 0.9
	}
	return w
}

// BenchmarkEigFullSVD / BenchmarkTruncatedSVD compare the endpoint-SVD
// path (ISVD0/1) on a wide 64×n data matrix.
func BenchmarkEigFullSVD(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		a := benchWide(n)
		b.Run(fmt.Sprintf("64x%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SVD(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTruncatedSVD(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		a := benchWide(n)
		op := NewDenseOp(a)
		b.Run(fmt.Sprintf("64x%d/r=20", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := TruncatedSVD(op, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sparseDecayOp builds an n×n CSR operator (the production
// sparse.Operator) with a fixed stored-entry budget regardless of n:
// decaying rank-1 patches of 8×8 cells. Per-sweep solver cost is
// O(NNZ·(r+p)), so ns/op should stay roughly flat as n² grows — the
// matrix-free scaling the ISVD sparse path relies on.
func sparseDecayOp(n, nnz int) (Op, int) {
	rng := rand.New(rand.NewSource(97))
	acc := map[[2]int]float64{}
	scale := 1.0
	for len(acc) < nnz {
		ris := rng.Perm(n)[:8]
		cis := rng.Perm(n)[:8]
		for _, r := range ris {
			for _, c := range cis {
				acc[[2]int{r, c}] += scale * rng.NormFloat64()
			}
		}
		scale *= 0.85
		if scale < 1e-4 {
			scale = 1e-4
		}
	}
	ts := make([]sparse.Triplet, 0, len(acc))
	for rc, v := range acc {
		ts = append(ts, sparse.Triplet{Row: rc[0], Col: rc[1], Val: v})
	}
	csr, err := sparse.FromCOO(n, n, ts)
	if err != nil {
		panic(err)
	}
	return sparse.NewOperator(csr), csr.NNZ()
}

func BenchmarkTruncatedSVDSparseFixedNNZ(b *testing.B) {
	const nnz = 40000
	for _, n := range []int{512, 1024, 2048} {
		op, gotNNZ := sparseDecayOp(n, nnz)
		b.Run(fmt.Sprintf("n=%d/nnz=%d/r=20", n, gotNNZ), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := TruncatedSVD(op, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
