// Package eig provides the numerical linear-algebra kernels the paper's
// algorithms rely on: a symmetric eigensolver (Householder
// tridiagonalization followed by implicit-shift QL iteration), a full
// Golub-Reinsch singular value decomposition, the Moore-Penrose
// pseudo-inverse, and 2-norm condition-number estimation. All results are
// deterministic and sorted by descending eigen/singular value.
//
//ivmf:deterministic
package eig

import (
	"errors"
	"math"
	"sort"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// ErrNoConvergence is returned when an iterative eigen or SVD sweep fails
// to converge within its iteration budget.
var ErrNoConvergence = errors.New("eig: iteration did not converge")

const maxQLIterations = 64

// SymEig computes the eigen-decomposition of the symmetric matrix a.
// It returns the eigenvalues sorted in descending order and the matrix of
// corresponding eigenvectors in its columns, such that a ≈ V·diag(vals)·Vᵀ.
// Only the lower triangle semantics of a symmetric matrix are assumed;
// the input is not modified.
func SymEig(a *matrix.Dense) (vals []float64, vecs *matrix.Dense, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("eig: SymEig: matrix not square")
	}
	n := a.Rows
	z := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e)
	if err := tql2(z, d, e); err != nil {
		return nil, nil, err
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return d[idx[x]] > d[idx[y]] })
	vals = make([]float64, n)
	vecs = matrix.New(n, n)
	for newJ, oldJ := range idx {
		vals[newJ] = d[oldJ]
		for i := 0; i < n; i++ {
			vecs.Set(i, newJ, z.At(i, oldJ))
		}
	}
	canonicalizeColumnSigns(vecs)
	return vals, vecs, nil
}

// tred2 reduces the symmetric matrix held in z to tridiagonal form using
// Householder transformations, accumulating the orthogonal transform in z.
// On return d holds the diagonal and e the subdiagonal (e[0] is unused).
// This is the classical EISPACK TRED2 routine, written against the
// backing slice directly: the O(n³) inner loops run over contiguous rows
// wherever the access pattern allows.
func tred2(z *matrix.Dense, d, e []float64) {
	n := z.Rows
	a := z.Data
	row := func(i int) []float64 { return a[i*n : (i+1)*n] }
	// The sweep bodies below are hoisted out of the i loop and reused
	// via the sw* variables, so each O(n) sweep costs one closure
	// allocation per tred2 call instead of one per iteration (the pool
	// call finishes before the variables are rewritten, so sharing them
	// is race-free). This is the dominant allocation source of SymEig.
	var (
		swI, swL int
		swRow    []float64
		swH      float64
	)
	// The e[j] dot products only read rows/columns <= swL and write
	// column swI, so they are independent across j and shard onto the
	// pool; the order-sensitive f reduction stays serial so the sum
	// keeps its j order bitwise.
	eDots := func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			rj := row(j)
			rj[swI] = swRow[j] / swH
			s := 0.0
			for k := 0; k <= j; k++ {
				s += rj[k] * swRow[k]
			}
			for k := j + 1; k <= swL; k++ {
				s += a[k*n+j] * swRow[k]
			}
			e[j] = s / swH
		}
	}
	// Serial TRED2 interleaves the e[j] update with the row updates,
	// but every row update only reads already-updated e entries
	// (k <= j), so updating all of e first is the same arithmetic —
	// and makes the row updates independent.
	rowUpdates := func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			fj := swRow[j]
			gj := e[j]
			rj := row(j)
			for k := 0; k <= j; k++ {
				rj[k] -= fj*e[k] + gj*swRow[k]
			}
		}
	}
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		ri := row(i)
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(ri[k])
			}
			if scale == 0 {
				e[i] = ri[l]
			} else {
				for k := 0; k <= l; k++ {
					ri[k] /= scale
					h += ri[k] * ri[k]
				}
				f := ri[l]
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				ri[l] = f - g
				swI, swL, swRow, swH = i, l, ri, h
				parallel.For(l+1, parallel.Grain(2*(l+1)), eDots)
				f = 0
				for j := 0; j <= l; j++ {
					f += e[j] * ri[j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					e[j] -= hh * ri[j]
				}
				parallel.For(l+1, parallel.Grain(2*(l+1)), rowUpdates)
			}
		} else {
			e[i] = ri[l]
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	// Accumulation phase, restructured for row-contiguous access:
	// g = Z[0..l,0..l]ᵀ·ri is a row-wise matvec and the update
	// Z[0..l,0..l] -= u·gᵀ (u = column i) a row-wise rank-1 update.
	// Both sweep bodies are hoisted and reused like the ones above.
	g := make([]float64, n)
	// Matvec g = Z[0..l,0..l]ᵀ·swRow sharded over output entries j:
	// each shard keeps the k loop outermost, so every g[j] accumulates
	// in the same k order as the serial code.
	matvec := func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			g[j] = 0
		}
		for k := 0; k <= swL; k++ {
			if f := swRow[k]; f != 0 {
				rk := row(k)
				for j := jlo; j < jhi; j++ {
					g[j] += f * rk[j]
				}
			}
		}
	}
	// Rank-1 update Z[0..l,0..l] -= u·gᵀ sharded over rows k.
	rank1 := func(klo, khi int) {
		for k := klo; k < khi; k++ {
			rk := row(k)
			if u := rk[swI]; u != 0 {
				for j := 0; j <= swL; j++ {
					rk[j] -= g[j] * u
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		l := i - 1
		ri := row(i)
		if d[i] != 0 {
			swI, swL, swRow = i, l, ri
			parallel.For(l+1, parallel.Grain(2*(l+1)), matvec)
			parallel.For(l+1, parallel.Grain(2*(l+1)), rank1)
		}
		d[i] = ri[i]
		ri[i] = 1
		for j := 0; j <= l; j++ {
			a[j*n+i] = 0
			ri[j] = 0
		}
	}
}

// tql2 diagonalizes a symmetric tridiagonal matrix (diagonal d,
// subdiagonal e with e[0] unused) by the implicit-shift QL algorithm,
// accumulating eigenvectors into z. This is the classical EISPACK TQL2.
// The O(n³) Givens rotations of the eigenvector matrix are applied to a
// transposed copy so each rotation touches two contiguous rows. The
// rotations stay serial: each one is an O(n) loop with ~6 flops per
// element, far below the worker pool's profitable chunk size, and
// successive rotations share a row so they cannot shard independently.
func tql2(z *matrix.Dense, d, e []float64) error {
	n := z.Rows
	zt := z.T() // rows of zt are eigenvector columns of z
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64+dd*1e-16 {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > maxQLIterations {
				return ErrNoConvergence
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				rowI := zt.Data[i*n : (i+1)*n]
				rowI1 := zt.Data[(i+1)*n : (i+2)*n]
				for k := 0; k < n; k++ {
					f = rowI1[k]
					rowI1[k] = s*rowI[k] + c*f
					rowI[k] = c*rowI[k] - s*f
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	matrix.TransposeInto(z, zt) // write the accumulated vectors back without an intermediate copy
	return nil
}

// canonicalizeColumnSigns flips each column so its largest-magnitude
// entry is non-negative, giving deterministic eigenvector orientation.
func canonicalizeColumnSigns(v *matrix.Dense) {
	for j := 0; j < v.Cols; j++ {
		best, bestAbs := 0.0, 0.0
		for i := 0; i < v.Rows; i++ {
			if a := math.Abs(v.At(i, j)); a > bestAbs {
				bestAbs, best = a, v.At(i, j)
			}
		}
		if best < 0 {
			for i := 0; i < v.Rows; i++ {
				v.Set(i, j, -v.At(i, j))
			}
		}
	}
}
