// Package store is the crash-safe model store: versioned binary factor
// snapshots plus a write-ahead delta log, organized per tenant under
// one data directory.
//
//	<dir>/<tenant>/snap-<gen>.ivmf   factor snapshot, generation <gen>
//	<dir>/<tenant>/wal-<gen>.log     deltas applied on top of snap-<gen>
//
// Write protocols are crash-ordered: snapshots land via temp-file →
// fsync → rename → parent-dir fsync, and WAL appends are fsynced before
// the caller acknowledges the job, so the durable state is always a
// prefix of the acknowledged state. Recovery loads the newest readable
// snapshot and replays its log; because core.Decomposition.Update is a
// pure function of the persisted engine state, the recovered model is
// bitwise-identical to the pre-crash one. Corruption is detected by
// per-section CRCs, quarantined (renamed *.corrupt), and reported as an
// event while recovery degrades to the previous generation — the store
// returns errors, never panics, on bad bytes.
package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// ErrNoState reports that a tenant has no recoverable persisted state.
var ErrNoState = errors.New("store: no persisted state")

// Event kinds reported through Options.OnEvent.
const (
	EventSnapshotCorrupt = "snapshot_corrupt" // snapshot failed CRC/decode/import, quarantined
	EventWALCorrupt      = "wal_corrupt"      // log header or CRC-valid record unreadable, quarantined
	EventWALTorn         = "wal_torn"         // torn tail truncated (expected after a crash mid-append)
	EventDegraded        = "degraded"         // recovery fell back to an older generation
	EventCleanupFailed   = "cleanup_failed"   // old-generation removal failed (retried next snapshot)
)

// Event is one notable store occurrence, for metrics and logs.
type Event struct {
	Tenant string
	Kind   string
	Detail string
}

// Options configures a Store.
type Options struct {
	// FS is the filesystem; nil means the real one.
	FS FS
	// OnEvent, when set, receives corruption/degradation events. It is
	// called with the store lock held; keep it fast and non-reentrant.
	OnEvent func(Event)
	// KeepGenerations is how many snapshot generations to retain
	// (minimum and default 2: the current one plus one fallback for
	// graceful degradation).
	KeepGenerations int
}

// Store manages the persistent state of all tenants under one
// directory. Methods are safe for concurrent use; operations on
// distinct tenants serialize on one lock, which is fine because the
// serving tier already funnels writes through a per-tenant job queue.
type Store struct {
	fs      FS
	dir     string
	onEvent func(Event)
	keep    int

	mu      sync.Mutex
	tenants map[string]*tenantState
	unmaps  []func() error
	closed  bool
}

// tenantState is the open-store bookkeeping for one tenant.
type tenantState struct {
	gen        uint64 // current snapshot generation, 0 = none
	wal        File   // open log handle for gen, nil until first append
	walRecords int    // records durable in the current log
	walBad     bool   // last append failed mid-write; repair before reuse
}

// Recovered is the result of recovering one tenant: the rebuilt
// decomposition and the serving metadata to resume from.
type Recovered struct {
	Decomp *core.Decomposition
	// Seq and JobID identify the last applied update (from the log
	// tail, or the snapshot itself if the log was empty).
	Seq   uint64
	JobID uint64
	// MinRating and MaxRating are the serving predictor's rating clamp
	// recorded at snapshot time (Max <= Min means unclamped).
	MinRating float64
	MaxRating float64
	// Acked lists the idempotency keys whose jobs are durably part of the
	// recovered state: the snapshot's own key (if any) plus every key
	// acknowledged by a replayed log record. The window is bounded by
	// compaction — keys retired with an old generation are forgotten.
	Acked []IdemAck
	// Gen is the generation recovered from; Replayed counts log records
	// applied on top of the snapshot. Degraded reports that a newer
	// generation existed but was unreadable. ZeroCopy reports that the
	// served factors alias the memory-mapped snapshot.
	Gen      uint64
	Replayed int
	Degraded bool
	ZeroCopy bool
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OS()
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	keep := opts.KeepGenerations
	if keep < 2 {
		keep = 2
	}
	onEvent := opts.OnEvent
	if onEvent == nil {
		onEvent = func(Event) {}
	}
	return &Store{
		fs:      fsys,
		dir:     dir,
		onEvent: onEvent,
		keep:    keep,
		tenants: make(map[string]*tenantState),
	}, nil
}

// Tenants lists the tenants with a data directory, sorted.
func (s *Store) Tenants() ([]string, error) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list tenants: %w", err)
	}
	var tenants []string
	for _, name := range names {
		if checkTenant(name) != nil {
			continue
		}
		if _, err := s.fs.ReadDir(s.dir + "/" + name); err == nil {
			tenants = append(tenants, name)
		}
	}
	return tenants, nil
}

// Recover rebuilds a tenant's model from the newest readable snapshot
// generation plus its write-ahead log. Unreadable snapshots are
// quarantined and recovery degrades to the previous generation;
// ErrNoState means nothing usable was found. The recovered model is
// bitwise-identical to the state whose persistence was last
// acknowledged.
//
//ivmf:deterministic
func (s *Store) Recover(tenant string) (*Recovered, error) {
	if err := checkTenant(tenant); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: closed")
	}
	tdir := s.dir + "/" + tenant
	names, err := s.fs.ReadDir(tdir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: tenant %s", ErrNoState, tenant)
		}
		return nil, fmt.Errorf("store: recover %s: %w", tenant, err)
	}
	gens := snapshotGenerations(names)
	degraded := false
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		rec, err := s.recoverGeneration(tenant, gen)
		if err != nil {
			s.onEvent(Event{Tenant: tenant, Kind: EventSnapshotCorrupt, Detail: err.Error()})
			s.quarantine(tenant, snapName(gen))
			// The generation's log goes with it: its records describe
			// deltas on top of the snapshot just quarantined, so they can
			// never be replayed again — and they must not be left where
			// the timeline that reuses this generation number would
			// append acknowledged records after them.
			if _, serr := s.fs.Size(tdir + "/" + walName(gen)); serr == nil {
				s.quarantine(tenant, walName(gen))
			}
			degraded = true
			continue
		}
		if degraded {
			rec.Degraded = true
			s.onEvent(Event{Tenant: tenant, Kind: EventDegraded,
				Detail: fmt.Sprintf("serving generation %d", gen)})
		}
		if prev := s.tenants[tenant]; prev != nil && prev.wal != nil {
			// Re-recovering an open tenant: release the superseded log
			// handle instead of leaking it.
			_ = prev.wal.Close()
		}
		s.tenants[tenant] = &tenantState{gen: gen, walRecords: rec.Replayed}
		return rec, nil
	}
	return nil, fmt.Errorf("%w: tenant %s", ErrNoState, tenant)
}

// recoverGeneration loads one snapshot generation and replays its log.
func (s *Store) recoverGeneration(tenant string, gen uint64) (*Recovered, error) {
	path := s.dir + "/" + tenant + "/" + snapName(gen)
	data, zeroCopy, unmap, err := s.fs.Mmap(path)
	if err != nil {
		return nil, fmt.Errorf("map snapshot: %w", err)
	}
	payload, err := DecodeSnapshot(data)
	if err == nil && payload.Meta.Seq == 0 {
		// Seq starts at 1 for the base state; 0 means the header lies.
		err = fmt.Errorf("store: snapshot: sequence number 0")
	}
	var d *core.Decomposition
	if err == nil {
		d, err = core.ImportState(payload.State)
	}
	if err != nil {
		_ = unmap()
		return nil, err
	}
	zeroCopy = zeroCopy && payload.ZeroCopy
	rec := &Recovered{
		Decomp:    d,
		Seq:       payload.Meta.Seq,
		JobID:     payload.Meta.JobID,
		MinRating: payload.Meta.MinRating,
		MaxRating: payload.Meta.MaxRating,
		Gen:       gen,
		ZeroCopy:  zeroCopy,
	}
	if key := payload.Meta.IdemKey; key != "" {
		rec.Acked = append(rec.Acked, IdemAck{JobID: payload.Meta.JobID, Key: key})
	}
	if err := s.replayWAL(tenant, gen, rec, payload.State.Opts); err != nil {
		_ = unmap()
		return nil, err
	}
	if zeroCopy {
		// The served factor planes alias the mapping; hold it until the
		// store closes.
		s.unmaps = append(s.unmaps, unmap)
	} else {
		_ = unmap()
	}
	return rec, nil
}

// replayWAL applies the generation's log to rec.Decomp, repairing a
// torn tail in place. A log that fails before its first record is
// quarantined and treated as empty (a crash during log creation happens
// before any append was acknowledged, so nothing durable is lost).
//
//ivmf:deterministic
func (s *Store) replayWAL(tenant string, gen uint64, rec *Recovered, opts core.Options) error {
	path := s.dir + "/" + tenant + "/" + walName(gen)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("read log: %w", err)
	}
	fileGen, version, payloads, validLen, err := scanWAL(data)
	if err == nil && fileGen != gen {
		err = fmt.Errorf("store: wal: header generation %d in %s", fileGen, walName(gen))
	}
	if err != nil {
		s.onEvent(Event{Tenant: tenant, Kind: EventWALCorrupt, Detail: err.Error()})
		s.quarantine(tenant, walName(gen))
		return nil
	}
	for i, payload := range payloads {
		wr, err := DecodeWALRecordVersion(payload, version)
		if err == nil && wr.Seq != rec.Seq+1 {
			err = fmt.Errorf("store: wal: record %d has sequence %d, want %d", i, wr.Seq, rec.Seq+1)
		}
		var d2 *core.Decomposition
		if err == nil {
			opts.Refresh = wr.Refresh
			opts.RefreshBudget = wr.RefreshBudget
			opts.OrthoBudget = wr.OrthoBudget
			d2, err = rec.Decomp.Update(wr.Delta, opts)
		}
		if err != nil {
			// CRC held but the record is unusable: quarantine the whole
			// log and serve the state up to the previous record — every
			// replayed prefix is a consistent acknowledged state.
			s.onEvent(Event{Tenant: tenant, Kind: EventWALCorrupt,
				Detail: fmt.Sprintf("record %d: %v", i, err)})
			s.quarantine(tenant, walName(gen))
			return nil
		}
		rec.Decomp = d2
		rec.Seq = wr.Seq
		rec.JobID = wr.JobID
		rec.Acked = append(rec.Acked, wr.Acked...)
		rec.Replayed++
	}
	if validLen < int64(len(data)) {
		s.onEvent(Event{Tenant: tenant, Kind: EventWALTorn,
			Detail: fmt.Sprintf("truncating %s to %d of %d bytes", walName(gen), validLen, len(data))})
		if err := s.fs.Truncate(path, validLen); err != nil {
			return fmt.Errorf("truncate torn log: %w", err)
		}
	}
	return nil
}

// SaveSnapshot durably writes a new snapshot generation for the tenant
// and retires its previous log: temp file, content fsync, rename into
// place, directory fsync. On return the snapshot is the tenant's
// recovery root and subsequent AppendDelta calls start a fresh log.
func (s *Store) SaveSnapshot(tenant string, ps *core.PersistentState, meta SnapshotMeta) error {
	if err := checkTenant(tenant); err != nil {
		return err
	}
	if meta.Seq == 0 {
		return fmt.Errorf("store: save %s: sequence number 0", tenant)
	}
	data, err := EncodeSnapshot(ps, meta)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	t := s.tenants[tenant]
	if t == nil {
		t = &tenantState{}
		s.tenants[tenant] = t
	}
	tdir := s.dir + "/" + tenant
	if t.gen == 0 {
		if err := s.fs.MkdirAll(tdir); err != nil {
			return fmt.Errorf("store: save %s: %w", tenant, err)
		}
		if err := s.fs.SyncDir(s.dir); err != nil {
			return fmt.Errorf("store: save %s: %w", tenant, err)
		}
	}
	gen := t.gen + 1
	final := tdir + "/" + snapName(gen)
	// A log for the new generation can pre-exist if that generation was
	// quarantined in an earlier lifetime (corrupt snapshot, degraded
	// recovery) and the store re-reaches it: those records belong to the
	// dead timeline and appending acknowledged records after them would
	// corrupt the new timeline's replay. Remove the stale log and make
	// the removal durable before the new snapshot name can become
	// durable, so snap-<gen> never coexists on disk with a log it did
	// not produce.
	stale := tdir + "/" + walName(gen)
	if _, serr := s.fs.Size(stale); serr == nil {
		if err := s.fs.Remove(stale); err != nil {
			return fmt.Errorf("store: save %s: remove stale log: %w", tenant, err)
		}
		if err := s.fs.SyncDir(tdir); err != nil {
			return fmt.Errorf("store: save %s: %w", tenant, err)
		}
	} else if !errors.Is(serr, os.ErrNotExist) {
		return fmt.Errorf("store: save %s: %w", tenant, serr)
	}
	tmp := final + ".tmp"
	if err := s.writeFileDurable(tmp, data); err != nil {
		return fmt.Errorf("store: save %s: %w", tenant, err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: save %s: %w", tenant, err)
	}
	if err := s.fs.SyncDir(tdir); err != nil {
		return fmt.Errorf("store: save %s: %w", tenant, err)
	}
	if t.wal != nil {
		_ = t.wal.Close()
	}
	t.wal = nil
	t.walRecords = 0
	t.walBad = false
	t.gen = gen
	s.cleanup(tenant, gen)
	return nil
}

// AppendDelta durably appends one update record to the tenant's
// write-ahead log, fsyncing before return — the caller may acknowledge
// the job as soon as this returns nil. The record count of the current
// log is returned so the caller can trigger compaction (SaveSnapshot)
// at its own threshold. Errors leave the log no worse than torn, which
// the next append or recovery repairs; a failed append is therefore
// safe to retry.
func (s *Store) AppendDelta(tenant string, rec *WALRecord) (int, error) {
	if err := checkTenant(tenant); err != nil {
		return 0, err
	}
	payload, err := EncodeWALRecord(rec)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: closed")
	}
	t := s.tenants[tenant]
	if t == nil || t.gen == 0 {
		return 0, fmt.Errorf("store: append %s: no snapshot to log against", tenant)
	}
	path := s.dir + "/" + tenant + "/" + walName(t.gen)
	if t.walBad {
		if err := s.repairWAL(path); err != nil {
			return t.walRecords, fmt.Errorf("store: append %s: repair log: %w", tenant, err)
		}
		t.walBad = false
	}
	if t.wal == nil {
		f, created, err := s.openWAL(path, t.gen)
		if err != nil {
			return t.walRecords, fmt.Errorf("store: append %s: %w", tenant, err)
		}
		t.wal = f
		if created {
			if err := s.fs.SyncDir(s.dir + "/" + tenant); err != nil {
				_ = f.Close()
				t.wal = nil
				return t.walRecords, fmt.Errorf("store: append %s: %w", tenant, err)
			}
		}
	}
	frame := frameWALRecord(payload)
	if _, err := t.wal.Write(frame); err != nil {
		s.dropWAL(t)
		return t.walRecords, fmt.Errorf("store: append %s: %w", tenant, err)
	}
	if err := t.wal.Sync(); err != nil {
		s.dropWAL(t)
		return t.walRecords, fmt.Errorf("store: append %s: %w", tenant, err)
	}
	t.walRecords++
	return t.walRecords, nil
}

// dropWAL closes a handle after a failed append; the file may end in a
// torn record, so the next append runs repair first.
func (s *Store) dropWAL(t *tenantState) {
	if t.wal != nil {
		_ = t.wal.Close()
	}
	t.wal = nil
	t.walBad = true
}

// repairWAL truncates a log to its valid prefix (same scan recovery
// uses) so appends never land after torn bytes.
func (s *Store) repairWAL(path string) error {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	_, _, _, validLen, err := scanWAL(data)
	if err != nil {
		// Header never became durable; restart the file from scratch.
		validLen = 0
	}
	if validLen < int64(len(data)) {
		return s.fs.Truncate(path, validLen)
	}
	return nil
}

// openWAL opens the generation's log for appending, writing and syncing
// the header when the file is new. created reports that the file (name)
// is new and the parent directory needs a sync. A surviving
// previous-format log is transcoded to the current format first:
// appending current-format records after a legacy header would leave a
// file no decoder handles.
func (s *Store) openWAL(path string, gen uint64) (File, bool, error) {
	size, err := s.fs.Size(path)
	switch {
	case err == nil && size >= walHeaderLen:
		if err := s.transcodeWAL(path); err != nil {
			return nil, false, err
		}
		f, err := s.fs.OpenAppend(path)
		return f, false, err
	case err == nil:
		// A crash left a headerless stub; rewrite it.
		if err := s.fs.Truncate(path, 0); err != nil {
			return nil, false, err
		}
	case !errors.Is(err, os.ErrNotExist):
		return nil, false, err
	}
	f, err := s.fs.OpenAppend(path)
	if err != nil {
		return nil, false, err
	}
	if _, err := f.Write(walHeader(gen)); err != nil {
		_ = f.Close()
		return nil, false, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, false, err
	}
	return f, true, nil
}

// transcodeWAL rewrites a legacy-format log in the current format:
// every record decodes under its own version and re-encodes in the
// current layout, with the semantics unchanged (fields the old format
// lacked read as absent). The rewrite is crash-ordered like a snapshot
// — temp file, content fsync, rename, directory fsync — so a crash
// leaves either the intact old log or the intact new one. Current-
// format logs return immediately.
func (s *Store) transcodeWAL(path string) error {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return err
	}
	gen, version, payloads, _, err := scanWAL(data)
	if err != nil || version == walVersion {
		// An unreadable header is the repair path's problem, not ours.
		return nil
	}
	out := walHeader(gen)
	for i, payload := range payloads {
		rec, err := DecodeWALRecordVersion(payload, version)
		if err != nil {
			return fmt.Errorf("transcode record %d: %w", i, err)
		}
		enc, err := EncodeWALRecord(rec)
		if err != nil {
			return fmt.Errorf("transcode record %d: %w", i, err)
		}
		out = append(out, frameWALRecord(enc)...)
	}
	tmp := path + ".tmp"
	if err := s.writeFileDurable(tmp, out); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		return err
	}
	dir := path
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i]
	}
	return s.fs.SyncDir(dir)
}

// writeFileDurable writes name with synced content. The name itself
// becomes durable with the caller's directory sync.
func (s *Store) writeFileDurable(name string, data []byte) error {
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// quarantine renames a corrupt file aside so it stops shadowing older
// generations but stays available for postmortem.
func (s *Store) quarantine(tenant, name string) {
	path := s.dir + "/" + tenant + "/" + name
	if err := s.fs.Rename(path, path+".corrupt"); err != nil {
		s.onEvent(Event{Tenant: tenant, Kind: EventCleanupFailed,
			Detail: fmt.Sprintf("quarantine %s: %v", name, err)})
		return
	}
	_ = s.fs.SyncDir(s.dir + "/" + tenant)
}

// cleanup removes generations older than the retention window. Failures
// only emit an event: stale files cost disk, not correctness, and the
// next snapshot retries.
func (s *Store) cleanup(tenant string, gen uint64) {
	tdir := s.dir + "/" + tenant
	names, err := s.fs.ReadDir(tdir)
	if err != nil {
		s.onEvent(Event{Tenant: tenant, Kind: EventCleanupFailed, Detail: err.Error()})
		return
	}
	removed := false
	for _, name := range names {
		old, ok := parseGen(name)
		if !ok || old+uint64(s.keep) > gen {
			continue
		}
		if err := s.fs.Remove(tdir + "/" + name); err != nil {
			s.onEvent(Event{Tenant: tenant, Kind: EventCleanupFailed,
				Detail: fmt.Sprintf("remove %s: %v", name, err)})
			continue
		}
		removed = true
	}
	if removed {
		_ = s.fs.SyncDir(tdir)
	}
}

// Close releases open log handles and snapshot mappings. The caller
// must have stopped serving models recovered zero-copy: their factor
// planes alias mappings this unmaps.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, t := range s.tenants {
		if t.wal != nil {
			if err := t.wal.Close(); err != nil && first == nil {
				first = err
			}
			t.wal = nil
		}
	}
	for _, unmap := range s.unmaps {
		if err := unmap(); err != nil && first == nil {
			first = err
		}
	}
	s.unmaps = nil
	return first
}

// snapName and walName build generation file names; the zero-padded hex
// counter makes lexicographic order equal numeric order.
func snapName(gen uint64) string { return fmt.Sprintf("snap-%016x.ivmf", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%016x.log", gen) }

// parseGen extracts the generation from either file name.
func parseGen(name string) (uint64, bool) {
	var hex string
	switch {
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".ivmf"):
		hex = strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".ivmf")
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		hex = strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	default:
		return 0, false
	}
	if len(hex) != 16 {
		return 0, false
	}
	gen, err := strconv.ParseUint(hex, 16, 64)
	if err != nil || gen == 0 {
		return 0, false
	}
	return gen, true
}

// snapshotGenerations extracts the sorted snapshot generations present
// in a tenant directory listing.
func snapshotGenerations(names []string) []uint64 {
	var gens []uint64
	for _, name := range names {
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".ivmf") {
			continue
		}
		if gen, ok := parseGen(name); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// checkTenant guards path construction: the serving tier's tenant
// grammar is alphanumerics plus ._- which unfortunately admits the
// traversal names, so the store re-rejects anything that is not a plain
// single-level directory name.
func checkTenant(name string) error {
	if name == "" || name == "." || name == ".." || len(name) > 64 {
		return fmt.Errorf("store: invalid tenant name %q", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("store: invalid tenant name %q", name)
		}
	}
	return nil
}
