package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
	"repro/internal/sparse"
)

// Write-ahead log format, version 3 ("IVMFWAL3"):
//
//	[0,8)   magic "IVMFWAL3"
//	[8,16)  u64 generation — the snapshot this log extends
//	records, each:
//	  u32 payload length
//	  u32 CRC32C of the payload
//	  payload
//
// A record's payload is one applied delta plus the metadata needed to
// replay it bitwise-identically:
//
//	u64 seq, u64 jobID
//	u32 refresh policy, f64 refresh budget   (the Update options that
//	                                          change results)
//	f64 ortho budget, f64 forget λ           (v3: the health guardrail
//	                                          option and the delta's
//	                                          forgetting factor, 0 =
//	                                          absent for both)
//	u16 acked-key count, then per key: u64 jobID, u8 len, len bytes
//	                                   (idempotency keys acknowledged
//	                                    by this record, one per
//	                                    coalesced job that carried one)
//	u8 flags: bit0 append-rows, bit1 append-cols, bit2 patch,
//	          bit3 unpatch, bit4 remove-rows, bit5 remove-cols (v3)
//	per present ICSR: u32 rows, u32 cols, u64 nnz,
//	                  i64 rowptr[rows+1], i64 colind[nnz],
//	                  f64 lo[nnz], f64 hi[nnz]
//	patch:   u64 count, then per cell i64 row, i64 col, f64 lo, f64 hi
//	unpatch: u64 count, then per cell i64 row, i64 col      (v3)
//	remove-rows, remove-cols: u64 count, then i64 indices   (v3)
//
// Version 2 ("IVMFWAL2") is decoded for recovery: it has no ortho
// budget or forget fields (both read as 0 = absent) and only flag bits
// 0..2. Appends always write v3; openWAL transcodes a surviving v2 log
// to v3 before appending, so a log file is never mixed-version.
//
// Recovery tolerates a torn tail — a crash mid-append leaves a partial
// final record — by scanning records in order and truncating the file
// at the first one whose length prefix or checksum doesn't hold.
// Anything before that point was fsynced before the job was
// acknowledged, so no acknowledged update is ever lost.

const (
	walMagic     = "IVMFWAL3"
	walMagicV2   = "IVMFWAL2"
	walHeaderLen = 16

	// walVersion is the version appends write; scanWAL reports which
	// version a log file carries so records decode under their own
	// layout.
	walVersion = 3
)

// MaxIdemKeyLen bounds an idempotency key's byte length in both on-disk
// formats (the snapshot header reserves a fixed field of this size).
const MaxIdemKeyLen = 64

// IdemAck records that the job identified by JobID was acknowledged
// under the client-supplied idempotency key Key. Persisting the pair
// with the state the job produced lets a restarted server answer a
// retried submission with the original acknowledgement instead of
// running the job twice.
type IdemAck struct {
	JobID uint64
	Key   string
}

// checkIdemKey validates one persisted idempotency key.
func checkIdemKey(key string) error {
	if key == "" || len(key) > MaxIdemKeyLen {
		return fmt.Errorf("store: idempotency key length %d outside 1..%d", len(key), MaxIdemKeyLen)
	}
	return nil
}

// WALRecord is one replayable update.
type WALRecord struct {
	Seq           uint64
	JobID         uint64
	Refresh       core.Refresh
	RefreshBudget float64
	// OrthoBudget is the orthogonality-drift guardrail the update ran
	// under (core.Options.OrthoBudget; 0 = the engine default). Carried
	// per record, like RefreshBudget, so replay re-derives the same
	// escalation decisions.
	OrthoBudget float64
	// Acked lists the idempotency keys acknowledged by this record —
	// one entry per coalesced job whose submission carried a key.
	Acked []IdemAck
	Delta core.Delta
}

// EncodeWALRecord serializes one record payload in the current (v3)
// layout, framing excluded.
func EncodeWALRecord(rec *WALRecord) ([]byte, error) {
	d := &rec.Delta
	if d.AppendRows == nil && d.AppendCols == nil && len(d.Patch) == 0 &&
		len(d.Unpatch) == 0 && len(d.RemoveRows) == 0 && len(d.RemoveCols) == 0 && d.Forget == 0 {
		return nil, fmt.Errorf("store: wal: empty delta")
	}
	if d.Forget != 0 && !(d.Forget > 0 && d.Forget <= 1) {
		return nil, fmt.Errorf("store: wal: forgetting factor %v outside (0, 1]", d.Forget)
	}
	if rec.OrthoBudget < 0 || math.IsNaN(rec.OrthoBudget) || math.IsInf(rec.OrthoBudget, 0) {
		return nil, fmt.Errorf("store: wal: ortho budget %v invalid", rec.OrthoBudget)
	}
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint64(b, rec.Seq)
	b = binary.LittleEndian.AppendUint64(b, rec.JobID)
	b = binary.LittleEndian.AppendUint32(b, uint32(rec.Refresh))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rec.RefreshBudget))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rec.OrthoBudget))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rec.Delta.Forget))
	if len(rec.Acked) > math.MaxUint16 {
		return nil, fmt.Errorf("store: wal: %d acked keys exceed %d", len(rec.Acked), math.MaxUint16)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(rec.Acked)))
	for _, a := range rec.Acked {
		if err := checkIdemKey(a.Key); err != nil {
			return nil, err
		}
		b = binary.LittleEndian.AppendUint64(b, a.JobID)
		b = append(b, byte(len(a.Key)))
		b = append(b, a.Key...)
	}
	var flags byte
	if d.AppendRows != nil {
		flags |= 1
	}
	if d.AppendCols != nil {
		flags |= 2
	}
	if len(d.Patch) > 0 {
		flags |= 4
	}
	if len(d.Unpatch) > 0 {
		flags |= 8
	}
	if len(d.RemoveRows) > 0 {
		flags |= 16
	}
	if len(d.RemoveCols) > 0 {
		flags |= 32
	}
	b = append(b, flags)
	for _, a := range []*sparse.ICSR{d.AppendRows, d.AppendCols} {
		if a == nil {
			continue
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(a.Rows))
		b = binary.LittleEndian.AppendUint32(b, uint32(a.Cols))
		b = binary.LittleEndian.AppendUint64(b, uint64(len(a.ColInd)))
		b = appendI64s(b, a.RowPtr)
		b = appendI64s(b, a.ColInd)
		b = appendF64s(b, a.Lo)
		b = appendF64s(b, a.Hi)
	}
	if len(d.Patch) > 0 {
		b = binary.LittleEndian.AppendUint64(b, uint64(len(d.Patch)))
		for _, t := range d.Patch {
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(t.Row)))
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(t.Col)))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Lo))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Hi))
		}
	}
	if len(d.Unpatch) > 0 {
		b = binary.LittleEndian.AppendUint64(b, uint64(len(d.Unpatch)))
		for _, c := range d.Unpatch {
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(c.Row)))
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(c.Col)))
		}
	}
	for _, idx := range [][]int{d.RemoveRows, d.RemoveCols} {
		if len(idx) == 0 {
			continue
		}
		b = binary.LittleEndian.AppendUint64(b, uint64(len(idx)))
		b = appendI64s(b, idx)
	}
	return b, nil
}

// DecodeWALRecord parses one record payload in the current (v3) layout.
// Like the snapshot decoder it never panics and bounds every allocation
// by the payload length.
//
//ivmf:deterministic
func DecodeWALRecord(b []byte) (*WALRecord, error) {
	return DecodeWALRecordVersion(b, walVersion)
}

// DecodeWALRecordVersion parses one record payload under the layout of
// the given log version (as reported by scanWAL), so recovery can
// replay logs written before the current format.
//
//ivmf:deterministic
func DecodeWALRecordVersion(b []byte, version int) (*WALRecord, error) {
	if version != 2 && version != 3 {
		return nil, fmt.Errorf("store: wal: unsupported version %d", version)
	}
	r := &walReader{b: b}
	rec := &WALRecord{}
	rec.Seq = r.u64("seq")
	rec.JobID = r.u64("jobID")
	rec.Refresh = core.Refresh(r.u32("refresh"))
	rec.RefreshBudget = math.Float64frombits(r.u64("refreshBudget"))
	if version >= 3 {
		rec.OrthoBudget = math.Float64frombits(r.u64("orthoBudget"))
		rec.Delta.Forget = math.Float64frombits(r.u64("forget"))
		if r.err == nil {
			if rec.OrthoBudget < 0 || math.IsNaN(rec.OrthoBudget) || math.IsInf(rec.OrthoBudget, 0) {
				return nil, fmt.Errorf("store: wal: ortho budget %v invalid", rec.OrthoBudget)
			}
			if f := rec.Delta.Forget; f != 0 && !(f > 0 && f <= 1) {
				return nil, fmt.Errorf("store: wal: forgetting factor %v outside (0, 1]", f)
			}
		}
	}
	if count := int(r.u16("acked count")); r.err == nil && count > 0 {
		// Each entry is at least 9 bytes (jobID + key length), so the
		// remaining payload bounds the allocation.
		if count*9 > len(r.b)-r.off {
			return nil, fmt.Errorf("store: wal: %d acked keys exceed %d remaining bytes at offset %d", count, len(r.b)-r.off, r.off)
		}
		rec.Acked = make([]IdemAck, 0, count)
		for i := 0; i < count; i++ {
			jobID := r.u64("acked jobID")
			klen := int(r.u8("acked key length"))
			key := r.need(klen, "acked key")
			if r.err != nil {
				return nil, r.err
			}
			if err := checkIdemKey(string(key)); err != nil {
				return nil, fmt.Errorf("%w at offset %d", err, r.off-klen)
			}
			rec.Acked = append(rec.Acked, IdemAck{JobID: jobID, Key: string(key)})
		}
	}
	maxFlags := byte(7)
	if version >= 3 {
		maxFlags = 63
	}
	flags := r.u8("flags")
	if r.err == nil && flags > maxFlags {
		return nil, fmt.Errorf("store: wal: record flags %#x invalid at offset %d", flags, r.off-1)
	}
	if r.err == nil && flags == 0 && rec.Delta.Forget == 0 {
		return nil, fmt.Errorf("store: wal: empty record at offset %d", r.off-1)
	}
	if flags&1 != 0 {
		rec.Delta.AppendRows = r.icsr("appendRows")
	}
	if flags&2 != 0 {
		rec.Delta.AppendCols = r.icsr("appendCols")
	}
	if flags&4 != 0 {
		count := r.u64("patch count")
		// Each cell is 32 bytes on the wire, so the remaining payload
		// bounds the allocation.
		if r.err == nil && count*32 > uint64(len(r.b)-r.off) {
			return nil, fmt.Errorf("store: wal: %d patch cells exceed %d remaining bytes at offset %d", count, len(r.b)-r.off, r.off)
		}
		if r.err == nil {
			rec.Delta.Patch = make([]sparse.ITriplet, count)
			for i := range rec.Delta.Patch {
				rec.Delta.Patch[i] = sparse.ITriplet{
					Row: r.i64("patch row"),
					Col: r.i64("patch col"),
					Lo:  math.Float64frombits(r.u64("patch lo")),
					Hi:  math.Float64frombits(r.u64("patch hi")),
				}
			}
		}
	}
	if flags&8 != 0 {
		count := r.u64("unpatch count")
		// Each tombstone is 16 bytes on the wire.
		if r.err == nil && count*16 > uint64(len(r.b)-r.off) {
			return nil, fmt.Errorf("store: wal: %d unpatch cells exceed %d remaining bytes at offset %d", count, len(r.b)-r.off, r.off)
		}
		if r.err == nil {
			rec.Delta.Unpatch = make([]sparse.Cell, count)
			for i := range rec.Delta.Unpatch {
				rec.Delta.Unpatch[i] = sparse.Cell{
					Row: r.i64("unpatch row"),
					Col: r.i64("unpatch col"),
				}
			}
		}
	}
	for _, sec := range []struct {
		bit  byte
		name string
		dst  *[]int
	}{
		{16, "removeRows", &rec.Delta.RemoveRows},
		{32, "removeCols", &rec.Delta.RemoveCols},
	} {
		if flags&sec.bit == 0 {
			continue
		}
		count := r.u64(sec.name + " count")
		if r.err == nil && count*8 > uint64(len(r.b)-r.off) {
			return nil, fmt.Errorf("store: wal: %d %s indices exceed %d remaining bytes at offset %d", count, sec.name, len(r.b)-r.off, r.off)
		}
		if r.err == nil {
			idx := make([]int, count)
			for i := range idx {
				idx[i] = r.i64(sec.name + " index")
			}
			*sec.dst = idx
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("store: wal: %d trailing bytes after record at offset %d", len(r.b)-r.off, r.off)
	}
	return rec, nil
}

// walReader is a sticky-error cursor over one record payload.
type walReader struct {
	b   []byte
	off int
	err error
}

func (r *walReader) need(n int, field string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.err = fmt.Errorf("store: wal: truncated reading %s at offset %d", field, r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *walReader) u8(field string) byte {
	s := r.need(1, field)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *walReader) u16(field string) uint16 {
	s := r.need(2, field)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *walReader) u32(field string) uint32 {
	s := r.need(4, field)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *walReader) u64(field string) uint64 {
	s := r.need(8, field)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *walReader) i64(field string) int {
	v := int64(r.u64(field))
	if r.err == nil && int64(int(v)) != v {
		r.err = fmt.Errorf("store: wal: %s = %d overflows int at offset %d", field, v, r.off-8)
	}
	return int(v)
}

// icsr reads one embedded interval CSR matrix, checking every declared
// size against the remaining payload before allocating.
func (r *walReader) icsr(field string) *sparse.ICSR {
	rows := r.u32(field + " rows")
	cols := r.u32(field + " cols")
	nnz := r.u64(field + " nnz")
	if r.err != nil {
		return nil
	}
	if rows == 0 || cols == 0 {
		r.err = fmt.Errorf("store: wal: %s has zero shape %dx%d at offset %d", field, rows, cols, r.off)
		return nil
	}
	need, ok := mul64(uint64(rows)+1+3*nnz, 8)
	if !ok || need > uint64(len(r.b)-r.off) {
		r.err = fmt.Errorf("store: wal: %s sizes %dx%d/%d exceed %d remaining bytes at offset %d", field, rows, cols, nnz, len(r.b)-r.off, r.off)
		return nil
	}
	a := &sparse.ICSR{Rows: int(rows), Cols: int(cols)}
	var err error
	if a.RowPtr, err = intView(r.need(int(rows+1)*8, field+" rowptr"), field+".RowPtr"); err != nil {
		r.err = err
		return nil
	}
	if a.ColInd, err = intView(r.need(int(nnz)*8, field+" colind"), field+".ColInd"); err != nil {
		r.err = err
		return nil
	}
	a.Lo = f64View(r.need(int(nnz)*8, field+" lo"), false)
	a.Hi = f64View(r.need(int(nnz)*8, field+" hi"), false)
	if r.err != nil {
		return nil
	}
	if err := a.CheckStructure(); err != nil {
		r.err = fmt.Errorf("store: wal: %s: %w", field, err)
		return nil
	}
	return a
}

// walHeader builds the 16-byte file header for a generation.
func walHeader(gen uint64) []byte {
	b := make([]byte, 0, walHeaderLen)
	b = append(b, walMagic...)
	return binary.LittleEndian.AppendUint64(b, gen)
}

// frameWALRecord wraps a payload in the length+checksum frame.
func frameWALRecord(payload []byte) []byte {
	b := make([]byte, 0, 8+len(payload))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// scanWAL walks a log image: it validates the header, then collects
// record payloads until the first frame that doesn't hold — a torn tail
// from a crash mid-append, or tail corruption. validLen is the byte
// length of the intact prefix; the caller truncates the file there
// before appending again. A corrupt header fails the whole file. Both
// the current magic and the legacy v2 magic are accepted; version
// reports which layout the record payloads use.
//
//ivmf:deterministic
func scanWAL(data []byte) (gen uint64, version int, payloads [][]byte, validLen int64, err error) {
	if len(data) < walHeaderLen {
		return 0, 0, nil, 0, fmt.Errorf("store: wal: bad magic (have %d bytes)", len(data))
	}
	switch string(data[:8]) {
	case walMagic:
		version = walVersion
	case walMagicV2:
		version = 2
	default:
		return 0, 0, nil, 0, fmt.Errorf("store: wal: bad magic (have %d bytes)", len(data))
	}
	gen = binary.LittleEndian.Uint64(data[8:16])
	off := walHeaderLen
	for {
		rest := data[off:]
		if len(rest) < 8 {
			break
		}
		plen := int(binary.LittleEndian.Uint32(rest[:4]))
		want := binary.LittleEndian.Uint32(rest[4:8])
		if plen <= 0 || plen > len(rest)-8 {
			break
		}
		payload := rest[8 : 8+plen]
		if crc32.Checksum(payload, castagnoli) != want {
			break
		}
		payloads = append(payloads, payload)
		off += 8 + plen
	}
	return gen, version, payloads, int64(off), nil
}
