package store

// Cold-start vs. recovery benchmarks: the store's reason to exist is
// that booting from a snapshot plus a short write-ahead log is much
// cheaper than redecomposing, so the pair to compare is
// BenchmarkColdStart (core.DecomposeSparse from the raw matrix —
// exactly what a server without persistence pays on boot) against
// BenchmarkRecover/deltas=N (Open + Recover over the real filesystem,
// mmap included, replaying an N-record log). BENCH_store.json holds the
// committed numbers; CI runs every benchmark at -benchtime 1x as a
// smoke test. Regenerate with:
//
//	go test -run NONE -bench 'ColdStart|Recover|SaveSnapshot|AppendDelta' -benchtime 3x ./internal/store/
//
// Matrices are 1024x1024 sparse non-negative interval matrices with
// ~40k stored cells at rank 20, matching BENCH_update.json's regime so
// replay cost per record can be read against the update benchmarks.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sparse"
)

const (
	benchN    = 1024
	benchNNZ  = 40_000
	benchRank = 20
)

// benchICSR builds a deterministic sparse non-negative interval matrix:
// cells spread row-major with a coprime column stride, magnitudes
// decaying by row so the spectrum is not flat.
func benchICSR(tb testing.TB, n, nnz int) *sparse.ICSR {
	tb.Helper()
	rng := rand.New(rand.NewSource(61))
	perRow := nnz / n
	ts := make([]sparse.ITriplet, 0, n*perRow)
	for i := 0; i < n; i++ {
		scale := 1.0 / (1.0 + 0.01*float64(i))
		for j := 0; j < perRow; j++ {
			col := (i*37 + j*101) % n
			lo := math.Abs(rng.NormFloat64()) * scale
			ts = append(ts, sparse.ITriplet{Row: i, Col: col, Lo: lo, Hi: lo * 1.2})
		}
	}
	m, err := sparse.FromICOO(n, n, ts)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

var benchOpts = core.Options{Rank: benchRank, Target: core.TargetB, Updatable: true}

// benchStore populates a store directory with the base snapshot and a
// deltas-record log, returning the final in-memory state for
// verification.
func benchStore(b *testing.B, dir string, m *sparse.ICSR, deltas int) *core.Decomposition {
	b.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	d, err := core.DecomposeSparse(m, core.ISVD4, benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := d.ExportState()
	if err != nil {
		b.Fatal(err)
	}
	if err := s.SaveSnapshot("bench", ps, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		b.Fatal(err)
	}
	cur := m
	for i := 0; i < deltas; i++ {
		rec := &WALRecord{Seq: uint64(i) + 2, JobID: uint64(i) + 2,
			Refresh: core.RefreshNever, Delta: core.Delta{Patch: testPatch(cur, i+1)}}
		if _, err := s.AppendDelta("bench", rec); err != nil {
			b.Fatal(err)
		}
		if cur, err = cur.ApplyPatch(rec.Delta.Patch); err != nil {
			b.Fatal(err)
		}
		if d, err = d.Update(rec.Delta, core.Options{Refresh: core.RefreshNever}); err != nil {
			b.Fatal(err)
		}
	}
	return d
}

// BenchmarkColdStart1024 is the no-store baseline: full redecomposition
// of the raw matrix, the boot cost the snapshot+log path avoids.
func BenchmarkColdStart1024(b *testing.B) {
	m := benchICSR(b, benchN, benchNNZ)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DecomposeSparse(m, core.ISVD4, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover1024 measures boot from disk: open the store, map
// the snapshot, validate, import, and replay the log.
func BenchmarkRecover1024(b *testing.B) {
	m := benchICSR(b, benchN, benchNNZ)
	for _, deltas := range []int{0, 1, 5, 25} {
		b.Run(fmt.Sprintf("deltas=%d", deltas), func(b *testing.B) {
			dir := b.TempDir()
			want := benchStore(b, dir, m, deltas)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				rec, err := s.Recover("bench")
				if err != nil {
					b.Fatal(err)
				}
				if rec.Seq != uint64(deltas)+1 {
					b.Fatalf("recovered seq %d", rec.Seq)
				}
				if i == 0 {
					// Verify before Close: with an empty log the recovered
					// planes alias the mapping Close tears down.
					b.StopTimer()
					bitwiseEqual(b, "recovered", rec.Decomp, want)
					b.StartTimer()
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSaveSnapshot1024 is the compaction write: encode + fsync +
// rename + directory fsync of the full factor state.
func BenchmarkSaveSnapshot1024(b *testing.B) {
	m := benchICSR(b, benchN, benchNNZ)
	d, err := core.DecomposeSparse(m, core.ISVD4, benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := d.ExportState()
	if err != nil {
		b.Fatal(err)
	}
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SaveSnapshot("bench", ps, SnapshotMeta{Seq: uint64(i) + 1, JobID: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendDelta1024 is the per-job durability cost the executor
// pays before acknowledging: encode + append + fsync of one record.
func BenchmarkAppendDelta1024(b *testing.B) {
	m := benchICSR(b, benchN, benchNNZ)
	d, err := core.DecomposeSparse(m, core.ISVD4, benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := d.ExportState()
	if err != nil {
		b.Fatal(err)
	}
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.SaveSnapshot("bench", ps, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		b.Fatal(err)
	}
	patch := testPatch(m, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := &WALRecord{Seq: uint64(i) + 2, JobID: uint64(i) + 2, Delta: core.Delta{Patch: patch}}
		if _, err := s.AppendDelta("bench", rec); err != nil {
			b.Fatal(err)
		}
	}
}
