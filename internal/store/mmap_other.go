//go:build !unix

package store

// Mmap on platforms without a usable mmap syscall falls back to a heap
// read. Snapshots still load and serve identically; only the zero-copy
// page-cache sharing is lost, and zeroCopy reports false so callers
// never mistake the copy for a mapping.
func (osFS) Mmap(name string) ([]byte, bool, func() error, error) {
	data, err := osFS{}.ReadFile(name)
	if err != nil {
		return nil, false, nil, err
	}
	return data, false, func() error { return nil }, nil
}
