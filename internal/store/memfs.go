package store

import (
	"errors"
	"fmt"
	"os"
	"path"
	"sort"
	"sync"
)

// MemFS is an in-memory filesystem with POSIX crash semantics, built to
// drive the store's kill-at-every-crash-point property tests. It keeps
// two states per file — the volatile content (what the process sees)
// and the durable content (what survives a power cut) — and two
// namespaces (which names exist now vs. which name→file bindings have
// been made durable by a directory sync). The rules mirror what
// journaled POSIX filesystems guarantee:
//
//   - File.Sync copies the file's volatile content to its durable image.
//   - Create, Rename, and Remove change the volatile namespace only;
//     SyncDir(dir) commits the namespace of that directory.
//   - Crash() drops everything volatile: files roll back to their last
//     synced content (empty if never synced), and namespace changes
//     whose directory was never synced roll back too — including
//     completed renames.
//
// Fault injection: CrashAt(n, partial) makes the nth mutating operation
// fail and freezes the filesystem (every later operation fails with
// ErrInjectedCrash) until Crash() is called to simulate the reboot;
// when the nth operation is a content write and partial is set, half
// the bytes land first — a torn write. FailNext(op, err) injects one
// transient error (no crash) for retry-path tests. OpCount() reports
// the mutating operations of a clean run, which is what lets a test
// enumerate every crash point exhaustively.
type MemFS struct {
	mu       sync.Mutex
	files    map[string]*memInode // volatile namespace
	durFiles map[string]*memInode // durable namespace
	dirs     map[string]bool      // directories (durable immediately; see MkdirAll)

	ops      int
	crashAt  int
	partial  bool
	crashed  bool
	failNext map[string]error
	handles  int // file handles opened and not yet closed
}

// memInode is one file's storage; namespaces bind names to inodes, so a
// rename moves the binding, not the content.
type memInode struct {
	data   []byte // volatile content
	dur    []byte // content as of the last File.Sync
	synced bool
}

// ErrInjectedCrash is the error every filesystem operation returns once
// an injected crash point has fired.
var ErrInjectedCrash = errors.New("store: injected crash")

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:    make(map[string]*memInode),
		durFiles: make(map[string]*memInode),
		dirs:     make(map[string]bool),
		failNext: make(map[string]error),
	}
}

// CrashAt arms the crash point: the nth (1-based) subsequent mutating
// operation fails and freezes the filesystem. partial makes a torn
// write when that operation is a content write.
func (m *MemFS) CrashAt(n int, partial bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops = 0
	m.crashAt = n
	m.partial = partial
}

// FailNext injects one transient error for the next operation of the
// given kind ("write", "sync", "rename", "create", "remove", "truncate",
// "syncdir", "append"). The operation fails without any state change;
// the one after succeeds.
func (m *MemFS) FailNext(op string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failNext[op] = err
}

// OpCount reports the mutating operations executed since the last
// CrashAt arm (or construction).
func (m *MemFS) OpCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether an injected crash point has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// OpenHandles reports the file handles opened (Create/OpenAppend) and
// not yet closed — the store must never leak one.
func (m *MemFS) OpenHandles() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.handles
}

// Crash simulates the power cut and reboot: every volatile change is
// dropped — unsynced file content, and namespace changes under
// directories that were never SyncDir'd — and the filesystem becomes
// usable again, serving the durable state.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
	m.crashAt = 0
	m.ops = 0
	m.files = make(map[string]*memInode, len(m.durFiles))
	for name, ino := range m.durFiles {
		if ino.synced {
			ino.data = append([]byte(nil), ino.dur...)
		} else {
			// Name durable, content never synced: the data didn't survive.
			ino.data = nil
		}
		m.files[name] = ino
	}
}

// step gates one mutating operation: transient injected error, crash
// point, or pass.
func (m *MemFS) step(op string) error {
	if m.crashed {
		return ErrInjectedCrash
	}
	if err, ok := m.failNext[op]; ok {
		delete(m.failNext, op)
		return err
	}
	m.ops++
	if m.crashAt > 0 && m.ops == m.crashAt {
		m.crashed = true
		return fmt.Errorf("%w (op %d: %s)", ErrInjectedCrash, m.ops, op)
	}
	return nil
}

func (m *MemFS) MkdirAll(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("mkdir"); err != nil {
		return err
	}
	// Directories are modeled as durable on creation: the store creates
	// each tenant directory once and the interesting crash surface is
	// the files inside, not the mkdir itself.
	for p != "." && p != "/" && p != "" {
		m.dirs[p] = true
		p = path.Dir(p)
	}
	return nil
}

func (m *MemFS) ReadDir(p string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrInjectedCrash
	}
	if !m.dirs[p] {
		return nil, &os.PathError{Op: "readdir", Path: p, Err: os.ErrNotExist}
	}
	var names []string
	for name := range m.files {
		if path.Dir(name) == p {
			names = append(names, path.Base(name))
		}
	}
	for d := range m.dirs {
		if path.Dir(d) == p {
			names = append(names, path.Base(d))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrInjectedCrash
	}
	ino, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), ino.data...), nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("create"); err != nil {
		return nil, err
	}
	ino := &memInode{}
	m.files[name] = ino
	m.handles++
	return &memFile{fs: m, ino: ino}, nil
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("append"); err != nil {
		return nil, err
	}
	ino, ok := m.files[name]
	if !ok {
		ino = &memInode{}
		m.files[name] = ino
	}
	m.handles++
	return &memFile{fs: m, ino: ino}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("rename"); err != nil {
		return err
	}
	ino, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = ino
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("remove"); err != nil {
		return err
	}
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("truncate"); err != nil {
		return err
	}
	ino, ok := m.files[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(ino.data)) {
		return fmt.Errorf("store: memfs truncate %s to %d (len %d)", name, size, len(ino.data))
	}
	ino.data = ino.data[:size]
	return nil
}

func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrInjectedCrash
	}
	ino, ok := m.files[name]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(ino.data)), nil
}

// SyncDir commits the directory's namespace: every binding under dir
// becomes durable, every durable binding removed under dir is forgotten.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("syncdir"); err != nil {
		return err
	}
	for name := range m.durFiles {
		if path.Dir(name) != dir {
			continue
		}
		if _, ok := m.files[name]; !ok {
			delete(m.durFiles, name)
		}
	}
	for name, ino := range m.files {
		if path.Dir(name) == dir {
			m.durFiles[name] = ino
		}
	}
	return nil
}

// Mmap returns a copy of the file: MemFS has no page cache to share, so
// zeroCopy is false and the store's decoder takes the copying path.
func (m *MemFS) Mmap(name string) ([]byte, bool, func() error, error) {
	data, err := m.ReadFile(name)
	if err != nil {
		return nil, false, nil, err
	}
	return data, false, func() error { return nil }, nil
}

// memFile is an open MemFS file handle. Writes append (Create truncates
// at open, matching the store's write protocols, which never seek).
type memFile struct {
	fs     *MemFS
	ino    *memInode
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if err := f.fs.step("write"); err != nil {
		if errors.Is(err, ErrInjectedCrash) && f.fs.partial && len(p) > 1 {
			// Torn write: half the payload reached the volatile page
			// cache before the cut.
			f.ino.data = append(f.ino.data, p[:len(p)/2]...)
		}
		return 0, err
	}
	f.ino.data = append(f.ino.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.fs.step("sync"); err != nil {
		return err
	}
	f.ino.dur = append([]byte(nil), f.ino.data...)
	f.ino.synced = true
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	f.fs.handles--
	if f.fs.crashed {
		return ErrInjectedCrash
	}
	return nil
}
