package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/recommend"
	"repro/internal/sparse"
)

// lowRankICSR builds an exactly rank-rho non-negative interval matrix
// (Hi = 1.2·Lo), the regime where every method ISVD0-4 is updatable.
func lowRankICSR(n, m, rho int, rng *rand.Rand) *sparse.ICSR {
	x := matrix.New(n, rho)
	y := matrix.New(rho, m)
	for i := range x.Data {
		x.Data[i] = math.Abs(rng.NormFloat64())
	}
	for i := range y.Data {
		y.Data[i] = math.Abs(rng.NormFloat64()) / float64(rho)
	}
	lo := matrix.Mul(x, y)
	return sparse.FromIMatrix(imatrix.FromEndpoints(lo, lo.Scale(1.2)))
}

// testPatch builds a deterministic non-negative cell patch against m.
func testPatch(m *sparse.ICSR, seed int) []sparse.ITriplet {
	rng := rand.New(rand.NewSource(int64(seed)))
	var patch []sparse.ITriplet
	for i := 0; i < 3; i++ {
		row := (i*7 + seed) % m.Rows
		col := (i*5 + seed) % m.Cols
		old := m.At(row, col)
		d := math.Abs(rng.NormFloat64())
		patch = append(patch, sparse.ITriplet{Row: row, Col: col, Lo: old.Lo + d, Hi: old.Hi + 1.5*d})
	}
	return patch
}

func testDecomp(t testing.TB, method core.Method) (*core.Decomposition, *sparse.ICSR) {
	t.Helper()
	sp := lowRankICSR(14, 11, 3, rand.New(rand.NewSource(7)))
	d, err := core.DecomposeSparse(sp, method, core.Options{Rank: 5, Target: core.TargetB, Updatable: true})
	if err != nil {
		t.Fatal(err)
	}
	return d, sp
}

// bitwiseEqual asserts two decompositions persist identical bytes: the
// snapshot encoding covers every factor plane, the engine state, and
// the authoritative matrix, so byte equality is bitwise state equality.
func bitwiseEqual(t testing.TB, label string, got, want *core.Decomposition) {
	t.Helper()
	gp, err := got.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	wp, err := want.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := EncodeSnapshot(gp, SnapshotMeta{Seq: 1, JobID: 1})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := EncodeSnapshot(wp, SnapshotMeta{Seq: 1, JobID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(gb) != len(wb) {
		t.Fatalf("%s: snapshot sizes differ: %d vs %d", label, len(gb), len(wb))
	}
	for i := range gb {
		if gb[i] != wb[i] {
			t.Fatalf("%s: snapshots differ at byte %d", label, i)
		}
	}
}

func TestSnapshotRoundTripAllMethods(t *testing.T) {
	for _, method := range core.Methods() {
		t.Run(method.String(), func(t *testing.T) {
			d, _ := testDecomp(t, method)
			ps, err := d.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			data, err := EncodeSnapshot(ps, SnapshotMeta{Seq: 3, JobID: 17})
			if err != nil {
				t.Fatal(err)
			}
			payload, err := DecodeSnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			if payload.Meta.Seq != 3 || payload.Meta.JobID != 17 {
				t.Fatalf("meta = %+v", payload.Meta)
			}
			d2, err := core.ImportState(payload.State)
			if err != nil {
				t.Fatal(err)
			}
			bitwiseEqual(t, "roundtrip", d2, d)

			// A further update applies identically to both copies.
			delta := core.Delta{Patch: testPatch(payload.State.M, 2)}
			u1, err := d.Update(delta, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			u2, err := d2.Update(delta, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			bitwiseEqual(t, "post-update", u2, u1)
		})
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	d, _ := testDecomp(t, core.ISVD4)
	ps, err := d.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSnapshot(ps, SnapshotMeta{Seq: 1, JobID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(data[:len(data)-1]); err == nil {
		t.Error("truncated snapshot decoded")
	}
	if _, err := DecodeSnapshot(nil); err == nil {
		t.Error("empty snapshot decoded")
	}
	for _, off := range []int{9, 20, len(data) / 2, len(data) - 2} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Errorf("bit flip at %d not detected", off)
		}
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	rows := lowRankICSR(2, 11, 1, rand.New(rand.NewSource(9)))
	cols := lowRankICSR(16, 3, 1, rand.New(rand.NewSource(10)))
	cases := []core.Delta{
		{Patch: []sparse.ITriplet{{Row: 1, Col: 2, Lo: 0.5, Hi: 1.5}}},
		{AppendRows: rows},
		{AppendCols: cols},
		{AppendRows: rows, AppendCols: cols, Patch: testPatch(rows, 1)},
		{Unpatch: []sparse.Cell{{Row: 0, Col: 3}, {Row: 2, Col: 1}}},
		{RemoveRows: []int{2, 5}},
		{RemoveCols: []int{0, 1}},
		{Forget: 0.875},
		{Forget: 0.5, AppendRows: rows, Patch: testPatch(rows, 2),
			Unpatch: []sparse.Cell{{Row: 1, Col: 1}}, RemoveRows: []int{7}, RemoveCols: []int{2}},
	}
	for i, delta := range cases {
		rec := &WALRecord{Seq: uint64(i) + 2, JobID: 99, Refresh: core.RefreshNever,
			RefreshBudget: 0.25, OrthoBudget: 1e-7, Delta: delta}
		payload, err := EncodeWALRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeWALRecord(payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Seq != rec.Seq || got.JobID != 99 || got.Refresh != core.RefreshNever ||
			got.RefreshBudget != 0.25 || got.OrthoBudget != 1e-7 {
			t.Fatalf("case %d: meta %+v", i, got)
		}
		if (got.Delta.AppendRows == nil) != (delta.AppendRows == nil) ||
			(got.Delta.AppendCols == nil) != (delta.AppendCols == nil) ||
			len(got.Delta.Patch) != len(delta.Patch) ||
			got.Delta.Forget != delta.Forget {
			t.Fatalf("case %d: delta shape mismatch", i)
		}
		for k, c := range delta.Unpatch {
			if got.Delta.Unpatch[k] != c {
				t.Fatalf("case %d: unpatch %d: %+v want %+v", i, k, got.Delta.Unpatch[k], c)
			}
		}
		for k, idx := range delta.RemoveRows {
			if got.Delta.RemoveRows[k] != idx {
				t.Fatalf("case %d: removeRows mismatch", i)
			}
		}
		for k, idx := range delta.RemoveCols {
			if got.Delta.RemoveCols[k] != idx {
				t.Fatalf("case %d: removeCols mismatch", i)
			}
		}
		if _, err := DecodeWALRecord(payload[:len(payload)-1]); err == nil {
			t.Errorf("case %d: truncated record decoded", i)
		}
	}
	if _, err := EncodeWALRecord(&WALRecord{Seq: 1}); err == nil {
		t.Error("empty delta encoded")
	}
	if _, err := EncodeWALRecord(&WALRecord{Seq: 1, Delta: core.Delta{Forget: 1.5}}); err == nil {
		t.Error("out-of-range forgetting factor encoded")
	}
	if _, err := EncodeWALRecord(&WALRecord{Seq: 1, OrthoBudget: -1,
		Delta: core.Delta{Patch: testPatch(rows, 1)}}); err == nil {
		t.Error("negative ortho budget encoded")
	}
}

// encodeWALRecordV2 reproduces the legacy v2 payload layout so the
// compatibility tests can fabricate old logs without keeping dead
// encoder code in the package proper.
func encodeWALRecordV2(t *testing.T, rec *WALRecord) []byte {
	t.Helper()
	v3, err := EncodeWALRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	// v2 = v3 minus the two f64 fields (orthoBudget, forget) that sit
	// after the 28-byte fixed prefix; valid only for v2-expressible
	// records (no tombstones, no forgetting, zero ortho budget).
	if rec.OrthoBudget != 0 || rec.Delta.Forget != 0 || len(rec.Delta.Unpatch) != 0 ||
		len(rec.Delta.RemoveRows) != 0 || len(rec.Delta.RemoveCols) != 0 {
		t.Fatal("record not expressible in WAL v2")
	}
	return append(append([]byte(nil), v3[:28]...), v3[44:]...)
}

func TestWALDecodeLegacyV2(t *testing.T) {
	rows := lowRankICSR(2, 11, 1, rand.New(rand.NewSource(9)))
	rec := &WALRecord{Seq: 2, JobID: 7, Refresh: core.RefreshAuto, RefreshBudget: 0.125,
		Acked: []IdemAck{{JobID: 7, Key: "k-1"}},
		Delta: core.Delta{AppendRows: rows, Patch: testPatch(rows, 1)}}
	payload := encodeWALRecordV2(t, rec)
	got, err := DecodeWALRecordVersion(payload, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 2 || got.JobID != 7 || got.Refresh != core.RefreshAuto ||
		got.RefreshBudget != 0.125 || got.OrthoBudget != 0 || got.Delta.Forget != 0 {
		t.Fatalf("legacy decode meta %+v", got)
	}
	if got.Delta.AppendRows == nil || len(got.Delta.Patch) != len(rec.Delta.Patch) || len(got.Acked) != 1 {
		t.Fatalf("legacy decode delta %+v", got.Delta)
	}
	if _, err := DecodeWALRecordVersion(payload, 4); err == nil {
		t.Fatal("unsupported version accepted")
	}
}

func TestRecoverLegacyV2LogAndTranscode(t *testing.T) {
	fs := NewMemFS()
	s, _ := Open("data", Options{FS: fs})
	c := makeChain(t, core.ISVD4, 3)
	ps, _ := c.states[0].ExportState()
	if err := s.SaveSnapshot("tt", ps, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Fabricate the generation's log in the legacy v2 format, as a
	// pre-upgrade server would have left it.
	walPath := "data/tt/" + walName(1)
	img := append([]byte(nil), walMagicV2...)
	img = binary.LittleEndian.AppendUint64(img, 1)
	for _, rec := range c.recs[:2] {
		img = append(img, frameWALRecord(encodeWALRecordV2(t, rec))...)
	}
	f, err := fs.Create(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(img); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var events []Event
	s2, _ := Open("data", Options{FS: fs, OnEvent: func(e Event) { events = append(events, e) }})
	rec, err := s2.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 3 || rec.Replayed != 2 {
		t.Fatalf("recovered meta = %+v", rec)
	}
	bitwiseEqual(t, "legacy replay", rec.Decomp, c.states[2])
	for _, e := range events {
		t.Errorf("unexpected event %+v", e)
	}
	// Appending to the legacy log transcodes it to the current format
	// first; the whole chain then recovers bitwise.
	if _, err := s2.AppendDelta("tt", c.recs[2]); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	data, err := fs.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:8]) != walMagic {
		t.Fatalf("log not transcoded: magic %q", data[:8])
	}
	s3, _ := Open("data", Options{FS: fs})
	defer s3.Close()
	rec3, err := s3.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Seq != 4 || rec3.Replayed != 3 {
		t.Fatalf("post-transcode meta = %+v", rec3)
	}
	bitwiseEqual(t, "post-transcode", rec3.Decomp, c.states[3])
}

// chain precomputes an update chain: states[0] is the base
// decomposition (seq 1), states[i] the state after applying deltas[:i].
type chain struct {
	sp     *sparse.ICSR
	states []*core.Decomposition
	recs   []*WALRecord
}

func makeChain(t testing.TB, method core.Method, deltas int) *chain {
	t.Helper()
	d, sp := testDecomp(t, method)
	c := &chain{sp: sp, states: []*core.Decomposition{d}}
	cur := sp
	for i := 0; i < deltas; i++ {
		rec := &WALRecord{
			Seq:   uint64(i) + 2,
			JobID: uint64(100 + i),
			Delta: core.Delta{Patch: testPatch(cur, i+1)},
		}
		var err error
		cur, err = cur.ApplyPatch(rec.Delta.Patch)
		if err != nil {
			t.Fatal(err)
		}
		next, err := d.Update(rec.Delta, core.Options{Refresh: rec.Refresh, RefreshBudget: rec.RefreshBudget})
		if err != nil {
			t.Fatal(err)
		}
		d = next
		c.states = append(c.states, d)
		c.recs = append(c.recs, rec)
	}
	return c
}

func TestSaveRecoverBitwise(t *testing.T) {
	fs := NewMemFS()
	var events []Event
	s, err := Open("data", Options{FS: fs, OnEvent: func(e Event) { events = append(events, e) }})
	if err != nil {
		t.Fatal(err)
	}
	c := makeChain(t, core.ISVD4, 4)
	ps, err := c.states[0].ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot("alpha", ps, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	for _, rec := range c.recs {
		if _, err := s.AppendDelta("alpha", rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open("data", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tenants, err := s2.Tenants()
	if err != nil || len(tenants) != 1 || tenants[0] != "alpha" {
		t.Fatalf("tenants = %v, %v", tenants, err)
	}
	rec, err := s2.Recover("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 5 || rec.JobID != 103 || rec.Replayed != 4 || rec.Degraded {
		t.Fatalf("recovered meta = %+v", rec)
	}
	bitwiseEqual(t, "recovered", rec.Decomp, c.states[4])
	for _, e := range events {
		t.Errorf("unexpected event %+v", e)
	}
	if _, err := s2.Recover("ghost"); !errors.Is(err, ErrNoState) {
		t.Fatalf("ghost tenant: %v", err)
	}
}

func TestCompactionStartsNewGeneration(t *testing.T) {
	fs := NewMemFS()
	s, err := Open("data", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	c := makeChain(t, core.ISVD1, 4)
	ps0, _ := c.states[0].ExportState()
	if err := s.SaveSnapshot("tt", ps0, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	for _, rec := range c.recs[:2] {
		if _, err := s.AppendDelta("tt", rec); err != nil {
			t.Fatal(err)
		}
	}
	ps2, err := c.states[2].ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot("tt", ps2, SnapshotMeta{Seq: 3, JobID: 101}); err != nil {
		t.Fatal(err)
	}
	for _, rec := range c.recs[2:] {
		if _, err := s.AppendDelta("tt", rec); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, _ := Open("data", Options{FS: fs})
	defer s2.Close()
	rec, err := s2.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gen != 2 || rec.Seq != 5 || rec.Replayed != 2 {
		t.Fatalf("recovered meta = %+v", rec)
	}
	bitwiseEqual(t, "compacted", rec.Decomp, c.states[4])
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	fs := NewMemFS()
	s, _ := Open("data", Options{FS: fs})
	c := makeChain(t, core.ISVD4, 2)
	ps, _ := c.states[0].ExportState()
	if err := s.SaveSnapshot("tt", ps, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendDelta("tt", c.recs[0]); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Append garbage — a torn second record.
	walPath := "data/tt/" + walName(1)
	f, err := fs.OpenAppend(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x13, 0x09}); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()
	before, _ := fs.Size(walPath)

	var events []Event
	s2, _ := Open("data", Options{FS: fs, OnEvent: func(e Event) { events = append(events, e) }})
	rec, err := s2.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 2 || rec.Replayed != 1 {
		t.Fatalf("recovered meta = %+v", rec)
	}
	bitwiseEqual(t, "torn", rec.Decomp, c.states[1])
	after, _ := fs.Size(walPath)
	if after >= before {
		t.Fatalf("torn tail not truncated: %d -> %d", before, after)
	}
	var torn bool
	for _, e := range events {
		torn = torn || e.Kind == EventWALTorn
	}
	if !torn {
		t.Fatalf("no torn-tail event in %v", events)
	}
	// The repaired log accepts further appends that survive recovery.
	if _, err := s2.AppendDelta("tt", c.recs[1]); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, _ := Open("data", Options{FS: fs})
	defer s3.Close()
	rec3, err := s3.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Seq != 3 {
		t.Fatalf("seq after repair+append = %d", rec3.Seq)
	}
	bitwiseEqual(t, "repaired", rec3.Decomp, c.states[2])
}

func TestRecoverQuarantinesCorruptSnapshotAndDegrades(t *testing.T) {
	fs := NewMemFS()
	s, _ := Open("data", Options{FS: fs})
	c := makeChain(t, core.ISVD3, 2)
	ps0, _ := c.states[0].ExportState()
	ps2, _ := c.states[2].ExportState()
	if err := s.SaveSnapshot("tt", ps0, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot("tt", ps2, SnapshotMeta{Seq: 3, JobID: 101}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt a byte deep in generation 2's factor planes.
	snapPath := "data/tt/" + snapName(2)
	data, err := fs.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	f, _ := fs.Create(snapPath)
	f.Write(data)
	f.Sync()
	f.Close()

	var events []Event
	s2, _ := Open("data", Options{FS: fs, OnEvent: func(e Event) { events = append(events, e) }})
	defer s2.Close()
	rec, err := s2.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Degraded || rec.Gen != 1 || rec.Seq != 1 {
		t.Fatalf("recovered meta = %+v", rec)
	}
	bitwiseEqual(t, "degraded", rec.Decomp, c.states[0])
	kinds := map[string]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	if !kinds[EventSnapshotCorrupt] || !kinds[EventDegraded] {
		t.Fatalf("events = %v", events)
	}
	names, _ := fs.ReadDir("data/tt")
	var quarantined bool
	for _, n := range names {
		quarantined = quarantined || strings.HasSuffix(n, ".corrupt")
	}
	if !quarantined {
		t.Fatalf("no quarantined file in %v", names)
	}
}

// TestStaleWALNotReusedAfterDegradedRecovery pins the quarantined-
// timeline regression: when snap-2 is corrupt, recovery degrades to
// generation 1 — and generation 2's log, which described deltas on top
// of the quarantined snapshot, must be quarantined with it. The next
// timeline then re-reaches generation 2, and its acknowledged appends
// must survive a crash instead of landing after the dead timeline's
// records.
func TestStaleWALNotReusedAfterDegradedRecovery(t *testing.T) {
	fs := NewMemFS()
	s, _ := Open("data", Options{FS: fs})
	c := makeChain(t, core.ISVD4, 4)
	ps0, _ := c.states[0].ExportState()
	if err := s.SaveSnapshot("tt", ps0, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	for _, rec := range c.recs[:2] {
		if _, err := s.AppendDelta("tt", rec); err != nil {
			t.Fatal(err)
		}
	}
	ps2, _ := c.states[2].ExportState()
	if err := s.SaveSnapshot("tt", ps2, SnapshotMeta{Seq: 3, JobID: 101}); err != nil {
		t.Fatal(err)
	}
	// This record (seq 4) goes into wal-2, the timeline about to die.
	if _, err := s.AppendDelta("tt", c.recs[2]); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt snap-2: generation 2 is now a dead timeline.
	snapPath := "data/tt/" + snapName(2)
	data, err := fs.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	f, _ := fs.Create(snapPath)
	f.Write(data)
	f.Sync()
	f.Close()
	fs.SyncDir("data/tt")

	s2, _ := Open("data", Options{FS: fs})
	rec, err := s2.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Degraded || rec.Gen != 1 || rec.Seq != 3 {
		t.Fatalf("recovered meta = %+v", rec)
	}
	names, _ := fs.ReadDir("data/tt")
	var walQuarantined, walLive bool
	for _, n := range names {
		walQuarantined = walQuarantined || n == walName(2)+".corrupt"
		walLive = walLive || n == walName(2)
	}
	if !walQuarantined || walLive {
		t.Fatalf("dead timeline's log not quarantined: %v", names)
	}

	// The new timeline re-reaches generation 2 and acknowledges two more
	// records, then the machine dies.
	ps, err := rec.Decomp.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.SaveSnapshot("tt", ps, SnapshotMeta{Seq: 3, JobID: 101}); err != nil {
		t.Fatal(err)
	}
	for _, r := range c.recs[2:] {
		if _, err := s2.AppendDelta("tt", r); err != nil {
			t.Fatal(err)
		}
	}
	s2.Close()
	fs.Crash()

	var events []Event
	s3, _ := Open("data", Options{FS: fs, OnEvent: func(e Event) { events = append(events, e) }})
	defer s3.Close()
	again, err := s3.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	if again.Seq != 5 || again.Gen != 2 || again.Replayed != 2 || again.Degraded {
		t.Fatalf("acknowledged records lost after crash: %+v (events %v)", again, events)
	}
	bitwiseEqual(t, "new timeline", again.Decomp, c.states[4])
	for _, e := range events {
		t.Errorf("unexpected event %+v", e)
	}
}

// TestSaveSnapshotRemovesStaleLog covers the belt-and-braces half of the
// same fix: a store lifetime that never saw the quarantine (the snapshot
// vanished in an earlier lifetime, its log did not) rebuilds generation
// 1 from cold, and SaveSnapshot must clear the stale log before the new
// snapshot name can coexist with it.
func TestSaveSnapshotRemovesStaleLog(t *testing.T) {
	fs := NewMemFS()
	s, _ := Open("data", Options{FS: fs})
	c := makeChain(t, core.ISVD4, 2)
	ps0, _ := c.states[0].ExportState()
	if err := s.SaveSnapshot("tt", ps0, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	for _, rec := range c.recs {
		if _, err := s.AppendDelta("tt", rec); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// An earlier lifetime quarantined the snapshot but crashed before
	// taking the log with it.
	if err := fs.Rename("data/tt/"+snapName(1), "data/tt/"+snapName(1)+".corrupt"); err != nil {
		t.Fatal(err)
	}
	fs.SyncDir("data/tt")

	s2, _ := Open("data", Options{FS: fs})
	if _, err := s2.Recover("tt"); !errors.Is(err, ErrNoState) {
		t.Fatalf("recover with no snapshot: %v", err)
	}
	// Cold boot: redecompose, persist generation 1 again, acknowledge
	// one record, die.
	if err := s2.SaveSnapshot("tt", ps0, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.AppendDelta("tt", c.recs[0]); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	fs.Crash()

	s3, _ := Open("data", Options{FS: fs})
	defer s3.Close()
	rec, err := s3.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 2 || rec.Replayed != 1 {
		t.Fatalf("stale log polluted the new timeline: %+v", rec)
	}
	bitwiseEqual(t, "cold reboot", rec.Decomp, c.states[1])
}

// TestRecoverClosesPreviousLogHandle pins that re-recovering an open
// tenant releases the superseded log handle instead of leaking it.
func TestRecoverClosesPreviousLogHandle(t *testing.T) {
	fs := NewMemFS()
	s, _ := Open("data", Options{FS: fs})
	c := makeChain(t, core.ISVD4, 2)
	ps0, _ := c.states[0].ExportState()
	if err := s.SaveSnapshot("tt", ps0, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendDelta("tt", c.recs[0]); err != nil {
		t.Fatal(err)
	}
	if got := fs.OpenHandles(); got != 1 {
		t.Fatalf("open handles after append = %d, want 1 (the log)", got)
	}
	if _, err := s.Recover("tt"); err != nil {
		t.Fatal(err)
	}
	if got := fs.OpenHandles(); got != 0 {
		t.Fatalf("open handles after re-recover = %d, want 0 (superseded log closed)", got)
	}
	// The reopened tenant keeps appending where the log left off.
	if _, err := s.AppendDelta("tt", c.recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fs.OpenHandles(); got != 0 {
		t.Fatalf("open handles after close = %d, want 0", got)
	}
	s2, _ := Open("data", Options{FS: fs})
	defer s2.Close()
	rec, err := s2.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 3 || rec.Replayed != 2 {
		t.Fatalf("recovered meta = %+v", rec)
	}
	bitwiseEqual(t, "after reopen", rec.Decomp, c.states[2])
}

func TestAppendDeltaTransientFailureIsRetryable(t *testing.T) {
	c := makeChain(t, core.ISVD4, 2)
	for _, op := range []string{"write", "sync"} {
		t.Run(op, func(t *testing.T) {
			fs := NewMemFS()
			s, _ := Open("data", Options{FS: fs})
			ps, _ := c.states[0].ExportState()
			if err := s.SaveSnapshot("tt", ps, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.AppendDelta("tt", c.recs[0]); err != nil {
				t.Fatal(err)
			}
			fs.FailNext(op, fmt.Errorf("transient %s failure", op))
			if _, err := s.AppendDelta("tt", c.recs[1]); err == nil {
				t.Fatal("injected failure not surfaced")
			}
			if _, err := s.AppendDelta("tt", c.recs[1]); err != nil {
				t.Fatalf("retry failed: %v", err)
			}
			s.Close()
			s2, _ := Open("data", Options{FS: fs})
			defer s2.Close()
			rec, err := s2.Recover("tt")
			if err != nil {
				t.Fatal(err)
			}
			if rec.Seq != 3 || rec.Replayed != 2 {
				t.Fatalf("recovered meta = %+v (duplicate or lost record)", rec)
			}
			bitwiseEqual(t, "retried", rec.Decomp, c.states[2])
		})
	}
}

// TestCrashAtEveryPoint is the kill-at-every-crash-point property test:
// a workload of snapshots and log appends is run against a crash
// injected at every filesystem operation (and again with a torn
// write), and after each crash the store must open, recover a state
// that is (a) bitwise-identical to some prefix of the update chain and
// (b) at least as new as the last acknowledged operation, and then
// accept new writes.
func TestCrashAtEveryPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	c := makeChain(t, core.ISVD4, 4)

	// workload drives the store, returning the highest acknowledged
	// sequence number (0 = nothing acked).
	workload := func(fs *MemFS) uint64 {
		acked := uint64(0)
		s, err := Open("data", Options{FS: fs})
		if err != nil {
			return acked
		}
		defer s.Close()
		ps0, _ := c.states[0].ExportState()
		if err := s.SaveSnapshot("tt", ps0, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
			return acked
		}
		acked = 1
		for _, rec := range c.recs[:2] {
			if _, err := s.AppendDelta("tt", rec); err != nil {
				return acked
			}
			acked = rec.Seq
		}
		ps2, _ := c.states[2].ExportState()
		if err := s.SaveSnapshot("tt", ps2, SnapshotMeta{Seq: 3, JobID: 101}); err != nil {
			return acked
		}
		for _, rec := range c.recs[2:] {
			if _, err := s.AppendDelta("tt", rec); err != nil {
				return acked
			}
			acked = rec.Seq
		}
		return acked
	}

	clean := NewMemFS()
	if got := workload(clean); got != 5 {
		t.Fatalf("clean workload acked %d, want 5", got)
	}
	totalOps := clean.OpCount()
	if totalOps < 10 {
		t.Fatalf("workload too small to be interesting: %d ops", totalOps)
	}

	for n := 1; n <= totalOps; n++ {
		for _, partial := range []bool{false, true} {
			t.Run(fmt.Sprintf("op%d partial=%v", n, partial), func(t *testing.T) {
				fs := NewMemFS()
				fs.CrashAt(n, partial)
				acked := workload(fs)
				if !fs.Crashed() {
					t.Fatalf("crash point %d never fired", n)
				}
				fs.Crash()

				var events []Event
				s, err := Open("data", Options{FS: fs, OnEvent: func(e Event) { events = append(events, e) }})
				if err != nil {
					t.Fatalf("open after crash: %v", err)
				}
				rec, err := s.Recover("tt")
				if errors.Is(err, ErrNoState) {
					if acked > 0 {
						t.Fatalf("acked through seq %d but no state recovered (events %v)", acked, events)
					}
					s.Close()
					return
				}
				if err != nil {
					t.Fatalf("recover after crash at op %d: %v (events %v)", n, err, events)
				}
				if rec.Seq < acked {
					t.Fatalf("recovered seq %d < acknowledged %d", rec.Seq, acked)
				}
				if rec.Seq > 5 {
					t.Fatalf("recovered impossible seq %d", rec.Seq)
				}
				bitwiseEqual(t, "post-crash state", rec.Decomp, c.states[rec.Seq-1])

				// The store must stay writable after recovery: persist a
				// fresh snapshot of the recovered state and read it back.
				ps, err := rec.Decomp.ExportState()
				if err != nil {
					t.Fatal(err)
				}
				if err := s.SaveSnapshot("tt", ps, SnapshotMeta{Seq: rec.Seq, JobID: 999}); err != nil {
					t.Fatalf("post-recovery snapshot: %v", err)
				}
				s.Close()
				s2, _ := Open("data", Options{FS: fs})
				defer s2.Close()
				again, err := s2.Recover("tt")
				if err != nil {
					t.Fatalf("second recovery: %v", err)
				}
				if again.Seq != rec.Seq {
					t.Fatalf("second recovery seq %d, want %d", again.Seq, rec.Seq)
				}
				bitwiseEqual(t, "second recovery", again.Decomp, rec.Decomp)
			})
		}
	}
}

// TestMmapServingBitwise pins the acceptance criterion that a predictor
// over a memory-mapped snapshot is bitwise-equal to the in-memory one,
// using the real filesystem and (on unix) a real zero-copy mapping.
func TestMmapServingBitwise(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := makeChain(t, core.ISVD4, 2)
	ps, _ := c.states[0].ExportState()
	if err := s.SaveSnapshot("tt", ps, SnapshotMeta{Seq: 1, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	for _, rec := range c.recs {
		if _, err := s.AppendDelta("tt", rec); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, err := s2.Recover("tt")
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "mmap recovery", rec.Decomp, c.states[2])

	mem, err := recommend.FromSparseDecomposition(c.states[2], 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := recommend.FromSparseDecomposition(rec.Decomp, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mem.Rows(); i++ {
		for j := 0; j < mem.Cols(); j++ {
			a, err := mem.Predict(i, j)
			if err != nil {
				t.Fatal(err)
			}
			b, err := mapped.Predict(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("prediction (%d,%d): %x vs %x", i, j, math.Float64bits(a), math.Float64bits(b))
			}
		}
	}
}

func TestMemFSCrashSemantics(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}

	// Unsynced content does not survive.
	f, _ := fs.Create("d/a")
	f.Write([]byte("hello"))
	f.Close()
	fs.SyncDir("d")
	fs.Crash()
	if data, err := fs.ReadFile("d/a"); err != nil || len(data) != 0 {
		t.Fatalf("unsynced content survived: %q, %v", data, err)
	}

	// Synced content under an unsynced rename rolls back to the old name.
	f, _ = fs.Create("d/b.tmp")
	f.Write([]byte("world"))
	f.Sync()
	f.Close()
	fs.SyncDir("d")
	fs.Rename("d/b.tmp", "d/b")
	fs.Crash()
	if _, err := fs.ReadFile("d/b"); err == nil {
		t.Fatal("unsynced rename survived crash")
	}
	if data, err := fs.ReadFile("d/b.tmp"); err != nil || string(data) != "world" {
		t.Fatalf("rename rollback lost the source: %q, %v", data, err)
	}

	// Synced rename survives.
	fs.Rename("d/b.tmp", "d/b")
	fs.SyncDir("d")
	fs.Crash()
	if data, err := fs.ReadFile("d/b"); err != nil || string(data) != "world" {
		t.Fatalf("synced rename lost: %q, %v", data, err)
	}
}

func TestCheckTenantRejectsTraversal(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "a/b", "a\\b", strings.Repeat("x", 65), "a b"} {
		if err := checkTenant(bad); err == nil {
			t.Errorf("tenant %q accepted", bad)
		}
	}
	for _, good := range []string{"alpha", "t-1", "a.b_c", "..."} {
		if err := checkTenant(good); err != nil {
			t.Errorf("tenant %q rejected: %v", good, err)
		}
	}
}

// TestRecoverReturnsAckedKeys pins the idempotency window the service
// rebuilds on restart: the snapshot's own key plus every key
// acknowledged by a replayed log record, in log order.
func TestRecoverReturnsAckedKeys(t *testing.T) {
	fs := NewMemFS()
	st, err := Open("data", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	d, sp := testDecomp(t, core.ISVD4)
	ps, err := d.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot("t", ps, SnapshotMeta{Seq: 1, JobID: 5, IdemKey: "boot:1"}); err != nil {
		t.Fatal(err)
	}
	// One record acking one key, one coalesced record acking two.
	if _, err := st.AppendDelta("t", &WALRecord{
		Seq: 2, JobID: 6,
		Acked: []IdemAck{{JobID: 6, Key: "u:1"}},
		Delta: core.Delta{Patch: testPatch(sp, 1)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendDelta("t", &WALRecord{
		Seq: 3, JobID: 8,
		Acked: []IdemAck{{JobID: 7, Key: "u:2a"}, {JobID: 8, Key: "u:2b"}},
		Delta: core.Delta{Patch: testPatch(sp, 2)},
	}); err != nil {
		t.Fatal(err)
	}
	rec, err := st.Recover("t")
	if err != nil {
		t.Fatal(err)
	}
	want := []IdemAck{{5, "boot:1"}, {6, "u:1"}, {7, "u:2a"}, {8, "u:2b"}}
	if len(rec.Acked) != len(want) {
		t.Fatalf("Acked = %+v, want %+v", rec.Acked, want)
	}
	for i := range want {
		if rec.Acked[i] != want[i] {
			t.Fatalf("Acked[%d] = %+v, want %+v", i, rec.Acked[i], want[i])
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
