//go:build unix

package store

import (
	"os"
	"path/filepath"
	"syscall"
)

// Mmap maps the file read-only. The returned bytes alias the kernel
// page cache: decoding a snapshot from them costs no copy of the factor
// planes, and every serving process mapping the same snapshot shares
// one physical copy. The mapping stays valid after the file descriptor
// is closed; call unmap exactly once when the model is retired.
func (osFS) Mmap(name string) ([]byte, bool, func() error, error) {
	f, err := os.Open(filepath.FromSlash(name))
	if err != nil {
		return nil, false, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, true, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, nil, err
	}
	return data, true, func() error { return syscall.Munmap(data) }, nil
}
