package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The store talks to disk exclusively through this narrow FS interface,
// for one reason: crash-safety claims are only as good as their tests,
// and testing them requires injecting write failures, fsync failures,
// rename failures, and whole-process crashes at every point of the
// write protocols. The production implementation (osFS) maps each call
// onto the obvious os/syscall primitive; the test implementation
// (MemFS) models a POSIX filesystem with separate volatile and durable
// states, so a simulated crash drops exactly the bytes and namespace
// changes a real power cut would drop — unsynced file contents, and
// renames/creates whose parent directory was never fsynced.
//
// Paths use forward slashes at this interface; osFS converts to the
// host convention.

// FS is the filesystem surface the store needs. Implementations must be
// safe for concurrent use.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// ReadDir lists the names (not full paths) in a directory, sorted
	// ascending, so directory scans are deterministic.
	ReadDir(path string) ([]string, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Create opens a file for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens a file for appending, creating it if missing.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname. Durability of the
	// new name requires a subsequent SyncDir of the parent.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts a file to the given size (torn-tail repair).
	Truncate(name string, size int64) error
	// Size returns a file's current length in bytes.
	Size(name string) (int64, error)
	// SyncDir flushes a directory's entries, making renames, creates,
	// and removes under it durable.
	SyncDir(path string) error
	// Mmap maps a file read-only, returning the bytes and an unmap
	// function. Implementations without memory mapping return a heap
	// copy and report zeroCopy false.
	Mmap(name string) (data []byte, zeroCopy bool, unmap func() error, err error)
}

// File is an open store file.
type File interface {
	io.Writer
	// Sync flushes the file's content to durable storage.
	Sync() error
	Close() error
}

// OS returns the production filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string) error {
	return os.MkdirAll(filepath.FromSlash(path), 0o755)
}

func (osFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(filepath.FromSlash(path))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.FromSlash(name))
}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(filepath.FromSlash(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(filepath.FromSlash(name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.FromSlash(oldname), filepath.FromSlash(newname))
}

func (osFS) Remove(name string) error {
	return os.Remove(filepath.FromSlash(name))
}

func (osFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.FromSlash(name), size)
}

func (osFS) Size(name string) (int64, error) {
	fi, err := os.Stat(filepath.FromSlash(name))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) SyncDir(path string) error {
	d, err := os.Open(filepath.FromSlash(path))
	if err != nil {
		return err
	}
	// Directory fsync makes the entries themselves durable — without it
	// a crash can roll back a completed rename.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("store: sync dir %s: %w", path, serr)
	}
	return cerr
}
