package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// Snapshot file format, version 2 ("IVMFSNP2"):
//
//	[0,8)            magic "IVMFSNP2"
//	[8,12)           u32 header length H
//	[12,12+H)        header (fixed little-endian fields, see snapHeader)
//	[12+H,16+H)      u32 CRC32C of the header
//	...              zero padding to the next multiple of 8
//	[D,D+L)          data region: all float64 planes in file order,
//	                 then all int64 index arrays
//	[D+L,D+L+4)      u32 CRC32C of the data region
//
// Everything is little-endian. The data region starts 8-byte aligned
// and holds only 8-byte elements, so on little-endian hosts a
// memory-mapped snapshot serves its factor planes zero-copy: the
// decoded []float64 slices alias the kernel page cache directly. The
// two CRCs are Castagnoli CRC32 (the SSE4.2-accelerated polynomial),
// split so a corrupt factor plane is distinguishable from a corrupt
// header.
//
// Float64 plane order (lengths derived from the header):
//
//	U.Lo U.Hi Sigma.Lo Sigma.Hi V.Lo V.Hi
//	CosVUnaligned CosVAligned CosURecovered CosVRecomputed
//	M.Lo M.Hi
//	state planes: mid.U mid.S mid.V          (stateKind 0, ISVD0)
//	              lo.U lo.S lo.V hi.U hi.S hi.V  (stateKind 1, ISVD1-4)
//
// Int64 array order: M.RowPtr (n+1), M.ColInd (nnz).

const (
	snapMagic   = "IVMFSNP2"
	snapMaxDiag = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLE reports whether the host is little-endian; zero-copy plane
// aliasing is only valid when the in-memory and on-disk byte orders
// agree.
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// SnapshotMeta is the serving metadata stored alongside the factor
// state: the per-tenant publish sequence number, the job that published
// it, and the rating clamp the serving predictor was built with (so a
// restart rebuilds a bitwise-identical predictor; MaxRating <=
// MinRating means unclamped). IdemKey, when non-empty, is the
// idempotency key the publishing job was acknowledged under, so a
// restarted server can answer a retried submission with the original
// acknowledgement.
type SnapshotMeta struct {
	Seq       uint64
	JobID     uint64
	MinRating float64
	MaxRating float64
	IdemKey   string
}

// SnapshotPayload is a decoded snapshot: the complete persistent engine
// state plus its serving metadata. ZeroCopy reports whether the float64
// planes alias the decoded byte buffer (little-endian host, aligned
// mapping) rather than heap copies — if true, the buffer must outlive
// the payload.
type SnapshotPayload struct {
	Meta     SnapshotMeta
	State    *core.PersistentState
	ZeroCopy bool
}

// snapHeader is the decoded fixed-field header.
type snapHeader struct {
	method   uint32
	rank     uint32
	target   uint32
	assign   uint32
	condThr  float64
	pinvCut  float64
	workers  uint32
	solver   uint32
	refresh  uint32
	refBudg  float64
	exactAlg byte
	seq      uint64
	jobID    uint64
	minRat   float64
	maxRat   float64
	idemKey  string
	resAcc   float64
	n, m     uint32
	nnz      uint64
	diagLen  [snapMaxDiag]uint32
	// stateKind 0: mid only (k0 = mid rank, k1 = 0).
	// stateKind 1: lo/hi pair (k0 = lo rank, k1 = hi rank).
	stateKind byte
	k0, k1    uint32
}

// EncodeSnapshot serializes a persistent decomposition state into one
// self-validating snapshot file image.
func EncodeSnapshot(ps *core.PersistentState, meta SnapshotMeta) ([]byte, error) {
	h, err := headerFor(ps, meta)
	if err != nil {
		return nil, err
	}
	planes, ints := statePlanes(ps, h)

	hdr := h.encode()
	dataLen, ok := h.dataSize()
	if !ok {
		return nil, fmt.Errorf("store: snapshot: state too large to encode")
	}
	dataOff := align8(8 + 4 + len(hdr) + 4)
	buf := make([]byte, 0, uint64(dataOff)+dataLen+4)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(hdr, castagnoli))
	for len(buf) < dataOff {
		buf = append(buf, 0)
	}
	for _, p := range planes {
		buf = appendF64s(buf, p.f64s)
	}
	for _, a := range ints {
		buf = appendI64s(buf, a.ints)
	}
	data := buf[dataOff:]
	if uint64(len(data)) != dataLen {
		return nil, fmt.Errorf("store: snapshot: encoded %d data bytes, computed %d", len(data), dataLen)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(data, castagnoli))
	return buf, nil
}

// DecodeSnapshot parses a snapshot file image. It never panics on
// malformed input and never allocates more than a small multiple of
// len(data): every declared dimension is checked against the actual
// file size before anything is allocated. On little-endian hosts with
// an 8-byte-aligned buffer the float64 planes alias data (zero-copy);
// int index arrays are always converted (their width is platform int).
//
//ivmf:deterministic
func DecodeSnapshot(data []byte) (*SnapshotPayload, error) {
	if len(data) < 12 || string(data[:8]) != snapMagic {
		return nil, fmt.Errorf("store: snapshot: bad magic (have %d bytes)", len(data))
	}
	hlen := int(binary.LittleEndian.Uint32(data[8:12]))
	if hlen != snapHeaderLen {
		return nil, fmt.Errorf("store: snapshot: header length %d, want %d", hlen, snapHeaderLen)
	}
	if len(data) < 12+hlen+4 {
		return nil, fmt.Errorf("store: snapshot: truncated header at offset %d", len(data))
	}
	hdr := data[12 : 12+hlen]
	wantCRC := binary.LittleEndian.Uint32(data[12+hlen:])
	if got := crc32.Checksum(hdr, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("store: snapshot: header checksum %08x, want %08x", got, wantCRC)
	}
	h, err := decodeHeader(hdr)
	if err != nil {
		return nil, err
	}
	dataOff := align8(12 + hlen + 4)
	dataLen, ok := h.dataSize()
	if !ok {
		return nil, fmt.Errorf("store: snapshot: declared dimensions overflow")
	}
	if uint64(len(data)) != uint64(dataOff)+dataLen+4 {
		return nil, fmt.Errorf("store: snapshot: file is %d bytes, header implies %d", len(data), uint64(dataOff)+dataLen+4)
	}
	for _, b := range data[12+hlen+4 : dataOff] {
		if b != 0 {
			return nil, fmt.Errorf("store: snapshot: nonzero padding before offset %d", dataOff)
		}
	}
	region := data[dataOff : uint64(dataOff)+dataLen]
	wantCRC = binary.LittleEndian.Uint32(data[uint64(dataOff)+dataLen:])
	if got := crc32.Checksum(region, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("store: snapshot: data checksum %08x, want %08x at offset %d", got, wantCRC, dataOff)
	}

	zeroCopy := hostLE && (len(region) == 0 || uintptr(unsafe.Pointer(&region[0]))%8 == 0)
	cut := func(elems uint64) []byte {
		n := elems * 8
		s := region[:n]
		region = region[n:]
		return s
	}
	f64 := func(elems uint64) []float64 { return f64View(cut(elems), zeroCopy) }

	n, m, r := uint64(h.n), uint64(h.m), uint64(h.rank)
	ps := &core.PersistentState{
		Method: core.Method(h.method),
		Opts: core.Options{
			Rank:          int(h.rank),
			Target:        core.Target(h.target),
			Assign:        assign.Method(h.assign),
			CondThreshold: h.condThr,
			PinvCutoff:    h.pinvCut,
			Workers:       int(h.workers),
			Solver:        eig.Solver(h.solver),
			Updatable:     true,
			Refresh:       core.Refresh(h.refresh),
			RefreshBudget: h.refBudg,
			ExactAlgebra:  h.exactAlg != 0,
		},
		ResAcc: h.resAcc,
	}
	dense := func(rows, cols uint64) *matrix.Dense {
		return &matrix.Dense{Rows: int(rows), Cols: int(cols), Data: f64(rows * cols)}
	}
	ps.U = &imatrix.IMatrix{Lo: dense(n, r), Hi: dense(n, r)}
	ps.Sigma = &imatrix.IMatrix{Lo: dense(r, r), Hi: dense(r, r)}
	ps.V = &imatrix.IMatrix{Lo: dense(m, r), Hi: dense(m, r)}
	diags := []*[]float64{&ps.CosVUnaligned, &ps.CosVAligned, &ps.CosURecovered, &ps.CosVRecomputed}
	for i, d := range diags {
		if h.diagLen[i] > 0 {
			*d = f64(uint64(h.diagLen[i]))
		}
	}
	mLo := f64(h.nnz)
	mHi := f64(h.nnz)
	readState := func(k uint64) *eig.SVDResult {
		return &eig.SVDResult{U: dense(n, k), S: f64(k), V: dense(m, k)}
	}
	if h.stateKind == 0 {
		ps.Mid = readState(uint64(h.k0))
	} else {
		ps.Lo = readState(uint64(h.k0))
		ps.Hi = readState(uint64(h.k1))
	}
	rowPtr, err := intView(cut(n+1), "RowPtr")
	if err != nil {
		return nil, err
	}
	colInd, err := intView(cut(h.nnz), "ColInd")
	if err != nil {
		return nil, err
	}
	if len(region) != 0 {
		return nil, fmt.Errorf("store: snapshot: %d unconsumed data bytes", len(region))
	}
	ps.M = &sparse.ICSR{Rows: int(h.n), Cols: int(h.m), RowPtr: rowPtr, ColInd: colInd, Lo: mLo, Hi: mHi}
	return &SnapshotPayload{
		Meta:     SnapshotMeta{Seq: h.seq, JobID: h.jobID, MinRating: h.minRat, MaxRating: h.maxRat, IdemKey: h.idemKey},
		State:    ps,
		ZeroCopy: zeroCopy,
	}, nil
}

// headerFor derives and validates the header from a state about to be
// encoded.
func headerFor(ps *core.PersistentState, meta SnapshotMeta) (*snapHeader, error) {
	if ps == nil || ps.M == nil || ps.U == nil || ps.Sigma == nil || ps.V == nil {
		return nil, fmt.Errorf("store: snapshot: incomplete state")
	}
	if !ps.Opts.Updatable {
		return nil, fmt.Errorf("store: snapshot: state is not updatable")
	}
	h := &snapHeader{
		method:  uint32(ps.Method),
		rank:    uint32(ps.Opts.Rank),
		target:  uint32(ps.Opts.Target),
		assign:  uint32(ps.Opts.Assign),
		condThr: ps.Opts.CondThreshold,
		pinvCut: ps.Opts.PinvCutoff,
		workers: uint32(ps.Opts.Workers),
		solver:  uint32(ps.Opts.Solver),
		refresh: uint32(ps.Opts.Refresh),
		refBudg: ps.Opts.RefreshBudget,
		seq:     meta.Seq,
		jobID:   meta.JobID,
		minRat:  meta.MinRating,
		maxRat:  meta.MaxRating,
		idemKey: meta.IdemKey,
		resAcc:  ps.ResAcc,
		n:       uint32(ps.M.Rows),
		m:       uint32(ps.M.Cols),
		nnz:     uint64(len(ps.M.ColInd)),
		stateKind: func() byte {
			if ps.Mid != nil {
				return 0
			}
			return 1
		}(),
	}
	if h.idemKey != "" {
		if err := checkIdemKey(h.idemKey); err != nil {
			return nil, err
		}
	}
	if ps.Opts.ExactAlgebra {
		h.exactAlg = 1
	}
	for i, d := range [][]float64{ps.CosVUnaligned, ps.CosVAligned, ps.CosURecovered, ps.CosVRecomputed} {
		h.diagLen[i] = uint32(len(d))
	}
	if h.stateKind == 0 {
		if ps.Mid == nil || ps.Lo != nil || ps.Hi != nil {
			return nil, fmt.Errorf("store: snapshot: inconsistent factor-state sides")
		}
		h.k0 = uint32(len(ps.Mid.S))
	} else {
		if ps.Lo == nil || ps.Hi == nil {
			return nil, fmt.Errorf("store: snapshot: inconsistent factor-state sides")
		}
		h.k0 = uint32(len(ps.Lo.S))
		h.k1 = uint32(len(ps.Hi.S))
	}
	return h, nil
}

// snapHeaderLen is the exact encoded header size; decode rejects any
// other length, so format evolution must bump the magic.
const snapHeaderLen = 15*4 + 9*8 + 2 + 1 + MaxIdemKeyLen // v1 fields + idem key length byte + fixed key field

func (h *snapHeader) encode() []byte {
	b := make([]byte, 0, snapHeaderLen)
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u32(h.method)
	u32(h.rank)
	u32(h.target)
	u32(h.assign)
	f64(h.condThr)
	f64(h.pinvCut)
	u32(h.workers)
	u32(h.solver)
	u32(h.refresh)
	f64(h.refBudg)
	b = append(b, h.exactAlg)
	u64(h.seq)
	u64(h.jobID)
	f64(h.minRat)
	f64(h.maxRat)
	// Fixed-width idempotency key field: u8 length, then MaxIdemKeyLen
	// bytes (key, zero padded) — fixed so the header length stays
	// constant and decode keeps its exact-size check.
	b = append(b, byte(len(h.idemKey)))
	b = append(b, h.idemKey...)
	for i := len(h.idemKey); i < MaxIdemKeyLen; i++ {
		b = append(b, 0)
	}
	f64(h.resAcc)
	u32(h.n)
	u32(h.m)
	u64(h.nnz)
	for _, d := range h.diagLen {
		u32(d)
	}
	b = append(b, h.stateKind)
	u32(h.k0)
	u32(h.k1)
	if len(b) != snapHeaderLen {
		panic(fmt.Sprintf("store: snapHeaderLen is %d, encoded %d", snapHeaderLen, len(b)))
	}
	return b
}

func decodeHeader(b []byte) (*snapHeader, error) {
	h := &snapHeader{}
	off := 0
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(b[off:]); off += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(b[off:]); off += 8; return v }
	f64 := func() float64 { return math.Float64frombits(u64()) }
	u8 := func() byte { v := b[off]; off++; return v }
	h.method = u32()
	h.rank = u32()
	h.target = u32()
	h.assign = u32()
	h.condThr = f64()
	h.pinvCut = f64()
	h.workers = u32()
	h.solver = u32()
	h.refresh = u32()
	h.refBudg = f64()
	h.exactAlg = u8()
	h.seq = u64()
	h.jobID = u64()
	h.minRat = f64()
	h.maxRat = f64()
	klen := int(u8())
	kraw := b[off : off+MaxIdemKeyLen]
	off += MaxIdemKeyLen
	if klen > MaxIdemKeyLen {
		return nil, fmt.Errorf("store: snapshot: idempotency key length %d exceeds %d", klen, MaxIdemKeyLen)
	}
	for _, c := range kraw[klen:] {
		if c != 0 {
			return nil, fmt.Errorf("store: snapshot: nonzero padding in idempotency key field")
		}
	}
	h.idemKey = string(kraw[:klen])
	h.resAcc = f64()
	h.n = u32()
	h.m = u32()
	h.nnz = u64()
	for i := range h.diagLen {
		h.diagLen[i] = u32()
	}
	h.stateKind = u8()
	h.k0 = u32()
	h.k1 = u32()
	// Structural sanity the size computation depends on; everything
	// deeper (enum ranges, factor shapes vs. matrix) is core.ImportState's
	// job after decode.
	if h.n == 0 || h.m == 0 || h.rank == 0 {
		return nil, fmt.Errorf("store: snapshot: zero dimension %dx%d rank %d", h.n, h.m, h.rank)
	}
	if h.stateKind > 1 {
		return nil, fmt.Errorf("store: snapshot: unknown factor-state kind %d", h.stateKind)
	}
	if h.k0 == 0 || (h.stateKind == 1) != (h.k1 != 0) {
		return nil, fmt.Errorf("store: snapshot: factor-state ranks %d/%d inconsistent with kind %d", h.k0, h.k1, h.stateKind)
	}
	return h, nil
}

// dataSize computes the exact data-region byte length implied by the
// header, reporting failure on overflow so a hostile header can never
// wrap the size check.
func (h *snapHeader) dataSize() (uint64, bool) {
	n, m, r := uint64(h.n), uint64(h.m), uint64(h.rank)
	elems := uint64(0)
	ok := true
	add := func(a, b uint64) {
		p, mulOK := mul64(a, b)
		s, addOK := add64(elems, p)
		ok = ok && mulOK && addOK
		elems = s
	}
	// Published factors: U, Sigma, V, each two endpoint planes.
	add(2*n, r)
	add(2*r, r)
	add(2*m, r)
	for _, d := range h.diagLen {
		add(uint64(d), 1)
	}
	// M endpoints.
	add(2, h.nnz)
	// Factor states.
	if h.stateKind == 0 {
		add(n+m, uint64(h.k0))
		add(uint64(h.k0), 1)
	} else {
		add(n+m, uint64(h.k0))
		add(uint64(h.k0), 1)
		add(n+m, uint64(h.k1))
		add(uint64(h.k1), 1)
	}
	// Int arrays: RowPtr (n+1) and ColInd (nnz).
	add(n+1, 1)
	add(h.nnz, 1)
	bytes, mulOK := mul64(elems, 8)
	return bytes, ok && mulOK
}

func mul64(a, b uint64) (uint64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	return p, p/a == b
}

func add64(a, b uint64) (uint64, bool) {
	s := a + b
	return s, s >= a
}

func align8(n int) int { return (n + 7) &^ 7 }

// f64Plane / i64Array pair a name with encode-side storage; statePlanes
// walks a state in exactly the file order DecodeSnapshot consumes.
type f64Plane struct {
	name string
	f64s []float64
}

type i64Array struct {
	name string
	ints []int
}

func statePlanes(ps *core.PersistentState, h *snapHeader) ([]f64Plane, []i64Array) {
	planes := []f64Plane{
		{"U.Lo", ps.U.Lo.Data}, {"U.Hi", ps.U.Hi.Data},
		{"Sigma.Lo", ps.Sigma.Lo.Data}, {"Sigma.Hi", ps.Sigma.Hi.Data},
		{"V.Lo", ps.V.Lo.Data}, {"V.Hi", ps.V.Hi.Data},
		{"CosVUnaligned", ps.CosVUnaligned}, {"CosVAligned", ps.CosVAligned},
		{"CosURecovered", ps.CosURecovered}, {"CosVRecomputed", ps.CosVRecomputed},
		{"M.Lo", ps.M.Lo}, {"M.Hi", ps.M.Hi},
	}
	if h.stateKind == 0 {
		planes = append(planes,
			f64Plane{"mid.U", ps.Mid.U.Data}, f64Plane{"mid.S", ps.Mid.S}, f64Plane{"mid.V", ps.Mid.V.Data})
	} else {
		planes = append(planes,
			f64Plane{"lo.U", ps.Lo.U.Data}, f64Plane{"lo.S", ps.Lo.S}, f64Plane{"lo.V", ps.Lo.V.Data},
			f64Plane{"hi.U", ps.Hi.U.Data}, f64Plane{"hi.S", ps.Hi.S}, f64Plane{"hi.V", ps.Hi.V.Data})
	}
	ints := []i64Array{
		{"M.RowPtr", ps.M.RowPtr},
		{"M.ColInd", ps.M.ColInd},
	}
	return planes, ints
}

// appendF64s appends a float64 slice little-endian. On little-endian
// hosts the slice's backing bytes are appended directly.
func appendF64s(b []byte, s []float64) []byte {
	if len(s) == 0 {
		return b
	}
	if hostLE {
		return append(b, unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)...)
	}
	for _, v := range s {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

func appendI64s(b []byte, s []int) []byte {
	for _, v := range s {
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(v)))
	}
	return b
}

// f64View interprets raw to a float64 slice: aliased when alias is set
// (little-endian host, 8-byte-aligned base), converted otherwise.
func f64View(raw []byte, alias bool) []float64 {
	n := len(raw) / 8
	if n == 0 {
		return nil
	}
	if alias {
		return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

// intView converts an int64 array to platform ints, rejecting values
// that don't round-trip (a 32-bit platform reading a huge index).
func intView(raw []byte, field string) ([]int, error) {
	n := len(raw) / 8
	out := make([]int, n)
	for i := range out {
		v := int64(binary.LittleEndian.Uint64(raw[i*8:]))
		if int64(int(v)) != v {
			return nil, fmt.Errorf("store: snapshot: %s[%d] = %d overflows int", field, i, v)
		}
		out[i] = int(v)
	}
	return out, nil
}
