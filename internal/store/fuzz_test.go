package store

// Fuzz coverage for the two on-disk decoders, which parse bytes that a
// crash, a disk, or an attacker with filesystem access may have
// mangled. Properties checked: neither decoder ever panics, allocations
// stay bounded by the input length (hostile headers cannot demand
// gigabytes), errors carry an offset or field position, and anything a
// decoder accepts survives the deep validation the serving path runs
// next (core.ImportState, ICSR.CheckStructure).

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sparse"
)

func fuzzState(f *testing.F) *core.PersistentState {
	f.Helper()
	sp := lowRankICSR(9, 7, 2, rand.New(rand.NewSource(3)))
	d, err := core.DecomposeSparse(sp, core.ISVD4, core.Options{Rank: 3, Target: core.TargetB, Updatable: true})
	if err != nil {
		f.Fatal(err)
	}
	ps, err := d.ExportState()
	if err != nil {
		f.Fatal(err)
	}
	return ps
}

func FuzzSnapshotDecode(f *testing.F) {
	ps := fuzzState(f)
	valid, err := EncodeSnapshot(ps, SnapshotMeta{Seq: 2, JobID: 7})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:40])
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	// Valid magic and framing with a hostile header.
	hostile := append([]byte(nil), valid...)
	hostile[30] ^= 0xff
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Accepted bytes must also survive the serving path's deep
		// validation without panicking; both outcomes are fine.
		if _, err := core.ImportState(payload.State); err == nil {
			if _, err := EncodeSnapshot(payload.State, payload.Meta); err != nil {
				t.Fatalf("accepted state failed to re-encode: %v", err)
			}
		}
	})
}

func FuzzWALDecode(f *testing.F) {
	ps := fuzzState(f)
	for _, delta := range []core.Delta{
		{Patch: []sparse.ITriplet{{Row: 0, Col: 1, Lo: 1, Hi: 2}}},
		{AppendRows: lowRankICSR(2, 7, 1, rand.New(rand.NewSource(4)))},
		{AppendCols: lowRankICSR(11, 2, 1, rand.New(rand.NewSource(5)))},
		{Unpatch: []sparse.Cell{{Row: 0, Col: 1}, {Row: 3, Col: 2}}},
		{RemoveRows: []int{1, 4}, RemoveCols: []int{0}},
		{Forget: 0.9},
	} {
		payload, err := EncodeWALRecord(&WALRecord{Seq: 2, JobID: 9, Delta: delta})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		f.Add(payload[:len(payload)/2])
	}
	f.Add([]byte{})
	f.Add(make([]byte, 29))
	_ = ps

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeWALRecord(data)
		if err != nil {
			return
		}
		// Any accepted embedded matrix must hold the CSR invariants the
		// update engine assumes without checking.
		for _, a := range []*sparse.ICSR{rec.Delta.AppendRows, rec.Delta.AppendCols} {
			if a == nil {
				continue
			}
			if err := a.CheckStructure(); err != nil {
				t.Fatalf("accepted malformed ICSR: %v", err)
			}
		}
		d := &rec.Delta
		if d.AppendRows == nil && d.AppendCols == nil && len(d.Patch) == 0 &&
			len(d.Unpatch) == 0 && len(d.RemoveRows) == 0 && len(d.RemoveCols) == 0 && d.Forget == 0 {
			t.Fatal("accepted record with empty delta")
		}
		if d.Forget != 0 && !(d.Forget > 0 && d.Forget <= 1) {
			t.Fatalf("accepted forgetting factor %v", d.Forget)
		}
	})
}
