package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnMisordered(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2,1) did not panic")
		}
	}()
	New(2, 1)
}

func TestFromUnordered(t *testing.T) {
	iv := FromUnordered(3, -1)
	if iv.Lo != -1 || iv.Hi != 3 {
		t.Fatalf("got %v", iv)
	}
}

func TestScalarAndSpan(t *testing.T) {
	s := Scalar(4.5)
	if !s.IsScalar() || s.Span() != 0 || s.Mid() != 4.5 {
		t.Fatalf("scalar misbehaved: %v", s)
	}
	iv := New(1, 5)
	if iv.Span() != 4 || iv.Mid() != 3 || iv.Radius() != 2 {
		t.Fatalf("span/mid/radius wrong: %v", iv)
	}
}

func TestAddSub(t *testing.T) {
	a, b := New(1, 2), New(3, 5)
	if got := a.Add(b); !got.Equal(New(4, 7)) {
		t.Errorf("Add: got %v", got)
	}
	if got := a.Sub(b); !got.Equal(New(-4, -1)) {
		t.Errorf("Sub: got %v", got)
	}
}

func TestMulSignCases(t *testing.T) {
	cases := []struct{ a, b, want Interval }{
		{New(1, 2), New(3, 4), New(3, 8)},
		{New(-2, -1), New(3, 4), New(-8, -3)},
		{New(-2, 3), New(-1, 4), New(-8, 12)},
		{New(-2, -1), New(-4, -3), New(3, 8)},
		{Scalar(0), New(-5, 7), Scalar(0)},
	}
	for _, c := range cases {
		if got := c.a.Mul(c.b); !got.Equal(c.want) {
			t.Errorf("%v × %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestScale(t *testing.T) {
	iv := New(1, 3)
	if got := iv.Scale(2); !got.Equal(New(2, 6)) {
		t.Errorf("Scale(2) = %v", got)
	}
	if got := iv.Scale(-1); !got.Equal(New(-3, -1)) {
		t.Errorf("Scale(-1) = %v", got)
	}
	// Scale must agree with Mul by the scalar interval.
	if got, want := iv.Scale(-2.5), iv.Mul(Scalar(-2.5)); !got.Equal(want) {
		t.Errorf("Scale(-2.5)=%v, Mul=%v", got, want)
	}
}

func TestSqTighterThanMul(t *testing.T) {
	a := New(-2, 3)
	sq := a.Sq()
	if !sq.Equal(New(0, 9)) {
		t.Errorf("Sq = %v, want [0,9]", sq)
	}
	// Naive Mul(a, a) would give [-6, 9]; Sq must be contained in it.
	if !a.Mul(a).ContainsInterval(sq) {
		t.Error("Sq not contained in Mul(a,a)")
	}
}

func TestHullClampContains(t *testing.T) {
	a, b := New(1, 2), New(4, 6)
	if got := a.Hull(b); !got.Equal(New(1, 6)) {
		t.Errorf("Hull = %v", got)
	}
	if got := New(-1, 9).Clamp(0, 5); !got.Equal(New(0, 5)) {
		t.Errorf("Clamp = %v", got)
	}
	if !a.Contains(1.5) || a.Contains(3) {
		t.Error("Contains wrong")
	}
	if !New(0, 10).ContainsInterval(b) || b.ContainsInterval(New(0, 10)) {
		t.Error("ContainsInterval wrong")
	}
	if !a.Intersects(New(2, 3)) || a.Intersects(New(2.1, 3)) {
		t.Error("Intersects wrong")
	}
}

func TestNegAndString(t *testing.T) {
	if got := New(1, 2).Neg(); !got.Equal(New(-2, -1)) {
		t.Errorf("Neg = %v", got)
	}
	if s := Scalar(3).String(); s != "3" {
		t.Errorf("scalar String = %q", s)
	}
	if s := New(1, 2).String(); s != "[1, 2]" {
		t.Errorf("String = %q", s)
	}
}

func TestIsValid(t *testing.T) {
	if !New(0, 1).IsValid() {
		t.Error("valid interval reported invalid")
	}
	if (Interval{Lo: 2, Hi: 1}).IsValid() {
		t.Error("misordered interval reported valid")
	}
	if (Interval{Lo: math.NaN(), Hi: 1}).IsValid() {
		t.Error("NaN interval reported valid")
	}
	if (Interval{Lo: 0, Hi: math.Inf(1)}).IsValid() {
		t.Error("Inf interval reported valid")
	}
}

// randInterval produces a bounded random interval for property tests.
func randInterval(r *rand.Rand) Interval {
	a := r.Float64()*20 - 10
	b := r.Float64()*20 - 10
	return FromUnordered(a, b)
}

// Property: interval multiplication is inclusion-correct — the product of
// any two member points lies inside the product interval.
func TestPropMulInclusion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		prod := a.Mul(b)
		for trial := 0; trial < 20; trial++ {
			x := a.Lo + r.Float64()*a.Span()
			y := b.Lo + r.Float64()*b.Span()
			if !prod.Contains(x*y) && math.Abs(x*y-prod.Lo) > 1e-12 && math.Abs(x*y-prod.Hi) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Add/Sub are inclusion-correct and Mul is commutative.
func TestPropAlgebraLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		if !a.Mul(b).ApproxEqual(b.Mul(a), 1e-12) {
			return false
		}
		if !a.Add(b).ApproxEqual(b.Add(a), 1e-12) {
			return false
		}
		// x - y for members must be inside a.Sub(b).
		sub := a.Sub(b)
		x := a.Lo + r.Float64()*a.Span()
		y := b.Lo + r.Float64()*b.Span()
		return sub.Contains(x-y) || math.Abs(x-y-sub.Lo) < 1e-12 || math.Abs(x-y-sub.Hi) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Theorem 1 — a product of two non-zero intervals is scalar only
// when both operands are scalar.
func TestPropScalarTheorem(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		// Force genuinely non-scalar, non-zero intervals.
		if a.Span() < 1e-6 {
			a.Hi += 1
		}
		if b.Span() < 1e-6 {
			b.Hi += 1
		}
		if a.Contains(0) && a.Lo == 0 && a.Hi == 0 {
			return true
		}
		prod := a.Mul(b)
		zeroA := a.Lo == 0 && a.Hi == 0
		zeroB := b.Lo == 0 && b.Hi == 0
		if !zeroA && !zeroB && prod.IsScalar() {
			// Only possible when one operand is the zero interval.
			return prod.Lo == 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
