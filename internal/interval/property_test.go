package interval

// Property-based tests for the Sunaga interval algebra: randomized checks
// of the axioms the decomposition code silently relies on — inclusion
// correctness (member points stay inside derived intervals), lo <= hi
// preservation, and inclusion monotonicity of the endpoint-combine
// multiplication (a ⊆ a', b ⊆ b' ⇒ a·b ⊆ a'·b').

import (
	"math"
	"math/rand"
	"testing"
)

const propTrials = 2000

// propInterval draws an interval with endpoints in [-scale, scale];
// about one in five is degenerate (scalar).
func propInterval(rng *rand.Rand, scale float64) Interval {
	a := (rng.Float64()*2 - 1) * scale
	if rng.Intn(5) == 0 {
		return Scalar(a)
	}
	b := (rng.Float64()*2 - 1) * scale
	return FromUnordered(a, b)
}

// propMember draws a member point of a.
func propMember(rng *rand.Rand, a Interval) float64 {
	return a.Lo + rng.Float64()*(a.Hi-a.Lo)
}

func TestPropOrderedEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < propTrials; n++ {
		a := propInterval(rng, 10)
		b := propInterval(rng, 10)
		for _, c := range []struct {
			name string
			iv   Interval
		}{
			{"Add", a.Add(b)}, {"Sub", a.Sub(b)}, {"Mul", a.Mul(b)},
			{"Sq", a.Sq()}, {"Neg", a.Neg()}, {"Hull", a.Hull(b)},
			{"Scale", a.Scale(rng.NormFloat64() * 3)},
			{"Clamp", a.Clamp(-1, 1)},
		} {
			if c.iv.Lo > c.iv.Hi {
				t.Fatalf("trial %d: %s(%v, %v) = %v misordered", n, c.name, a, b, c.iv)
			}
		}
	}
}

func TestPropInclusionCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const tol = 1e-9
	for n := 0; n < propTrials; n++ {
		a := propInterval(rng, 10)
		b := propInterval(rng, 10)
		x := propMember(rng, a)
		y := propMember(rng, b)
		checks := []struct {
			name string
			iv   Interval
			v    float64
		}{
			{"Add", a.Add(b), x + y},
			{"Sub", a.Sub(b), x - y},
			{"Mul", a.Mul(b), x * y},
			{"Sq", a.Sq(), x * x},
			{"Neg", a.Neg(), -x},
			{"Hull", a.Hull(b), x},
		}
		for _, c := range checks {
			if c.v < c.iv.Lo-tol || c.v > c.iv.Hi+tol {
				t.Fatalf("trial %d: %s member %g escapes %v (a=%v x=%g, b=%v y=%g)",
					n, c.name, c.v, c.iv, a, x, b, y)
			}
		}
	}
}

func TestPropMulMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const tol = 1e-9
	widen := func(a Interval) Interval {
		return Interval{Lo: a.Lo - rng.Float64(), Hi: a.Hi + rng.Float64()}
	}
	for n := 0; n < propTrials; n++ {
		a := propInterval(rng, 10)
		b := propInterval(rng, 10)
		aw, bw := widen(a), widen(b)
		inner := a.Mul(b)
		outer := aw.Mul(bw)
		if inner.Lo < outer.Lo-tol || inner.Hi > outer.Hi+tol {
			t.Fatalf("trial %d: Mul not inclusion monotone: %v·%v = %v outside %v·%v = %v",
				n, a, b, inner, aw, bw, outer)
		}
	}
}

func TestPropSqTighterThanMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 0; n < propTrials; n++ {
		a := propInterval(rng, 10)
		sq, mul := a.Sq(), a.Mul(a)
		if sq.Lo < mul.Lo || sq.Hi > mul.Hi {
			t.Fatalf("trial %d: Sq(%v) = %v escapes Mul = %v", n, a, sq, mul)
		}
		if sq.Lo < 0 {
			t.Fatalf("trial %d: Sq(%v) has negative lower bound %g", n, a, sq.Lo)
		}
	}
}

func TestPropMidSpanConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const tol = 1e-12
	for n := 0; n < propTrials; n++ {
		a := propInterval(rng, 10)
		if got := a.Mid() - a.Radius(); math.Abs(got-a.Lo) > tol*math.Max(1, math.Abs(a.Lo)) {
			t.Fatalf("trial %d: Mid-Radius = %g, want Lo = %g", n, got, a.Lo)
		}
		if got := a.Span(); math.Abs(got-2*a.Radius()) > tol*math.Max(1, got) {
			t.Fatalf("trial %d: Span = %g, want 2·Radius = %g", n, got, 2*a.Radius())
		}
		if !a.Contains(a.Mid()) {
			t.Fatalf("trial %d: midpoint of %v not contained", n, a)
		}
	}
}
