package interval

import "math"

// Vector is a dense interval-valued vector stored as two parallel
// float64 slices (minimum and maximum endpoints). The split layout
// mirrors the paper's M† = [M*, M^*] representation and lets scalar
// linear-algebra kernels operate on each side without conversion.
type Vector struct {
	Lo, Hi []float64
}

// NewVector allocates a zero interval vector of length n.
func NewVector(n int) Vector {
	return Vector{Lo: make([]float64, n), Hi: make([]float64, n)}
}

// VectorOf builds a Vector from a slice of Intervals.
func VectorOf(vals []Interval) Vector {
	v := NewVector(len(vals))
	for i, iv := range vals {
		v.Lo[i], v.Hi[i] = iv.Lo, iv.Hi
	}
	return v
}

// Len returns the vector length.
func (v Vector) Len() int { return len(v.Lo) }

// At returns element i as an Interval.
func (v Vector) At(i int) Interval { return Interval{Lo: v.Lo[i], Hi: v.Hi[i]} }

// Set stores iv at position i.
func (v Vector) Set(i int, iv Interval) { v.Lo[i], v.Hi[i] = iv.Lo, iv.Hi }

// Clone returns a deep copy of the vector.
func (v Vector) Clone() Vector {
	out := NewVector(v.Len())
	copy(out.Lo, v.Lo)
	copy(out.Hi, v.Hi)
	return out
}

// Dot returns the interval dot product v·w using interval multiplication
// and addition (the operation underlying Theorem 2 of the paper).
func (v Vector) Dot(w Vector) Interval {
	if v.Len() != w.Len() {
		panic("interval: Dot: length mismatch")
	}
	var acc Interval
	for i := range v.Lo {
		acc = acc.Add(v.At(i).Mul(w.At(i)))
	}
	return acc
}

// SelfDot returns v·v using the dependency-aware square, which is the
// exact range of Σ x_i² (Theorem 2: scalar only when v is scalar).
func (v Vector) SelfDot() Interval {
	var acc Interval
	for i := range v.Lo {
		acc = acc.Add(v.At(i).Sq())
	}
	return acc
}

// MaxSpan returns the largest element span in the vector.
func (v Vector) MaxSpan() float64 {
	max := 0.0
	for i := range v.Lo {
		if s := v.Hi[i] - v.Lo[i]; s > max {
			max = s
		}
	}
	return max
}

// AverageReplace repairs misordered elements in place: whenever
// Lo[i] > Hi[i], both endpoints are replaced by their mean
// (Supplementary Algorithm 2).
func (v Vector) AverageReplace() {
	for i := range v.Lo {
		if v.Lo[i] > v.Hi[i] {
			m := (v.Lo[i] + v.Hi[i]) / 2
			v.Lo[i], v.Hi[i] = m, m
		}
	}
}

// Mids returns the vector of midpoints.
func (v Vector) Mids() []float64 {
	out := make([]float64, v.Len())
	for i := range out {
		out[i] = (v.Lo[i] + v.Hi[i]) / 2
	}
	return out
}

// EuclideanDist returns the interval-valued Euclidean distance used by
// the paper's NN classifier (Section 6.1.2):
//
//	dist(a, b) = sqrt( Σ (a.Lo-b.Lo)² + (a.Hi-b.Hi)² )
func EuclideanDist(a, b Vector) float64 {
	if a.Len() != b.Len() {
		panic("interval: EuclideanDist: length mismatch")
	}
	var s float64
	for i := range a.Lo {
		dl := a.Lo[i] - b.Lo[i]
		dh := a.Hi[i] - b.Hi[i]
		s += dl*dl + dh*dh
	}
	return math.Sqrt(s)
}
