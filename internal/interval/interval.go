// Package interval implements the interval algebra of Sunaga that the
// paper adopts in Section 2.1 (Definitions 1-3): closed real intervals
// [lo, hi] with addition, subtraction, multiplication, span, and a small
// set of helpers (midpoint, containment, scaling) used throughout the
// interval-valued matrix decomposition code.
//
//ivmf:deterministic
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed interval [Lo, Hi] on the real line (Definition 1).
// An Interval with Lo == Hi is scalar. The zero value is the scalar 0.
type Interval struct {
	Lo, Hi float64
}

// New returns the interval [lo, hi]. It panics if lo > hi (after allowing
// for NaN propagation, which is preserved): malformed intervals are
// programming errors; use FromUnordered to build an interval from two
// unordered endpoints.
func New(lo, hi float64) Interval {
	if lo > hi {
		panic(fmt.Sprintf("interval: New(%g, %g): lo > hi", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// FromUnordered returns the interval spanned by two unordered endpoints.
func FromUnordered(a, b float64) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{Lo: a, Hi: b}
}

// Scalar returns the degenerate interval [v, v].
func Scalar(v float64) Interval { return Interval{Lo: v, Hi: v} }

// IsScalar reports whether the interval is degenerate (Lo == Hi).
func (a Interval) IsScalar() bool { return a.Lo == a.Hi }

// IsValid reports whether Lo <= Hi and both endpoints are finite.
func (a Interval) IsValid() bool {
	return a.Lo <= a.Hi && !math.IsInf(a.Lo, 0) && !math.IsInf(a.Hi, 0) &&
		!math.IsNaN(a.Lo) && !math.IsNaN(a.Hi)
}

// Span returns the width hi - lo of the interval (Definition 2).
func (a Interval) Span() float64 { return a.Hi - a.Lo }

// Mid returns the midpoint (lo + hi) / 2 of the interval.
func (a Interval) Mid() float64 { return (a.Lo + a.Hi) / 2 }

// Radius returns half the span.
func (a Interval) Radius() float64 { return (a.Hi - a.Lo) / 2 }

// Contains reports whether v lies inside the closed interval.
func (a Interval) Contains(v float64) bool { return a.Lo <= v && v <= a.Hi }

// ContainsInterval reports whether b is entirely inside a.
func (a Interval) ContainsInterval(b Interval) bool {
	return a.Lo <= b.Lo && b.Hi <= a.Hi
}

// Intersects reports whether a and b share at least one point.
func (a Interval) Intersects(b Interval) bool {
	return a.Lo <= b.Hi && b.Lo <= a.Hi
}

// Add returns a + b (Definition 3).
func (a Interval) Add(b Interval) Interval {
	return Interval{Lo: a.Lo + b.Lo, Hi: a.Hi + b.Hi}
}

// Sub returns a - b (Definition 3): [a.Lo - b.Hi, a.Hi - b.Lo].
func (a Interval) Sub(b Interval) Interval {
	return Interval{Lo: a.Lo - b.Hi, Hi: a.Hi - b.Lo}
}

// Mul returns a × b (Definition 3): the min and max over the four
// endpoint products.
func (a Interval) Mul(b Interval) Interval {
	p1 := a.Lo * b.Lo
	p2 := a.Lo * b.Hi
	p3 := a.Hi * b.Lo
	p4 := a.Hi * b.Hi
	return Interval{
		Lo: math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		Hi: math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}

// Scale returns the interval scaled by the scalar s. For s >= 0 the
// result is [s*lo, s*hi]; for s < 0 the endpoints swap.
func (a Interval) Scale(s float64) Interval {
	if s >= 0 {
		return Interval{Lo: s * a.Lo, Hi: s * a.Hi}
	}
	return Interval{Lo: s * a.Hi, Hi: s * a.Lo}
}

// Neg returns -a.
func (a Interval) Neg() Interval { return Interval{Lo: -a.Hi, Hi: -a.Lo} }

// Sq returns a × a. Unlike Mul(a, a), Sq uses the dependency-aware square:
// the result is the true range of x² for x in a, which is tighter when the
// interval straddles zero.
func (a Interval) Sq() Interval {
	lo2, hi2 := a.Lo*a.Lo, a.Hi*a.Hi
	switch {
	case a.Lo >= 0:
		return Interval{Lo: lo2, Hi: hi2}
	case a.Hi <= 0:
		return Interval{Lo: hi2, Hi: lo2}
	default:
		return Interval{Lo: 0, Hi: math.Max(lo2, hi2)}
	}
}

// Hull returns the smallest interval containing both a and b.
func (a Interval) Hull(b Interval) Interval {
	return Interval{Lo: math.Min(a.Lo, b.Lo), Hi: math.Max(a.Hi, b.Hi)}
}

// Clamp returns a with both endpoints clamped to [lo, hi].
func (a Interval) Clamp(lo, hi float64) Interval {
	cl := math.Min(math.Max(a.Lo, lo), hi)
	ch := math.Min(math.Max(a.Hi, lo), hi)
	return Interval{Lo: cl, Hi: ch}
}

// Equal reports exact endpoint equality.
func (a Interval) Equal(b Interval) bool { return a.Lo == b.Lo && a.Hi == b.Hi }

// ApproxEqual reports endpoint equality within tol.
func (a Interval) ApproxEqual(b Interval, tol float64) bool {
	return math.Abs(a.Lo-b.Lo) <= tol && math.Abs(a.Hi-b.Hi) <= tol
}

// String renders the interval as "[lo, hi]" or a bare scalar.
func (a Interval) String() string {
	if a.IsScalar() {
		return fmt.Sprintf("%g", a.Lo)
	}
	return fmt.Sprintf("[%g, %g]", a.Lo, a.Hi)
}
