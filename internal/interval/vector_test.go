package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(3)
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	v.Set(1, New(2, 4))
	if got := v.At(1); !got.Equal(New(2, 4)) {
		t.Fatalf("At(1) = %v", got)
	}
	c := v.Clone()
	c.Set(1, Scalar(0))
	if !v.At(1).Equal(New(2, 4)) {
		t.Fatal("Clone aliases original")
	}
}

func TestVectorOfAndMids(t *testing.T) {
	v := VectorOf([]Interval{New(0, 2), New(1, 3), Scalar(5)})
	mids := v.Mids()
	want := []float64{1, 2, 5}
	for i := range want {
		if mids[i] != want[i] {
			t.Fatalf("mids[%d] = %g, want %g", i, mids[i], want[i])
		}
	}
	if v.MaxSpan() != 2 {
		t.Fatalf("MaxSpan = %g", v.MaxSpan())
	}
}

func TestVectorDotScalarCase(t *testing.T) {
	// All-scalar vectors must reproduce the ordinary dot product.
	a := VectorOf([]Interval{Scalar(1), Scalar(2), Scalar(3)})
	b := VectorOf([]Interval{Scalar(4), Scalar(-5), Scalar(6)})
	got := a.Dot(b)
	if !got.IsScalar() || got.Lo != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestSelfDotTheorem2(t *testing.T) {
	// Theorem 2: x·x is scalar only if all entries are scalar.
	scalarV := VectorOf([]Interval{Scalar(1), Scalar(-2)})
	if !scalarV.SelfDot().IsScalar() {
		t.Error("scalar vector SelfDot not scalar")
	}
	iv := VectorOf([]Interval{New(1, 2), Scalar(3)})
	if iv.SelfDot().IsScalar() {
		t.Error("interval vector SelfDot claims scalar")
	}
	// SelfDot lower bound uses the true square range: [-1,1]² ∋ 0.
	straddle := VectorOf([]Interval{New(-1, 1)})
	if got := straddle.SelfDot(); got.Lo != 0 || got.Hi != 1 {
		t.Errorf("straddle SelfDot = %v, want [0,1]", got)
	}
}

func TestAverageReplace(t *testing.T) {
	v := NewVector(2)
	v.Lo[0], v.Hi[0] = 3, 1 // misordered
	v.Lo[1], v.Hi[1] = 1, 3 // fine
	v.AverageReplace()
	if v.Lo[0] != 2 || v.Hi[0] != 2 {
		t.Errorf("misordered not averaged: [%g, %g]", v.Lo[0], v.Hi[0])
	}
	if v.Lo[1] != 1 || v.Hi[1] != 3 {
		t.Errorf("well-formed entry disturbed: [%g, %g]", v.Lo[1], v.Hi[1])
	}
}

func TestEuclideanDist(t *testing.T) {
	a := VectorOf([]Interval{Scalar(0), Scalar(0)})
	b := VectorOf([]Interval{Scalar(3), Scalar(4)})
	// Scalar case: dist = sqrt(2)·usual distance because both endpoints move.
	got := EuclideanDist(a, b)
	want := math.Sqrt(2 * 25)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("dist = %g, want %g", got, want)
	}
	if EuclideanDist(a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
}

// Property: SelfDot of a vector always contains the squared norm of any
// member scalar vector.
func TestPropSelfDotInclusion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		v := NewVector(n)
		for i := 0; i < n; i++ {
			v.Set(i, randInterval(r))
		}
		sd := v.SelfDot()
		for trial := 0; trial < 10; trial++ {
			var norm2 float64
			for i := 0; i < n; i++ {
				x := v.Lo[i] + r.Float64()*(v.Hi[i]-v.Lo[i])
				norm2 += x * x
			}
			if norm2 < sd.Lo-1e-9 || norm2 > sd.Hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: EuclideanDist is a metric on the endpoint representation
// (symmetry and triangle inequality).
func TestPropEuclideanMetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		mk := func() Vector {
			v := NewVector(n)
			for i := 0; i < n; i++ {
				v.Set(i, randInterval(r))
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		if math.Abs(EuclideanDist(a, b)-EuclideanDist(b, a)) > 1e-12 {
			return false
		}
		return EuclideanDist(a, c) <= EuclideanDist(a, b)+EuclideanDist(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
