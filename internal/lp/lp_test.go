package lp

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

func TestDecomposeScalarInput(t *testing.T) {
	// Degenerate intervals: Δ = 0 → the LP boxes collapse to the center
	// eigenvectors and the decomposition should be nearly exact.
	rng := rand.New(rand.NewSource(1))
	s := matrix.New(10, 6)
	for i := range s.Data {
		s.Data[i] = rng.Float64()
	}
	m := imatrix.FromScalar(s)
	d, err := Decompose(m, Options{Target: core.TargetB})
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != core.LP {
		t.Fatalf("method = %v", d.Method)
	}
	acc := d.Evaluate(m)
	if acc.HMean < 0.98 {
		t.Fatalf("scalar LP H-mean = %.4f, want ≈1", acc.HMean)
	}
}

func TestDecomposeTinyIntervals(t *testing.T) {
	// The LP class is effective only for very small intervals (paper's
	// observation); verify reasonable accuracy there.
	rng := rand.New(rand.NewSource(2))
	m := imatrix.New(10, 6)
	for i := 0; i < 10; i++ {
		for j := 0; j < 6; j++ {
			v := 1 + rng.Float64()
			m.Set(i, j, interval.New(v, v+1e-6))
		}
	}
	d, err := Decompose(m, Options{Target: core.TargetB})
	if err != nil {
		t.Fatal(err)
	}
	if acc := d.Evaluate(m); acc.HMean < 0.9 {
		t.Fatalf("tiny-interval LP H-mean = %.4f", acc.HMean)
	}
}

func TestDecomposeWideIntervalsCollapses(t *testing.T) {
	// With the paper's default interval intensity the eigenvector boxes
	// blow up and accuracy collapses — the headline competitor result of
	// Figure 6(a) ("the LP class of competitors return ≈0 H-mean").
	rng := rand.New(rand.NewSource(3))
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 15, 10
	m := dataset.MustGenerateUniform(cfg, rng)
	d, err := Decompose(m, Options{Target: core.TargetB, Rank: 5})
	if err != nil {
		t.Fatal(err)
	}
	isvd, err := core.Decompose(m, core.ISVD4, core.Options{Target: core.TargetB, Rank: 5})
	if err != nil {
		t.Fatal(err)
	}
	lpH := d.Evaluate(m).HMean
	isvdH := isvd.Evaluate(m).HMean
	if lpH > 0.5*isvdH {
		t.Fatalf("LP H-mean %.4f not clearly below ISVD4 %.4f", lpH, isvdH)
	}
}

func TestMaxDimGuard(t *testing.T) {
	m := imatrix.New(4, 200)
	if _, err := Decompose(m, Options{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// Guard disabled.
	m2 := imatrix.FromScalar(matrix.Identity(6))
	if _, err := Decompose(m2, Options{MaxDim: -1, Rank: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestTargetsSupported(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 8, 6
	m := dataset.MustGenerateUniform(cfg, rng)
	for _, target := range core.Targets() {
		d, err := Decompose(m, Options{Target: target, Rank: 3})
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if !d.U.IsWellFormed() || !d.V.IsWellFormed() || !d.Sigma.IsWellFormed() {
			t.Fatalf("target %v: misordered output", target)
		}
		rec := d.Reconstruct()
		if rec.Rows() != 8 || rec.Cols() != 6 {
			t.Fatalf("target %v: bad reconstruction shape", target)
		}
	}
}

func TestEigenvectorBoxContainsCenter(t *testing.T) {
	// The LP feasible region always contains the center eigenvector, so
	// the box must contain it.
	rng := rand.New(rand.NewSource(5))
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 10, 7
	cfg.Intensity = 0.2
	m := dataset.MustGenerateUniform(cfg, rng)
	d, err := Decompose(m, Options{Target: core.TargetA, Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	// TargetA V must be an interval box with Lo <= Hi (already checked by
	// IsWellFormed); additionally spans should grow with intensity.
	wide := dataset.MustGenerateUniform(dataset.SyntheticConfig{
		Rows: 10, Cols: 7, IntervalDensity: 1, Intensity: 1.0,
	}, rand.New(rand.NewSource(5)))
	dw, err := Decompose(wide, Options{Target: core.TargetA, Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dw.V.TotalSpan() < d.V.TotalSpan() {
		t.Fatalf("wider input gave narrower eigenvector boxes: %g vs %g",
			dw.V.TotalSpan(), d.V.TotalSpan())
	}
}

// TestDecomposeBitwiseAcrossWorkerCounts pins that sharding the
// per-rank-dimension simplex solves onto the worker pool does not
// perturb a single bit: each rank dimension's bounds are computed
// independently and written to disjoint slots.
func TestDecomposeBitwiseAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 24, 12
	cfg.Intensity = 0.01
	m := dataset.MustGenerateUniform(cfg, rng)
	opts := Options{Rank: 6, Target: core.TargetB}

	decompose := func(workers int) *core.Decomposition {
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(0)
		d, err := Decompose(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	serial := decompose(1)
	for _, w := range []int{3, 8} {
		par := decompose(w)
		for _, pair := range []struct {
			name      string
			want, got *matrix.Dense
		}{
			{"U.Lo", serial.U.Lo, par.U.Lo},
			{"U.Hi", serial.U.Hi, par.U.Hi},
			{"V.Lo", serial.V.Lo, par.V.Lo},
			{"V.Hi", serial.V.Hi, par.V.Hi},
			{"Sigma.Lo", serial.Sigma.Lo, par.Sigma.Lo},
			{"Sigma.Hi", serial.Sigma.Hi, par.Sigma.Hi},
		} {
			for i := range pair.want.Data {
				if pair.want.Data[i] != pair.got.Data[i] {
					t.Fatalf("workers=%d: %s element %d differs: %v vs %v",
						w, pair.name, i, pair.got.Data[i], pair.want.Data[i])
				}
			}
		}
	}
}
