// Package lp implements the paper's "LPx" competitor class
// (Section 6.2): interval-valued SVD built on the linear-programming /
// perturbation-bound interval eigenproblem of Deif [33] and
// Seif et al. [35], instead of the ILSA alignment scheme.
//
// Pipeline: the interval Gram matrix A† = M†ᵀ×M† is split into a center
// matrix A_c and radius Δ; the eigenvalues of A_c are widened to
// intervals by Deif's spectral-radius bound λ_i ∈ [λ_i(A_c) ± ρ(Δ)],
// and each eigenvector component is bounded by a pair of linear programs
// over the residual polytope |(A_c − λ_c I)·v| ≤ Δ·1, ‖v‖_∞ ≤ 1 (the
// Seif et al. formulation). The resulting interval factors are assembled
// into a decomposition with the same target semantics as ISVD.
//
// As the paper (and the original authors) observe, these bounds are only
// informative when intervals are very small; for realistic spans the
// eigenvector boxes blow up to ≈[−1, 1] and the decomposition accuracy
// collapses to ≈0 — exactly the behaviour the experiments show. The LP
// count is 2·n per eigenpair, so runtime is also orders of magnitude
// above ISVD.
package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/simplex"
)

// Options configures the LP competitor.
type Options struct {
	// Rank is the target rank (clamped like core.Options.Rank).
	Rank int
	// Target selects the output semantics (a, b, or c).
	Target core.Target
	// MaxDim guards against accidental multi-hour runs: Decompose
	// returns an error when the Gram dimension min(n, m) exceeds it.
	// Default 128. Set negative to disable the guard.
	MaxDim int
}

// ErrTooLarge is returned when the Gram dimension exceeds Options.MaxDim.
var ErrTooLarge = errors.New("lp: problem exceeds MaxDim (the LP competitor is O(rank·dim) simplex solves)")

// Decompose runs the LP-competitor decomposition of the interval matrix m.
func Decompose(m *imatrix.IMatrix, opts Options) (*core.Decomposition, error) {
	dim := m.Cols()
	maxRank := m.Rows()
	if dim < maxRank {
		maxRank = dim
	}
	if opts.Rank <= 0 || opts.Rank > maxRank {
		opts.Rank = maxRank
	}
	if opts.MaxDim == 0 {
		opts.MaxDim = 128
	}
	if opts.MaxDim > 0 && dim > opts.MaxDim {
		return nil, fmt.Errorf("%w: dim %d > %d", ErrTooLarge, dim, opts.MaxDim)
	}

	// Interval Gram matrix, center and radius (fused endpoint kernel).
	a := imatrix.GramEndpoints(m)
	ac := a.Mid()
	delta := matrix.Sub(a.Hi, a.Lo).Scale(0.5)

	vals, vecs, err := eig.SymEig(ac)
	if err != nil {
		return nil, fmt.Errorf("lp: center eigendecomposition: %w", err)
	}
	rho, err := spectralRadius(delta)
	if err != nil {
		return nil, fmt.Errorf("lp: radius bound: %w", err)
	}

	r := opts.Rank
	vLo := matrix.New(dim, r)
	vHi := matrix.New(dim, r)
	sLo := make([]float64, r)
	sHi := make([]float64, r)
	// Row sums of Δ bound (Δ·|v|)_i under ‖v‖_∞ ≤ 1.
	rowBound := make([]float64, dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			rowBound[i] += delta.At(i, j)
		}
	}
	// The per-rank-dimension eigenpair bounds are independent — each one
	// is 2·dim simplex solves against its own constraint copy — so they
	// shard onto the worker pool with grain 1 (every iteration is far
	// heavier than scheduling cost). Each iteration writes only its own
	// column/slot, so results are deterministic for any worker count.
	parallel.For(r, 1, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			// Deif eigenvalue bound, clamped non-negative for a Gram matrix.
			lamLo := math.Max(vals[k]-rho, 0)
			lamHi := math.Max(vals[k]+rho, 0)
			sLo[k] = math.Sqrt(lamLo)
			sHi[k] = math.Sqrt(lamHi)

			lo, hi := eigenvectorBox(ac, delta, rowBound, vals[k], vecs.Col(k))
			vLo.SetCol(k, lo)
			vHi.SetCol(k, hi)
		}
	})

	// Recover U per side from the SVD identity (as in ISVD2).
	uLo := recoverU(m.Lo, vLo, sLo)
	uHi := recoverU(m.Hi, vHi, sHi)

	d := core.AssembleDecomposition(core.LP, opts.Target,
		imatrix.FromEndpoints(uLo, uHi), imatrix.FromEndpoints(vLo, vHi), sLo, sHi)
	return d, nil
}

// spectralRadius returns ρ(Δ) for the symmetric non-negative radius
// matrix Δ.
func spectralRadius(delta *matrix.Dense) (float64, error) {
	vals, _, err := eig.SymEig(delta)
	if err != nil {
		return 0, err
	}
	rho := 0.0
	for _, v := range vals {
		if a := math.Abs(v); a > rho {
			rho = a
		}
	}
	return rho, nil
}

// eigenvectorBox bounds each component of the interval eigenvector
// belonging to center eigenpair (lambda, vc) by two LPs per component:
//
//	max / min v_j  s.t.  |(A_c − λI)·v| ≤ Δ·1,  v_p = 1,  |v| ≤ 1,
//
// where p is the largest-magnitude component of vc (the normalization of
// Seif et al.). Components whose LP fails fall back to [−1, 1].
func eigenvectorBox(ac, delta *matrix.Dense, rowBound []float64, lambda float64, vc []float64) (lo, hi []float64) {
	n := len(vc)
	// Normalize vc to ‖·‖_∞ = 1 and find the pinned component.
	p, mx := 0, 0.0
	for i, v := range vc {
		if a := math.Abs(v); a > mx {
			mx, p = a, i
		}
	}
	sign := 1.0
	if vc[p] < 0 {
		sign = -1
	}

	// Variables: v = v⁺ − v⁻, 2n non-negative variables.
	// Constraints (rows):
	//   ±(A_c − λI)(v⁺−v⁻) ≤ Δ·1       (2n rows)
	//   v⁺_j + v⁻_j ≤ 1                 (n rows: ‖v‖_∞ ≤ 1)
	//   v_p ≤ s  and  −v_p ≤ −s         (pin v_p = sign)
	rows := 3*n + 2
	cons := make([][]float64, 0, rows)
	bounds := make([]float64, 0, rows)
	res := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := ac.At(i, j)
			if i == j {
				v -= lambda
			}
			res.Set(i, j, v)
		}
	}
	for i := 0; i < n; i++ {
		pos := make([]float64, 2*n)
		neg := make([]float64, 2*n)
		for j := 0; j < n; j++ {
			pos[j] = res.At(i, j)
			pos[n+j] = -res.At(i, j)
			neg[j] = -res.At(i, j)
			neg[n+j] = res.At(i, j)
		}
		cons = append(cons, pos, neg)
		bounds = append(bounds, rowBound[i], rowBound[i])
	}
	for j := 0; j < n; j++ {
		row := make([]float64, 2*n)
		row[j] = 1
		row[n+j] = 1
		cons = append(cons, row)
		bounds = append(bounds, 1)
	}
	pin := make([]float64, 2*n)
	pin[p] = 1
	pin[n+p] = -1
	pinNeg := make([]float64, 2*n)
	pinNeg[p] = -1
	pinNeg[n+p] = 1
	cons = append(cons, pin, pinNeg)
	bounds = append(bounds, sign, -sign)

	lo = make([]float64, n)
	hi = make([]float64, n)
	for j := 0; j < n; j++ {
		if j == p {
			lo[j], hi[j] = sign, sign
			continue
		}
		obj := make([]float64, 2*n)
		obj[j] = 1
		obj[n+j] = -1
		if x, _, err := simplex.Solve(simplex.Problem{C: obj, A: cons, B: bounds}); err == nil {
			hi[j] = x[j] - x[n+j]
		} else {
			hi[j] = 1
		}
		obj[j] = -1
		obj[n+j] = 1
		if x, _, err := simplex.Solve(simplex.Problem{C: obj, A: cons, B: bounds}); err == nil {
			lo[j] = x[j] - x[n+j]
		} else {
			lo[j] = -1
		}
		if lo[j] > hi[j] {
			lo[j], hi[j] = hi[j], lo[j]
		}
	}
	// The LP normalization pins ‖v‖_∞ = 1, but the decomposition pipeline
	// (Σ rescaling, U recovery) assumes the SVD convention of unit-L2
	// eigenvectors. Rescale the box so its center matches the unit-L2
	// eigenvector vc: since vc is unit-L2, the ∞-normalized copy is
	// vc/|vc[p]| and the scale back is |vc[p]| (> 0).
	scale := math.Abs(vc[p])
	for j := 0; j < n; j++ {
		lo[j] *= scale
		hi[j] *= scale
	}
	return lo, hi
}

// recoverU computes U = M·V·diag(1/s) for one endpoint side.
func recoverU(m, v *matrix.Dense, s []float64) *matrix.Dense {
	mv := matrix.Mul(m, v)
	for j, sv := range s {
		inv := 0.0
		if sv != 0 {
			inv = 1 / sv
		}
		for i := 0; i < mv.Rows; i++ {
			mv.Set(i, j, mv.At(i, j)*inv)
		}
	}
	return mv
}
