package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/imatrix"
	"repro/internal/ipmf"
	"repro/internal/metrics"
)

func init() {
	register("fig9a", "Figure 9(a): reconstruction accuracy on the Ciao-like user-category matrix", runFig9a)
	register("fig9b", "Figure 9(b): reconstruction accuracy on the Epinions-like user-category matrix", runFig9b)
	register("fig9c", "Figure 9(c): reconstruction accuracy on the MovieLens-like user-genre matrix", runFig9c)
	register("fig10", "Figure 10: collaborative filtering RMSE (PMF vs I-PMF vs AI-PMF) on MovieLens-like data", runFig10)
}

// socialTrials keeps the heavyweight social-matrix experiments bounded:
// the paper averages over one fixed real dataset, so a handful of
// generator draws is the equivalent.
func socialTrials(cfg Config) int {
	if cfg.Trials < 3 {
		return cfg.Trials
	}
	return 3
}

// ratingsConfig scales a published dataset shape and applies the density
// override, if any.
func ratingsConfig(cfg Config, base dataset.RatingsConfig) dataset.RatingsConfig {
	rc := base.Scaled(cfg.Scale)
	if cfg.Density > 0 {
		rc = rc.WithDensity(cfg.Density)
	}
	return rc
}

func runFig9(cfg Config, name string, base dataset.RatingsConfig) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rc := ratingsConfig(cfg, base)
	gen := func(rng *rand.Rand) *imatrix.IMatrix {
		data, err := dataset.GenerateRatings(rc, rng)
		if err != nil {
			panic(err)
		}
		return data.UserGenreIntervals()
	}
	sub := cfg
	sub.Trials = socialTrials(cfg)
	tbl, vals, err := hMeanOrderTable(gen, rc.Genres, sub, rng)
	if err != nil {
		return nil, err
	}
	sample, _ := dataset.GenerateRatings(rc, rand.New(rand.NewSource(cfg.Seed)))
	st := dataset.Stats(sample.UserGenreIntervals())
	text := fmt.Sprintf("%s-like user-genre matrix: %d users x %d genres, matrix density %.2f, interval density %.2f, mean intensity %.2f\n%s",
		name, rc.Users, rc.Genres, st.MatrixDensity, st.IntervalDensity, st.MeanIntensity, tbl)
	return &Result{Text: text, Values: vals}, nil
}

func runFig9a(cfg Config) (*Result, error) { return runFig9(cfg, "Ciao", dataset.CiaoLike()) }
func runFig9b(cfg Config) (*Result, error) { return runFig9(cfg, "Epinions", dataset.EpinionsLike()) }
func runFig9c(cfg Config) (*Result, error) {
	return runFig9(cfg, "MovieLens", dataset.MovieLensLike())
}

// clampRating restricts predictions to the 1..5 star scale.
func clampRating(v float64) float64 {
	if v < 1 {
		return 1
	}
	if v > 5 {
		return 5
	}
	return v
}

func runFig10(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rc := ratingsConfig(cfg, dataset.MovieLensLike())
	data, err := dataset.GenerateRatings(rc, rng)
	if err != nil {
		return nil, err
	}
	train, test := data.SplitRatings(0.8, rng)
	// Training matrices contain only the training ratings, held in CSR
	// form: the user-item matrix is ~1-7% dense, so sparse storage and
	// the CSR training paths carry the workload (results are bitwise
	// identical to the former dense path).
	trainData := *data
	trainData.Ratings = train
	scalar := trainData.UserItemCSR()
	intervals := trainData.CFIntervalsCSR()

	maxRank := rc.Items
	if rc.Users < maxRank {
		maxRank = rc.Users
	}
	var ranks []int
	for _, r := range []int{10, 40, 80, 150, 250} {
		if r <= maxRank {
			ranks = append(ranks, r)
		}
	}
	if cfg.Trials <= 10 && len(ranks) > 3 {
		ranks = ranks[:3]
	}

	pmfCfg := ipmf.Config{Epochs: 40, LearningRate: 0.01}
	evalScalar := func(m *ipmf.Model) float64 {
		pred := make([]float64, len(test))
		truth := make([]float64, len(test))
		for i, r := range test {
			pred[i] = clampRating(m.Predict(r.User, r.Item))
			truth[i] = r.Value
		}
		return metrics.RMSE(pred, truth)
	}
	evalInterval := func(m *ipmf.IntervalModel) float64 {
		pred := make([]float64, len(test))
		truth := make([]float64, len(test))
		for i, r := range test {
			pred[i] = clampRating(m.Predict(r.User, r.Item))
			truth[i] = r.Value
		}
		return metrics.RMSE(pred, truth)
	}

	tbl := &table{header: []string{"rank", "PMF", "I-PMF", "AI-PMF"}}
	vals := map[string]float64{}
	for _, r := range ranks {
		c := pmfCfg
		c.Rank = r
		pm, err := ipmf.TrainPMFCSR(scalar, c, rand.New(rand.NewSource(cfg.Seed+int64(r))))
		if err != nil {
			return nil, err
		}
		im, err := ipmf.TrainIPMFCSR(intervals, c, rand.New(rand.NewSource(cfg.Seed+int64(r))))
		if err != nil {
			return nil, err
		}
		am, err := ipmf.TrainAIPMFCSR(intervals, c, rand.New(rand.NewSource(cfg.Seed+int64(r))))
		if err != nil {
			return nil, err
		}
		rp, ri, ra := evalScalar(pm), evalInterval(im), evalInterval(am)
		tbl.addRow(fmt.Sprintf("%d", r), f3(rp), f3(ri), f3(ra))
		vals[fmt.Sprintf("PMF@%d", r)] = rp
		vals[fmt.Sprintf("I-PMF@%d", r)] = ri
		vals[fmt.Sprintf("AI-PMF@%d", r)] = ra
	}
	var b strings.Builder
	fmt.Fprintf(&b, "MovieLens-like CF: %d users x %d items, %d train / %d test ratings (RMSE, lower is better)\n",
		rc.Users, rc.Items, len(train), len(test))
	b.WriteString(tbl.String())
	// Headline comparison: AI-PMF vs I-PMF across ranks.
	var iSum, aSum float64
	for _, r := range ranks {
		iSum += vals[fmt.Sprintf("I-PMF@%d", r)]
		aSum += vals[fmt.Sprintf("AI-PMF@%d", r)]
	}
	fmt.Fprintf(&b, "mean I-PMF RMSE = %.4f, mean AI-PMF RMSE = %.4f (AI-PMF should not be worse)\n",
		iSum/float64(len(ranks)), aSum/float64(len(ranks)))
	if math.IsNaN(iSum) || math.IsNaN(aSum) {
		return nil, fmt.Errorf("fig10: NaN RMSE")
	}
	return &Result{Text: b.String(), Values: vals}, nil
}
