package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/nmf"
)

func init() {
	register("fig8a", "Figure 8(a): ORL-like face reconstruction RMSE vs rank", runFig8a)
	register("fig8b", "Figure 8(b): ORL-like 1-NN classification F1 vs rank", runFig8b)
	register("fig8c", "Figure 8(c): ORL-like K-means clustering NMI vs rank", runFig8c)
	register("table3", "Table 3: clustering accuracy and execution time (scalar vs interval vs ISVD2-b)", runTable3)
}

// faceConfig scales the ORL workload: full scale is 40 subjects at 32×32;
// quick runs shrink both the subject count and the resolution.
func faceConfig(cfg Config) dataset.FaceConfig {
	fc := dataset.DefaultFaces()
	if cfg.Scale < 1 {
		fc.Subjects = max(8, int(float64(fc.Subjects)*cfg.Scale))
		fc.Res = 16
	}
	return fc
}

// nmfIterations bounds the multiplicative-update count on the large face
// matrices.
const nmfIterations = 30

// svdFeatures extracts the paper's classification features for SVD-based
// schemes: the interval [U·Σ*, U·Σ^*] (scalar for degenerate cores).
func svdFeatures(d *core.Decomposition) *imatrix.IMatrix {
	u := d.U.Mid()
	out := imatrix.FromEndpoints(matrix.Mul(u, d.Sigma.Lo), matrix.Mul(u, d.Sigma.Hi))
	out.AverageReplace()
	return out
}

// faceMethod is one curve of Figure 8: a name plus feature/reconstruction
// extractors at a given rank.
type faceMethod struct {
	name string
	// run returns (features, reconstruction midpoint); either may be nil
	// if unused by the experiment.
	run func(fd *dataset.FaceData, rank int, rng *rand.Rand) (*imatrix.IMatrix, *matrix.Dense, error)
}

func isvdFaceMethod(m core.Method, t core.Target, solver eig.Solver) faceMethod {
	return faceMethod{
		name: methodTarget{m, t}.label(),
		run: func(fd *dataset.FaceData, rank int, _ *rand.Rand) (*imatrix.IMatrix, *matrix.Dense, error) {
			d, err := core.Decompose(fd.Interval, m, core.Options{Rank: rank, Target: t, Solver: solver})
			if err != nil {
				return nil, nil, err
			}
			return svdFeatures(d), d.Reconstruct().Mid(), nil
		},
	}
}

func nmfFaceMethod() faceMethod {
	return faceMethod{
		name: "NMF",
		run: func(fd *dataset.FaceData, rank int, rng *rand.Rand) (*imatrix.IMatrix, *matrix.Dense, error) {
			model, err := nmf.Train(fd.Interval.Mid(), nmf.Config{Rank: rank, Iterations: nmfIterations}, rng)
			if err != nil {
				return nil, nil, err
			}
			return imatrix.FromScalar(model.U), model.Reconstruct(), nil
		},
	}
}

func inmfFaceMethod() faceMethod {
	return faceMethod{
		name: "I-NMF",
		run: func(fd *dataset.FaceData, rank int, rng *rand.Rand) (*imatrix.IMatrix, *matrix.Dense, error) {
			model, err := nmf.TrainInterval(fd.Interval, nmf.Config{Rank: rank, Iterations: nmfIterations}, rng)
			if err != nil {
				return nil, nil, err
			}
			return imatrix.FromScalar(model.U), model.Reconstruct().Mid(), nil
		},
	}
}

func runFig8a(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	fc := faceConfig(cfg)
	fd, err := dataset.GenerateFaces(fc, rng)
	if err != nil {
		return nil, err
	}
	maxRank := min(fd.Scalar.Rows, fd.Scalar.Cols)
	var ranks []int
	for _, r := range []int{10, 100, 200} {
		if r <= maxRank {
			ranks = append(ranks, r)
		} else if len(ranks) == 0 || ranks[len(ranks)-1] != maxRank {
			ranks = append(ranks, maxRank)
		}
	}
	methods := []faceMethod{
		isvdFaceMethod(core.ISVD0, core.TargetC, cfg.Solver),
		isvdFaceMethod(core.ISVD1, core.TargetB, cfg.Solver),
		isvdFaceMethod(core.ISVD4, core.TargetB, cfg.Solver),
		isvdFaceMethod(core.ISVD4, core.TargetC, cfg.Solver),
		nmfFaceMethod(),
		inmfFaceMethod(),
	}
	tbl := &table{header: append([]string{"method"}, ranksHeader(ranks)...)}
	vals := map[string]float64{}
	for _, fm := range methods {
		cells := []string{fm.name}
		for _, r := range ranks {
			_, recon, err := fm.run(fd, r, rng)
			if err != nil {
				return nil, fmt.Errorf("%s@%d: %w", fm.name, r, err)
			}
			rmse := metrics.MatrixRMSE(recon.Data, fd.Scalar.Data)
			cells = append(cells, f3(rmse))
			vals[fmt.Sprintf("%s@%d", fm.name, r)] = rmse
		}
		tbl.addRow(cells...)
	}
	text := fmt.Sprintf("%d subjects x %d images at %dx%d (RMSE, lower is better)\n%s",
		fc.Subjects, fc.ImagesPerSubject, fc.Res, fc.Res, tbl)
	return &Result{Text: text, Values: vals}, nil
}

func ranksHeader(ranks []int) []string {
	out := make([]string, len(ranks))
	for i, r := range ranks {
		out[i] = fmt.Sprintf("r=%d", r)
	}
	return out
}

func classificationRanks(cfg Config, maxRank int) []int {
	candidates := []int{5, 10, 20, 40}
	if cfg.Scale >= 1 {
		candidates = []int{10, 30, 60, 100, 150, 200}
	}
	var ranks []int
	for _, r := range candidates {
		if r <= maxRank {
			ranks = append(ranks, r)
		}
	}
	if len(ranks) == 0 {
		ranks = []int{maxRank}
	}
	return ranks
}

func classificationMethods(solver eig.Solver) []faceMethod {
	return []faceMethod{
		isvdFaceMethod(core.ISVD0, core.TargetC, solver),
		isvdFaceMethod(core.ISVD1, core.TargetB, solver),
		isvdFaceMethod(core.ISVD2, core.TargetB, solver),
		isvdFaceMethod(core.ISVD4, core.TargetB, solver),
		nmfFaceMethod(),
		inmfFaceMethod(),
	}
}

// splitFeatures extracts the train/test sub-matrices of an interval
// feature matrix by row index.
func splitFeatures(feat *imatrix.IMatrix, idx []int) *imatrix.IMatrix {
	out := imatrix.New(len(idx), feat.Cols())
	for pos, i := range idx {
		copy(out.Lo.RowView(pos), feat.Lo.RowView(i))
		copy(out.Hi.RowView(pos), feat.Hi.RowView(i))
	}
	return out
}

func pickLabels(labels []int, idx []int) []int {
	out := make([]int, len(idx))
	for pos, i := range idx {
		out[pos] = labels[i]
	}
	return out
}

func runFig8b(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	fc := faceConfig(cfg)
	fd, err := dataset.GenerateFaces(fc, rng)
	if err != nil {
		return nil, err
	}
	ranks := classificationRanks(cfg, min(fd.Scalar.Rows, fd.Scalar.Cols))
	trainIdx, testIdx := dataset.TrainTestSplit(fd.Labels, 0.5, rng)
	trainLabels := pickLabels(fd.Labels, trainIdx)
	testLabels := pickLabels(fd.Labels, testIdx)

	tbl := &table{header: append([]string{"method"}, ranksHeader(ranks)...)}
	vals := map[string]float64{}
	for _, fm := range classificationMethods(cfg.Solver) {
		cells := []string{fm.name}
		for _, r := range ranks {
			feat, _, err := fm.run(fd, r, rng)
			if err != nil {
				return nil, fmt.Errorf("%s@%d: %w", fm.name, r, err)
			}
			pred, err := cluster.Classify1NN(splitFeatures(feat, trainIdx), trainLabels, splitFeatures(feat, testIdx))
			if err != nil {
				return nil, err
			}
			f1 := metrics.F1Macro(pred, testLabels)
			cells = append(cells, f3(f1))
			vals[fmt.Sprintf("%s@%d", fm.name, r)] = f1
		}
		tbl.addRow(cells...)
	}
	text := fmt.Sprintf("1-NN classification F1 (higher is better), %d train / %d test rows\n%s",
		len(trainIdx), len(testIdx), tbl)
	return &Result{Text: text, Values: vals}, nil
}

func runFig8c(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	fc := faceConfig(cfg)
	fd, err := dataset.GenerateFaces(fc, rng)
	if err != nil {
		return nil, err
	}
	ranks := classificationRanks(cfg, min(fd.Scalar.Rows, fd.Scalar.Cols))
	tbl := &table{header: append([]string{"method"}, ranksHeader(ranks)...)}
	vals := map[string]float64{}
	for _, fm := range classificationMethods(cfg.Solver) {
		cells := []string{fm.name}
		for _, r := range ranks {
			feat, _, err := fm.run(fd, r, rng)
			if err != nil {
				return nil, fmt.Errorf("%s@%d: %w", fm.name, r, err)
			}
			res, err := cluster.KMeans(feat, fc.Subjects, 50, rand.New(rand.NewSource(cfg.Seed)))
			if err != nil {
				return nil, err
			}
			nmi := metrics.NMI(res.Assignments, fd.Labels)
			cells = append(cells, f3(nmi))
			vals[fmt.Sprintf("%s@%d", fm.name, r)] = nmi
		}
		tbl.addRow(cells...)
	}
	text := fmt.Sprintf("K-means (K=%d) clustering NMI (higher is better)\n%s", fc.Subjects, tbl)
	return &Result{Text: text, Values: vals}, nil
}

func runTable3(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	resolutions := []int{16, 32}
	if cfg.Scale >= 1 {
		resolutions = []int{32, 64}
	}
	tbl := &table{header: []string{"res", "variant", "NMI", "time(s)"}}
	vals := map[string]float64{}
	for _, res := range resolutions {
		fc := faceConfig(cfg)
		fc.Res = res
		fd, err := dataset.GenerateFaces(fc, rng)
		if err != nil {
			return nil, err
		}
		k := fc.Subjects
		seed := cfg.Seed + int64(res)

		runKMeans := func(feat *imatrix.IMatrix) (float64, time.Duration, error) {
			start := time.Now()
			r, err := cluster.KMeans(feat, k, 50, rand.New(rand.NewSource(seed)))
			if err != nil {
				return 0, 0, err
			}
			return metrics.NMI(r.Assignments, fd.Labels), time.Since(start), nil
		}

		// Scalar pixel vectors.
		nmiS, tS, err := runKMeans(imatrix.FromScalar(fd.Scalar))
		if err != nil {
			return nil, err
		}
		// Interval pixel vectors.
		nmiI, tI, err := runKMeans(fd.Interval)
		if err != nil {
			return nil, err
		}
		// ISVD2-b rank-20 features.
		start := time.Now()
		d, err := core.Decompose(fd.Interval, core.ISVD2, core.Options{Rank: min(20, fd.Scalar.Rows), Target: core.TargetB, Solver: cfg.Solver})
		if err != nil {
			return nil, err
		}
		decompTime := time.Since(start)
		nmiD, tD, err := runKMeans(svdFeatures(d))
		if err != nil {
			return nil, err
		}

		resLabel := fmt.Sprintf("%dx%d", res, res)
		tbl.addRow(resLabel, "scalar vectors", f3(nmiS), secs(tS))
		tbl.addRow(resLabel, "interval vectors", f3(nmiI), secs(tI))
		tbl.addRow(resLabel, "ISVD2-b (r=20)", f3(nmiD),
			fmt.Sprintf("%s (%s+%s)", secs(decompTime+tD), secs(decompTime), secs(tD)))
		vals[resLabel+"/scalar"] = nmiS
		vals[resLabel+"/interval"] = nmiI
		vals[resLabel+"/isvd2b"] = nmiD
		vals[resLabel+"/scalarTime"] = tS.Seconds()
		vals[resLabel+"/intervalTime"] = tI.Seconds()
		vals[resLabel+"/isvd2bTime"] = (decompTime + tD).Seconds()
	}
	return &Result{Text: tbl.String(), Values: vals}, nil
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.2f", math.Max(d.Seconds(), 0))
}
