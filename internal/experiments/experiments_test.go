package experiments

import (
	"strings"
	"testing"
)

// tiny returns the smallest sensible configuration for test speed.
func tiny() Config { return Config{Seed: 1, Trials: 2, Scale: 0.1} }

func TestIDsAndDescribe(t *testing.T) {
	ids := IDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
		if Describe(id) == "" {
			t.Fatalf("no description for %q", id)
		}
	}
	for _, want := range []string{"fig3", "fig5", "fig6a", "fig6b", "table2a", "table2b",
		"table2c", "table2d", "table2e", "fig7", "fig8a", "fig8b", "fig8c", "table3",
		"fig9a", "fig9b", "fig9c", "fig10"} {
		if !seen[want] {
			t.Errorf("experiment %q missing", want)
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("unknown id accepted")
	}
	if Describe("nope") != "" {
		t.Fatal("Describe of unknown id non-empty")
	}
}

func TestFig3AlignmentImproves(t *testing.T) {
	res, err := Run("fig3", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["meanAfter"] < res.Values["meanBefore"] {
		t.Fatalf("alignment did not improve: %v", res.Values)
	}
	if !strings.Contains(res.Text, "before alignment") {
		t.Fatal("text missing series")
	}
}

func TestFig5RecomputeImproves(t *testing.T) {
	res, err := Run("fig5", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["meanVAfter"] < res.Values["meanVBefore"] {
		t.Fatalf("recompute did not improve V alignment: %v", res.Values)
	}
	if res.Values["meanU"] < res.Values["meanVBefore"] {
		t.Fatalf("U-side cosines should exceed pre-recompute V: %v", res.Values)
	}
}

func TestFig6aShape(t *testing.T) {
	res, err := Run("fig6a", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: ISVD4-b is the best method overall; option-b beats the
	// naive baseline on the default (heavy interval) configuration.
	best := res.Values["ISVD4-b"]
	if best < res.Values["ISVD0-c"] {
		t.Errorf("ISVD4-b (%.3f) below ISVD0 (%.3f)", best, res.Values["ISVD0-c"])
	}
	if best < res.Values["ISVD1-a"] {
		t.Errorf("ISVD4-b (%.3f) below ISVD1-a (%.3f)", best, res.Values["ISVD1-a"])
	}
	for k, v := range res.Values {
		if v < 0 || v > 1 {
			t.Errorf("%s H-mean %g out of range", k, v)
		}
	}
}

func TestFig6bPhases(t *testing.T) {
	res, err := Run("fig6b", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The Gram-based variants must cost more than the naive baseline.
	if res.Values["ISVD4"] <= res.Values["ISVD0"] {
		t.Errorf("ISVD4 total %.3fms not above ISVD0 %.3fms", res.Values["ISVD4"], res.Values["ISVD0"])
	}
}

func TestTable2Trends(t *testing.T) {
	res, err := Run("table2a", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// ISVD0 degrades as interval density grows (Table 2a's key trend).
	if res.Values["100%/ISVD0"] > res.Values["10%/ISVD0"] {
		t.Errorf("ISVD0 should degrade with interval density: %v vs %v",
			res.Values["100%/ISVD0"], res.Values["10%/ISVD0"])
	}
	// At full density the aligned ISVD4-b must beat ISVD0.
	if res.Values["100%/ISVD4-b"] < res.Values["100%/ISVD0"] {
		t.Errorf("ISVD4-b below ISVD0 at 100%% density")
	}
}

func TestTable2eRankMonotone(t *testing.T) {
	res, err := Run("table2e", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["40/ISVD4-b"] <= res.Values["5/ISVD4-b"] {
		t.Errorf("H-mean should grow with rank: %v", res.Values)
	}
}

func TestFig7Runs(t *testing.T) {
	res, err := Run("fig7", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// High privacy, full rank: ISVD3/4-b should be at or near the top
	// (paper order 1-2).
	top := res.Values["high/ISVD4-b@40"]
	if top < res.Values["high/ISVD1-a@40"] {
		t.Errorf("ISVD4-b (%.3f) below ISVD1-a (%.3f) on high-privacy full rank",
			top, res.Values["high/ISVD1-a@40"])
	}
}

func TestFig8bISVDBeatsNMF(t *testing.T) {
	res, err := Run("fig8b", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's key classification finding: ISVD-based features beat
	// NMF/I-NMF. Compare at rank 20.
	if res.Values["ISVD2-b@20"] < res.Values["NMF@20"] {
		t.Errorf("ISVD2-b F1 %.3f below NMF %.3f", res.Values["ISVD2-b@20"], res.Values["NMF@20"])
	}
}

func TestTable3Runs(t *testing.T) {
	res, err := Run("table3", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The low-rank decomposition must roughly match interval-vector NMI
	// (paper: matches at rank 20) while not being slower than interval
	// k-means by orders of magnitude... timing depends on hardware, so
	// only check NMI here.
	if res.Values["16x16/isvd2b"] < res.Values["16x16/interval"]-0.15 {
		t.Errorf("ISVD2-b NMI %.3f way below interval NMI %.3f",
			res.Values["16x16/isvd2b"], res.Values["16x16/interval"])
	}
}

func TestFig9cShape(t *testing.T) {
	res, err := Run("fig9c", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Full-rank: option-b ISVD3/4 lead (paper order 1-2).
	if res.Values["ISVD4-b@19"] < res.Values["ISVD1-a@19"] {
		t.Errorf("ISVD4-b (%.3f) below ISVD1-a (%.3f)",
			res.Values["ISVD4-b@19"], res.Values["ISVD1-a@19"])
	}
}

func TestFig10AIPMFNotWorse(t *testing.T) {
	res, err := Run("fig10", tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"10", "40", "80"} {
		i, iok := res.Values["I-PMF@"+r]
		a, aok := res.Values["AI-PMF@"+r]
		if !iok || !aok {
			continue
		}
		if a > i*1.05 {
			t.Errorf("AI-PMF RMSE %.4f clearly worse than I-PMF %.4f at rank %s", a, i, r)
		}
	}
}

func TestRankOrders(t *testing.T) {
	orders := rankOrders([]float64{0.3, 0.9, 0.5})
	want := []int{3, 1, 2}
	for i := range want {
		if orders[i] != want[i] {
			t.Fatalf("orders = %v", orders)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &table{header: []string{"a", "long-header"}}
	tbl.addRow("x", "1")
	s := tbl.String()
	if !strings.Contains(s, "long-header") || !strings.Contains(s, "---") {
		t.Fatalf("table rendering broken:\n%s", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (Config{}).withDefaults()
	if c.Trials != 10 || c.Scale != 0.25 || c.Seed != 1 {
		t.Fatalf("defaults: %+v", c)
	}
	if q := Quick(); q.Trials != 10 {
		t.Fatalf("Quick: %+v", q)
	}
	if f := Full(); f.Trials != 100 || !f.WithLP {
		t.Fatalf("Full: %+v", f)
	}
}

func TestStreamScenario(t *testing.T) {
	// A tiny run: the scenario must produce per-batch speedups, a
	// near-zero RefreshAuto gap (warm refresh resets drift), and an
	// additive-path gap that the residual column accounts for.
	cfg := Config{Seed: 1, Trials: 1, Scale: 0.1}
	res, err := Run("stream", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["speedup_mean"] <= 1 {
		t.Errorf("additive update not faster than full recompute: mean speedup %.2f", res.Values["speedup_mean"])
	}
	if res.Values["recon_gap_auto"] > 1e-6 {
		t.Errorf("RefreshAuto gap %g, want <= 1e-6 (warm refresh must track the recompute)", res.Values["recon_gap_auto"])
	}
	if !strings.Contains(res.Text, "speedup") {
		t.Error("missing speedup column")
	}
}

func TestWindowScenario(t *testing.T) {
	// The sliding-window replay: downdates must stay faster than the
	// windowed recompute on average, the default-policy chain must track
	// the recompute through its refreshes (expiries chew the residual
	// budget far faster than pure arrivals), and the forgetting chain is
	// pinned against a recompute of the explicitly decayed window.
	cfg := Config{Seed: 1, Trials: 1, Scale: 0.1}
	res, err := Run("window", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["speedup_mean"] <= 1 {
		t.Errorf("window update not faster than windowed recompute: mean speedup %.2f", res.Values["speedup_mean"])
	}
	if res.Values["recon_gap_auto"] > 1e-6 {
		t.Errorf("RefreshAuto gap %g, want <= 1e-6", res.Values["recon_gap_auto"])
	}
	if res.Values["recon_gap_forget"] > 1e-6 {
		t.Errorf("forgetting-chain gap %g, want <= 1e-6 vs the decayed window", res.Values["recon_gap_forget"])
	}
	if res.Values["auto_refreshes"] < 1 {
		t.Error("sliding the window never tripped the refresh budget; the scenario is not exercising the guardrails")
	}
	if !strings.Contains(res.Text, "expire") {
		t.Error("missing expire column")
	}
}
