package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/dataset"
)

func init() {
	register("ablation-algebra", "Ablation: Algorithm 1 endpoint products vs exact interval algebra inside ISVD2-4", runAblationAlgebra)
	register("ablation-assign", "Ablation: ILSA assignment algorithm (Hungarian vs greedy vs stable marriage)", runAblationAssign)
	register("ablation-target", "Ablation: decomposition target a/b/c across interval intensities", runAblationTarget)
}

// runAblationAlgebra quantifies the design choice documented in
// DESIGN.md/README: the reference implementation's endpoint-product
// semantics (Supplementary Algorithm 1) versus sound exact interval
// algebra. Exact algebra produces inclusion-correct but far wider
// factors; its H-mean collapses as interval intensity grows.
func runAblationAlgebra(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	intensities := []float64{0.1, 0.5, 1.0}
	// TargetA exposes the difference: with interval-valued factors the
	// exact product's sound-but-wide intervals inflate both the factor
	// spans and the reconstruction error; target-b hides the widths
	// behind midpoints. The "U span" column is the mean factor interval
	// width per cell.
	tbl := &table{header: []string{"int.intensity",
		"ISVD4-a endpoint H", "ISVD4-a exact H", "endpoint U-span", "exact U-span"}}
	vals := map[string]float64{}
	for _, x := range intensities {
		sc := dataset.DefaultSynthetic()
		sc.Intensity = x
		cells := []string{fmt.Sprintf("%.0f%%", x*100)}
		spans := map[bool]float64{}
		for _, exact := range []bool{false, true} {
			var hSum, spanSum float64
			for trial := 0; trial < cfg.Trials; trial++ {
				m := dataset.MustGenerateUniform(sc, rng)
				d, err := core.Decompose(m, core.ISVD4, core.Options{
					Rank: defaultRank, Target: core.TargetA, ExactAlgebra: exact, Solver: cfg.Solver,
				})
				if err != nil {
					return nil, err
				}
				hSum += d.Evaluate(m).HMean
				spanSum += d.U.TotalSpan() / float64(d.U.Rows()*d.U.Cols())
			}
			h := hSum / float64(cfg.Trials)
			spans[exact] = spanSum / float64(cfg.Trials)
			cells = append(cells, f3(h))
			vals[fmt.Sprintf("%.0f%%/%s", x*100, algebraName(exact))] = h
		}
		cells = append(cells, f3(spans[false]), f3(spans[true]))
		vals[fmt.Sprintf("%.0f%%/spanRatio", x*100)] = safeRatio(spans[true], spans[false])
		tbl.addRow(cells...)
	}
	return &Result{Text: tbl.String(), Values: vals}, nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func algebraName(exact bool) string {
	if exact {
		return "exact"
	}
	return "endpoint"
}

// runAblationAssign compares the three ILSA matching algorithms on
// accuracy and alignment time.
func runAblationAssign(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	methods := []assign.Method{assign.Hungarian, assign.Greedy, assign.StableMarriage}
	tbl := &table{header: []string{"assignment", "H-mean (ISVD4-b)", "align time (ms)"}}
	vals := map[string]float64{}
	for _, am := range methods {
		var hSum float64
		var tSum time.Duration
		for trial := 0; trial < cfg.Trials; trial++ {
			m := dataset.MustGenerateUniform(dataset.DefaultSynthetic(), rng)
			d, err := core.Decompose(m, core.ISVD4, core.Options{
				Rank: defaultRank, Target: core.TargetB, Assign: am, Solver: cfg.Solver,
			})
			if err != nil {
				return nil, err
			}
			hSum += d.Evaluate(m).HMean
			tSum += d.Timings.Align
		}
		h := hSum / float64(cfg.Trials)
		ms := float64(tSum.Microseconds()) / float64(cfg.Trials) / 1e3
		tbl.addRow(am.String(), f3(h), f3(ms))
		vals[am.String()] = h
		vals[am.String()+"/ms"] = ms
	}
	return &Result{Text: tbl.String(), Values: vals}, nil
}

// runAblationTarget sweeps the decomposition target against interval
// intensity, isolating where interval-valued outputs (a) stop paying off
// against renormalized scalar factors (b) and fully scalar outputs (c).
func runAblationTarget(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	intensities := []float64{0.1, 0.25, 0.5, 1.0}
	tbl := &table{header: []string{"int.intensity", "ISVD4-a", "ISVD4-b", "ISVD4-c"}}
	vals := map[string]float64{}
	for _, x := range intensities {
		sc := dataset.DefaultSynthetic()
		sc.Intensity = x
		cells := []string{fmt.Sprintf("%.0f%%", x*100)}
		for _, target := range core.Targets() {
			var sum float64
			for trial := 0; trial < cfg.Trials; trial++ {
				m := dataset.MustGenerateUniform(sc, rng)
				d, err := core.Decompose(m, core.ISVD4, core.Options{Rank: defaultRank, Target: target, Solver: cfg.Solver})
				if err != nil {
					return nil, err
				}
				sum += d.Evaluate(m).HMean
			}
			h := sum / float64(cfg.Trials)
			cells = append(cells, f3(h))
			vals[fmt.Sprintf("%.0f%%/%s", x*100, target)] = h
		}
		tbl.addRow(cells...)
	}
	return &Result{Text: tbl.String(), Values: vals}, nil
}
