package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/lp"
	"repro/internal/parallel"
)

func init() {
	register("fig3", "Figure 3: cos(V*, V^*) before/after ILSA (default synthetic, ISVD1, r=20)", runFig3)
	register("fig5", "Figure 5: cos(V*, V^*) and cos(U*, U^*) before/after ISVD4 recomputation", runFig5)
	register("fig6a", "Figure 6(a): decomposition accuracy of all ISVD variants (+LP) on the default synthetic config", runFig6a)
	register("fig6b", "Figure 6(b): execution-time breakdown per decomposition phase", runFig6b)
	register("table2a", "Table 2(a): H-mean vs interval density (option-b)", runTable2a)
	register("table2b", "Table 2(b): H-mean vs interval intensity (option-b)", runTable2b)
	register("table2c", "Table 2(c): H-mean vs matrix density (option-b)", runTable2c)
	register("table2d", "Table 2(d): H-mean vs matrix configuration (option-b)", runTable2d)
	register("table2e", "Table 2(e): H-mean vs target rank (option-b)", runTable2e)
}

// methodTarget identifies one cell of the paper's 13-method grid.
type methodTarget struct {
	m core.Method
	t core.Target
}

func (mt methodTarget) label() string {
	return fmt.Sprintf("%s-%s", mt.m, mt.t)
}

// grid13 lists the paper's 13 ISVD variants: options a and b for
// ISVD1-4, option c for ISVD0-4.
func grid13() []methodTarget {
	var out []methodTarget
	for _, t := range []core.Target{core.TargetA, core.TargetB} {
		for _, m := range []core.Method{core.ISVD1, core.ISVD2, core.ISVD3, core.ISVD4} {
			out = append(out, methodTarget{m, t})
		}
	}
	out = append(out, methodTarget{core.ISVD0, core.TargetC})
	for _, m := range []core.Method{core.ISVD1, core.ISVD2, core.ISVD3, core.ISVD4} {
		out = append(out, methodTarget{m, core.TargetC})
	}
	return out
}

// optionBRow is the method set of Table 2: ISVD0 plus the option-b variants.
func optionBRow() []methodTarget {
	return []methodTarget{
		{core.ISVD0, core.TargetC},
		{core.ISVD1, core.TargetB},
		{core.ISVD2, core.TargetB},
		{core.ISVD3, core.TargetB},
		{core.ISVD4, core.TargetB},
	}
}

func optionBHeader() []string {
	return []string{"ISVD0", "ISVD1-b", "ISVD2-b", "ISVD3-b", "ISVD4-b"}
}

// avgHMean decomposes `trials` fresh matrices from gen and returns the
// mean H-mean per methodTarget. Matrices are drawn sequentially from rng
// (keeping runs deterministic for a given seed); the method grid is then
// evaluated on the shared worker pool — bounded concurrency, unlike the
// old one-goroutine-per-method fan-out — which is safe because
// decompositions are independent and deterministic.
func avgHMean(gen func(*rand.Rand) *imatrix.IMatrix, mts []methodTarget, rank, trials, workers int, solver eig.Solver, rng *rand.Rand) ([]float64, error) {
	sums := make([]float64, len(mts))
	for trial := 0; trial < trials; trial++ {
		m := gen(rng)
		hs := make([]float64, len(mts))
		errs := make([]error, len(mts))
		parallel.ForWith(workers, len(mts), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				mt := mts[i]
				d, err := core.Decompose(m, mt.m, core.Options{Rank: rank, Target: mt.t, Workers: 1, Solver: solver})
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", mt.label(), err)
					continue
				}
				hs[i] = d.Evaluate(m).HMean
			}
		})
		for i := range mts {
			if errs[i] != nil {
				return nil, errs[i]
			}
			sums[i] += hs[i]
		}
	}
	for i := range sums {
		sums[i] /= float64(trials)
	}
	return sums, nil
}

const defaultRank = 20

func defaultGen(cfg dataset.SyntheticConfig) func(*rand.Rand) *imatrix.IMatrix {
	return func(rng *rand.Rand) *imatrix.IMatrix {
		return dataset.MustGenerateUniform(cfg, rng)
	}
}

func runFig3(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := defaultGen(dataset.DefaultSynthetic())
	before := make([]float64, defaultRank)
	after := make([]float64, defaultRank)
	for trial := 0; trial < cfg.Trials; trial++ {
		m := gen(rng)
		d, err := core.Decompose(m, core.ISVD1, core.Options{Rank: defaultRank, Target: core.TargetB, Solver: cfg.Solver})
		if err != nil {
			return nil, err
		}
		for j := 0; j < defaultRank; j++ {
			before[j] += d.CosVUnaligned[j] / float64(cfg.Trials)
			after[j] += d.CosVAligned[j] / float64(cfg.Trials)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "(a) before alignment: %s\n", series(before))
	fmt.Fprintf(&b, "(b) after alignment:  %s\n", series(after))
	fmt.Fprintf(&b, "mean before = %.3f, mean after = %.3f (higher is better)\n", mean(before), mean(after))
	return &Result{Text: b.String(), Values: map[string]float64{
		"meanBefore": mean(before), "meanAfter": mean(after),
	}}, nil
}

func runFig5(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := defaultGen(dataset.DefaultSynthetic())
	vBefore := make([]float64, defaultRank)
	uSeries := make([]float64, defaultRank)
	vAfter := make([]float64, defaultRank)
	for trial := 0; trial < cfg.Trials; trial++ {
		m := gen(rng)
		d, err := core.Decompose(m, core.ISVD4, core.Options{Rank: defaultRank, Target: core.TargetB, Solver: cfg.Solver})
		if err != nil {
			return nil, err
		}
		for j := 0; j < defaultRank; j++ {
			vBefore[j] += d.CosVAligned[j] / float64(cfg.Trials)
			uSeries[j] += d.CosURecovered[j] / float64(cfg.Trials)
			vAfter[j] += d.CosVRecomputed[j] / float64(cfg.Trials)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "(a) V before recomputation: %s\n", series(vBefore))
	fmt.Fprintf(&b, "(a) U after solve:          %s\n", series(uSeries))
	fmt.Fprintf(&b, "(b) V after recomputation:  %s\n", series(vAfter))
	fmt.Fprintf(&b, "mean V before = %.3f, mean U = %.3f, mean V after = %.3f\n",
		mean(vBefore), mean(uSeries), mean(vAfter))
	return &Result{Text: b.String(), Values: map[string]float64{
		"meanVBefore": mean(vBefore), "meanU": mean(uSeries), "meanVAfter": mean(vAfter),
	}}, nil
}

func runFig6a(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mts := grid13()
	h, err := avgHMean(defaultGen(dataset.DefaultSynthetic()), mts, defaultRank, cfg.Trials, cfg.Workers, cfg.Solver, rng)
	if err != nil {
		return nil, err
	}
	tbl := &table{header: []string{"method", "H-mean"}}
	vals := map[string]float64{}
	for i, mt := range mts {
		tbl.addRow(mt.label(), f3(h[i]))
		vals[mt.label()] = h[i]
	}
	var b strings.Builder
	b.WriteString(tbl.String())
	if cfg.WithLP {
		// The LP competitor is O(rank·dim) simplex solves; run it on a
		// transposed/reduced instance (Gram dimension 40) as the paper's
		// qualitative comparison point.
		lpCfg := dataset.DefaultSynthetic()
		lpCfg.Rows, lpCfg.Cols = 250, 40
		m := dataset.MustGenerateUniform(lpCfg, rng)
		start := time.Now()
		d, err := lp.Decompose(m, lp.Options{Rank: defaultRank, Target: core.TargetB})
		if err != nil {
			return nil, err
		}
		lpH := d.Evaluate(m).HMean
		vals["LP-b"] = lpH
		fmt.Fprintf(&b, "LP-b (Deif/Seif competitor, 250x40 instance): H-mean = %.3f in %v\n",
			lpH, time.Since(start).Round(time.Millisecond))
	}
	return &Result{Text: b.String(), Values: vals}, nil
}

func runFig6b(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := defaultGen(dataset.DefaultSynthetic())
	methods := core.Methods()
	type phases struct{ pre, dec, ali, sol, con float64 }
	acc := make([]phases, len(methods))
	for trial := 0; trial < cfg.Trials; trial++ {
		m := gen(rng)
		for i, method := range methods {
			d, err := core.Decompose(m, method, core.Options{Rank: defaultRank, Target: core.TargetB, Solver: cfg.Solver})
			if err != nil {
				return nil, err
			}
			ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
			acc[i].pre += ms(d.Timings.Preprocess)
			acc[i].dec += ms(d.Timings.Decompose)
			acc[i].ali += ms(d.Timings.Align)
			acc[i].sol += ms(d.Timings.Solve)
			acc[i].con += ms(d.Timings.Construct)
		}
	}
	tbl := &table{header: []string{"method", "preprocess(ms)", "decompose(ms)", "align(ms)", "solve(ms)", "construct(ms)", "total(ms)"}}
	vals := map[string]float64{}
	for i, method := range methods {
		n := float64(cfg.Trials)
		p := acc[i]
		total := (p.pre + p.dec + p.ali + p.sol + p.con) / n
		tbl.addRow(method.String(), f3(p.pre/n), f3(p.dec/n), f3(p.ali/n), f3(p.sol/n), f3(p.con/n), f3(total))
		vals[method.String()] = total
	}
	return &Result{Text: tbl.String(), Values: vals}, nil
}

// runTable2 sweeps one SyntheticConfig dimension for the option-b methods.
func runTable2(cfg Config, paramName string, values []string, configs []dataset.SyntheticConfig, rank func(dataset.SyntheticConfig) int) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := &table{header: append([]string{paramName}, optionBHeader()...)}
	vals := map[string]float64{}
	for vi, sc := range configs {
		h, err := avgHMean(defaultGen(sc), optionBRow(), rank(sc), cfg.Trials, cfg.Workers, cfg.Solver, rng)
		if err != nil {
			return nil, err
		}
		cells := []string{values[vi]}
		for i, hv := range h {
			cells = append(cells, f3(hv))
			vals[values[vi]+"/"+optionBHeader()[i]] = hv
		}
		tbl.addRow(cells...)
	}
	return &Result{Text: tbl.String(), Values: vals}, nil
}

func fixedRank(r int) func(dataset.SyntheticConfig) int {
	return func(dataset.SyntheticConfig) int { return r }
}

func runTable2a(cfg Config) (*Result, error) {
	densities := []float64{0.10, 0.25, 0.75, 1.00}
	var configs []dataset.SyntheticConfig
	var labels []string
	for _, d := range densities {
		sc := dataset.DefaultSynthetic()
		sc.IntervalDensity = d
		configs = append(configs, sc)
		labels = append(labels, fmt.Sprintf("%.0f%%", d*100))
	}
	return runTable2(cfg, "int.density", labels, configs, fixedRank(defaultRank))
}

func runTable2b(cfg Config) (*Result, error) {
	intensities := []float64{0.10, 0.25, 0.75, 1.00}
	var configs []dataset.SyntheticConfig
	var labels []string
	for _, x := range intensities {
		sc := dataset.DefaultSynthetic()
		sc.Intensity = x
		configs = append(configs, sc)
		labels = append(labels, fmt.Sprintf("%.0f%%", x*100))
	}
	return runTable2(cfg, "int.intensity", labels, configs, fixedRank(defaultRank))
}

func runTable2c(cfg Config) (*Result, error) {
	zeros := []float64{0, 0.5, 0.9}
	var configs []dataset.SyntheticConfig
	var labels []string
	for _, z := range zeros {
		sc := dataset.DefaultSynthetic()
		sc.ZeroFrac = z
		configs = append(configs, sc)
		labels = append(labels, fmt.Sprintf("%.0f%%", z*100))
	}
	return runTable2(cfg, "mat.density(zeros)", labels, configs, fixedRank(defaultRank))
}

func runTable2d(cfg Config) (*Result, error) {
	shapes := [][2]int{{25, 400}, {40, 250}, {250, 40}, {400, 250}, {250, 400}}
	var configs []dataset.SyntheticConfig
	var labels []string
	for _, sh := range shapes {
		sc := dataset.DefaultSynthetic()
		sc.Rows, sc.Cols = sh[0], sh[1]
		configs = append(configs, sc)
		labels = append(labels, fmt.Sprintf("%d-by-%d", sh[0], sh[1]))
	}
	return runTable2(cfg, "matrix conf.", labels, configs, fixedRank(defaultRank))
}

func runTable2e(cfg Config) (*Result, error) {
	ranks := []int{5, 10, 20, 40}
	var configs []dataset.SyntheticConfig
	var labels []string
	for _, r := range ranks {
		configs = append(configs, dataset.DefaultSynthetic())
		labels = append(labels, fmt.Sprintf("%d", r))
	}
	i := -1
	return runTable2(cfg, "rank", labels, configs, func(dataset.SyntheticConfig) int {
		i++
		return ranks[i%len(ranks)]
	})
}
