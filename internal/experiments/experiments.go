// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 6). Each experiment is a named Runner
// producing a text rendering of the same rows/series the paper reports;
// cmd/experiments exposes them on the command line and the repository's
// bench_test.go wraps them in testing.B benchmarks.
//
// Absolute numbers differ from the paper (synthetic stand-ins replace the
// ORL/MovieLens/Ciao/Epinions datasets and the hardware differs); the
// comparisons of record are the shapes: method orderings, parameter
// trends, and crossover points. EXPERIMENTS.md tracks paper-vs-measured
// for each experiment.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/eig"
)

// Config controls the scale of an experiment run.
type Config struct {
	// Seed drives all randomness; a fixed seed reproduces a run exactly.
	Seed int64
	// Trials is the number of random matrices averaged per cell
	// (the paper uses 100; the quick default is 10).
	Trials int
	// Scale shrinks the face/ratings datasets (1.0 = paper size).
	Scale float64
	// WithLP includes the (very slow) LP competitor class where the
	// paper reports it.
	WithLP bool
	// Density overrides the observed-cell fraction of the ratings
	// generators (0 = each dataset's published count). At 0.01-0.05 the
	// rating matrices are realistically sparse and the experiment
	// harness exercises the CSR training paths at production-like
	// sparsity. Values above 0.5 are clamped to 0.5, the ratings
	// generator's maximum (see dataset.RatingsConfig.WithDensity);
	// cmd/experiments rejects them outright.
	Density float64
	// Workers bounds the concurrent method-grid evaluations (each grid
	// decomposition then runs its own endpoint fan-out serially, leaving
	// the deep kernels to the shared pool's global helper budget). Zero
	// means the shared pool default (GOMAXPROCS, or whatever
	// parallel.SetWorkers configured).
	Workers int
	// Solver routes every decomposition's eigen/SVD backend
	// (core.Options.Solver): the zero value is eig.SolverAuto; cmd/
	// experiments' -solver flag forces full or truncated, and the two
	// must agree on every reproduced number to the experiment tables'
	// precision (pinned at 1e-6 by the cmd tests on fig5 — a
	// decomposition-driven experiment — and fig10, whose SGD-only CF
	// path must stay untouched by the knob).
	Solver eig.Solver
}

// Quick returns the fast default configuration used by `go test` and the
// CLI without flags.
func Quick() Config { return Config{Seed: 1, Trials: 10, Scale: 0.25} }

// Full returns the paper-scale configuration.
func Full() Config { return Config{Seed: 1, Trials: 100, Scale: 1.0, WithLP: true} }

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 10
	}
	if c.Scale <= 0 {
		c.Scale = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is the output of one experiment run.
type Result struct {
	ID    string
	Title string
	Text  string
	// Values exposes headline numbers keyed by row/series labels so tests
	// and benchmarks can assert on shapes without parsing Text.
	Values map[string]float64
}

// Runner executes one experiment.
type Runner func(Config) (*Result, error)

type registration struct {
	id, title string
	run       Runner
}

var registry []registration

func register(id, title string, run Runner) {
	registry = append(registry, registration{id: id, title: title, run: run})
}

// IDs returns all experiment ids in registration (paper) order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	return out
}

// Describe returns the one-line title of an experiment id.
func Describe(id string) string {
	for _, r := range registry {
		if r.id == id {
			return r.title
		}
	}
	return ""
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	for _, r := range registry {
		if r.id == id {
			res, err := r.run(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", id, err)
			}
			res.ID = r.id
			res.Title = r.title
			return res, nil
		}
	}
	known := strings.Join(IDs(), ", ")
	return nil, fmt.Errorf("unknown experiment %q (known: %s)", id, known)
}

// table renders rows of cells with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// series renders a labeled numeric series ("1:0.93 2:0.91 …").
func series(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d:%.3f", i+1, v)
	}
	return strings.Join(parts, " ")
}

// rankOrders annotates a column of H-means with their descending rank
// order (1 = best), matching the paper's "Order" columns in Figures 7/9.
func rankOrders(h []float64) []int {
	idx := make([]int, len(h))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return h[idx[a]] > h[idx[b]] })
	orders := make([]int, len(h))
	for rank, i := range idx {
		orders[i] = rank + 1
	}
	return orders
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}
