package experiments

import "testing"

func TestAblationAlgebra(t *testing.T) {
	res, err := Run("ablation-algebra", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Exact interval algebra must not beat the endpoint semantics, and
	// its factor spans must be wider at full intensity.
	if res.Values["100%/exact"] > res.Values["100%/endpoint"]+1e-9 {
		t.Errorf("exact (%v) beats endpoint (%v)", res.Values["100%/exact"], res.Values["100%/endpoint"])
	}
	if res.Values["100%/spanRatio"] < 1 {
		t.Errorf("exact spans narrower than endpoint: ratio %v", res.Values["100%/spanRatio"])
	}
}

func TestAblationAssign(t *testing.T) {
	res, err := Run("ablation-assign", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// All three matchers yield close accuracy at this scale.
	h := res.Values["hungarian"]
	for _, k := range []string{"greedy", "stable-marriage"} {
		if diff := h - res.Values[k]; diff > 0.05 || diff < -0.05 {
			t.Errorf("%s H-mean %v far from hungarian %v", k, res.Values[k], h)
		}
	}
}

func TestAblationTarget(t *testing.T) {
	res, err := Run("ablation-target", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Target-a degrades with intensity much faster than target-b.
	dropA := res.Values["10%/a"] - res.Values["100%/a"]
	dropB := res.Values["10%/b"] - res.Values["100%/b"]
	if dropA <= dropB {
		t.Errorf("target-a drop %.3f not larger than target-b drop %.3f", dropA, dropB)
	}
}
