package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/imatrix"
)

func init() {
	register("fig7", "Figure 7: accuracy on anonymized data (high/medium/low privacy, ranks 100%/50%/5%)", runFig7)
}

// rankGrid returns the paper's 100%/50%/5% target ranks for a full rank.
func rankGrid(full int) []int {
	half := full / 2
	if half < 1 {
		half = 1
	}
	five := full / 20
	if five < 1 {
		five = 1
	}
	return []int{full, half, five}
}

// hMeanOrderTable renders the paper's Figure 7/9 layout: one row per
// method, H-mean and rank-order columns per target rank.
func hMeanOrderTable(gen func(*rand.Rand) *imatrix.IMatrix, fullRank int, cfg Config, rng *rand.Rand) (*table, map[string]float64, error) {
	mts := grid13()
	ranks := rankGrid(fullRank)
	header := []string{"method"}
	for _, r := range ranks {
		header = append(header, fmt.Sprintf("H@r=%d", r), "Ord")
	}
	cols := make([][]float64, len(ranks))
	for ri, r := range ranks {
		h, err := avgHMean(gen, mts, r, cfg.Trials, cfg.Workers, cfg.Solver, rng)
		if err != nil {
			return nil, nil, err
		}
		cols[ri] = h
	}
	orders := make([][]int, len(ranks))
	for ri := range cols {
		orders[ri] = rankOrders(cols[ri])
	}
	tbl := &table{header: header}
	vals := map[string]float64{}
	for i, mt := range mts {
		cells := []string{mt.label()}
		for ri := range ranks {
			cells = append(cells, f3(cols[ri][i]), fmt.Sprintf("%d", orders[ri][i]))
			vals[fmt.Sprintf("%s@%d", mt.label(), ranks[ri])] = cols[ri][i]
		}
		tbl.addRow(cells...)
	}
	return tbl, vals, nil
}

func runFig7(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mixes := []struct {
		name string
		mix  dataset.AnonymizationMix
	}{
		{"high privacy [10,20,30,40]", dataset.HighAnonymity},
		{"medium privacy [25,25,25,25]", dataset.MediumAnonymity},
		{"low privacy [40,30,20,10]", dataset.LowAnonymity},
	}
	var b strings.Builder
	vals := map[string]float64{}
	const rows, colsN = 40, 250
	for _, mx := range mixes {
		gen := func(rng *rand.Rand) *imatrix.IMatrix {
			m, err := dataset.GenerateAnonymized(rows, colsN, mx.mix, rng)
			if err != nil {
				panic(err)
			}
			return m
		}
		tbl, v, err := hMeanOrderTable(gen, rows, cfg, rng)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "-- %s --\n%s\n", mx.name, tbl)
		prefix := strings.SplitN(mx.name, " ", 2)[0]
		for k, hv := range v {
			vals[prefix+"/"+k] = hv
		}
	}
	return &Result{Text: b.String(), Values: vals}, nil
}
