package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sparse"
)

func init() {
	register("window", "Sliding-window updates: per-batch latency of downdates (tombstone expiry + forgetting) vs windowed full redecomposition", runWindow)
}

// windowForget is the decay factor of the forgetting chain: old enough
// cells fade below the retained spectrum while the window slides.
const windowForget = 0.98

// runWindow replays the sliding-window production scenario: a ratings
// matrix is decomposed once, then each arriving batch carries new cells
// plus tombstones expiring equally many of the oldest live cells
// (dataset.WindowSplit — the same split datagen -window writes to
// disk). Each batch is (a) folded into the decomposition with the
// engine's combined patch + downdate update and (b) absorbed by a full
// redecomposition of the maintained window matrix, timing both. A third
// chain additionally decays the spectrum by λ = windowForget per batch
// and is pinned against a recompute of the explicitly decayed matrix,
// so the λ semantics (decay first, then arrivals at full strength) are
// exercised end to end. The closing health line reports the escalation
// counters of the default-policy chain: on flat CF spectra the expiries
// chew through the residual budget faster than pure arrivals, which is
// exactly what the guardrails are for.
func runWindow(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rc := ratingsConfig(cfg, dataset.MovieLensLike())
	data, err := dataset.GenerateRatings(rc, rng)
	if err != nil {
		return nil, err
	}
	full := data.CFIntervalsCSR()

	baseCells, batches, err := dataset.WindowSplit(full, streamHoldout, streamBatches, rng)
	if err != nil {
		return nil, fmt.Errorf("window: %w", err)
	}
	base, err := sparse.FromICOO(full.Rows, full.Cols, baseCells)
	if err != nil {
		return nil, err
	}

	rank := 10
	if m := min(full.Rows, full.Cols); rank > m {
		rank = m
	}
	opts := core.Options{Rank: rank, Target: core.TargetB, Solver: cfg.Solver, Workers: cfg.Workers, Updatable: true}
	refOpts := opts
	refOpts.Updatable = false

	t0 := time.Now()
	d, err := core.DecomposeSparse(base, core.ISVD4, opts)
	if err != nil {
		return nil, err
	}
	coldTime := time.Since(t0)
	dAuto, dForget := d, d

	tbl := &table{header: []string{"batch", "arrive", "expire", "update_ms", "full_ms", "speedup", "residual"}}
	vals := map[string]float64{"cold_ms": coldTime.Seconds() * 1000}
	cur, decayed := base, base
	var speedups []float64
	var lastRef *core.Decomposition
	var autoTotal time.Duration
	for k := 0; k < streamBatches; k++ {
		b := batches[k]
		delta := core.Delta{Patch: b.Patch, Unpatch: b.Tombstones}

		// The additive window chain: patch + downdate factor updates, no
		// refreshes — the O(delta) latency floor of sliding the window.
		t0 = time.Now()
		d2, err := d.Update(delta, core.Options{Refresh: core.RefreshNever, Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("window: batch %d: %w", k+1, err)
		}
		updTime := time.Since(t0)

		// The default-policy chain: the guardrails and the residual budget
		// decide when the window has drifted enough to refresh.
		dAuto, err = dAuto.Update(delta, core.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("window: auto batch %d: %w", k+1, err)
		}
		autoTotal += time.Since(t0) - updTime

		// The forgetting chain decays before the batch lands.
		dForget, err = dForget.Update(core.Delta{Forget: windowForget, Patch: b.Patch, Unpatch: b.Tombstones},
			core.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("window: forget batch %d: %w", k+1, err)
		}

		// Maintain the window matrices the baselines recompute: the plain
		// window, and the decayed window in the engine's apply order
		// (decay first; arrivals land at full strength; expiries are
		// value-independent).
		cur, err = cur.ApplyPatch(b.Patch)
		if err != nil {
			return nil, err
		}
		cur, err = cur.ApplyUnpatch(b.Tombstones)
		if err != nil {
			return nil, err
		}
		decayed, err = decayed.Scale(windowForget)
		if err != nil {
			return nil, err
		}
		decayed, err = decayed.ApplyPatch(b.Patch)
		if err != nil {
			return nil, err
		}
		decayed, err = decayed.ApplyUnpatch(b.Tombstones)
		if err != nil {
			return nil, err
		}

		t0 = time.Now()
		lastRef, err = core.DecomposeSparse(cur, core.ISVD4, refOpts)
		if err != nil {
			return nil, err
		}
		fullTime := time.Since(t0)

		sp := fullTime.Seconds() / math.Max(updTime.Seconds(), 1e-9)
		speedups = append(speedups, sp)
		tbl.addRow(fmt.Sprintf("%d", k+1), fmt.Sprintf("%d", len(b.Patch)), fmt.Sprintf("%d", len(b.Tombstones)),
			fmt.Sprintf("%.2f", updTime.Seconds()*1000), fmt.Sprintf("%.2f", fullTime.Seconds()*1000),
			fmt.Sprintf("%.1fx", sp), fmt.Sprintf("%.2e", d2.UpdateResidual()))
		d = d2
	}
	forgetRef, err := core.DecomposeSparse(decayed, core.ISVD4, refOpts)
	if err != nil {
		return nil, err
	}
	additiveGap := reconstructionGap(d, lastRef)
	autoGap := reconstructionGap(dAuto, lastRef)
	forgetGap := reconstructionGap(dForget, forgetRef)
	h := dAuto.Health()
	vals["speedup_mean"] = mean(speedups)
	vals["recon_gap_additive"] = additiveGap
	vals["recon_gap_auto"] = autoGap
	vals["recon_gap_forget"] = forgetGap
	vals["auto_refreshes"] = float64(h.Refreshes)
	vals["auto_redecomposes"] = float64(h.Redecomposes)
	last := h.LastEscalation
	if last == "" {
		last = "none"
	}
	text := fmt.Sprintf(
		"%d x %d ratings, %d observed cells; base decomposition (ISVD4, r=%d, %s solver): %.1f ms\n"+
			"%d batches sliding a constant-size window (each arrival expires the oldest live cell):\n%s"+
			"final gap vs windowed full recompute: additive-only %.2e, RefreshAuto %.2e at %.1f ms/batch\n"+
			"(auto-chain health: %d updates, %d warm refreshes, %d redecomposes, last escalation %s);\n"+
			"λ=%.2f forgetting chain vs recompute of the explicitly decayed window: %.2e\n",
		full.Rows, full.Cols, full.NNZ(), rank, cfg.Solver, coldTime.Seconds()*1000,
		streamBatches, tbl.String(),
		additiveGap, autoGap, autoTotal.Seconds()*1000/streamBatches,
		h.Updates, h.Refreshes, h.Redecomposes, last,
		windowForget, forgetGap)
	return &Result{Text: text, Values: vals}, nil
}
