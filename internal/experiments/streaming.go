package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sparse"
)

func init() {
	register("stream", "Streaming updates: per-batch latency of the incremental factor engine vs full redecomposition (ratings arriving in B batches)", runStream)
}

// streamBatches is the number of arriving batches the scenario replays;
// together the batches carry streamHoldout of the observed cells.
const (
	streamBatches = 5
	streamHoldout = 0.10
)

// runStream replays the production scenario of the ROADMAP's batched
// decomposition service: a ratings matrix is decomposed once, then new
// ratings arrive in batches and each batch is (a) folded into the
// decomposition with core's incremental factor-update engine and
// (b) absorbed by a full re-decomposition, timing both. The decisive
// comparison is the per-batch latency ratio — the additive update costs
// O(delta), the full recompute O(NNZ·r) per solver sweep — and the
// engine's output is pinned against the recompute at 1e-6 by the core
// property tests, so this experiment reports timing, residual-budget
// use, and the reconstruction gap as a sanity line.
func runStream(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rc := ratingsConfig(cfg, dataset.MovieLensLike())
	data, err := dataset.GenerateRatings(rc, rng)
	if err != nil {
		return nil, err
	}
	full := data.CFIntervalsCSR()

	// Stable split: hold out streamHoldout of the observed cells as the
	// arriving stream, in streamBatches batches (the same split datagen
	// -batches writes to disk).
	baseCells, deltas, err := dataset.StreamSplit(full, streamHoldout, streamBatches, rng)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	base, err := sparse.FromICOO(full.Rows, full.Cols, baseCells)
	if err != nil {
		return nil, err
	}

	rank := 10
	if m := min(full.Rows, full.Cols); rank > m {
		rank = m
	}
	opts := core.Options{Rank: rank, Target: core.TargetB, Solver: cfg.Solver, Workers: cfg.Workers, Updatable: true}
	refOpts := opts
	refOpts.Updatable = false

	t0 := time.Now()
	d, err := core.DecomposeSparse(base, core.ISVD4, opts)
	if err != nil {
		return nil, err
	}
	coldTime := time.Since(t0)

	tbl := &table{header: []string{"batch", "cells", "update_ms", "full_ms", "speedup", "residual"}}
	vals := map[string]float64{"cold_ms": coldTime.Seconds() * 1000}
	cur := base
	dAuto := d
	var speedups []float64
	var lastRef *core.Decomposition
	var autoTotal time.Duration
	streamN := 0
	for _, b := range deltas {
		streamN += len(b)
	}
	for k := 0; k < streamBatches; k++ {
		batch := deltas[k]
		delta := core.Delta{Patch: batch}

		// The additive chain: pure factor updates, no refreshes — the
		// O(delta) latency floor of the engine.
		t0 = time.Now()
		d2, err := d.Update(delta, core.Options{Refresh: core.RefreshNever, Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("stream: batch %d: %w", k+1, err)
		}
		updTime := time.Since(t0)

		// The default-policy chain: RefreshAuto re-solves (warm-started)
		// whenever the accumulated residual trips the 1% budget, bounding
		// drift at the cost of refresh batches.
		t0 = time.Now()
		dAuto, err = dAuto.Update(delta, core.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("stream: auto batch %d: %w", k+1, err)
		}
		autoTotal += time.Since(t0)

		cur, err = cur.ApplyPatch(batch)
		if err != nil {
			return nil, err
		}
		// The baseline pays exactly what a non-streaming consumer would:
		// no Updatable state capture.
		t0 = time.Now()
		lastRef, err = core.DecomposeSparse(cur, core.ISVD4, refOpts)
		if err != nil {
			return nil, err
		}
		fullTime := time.Since(t0)

		sp := fullTime.Seconds() / math.Max(updTime.Seconds(), 1e-9)
		speedups = append(speedups, sp)
		tbl.addRow(fmt.Sprintf("%d", k+1), fmt.Sprintf("%d", len(batch)),
			fmt.Sprintf("%.2f", updTime.Seconds()*1000), fmt.Sprintf("%.2f", fullTime.Seconds()*1000),
			fmt.Sprintf("%.1fx", sp), fmt.Sprintf("%.2e", d2.UpdateResidual()))
		d = d2
	}
	additiveGap := reconstructionGap(d, lastRef)
	autoGap := reconstructionGap(dAuto, lastRef)
	vals["speedup_mean"] = mean(speedups)
	vals["recon_gap_additive"] = additiveGap
	vals["recon_gap_auto"] = autoGap
	text := fmt.Sprintf(
		"%d x %d ratings, %d observed cells; base decomposition (ISVD4, r=%d, %s solver): %.1f ms\n"+
			"%d batches streaming %d held-out cells through Decomposition.Update:\n%s"+
			"final gap vs full recompute: additive-only %.2e (exact-rank deltas agree to 1e-6; full-spectrum\n"+
			"data accumulates residual, tracked above), RefreshAuto %.2e at %.1f ms/batch (the 1%% budget\n"+
			"schedules warm refreshes; on this flat CF spectrum the warm solve falls back to the full\n"+
			"solver — the warm-start win on decaying spectra is pinned in BENCH_update.json)\n",
		full.Rows, full.Cols, full.NNZ(), rank, cfg.Solver, coldTime.Seconds()*1000,
		streamBatches, streamN, tbl.String(),
		additiveGap, autoGap, autoTotal.Seconds()*1000/streamBatches)
	return &Result{Text: text, Values: vals}, nil
}

// reconstructionGap returns the relative Frobenius distance between two
// decompositions' interval reconstructions.
func reconstructionGap(a, b *core.Decomposition) float64 {
	ra, rb := a.Reconstruct(), b.Reconstruct()
	var diff, norm float64
	for i := range ra.Lo.Data {
		d := ra.Lo.Data[i] - rb.Lo.Data[i]
		diff += d * d
		d = ra.Hi.Data[i] - rb.Hi.Data[i]
		diff += d * d
		norm += rb.Lo.Data[i]*rb.Lo.Data[i] + rb.Hi.Data[i]*rb.Hi.Data[i]
	}
	return math.Sqrt(diff) / math.Max(1, math.Sqrt(norm))
}
