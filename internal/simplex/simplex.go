// Package simplex implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	maximize cᵀx  subject to  A·x ≤ b,  x ≥ 0
//
// (b may be negative; equality constraints are expressed as two opposing
// inequalities). It exists to support the paper's "LPx" competitor class
// — the linear-programming-based interval eigen-decomposition of Deif and
// Seif et al. — and uses Bland's rule for anti-cycling, so it favors
// robustness over speed.
package simplex

import (
	"errors"
	"fmt"
	"math"
)

// Solver failure modes.
var (
	ErrInfeasible     = errors.New("simplex: infeasible")
	ErrUnbounded      = errors.New("simplex: unbounded")
	ErrIterationLimit = errors.New("simplex: iteration limit exceeded")
)

const (
	tol = 1e-9
	// maxIterFactor bounds the simplex pivots at maxIterFactor·(m+n).
	maxIterFactor = 50
)

// Problem is a linear program: maximize Cᵀx subject to A·x ≤ B, x ≥ 0.
type Problem struct {
	C []float64
	A [][]float64
	B []float64
}

// Validate reports structural errors.
func (p Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("simplex: empty objective")
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("simplex: %d constraint rows but %d bounds", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("simplex: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	return nil
}

// Solve returns an optimal solution and objective value.
func Solve(p Problem) (x []float64, obj float64, err error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(p.C)
	m := len(p.A)

	// Equality form: A·x + s = b with one slack per row. Rows with b < 0
	// are negated (slack coefficient −1) and receive an artificial
	// variable for the phase-1 basis.
	type rowForm struct {
		a     []float64
		b     float64
		slack float64 // +1 or −1
	}
	rows := make([]rowForm, m)
	nArt := 0
	for i := range p.A {
		r := rowForm{a: append([]float64(nil), p.A[i]...), b: p.B[i], slack: 1}
		if r.b < 0 {
			for j := range r.a {
				r.a[j] = -r.a[j]
			}
			r.b = -r.b
			r.slack = -1
			nArt++
		}
		rows[i] = r
	}

	// Tableau columns: n structural + m slack + nArt artificial + RHS.
	total := n + m + nArt
	t := make([][]float64, m+1)
	for i := range t {
		t[i] = make([]float64, total+1)
	}
	basis := make([]int, m)
	artCols := map[int]bool{}
	art := 0
	for i, r := range rows {
		copy(t[i][:n], r.a)
		t[i][n+i] = r.slack
		t[i][total] = r.b
		if r.slack == 1 {
			basis[i] = n + i
		} else {
			col := n + m + art
			t[i][col] = 1
			basis[i] = col
			artCols[col] = true
			art++
		}
	}
	maxIter := maxIterFactor * (m + total)

	if nArt > 0 {
		// Phase 1: minimize the artificial sum ⇔ maximize −Σa. In the
		// tableau the objective row stores −c, so each artificial column
		// gets +1, then the basic artificials are priced out.
		phase1 := t[m]
		for j := range phase1 {
			phase1[j] = 0
		}
		for col := range artCols {
			phase1[col] = 1
		}
		for i, b := range basis {
			if artCols[b] {
				addRow(phase1, t[i], -1)
			}
		}
		if err := iterate(t, basis, maxIter); err != nil {
			return nil, 0, err
		}
		if t[m][total] < -tol {
			return nil, 0, ErrInfeasible
		}
		// Drive any lingering artificials out of the basis.
		for i, b := range basis {
			if !artCols[b] {
				continue
			}
			pivoted := false
			for j := 0; j < n+m; j++ {
				if math.Abs(t[i][j]) > tol {
					pivot(t, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				basis[i] = -1 // redundant row
			}
		}
		// Remove artificial columns by zeroing them (cheap and safe).
		for col := range artCols {
			for i := range t {
				t[i][col] = 0
			}
		}
	}

	// Phase 2 objective row: maximize cᵀx ⇒ row = −c, priced out.
	objRow := t[m]
	for j := range objRow {
		objRow[j] = 0
	}
	for j := 0; j < n; j++ {
		objRow[j] = -p.C[j]
	}
	for i, b := range basis {
		if b >= 0 && b < n && math.Abs(objRow[b]) > 0 {
			addRow(objRow, t[i], -objRow[b]/t[i][b])
		}
	}
	if err := iterate(t, basis, maxIter); err != nil {
		return nil, 0, err
	}

	x = make([]float64, n)
	for i, b := range basis {
		if b >= 0 && b < n {
			x[b] = t[i][total]
		}
	}
	return x, t[m][total], nil
}

// iterate runs primal simplex pivots with Bland's rule until optimal.
func iterate(t [][]float64, basis []int, maxIter int) error {
	m := len(basis)
	total := len(t[0]) - 1
	for iter := 0; iter < maxIter; iter++ {
		// Entering column: first with negative reduced cost (Bland).
		enter := -1
		for j := 0; j < total; j++ {
			if t[m][j] < -tol {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Leaving row: min ratio, ties broken by smallest basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if basis[i] < 0 || t[i][enter] <= tol {
				continue
			}
			ratio := t[i][total] / t[i][enter]
			if ratio < bestRatio-tol ||
				(math.Abs(ratio-bestRatio) <= tol && (leave < 0 || basis[i] < basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		pivot(t, basis, leave, enter)
	}
	return ErrIterationLimit
}

// pivot makes column enter basic in row leave.
func pivot(t [][]float64, basis []int, leave, enter int) {
	p := t[leave][enter]
	row := t[leave]
	for j := range row {
		row[j] /= p
	}
	for i := range t {
		if i == leave {
			continue
		}
		if f := t[i][enter]; math.Abs(f) > 0 {
			addRow(t[i], row, -f)
		}
	}
	basis[leave] = enter
}

// addRow performs dst += f·src.
func addRow(dst, src []float64, f float64) {
	for j := range dst {
		dst[j] += f * src[j]
	}
}
