package simplex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownLP(t *testing.T) {
	// maximize 3x + 5y st x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
	p := Problem{
		C: []float64{3, 5},
		A: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B: []float64{4, 12, 18},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-36) > 1e-6 || math.Abs(x[0]-2) > 1e-6 || math.Abs(x[1]-6) > 1e-6 {
		t.Fatalf("x=%v obj=%g", x, obj)
	}
}

func TestNegativeRHS(t *testing.T) {
	// maximize -x st -x ≤ -2 (i.e. x ≥ 2) → x = 2, obj = -2.
	p := Problem{C: []float64{-1}, A: [][]float64{{-1}}, B: []float64{-2}}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-6 || math.Abs(obj+2) > 1e-6 {
		t.Fatalf("x=%v obj=%g", x, obj)
	}
}

func TestEqualityViaTwoInequalities(t *testing.T) {
	// maximize x + y st x + y = 5 (two inequalities), x ≤ 3 → obj 5.
	p := Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 1}, {-1, -1}, {1, 0}},
		B: []float64{5, -5, 3},
	}
	_, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-5) > 1e-6 {
		t.Fatalf("obj = %g", obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 3 simultaneously.
	p := Problem{C: []float64{1}, A: [][]float64{{1}, {-1}}, B: []float64{1, -3}}
	if _, _, err := Solve(p); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := Problem{C: []float64{1}, A: [][]float64{{-1}}, B: []float64{0}}
	if _, _, err := Solve(p); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestValidation(t *testing.T) {
	if _, _, err := Solve(Problem{}); err == nil {
		t.Fatal("empty problem accepted")
	}
	p := Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}
	if _, _, err := Solve(p); err == nil {
		t.Fatal("ragged constraint accepted")
	}
	p = Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}
	if _, _, err := Solve(p); err == nil {
		t.Fatal("bound mismatch accepted")
	}
}

func TestDegenerateTies(t *testing.T) {
	// Degenerate vertex (multiple constraints meet); Bland's rule must
	// still terminate at the optimum.
	p := Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{1, 1, 1},
	}
	_, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-1) > 1e-6 {
		t.Fatalf("obj = %g, want 1", obj)
	}
}

// Property: solutions are feasible and no random feasible point beats the
// reported optimum.
func TestPropOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.C {
			p.C[j] = rng.NormFloat64()
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = rng.NormFloat64()
			}
			p.B[i] = rng.Float64() * 5 // non-negative keeps x=0 feasible
		}
		x, obj, err := Solve(p)
		if err == ErrUnbounded {
			return true
		}
		if err != nil {
			return false
		}
		// Feasibility.
		for i := range p.A {
			var s float64
			for j := range x {
				if x[j] < -1e-9 {
					return false
				}
				s += p.A[i][j] * x[j]
			}
			if s > p.B[i]+1e-6 {
				return false
			}
		}
		// Sample feasible points; none should beat obj.
		for trial := 0; trial < 30; trial++ {
			cand := make([]float64, n)
			for j := range cand {
				cand[j] = rng.Float64() * 3
			}
			feas := true
			var val float64
			for i := range p.A {
				var s float64
				for j := range cand {
					s += p.A[i][j] * cand[j]
				}
				if s > p.B[i]+1e-9 {
					feas = false
					break
				}
			}
			if !feas {
				continue
			}
			for j := range cand {
				val += p.C[j] * cand[j]
			}
			if val > obj+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
