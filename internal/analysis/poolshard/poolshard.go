// Package poolshard defines an Analyzer enforcing the worker-pool
// sharding contract of internal/parallel: a closure passed to
// parallel.For / parallel.ForWith runs concurrently over disjoint
// [lo, hi) index ranges, so all of its writes must land in
// index-addressed, range-disjoint storage. The analyzer flags the
// shared-state write shapes that break that contract (racy under the
// pool, and order-nondeterministic even when "benign"):
//
//   - assignment or ++/-- to a captured variable (the classic shared
//     accumulator: sum += ... collected across chunks),
//   - assignment to a field of a captured variable or through a
//     captured pointer (same hazard, one indirection deeper),
//   - index-assignment into a captured map (Go maps are not safe for
//     concurrent writes even at disjoint keys),
//   - append to a captured slice (appends race on the shared length
//     and may reallocate the backing array mid-flight).
//
// Indexed writes into captured slices/arrays — s[i] = v, dst.Data[i*c+j]
// = v — are the intended pattern and are allowed; the closure is
// responsible for keeping indices inside its [lo, hi) shard, which the
// determinism tests pin dynamically. Closure-local variables (declared
// inside the closure, including its lo/hi parameters) are always fine.
// parallel.Do / DoWith closures are exempt: each function there is a
// distinct task, and writing one captured result slot per task (the
// endpoint-pair idiom) is the intended use.
package poolshard

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolshard",
	Doc: "flag closures passed to parallel.For/ForWith that write captured variables, " +
		"captured maps, or append to captured slices instead of writing disjoint indexed ranges",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if astutil.IsTestFile(pass.Fset, f) {
			continue // guard-rail tests construct violations on purpose
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPoolFor(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkClosure(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// isPoolFor reports whether call invokes For or ForWith of a package
// whose import path ends in "parallel" (repro/internal/parallel in the
// real tree; plain "parallel" in test corpora).
func isPoolFor(info *types.Info, call *ast.CallExpr) bool {
	f := astutil.Callee(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	if f.Name() != "For" && f.Name() != "ForWith" {
		return false
	}
	path := f.Pkg().Path()
	return path == "parallel" || pathBase(path) == "parallel"
}

func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func checkClosure(pass *analysis.Pass, lit *ast.FuncLit) {
	info := pass.TypesInfo
	litScope := info.Scopes[lit.Type]

	// local reports whether obj is declared inside the closure
	// (parameters included). Package-level objects and enclosing
	// function locals are captured shared state.
	local := func(obj types.Object) bool {
		if obj == nil || litScope == nil {
			return true // unresolved: stay quiet
		}
		for s := obj.Parent(); s != nil; s = s.Parent() {
			if s == litScope {
				return true
			}
		}
		return false
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, info, local, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, info, local, n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN { // for i, v = range ... over pre-declared vars
				if n.Key != nil {
					checkWrite(pass, info, local, n.Key)
				}
				if n.Value != nil {
					checkWrite(pass, info, local, n.Value)
				}
			}
		case *ast.CallExpr:
			if astutil.IsBuiltinCall(info, n, "append") && len(n.Args) > 0 {
				if root, indexed := writeTarget(info, n.Args[0]); root != nil && !indexed && !local(info.Uses[root]) {
					pass.Reportf(n.Pos(),
						"parallel.For closure appends to captured slice %s: appends race on the shared length and may reallocate (write disjoint indexed ranges instead)", root.Name)
				}
			}
		}
		return true
	})
}

// checkWrite classifies one assignment target inside a pool closure.
func checkWrite(pass *analysis.Pass, info *types.Info, local func(types.Object) bool, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}

	// A map index-write is unsafe on captured maps no matter how the
	// key is derived: flag it before the generic indexed-write pass.
	if ix, ok := lhs.(*ast.IndexExpr); ok && astutil.IsMapType(info.TypeOf(ix.X)) {
		if root, _ := writeTarget(info, ix.X); root != nil && !local(info.Uses[root]) {
			pass.Reportf(lhs.Pos(),
				"parallel.For closure writes captured map %s: maps are not safe for concurrent writes even at disjoint keys", root.Name)
		}
		return
	}

	root, indexed := writeTarget(info, lhs)
	if root == nil || indexed {
		return // indexed writes are the sharded-output pattern
	}
	obj := info.Uses[root]
	if obj == nil {
		return // := definition or unresolved: closure-local
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if local(obj) {
		return
	}
	if root == lhs {
		pass.Reportf(lhs.Pos(),
			"parallel.For closure writes captured variable %s: chunks race and combine order is nondeterministic (write disjoint indexed ranges instead)", root.Name)
	} else {
		pass.Reportf(lhs.Pos(),
			"parallel.For closure writes through captured %s: shared state across chunks (write disjoint indexed ranges instead)", root.Name)
	}
}

// writeTarget walks an assignment target to its root identifier,
// reporting whether the path passes through an index operation (which
// makes it a permitted range-disjoint write).
func writeTarget(info *types.Info, e ast.Expr) (root *ast.Ident, indexed bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, indexed
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			// pkg.Var resolves at the Sel, not the package name.
			if _, isPkg := info.Uses[selRoot(x)].(*types.PkgName); isPkg {
				return x.Sel, indexed
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			indexed = true
			e = x.X
		case *ast.SliceExpr:
			indexed = true
			e = x.X
		default:
			return nil, indexed
		}
	}
}

// selRoot returns the leftmost identifier of a selector chain, or nil.
func selRoot(sel *ast.SelectorExpr) *ast.Ident {
	e := ast.Expr(sel)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
