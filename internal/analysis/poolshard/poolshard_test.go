package poolshard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolshard"
)

func TestPoolshard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolshard.Analyzer, "a")
}
