// Package parallel is a minimal shadow of repro/internal/parallel so
// the poolshard corpus type-checks hermetically; the analyzer matches
// any package whose import path ends in "parallel".
package parallel

func For(n, grain int, fn func(lo, hi int)) { fn(0, n) }

func ForWith(workers, n, grain int, fn func(lo, hi int)) { fn(0, n) }

func Do(fns ...func()) {
	for _, f := range fns {
		f()
	}
}
