// Package a exercises the poolshard analyzer.
package a

import "parallel"

type acc struct{ sum float64 }

var global float64

// bad collects the shared-state write shapes that break the disjoint
// row-range contract.
func bad(xs, dst []float64, m map[int]float64, p *float64) {
	total := 0.0
	var a acc
	parallel.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i]           // want `writes captured variable total`
			a.sum += xs[i]           // want `writes through captured a`
			m[i] = xs[i]             // want `writes captured map m`
			dst = append(dst, xs[i]) // want `writes captured variable dst` `appends to captured slice dst`
		}
	})
	parallel.ForWith(2, len(xs), 1, func(lo, hi int) {
		*p = xs[lo]    // want `writes through captured p`
		global = 1     // want `writes captured variable global`
		total++        // want `writes captured variable total`
	})
	_ = total
}

// good writes only disjoint indexed ranges and closure-local state.
func good(xs, dst []float64) {
	n := len(xs)
	parallel.For(n, 1, func(lo, hi int) {
		scratch := [4]float64{} // closure-local: fine
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += xs[i]       // local accumulator: fine
			dst[i] = 2 * xs[i] // indexed write into captured slice: the intended pattern
			scratch[i%4] = xs[i]
		}
		dst[lo] = sum // still indexed: fine
	})
}

// doExempt shows the parallel.Do endpoint-pair idiom: one captured
// result slot per task function is the intended use and is not
// flagged.
func doExempt(xs []float64) (lo, hi float64) {
	parallel.Do(
		func() { lo = min(xs) },
		func() { hi = max(xs) },
	)
	return lo, hi
}

// notPool is the near-miss negative: an identical closure handed to an
// arbitrary runner is not under the pool contract.
func notPool(xs []float64) float64 {
	total := 0.0
	run(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i]
		}
	})
	return total
}

func run(fn func(lo, hi int)) { fn(0, 0) }

func min(xs []float64) float64 { return xs[0] }
func max(xs []float64) float64 { return xs[0] }
