// Package intoalias defines an Analyzer for the destination-passing
// kernel convention: every *Into function (matrix.MulInto,
// imatrix.GramEndpointsInto, sparse.MulDenseInto, ...) takes an
// explicit dst parameter that must not alias any source operand — the
// kernels zero dst up front and accumulate into it tile by tile, so an
// aliased call silently reads half-written output as input. The dense
// kernels panic on exact aliasing at runtime (checkDst); this analyzer
// is the static companion that catches the same bug at vet time, before
// a test has to execute the call.
//
// A call is flagged when an argument bound to a parameter named dst is
// syntactically the same pure reference (identifier / selector chain /
// &-of either, resolved to the same root object) as another argument.
// Distinct variables that alias through pointer copies are out of
// scope, as are intentionally self-referential APIs — in-place kernels
// in this repository take a single operand (minMaxInPlace-style) rather
// than repeating it.
//
// Elementwise kernels are exempt: AddInto, SubInto, and ScaleInto
// document "dst may alias" because output element i depends only on
// input elements i, so in-place is well defined and the hot paths use
// it deliberately (workspace reuse in the NMF multiplicative updates
// and the ISVD solve steps). Every contracting or reshaping kernel
// (Mul*, TMul*, Transpose*, Gram*, the imatrix endpoint fusions) reads
// operand elements after writing different dst elements, so for those
// the disjointness requirement is absolute.
package intoalias

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "intoalias",
	Doc: "flag calls to destination-passing *Into kernels where the dst argument " +
		"syntactically aliases a source operand",
	Run: run,
}

// aliasSafe lists the elementwise Into kernels whose documented
// contract permits dst to alias a source (dst[i] is computed from
// operand element i alone). Name-keyed because the analyzer sees only
// export data for out-of-package callees, never their doc comments.
var aliasSafe = map[string]bool{
	"AddInto":   true,
	"SubInto":   true,
	"ScaleInto": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if astutil.IsTestFile(pass.Fset, f) {
			continue // panic-guard tests alias dst on purpose
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(pass, call)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	callee := astutil.Callee(pass.TypesInfo, call)
	if callee == nil || !strings.HasSuffix(callee.Name(), "Into") || aliasSafe[callee.Name()] {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Params().Len() != len(call.Args) {
		return // variadic/spread shapes: stay quiet
	}

	type operand struct {
		expr  ast.Expr
		canon string
		root  types.Object
		isDst bool
	}
	ops := make([]operand, 0, len(call.Args)+1)
	for i, arg := range call.Args {
		canon, root := canonical(pass.TypesInfo, arg)
		ops = append(ops, operand{arg, canon, root, sig.Params().At(i).Name() == "dst"})
	}
	// A method's receiver is a source operand too (dst.XxxInto shapes,
	// should any appear).
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			canon, root := canonical(pass.TypesInfo, sel.X)
			ops = append(ops, operand{sel.X, canon, root, false})
		}
	}

	for _, dst := range ops {
		if !dst.isDst || dst.canon == "" {
			continue
		}
		for _, src := range ops {
			if src.isDst || src.canon == "" {
				continue
			}
			if src.canon == dst.canon && src.root == dst.root {
				pass.Reportf(dst.expr.Pos(),
					"%s: dst aliases source operand %s; destination-passing kernels require a disjoint dst",
					callee.Name(), dst.canon)
				break // one report per dst, however many operands repeat it
			}
		}
	}
}

// canonical renders a pure reference expression (identifier, selector
// chain, &-of either, parens) as a comparable string plus its root
// object; impure expressions (calls, indexing, literals) return "".
// The root object distinguishes shadowed names: two textually equal
// chains only alias if their roots are the same declaration.
func canonical(info *types.Info, e ast.Expr) (string, types.Object) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return canonical(info, e.X)
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return "", nil
		}
		s, root := canonical(info, e.X)
		if s == "" {
			return "", nil
		}
		return "&" + s, root
	case *ast.Ident:
		return e.Name, info.Uses[e]
	case *ast.SelectorExpr:
		s, root := canonical(info, e.X)
		if s == "" {
			return "", nil
		}
		return s + "." + e.Sel.Name, root
	}
	return "", nil
}
