package intoalias_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/intoalias"
)

func TestIntoalias(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), intoalias.Analyzer, "a")
}
