// Package a exercises the intoalias analyzer over local
// destination-passing kernels (the real ones live in internal/matrix
// and friends; the convention — a parameter named dst on a function
// whose name ends in Into — is what the analyzer keys on).
package a

type Dense struct{ Data []float64 }

func MulInto(dst, a, b *Dense) *Dense                  { return dst }
func TransposeInto(dst, a *Dense) *Dense               { return dst }
func ScaleInto(dst *Dense, s float64, a *Dense) *Dense { return dst }

// plainInto has no dst parameter, so it is never checked.
func plainInto(x, y *Dense) {}

type wrap struct{ d *Dense }

func calls(dst, a, b *Dense, w wrap, ms []*Dense) {
	MulInto(dst, a, b)       // disjoint: fine
	MulInto(dst, dst, b)     // want `MulInto: dst aliases source operand dst`
	MulInto(a, a, a)         // want `MulInto: dst aliases source operand a`
	TransposeInto(w.d, w.d)  // want `TransposeInto: dst aliases source operand w\.d`
	MulInto(dst, a, a)       // sources may repeat (Gram shapes): fine
	ScaleInto(a, 2, a)       // elementwise kernels document "dst may alias": fine
	plainInto(a, a)          // no dst parameter: fine
	MulInto(&Dense{}, a, b)  // literal dst: fine
	MulInto(ms[0], ms[0], b) // indexed operands are impure: out of scope, fine
	{
		dst := a           // shadowed: a different object than the outer dst
		MulInto(dst, b, b) // fine (and would be a false positive on text alone)
		_ = dst
	}
}
