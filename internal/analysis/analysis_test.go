package analysis

import (
	"strings"
	"testing"
)

func runnable(name string) *Analyzer {
	return &Analyzer{Name: name, Doc: "doc for " + name, Run: func(*Pass) error { return nil }}
}

func TestValidateOK(t *testing.T) {
	if err := Validate([]*Analyzer{runnable("alpha"), runnable("beta")}); err != nil {
		t.Fatalf("valid suite rejected: %v", err)
	}
	if err := Validate(nil); err != nil {
		t.Fatalf("empty suite rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		as   []*Analyzer
		want string
	}{
		{"nil analyzer", []*Analyzer{nil}, "nil"},
		{"empty name", []*Analyzer{runnable("")}, "invalid name"},
		{"upper case", []*Analyzer{runnable("DetOrder")}, "invalid name"},
		{"hyphen", []*Analyzer{runnable("det-order")}, "invalid name"},
		{"duplicate", []*Analyzer{runnable("a"), runnable("a")}, "duplicate"},
		{"no doc", []*Analyzer{{Name: "a", Run: func(*Pass) error { return nil }}}, "undocumented"},
		{"no run", []*Analyzer{{Name: "a", Doc: "d"}}, "no Run"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Validate(c.as)
			if err == nil {
				t.Fatal("invalid suite accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
