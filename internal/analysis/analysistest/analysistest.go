// Package analysistest runs an Analyzer over a GOPATH-style testdata
// corpus and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// corpora (and the tests over them) would port unchanged.
//
// Layout: <testdata>/src/<pkgpath>/*.go. Imports resolve first against
// the corpus roots (so a corpus can ship tiny shadow packages for
// "time", "math/rand", "fmt", or "parallel" and stay hermetic and
// fast), then fall back to type-checking the real standard library from
// GOROOT source.
//
// Expectations: a comment of the form
//
//	// want "regexp" `another regexp`
//
// on any line asserts that the analyzer reports, on that same line, one
// diagnostic matching each listed pattern — and the harness also
// asserts the converse, that every reported diagnostic is wanted.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each package path from dir/src, applies the analyzer, and
// reports want-mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgPaths {
		pkg, files, info, err := ld.load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		var got []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { got = append(got, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s failed: %v", path, a.Name, err)
			continue
		}
		checkWants(t, ld.fset, files, got)
	}
}

// loader type-checks corpus packages, preferring corpus roots over the
// real standard library so tests stay hermetic.
type loader struct {
	fset   *token.FileSet
	root   string
	pkgs   map[string]*entry
	fallbk types.ImporterFrom
}

type entry struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newLoader(srcRoot string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		root:   srcRoot,
		pkgs:   make(map[string]*entry),
		fallbk: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

func (ld *loader) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	e := ld.loadEntry(path)
	return e.pkg, e.files, e.info, e.err
}

func (ld *loader) loadEntry(path string) *entry {
	if e, ok := ld.pkgs[path]; ok {
		return e
	}
	e := &entry{}
	ld.pkgs[path] = e // set first: cycles fail in the type checker, not here

	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	names, err := sortedGoFiles(dir)
	if err != nil {
		e.err = err
		return e
	}
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			e.err = err
			return e
		}
		e.files = append(e.files, f)
	}
	e.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: (*corpusImporter)(ld)}
	e.pkg, e.err = conf.Check(path, ld.fset, e.files, e.info)
	return e
}

// corpusImporter resolves imports for the loader: corpus packages by
// path under the src root, everything else via the GOROOT source
// importer.
type corpusImporter loader

func (ci *corpusImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(ci)
	if dir := filepath.Join(ld.root, filepath.FromSlash(path)); dirExists(dir) {
		e := ld.loadEntry(path)
		return e.pkg, e.err
	}
	return ld.fallbk.Import(path)
}

func sortedGoFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	return names, nil
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

// A want is one expected-diagnostic pattern at a file line.
type want struct {
	posn    string // "file:line" key
	re      *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, got []analysis.Diagnostic) {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := wantPatterns(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				pats, err := splitPatterns(rest)
				if err != nil {
					t.Errorf("%s: bad want comment: %v", key, err)
					continue
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", key, p, err)
						continue
					}
					wants = append(wants, want{posn: key, re: re})
				}
			}
		}
	}

	for _, d := range got {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for i := range wants {
			w := &wants[i]
			if w.matched || w.posn != key {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matching %q", w.posn, w.re)
		}
	}
}

// wantPatterns extracts the pattern list of a want comment: either the
// whole comment is "// want <patterns>", or — so a corpus can attach an
// expectation to a line whose *comment itself* is the subject under
// test (a malformed //ivmf: directive) — a trailing "// want
// <patterns>" marker inside the comment text.
func wantPatterns(text string) (string, bool) {
	if i := strings.Index(text, "// want "); i > 0 {
		return text[i+len("// want "):], true
	}
	trimmed := strings.TrimLeft(strings.TrimPrefix(text, "//"), " \t")
	if rest, ok := strings.CutPrefix(trimmed, "want "); ok {
		return rest, true
	}
	return "", false
}

// splitPatterns parses the space-separated quoted regexps of a want
// comment ("..." or `...`).
func splitPatterns(s string) ([]string, error) {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			pats = append(pats, p)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return pats, nil
}
