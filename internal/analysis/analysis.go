// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough Analyzer/Pass/Diagnostic
// surface for this repository's ivmfcheck suite to be written in the
// standard shape, without importing x/tools (the module has no external
// dependencies, and the checkers need nothing beyond go/ast and
// go/types).
//
// An Analyzer inspects one type-checked package at a time and reports
// position-tagged diagnostics. Analyzers in this repository are
// stateless and independent: there are no inter-analyzer result
// dependencies and no cross-package facts — every contract they enforce
// (see internal/analysis/directive) is checkable from a single
// package's syntax and types. That restriction is what makes the
// stdlib-only driver in internal/analysis/checker sufficient.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. It mirrors the x/tools type
// of the same name so the checkers could be ported to a real
// golang.org/x/tools/go/analysis driver by changing only imports.
type Analyzer struct {
	// Name identifies the analyzer; it is used as the command-line
	// flag that enables it. Must be a valid Go identifier, lower case.
	Name string

	// Doc is the one-line summary followed by a detailed description.
	Doc string

	// Run applies the analyzer to a single package.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message. Messages are
// complete sentences without a trailing period, per vet convention.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Validate checks that the analyzers are well formed (non-empty
// lower-case identifier names, unique, runnable) and returns the first
// problem found.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a == nil {
			return fmt.Errorf("nil *Analyzer")
		}
		if a.Name == "" || strings.ToLower(a.Name) != a.Name || strings.ContainsAny(a.Name, " \t-") {
			return fmt.Errorf("analyzer %q has an invalid name (want lower-case identifier)", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			return fmt.Errorf("analyzer %q is undocumented", a.Name)
		}
		if a.Run == nil {
			return fmt.Errorf("analyzer %q has no Run function", a.Name)
		}
	}
	return nil
}
