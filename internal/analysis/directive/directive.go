// Package directive parses the repository's //ivmf: source annotations
// — the machine-checkable contract markers that the ivmfcheck analyzers
// enforce:
//
//	//ivmf:deterministic   (func decl or package clause)
//	//ivmf:noalloc         (func decl only)
//
// A deterministic function must produce bitwise-identical results for
// any worker count; detorder flags nondeterminism sources inside it. A
// noalloc function is a steady-state hot path that must not allocate on
// non-panicking paths; noalloc flags allocation sites inside it.
//
// The grammar is deliberately rigid so a typo cannot silently disable a
// contract: a directive comment is exactly "//ivmf:" immediately
// followed by a known directive name and nothing else (trailing spaces
// tolerated). Anything that *looks like* an attempted directive —
// unknown name, space between "//" and "ivmf:", a block comment, a
// directive on a var/type declaration or loose inside a function body —
// is collected as an Error, and the detorder analyzer (the suite's
// designated owner of directive hygiene) reports every such Error as a
// diagnostic. Malformed directives are therefore loud, never ignored.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Kinds records which directives are attached to one function.
type Kinds struct {
	Deterministic bool
	NoAlloc       bool
}

// An Error is a malformed or misplaced directive.
type Error struct {
	Pos     token.Pos
	Message string
}

// A Set holds the parsed directives of one package.
type Set struct {
	// PkgDeterministic is true if any file's package clause carries
	// //ivmf:deterministic; the contract then covers every function in
	// the package's non-test files (a deterministic package's tests
	// are free to use maps, clocks, and shared rand; annotate test
	// helpers individually if they need the contract).
	PkgDeterministic bool

	// Funcs maps annotated function declarations to their directives.
	Funcs map[*ast.FuncDecl]Kinds

	// Errors lists malformed/misplaced directives, in file order.
	Errors []Error

	// testFuncs marks functions declared in _test.go files, which the
	// package-level annotation does not cover.
	testFuncs map[*ast.FuncDecl]bool
}

// FuncDeterministic reports whether fd is covered by the deterministic
// contract, either directly or through a package-clause annotation.
func (s *Set) FuncDeterministic(fd *ast.FuncDecl) bool {
	if s.Funcs[fd].Deterministic {
		return true
	}
	return s.PkgDeterministic && !s.testFuncs[fd]
}

// FuncNoAlloc reports whether fd is covered by the noalloc contract.
func (s *Set) FuncNoAlloc(fd *ast.FuncDecl) bool {
	return s.Funcs[fd].NoAlloc
}

const prefix = "//ivmf:"

// known directive names and where they may be attached.
var known = map[string]struct{ pkgOK bool }{
	"deterministic": {pkgOK: true},
	"noalloc":       {pkgOK: false},
}

// Collect parses the //ivmf: directives of the given files (one
// package). It never fails: malformed directives land in Set.Errors.
func Collect(fset *token.FileSet, files []*ast.File) *Set {
	s := &Set{
		Funcs:     make(map[*ast.FuncDecl]Kinds),
		testFuncs: make(map[*ast.FuncDecl]bool),
	}
	for _, f := range files {
		inTest := strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && inTest {
				s.testFuncs[fd] = true
			}
		}
		collectFile(s, f)
	}
	return s
}

func collectFile(s *Set, f *ast.File) {
	// Comment groups that legitimately may carry directives: the
	// package doc and each function's doc.
	attached := make(map[*ast.CommentGroup]string) // group -> "package" | "func"
	funcOf := make(map[*ast.CommentGroup]*ast.FuncDecl)
	if f.Doc != nil {
		attached[f.Doc] = "package"
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			attached[fd.Doc] = "func"
			funcOf[fd.Doc] = fd
		}
	}

	for _, cg := range f.Comments {
		where := attached[cg]
		for _, c := range cg.List {
			name, errMsg := parseComment(c.Text)
			if errMsg != "" {
				s.Errors = append(s.Errors, Error{Pos: c.Pos(), Message: errMsg})
				continue
			}
			if name == "" {
				continue // not directive-like at all
			}
			switch where {
			case "package":
				if !known[name].pkgOK {
					s.Errors = append(s.Errors, Error{Pos: c.Pos(),
						Message: "ivmf directive " + prefix + name + " applies to functions, not packages"})
					continue
				}
				s.PkgDeterministic = true
			case "func":
				fd := funcOf[cg]
				k := s.Funcs[fd]
				switch name {
				case "deterministic":
					k.Deterministic = true
				case "noalloc":
					k.NoAlloc = true
				}
				s.Funcs[fd] = k
			default:
				s.Errors = append(s.Errors, Error{Pos: c.Pos(),
					Message: "misplaced ivmf directive: " + prefix + name + " must be in the doc comment of a function declaration or the package clause"})
			}
		}
	}
}

// parseComment classifies one raw comment. It returns the directive
// name for a well-formed directive, "" for an ordinary comment, or a
// non-empty error message for anything that attempts to be a directive
// but is malformed.
func parseComment(text string) (name, errMsg string) {
	if strings.HasPrefix(text, "/*") {
		if strings.Contains(text, "ivmf:") {
			return "", "ivmf directives must be line comments (//ivmf:name), not block comments"
		}
		return "", ""
	}
	rest, ok := strings.CutPrefix(text, prefix)
	if !ok {
		// "// ivmf:deterministic" is a classic typo that would
		// silently disable the contract; flag any spaced variant.
		trimmed := strings.TrimLeft(strings.TrimPrefix(text, "//"), " \t")
		if strings.HasPrefix(trimmed, "ivmf:") && !strings.HasPrefix(text, prefix) {
			return "", "malformed ivmf directive: no space is allowed between // and ivmf: (write " + prefix + "name)"
		}
		return "", ""
	}
	rest = strings.TrimRight(rest, " \t")
	if rest == "" {
		return "", "malformed ivmf directive: missing directive name after " + prefix
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return "", "malformed ivmf directive " + prefix + rest[:i] + ": trailing text is not allowed (rationale goes in the doc comment)"
	}
	if _, ok := known[rest]; !ok {
		return "", "unknown ivmf directive " + prefix + rest + " (known: deterministic, noalloc)"
	}
	return rest, ""
}
