package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, filename, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func collect(t *testing.T, src string) *Set {
	t.Helper()
	fset, f := parse(t, "p.go", src)
	return Collect(fset, []*ast.File{f})
}

func errorMessages(s *Set) []string {
	msgs := make([]string, len(s.Errors))
	for i, e := range s.Errors {
		msgs[i] = e.Message
	}
	return msgs
}

func TestWellFormedFuncDirectives(t *testing.T) {
	s := collect(t, `package p

// F is hot.
//
//ivmf:deterministic
//ivmf:noalloc
func F() {}

func G() {}
`)
	if len(s.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", errorMessages(s))
	}
	var fF, fG *ast.FuncDecl
	for fd := range s.Funcs {
		if fd.Name.Name == "F" {
			fF = fd
		}
	}
	if fF == nil {
		t.Fatal("F not collected")
	}
	if !s.FuncDeterministic(fF) || !s.FuncNoAlloc(fF) {
		t.Errorf("F kinds = %+v, want both directives", s.Funcs[fF])
	}
	_ = fG
	if s.PkgDeterministic {
		t.Error("package should not be deterministic")
	}
}

func TestPackageDeterministic(t *testing.T) {
	s := collect(t, `// Package p is fully deterministic.
//
//ivmf:deterministic
package p

func F() {}
`)
	if len(s.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", errorMessages(s))
	}
	if !s.PkgDeterministic {
		t.Fatal("package-clause directive not honored")
	}
}

func TestPackageAnnotationSkipsTestFiles(t *testing.T) {
	fset := token.NewFileSet()
	lib, err := parser.ParseFile(fset, "p.go", `//ivmf:deterministic
package p

func Lib() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tst, err := parser.ParseFile(fset, "p_test.go", `package p

func TestLib() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := Collect(fset, []*ast.File{lib, tst})
	var libFn, testFn *ast.FuncDecl
	for _, f := range []*ast.File{lib, tst} {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				switch fd.Name.Name {
				case "Lib":
					libFn = fd
				case "TestLib":
					testFn = fd
				}
			}
		}
	}
	if !s.FuncDeterministic(libFn) {
		t.Error("package annotation should cover non-test functions")
	}
	if s.FuncDeterministic(testFn) {
		t.Error("package annotation must not cover _test.go functions")
	}
}

// TestMalformed pins the contract of the satellite task: every way of
// getting an //ivmf: directive wrong is an error, never silence.
func TestMalformed(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string // substring of the single expected error
	}{
		{"unknown name", `package p

//ivmf:frobnicate
func F() {}
`, "unknown ivmf directive"},
		{"missing name", `package p

//ivmf:
func F() {}
`, "missing directive name"},
		{"trailing text", `package p

//ivmf:deterministic because reasons
func F() {}
`, "trailing text is not allowed"},
		{"space before ivmf", `package p

// ivmf:deterministic
func F() {}
`, "no space is allowed between // and ivmf:"},
		{"block comment", `package p

/* ivmf:deterministic */
func F() {}
`, "must be line comments"},
		{"noalloc on package", `//ivmf:noalloc
package p
`, "applies to functions, not packages"},
		{"on var decl", `package p

//ivmf:deterministic
var X int
`, "misplaced ivmf directive"},
		{"inside function body", `package p

func F() {
	//ivmf:noalloc
	_ = 1
}
`, "misplaced ivmf directive"},
		{"floating comment", `package p

//ivmf:deterministic

func F() {}
`, "misplaced ivmf directive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := collect(t, c.src)
			if len(s.Errors) != 1 {
				t.Fatalf("got %d errors (%v), want 1", len(s.Errors), errorMessages(s))
			}
			if !strings.Contains(s.Errors[0].Message, c.wantErr) {
				t.Errorf("error %q does not mention %q", s.Errors[0].Message, c.wantErr)
			}
			if !s.Errors[0].Pos.IsValid() {
				t.Error("error has no position")
			}
			// A malformed directive never half-applies.
			if s.PkgDeterministic || len(s.Funcs) != 0 {
				t.Errorf("malformed directive took effect: pkg=%v funcs=%d", s.PkgDeterministic, len(s.Funcs))
			}
		})
	}
}

func TestOrdinaryCommentsIgnored(t *testing.T) {
	s := collect(t, `package p

// This function mentions determinism and ivmf prose without being a
// directive; see the ivmf: spec elsewhere. Not flagged: the prefix
// "//ivmf:" never occurs at a comment start.
func F() {}
`)
	if len(s.Errors) != 0 || len(s.Funcs) != 0 || s.PkgDeterministic {
		t.Errorf("prose comments misparsed: errors=%v funcs=%d pkg=%v",
			errorMessages(s), len(s.Funcs), s.PkgDeterministic)
	}
}
