package checker

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/detorder"
	"repro/internal/analysis/intoalias"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/poolshard"
)

// suite mirrors cmd/ivmfcheck's analyzer list.
var suite = []*analysis.Analyzer{
	detorder.Analyzer, noalloc.Analyzer, poolshard.Analyzer, intoalias.Analyzer,
}

func writeCfg(t *testing.T, dir string, cfg map[string]any) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAnalyzeUnit drives the vet-protocol entry point over a one-file,
// import-free unit: diagnostics found, plain output formatted, facts
// file written.
func TestAnalyzeUnit(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	const code = `package p

//ivmf:deterministic
func F(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "p.vetx")
	cfg := writeCfg(t, dir, map[string]any{
		"ID":         "p",
		"Compiler":   "gc",
		"ImportPath": "p",
		"GoVersion":  "go1.24",
		"GoFiles":    []string{src},
		"VetxOutput": vetx,
	})

	var out strings.Builder
	n, err := AnalyzeUnit(cfg, suite, &out, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("got %d diagnostics, want 1:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "range over map in deterministic function F") {
		t.Errorf("unexpected output: %s", out.String())
	}
	if !strings.Contains(out.String(), "p.go:6:") {
		t.Errorf("output misses file:line:col position: %s", out.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

// TestAnalyzeUnitJSON checks the -json output shape.
func TestAnalyzeUnitJSON(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	const code = `package p

//ivmf:noalloc
func F(n int) []int {
	return make([]int, n)
}
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := writeCfg(t, dir, map[string]any{
		"ID":         "pid",
		"ImportPath": "p",
		"GoFiles":    []string{src},
	})
	var out strings.Builder
	n, err := AnalyzeUnit(cfg, suite, &out, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("got %d diagnostics, want 1:\n%s", n, out.String())
	}
	var decoded map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, out.String())
	}
	diags := decoded["pid"]["noalloc"]
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "make allocates") {
		t.Errorf("unexpected JSON diagnostics: %+v", decoded)
	}
}

// TestAnalyzeUnitVetxOnly checks the facts-only fast path for
// dependency units: nothing parsed, empty facts file written.
func TestAnalyzeUnitVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "dep.vetx")
	cfg := writeCfg(t, dir, map[string]any{
		"ID":         "dep",
		"ImportPath": "dep",
		"GoFiles":    []string{filepath.Join(dir, "does-not-exist.go")},
		"VetxOnly":   true,
		"VetxOutput": vetx,
	})
	n, err := AnalyzeUnit(cfg, suite, &strings.Builder{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("VetxOnly unit reported %d diagnostics", n)
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
	if len(data) != 0 {
		t.Errorf("facts file should be empty, got %d bytes", len(data))
	}
}

// TestAnalyzeUnitTypecheckFailure checks both sides of
// SucceedOnTypecheckFailure.
func TestAnalyzeUnitTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	if err := os.WriteFile(src, []byte("package p\n\nfunc F() { undefined() }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	base := map[string]any{"ID": "p", "ImportPath": "p", "GoFiles": []string{src}}

	cfg := writeCfg(t, dir, base)
	if _, err := AnalyzeUnit(cfg, suite, &strings.Builder{}, false); err == nil {
		t.Error("typecheck failure should be an error by default")
	}

	base["SucceedOnTypecheckFailure"] = true
	cfg = writeCfg(t, dir, base)
	if n, err := AnalyzeUnit(cfg, suite, &strings.Builder{}, false); err != nil || n != 0 {
		t.Errorf("SucceedOnTypecheckFailure: got n=%d err=%v, want 0, nil", n, err)
	}
}

// TestPrintFlagsShape pins the -flags handshake payload cmd/go parses.
func TestPrintFlagsShape(t *testing.T) {
	// printFlags writes to os.Stdout for cmd/go; re-derive the payload
	// it marshals and validate the contract fields here.
	flags := []jsonFlag{{Name: "json", Bool: true, Usage: "emit JSON diagnostics"}}
	for _, a := range suite {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, f := range decoded {
		names[f["Name"].(string)] = true
		if _, ok := f["Bool"].(bool); !ok {
			t.Errorf("flag %v missing Bool", f["Name"])
		}
	}
	for _, want := range []string{"json", "detorder", "noalloc", "poolshard", "intoalias"} {
		if !names[want] {
			t.Errorf("flag %q missing from handshake", want)
		}
	}
}
