// Package checker is a standard-library-only driver for the analyzers
// in internal/analysis: it speaks cmd/go's vet-tool protocol (the same
// wire contract as golang.org/x/tools/go/analysis/unitchecker), so a
// binary built on it runs under
//
//	go vet -vettool=$(which ivmfcheck) ./...
//
// and it also runs standalone: invoked with package patterns instead of
// a .cfg file it re-execs itself through "go vet -vettool=<self>",
// which delegates build-tag handling, test variants, caching, and
// per-package scheduling to the go command instead of reimplementing a
// package loader.
//
// Protocol recap (all driven by cmd/go):
//
//   - "<tool> -V=full" prints an identity line used for build caching;
//   - "<tool> -flags" prints a JSON description of the tool's flags;
//   - "<tool> [flags] <unit>.cfg" analyzes one package unit: the cfg
//     JSON lists the unit's Go files and maps each import path to the
//     export data of the already-compiled dependency, which this driver
//     feeds to go/importer's gc importer. Diagnostics go to stderr as
//     "file:line:col: message"; exit status 2 means findings.
//
// The suite's analyzers exchange no cross-package facts, so dependency
// units (VetxOnly) are satisfied by writing an empty facts file without
// parsing anything.
package checker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Main is the entry point for a multichecker binary over the given
// analyzers. It does not return.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "%s: statically enforce the ivmf determinism/noalloc/pool-sharding contracts\n\n", progname)
		fmt.Fprintf(os.Stderr, "Usage: %s [-detorder] [-noalloc] [-poolshard] [-intoalias] [packages|unit.cfg]\n\n", progname)
		fmt.Fprintf(os.Stderr, "Run over package patterns (delegates to 'go vet -vettool=%s'),\n", progname)
		fmt.Fprintf(os.Stderr, "or as a vet tool: go vet -vettool=$(command -v %s) ./...\n\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fmt.Fprintln(os.Stderr, "\nFlags:")
		flag.PrintDefaults()
	}

	flag.Var(versionFlag{}, "V", "print version and exit (-V=full, used by cmd/go)")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (used by cmd/go)")
	jsonOut := flag.Bool("json", false, "emit JSON diagnostics")
	enable := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enable[a.Name] = flag.Bool(a.Name, false, "enable only the "+a.Name+" analyzer (default: all)")
	}
	flag.Parse()

	if *printflags {
		printFlags(analyzers)
		os.Exit(0)
	}

	// If any per-analyzer flag was set, run just that subset.
	selected := analyzers
	if anySet(enable) {
		selected = nil
		for _, a := range analyzers {
			if *enable[a.Name] {
				selected = append(selected, a)
			}
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := AnalyzeUnit(args[0], selected, os.Stderr, *jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if diags > 0 {
			os.Exit(2)
		}
		os.Exit(0)
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	delegate(args)
}

// delegate re-execs through go vet so cmd/go handles package loading,
// and propagates its exit status.
func delegate(args []string) {
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("cannot locate own executable for -vettool delegation: %v", err)
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		log.Fatalf("standalone mode needs the go tool on PATH: %v", err)
	}
	// Forward the original flags untouched: the flag names accepted
	// here are exactly the ones go vet validates via the -flags
	// handshake.
	cmd := exec.Command(goTool, append([]string{"vet", "-vettool=" + self}, os.Args[1:]...)...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		log.Fatal(err)
	}
	os.Exit(0)
}

// versionFlag implements -V=full, replicating the identity-line format
// cmd/go's tool-ID probe parses (see unitchecker's versionFlag).
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	// The go command keys its vet result cache on this line, so it
	// must change whenever the tool's behavior could: hash the binary.
	progname := os.Args[0]
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// printFlags answers cmd/go's "-flags" handshake: the JSON list of
// flags the user may pass through "go vet".
func printFlags(analyzers []*analysis.Analyzer) {
	flags := []jsonFlag{{Name: "json", Bool: true, Usage: "emit JSON diagnostics"}}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: strings.SplitN(a.Doc, "\n", 2)[0]})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func anySet(m map[string]*bool) bool {
	for _, v := range m {
		if *v {
			return true
		}
	}
	return false
}

// vetConfig mirrors the JSON configuration cmd/go writes for each
// package unit (unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// AnalyzeUnit runs the analyzers over one vet unit described by
// cfgFile, printing diagnostics to out. It returns the number of
// diagnostics. Exported for the driver and for tests.
func AnalyzeUnit(cfgFile string, analyzers []*analysis.Analyzer, out io.Writer, jsonOut bool) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// The suite exports no facts, so dependency units need only the
	// (empty) facts file cmd/go expects.
	if cfg.VetxOnly {
		return 0, writeVetx(&cfg)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx(&cfg)
			}
			return 0, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(&cfg)
		}
		return 0, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	type finding struct {
		analyzer string
		d        analysis.Diagnostic
	}
	var findings []finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { findings = append(findings, finding{a.Name, d}) },
		}
		if err := a.Run(pass); err != nil {
			return 0, fmt.Errorf("analyzer %s on %s: %v", a.Name, cfg.ImportPath, err)
		}
	}
	sort.SliceStable(findings, func(i, j int) bool { return findings[i].d.Pos < findings[j].d.Pos })

	if jsonOut {
		// Same nesting shape as x/tools: {pkgID: {analyzer: [diag...]}}.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := make(map[string][]jsonDiag)
		for _, f := range findings {
			byAnalyzer[f.analyzer] = append(byAnalyzer[f.analyzer], jsonDiag{
				Posn: fset.Position(f.d.Pos).String(), Message: f.d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "\t")
		if err := enc.Encode(map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}); err != nil {
			return 0, err
		}
	} else {
		cwd, _ := os.Getwd()
		for _, f := range findings {
			posn := fset.Position(f.d.Pos)
			file := posn.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			fmt.Fprintf(out, "%s:%d:%d: %s\n", file, posn.Line, posn.Column, f.d.Message)
		}
	}

	if err := writeVetx(&cfg); err != nil {
		return 0, err
	}
	return len(findings), nil
}

// writeVetx writes the (empty) facts file for dependent units.
func writeVetx(cfg *vetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, nil, 0o666)
}

// typecheck type-checks the unit's files against the export data of
// its already-compiled dependencies.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for import %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
