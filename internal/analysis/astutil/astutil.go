// Package astutil holds the small typed-AST resolution helpers shared
// by the ivmfcheck analyzers.
package astutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncObj resolves a call-position expression (identifier, selector, or
// parenthesized form of either) to the *types.Func it uses, or nil if
// it is not a direct reference to a named function or method.
func FuncObj(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// Callee resolves the callee of call to a *types.Func, or nil for
// builtins, conversions, and calls through function-typed values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	return FuncObj(info, call.Fun)
}

// IsBuiltinCall reports whether call invokes the universe-scope builtin
// of the given name (make, new, append, panic, ...), resolved through
// the type checker so shadowed identifiers do not count.
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// PkgFunc reports whether f is the package-level function (no receiver)
// named name in the package with the given import path.
func PkgFunc(f *types.Func, path, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == path && f.Name() == name
}

// IsTestFile reports whether f was parsed from a _test.go file. The
// contract analyzers that police call shapes (poolshard, intoalias)
// skip test files: the runtime guards they mirror (checkDst panics,
// the race detector) still cover tests, and guard-rail tests must be
// able to construct the very violations the guards reject.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// IsMapType reports whether t's underlying type (through named types)
// is a map.
func IsMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
