// Package noalloc defines an Analyzer enforcing the repository's
// allocation-free contract: functions annotated //ivmf:noalloc are
// steady-state hot paths (the MulInto / GramEndpointsInto / TopN-heap
// family) whose non-panicking execution must not allocate. The analyzer
// flags the syntactic allocation sites the dynamic budgets in
// allocs_test.go can only sample:
//
//   - make and new,
//   - append (growth cannot be bounded statically, so any append is a
//     potential reallocation of the backing array),
//   - escaping composite literals: &T{...}, and slice/map literals
//     (which always allocate their backing store),
//   - string concatenation (+ / += on strings),
//   - calls into package fmt (formatting allocates).
//
// Arguments of panic(...) calls are exempt: a panicking shape-check may
// format its message, since the contract covers only the non-panicking
// steady state. The check is per-function and syntactic — callees are
// not followed; allocs_test.go remains the dynamic, cross-call
// backstop.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astutil"
	"repro/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "flag allocation sites (make, new, append, escaping composite literals, " +
		"string concatenation, fmt calls) inside //ivmf:noalloc functions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	set := directive.Collect(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !set.FuncNoAlloc(fd) {
				continue
			}
			w := &walker{pass: pass, fd: fd}
			w.walk(fd.Body)
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
	fd   *ast.FuncDecl
}

func (w *walker) reportf(pos token.Pos, format string, args ...any) {
	args = append(args, w.fd.Name.Name)
	w.pass.Reportf(pos, format+" in noalloc function %s", args...)
}

// walk inspects n, skipping the arguments of panic(...) calls.
func (w *walker) walk(n ast.Node) {
	info := w.pass.TypesInfo
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if astutil.IsBuiltinCall(info, n, "panic") {
				return false // panic paths are exempt from the contract
			}
			w.checkCall(n)
		case *ast.CompositeLit:
			w.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.reportf(n.Pos(), "composite literal escapes to the heap via &")
					return false // don't re-flag the literal itself
				}
			}
		case *ast.BinaryExpr:
			// Constant folds ("a"+"b") happen at compile time.
			if n.Op == token.ADD && isString(info.TypeOf(n.X)) && info.Types[n].Value == nil {
				w.reportf(n.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				w.reportf(n.TokPos, "string concatenation allocates")
			}
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr) {
	info := w.pass.TypesInfo
	switch {
	case astutil.IsBuiltinCall(info, call, "make"):
		w.reportf(call.Pos(), "make allocates")
	case astutil.IsBuiltinCall(info, call, "new"):
		w.reportf(call.Pos(), "new allocates")
	case astutil.IsBuiltinCall(info, call, "append"):
		w.reportf(call.Pos(), "append may grow and reallocate its backing array")
	default:
		if f := astutil.Callee(info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			w.reportf(call.Pos(), "fmt.%s allocates", f.Name())
		}
	}
}

func (w *walker) checkCompositeLit(lit *ast.CompositeLit) {
	t := w.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		w.reportf(lit.Pos(), "slice literal allocates its backing array")
	case *types.Map:
		w.reportf(lit.Pos(), "map literal allocates")
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
