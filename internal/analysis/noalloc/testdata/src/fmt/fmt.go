// Package fmt is a minimal shadow of the standard library package so
// the noalloc corpus type-checks hermetically.
package fmt

func Sprintf(format string, args ...any) string { return format }
func Errorf(format string, args ...any) error   { return nil }
