// Package a exercises the noalloc analyzer.
package a

import "fmt"

type point struct{ x, y float64 }

// bad gathers every flagged allocation site.
//
//ivmf:noalloc
func bad(dst, xs []float64, name string) float64 {
	buf := make([]float64, 4)   // want `make allocates`
	p := new(point)             // want `new allocates`
	xs = append(xs, 1)          // want `append may grow and reallocate`
	lit := []float64{1, 2}      // want `slice literal allocates its backing array`
	idx := map[string]int{}     // want `map literal allocates`
	pp := &point{1, 2}          // want `composite literal escapes to the heap`
	s := name + "!"             // want `string concatenation allocates`
	s += name                   // want `string concatenation allocates`
	msg := fmt.Sprintf("%v", s) // want `fmt\.Sprintf allocates`
	_, _, _, _, _ = buf, p, lit, idx, pp
	_ = msg
	return xs[0] + dst[0]
}

// good is allocation-free on its steady-state path: indexed writes,
// value composite literals, constant-folded strings, and a formatting
// call that only runs on the exempt panic path.
//
//ivmf:noalloc
func good(dst, a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mismatch: %d vs %d", len(a), len(b)))
	}
	pt := point{2, 3}                   // value literal: stays off the heap
	const greeting = "hello " + "world" // constant fold: no runtime concat
	for i := range a {
		dst[i] = a[i]*pt.x + b[i]*pt.y
	}
	_ = greeting
}

// unannotated is the near-miss negative: allocation galore, no
// contract, no diagnostics.
func unannotated(name string) []int {
	_ = fmt.Sprintf("%s", name+"!")
	return append(make([]int, 0, 4), 1)
}
