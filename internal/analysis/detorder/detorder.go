// Package detorder defines an Analyzer enforcing the repository's
// determinism contract: functions (or whole packages) annotated
// //ivmf:deterministic must be bitwise-reproducible for any worker
// count, so the analyzer flags the language- and library-level
// nondeterminism sources inside them:
//
//   - range over a map (iteration order is randomized),
//   - time.Now / time.Since (wall-clock dependence),
//   - package-level math/rand and math/rand/v2 functions, which draw
//     from shared, randomly-seeded global state (explicitly seeded
//     rand.New(rand.NewSource(...)) generators are fine and are the
//     repository idiom),
//   - multi-case select statements (ready cases are chosen at random).
//
// detorder is also the designated owner of //ivmf: directive hygiene:
// every malformed or misplaced directive collected by
// internal/analysis/directive is reported here, so a typo'd annotation
// is a CI failure rather than a silently disabled contract.
package detorder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astutil"
	"repro/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flag nondeterminism sources (map range, time.Now, global math/rand, multi-case select) " +
		"inside //ivmf:deterministic functions, and all malformed //ivmf: directives",
	Run: run,
}

// randConstructors are the package-level math/rand functions that only
// build explicitly-seeded generators and are therefore deterministic.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	set := directive.Collect(pass.Fset, pass.Files)
	for _, e := range set.Errors {
		pass.Reportf(e.Pos, "%s", e.Message)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !set.FuncDeterministic(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Identifiers that are the Sel of a selector are resolved at the
	// selector; visiting them again as bare idents would double-report.
	selSel := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			selSel[sel.Sel] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if astutil.IsMapType(info.TypeOf(n.X)) {
				pass.Reportf(n.Range,
					"range over map in deterministic function %s: iteration order is randomized (iterate sorted keys instead)", fd.Name.Name)
			}
		case *ast.SelectStmt:
			if len(n.Body.List) >= 2 {
				pass.Reportf(n.Select,
					"multi-case select in deterministic function %s: case choice among ready channels is randomized", fd.Name.Name)
			}
		case *ast.SelectorExpr:
			checkFuncRef(pass, fd, info.Uses[n.Sel], n.Sel)
		case *ast.Ident:
			if !selSel[n] {
				checkFuncRef(pass, fd, info.Uses[n], n)
			}
		}
		return true
	})
}

// checkFuncRef flags any reference (call or value use) to a wall-clock
// or global-generator function.
func checkFuncRef(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object, at *ast.Ident) {
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Float64) are fine
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" {
			pass.Reportf(at.Pos(),
				"time.%s in deterministic function %s: wall-clock values are not reproducible", f.Name(), fd.Name.Name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[f.Name()] {
			pass.Reportf(at.Pos(),
				"global %s.%s in deterministic function %s: draws from shared nondeterministic state (use an explicitly seeded rand.New(rand.NewSource(...)))",
				f.Pkg().Name(), f.Name(), fd.Name.Name)
		}
	}
}
