// Package b carries //ivmf:deterministic on its package clause: every
// function in the package is covered without per-function annotations.
//
//ivmf:deterministic
package b

func anyFunc(m map[int]int) int {
	s := 0
	for _, v := range m { // want `range over map in deterministic function anyFunc`
		s += v
	}
	return s
}

func alsoCovered(xs []int) int {
	s := 0
	for _, v := range xs { // slices are ordered: no diagnostic
		s += v
	}
	return s
}
