// Package time is a minimal shadow of the standard library package so
// the detorder corpus type-checks hermetically.
package time

type Time struct{ sec int64 }

type Duration int64

func Now() Time                    { return Time{} }
func Since(t Time) Duration        { return 0 }
func Unix(sec, nsec int64) Time    { return Time{sec: sec} }
func (t Time) Sub(u Time) Duration { return 0 }
