// Package a exercises the detorder analyzer: nondeterminism sources
// are flagged only inside annotated functions, and malformed //ivmf:
// directives are flagged wherever they appear.
package a

import (
	"math/rand"
	"time"
)

// bad gathers every flagged nondeterminism source.
//
//ivmf:deterministic
func bad(m map[string]int, ch chan int) int {
	s := 0
	for k := range m { // want `range over map in deterministic function bad`
		s += m[k]
	}
	_ = time.Now()                   // want `time\.Now in deterministic function bad`
	d := time.Since(time.Unix(0, 0)) // want `time\.Since in deterministic function bad`
	_ = d
	s += rand.Int() // want `global rand\.Int in deterministic function bad`
	rand.Seed(42)   // want `global rand\.Seed in deterministic function bad`
	select { // want `multi-case select in deterministic function bad`
	case v := <-ch:
		s += v
	default:
	}
	return s
}

// good shows the sanctioned idioms: an explicitly seeded generator,
// slice iteration, and a single-case (blocking) select.
//
//ivmf:deterministic
func good(xs []int, ch chan int) int {
	rng := rand.New(rand.NewSource(1))
	s := rng.Int()
	for i, v := range xs {
		s += i * v
	}
	select {
	case v := <-ch:
		s += v
	}
	return s
}

// unannotated is the near-miss negative: the same nondeterminism
// sources draw no diagnostics without the contract.
func unannotated(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	s += rand.Int()
	_ = time.Now()
	return s
}

// Directive hygiene: malformed attempts are diagnostics, not silently
// disabled contracts.

//ivmf:deterministic because reasons // want `trailing text is not allowed`
func trailing(m map[int]int) {
	for range m { // no contract took effect above, so no range diagnostic
	}
}

// ivmf:deterministic // want `no space is allowed between // and ivmf:`
func spaced(m map[int]int) {
	for range m {
	}
}

/* ivmf:deterministic */ // want `ivmf directives must be line comments`
func blocky(m map[int]int) {
	for range m {
	}
}
