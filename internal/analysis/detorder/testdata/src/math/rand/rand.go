// Package rand is a minimal shadow of math/rand so the detorder corpus
// type-checks hermetically.
package rand

type Source struct{ seed int64 }

type Rand struct{ src Source }

func New(src Source) *Rand        { return &Rand{src} }
func NewSource(seed int64) Source { return Source{seed} }
func Int() int                    { return 0 }
func Float64() float64            { return 0 }
func Seed(seed int64)             {}

func (r *Rand) Int() int         { return 0 }
func (r *Rand) Float64() float64 { return 0 }
