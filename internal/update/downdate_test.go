package update

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/eig"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

func TestDowndateMatchesFullRecompute(t *testing.T) {
	shapes := []struct{ m, n int }{{40, 24}, {24, 40}, {32, 32}}
	kinds := []string{"remove-rows", "remove-cols", "cell-unpatch"}
	rank := 8
	for _, sh := range shapes {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%dx%d/%s", sh.m, sh.n, kind), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(sh.m*100 + sh.n)))
				a := lowRankMatrix(sh.m, sh.n, 4, rng)
				full, err := eig.SVD(a)
				if err != nil {
					t.Fatal(err)
				}
				f := full.Truncate(rank)

				switch kind {
				case "remove-rows":
					rows := []int{sh.m - 1, 0, 5} // any order on input
					got, _, err := RemoveRows(f, rows, rank)
					if err != nil {
						t.Fatal(err)
					}
					want := matrix.New(sh.m-3, sh.n)
					out := 0
					for i := 0; i < sh.m; i++ {
						if i == 0 || i == 5 || i == sh.m-1 {
							continue
						}
						copy(want.RowView(out), a.RowView(i))
						out++
					}
					checkAgainstFull(t, got, want, rank, 1e-6)
				case "remove-cols":
					cols := []int{1, sh.n - 2}
					got, _, err := RemoveCols(f, cols, rank)
					if err != nil {
						t.Fatal(err)
					}
					want := matrix.New(sh.m, sh.n-2)
					for i := 0; i < sh.m; i++ {
						out := 0
						for j := 0; j < sh.n; j++ {
							if j == 1 || j == sh.n-2 {
								continue
							}
							want.Set(i, out, a.At(i, j))
							out++
						}
					}
					checkAgainstFull(t, got, want, rank, 1e-6)
				case "cell-unpatch":
					// Cells carry their CURRENT values; the unpatch reverts
					// them to zero.
					cells := []sparse.Triplet{
						{Row: 0, Col: 0, Val: a.At(0, 0)},
						{Row: 0, Col: 3, Val: a.At(0, 3)},
						{Row: 7, Col: 2, Val: a.At(7, 2)},
					}
					got, _, err := CellUnpatch(f, cells, rank)
					if err != nil {
						t.Fatal(err)
					}
					want := a.Clone()
					for _, c := range cells {
						want.Set(c.Row, c.Col, 0)
					}
					checkAgainstFull(t, got, want, rank, 1e-6)
				}
			})
		}
	}
}

// TestAppendThenRemoveRecovers is the window-churn identity at the factor
// level: appending a slice and then removing exactly those indices must
// recover the never-appended factors to the engine's agreement
// tolerance.
func TestAppendThenRemoveRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, n, rank := 36, 24, 8
	a := lowRankMatrix(m, n, 4, rng)
	full, err := eig.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	f := full.Truncate(rank)

	b := lowRankMatrix(3, n, 2, rng)
	grown, _, err := AppendRows(f, b, rank)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := RemoveRows(grown, []int{m, m + 1, m + 2}, rank)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstFull(t, back, a, rank, 1e-6)

	c := lowRankMatrix(m, 2, 1, rng)
	wide, _, err := AppendCols(f, c, rank)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err = RemoveCols(wide, []int{n, n + 1}, rank)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstFull(t, back, a, rank, 1e-6)
}

func TestForget(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := lowRankMatrix(12, 9, 3, rng)
	full, err := eig.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	f := full.Truncate(4)

	// λ = 1 is pinned as a bitwise no-op: the same factor object comes
	// back, untouched.
	same, err := Forget(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same != f {
		t.Error("Forget(1) did not return the input factors unchanged")
	}

	half, err := Forget(f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, sv := range f.S {
		if half.S[i] != 0.5*sv {
			t.Fatalf("S[%d]: %g, want %g", i, half.S[i], 0.5*sv)
		}
	}
	if half.U != f.U || half.V != f.V {
		t.Error("Forget rebuilt the bases; decay must touch only the spectrum")
	}

	for _, lam := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := Forget(f, lam); err == nil {
			t.Errorf("Forget(%v) accepted", lam)
		}
	}
}

// TestDowndateIllConditioned removes a row carrying overwhelmingly more
// mass than the retained trailing spectrum: the cancellation recovers
// the surviving directions from a catastrophically small difference, and
// the downdate must refuse to return the damaged factors.
func TestDowndateIllConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m, n := 10, 8
	a := matrix.New(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	// Row 0 dwarfs everything else by ten orders of magnitude.
	for j := 0; j < n; j++ {
		a.Set(0, j, 1e10*rng.NormFloat64())
	}
	full, err := eig.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	f := full.Truncate(5)
	_, _, err = RemoveRows(f, []int{0}, 5)
	if err == nil {
		t.Fatal("near-total cancellation returned factors instead of failing")
	}
	if !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("error %v does not unwrap to ErrIllConditioned", err)
	}
	var ill *IllConditionedError
	if !errors.As(err, &ill) {
		t.Fatalf("error %v is not an *IllConditionedError", err)
	}
	if ill.Op != "RemoveRows" {
		t.Errorf("Op = %q, want RemoveRows", ill.Op)
	}
	if ill.RemovedMass <= ill.SigmaMin {
		t.Errorf("reported removed mass %g not above σ_min %g", ill.RemovedMass, ill.SigmaMin)
	}

	// The transposed path reports its own name.
	_, _, err = RemoveCols(&eig.SVDResult{U: f.V, S: f.S, V: f.U}, []int{0}, 5)
	if errors.As(err, &ill) && ill.Op != "RemoveCols" {
		t.Errorf("RemoveCols reported Op %q", ill.Op)
	}
}

func TestCheckFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := lowRankMatrix(8, 6, 2, rng)
	full, err := eig.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	f := full.Truncate(3)
	if err := CheckFinite(f); err != nil {
		t.Fatalf("finite factors flagged: %v", err)
	}
	for name, poison := range map[string]func(g *eig.SVDResult){
		"S-nan": func(g *eig.SVDResult) { g.S[1] = math.NaN() },
		"U-inf": func(g *eig.SVDResult) { g.U.Data[3] = math.Inf(1) },
		"V-nan": func(g *eig.SVDResult) { g.V.Data[0] = math.NaN() },
	} {
		g := f.Truncate(len(f.S))
		poison(g)
		if err := CheckFinite(g); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: error %v does not unwrap to ErrNonFinite", name, err)
		}
	}
}

func TestDowndateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := lowRankMatrix(10, 8, 3, rng)
	full, err := eig.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	f := full.Truncate(4)
	for name, idx := range map[string][]int{
		"empty":        {},
		"out-of-range": {10},
		"negative":     {-1},
		"duplicate":    {2, 2},
		"remove-all":   {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
	} {
		if _, _, err := RemoveRows(f, idx, 4); err == nil {
			t.Errorf("RemoveRows accepted %s index set", name)
		}
	}
	if _, _, err := RemoveCols(f, []int{8}, 4); err == nil {
		t.Error("RemoveCols accepted out-of-range column")
	}
}

func TestDowndateDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(37))
	m, n, rank := 48, 36, 8
	a := lowRankMatrix(m, n, 4, rng)
	var ref *eig.SVDResult
	for _, w := range []int{1, 3, 8} {
		parallel.SetWorkers(w)
		full, err := eig.SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		f := full.Truncate(rank)
		got, _, err := RemoveRows(f, []int{2, 17, 40}, rank)
		if err != nil {
			t.Fatal(err)
		}
		if w == 1 {
			ref = got
			continue
		}
		for i := range ref.S {
			if ref.S[i] != got.S[i] {
				t.Fatalf("S[%d] differs at %d workers", i, w)
			}
		}
		for i := range ref.U.Data {
			if ref.U.Data[i] != got.U.Data[i] {
				t.Fatalf("U differs at %d workers", w)
			}
		}
		for i := range ref.V.Data {
			if ref.V.Data[i] != got.V.Data[i] {
				t.Fatalf("V differs at %d workers", w)
			}
		}
	}
}
