package update

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/eig"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// lowRankMatrix returns an m×n matrix of exact rank rho (a product of
// two random Gaussian factors), scaled so singular values are O(1)-ish.
func lowRankMatrix(m, n, rho int, rng *rand.Rand) *matrix.Dense {
	x := matrix.New(m, rho)
	y := matrix.New(rho, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64() / math.Sqrt(float64(rho))
	}
	return matrix.Mul(x, y)
}

func reconstruct(f *eig.SVDResult) *matrix.Dense {
	scaled := f.U.Clone()
	for j, sv := range f.S {
		for i := 0; i < scaled.Rows; i++ {
			scaled.Data[i*scaled.Cols+j] *= sv
		}
	}
	return matrix.MulT(scaled, f.V)
}

// checkAgainstFull asserts the updated factors agree with a fresh
// truncated decomposition of the updated matrix: singular values and
// reconstruction within relTol (relative to the spectrum scale).
func checkAgainstFull(t *testing.T, got *eig.SVDResult, want *matrix.Dense, rank int, relTol float64) {
	t.Helper()
	full, err := eig.SVD(want)
	if err != nil {
		t.Fatalf("full SVD: %v", err)
	}
	ref := full.Truncate(rank)
	scale := ref.S[0]
	if scale == 0 {
		scale = 1
	}
	if len(got.S) != rank {
		t.Fatalf("updated rank %d, want %d", len(got.S), rank)
	}
	for j := range got.S {
		if d := math.Abs(got.S[j] - ref.S[j]); d > relTol*scale {
			t.Fatalf("singular value %d: update %g vs full %g (diff %g)", j, got.S[j], ref.S[j], d)
		}
	}
	gr := reconstruct(got)
	rr := reconstruct(ref)
	var diff, norm float64
	for i := range gr.Data {
		d := gr.Data[i] - rr.Data[i]
		diff += d * d
		norm += rr.Data[i] * rr.Data[i]
	}
	if math.Sqrt(diff) > relTol*math.Max(1, math.Sqrt(norm)) {
		t.Fatalf("reconstruction differs: rel %g", math.Sqrt(diff)/math.Max(1, math.Sqrt(norm)))
	}
}

func TestUpdateMatchesFullRecompute(t *testing.T) {
	shapes := []struct{ m, n int }{{40, 24}, {24, 40}, {32, 32}}
	ranks := []int{6, 10}
	kinds := []string{"append-rows", "append-cols", "cell-patch"}
	for _, sh := range shapes {
		for _, rank := range ranks {
			for _, kind := range kinds {
				t.Run(fmt.Sprintf("%dx%d/r%d/%s", sh.m, sh.n, rank, kind), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(sh.m*1000 + sh.n*10 + rank)))
					// Exact rank well below the kept rank so the batch-extended
					// rank still fits and the update stays exact.
					rho := rank - 4
					a := lowRankMatrix(sh.m, sh.n, rho, rng)
					full, err := eig.SVD(a)
					if err != nil {
						t.Fatal(err)
					}
					f := full.Truncate(rank)

					switch kind {
					case "append-rows":
						c := 3
						b := lowRankMatrix(c, sh.n, 2, rng)
						got, _, err := AppendRows(f, b, rank)
						if err != nil {
							t.Fatal(err)
						}
						want := matrix.New(sh.m+c, sh.n)
						copy(want.Data[:sh.m*sh.n], a.Data)
						copy(want.Data[sh.m*sh.n:], b.Data)
						checkAgainstFull(t, got, want, rank, 1e-6)
					case "append-cols":
						c := 3
						b := lowRankMatrix(sh.m, c, 2, rng)
						got, _, err := AppendCols(f, b, rank)
						if err != nil {
							t.Fatal(err)
						}
						want := matrix.New(sh.m, sh.n+c)
						for i := 0; i < sh.m; i++ {
							copy(want.Data[i*(sh.n+c):i*(sh.n+c)+sh.n], a.Data[i*sh.n:(i+1)*sh.n])
							copy(want.Data[i*(sh.n+c)+sh.n:(i+1)*(sh.n+c)], b.Data[i*c:(i+1)*c])
						}
						checkAgainstFull(t, got, want, rank, 1e-6)
					case "cell-patch":
						// Patch a handful of cells across 3 distinct rows.
						var patch []sparse.Triplet
						want := a.Clone()
						for k := 0; k < 7; k++ {
							i := (k * 5) % 3 // 3 distinct rows
							j := (k * 7) % sh.n
							d := rng.NormFloat64()
							// Skip duplicates the stride pattern may produce.
							dup := false
							for _, p := range patch {
								if p.Row == i && p.Col == j {
									dup = true
								}
							}
							if dup {
								continue
							}
							patch = append(patch, sparse.Triplet{Row: i, Col: j, Val: d})
							want.Set(i, j, want.At(i, j)+d)
						}
						got, _, err := CellPatch(f, patch, rank)
						if err != nil {
							t.Fatal(err)
						}
						checkAgainstFull(t, got, want, rank, 1e-6)
					}
				})
			}
		}
	}
}

// TestUpdateChainStaysAccurate applies a sequence of small patches and
// checks the factors still agree with a full recompute at the end — the
// accumulated-error regime the residual budget in core monitors.
func TestUpdateChainStaysAccurate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n, rank := 30, 20, 12
	a := lowRankMatrix(m, n, 5, rng)
	full, err := eig.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	f := full.Truncate(rank)
	want := a.Clone()
	for step := 0; step < 4; step++ {
		// One-row patches keep the extended rank within the kept rank.
		i := step % m
		var patch []sparse.Triplet
		for j := 0; j < 3; j++ {
			d := rng.NormFloat64()
			patch = append(patch, sparse.Triplet{Row: i, Col: (j*3 + step) % n, Val: d})
			want.Set(i, (j*3+step)%n, want.At(i, (j*3+step)%n)+d)
		}
		f, _, err = CellPatch(f, patch, rank)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	checkAgainstFull(t, f, want, rank, 1e-6)
}

// TestUpdateDiscardedMass: updating a full-spectrum matrix at a small
// kept rank must discard mass and report it.
func TestUpdateDiscardedMass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n, rank := 20, 16, 4
	a := matrix.New(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	full, err := eig.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	f := full.Truncate(rank)
	b := matrix.New(2, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	_, disc, err := AppendRows(f, b, rank)
	if err != nil {
		t.Fatal(err)
	}
	if disc <= 0 {
		t.Fatalf("discarded mass %g, want > 0 for a full-spectrum matrix", disc)
	}
}

func TestUpdateDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(11))
	m, n, rank := 64, 48, 10
	a := lowRankMatrix(m, n, 6, rng)
	b := lowRankMatrix(4, n, 3, rng)
	patch := []sparse.Triplet{
		{Row: 1, Col: 2, Val: 0.5}, {Row: 1, Col: 7, Val: -0.25},
		{Row: 9, Col: 2, Val: 1.5}, {Row: 30, Col: 40, Val: -2},
	}
	type out struct{ rows, patched *eig.SVDResult }
	var ref out
	for _, w := range []int{1, 3, 8} {
		parallel.SetWorkers(w)
		full, err := eig.SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		f := full.Truncate(rank)
		gr, _, err := AppendRows(f, b, rank)
		if err != nil {
			t.Fatal(err)
		}
		gp, _, err := CellPatch(f, patch, rank)
		if err != nil {
			t.Fatal(err)
		}
		if w == 1 {
			ref = out{rows: gr, patched: gp}
			continue
		}
		for name, pair := range map[string][2]*eig.SVDResult{
			"append-rows": {ref.rows, gr},
			"cell-patch":  {ref.patched, gp},
		} {
			a, b := pair[0], pair[1]
			for i := range a.S {
				if a.S[i] != b.S[i] {
					t.Fatalf("%s: S[%d] differs at %d workers", name, i, w)
				}
			}
			for i := range a.U.Data {
				if a.U.Data[i] != b.U.Data[i] {
					t.Fatalf("%s: U differs at %d workers", name, w)
				}
			}
			for i := range a.V.Data {
				if a.V.Data[i] != b.V.Data[i] {
					t.Fatalf("%s: V differs at %d workers", name, w)
				}
			}
		}
	}
}

func TestUpdateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := lowRankMatrix(10, 8, 3, rng)
	full, err := eig.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	f := full.Truncate(5)
	if _, _, err := AppendRows(f, matrix.New(2, 9), 5); err == nil {
		t.Error("AppendRows accepted mismatched cols")
	}
	if _, _, err := AppendCols(f, matrix.New(9, 2), 5); err == nil {
		t.Error("AppendCols accepted mismatched rows")
	}
	if _, _, err := LowRank(f, matrix.New(10, 2), matrix.New(8, 3), 5); err == nil {
		t.Error("LowRank accepted mismatched batch ranks")
	}
	if _, _, err := CellPatch(f, []sparse.Triplet{{Row: 99, Col: 0, Val: 1}}, 5); err == nil {
		t.Error("CellPatch accepted out-of-range cell")
	}
	if _, _, err := CellPatch(f, []sparse.Triplet{
		{Row: 1, Col: 1, Val: 1}, {Row: 1, Col: 1, Val: 2},
	}, 5); err == nil {
		t.Error("CellPatch accepted duplicate cell")
	}
}

// TestPairRunsBothSides exercises the interval pair helper: both sides
// update, an error on either side fails the pair.
func TestPairRunsBothSides(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := lowRankMatrix(12, 9, 3, rng)
	full, err := eig.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	f := full.Truncate(4)
	b := lowRankMatrix(2, 9, 1, rng)
	lo, hi, dl, dh, err := Pair(2,
		func() (*eig.SVDResult, float64, error) { return AppendRows(f, b, 4) },
		func() (*eig.SVDResult, float64, error) { return AppendRows(f, b, 4) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if lo == nil || hi == nil || dl != dh {
		t.Fatalf("pair mismatch: %v %v %g %g", lo != nil, hi != nil, dl, dh)
	}
	if _, _, _, _, err := Pair(0,
		func() (*eig.SVDResult, float64, error) { return AppendRows(f, b, 4) },
		func() (*eig.SVDResult, float64, error) { return nil, 0, fmt.Errorf("boom") },
	); err == nil {
		t.Error("Pair swallowed hi-side error")
	}
}
