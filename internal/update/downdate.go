package update

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/eig"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// The decremental half of the engine: sliding windows expire rows,
// columns, and cells, and long-lived streams decay old evidence with a
// forgetting factor. A downdate is algebraically just a low-rank update
// with the removed content negated — RemoveRows zeroes the departing
// rows by adding p·qᵀ where p holds row indicators and q the negated
// model rows, then compacts the zeroed rows out of the left factor —
// but numerically it is the dangerous direction: where an append can
// only grow the spectrum, a removal cancels mass against the retained
// singular values, and when the removed mass approaches σ_r the
// trailing directions are recovered from a near-zero difference. The
// functions here therefore measure the damage they cause (zeroing
// residual of the removed rows, ‖QᵀQ−I‖∞ orthogonality loss of the
// compacted basis) and refuse to return garbage: hard damage surfaces
// as an *IllConditionedError (errors.Is ErrIllConditioned) so the
// engine in internal/core can escalate to a refresh, and mass that the
// core eigensolve silently floors to zero is folded into the Discarded
// return value so the RefreshBudget accounting sees it.

// downdateZeroTol bounds the relative zeroing residual of a removal:
// the updated factors' claim about a removed row must vanish against
// σ₁, since the model removes its own reconstruction of the row. Above
// this the downdate destroyed information it meant to keep.
const downdateZeroTol = 1e-8

// downdateOrthoTol bounds the post-downdate ‖QᵀQ−I‖∞ of each factor:
// compaction only deletes (near-)zero rows, so orthonormality above
// this threshold means the cancellation corrupted the basis.
const downdateOrthoTol = 1e-8

// ErrIllConditioned marks a downdate whose cancellation damaged the
// factors beyond the tolerances above. The returned factors are
// withheld; the caller keeps its previous state and should escalate to
// a refresh of the post-removal matrix.
var ErrIllConditioned = errors.New("update: downdate is ill-conditioned")

// ErrNonFinite marks a NaN or Inf appearing in a factor. A non-finite
// state must never be published: every entry it touches in a product is
// poisoned.
var ErrNonFinite = errors.New("update: non-finite factor entry")

// IllConditionedError carries the downdate health measurements that
// tripped; it unwraps to ErrIllConditioned.
type IllConditionedError struct {
	Op            string  // "RemoveRows", "RemoveCols", "CellUnpatch"
	RemovedMass   float64 // Frobenius mass of the removed content
	SigmaMin      float64 // smallest non-zero retained σ before the downdate
	ZeroResidual  float64 // max relative residual of a removed row/col
	OrthoResidual float64 // worst factor ‖QᵀQ−I‖∞ after the downdate
}

func (e *IllConditionedError) Error() string {
	return fmt.Sprintf("update: %s: downdate is ill-conditioned (removed mass %.3g vs σ_min %.3g, zero residual %.3g, orthogonality residual %.3g)",
		e.Op, e.RemovedMass, e.SigmaMin, e.ZeroResidual, e.OrthoResidual)
}

func (e *IllConditionedError) Unwrap() error { return ErrIllConditioned }

// RemoveRows returns the rank-truncated SVD of A with the given rows
// deleted (surviving rows keep their relative order), given the factors
// f of A. The removal subtracts the model's own reconstruction of the
// departing rows — exact in the model's world regardless of how much of
// the true matrix the truncated factors carry — then compacts the
// zeroed rows out of U. rank <= 0 keeps len(f.S), clamped to the
// surviving dimensions. The second return value is the Frobenius mass
// the downdate discarded: core-truncation discard plus any retained
// mass the cancellation silently floored to zero (detected by Frobenius
// accounting ‖A'‖F² = ‖A‖F² − ‖B‖F²), so budget-driven refresh logic
// sees cancellation damage even when it stays below the hard error
// tolerances.
func RemoveRows(f *eig.SVDResult, rows []int, rank int) (*eig.SVDResult, float64, error) {
	m, n, r := f.U.Rows, f.V.Rows, len(f.S)
	sorted, err := checkRemoval("RemoveRows", rows, m)
	if err != nil {
		return nil, 0, err
	}
	c := len(sorted)
	rank = clampRank(rank, r, r+c, m-c, n)

	// w[k, l] = −S[l]·U[rows[k], l]: the removed rows in factor
	// coordinates, negated. B = U_R·Σ·Vᵀ, so q = −V·Σ·U_Rᵀ = V·wᵀ and
	// ‖B‖F = ‖w‖F (V has orthonormal-or-zero columns).
	w := matrix.New(c, r)
	for k, i := range sorted {
		urow := f.U.RowView(i)
		wrow := w.RowView(k)
		for l, sv := range f.S {
			wrow[l] = -sv * urow[l]
		}
	}
	mass := vecNorm(w.Data)
	smin := sigmaMinNonzero(f.S)

	p := matrix.New(m, c)
	for k, i := range sorted {
		p.Set(i, k, 1)
	}
	q := matrix.MulT(f.V, w) // n×c

	res, disc, err := LowRank(f, p, q, rank)
	if err != nil {
		return nil, 0, err
	}

	// Frobenius accounting: mass neither kept, counted as discarded,
	// nor removed on purpose was silently floored by the core
	// eigensolve's zero clamp — fold it into the discard so the
	// caller's residual budget accumulates it.
	preSq, postSq := sumSq(f.S), sumSq(res.S)
	if lost := preSq - mass*mass - postSq - disc*disc; lost > 0 {
		disc = math.Sqrt(disc*disc + lost)
	}

	// Zeroing residual: the rows about to be compacted away, as the
	// updated factors represent them, relative to σ₁.
	var zres float64
	for _, i := range sorted {
		var ss float64
		urow := res.U.RowView(i)
		for l, v := range urow {
			t := v * res.S[l]
			ss += t * t
		}
		zres = math.Max(zres, math.Sqrt(ss))
	}
	if len(res.S) > 0 && res.S[0] > 0 {
		zres /= res.S[0]
	}

	// Compact the zeroed rows out of U.
	u := matrix.New(m-c, rank)
	next, out := 0, 0
	for i := 0; i < m; i++ {
		if next < c && sorted[next] == i {
			next++
			continue
		}
		copy(u.RowView(out), res.U.RowView(i))
		out++
	}

	ortho := OrthoResidual(u, res.S)
	if zres > downdateZeroTol || ortho > downdateOrthoTol {
		return nil, 0, &IllConditionedError{
			Op: "RemoveRows", RemovedMass: mass, SigmaMin: smin,
			ZeroResidual: zres, OrthoResidual: ortho,
		}
	}
	return &eig.SVDResult{U: u, S: res.S, V: res.V}, disc, nil
}

// RemoveCols returns the rank-truncated SVD of A with the given columns
// deleted: the transposed counterpart of RemoveRows (swap the factor
// sides, remove as rows, swap back).
func RemoveCols(f *eig.SVDResult, cols []int, rank int) (*eig.SVDResult, float64, error) {
	res, disc, err := RemoveRows(&eig.SVDResult{U: f.V, S: f.S, V: f.U}, cols, rank)
	if err != nil {
		var ill *IllConditionedError
		if errors.As(err, &ill) {
			ill.Op = "RemoveCols"
		}
		return nil, 0, err
	}
	return &eig.SVDResult{U: res.V, S: res.S, V: res.U}, disc, nil
}

// CellUnpatch returns the rank-truncated SVD of A with the given cells
// reverted to unobserved zero. Each triplet carries the cell's CURRENT
// stored value (the caller owns the matrix; the model only sees the
// additive delta), so the unpatch is CellPatch with every value
// negated, followed by the downdate health checks: a non-finite result
// is ErrNonFinite, orthogonality loss beyond tolerance is an
// *IllConditionedError, and in both cases the factors are withheld.
func CellUnpatch(f *eig.SVDResult, cells []sparse.Triplet, rank int) (*eig.SVDResult, float64, error) {
	neg := make([]sparse.Triplet, len(cells))
	var massSq float64
	for i, t := range cells {
		neg[i] = sparse.Triplet{Row: t.Row, Col: t.Col, Val: -t.Val}
		massSq += t.Val * t.Val
	}
	res, disc, err := CellPatch(f, neg, rank)
	if err != nil {
		return nil, 0, err
	}
	if err := CheckFinite(res); err != nil {
		return nil, 0, fmt.Errorf("update: CellUnpatch: %w", err)
	}
	ortho := math.Max(OrthoResidual(res.U, res.S), OrthoResidual(res.V, res.S))
	if ortho > downdateOrthoTol {
		return nil, 0, &IllConditionedError{
			Op: "CellUnpatch", RemovedMass: math.Sqrt(massSq),
			SigmaMin: sigmaMinNonzero(f.S), OrthoResidual: ortho,
		}
	}
	return res, disc, nil
}

// Forget scales the retained singular values by the forgetting factor
// lambda in (0, 1]: older evidence decays exponentially with each
// applied batch, the classical forgetting of recursive least squares
// carried over to the SVD factors (the bases are untouched — decay is
// isotropic across the retained subspace). lambda = 1 is pinned as a
// bitwise no-op: the input factors are returned unchanged, no multiply
// runs. The result shares U and V with f (both engines treat factor
// states as immutable).
func Forget(f *eig.SVDResult, lambda float64) (*eig.SVDResult, error) {
	if math.IsNaN(lambda) || lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("update: Forget: factor %v outside (0, 1]", lambda)
	}
	if lambda == 1 {
		return f, nil
	}
	s := make([]float64, len(f.S))
	for i, sv := range f.S {
		s[i] = lambda * sv
	}
	return &eig.SVDResult{U: f.U, S: s, V: f.V}, nil
}

// CheckFinite reports the first NaN or Inf in the factors as an error
// wrapping ErrNonFinite, or nil if every entry is finite.
func CheckFinite(f *eig.SVDResult) error {
	for i, sv := range f.S {
		if math.IsNaN(sv) || math.IsInf(sv, 0) {
			return fmt.Errorf("S[%d] = %v: %w", i, sv, ErrNonFinite)
		}
	}
	for i, v := range f.U.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("U[%d, %d] = %v: %w", i/f.U.Cols, i%f.U.Cols, v, ErrNonFinite)
		}
	}
	for i, v := range f.V.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("V[%d, %d] = %v: %w", i/f.V.Cols, i%f.V.Cols, v, ErrNonFinite)
		}
	}
	return nil
}

// OrthoResidual measures ‖QᵀQ − D‖∞ where D is the expected Gram
// diagonal under the factor convention of this package: 1 for columns
// carrying a non-zero singular value, 0 for the exactly-zero columns of
// null directions. Zero means a perfectly orthonormal-or-zero factor.
func OrthoResidual(q *matrix.Dense, s []float64) float64 {
	if q.Cols == 0 {
		return 0
	}
	g := matrix.TMul(q, q)
	var worst float64
	for i := 0; i < g.Rows; i++ {
		grow := g.RowView(i)
		for j, v := range grow {
			want := 0.0
			if i == j && i < len(s) && s[i] != 0 {
				want = 1
			}
			worst = math.Max(worst, math.Abs(v-want))
		}
	}
	return worst
}

// checkRemoval validates a removal index set against dimension dim and
// returns it sorted ascending: non-empty, in range, duplicate-free, and
// strictly smaller than dim (removing everything leaves no matrix).
func checkRemoval(op string, idx []int, dim int) ([]int, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("update: %s: empty index set", op)
	}
	if len(idx) >= dim {
		return nil, fmt.Errorf("update: %s: removing %d of %d", op, len(idx), dim)
	}
	sorted := make([]int, len(idx))
	copy(sorted, idx)
	sort.Ints(sorted)
	for k, i := range sorted {
		if i < 0 || i >= dim {
			return nil, fmt.Errorf("update: %s: index %d outside [0, %d)", op, i, dim)
		}
		if k > 0 && i == sorted[k-1] {
			return nil, fmt.Errorf("update: %s: duplicate index %d", op, i)
		}
	}
	return sorted, nil
}

// sigmaMinNonzero returns the smallest non-zero singular value, or 0 if
// the spectrum is entirely zero.
func sigmaMinNonzero(s []float64) float64 {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] > 0 {
			return s[i]
		}
	}
	return 0
}

func sumSq(s []float64) float64 {
	var t float64
	for _, v := range s {
		t += v * v
	}
	return t
}
