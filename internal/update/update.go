// Package update implements deterministic low-rank singular-value
// decomposition updates in the style of Brand's incremental SVD: given
// the truncated factors (U, Σ, V) of a matrix A, an arriving batch —
// appended rows, appended columns, or a sparse additive cell patch — is
// folded into the factors without ever re-decomposing A. Each batch
// costs O((m+n)·r·c + (r+c)³) for batch rank c against the O(NNZ·r) per
// sweep (times many sweeps) of a from-scratch truncated solve, which is
// what converts a streaming service's per-update cost from "size of the
// dataset" to "size of the delta".
//
// The mechanics are the classical three steps: (1) project the batch
// onto the existing factors and extract the out-of-subspace component
// with in-order Gram-Schmidt (serial, index-ordered — the
// bitwise-determinism contract of this repository), extending the left
// and right bases by at most c orthonormal directions; (2) assemble the
// small (r+c)×(r+c) core matrix and decompose it through the existing
// dense eig.SymEig (as the eigensolver of KᵀK, with the left factor
// recovered by one small product); (3) rotate the extended bases by the
// core factors and truncate back to the target rank. All O(matrix-dim)
// products run on the pool-sharded blocked kernels of internal/matrix,
// so every update is bitwise identical for any worker count.
//
// Exactness: when the current factors are an exact SVD of A (A has rank
// at most r) and the kept rank covers the batch-extended rank, the
// update is exact up to rounding. Otherwise each truncation discards
// singular mass; the per-update Discarded return value measures it, and
// the engine in internal/core accumulates it against a residual budget
// to schedule warm-started full refreshes (eig.TruncatedSVDOpts with
// Options.StartU/StartV).
//
//ivmf:deterministic
package update

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/eig"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// gsDropTol is the relative column-collapse threshold of the in-order
// Gram-Schmidt basis extension, matching the truncated solver's: a batch
// direction whose out-of-subspace component is below gsDropTol times its
// original norm carries no new subspace information and is dropped (its
// coefficients stay in the core matrix, so nothing is lost).
const gsDropTol = 1e-13

// AppendRows returns the rank-truncated SVD of [A; B] given the factors
// f of A and the new rows b (c×n). rank <= 0 keeps len(f.S); any rank is
// clamped to the extended core size r+c (and the updated matrix
// dimensions). The second return value is the Frobenius mass of the
// singular values the truncation discarded.
func AppendRows(f *eig.SVDResult, b *matrix.Dense, rank int) (*eig.SVDResult, float64, error) {
	m, n, r := f.U.Rows, f.V.Rows, len(f.S)
	if b.Cols != n {
		return nil, 0, fmt.Errorf("update: AppendRows: batch has %d cols, want %d", b.Cols, n)
	}
	c := b.Rows
	rank = clampRank(rank, r, r+c, m+c, n)

	// Project the new rows onto the right factor: W = B·V (coefficients
	// inside span V), C = B − W·Vᵀ (out-of-subspace component), with one
	// re-orthogonalization pass for numerical stability.
	w := matrix.Mul(b, f.V)                   // c×r
	cm := matrix.Sub(b, matrix.MulT(w, f.V))  // c×n
	w2 := matrix.Mul(cm, f.V)                 // c×r
	cm = matrix.Sub(cm, matrix.MulT(w2, f.V)) // re-orth pass
	w = matrix.AddInto(w, w, w2)

	// In-order Gram-Schmidt over the residual rows: C = Rc·Qcᵀ with Qc
	// n×c orthonormal (rows of qct) and Rc c×c lower triangular.
	qct, rc := gsRows(cm)

	// Core matrix K = [diag(S) 0; W Rc], so [A; B] = diag(U, I)·K·[V Qc]ᵀ.
	k := matrix.New(r+c, r+c)
	for i := 0; i < r; i++ {
		k.Data[i*(r+c)+i] = f.S[i]
	}
	for i := 0; i < c; i++ {
		krow := k.RowView(r + i)
		copy(krow[:r], w.RowView(i))
		copy(krow[r:], rc.RowView(i))
	}

	uk, s, vk, disc, err := coreSVD(k, rank)
	if err != nil {
		return nil, 0, err
	}

	// Rotate: U' = diag(U, I)·Uk (top block U·Uk_top, bottom block copied
	// from Uk's trailing rows), V' = V·Vk_top + Qc·Vk_bot.
	u := matrix.New(m+c, rank)
	top := matrix.Mul(f.U, uk.SubMatrix(0, r, 0, rank))
	copy(u.Data[:m*rank], top.Data)
	copy(u.Data[m*rank:], uk.Data[r*rank:])
	v := matrix.Add(
		matrix.Mul(f.V, vk.SubMatrix(0, r, 0, rank)),
		matrix.TMul(qct, vk.SubMatrix(r, r+c, 0, rank)),
	)
	canonicalizePairSigns(u, v)
	return &eig.SVDResult{U: u, S: s, V: v}, disc, nil
}

// AppendCols returns the rank-truncated SVD of [A B] given the factors f
// of A and the new columns b (m×c): the transposed counterpart of
// AppendRows (swap the factor sides, append bᵀ as rows, swap back).
func AppendCols(f *eig.SVDResult, b *matrix.Dense, rank int) (*eig.SVDResult, float64, error) {
	if b.Rows != f.U.Rows {
		return nil, 0, fmt.Errorf("update: AppendCols: batch has %d rows, want %d", b.Rows, f.U.Rows)
	}
	res, disc, err := AppendRows(&eig.SVDResult{U: f.V, S: f.S, V: f.U}, b.T(), rank)
	if err != nil {
		return nil, 0, err
	}
	return &eig.SVDResult{U: res.V, S: res.S, V: res.U}, disc, nil
}

// LowRank returns the rank-truncated SVD of A + p·qᵀ given the factors f
// of A and the batch factors p (m×c), q (n×c). This is the general
// additive form; CellPatch builds (p, q) from sparse cell deltas.
func LowRank(f *eig.SVDResult, p, q *matrix.Dense, rank int) (*eig.SVDResult, float64, error) {
	m, n, r := f.U.Rows, f.V.Rows, len(f.S)
	if p.Rows != m || q.Rows != n || p.Cols != q.Cols {
		return nil, 0, fmt.Errorf("update: LowRank: batch %dx%d · (%dx%d)ᵀ against %dx%d factors",
			p.Rows, p.Cols, q.Rows, q.Cols, m, n)
	}
	c := p.Cols
	rank = clampRank(rank, r, r+c, m, n)

	// Extend each basis: coefficients inside the current factors plus an
	// in-order Gram-Schmidt orthonormalization of the residual, with one
	// re-orthogonalization pass against the factors.
	mc, pj, rj := extendBasis(f.U, p) // mc r×c, pj m×c, rj c×c
	nc, qk, rk := extendBasis(f.V, q) // nc r×c, qk n×c, rk c×c

	// Core K = [diag(S) 0; 0 0] + [M; Rj]·[N; Rk]ᵀ of size (r+c)².
	wp := stack(mc, rj)
	wq := stack(nc, rk)
	k := matrix.MulT(wp, wq)
	for i := 0; i < r; i++ {
		k.Data[i*(r+c)+i] += f.S[i]
	}

	uk, s, vk, disc, err := coreSVD(k, rank)
	if err != nil {
		return nil, 0, err
	}

	u := matrix.Add(
		matrix.Mul(f.U, uk.SubMatrix(0, r, 0, rank)),
		matrix.Mul(pj, uk.SubMatrix(r, r+c, 0, rank)),
	)
	v := matrix.Add(
		matrix.Mul(f.V, vk.SubMatrix(0, r, 0, rank)),
		matrix.Mul(qk, vk.SubMatrix(r, r+c, 0, rank)),
	)
	canonicalizePairSigns(u, v)
	return &eig.SVDResult{U: u, S: s, V: v}, disc, nil
}

// CellPatch returns the rank-truncated SVD of A + ΔA where ΔA holds the
// additive cell deltas of patch (value semantics: ΔA[i][j] += Val).
// Duplicate cells and out-of-range indices are errors. The patch is
// factored as p·qᵀ over its distinct rows or distinct columns, whichever
// is fewer, so the batch rank c is min(#rows touched, #cols touched).
func CellPatch(f *eig.SVDResult, patch []sparse.Triplet, rank int) (*eig.SVDResult, float64, error) {
	m, n := f.U.Rows, f.V.Rows
	if len(patch) == 0 {
		if rank <= 0 || rank > len(f.S) {
			rank = len(f.S)
		}
		return f.Truncate(rank), 0, nil
	}
	sorted := make([]sparse.Triplet, len(patch))
	copy(sorted, patch)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	rowSet := map[int]int{}
	colSet := map[int]int{}
	for i, t := range sorted {
		if t.Row < 0 || t.Row >= m || t.Col < 0 || t.Col >= n {
			return nil, 0, fmt.Errorf("update: CellPatch: cell (%d, %d) outside %dx%d", t.Row, t.Col, m, n)
		}
		if i > 0 && t.Row == sorted[i-1].Row && t.Col == sorted[i-1].Col {
			return nil, 0, fmt.Errorf("update: CellPatch: duplicate cell (%d, %d)", t.Row, t.Col)
		}
		if _, ok := rowSet[t.Row]; !ok {
			rowSet[t.Row] = len(rowSet)
		}
		if _, ok := colSet[t.Col]; !ok {
			colSet[t.Col] = len(colSet)
		}
	}
	// Group on the smaller side: by rows, p's columns are row indicators
	// and q carries the per-row delta values; by columns, symmetrically.
	// Group indices follow first-appearance order over the (row, col)
	// sorted patch, so the factorization is uniquely determined by the
	// cell set.
	var p, q *matrix.Dense
	if len(rowSet) <= len(colSet) {
		c := len(rowSet)
		p = matrix.New(m, c)
		q = matrix.New(n, c)
		for _, t := range sorted {
			g := rowSet[t.Row]
			p.Set(t.Row, g, 1)
			q.Set(t.Col, g, t.Val)
		}
	} else {
		c := len(colSet)
		p = matrix.New(m, c)
		q = matrix.New(n, c)
		for _, t := range sorted {
			g := colSet[t.Col]
			q.Set(t.Col, g, 1)
			p.Set(t.Row, g, t.Val)
		}
	}
	return LowRank(f, p, q, rank)
}

// Pair applies one update step to both endpoint factor sides of an
// interval matrix concurrently on the shared pool (bounded by workers;
// 0 = pool default) — the interval flavor of the updates above: ISVD0-4
// maintain a (lo, hi) factor pair, and the downstream interval algebra
// (the imatrix min/max combine kernels in internal/core) re-combines the
// updated pair. Errors on either side fail the pair as a whole so the
// two endpoints always advance in lockstep.
func Pair(workers int, loFn, hiFn func() (*eig.SVDResult, float64, error)) (lo, hi *eig.SVDResult, discLo, discHi float64, err error) {
	var errLo, errHi error
	parallel.DoWith(workers,
		func() { lo, discLo, errLo = loFn() },
		func() { hi, discHi, errHi = hiFn() },
	)
	if errLo != nil {
		return nil, nil, 0, 0, fmt.Errorf("min side: %w", errLo)
	}
	if errHi != nil {
		return nil, nil, 0, 0, fmt.Errorf("max side: %w", errHi)
	}
	return lo, hi, discLo, discHi, nil
}

// clampRank resolves the kept rank: non-positive keeps the current rank
// r; everything is clamped to the extended core size and the updated
// matrix dimensions.
func clampRank(rank, r, coreDim, rows, cols int) int {
	if rank <= 0 {
		rank = r
	}
	if rank > coreDim {
		rank = coreDim
	}
	if rank > rows {
		rank = rows
	}
	if rank > cols {
		rank = cols
	}
	return rank
}

// extendBasis projects the batch block p (dim×c) onto the orthonormal
// columns of u (dim×r) and Gram-Schmidt-extends the basis with the
// residual: p = u·m + j·r with j's columns orthonormal (or zero where a
// batch direction lies inside the existing subspace). The projections
// run on the pool-sharded kernels; the in-order column sweep is serial,
// index-ordered, and therefore bitwise deterministic.
func extendBasis(u, p *matrix.Dense) (m, j, r *matrix.Dense) {
	m = matrix.TMul(u, p)                  // r×c coefficients
	res := matrix.Sub(p, matrix.Mul(u, m)) // dim×c residual
	m2 := matrix.TMul(u, res)              // re-orthogonalization pass
	res = matrix.Sub(res, matrix.Mul(u, m2))
	m = matrix.AddInto(m, m, m2)
	j, r = gsCols(res)
	return m, j, r
}

// gsCols orthonormalizes the columns of a in order (modified
// Gram-Schmidt with one re-orthogonalization pass), returning q with
// orthonormal-or-zero columns and the upper-triangular r with a = q·r.
// Columns that collapse below gsDropTol of their original norm are
// zeroed: their content lies in the span of the previous columns and is
// fully carried by r's off-diagonal coefficients.
func gsCols(a *matrix.Dense) (q, r *matrix.Dense) {
	dim, c := a.Rows, a.Cols
	q = a.Clone()
	r = matrix.New(c, c)
	col := make([]float64, dim)
	for jc := 0; jc < c; jc++ {
		for i := 0; i < dim; i++ {
			col[i] = q.Data[i*c+jc]
		}
		orig := vecNorm(col)
		for pass := 0; pass < 2; pass++ {
			for prev := 0; prev < jc; prev++ {
				var d float64
				for i := 0; i < dim; i++ {
					d += col[i] * q.Data[i*c+prev]
				}
				for i := 0; i < dim; i++ {
					col[i] -= d * q.Data[i*c+prev]
				}
				r.Data[prev*c+jc] += d
			}
		}
		norm := vecNorm(col)
		if norm <= orig*gsDropTol || norm == 0 {
			for i := 0; i < dim; i++ {
				q.Data[i*c+jc] = 0
			}
			continue
		}
		r.Data[jc*c+jc] = norm
		inv := 1 / norm
		for i := 0; i < dim; i++ {
			q.Data[i*c+jc] = col[i] * inv
		}
	}
	return q, r
}

// gsRows is gsCols over the rows of a (the append-rows orientation):
// a = r·q with q's rows orthonormal-or-zero and r lower triangular.
func gsRows(a *matrix.Dense) (q, r *matrix.Dense) {
	c := a.Rows
	q = a.Clone()
	r = matrix.New(c, c)
	for jr := 0; jr < c; jr++ {
		row := q.RowView(jr)
		orig := vecNorm(row)
		for pass := 0; pass < 2; pass++ {
			for prev := 0; prev < jr; prev++ {
				prow := q.RowView(prev)
				var d float64
				for i, v := range row {
					d += v * prow[i]
				}
				for i := range row {
					row[i] -= d * prow[i]
				}
				r.Data[jr*c+prev] += d
			}
		}
		norm := vecNorm(row)
		if norm <= orig*gsDropTol || norm == 0 {
			for i := range row {
				row[i] = 0
			}
			continue
		}
		r.Data[jr*c+jr] = norm
		inv := 1 / norm
		for i := range row {
			row[i] *= inv
		}
	}
	return q, r
}

// coreGramTol clamps eigenvalues of KᵀK below coreGramTol·λmax to zero:
// squaring the core matrix floors its spectral resolution at
// ~eps·σmax², so anything below is rounding noise, not signal —
// without the clamp a singular value that is exactly zero resurfaces
// as ~√eps·σmax garbage.
const coreGramTol = 1e-12

// coreSVD decomposes the small (r+c)×(r+c) core matrix k through the
// existing dense eig.SymEig — the eigensolver of KᵀK yields the right
// factor and singular values, and one small product recovers the left
// factor (K·Vk·Σ⁻¹, zero columns for zero singular values, the recoverU
// convention of internal/core). Returns the rank-truncated factors and
// the Frobenius mass of the discarded singular values.
func coreSVD(k *matrix.Dense, rank int) (uk *matrix.Dense, s []float64, vk *matrix.Dense, discarded float64, err error) {
	g := matrix.TMul(k, k)
	vals, vecs, err := eig.SymEig(g)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("update: core eigensolve: %w", err)
	}
	floor := coreGramTol * math.Max(vals[0], 0)
	var discSq float64
	for _, ev := range vals[rank:] {
		if ev > floor {
			discSq += ev
		}
	}
	discarded = math.Sqrt(discSq)
	s = make([]float64, rank)
	for i, ev := range vals[:rank] {
		if ev > floor {
			s[i] = math.Sqrt(ev)
		}
	}
	vk = vecs.SubMatrix(0, k.Rows, 0, rank)
	uk = matrix.Mul(k, vk)
	for j, sv := range s {
		inv := 0.0
		if sv != 0 {
			inv = 1 / sv
		}
		for i := 0; i < uk.Rows; i++ {
			uk.Data[i*uk.Cols+j] *= inv
		}
		if sv == 0 {
			// Null directions get exactly-zero factor columns (uk is
			// already zero via inv = 0). The eigensolver's null-space
			// vectors are orthonormal but arbitrary — in particular they
			// mix extension-basis indices whose basis column was dropped
			// as dependent, which would rotate non-unit columns into the
			// updated V and silently break the orthonormal-factor
			// invariant the NEXT update relies on (its projection step
			// assumes B − (B·V)·Vᵀ removes the span-V component). A zero
			// column is inert in every product and keeps the invariant:
			// factor columns are orthonormal or exactly zero.
			for i := 0; i < vk.Rows; i++ {
				vk.Data[i*vk.Cols+j] = 0
			}
		}
	}
	return uk, s, vk, discarded, nil
}

// canonicalizePairSigns orients each (u_j, v_j) column pair so the
// largest-magnitude entry of v_j is non-negative — the sign convention
// of eig.SVD, so updated factors and full re-decompositions agree in
// orientation wherever their vectors agree.
func canonicalizePairSigns(u, v *matrix.Dense) {
	for j := 0; j < v.Cols; j++ {
		best, bestAbs := 0.0, 0.0
		for i := 0; i < v.Rows; i++ {
			if a := math.Abs(v.At(i, j)); a > bestAbs {
				bestAbs, best = a, v.At(i, j)
			}
		}
		if best < 0 {
			for i := 0; i < v.Rows; i++ {
				v.Set(i, j, -v.At(i, j))
			}
			for i := 0; i < u.Rows; i++ {
				u.Set(i, j, -u.At(i, j))
			}
		}
	}
}

// stack vertically concatenates top (r×c) over bottom (c×c).
func stack(top, bottom *matrix.Dense) *matrix.Dense {
	out := matrix.New(top.Rows+bottom.Rows, top.Cols)
	copy(out.Data[:len(top.Data)], top.Data)
	copy(out.Data[len(top.Data):], bottom.Data)
	return out
}

func vecNorm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
